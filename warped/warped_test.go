package warped_test

import (
	"testing"

	"repro/warped"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// README quick start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := warped.DefaultConfig()
	cfg.NumSMs = 2
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}

	out, err := gpu.Mem().Alloc(4 * 256)
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := warped.Assemble("square", `
	mov r0, %tid.x
	mad r1, %ctaid.x, %ntid.x, r0
	mul r2, r1, r1
	shl r3, r1, 2
	add r3, r3, %param0
	st.global [r3], r2
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Run(warped.Launch{
		Kernel: kernel,
		Grid:   warped.Dim3{X: 2},
		Block:  warped.Dim3{X: 128},
		Params: [8]uint32{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := gpu.Mem().ReadInt32(out, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i*i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if res.Stats.CompressionRatio(warped.NonDivergent) <= 1 {
		t.Fatal("square kernel should compress")
	}

	e := warped.ComputeEnergy(warped.DefaultEnergyParams(), res.Energy)
	if e.TotalPJ() <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestCompressionPrimitives(t *testing.T) {
	var w warped.WarpReg
	for i := range w {
		w[i] = uint32(100 + i)
	}
	if enc := warped.ChooseEncoding(warped.ModeWarped, &w); enc != warped.Enc41 {
		t.Fatalf("encoding %v, want <4,1>", enc)
	}
	data := w.Bytes()
	p, ok := warped.BestBDIParams(data)
	if !ok {
		t.Fatal("affine data must compress")
	}
	comp, ok := warped.Compress(data, p)
	if !ok {
		t.Fatal("compress failed")
	}
	out := make([]byte, len(data))
	if err := warped.Decompress(comp, p, out); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestBenchmarkRegistryExposed(t *testing.T) {
	if len(warped.Benchmarks()) < 14 {
		t.Fatal("suite must expose at least 14 benchmarks")
	}
	if _, ok := warped.BenchmarkByName("pathfinder"); !ok {
		t.Fatal("pathfinder missing")
	}
	if len(warped.ExperimentIDs()) != 33 {
		t.Fatalf("expected 33 exhibits (20 paper + 5 ablations + 1 fault study + 3 scheme comparisons + 4 gemm tiling), got %d", len(warped.ExperimentIDs()))
	}
}

func TestRunBenchmarkThroughPublicAPI(t *testing.T) {
	cfg := warped.DefaultConfig()
	cfg.NumSMs = 2
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := warped.BenchmarkByName("lib")
	inst, err := b.Build(gpu.Mem(), warped.Small)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Run(inst.Launch)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(gpu.Mem()); err != nil {
		t.Fatal(err)
	}
	// LIB's defining property through the public API: near-total <4,0>.
	if r := res.Stats.CompressionRatio(warped.NonDivergent); r < 4 {
		t.Fatalf("lib compression ratio %v, want near 8", r)
	}
}

// Package warped is the public API of the warped-compression reproduction
// (Lee et al., "Warped-Compression: Enabling Power Efficient GPUs through
// Register Compression", ISCA 2015).
//
// It exposes four layers:
//
//   - the compression primitives (BDI over 128-byte warp registers, the
//     fixed <4,0>/<4,1>/<4,2> encodings and the design-space explorer);
//   - the cycle-level SIMT GPU model (Table 2 microarchitecture) with the
//     warped-compression register file path, a SASS-like ISA and a text
//     assembler for writing kernels;
//   - the Table 3 energy model;
//   - the 22-benchmark suite and the experiment runners that regenerate
//     every table and figure of the paper's evaluation.
//
// Quick start:
//
//	gpu, _ := warped.NewGPU(warped.DefaultConfig())
//	kernel, _ := warped.Assemble("scale", src)
//	res, _ := gpu.Run(warped.Launch{Kernel: kernel, Grid: warped.Dim3{X: 30}, Block: warped.Dim3{X: 256}})
//	fmt.Println(res.Cycles, res.Stats.CompressionRatio(warped.NonDivergent))
package warped

import (
	"context"
	"io"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exectrace"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// --- Compression primitives (the paper's core contribution) ---

// WarpReg is one warp register: 32 lane values of 32 bits.
type WarpReg = core.WarpReg

// Encoding is the 2-bit compression range indicator (uncompressed, <4,0>,
// <4,1> or <4,2>).
type Encoding = core.Encoding

// Encoding values.
const (
	EncUncompressed = core.EncUncompressed
	Enc40           = core.Enc40
	Enc41           = core.Enc41
	Enc42           = core.Enc42
)

// Mode is the compression policy (off, warped, or a single fixed choice).
type Mode = core.Mode

// Compression modes.
const (
	ModeOff    = core.ModeOff
	ModeWarped = core.ModeWarped
	ModeOnly40 = core.ModeOnly40
	ModeOnly41 = core.ModeOnly41
	ModeOnly42 = core.ModeOnly42
)

// BDIParams is one <base,delta> configuration of the BDI algorithm.
type BDIParams = core.Params

// Compress encodes a 128-byte warp register image with the given BDI
// parameters; ok is false when the data does not fit.
func Compress(data []byte, p BDIParams) ([]byte, bool) { return core.Compress(data, p) }

// CompressInto is the allocation-free form of Compress: the encoded bytes
// are appended to dst (which may be a reused buffer, e.g. sliced to [:0])
// and the extended slice is returned.
func CompressInto(dst, data []byte, p BDIParams) ([]byte, bool) {
	return core.CompressInto(dst, data, p)
}

// Decompress reverses Compress.
func Decompress(comp []byte, p BDIParams, out []byte) error { return core.Decompress(comp, p, out) }

// BestBDIParams runs the full design-space explorer of paper §4 / Fig 5.
func BestBDIParams(data []byte) (BDIParams, bool) { return core.BestParams(data) }

// ChooseEncoding applies a compression mode to a warp register value vector,
// returning the encoding the hardware compressor would store.
func ChooseEncoding(m Mode, vals *WarpReg) Encoding { return m.Choose(vals) }

// --- Compression backends (schemes/v1) ---

// Compressor is one pluggable register-compression backend: a pattern
// classifier (Choose) plus the per-class codec, all allocation-free on the
// hot path. See Config.Compression for selecting one by name.
type Compressor = core.Compressor

// DefaultCompressionScheme is the backend used when Config.Compression is
// empty: the paper's BDI variant.
const DefaultCompressionScheme = core.DefaultScheme

// CompressionSchemes lists the registered backend names in sorted order
// (bdi, fpc, static).
func CompressionSchemes() []string { return core.Schemes() }

// CompressionSchemeRegistered reports whether name is a registered backend
// ("" counts as the default scheme).
func CompressionSchemeRegistered(name string) bool { return core.SchemeRegistered(name) }

// NewCompressor builds a fresh instance of a registered backend by name.
func NewCompressor(name string) (Compressor, error) { return core.NewCompressor(name) }

// SchemeEnergyParams returns DefaultEnergyParams with the compression-unit
// constants replaced by the named scheme's costs (energy.CostOfScheme); the
// cmp1-schemes exhibits use it for honest cross-scheme comparisons.
func SchemeEnergyParams(name string) EnergyParams { return energy.ParamsForScheme(name) }

// --- GPU model ---

// Config is the full microarchitectural configuration (paper Table 2 plus
// design-space knobs).
type Config = sim.Config

// GPU is the simulated device.
type GPU = sim.GPU

// Result is the outcome of one kernel launch. It marshals to (and
// unmarshals from) the versioned JSON encoding identified by ResultSchema.
type Result = sim.Result

// ResultSchema identifies the stable, versioned JSON encoding of Result
// (see DESIGN.md §"Result JSON schema").
const ResultSchema = sim.ResultSchema

// Stats are the per-launch counters every figure derives from.
type Stats = stats.Stats

// Phase selects the divergence phase of phase-split statistics.
type Phase = stats.Phase

// Divergence phases.
const (
	NonDivergent = stats.NonDivergent
	Divergent    = stats.Divergent
)

// ConfigError is the typed validation failure of a Config: Field names the
// offending field, Reason says why.
type ConfigError = sim.ConfigError

// FaultConfig selects the deterministic register-file fault campaign of a
// simulation: permanently stuck-at banks, transient per-write bit flips,
// and RRCD-style redirection of compressed registers into healthy banks.
// The zero value disables injection. See Config.Faults.
type FaultConfig = faults.Config

// ParseFaultSpec parses a "key=value,..." fault specification (keys seed,
// stuck, transient, redirect) as accepted by warpedsim -inject.
func ParseFaultSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// DefaultConfig returns paper Table 2 with warped-compression on.
func DefaultConfig() Config { return sim.DefaultConfig() }

// BaselineConfig returns the paper's no-compression baseline.
func BaselineConfig() Config { return sim.BaselineConfig() }

// NewGPU builds a simulated GPU.
func NewGPU(c Config) (*GPU, error) { return sim.New(c) }

// --- Execution traces (warped.trace/v1) ---
//
// The simulator's functional front-end and timing/compression/energy
// back-end are split behind a versioned trace format: GPU.Record executes
// a launch once and captures everything the back-end needs, and GPU.Replay
// re-times the recording under any configuration with byte-identical
// results. See DESIGN.md §15.

// TraceSchema identifies the versioned execution-trace container format,
// the first header field of every serialized trace.
const TraceSchema = exectrace.Schema

// Trace is a recorded run: a self-describing header plus one recorded
// launch per kernel invocation.
type Trace = exectrace.Trace

// TraceMeta is the trace header (schema, provenance, launch count).
type TraceMeta = exectrace.Meta

// TraceLaunch is the recorded functional execution of one kernel launch,
// self-contained (kernel image, geometry, value streams) so replay needs
// neither the benchmark registry nor its input generators.
type TraceLaunch = exectrace.Launch

// ErrUntraceable rejects recording a launch whose replayed value streams
// would be schedule-dependent (atomic and non-atomic access to the same
// global address). Such launches must run in execute mode.
var ErrUntraceable = sim.ErrUntraceable

// WriteTrace serializes a trace in the TraceSchema wire format.
func WriteTrace(w io.Writer, t *Trace) error { return exectrace.Write(w, t) }

// ReadTrace deserializes a TraceSchema trace, validating it structurally.
func ReadTrace(r io.Reader) (*Trace, error) { return exectrace.Read(r) }

// --- ISA and assembler ---

// Kernel is an assembled kernel image.
type Kernel = isa.Kernel

// Launch describes one kernel invocation.
type Launch = isa.Launch

// Dim3 is launch geometry.
type Dim3 = isa.Dim3

// Memory is device global memory.
type Memory = mem.Global

// Assemble builds a kernel from assembly text (see internal/asm for the
// syntax; examples/quickstart shows a complete kernel).
func Assemble(name, src string) (*Kernel, error) { return asm.Assemble(name, src) }

// --- Energy model ---

// EnergyParams are the Table 3 technology constants.
type EnergyParams = energy.Params

// EnergyEvents are the countable events energy is computed from.
type EnergyEvents = energy.Events

// EnergyBreakdown splits register file energy by component.
type EnergyBreakdown = energy.Breakdown

// DefaultEnergyParams returns paper Table 3.
func DefaultEnergyParams() EnergyParams { return energy.DefaultParams() }

// ComputeEnergy applies the energy model to a launch's event counts.
func ComputeEnergy(p EnergyParams, ev EnergyEvents) EnergyBreakdown { return energy.Compute(p, ev) }

// --- Benchmarks ---

// Benchmark is one workload of the evaluation suite.
type Benchmark = kernels.Benchmark

// BenchmarkInstance is a built, ready-to-run benchmark launch.
type BenchmarkInstance = kernels.Instance

// Scale selects benchmark problem sizes.
type Scale = kernels.Scale

// Benchmark scales.
const (
	Small  = kernels.Small
	Medium = kernels.Medium
	Large  = kernels.Large
)

// Benchmarks lists the 22-workload evaluation suite.
func Benchmarks() []*Benchmark { return kernels.All() }

// BenchmarkByName finds one benchmark.
func BenchmarkByName(name string) (*Benchmark, bool) { return kernels.ByName(name) }

// --- Experiments (paper tables and figures) ---

// ExperimentRunner regenerates paper exhibits on the parallel engine:
// (configuration × benchmark) simulation jobs fan out across a worker pool
// with a single-flight memo cache, so shared configurations simulate
// exactly once and tables come out byte-identical at every parallelism
// level.
type ExperimentRunner = experiments.Runner

// ExperimentOption configures an ExperimentRunner built with
// NewExperiments.
type ExperimentOption = experiments.Option

// ExperimentEvent is one structured progress record: per-job start/finish,
// simulated cycles, wall time and cache hits.
type ExperimentEvent = experiments.Event

// ExperimentEventKind classifies an ExperimentEvent.
type ExperimentEventKind = experiments.EventKind

// Experiment progress event kinds.
const (
	ExperimentJobStart = experiments.EventJobStart
	ExperimentJobDone  = experiments.EventJobDone
	ExperimentCacheHit = experiments.EventCacheHit
	ExperimentJobRetry = experiments.EventJobRetry
)

// Table is one regenerated table/figure.
type Table = experiments.Table

// Report is the outcome of a partial (keep-going) experiment run: every
// table that could be assembled plus a structured account of failed jobs
// and exhibits.
type Report = experiments.Report

// JobFailure identifies one failed (benchmark, configuration) job.
type JobFailure = experiments.JobFailure

// ExhibitFailure records an exhibit that could not be assembled at all.
type ExhibitFailure = experiments.ExhibitFailure

// JobError is the typed failure of one simulation job, carrying the
// benchmark, configuration signature and attempt count.
type JobError = experiments.JobError

// PanicError is a panic recovered from a simulation job or exhibit,
// converted to an error so one broken workload cannot take down a suite.
type PanicError = experiments.PanicError

// StallError reports a job canceled by the progress watchdog.
type StallError = experiments.StallError

// TransientError marks a failure as retryable.
type TransientError = experiments.TransientError

// ErrOutputMismatch marks a simulation that completed with output differing
// from the host reference; the Result is still returned alongside it.
var ErrOutputMismatch = experiments.ErrOutputMismatch

// ErrMaxCycles marks a simulation aborted by its cycle budget.
var ErrMaxCycles = sim.ErrMaxCycles

// NewExperiments builds an experiment runner, validating the base hardware
// configuration (a *ConfigError describes the first invalid field). ctx
// governs every simulation it schedules: cancel it (or let its deadline
// expire) and in-flight runs abort promptly with an error wrapping
// ctx.Err().
//
//	r, err := warped.NewExperiments(ctx,
//	    warped.WithScale(warped.Medium),
//	    warped.WithParallelism(0), // 0 = GOMAXPROCS
//	    warped.WithProgress(func(ev warped.ExperimentEvent) { ... }))
//	tables, err := r.RunAll()
func NewExperiments(ctx context.Context, opts ...ExperimentOption) (*ExperimentRunner, error) {
	return experiments.New(ctx, opts...)
}

// WithScale selects the workload size (default Medium).
func WithScale(s Scale) ExperimentOption { return experiments.WithScale(s) }

// WithBenchmarks restricts the suite to the named benchmarks; no arguments
// restores the full suite.
func WithBenchmarks(names ...string) ExperimentOption { return experiments.WithBenchmarks(names...) }

// WithParallelism bounds concurrent simulations; n <= 0 means GOMAXPROCS.
func WithParallelism(n int) ExperimentOption { return experiments.WithParallelism(n) }

// WithSMParallel shards each simulation's per-cycle SM loop across n worker
// goroutines. n <= 0 (the default) divides the machine's cores across the
// runner's worker slots automatically. Results are byte-identical at every
// shard count.
func WithSMParallel(n int) ExperimentOption { return experiments.WithSMParallel(n) }

// WithProgress installs a structured progress callback (calls are
// serialized; fn needs no locking).
func WithProgress(fn func(ExperimentEvent)) ExperimentOption {
	return experiments.WithProgress(fn)
}

// WithProgressWriter logs one text line per completed simulation to w
// (the legacy progress format).
func WithProgressWriter(w io.Writer) ExperimentOption { return experiments.WithProgressWriter(w) }

// WithBaseConfig overrides the hardware configuration experiments derive
// their per-exhibit configurations from.
func WithBaseConfig(base Config) ExperimentOption { return experiments.WithBaseConfig(base) }

// WithRetries grants every job n extra attempts after a transient failure
// (TransientError or a watchdog stall); deterministic failures never retry.
func WithRetries(n int) ExperimentOption { return experiments.WithRetries(n) }

// WithRetryBackoff sets the first retry delay (default 100ms); each
// subsequent retry doubles it.
func WithRetryBackoff(d time.Duration) ExperimentOption { return experiments.WithRetryBackoff(d) }

// WithWatchdog cancels any simulation that issues no new instructions for a
// full window d, failing it with a *StallError. d <= 0 disables (default).
func WithWatchdog(d time.Duration) ExperimentOption { return experiments.WithWatchdog(d) }

// ConfigSignature renders a Config as a stable, versioned string that is
// equal exactly when two configurations produce identical simulations —
// the identity the experiment engine's memo cache and the warpedd result
// cache both key on (see experiments.ConfigSignatureVersion).
func ConfigSignature(c *Config) string { return experiments.ConfigSignature(c) }

// ExperimentIDs lists every regenerable exhibit (table1..3, fig2..fig21).
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns an exhibit's caption.
func ExperimentTitle(id string) (string, bool) { return experiments.Title(id) }

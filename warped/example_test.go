package warped_test

import (
	"fmt"

	"repro/warped"
)

// ExampleCompress demonstrates the BDI primitive on a stride-1 register:
// 32 consecutive lane values fit in a 4-byte base plus 31 one-byte deltas.
func ExampleCompress() {
	var w warped.WarpReg
	for lane := range w {
		w[lane] = uint32(1000 + lane)
	}
	p, _ := warped.BestBDIParams(w.Bytes())
	comp, _ := warped.Compress(w.Bytes(), p)
	fmt.Printf("%s compresses 128 bytes to %d bytes (%d register banks)\n",
		p, len(comp), p.Banks())
	// Output:
	// <4,1> compresses 128 bytes to 35 bytes (3 register banks)
}

// ExampleChooseEncoding shows the hardware compressor's fixed choices on
// the three value patterns the paper's Figure 2 bins describe.
func ExampleChooseEncoding() {
	patterns := map[string]int32{"uniform": 0, "thread-indexed": 1, "strided": 500}
	for _, name := range []string{"uniform", "thread-indexed", "strided"} {
		var w warped.WarpReg
		for lane := range w {
			w[lane] = uint32(int32(lane) * patterns[name])
		}
		fmt.Printf("%s -> %s\n", name, warped.ChooseEncoding(warped.ModeWarped, &w))
	}
	// Output:
	// uniform -> <4,0>
	// thread-indexed -> <4,1>
	// strided -> <4,2>
}

// ExampleGPU_Run assembles and runs a minimal kernel end to end.
func ExampleGPU_Run() {
	cfg := warped.DefaultConfig()
	cfg.NumSMs = 1
	gpu, _ := warped.NewGPU(cfg)
	out, _ := gpu.Mem().Alloc(4 * 64)
	kernel, _ := warped.Assemble("double", `
	mov r0, %tid.x
	add r1, r0, r0
	shl r2, r0, 2
	add r2, r2, %param0
	st.global [r2], r1
	exit
`)
	_, err := gpu.Run(warped.Launch{
		Kernel: kernel,
		Grid:   warped.Dim3{X: 1},
		Block:  warped.Dim3{X: 64},
		Params: [8]uint32{out},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	vals, _ := gpu.Mem().ReadInt32(out, 4)
	fmt.Println(vals)
	// Output:
	// [0 2 4 6]
}

// ExampleBDIParams_CompressedSize reproduces the paper's Table 1 math.
func ExampleBDIParams_CompressedSize() {
	for _, p := range []warped.BDIParams{{Base: 4, Delta: 0}, {Base: 4, Delta: 1}, {Base: 4, Delta: 2}} {
		fmt.Printf("%s: %d bytes, %d banks\n", p, p.CompressedSize(), p.Banks())
	}
	// Output:
	// <4,0>: 4 bytes, 1 banks
	// <4,1>: 35 bytes, 3 banks
	// <4,2>: 66 bytes, 5 banks
}

// Regenerating paper exhibits with the parallel experiment engine: the
// runner fans (configuration × benchmark) simulations across a worker
// pool, memoizes shared configurations so each simulates exactly once,
// and streams structured progress events while it works. Output is
// byte-identical at every parallelism level.
//
//	go run ./examples/suite
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/warped"
)

func main() {
	// The context bounds the whole run: cancel it (or hit the deadline)
	// and every in-flight simulation aborts promptly with an error
	// wrapping ctx.Err().
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	runner, err := warped.NewExperiments(ctx,
		warped.WithScale(warped.Small),
		warped.WithBenchmarks("bfs", "hotspot", "pathfinder"),
		warped.WithParallelism(0), // 0 = GOMAXPROCS
		warped.WithProgress(func(ev warped.ExperimentEvent) {
			switch ev.Kind {
			case warped.ExperimentJobStart:
				fmt.Printf("  start %-12s [%s]\n", ev.Benchmark, ev.Config)
			case warped.ExperimentJobDone:
				if ev.Err != nil {
					fmt.Printf("  FAIL  %-12s: %v\n", ev.Benchmark, ev.Err)
					return
				}
				fmt.Printf("  done  %-12s cycles=%-8d (%v)\n", ev.Benchmark, ev.Cycles, ev.Elapsed.Round(time.Millisecond))
			case warped.ExperimentCacheHit:
				fmt.Printf("  hit   %-12s (memoized)\n", ev.Benchmark)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Fig 8 (compression ratio) and Fig 11 (dummy-MOV overhead) share the
	// warped configuration: the second exhibit is served entirely from the
	// memo cache — watch for "hit" lines.
	for _, id := range []string{"fig8", "fig11"} {
		title, _ := warped.ExperimentTitle(id)
		fmt.Printf("%s: %s\n", id, title)
		table, err := runner.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := table.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

// Pathfinder: the paper's §3 motivating workload (its Figure 4 kernel).
// Runs the benchmark with and without warped-compression and reports the
// value-similarity effects the paper describes: narrow-dynamic-range inputs
// (wall costs 0..9) make the DP registers highly compressible.
//
//	go run ./examples/pathfinder
package main

import (
	"fmt"
	"log"

	"repro/warped"
)

func run(cfg warped.Config) *warped.Result {
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, ok := warped.BenchmarkByName("pathfinder")
	if !ok {
		log.Fatal("pathfinder benchmark missing")
	}
	inst, err := b.Build(gpu.Mem(), warped.Medium)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gpu.Run(inst.Launch)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Check(gpu.Mem()); err != nil {
		log.Fatalf("simulated DP result differs from host reference: %v", err)
	}
	return res
}

func main() {
	wc := run(warped.DefaultConfig())
	base := run(warped.BaselineConfig())

	s := &wc.Stats
	fmt.Println("pathfinder (grid DP, wall costs 0..9, tile-boundary divergence)")
	fmt.Printf("  warp instructions      %d (%.1f%% divergent)\n",
		s.Instructions, 100*(1-s.NonDivergentRatio()))
	fmt.Printf("  compression ratio      %.2f non-divergent / %.2f divergent (paper: high, ~3+)\n",
		s.CompressionRatio(warped.NonDivergent), s.CompressionRatio(warped.Divergent))
	fmt.Printf("  dummy MOVs             %.2f%% of instructions (paper: < 2%%)\n",
		100*s.DummyMovRatio())

	p := warped.DefaultEnergyParams()
	e := warped.ComputeEnergy(p, wc.Energy)
	be := warped.ComputeEnergy(p, base.Energy)
	fmt.Printf("  bank accesses          %d vs %d baseline (%.0f%% fewer)\n",
		s.RF.BankReads+s.RF.BankWrites,
		base.Stats.RF.BankReads+base.Stats.RF.BankWrites,
		100*(1-float64(s.RF.BankReads+s.RF.BankWrites)/
			float64(base.Stats.RF.BankReads+base.Stats.RF.BankWrites)))
	fmt.Printf("  register file energy   %.1f uJ vs %.1f uJ baseline (%.1f%% saved)\n",
		e.TotalPJ()/1e6, be.TotalPJ()/1e6, 100*(1-e.TotalPJ()/be.TotalPJ()))
	fmt.Printf("  execution time         %d vs %d cycles (%+.2f%%)\n",
		wc.Cycles, base.Cycles, 100*(float64(wc.Cycles)/float64(base.Cycles)-1))
}

// BFS to fixpoint: a complete multi-launch application. The host launches
// one frontier-expansion kernel per BFS level on the same GPU (device memory
// persists across launches, as on real hardware) until a device-side "work
// was done" flag stays clear — the structure of the real Rodinia bfs driver.
//
//	go run ./examples/bfsfull
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/warped"
)

const bfsWaveSrc = `
.kernel bfswave
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // node id
	setp.ge p0, r1, %param3
@p0	bra Lend
	shl  r2, r1, 2
	add  r3, r2, %param2
	ld.global r4, [r3]               // level[node]
	setp.ne p1, r4, %param4          // in the current frontier?
@p1	bra Lend
	add  r5, r2, %param0
	ld.global r6, [r5]               // rowptr[node]
	ld.global r7, [r5+4]
	setp.ge p2, r6, r7
@p2	bra Lend
Ledge:
	shl  r8, r6, 2
	add  r8, r8, %param1
	ld.global r9, [r8]               // neighbour
	shl  r10, r9, 2
	add  r10, r10, %param2
	ld.global r11, [r10]
	setp.ne p3, r11, -1
@p3	bra Lnext
	add  r12, %param4, 1
	st.global [r10], r12             // claim for the next level
	mov  r13, %param5
	st.global [r13], 1               // raise the "did work" flag
Lnext:
	add  r6, r6, 1
	setp.lt p4, r6, r7
@p4	bra Ledge
Lend:
	exit
`

func main() {
	const (
		block = 256
		ctas  = 24
		nodes = ctas * block
	)

	// Build a random graph with a few long paths so BFS runs many levels.
	r := rand.New(rand.NewSource(7))
	rowptr := make([]int32, nodes+1)
	var colidx []int32
	for n := 0; n < nodes; n++ {
		rowptr[n] = int32(len(colidx))
		colidx = append(colidx, int32((n+1)%nodes)) // a ring guarantees depth
		for e := 0; e < r.Intn(3); e++ {
			colidx = append(colidx, int32(r.Intn(nodes)))
		}
	}
	rowptr[nodes] = int32(len(colidx))

	gpu, err := warped.NewGPU(warped.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mem := gpu.Mem()
	rowAddr, _ := mem.Alloc(4 * len(rowptr))
	colAddr, _ := mem.Alloc(4 * len(colidx))
	lvlAddr, _ := mem.Alloc(4 * nodes)
	flagAddr, _ := mem.Alloc(4)
	if err := mem.WriteInt32(rowAddr, rowptr); err != nil {
		log.Fatal(err)
	}
	if err := mem.WriteInt32(colAddr, colidx); err != nil {
		log.Fatal(err)
	}
	level := make([]int32, nodes)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	if err := mem.WriteInt32(lvlAddr, level); err != nil {
		log.Fatal(err)
	}

	kernel, err := warped.Assemble("bfswave", bfsWaveSrc)
	if err != nil {
		log.Fatal(err)
	}

	var totalCycles, totalMovs uint64
	depth := int32(0)
	for ; ; depth++ {
		if err := mem.WriteInt32(flagAddr, []int32{0}); err != nil {
			log.Fatal(err)
		}
		res, err := gpu.Run(warped.Launch{
			Kernel: kernel,
			Grid:   warped.Dim3{X: ctas},
			Block:  warped.Dim3{X: block},
			Params: [8]uint32{rowAddr, colAddr, lvlAddr, nodes, uint32(depth), flagAddr},
		})
		if err != nil {
			log.Fatal(err)
		}
		totalCycles += res.Cycles
		totalMovs += res.Stats.DummyMovs
		flag, err := mem.ReadInt32(flagAddr, 1)
		if err != nil {
			log.Fatal(err)
		}
		if flag[0] == 0 {
			break
		}
	}

	final, err := mem.ReadInt32(lvlAddr, nodes)
	if err != nil {
		log.Fatal(err)
	}
	reached, maxLevel := 0, int32(0)
	for _, l := range final {
		if l >= 0 {
			reached++
			if l > maxLevel {
				maxLevel = l
			}
		}
	}

	// Host-side BFS cross-check.
	wantReached := hostBFS(rowptr, colidx, nodes)
	if reached != wantReached {
		log.Fatalf("GPU reached %d nodes, host reference says %d", reached, wantReached)
	}

	fmt.Printf("BFS over %d nodes: %d launches, depth %d, %d/%d reachable (verified against host BFS)\n",
		nodes, depth+1, maxLevel, reached, nodes)
	fmt.Printf("total simulated cycles %d, dummy MOVs %d\n", totalCycles, totalMovs)
}

// hostBFS counts reachable nodes from node 0.
func hostBFS(rowptr, colidx []int32, nodes int) int {
	seen := make([]bool, nodes)
	seen[0] = true
	frontier := []int32{0}
	count := 1
	for len(frontier) > 0 {
		var next []int32
		for _, n := range frontier {
			for e := rowptr[n]; e < rowptr[n+1]; e++ {
				if nb := colidx[e]; !seen[nb] {
					seen[nb] = true
					count++
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return count
}

// Divergence study: how warped-compression behaves under branch divergence
// (paper §5.2 / §6.3). Runs the suite's divergent workloads and shows the
// dummy-MOV overhead, the compressed-register census by phase, and the
// per-bank power-gating pattern of Figure 10.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/warped"
)

func main() {
	names := []string{"bfs", "mum", "spmv", "nw", "lud", "pathfinder"}
	fmt.Println("divergent-workload study (warped-compression, medium scale)")
	fmt.Printf("%-11s %9s %8s %8s %10s %10s\n",
		"benchmark", "nondiv%", "movs%", "crDiv", "comp-nd", "comp-div")

	var gatedSum [32]float64
	for _, name := range names {
		gpu, err := warped.NewGPU(warped.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		b, ok := warped.BenchmarkByName(name)
		if !ok {
			log.Fatalf("benchmark %s missing", name)
		}
		inst, err := b.Build(gpu.Mem(), warped.Medium)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gpu.Run(inst.Launch)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Check(gpu.Mem()); err != nil {
			log.Fatalf("%s: wrong output: %v", name, err)
		}
		s := &res.Stats
		nd, _ := s.CompressedRegFraction(warped.NonDivergent)
		dv, okDv := s.CompressedRegFraction(warped.Divergent)
		dvs := "n/a"
		if okDv {
			dvs = fmt.Sprintf("%.2f", dv)
		}
		fmt.Printf("%-11s %8.1f%% %7.2f%% %8.2f %10.2f %10s\n",
			name,
			100*s.NonDivergentRatio(),
			100*s.DummyMovRatio(),
			s.CompressionRatio(warped.Divergent),
			nd, dvs)
		for i := 0; i < 32; i++ {
			if s.RF.Cycles > 0 {
				gatedSum[i] += float64(s.RF.PerBankGatedCycles[i]) / float64(s.RF.Cycles)
			}
		}
	}

	// Figure 10's shape: within each 8-bank cluster, gating grows toward
	// the higher banks because compressed data packs into the lowest ones.
	fmt.Println("\npower-gated cycle fraction per bank (avg; 4 clusters of 8):")
	for c := 0; c < 4; c++ {
		var bars []string
		for i := 0; i < 8; i++ {
			bars = append(bars, fmt.Sprintf("%4.0f%%", 100*gatedSum[c*8+i]/float64(len(names))))
		}
		fmt.Printf("  cluster %d: %s\n", c, strings.Join(bars, " "))
	}
}

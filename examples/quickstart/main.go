// Quickstart: assemble a tiny SIMT kernel, run it on the simulated GPU with
// warped-compression enabled, and print what the register file saw.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/warped"
)

// saxpy computes y[i] = a*x[i] + y[i] — the classic first CUDA kernel. The
// thread-index-derived addresses compress with 1-byte deltas (<4,1>) and the
// loaded data compresses according to its dynamic range, exactly the effect
// the paper exploits.
const saxpySrc = `
.kernel saxpy
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // i = blockIdx.x*blockDim.x + tid
	shl  r2, r1, 2                   // byte offset
	add  r3, r2, %param0
	ld.global r4, [r3]               // x[i]
	add  r5, r2, %param1
	ld.global r6, [r5]               // y[i]
	mov  r7, %param2                 // a (bit pattern of a float)
	fma  r8, r7, r4, r6              // a*x + y
	st.global [r5], r8
	exit
`

func main() {
	gpu, err := warped.NewGPU(warped.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Host setup: two 8K-element vectors.
	const n = 8192
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i % 64)
		y[i] = 1
	}
	mem := gpu.Mem()
	xAddr, err := mem.Alloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	yAddr, err := mem.Alloc(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	if err := mem.WriteFloat32(xAddr, x); err != nil {
		log.Fatal(err)
	}
	if err := mem.WriteFloat32(yAddr, y); err != nil {
		log.Fatal(err)
	}

	kernel, err := warped.Assemble("saxpy", saxpySrc)
	if err != nil {
		log.Fatal(err)
	}
	const a = float32(2.0)
	res, err := gpu.Run(warped.Launch{
		Kernel: kernel,
		Grid:   warped.Dim3{X: n / 256},
		Block:  warped.Dim3{X: 256},
		Params: [8]uint32{xAddr, yAddr, floatBits(a)},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify a few results on the host.
	got, err := mem.ReadFloat32(yAddr, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y[0..7] = %v\n", got)

	s := &res.Stats
	fmt.Printf("cycles: %d, warp instructions: %d\n", res.Cycles, s.Instructions)
	fmt.Printf("register writes compressed at ratio %.2f\n",
		s.CompressionRatio(warped.NonDivergent))
	fmt.Printf("bank accesses: %d reads + %d writes (8 per access without compression)\n",
		s.RF.BankReads, s.RF.BankWrites)

	e := warped.ComputeEnergy(warped.DefaultEnergyParams(), res.Energy)
	fmt.Printf("register file energy: %.2f uJ (dynamic %.2f, leakage %.2f, comp %.2f, decomp %.2f)\n",
		e.TotalPJ()/1e6, e.DynamicPJ/1e6, e.LeakagePJ/1e6, e.CompressPJ/1e6, e.DecompressPJ/1e6)
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

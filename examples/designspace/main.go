// Design-space exploration: the paper's §6.6-6.8 sweeps on a single
// workload. Compares the fixed single-choice compressors against
// warped-compression, and shows how compression/decompression latency eats
// into the (tiny) performance margin — the shapes of Figures 15, 16, 20, 21.
//
//	go run ./examples/designspace [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/warped"
)

func main() {
	bench := "backprop"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	b, ok := warped.BenchmarkByName(bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", bench)
	}

	run := func(cfg warped.Config) *warped.Result {
		gpu, err := warped.NewGPU(cfg)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := b.Build(gpu.Mem(), warped.Medium)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gpu.Run(inst.Launch)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Check(gpu.Mem()); err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(warped.BaselineConfig())
	baseE := warped.ComputeEnergy(warped.DefaultEnergyParams(), base.Energy).TotalPJ()

	fmt.Printf("design space on %q (normalized to no-compression baseline)\n\n", bench)
	fmt.Printf("%-12s %12s %12s\n", "compressor", "comp.ratio", "energy")
	modes := []struct {
		name string
		mode warped.Mode
	}{
		{"<4,0> only", warped.ModeOnly40},
		{"<4,1> only", warped.ModeOnly41},
		{"<4,2> only", warped.ModeOnly42},
		{"warped", warped.ModeWarped},
	}
	for _, m := range modes {
		cfg := warped.DefaultConfig()
		cfg.Mode = m.mode
		res := run(cfg)
		s := &res.Stats
		orig := s.WriteOrigBanks[warped.NonDivergent] + s.WriteOrigBanks[warped.Divergent]
		comp := s.WriteCompBanks[warped.NonDivergent] + s.WriteCompBanks[warped.Divergent]
		ratio := 1.0
		if comp > 0 {
			ratio = float64(orig) / float64(comp)
		}
		e := warped.ComputeEnergy(warped.DefaultEnergyParams(), res.Energy).TotalPJ()
		fmt.Printf("%-12s %12.2f %11.1f%%\n", m.name, ratio, 100*e/baseE)
	}

	fmt.Printf("\n%-22s %12s\n", "latency (comp/decomp)", "exec time")
	for _, lat := range []struct{ c, d int }{{2, 1}, {4, 2}, {8, 4}, {8, 8}} {
		cfg := warped.DefaultConfig()
		cfg.CompressLatency = lat.c
		cfg.DecompressLatency = lat.d
		res := run(cfg)
		fmt.Printf("%10d / %-9d %11.2f%%\n", lat.c, lat.d,
			100*float64(res.Cycles)/float64(base.Cycles))
	}
}

#!/usr/bin/env bash
# store_restart_smoke.sh — end-to-end check of the disk store across a
# worker restart.
#
# Boots one warpedd worker with a content-addressed store directory, runs
# the smoke campaign, drains the worker with SIGTERM (which flushes every
# write-through persist), then starts a brand-new process on the same
# store directory and re-runs the identical campaign. The second run must
# be served from the store — >= 90% store hits, zero recomputations — and
# its merged report must be byte-identical to the first. This is the
# rolling-restart contract of DESIGN.md §16 on real processes, sockets and
# disks.
#
# Usage: scripts/store_restart_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${1:-18079}"
SPEC="examples/sweeps/smoke.json"
JOBS=8 # smoke.json: 2 benchmarks x 4 CompressLatency points
WORKDIR="$(mktemp -d)"
STOREDIR="$WORKDIR/store"
PID=""

cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== building warpedd and warpedctl"
go build -o "$WORKDIR/warpedd" ./cmd/warpedd
go build -o "$WORKDIR/warpedctl" ./cmd/warpedctl

start_worker() {
    "$WORKDIR/warpedd" -addr "127.0.0.1:$PORT" -scale small \
        -store-dir "$STOREDIR" \
        >>"$WORKDIR/worker.log" 2>&1 &
    PID=$!
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "worker on :$PORT never became healthy" >&2
    cat "$WORKDIR/worker.log" >&2
    return 1
}

stop_worker() {
    # SIGTERM drains: in-flight jobs finish and pending store writes are
    # flushed before the process exits.
    kill -TERM "$PID"
    wait "$PID" 2>/dev/null || true
    PID=""
}

echo "== cold run: worker computes and persists the campaign"
start_worker
"$WORKDIR/warpedctl" sweep -workers "http://127.0.0.1:$PORT" \
    -spec "$SPEC" -o "$WORKDIR/cold.json" -quiet

echo "== draining and restarting the worker on the same store dir"
stop_worker
start_worker

echo "== warm run: the same campaign against the fresh process"
"$WORKDIR/warpedctl" sweep -workers "http://127.0.0.1:$PORT" \
    -spec "$SPEC" -o "$WORKDIR/warm.json" -quiet

echo "== comparing reports"
if ! cmp "$WORKDIR/cold.json" "$WORKDIR/warm.json"; then
    echo "FAIL: warm report differs from cold report" >&2
    diff "$WORKDIR/cold.json" "$WORKDIR/warm.json" >&2 || true
    exit 1
fi

echo "== checking store-hit fraction on the restarted worker"
METRICS="$(curl -fsS "http://127.0.0.1:$PORT/metrics")"
HITS="$(printf '%s\n' "$METRICS" | awk '$1 == "warpedd_store_hits_total" {print int($2)}')"
QUARANTINED="$(printf '%s\n' "$METRICS" | awk '$1 == "warpedd_store_quarantined_total" {print int($2)}')"
if [ -z "$HITS" ]; then
    echo "FAIL: warpedd_store_hits_total missing from /metrics" >&2
    exit 1
fi
if [ "$((HITS * 10))" -lt "$((JOBS * 9))" ]; then
    echo "FAIL: store hits $HITS/$JOBS below the 90% bar" >&2
    exit 1
fi
if [ "${QUARANTINED:-0}" -ne 0 ]; then
    echo "FAIL: restarted worker quarantined $QUARANTINED entries on a healthy store" >&2
    exit 1
fi

echo "PASS: restart served $HITS/$JOBS jobs from the store, reports byte-identical ($(wc -c <"$WORKDIR/warm.json") bytes)"

#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end check of the cluster sharding path.
#
# Boots two warpedd workers, runs the smoke campaign sharded across both
# with warpedctl, then runs the identical campaign against a single
# worker and requires the two merged reports to be byte-identical: the
# determinism contract of DESIGN.md §14 on real processes and sockets.
#
# Usage: scripts/cluster_smoke.sh [port1 [port2]]
set -euo pipefail

cd "$(dirname "$0")/.."

PORT1="${1:-18077}"
PORT2="${2:-18078}"
SPEC="examples/sweeps/smoke.json"
WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in "${PIDS[@]:-}"; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== building warpedd and warpedctl"
go build -o "$WORKDIR/warpedd" ./cmd/warpedd
go build -o "$WORKDIR/warpedctl" ./cmd/warpedctl

start_worker() {
    local port="$1"
    "$WORKDIR/warpedd" -addr "127.0.0.1:$port" -scale small \
        >"$WORKDIR/worker-$port.log" 2>&1 &
    PIDS+=($!)
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "worker on :$port never became healthy" >&2
    cat "$WORKDIR/worker-$port.log" >&2
    return 1
}

echo "== starting two workers (:$PORT1, :$PORT2)"
start_worker "$PORT1"
start_worker "$PORT2"

echo "== sharded sweep across both workers"
"$WORKDIR/warpedctl" sweep \
    -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2" \
    -spec "$SPEC" -o "$WORKDIR/sharded.json" -quiet

echo "== same sweep against a single worker"
"$WORKDIR/warpedctl" sweep \
    -workers "http://127.0.0.1:$PORT1" \
    -spec "$SPEC" -o "$WORKDIR/single.json" -quiet

echo "== comparing reports"
if ! cmp "$WORKDIR/sharded.json" "$WORKDIR/single.json"; then
    echo "FAIL: sharded report differs from single-node report" >&2
    diff "$WORKDIR/sharded.json" "$WORKDIR/single.json" >&2 || true
    exit 1
fi

echo "== worker fleet health (warpedctl info)"
"$WORKDIR/warpedctl" info \
    -workers "http://127.0.0.1:$PORT1,http://127.0.0.1:$PORT2"

echo "PASS: sharded sweep is byte-identical to single-node ($(wc -c <"$WORKDIR/sharded.json") bytes)"

// Package repro_test is the benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation, plus microbenchmarks of the
// compression primitives and the simulator core.
//
// Each BenchmarkFigNN/TableN regenerates its exhibit end-to-end (all
// simulations included) at Small scale on a 4-SM device, and reports the
// exhibit's headline number as a custom metric. The figure-quality runs use
// `go run ./cmd/warpedbench -exp all` at medium scale.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/regfile"
	"repro/internal/sim"
	"repro/warped"
)

// benchRunner builds the Small-scale, 4-SM sequential runner the harness
// uses so that one exhibit regeneration stays around a second.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	base := sim.DefaultConfig()
	base.NumSMs = 4
	r, err := experiments.New(context.Background(),
		experiments.WithScale(kernels.Small),
		experiments.WithParallelism(1),
		experiments.WithBaseConfig(base))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// benchExhibit regenerates one exhibit per iteration and reports `metric`
// extracted from the resulting table.
func benchExhibit(b *testing.B, id string, metricName string, metric func(*experiments.Table) float64) {
	b.Helper()
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := benchRunner(b).Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			last = metric(tab)
		}
	}
	if metric != nil && metricName != "" && !math.IsNaN(last) {
		b.ReportMetric(last, metricName)
	}
}

// avgCol returns the named column's value in the AVG row.
func avgCol(tab *experiments.Table, col string) float64 {
	ci := -1
	for i, c := range tab.Columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return math.NaN()
	}
	for _, row := range tab.Rows {
		if row.Label == "AVG" {
			return row.Values[ci]
		}
	}
	return math.NaN()
}

func BenchmarkTable1(b *testing.B) {
	benchExhibit(b, "table1", "", nil)
}

func BenchmarkTable2(b *testing.B) {
	benchExhibit(b, "table2", "", nil)
}

func BenchmarkTable3(b *testing.B) {
	benchExhibit(b, "table3", "", nil)
}

func BenchmarkFig2(b *testing.B) {
	benchExhibit(b, "fig2", "nondiv-random-frac", func(t *experiments.Table) float64 {
		return avgCol(t, "nd-random")
	})
}

func BenchmarkFig3(b *testing.B) {
	benchExhibit(b, "fig3", "nondiv-ratio", func(t *experiments.Table) float64 {
		return avgCol(t, "non-divergent")
	})
}

func BenchmarkFig5(b *testing.B) {
	benchExhibit(b, "fig5", "best-is-4-0-frac", func(t *experiments.Table) float64 {
		return avgCol(t, "<4,0>")
	})
}

func BenchmarkFig8(b *testing.B) {
	benchExhibit(b, "fig8", "comp-ratio-nondiv", func(t *experiments.Table) float64 {
		return avgCol(t, "non-divergent")
	})
}

func BenchmarkFig9(b *testing.B) {
	benchExhibit(b, "fig9", "wc-energy-norm", func(t *experiments.Table) float64 {
		return avgCol(t, "wc-total")
	})
}

func BenchmarkFig10(b *testing.B) {
	benchExhibit(b, "fig10", "", nil)
}

func BenchmarkFig11(b *testing.B) {
	benchExhibit(b, "fig11", "dummy-mov-frac", func(t *experiments.Table) float64 {
		return avgCol(t, "mov-fraction")
	})
}

func BenchmarkFig12(b *testing.B) {
	benchExhibit(b, "fig12", "compressed-frac-nondiv", func(t *experiments.Table) float64 {
		return avgCol(t, "non-divergent")
	})
}

func BenchmarkFig13(b *testing.B) {
	benchExhibit(b, "fig13", "norm-cycles", func(t *experiments.Table) float64 {
		return avgCol(t, "normalized-cycles")
	})
}

func BenchmarkFig14(b *testing.B) {
	benchExhibit(b, "fig14", "lrr-energy-norm", func(t *experiments.Table) float64 {
		return avgCol(t, "lrr")
	})
}

func BenchmarkFig15(b *testing.B) {
	benchExhibit(b, "fig15", "only40-ratio", func(t *experiments.Table) float64 {
		return avgCol(t, "<4,0>")
	})
}

func BenchmarkFig16(b *testing.B) {
	benchExhibit(b, "fig16", "only40-energy-norm", func(t *experiments.Table) float64 {
		return avgCol(t, "<4,0>")
	})
}

func BenchmarkFig17(b *testing.B) {
	benchExhibit(b, "fig17", "energy-at-2.5x-unit", func(t *experiments.Table) float64 {
		return avgCol(t, "2.5x")
	})
}

func BenchmarkFig18(b *testing.B) {
	benchExhibit(b, "fig18", "energy-at-2.5x-bank", func(t *experiments.Table) float64 {
		return avgCol(t, "2.5x")
	})
}

func BenchmarkFig19(b *testing.B) {
	benchExhibit(b, "fig19", "energy-at-100pct-wire", func(t *experiments.Table) float64 {
		return avgCol(t, "100%")
	})
}

func BenchmarkFig20(b *testing.B) {
	benchExhibit(b, "fig20", "cycles-at-8cy-comp", func(t *experiments.Table) float64 {
		return avgCol(t, "8cy")
	})
}

func BenchmarkFig21(b *testing.B) {
	benchExhibit(b, "fig21", "cycles-at-8cy-decomp", func(t *experiments.Table) float64 {
		return avgCol(t, "8cy")
	})
}

// --- Parallel engine scaling ---

// benchSuite regenerates fig9 (every benchmark under both the warped and
// the baseline configuration — 16 simulations) at Medium scale with the
// given worker-pool width. Each iteration builds a fresh runner so nothing
// is served from the memo cache.
func benchSuite(b *testing.B, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	base := sim.DefaultConfig()
	base.NumSMs = 4
	for i := 0; i < b.N; i++ {
		r, err := experiments.New(context.Background(),
			experiments.WithScale(kernels.Medium),
			experiments.WithBenchmarks("backprop", "bfs", "hotspot", "kmeans", "lud", "nw", "pathfinder", "srad"),
			experiments.WithParallelism(parallelism),
			experiments.WithBaseConfig(base))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run("fig9"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSequential is the parallel-speedup reference point.
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel runs the same workload across one worker per CPU.
// Compare against BenchmarkSuiteSequential with benchstat; on a machine
// with 4+ cores the wall-clock ratio should exceed 2x (the 16 jobs are
// independent and the simulator is CPU-bound).
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, runtime.GOMAXPROCS(0)) }

// --- Execute-once / replay-N ---

// benchConfigSweep runs one benchmark under 8 distinct configurations —
// the shape of every design-space figure — either executing each config
// from scratch or recording the functional front-end once and replaying
// it into the other seven timing configurations.
func benchConfigSweep(b *testing.B, recordReplay bool) {
	b.Helper()
	base := sim.DefaultConfig()
	base.NumSMs = 4
	var cfgs []sim.Config
	for _, lat := range []int{1, 2, 4, 8} {
		c := base
		c.CompressLatency = lat
		cfgs = append(cfgs, c)
		c = base
		c.DecompressLatency = lat
		cfgs = append(cfgs, c)
	}
	bench, ok := kernels.ByName("pathfinder")
	if !ok {
		b.Fatal("pathfinder benchmark missing")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := experiments.NewEngine(context.Background(), experiments.EngineConfig{
			Parallelism:  1,
			Scale:        kernels.Small,
			RecordReplay: recordReplay,
		})
		for _, c := range cfgs {
			if _, err := eng.Run(bench, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkConfigSweepExecute is the execute-every-config reference point
// for the record/replay speedup (compare with benchstat; the replay sweep
// should come in at least 3x faster).
func BenchmarkConfigSweepExecute(b *testing.B) { benchConfigSweep(b, false) }

// BenchmarkConfigSweepRecordReplay runs the same 8-config sweep through
// the execute-once / replay-N path.
func BenchmarkConfigSweepRecordReplay(b *testing.B) { benchConfigSweep(b, true) }

// --- Microbenchmarks of the primitives underlying every figure ---

// BenchmarkBDICompress measures the software model of the compressor's
// choice logic on an affine (stride-1) register.
func BenchmarkBDICompress(b *testing.B) {
	var w warped.WarpReg
	for i := range w {
		w[i] = uint32(1000 + i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if warped.ChooseEncoding(warped.ModeWarped, &w) != warped.Enc41 {
			b.Fatal("wrong encoding")
		}
	}
}

// BenchmarkBDIRoundTrip measures full byte-level compress + decompress on
// the allocation-free path (CompressInto with a reused buffer).
func BenchmarkBDIRoundTrip(b *testing.B) {
	var w warped.WarpReg
	for i := range w {
		w[i] = uint32(3 * i) // deltas to the single base stay within 1 byte
	}
	data := w.Bytes()
	p := warped.BDIParams{Base: 4, Delta: 1}
	out := make([]byte, len(data))
	comp := make([]byte, 0, p.CompressedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ok bool
		comp, ok = warped.CompressInto(comp[:0], data, p)
		if !ok {
			b.Fatal("not compressible")
		}
		if err := warped.Decompress(comp, p, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressor measures each registered backend's full hot path —
// Choose + CompressInto + Decompress — on a uniform warp vector every
// scheme compresses. The static scheme runs with a bound per-kernel table,
// exactly as the simulator binds one at launch.
func BenchmarkCompressor(b *testing.B) {
	var w core.WarpReg
	for i := range w {
		w[i] = 7
	}
	for _, scheme := range warped.CompressionSchemes() {
		b.Run(scheme, func(b *testing.B) {
			comp, err := warped.NewCompressor(scheme)
			if err != nil {
				b.Fatal(err)
			}
			if binder, ok := comp.(core.KernelTableBinder); ok {
				table := make([]core.Encoding, 8)
				for i := range table {
					table[i] = core.Enc40
				}
				binder.BindTable(table)
			}
			buf := make([]byte, 0, core.WarpBytes)
			var out core.WarpReg
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := comp.Choose(3, &w, core.ModeWarped)
				if e == core.EncUncompressed {
					b.Fatal("uniform vector left uncompressed")
				}
				var ok bool
				buf, ok = comp.CompressInto(buf[:0], &w, e)
				if !ok {
					b.Fatal("CompressInto rejected the chosen class")
				}
				if err := comp.Decompress(buf, e, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRegfile drives the register file's per-access hot path: write-bank
// selection, bank counting, commit, and read-bank selection, cycling through
// every encoding so compressed and uncompressed placements both run.
func benchRegfile(b *testing.B, cfg regfile.Config) {
	b.Helper()
	f := regfile.New(cfg)
	const regsPerThread = 8
	if err := f.AllocWarp(0, regsPerThread); err != nil {
		b.Fatal(err)
	}
	encs := [...]core.Encoding{core.Enc40, core.EncUncompressed, core.Enc41, core.Enc42}
	var buf [regfile.BanksPerCluster]int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := regfile.RegID(0, i%regsPerThread, regsPerThread)
		enc := encs[i%len(encs)]
		now := uint64(i)
		for _, bk := range f.WriteBanks(id, enc, 0xFFFFFFFF, true, buf[:0]) {
			f.BankReady(bk, now)
			f.CountWrite(bk, now)
		}
		f.CommitWrite(id, enc, true, now)
		for _, bk := range f.ReadBanks(id, 0xFFFFFFFF, buf[:0]) {
			f.CountRead(bk, now)
		}
		f.Tick(now)
	}
}

// BenchmarkRegfileAccess measures ReadBanks/WriteBanks/CommitWrite on a
// clean file with power gating (the warped configuration) and on a faulty
// file with RRCD redirection steering compressed writes to healthy banks.
func BenchmarkRegfileAccess(b *testing.B) {
	b.Run("clean", func(b *testing.B) {
		benchRegfile(b, regfile.Config{GatingEnabled: true, WakeupLatency: 10})
	})
	b.Run("rrcd-redirect", func(b *testing.B) {
		benchRegfile(b, regfile.Config{
			GatingEnabled:      true,
			WakeupLatency:      10,
			FaultyBanks:        []int{2, 11},
			RedirectCompressed: true,
		})
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed in
// cycles/second on the pathfinder workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := warped.DefaultConfig()
		cfg.NumSMs = 4
		gpu, err := warped.NewGPU(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bench, _ := warped.BenchmarkByName("pathfinder")
		inst, err := bench.Build(gpu.Mem(), warped.Small)
		if err != nil {
			b.Fatal(err)
		}
		res, err := gpu.Run(inst.Launch)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkGPUCycleSharded measures the epoch-barrier cycle loop on the
// full 15-SM device at 1, 4 and 8 SM shards. Results are byte-identical
// across the sub-benchmarks; only wall clock should move. Compare with
// benchstat — on a multi-core machine 8 shards should run the cycle loop
// several times faster than 1. ReportAllocs guards the zero-allocation
// steady state of the sharded step (commit logs and overlays are pooled).
func BenchmarkGPUCycleSharded(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := warped.DefaultConfig()
				cfg.SMParallel = shards
				gpu, err := warped.NewGPU(cfg)
				if err != nil {
					b.Fatal(err)
				}
				bench, _ := warped.BenchmarkByName("pathfinder")
				inst, err := bench.Build(gpu.Mem(), warped.Small)
				if err != nil {
					b.Fatal(err)
				}
				res, err := gpu.Run(inst.Launch)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// BenchmarkGEMM measures simulation throughput of the compute-dense GEMM
// tiling ladder, one sub-benchmark per variant. Beyond wall clock it
// reports the shared-memory serialization cycles per run — the bank model's
// headline number, which must fall monotonically along the ladder.
func BenchmarkGEMM(b *testing.B) {
	for _, variant := range []string{"gemm_naive", "gemm_block", "gemm_warp", "gemm_reg"} {
		b.Run(variant, func(b *testing.B) {
			b.ReportAllocs()
			var cycles, ser uint64
			for i := 0; i < b.N; i++ {
				cfg := warped.DefaultConfig()
				cfg.NumSMs = 4
				gpu, err := warped.NewGPU(cfg)
				if err != nil {
					b.Fatal(err)
				}
				bench, _ := warped.BenchmarkByName(variant)
				inst, err := bench.Build(gpu.Mem(), warped.Small)
				if err != nil {
					b.Fatal(err)
				}
				res, err := gpu.Run(inst.Launch)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
				ser += res.Stats.SharedSerializationCycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
			b.ReportMetric(float64(ser)/float64(b.N), "shared-ser-cycles/run")
		})
	}
}

package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/jobs"
	"repro/internal/version"
)

// The dependency rule forbids third-party modules, so /metrics is rendered
// by hand in the Prometheus text exposition format (version 0.0.4). The
// format is small and stable: `# HELP`/`# TYPE` headers, then
// `name{label="v"} value` samples; histograms are cumulative `_bucket`
// series plus `_sum` and `_count`.

// latencyBuckets are the cumulative upper bounds (seconds) of the HTTP
// request-duration histogram. Sub-millisecond buckets catch the cheap
// probe/metadata routes; the tail covers multi-second simulations observed
// through long polls.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// histogram is a fixed-bucket latency histogram. Not safe for concurrent
// use; httpStats serializes access under its mutex.
type histogram struct {
	counts []uint64 // len(latencyBuckets)+1; the last slot is the +Inf bucket
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// reqKey labels one warpedd_http_requests_total series.
type reqKey struct {
	route string // the mux pattern, e.g. "POST /v1/jobs"
	code  int
}

// httpStats aggregates per-route request counters and latency histograms.
// Routes are the registered mux patterns, not raw URLs, so cardinality is
// bounded by the route table.
type httpStats struct {
	mu       sync.Mutex
	requests map[reqKey]uint64
	latency  map[string]*histogram
}

func newHTTPStats() *httpStats {
	return &httpStats{
		requests: make(map[reqKey]uint64),
		latency:  make(map[string]*histogram),
	}
}

func (s *httpStats) observe(route string, code int, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests[reqKey{route, code}]++
	h := s.latency[route]
	if h == nil {
		h = newHistogram()
		s.latency[route] = h
	}
	h.observe(seconds)
}

// writeMetrics renders the full exposition: manager counters, HTTP stats
// and build info. Series within a family are emitted in sorted label order
// so the output is deterministic and easy to diff.
func writeMetrics(w io.Writer, st jobs.Stats, hs *httpStats, ready bool, info version.Info) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}

	counter("warpedd_jobs_submitted_total", "Jobs admitted to the queue.", st.Submitted)
	counter("warpedd_jobs_rejected_total", "Submissions refused (queue full or draining).", st.Rejected)
	counter("warpedd_jobs_rejected_queue_full_total", "Submissions refused because the admission queue was at capacity (backpressure).", st.RejectedFull)
	counter("warpedd_jobs_rejected_draining_total", "Submissions refused because a drain had begun.", st.RejectedDraining)
	counter("warpedd_jobs_completed_total", "Jobs finished successfully.", st.Completed)
	counter("warpedd_jobs_failed_total", "Jobs finished with an error.", st.Failed)
	counter("warpedd_jobs_coalesced_total", "Jobs that joined an in-flight identical simulation.", st.Coalesced)
	counter("warpedd_cache_hits_total", "Submissions served from the result cache.", st.CacheHits)
	counter("warpedd_cache_misses_total", "Submissions that missed the result cache.", st.CacheMisses)
	counter("warpedd_cache_evictions_total", "Results evicted from the LRU cache by capacity pressure.", st.CacheEvictions)
	counter("warpedd_sim_cycles_total", "Simulated GPU cycles across completed runs (rate() gives sim-cycles/s).", st.SimCycles)
	counter("warpedd_traces_recorded_total", "warped.trace/v1 recordings captured by record-mode jobs.", st.TracesRecorded)
	counter("warpedd_trace_evictions_total", "Recordings dropped from the trace store by capacity pressure.", st.TraceEvictions)
	counter("warpedd_trace_evicted_bytes_total", "Recorded-trace bytes reclaimed by capacity pressure.", st.TraceEvictedBytes)

	if st.StoreEnabled {
		counter("warpedd_store_hits_total", "Submissions served from the disk store.", st.StoreHits)
		counter("warpedd_store_writes_total", "Entries durably written to the disk store.", st.StoreWrites)
		counter("warpedd_store_write_errors_total", "Disk store writes that failed (the result survives in memory).", st.StoreWriteErrors)
		counter("warpedd_store_quarantined_total", "Corrupt disk store entries moved aside instead of served.", st.StoreQuarantined)
		counter("warpedd_store_evictions_total", "Disk store entries deleted by byte-budget pressure.", st.StoreEvicted)
		counter("warpedd_store_evicted_bytes_total", "Disk store bytes reclaimed by byte-budget pressure.", st.StoreEvictedBytes)
		gauge("warpedd_store_entries", "Entries currently indexed in the disk store.", float64(st.StoreEntries))
		gauge("warpedd_store_bytes", "Bytes currently indexed in the disk store.", float64(st.StoreBytes))
		gauge("warpedd_store_budget_bytes", "Configured disk store byte budget (0 = unlimited).", float64(st.StoreBudget))
	}

	gauge("warpedd_cache_entries", "Results currently held in the LRU cache.", float64(st.CacheEntries))
	gauge("warpedd_trace_entries", "Recordings currently resident and replayable.", float64(st.TraceEntries))
	gauge("warpedd_trace_bytes", "Resident recorded-trace bytes.", float64(st.TraceBytes))
	gauge("warpedd_queue_depth", "Jobs waiting in the admission queue.", float64(st.Queued))
	gauge("warpedd_queue_capacity", "Admission queue capacity.", float64(st.QueueCapacity))
	gauge("warpedd_jobs_running", "Jobs currently occupying a worker.", float64(st.Running))
	gauge("warpedd_workers", "Worker pool size.", float64(st.Workers))

	// The two autoscaling signals, pre-divided so an HPA rule is a plain
	// threshold: scale out when utilization or queue fill sits near 1.
	utilization := 0.0
	if st.Workers > 0 {
		utilization = float64(st.Running) / float64(st.Workers)
	}
	gauge("warpedd_utilization", "Fraction of workers busy (Running/Workers); a sustained value near 1 means scale out.", utilization)
	queueFill := 0.0
	if st.QueueCapacity > 0 {
		queueFill = float64(st.Queued) / float64(st.QueueCapacity)
	}
	gauge("warpedd_queue_fill", "Fraction of admission queue capacity in use (Queued/QueueCapacity).", queueFill)

	readiness := 0.0
	if ready {
		readiness = 1
	}
	gauge("warpedd_ready", "1 while accepting jobs, 0 once draining.", readiness)

	if st.MultiTenant {
		fmt.Fprintf(w, "# HELP warpedd_tenant_queue_depth Jobs waiting per tenant.\n# TYPE warpedd_tenant_queue_depth gauge\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "warpedd_tenant_queue_depth{tenant=%q} %d\n", t.Name, t.Queued)
		}
		fmt.Fprintf(w, "# HELP warpedd_tenant_weight Fair-share dispatch weight per tenant.\n# TYPE warpedd_tenant_weight gauge\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "warpedd_tenant_weight{tenant=%q} %d\n", t.Name, t.Weight)
		}
		fmt.Fprintf(w, "# HELP warpedd_tenant_submitted_total Jobs queued per tenant.\n# TYPE warpedd_tenant_submitted_total counter\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "warpedd_tenant_submitted_total{tenant=%q} %d\n", t.Name, t.Submitted)
		}
		fmt.Fprintf(w, "# HELP warpedd_tenant_rejected_total Submissions refused per tenant by its own limits.\n# TYPE warpedd_tenant_rejected_total counter\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "warpedd_tenant_rejected_total{tenant=%q,reason=\"quota\"} %d\n", t.Name, t.RejectedQuota)
			fmt.Fprintf(w, "warpedd_tenant_rejected_total{tenant=%q,reason=\"rate\"} %d\n", t.Name, t.RejectedRate)
		}
	}

	fmt.Fprintf(w, "# HELP warpedd_build_info Build identity; value is always 1.\n# TYPE warpedd_build_info gauge\n")
	fmt.Fprintf(w, "warpedd_build_info{version=%q,go=%q} 1\n", info.Version, info.Go)

	hs.mu.Lock()
	defer hs.mu.Unlock()

	fmt.Fprintf(w, "# HELP warpedd_http_requests_total HTTP requests by route and status code.\n# TYPE warpedd_http_requests_total counter\n")
	reqKeys := make([]reqKey, 0, len(hs.requests))
	for k := range hs.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	for _, k := range reqKeys {
		fmt.Fprintf(w, "warpedd_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, hs.requests[k])
	}

	fmt.Fprintf(w, "# HELP warpedd_http_request_seconds HTTP request latency by route.\n# TYPE warpedd_http_request_seconds histogram\n")
	routes := make([]string, 0, len(hs.latency))
	for r := range hs.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := hs.latency[r]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "warpedd_http_request_seconds_bucket{route=%q,le=%q} %d\n",
				r, strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "warpedd_http_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(w, "warpedd_http_request_seconds_sum{route=%q} %s\n", r, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(w, "warpedd_http_request_seconds_count{route=%q} %d\n", r, h.total)
	}
}

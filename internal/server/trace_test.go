package server_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// TestRecordReplayHTTP drives the trace modes end to end over the JSON
// API: record a benchmark, read the trace ref off the job view, replay it
// under a different timing configuration (benchmark omitted — the
// recording remembers it), and check the strict 400s for unknown modes and
// dangling refs.
func TestRecordReplayHTTP(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})

	v := postJob(t, ts, `{"benchmark": "zz-srv", "mode": "record", "config": {"NumSMs": 2}}`, http.StatusAccepted)
	if v.Mode != jobs.ModeRecord {
		t.Fatalf("submitted view mode = %q, want record", v.Mode)
	}
	v = waitJobState(t, ts, v.ID, jobs.StateDone)
	if v.TraceRef == "" {
		t.Fatalf("record job done without trace_ref: %+v", v)
	}

	rv := postJob(t, ts, fmt.Sprintf(`{"mode": "replay", "trace_ref": %q, "config": {"NumSMs": 2, "CompressLatency": 4}}`, v.TraceRef), http.StatusAccepted)
	rv = waitJobState(t, ts, rv.ID, jobs.StateDone)
	if rv.Benchmark != "zz-srv" || rv.Mode != jobs.ModeReplay || rv.TraceRef != v.TraceRef {
		t.Fatalf("replay view = %+v", rv)
	}
	if rv.Result == nil || rv.Result.Cycles == 0 {
		t.Fatalf("replay produced no result: %+v", rv)
	}

	postJob(t, ts, `{"benchmark": "zz-srv", "mode": "turbo", "config": {"NumSMs": 2}}`, http.StatusBadRequest)
	postJob(t, ts, `{"mode": "replay", "trace_ref": "trace-999999", "config": {"NumSMs": 2}}`, http.StatusBadRequest)
	// A replay submission with no ref at all must not fall back to execute.
	postJob(t, ts, `{"benchmark": "zz-srv", "mode": "replay", "config": {"NumSMs": 2}}`, http.StatusBadRequest)

	// The trace counters surface in the Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"warpedd_traces_recorded_total 1", "warpedd_trace_entries 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// Package server exposes the jobs subsystem over HTTP: a small JSON API for
// submitting simulations and polling results, Server-Sent Events for live
// progress, and operational endpoints (Prometheus /metrics, /healthz,
// /readyz). It holds no execution state of its own — every decision about
// admission, dedup and caching lives in internal/jobs, so the HTTP layer
// stays a thin, testable translation:
//
//	POST /v1/jobs            submit   → 202 queued | 200 cache hit
//	GET  /v1/jobs            list retained jobs
//	GET  /v1/jobs/{id}       job status and result
//	GET  /v1/jobs/{id}/events  progress stream (SSE)
//	GET  /v1/benchmarks      registered workloads
//	GET  /v1/version         build identity
//	GET  /v1/cluster/info    worker identity for the cluster coordinator
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness    GET /readyz  readiness (503 while draining)
//
// With a tenant roster configured (-tenants), every /v1/jobs endpoint —
// submit, read, and stream — requires a tenant API key, and reads are
// scoped to the caller's tenant; the operational endpoints stay open.
// See DESIGN.md §16.
package server

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/version"
)

// Server translates HTTP to jobs.Manager calls. Build one with New; it is
// safe for concurrent use by any number of clients.
type Server struct {
	mgr      *jobs.Manager
	mux      *http.ServeMux
	http     *httpStats
	info     version.Info
	instance string

	sseKeepAlive time.Duration // see SetSSEKeepAlive

	defaultCompression string // see SetDefaultCompression
}

// New wires the route table onto mgr. The caller keeps ownership of the
// Manager: shutting down is mgr.Drain + mgr.Close, not a server call, so
// the same drain path serves signal handlers and tests alike.
func New(mgr *jobs.Manager) *Server {
	s := &Server{
		mgr:      mgr,
		mux:      http.NewServeMux(),
		http:     newHTTPStats(),
		info:     version.Get("warpedd"),
		instance: newInstanceID(),
	}
	s.handle("POST /v1/jobs", s.handleSubmit)
	s.handle("GET /v1/jobs", s.handleList)
	s.handle("GET /v1/jobs/{id}", s.handleJob)
	s.handle("GET /v1/jobs/{id}/events", s.handleEvents)
	s.handle("GET /v1/benchmarks", s.handleBenchmarks)
	s.handle("GET /v1/version", s.handleVersion)
	s.handle("GET /v1/cluster/info", s.handleClusterInfo)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /readyz", s.handleReadyz)
	return s
}

// newInstanceID draws the process-unique worker identity reported by
// /v1/cluster/info. It is fresh per Server, so a coordinator can tell a
// restarted worker (same address, new instance) from a live one.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// SetSSEKeepAlive overrides how often idle event streams emit a
// `: keep-alive` comment (default 15s). Call it before serving traffic;
// tests and the -sse-keepalive flag use it.
func (s *Server) SetSSEKeepAlive(d time.Duration) {
	if d > 0 {
		s.sseKeepAlive = d
	}
}

// SetDefaultCompression sets the compression scheme jobs run under when
// neither the request's compression_scheme field nor its config overrides
// pick one (the -compression flag of warpedd). Call it before serving
// traffic with a name core.SchemeRegistered accepts; the empty default
// keeps the preset's scheme.
func (s *Server) SetDefaultCompression(scheme string) {
	s.defaultCompression = scheme
}

// Handler returns the root handler for an http.Server (or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers a route and wraps it with request accounting. The mux
// pattern doubles as the metrics route label — http.Request.Pattern would
// give us this for free but needs Go 1.23, and the repo pins 1.22.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.http.observe(pattern, rec.code, time.Since(start).Seconds())
	})
}

// statusRecorder captures the response code for metrics. It forwards
// Flush so SSE streaming works through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// apiKey extracts the client's API key: X-API-Key wins, then
// Authorization: Bearer. Empty means an unauthenticated request, which the
// Manager maps to the anonymous tenant (or rejects when keys are required).
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
	}
	return ""
}

// authorize resolves the request's API key to its tenant name, writing the
// 401 challenge itself on failure. In single-tenant mode every request
// (keyed or not) succeeds as the default tenant; with a tenant roster
// configured it gates reads as well as submissions — job configs, results
// and trace refs are tenant data, so tenancy must bound who can see them,
// not just who can queue work.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) (string, bool) {
	tenant, err := s.mgr.ResolveAPIKey(apiKey(r))
	if err != nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="warpedd"`)
		writeError(w, http.StatusUnauthorized, "%v", err)
		return "", false
	}
	return tenant, true
}

// canView reports whether tenant may read job: every job in single-tenant
// mode, only its own otherwise. Callers answer a cross-tenant probe with
// the same 404 as a never-issued ID, so job existence is not an oracle.
func (s *Server) canView(job *jobs.Job, tenant string) bool {
	return !s.mgr.MultiTenant() || job.Tenant == tenant
}

// apiError is the JSON error envelope every non-2xx response uses.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitRequest is the POST /v1/jobs body. Config starts from the named
// preset ("warped", the paper configuration, unless "baseline" is asked
// for) and the optional config object overrides individual sim.Config
// fields by their Go names, e.g. {"CompressLatency": 4}. Mode and
// trace_ref are additive: omitted (or "execute") keeps the classic full
// simulation; "record" also captures a warped.trace/v1 recording and
// reports its ref in the job view, and "replay" re-times a recorded ref
// under this request's configuration. Unknown modes are rejected with 400,
// never silently executed.
type submitRequest struct {
	Benchmark string          `json:"benchmark"`
	Preset    string          `json:"preset"`
	Config    json.RawMessage `json:"config"`
	Mode      string          `json:"mode"`
	TraceRef  string          `json:"trace_ref"`
	// SMParallel pins the simulation's SM shard count for this job
	// (sim.Config.SMParallel). Omitted or 0 defers to the server's
	// -sm-parallel policy; negative is rejected. Purely a performance
	// knob — results are byte-identical at every shard count.
	SMParallel *int `json:"sm_parallel"`
	// CompressionScheme selects the registered compression backend for
	// this job (sim.Config.Compression: "bdi", "static", "fpc"). Additive:
	// omitted keeps the preset's scheme (or the server's -compression
	// default); unknown schemes are rejected with 400. It applies after
	// config overrides, so it wins over a Compression key in config.
	CompressionScheme string `json:"compression_scheme"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Replay jobs may omit the benchmark: the recording is self-contained
	// and remembers which workload it captured.
	if req.Benchmark == "" && req.Mode != string(jobs.ModeReplay) {
		writeError(w, http.StatusBadRequest, "missing benchmark (see GET /v1/benchmarks)")
		return
	}
	var cfg sim.Config
	switch req.Preset {
	case "", "warped":
		cfg = sim.DefaultConfig()
	case "baseline":
		cfg = sim.BaselineConfig()
	default:
		writeError(w, http.StatusBadRequest, "unknown preset %q (have warped, baseline)", req.Preset)
		return
	}
	if len(req.Config) > 0 {
		over := json.NewDecoder(bytes.NewReader(req.Config))
		over.DisallowUnknownFields()
		if err := over.Decode(&cfg); err != nil {
			writeError(w, http.StatusBadRequest, "bad config overrides: %v", err)
			return
		}
	}
	if req.SMParallel != nil {
		if *req.SMParallel < 0 {
			writeError(w, http.StatusBadRequest, "sm_parallel must be >= 0, got %d", *req.SMParallel)
			return
		}
		cfg.SMParallel = *req.SMParallel
	}
	if req.CompressionScheme != "" {
		cfg.Compression = req.CompressionScheme
	} else if cfg.Compression == "" {
		cfg.Compression = s.defaultCompression
	}
	// An unknown scheme is caught by cfg.Validate inside SubmitRequest and
	// mapped to 400 with the other config errors below.

	tenant, ok := s.authorize(w, r)
	if !ok {
		return
	}

	job, err := s.mgr.SubmitRequest(jobs.Request{
		Benchmark: req.Benchmark,
		Config:    cfg,
		Mode:      jobs.Mode(req.Mode),
		TraceRef:  req.TraceRef,
		Tenant:    tenant,
	})
	if err != nil {
		var unknown *jobs.UnknownBenchmarkError
		switch {
		case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrTenantQueueFull), errors.Is(err, jobs.ErrRateLimited):
			// All three are backpressure: the client should retry later.
			// Tenant-scoped rejections name the tenant in the error body.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, jobs.ErrUnknownTenant):
			w.Header().Set("WWW-Authenticate", `Bearer realm="warpedd"`)
			writeError(w, http.StatusUnauthorized, "%v", err)
		case errors.Is(err, jobs.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.As(err, &unknown):
			writeError(w, http.StatusBadRequest, "%v (see GET /v1/benchmarks)", err)
		default:
			// Config validation and the trace-mode rejections
			// (*UnknownModeError, *UnknownTraceError, ref/mode mismatches)
			// are all client errors.
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	code := http.StatusAccepted
	if job.State() == jobs.StateDone { // served from the result cache
		code = http.StatusOK
	}
	writeJSON(w, code, job.View())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authorize(w, r)
	if !ok {
		return
	}
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok || !s.canView(job, tenant) {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authorize(w, r)
	if !ok {
		return
	}
	views := s.mgr.Jobs()
	if s.mgr.MultiTenant() {
		scoped := make([]jobs.JobView, 0, len(views))
		for _, v := range views {
			if v.Tenant == tenant {
				scoped = append(scoped, v)
			}
		}
		views = scoped
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobs.JobView `json:"jobs"`
	}{Jobs: views})
}

// benchmarkInfo is one entry of GET /v1/benchmarks.
type benchmarkInfo struct {
	Name        string `json:"name"`
	Suite       string `json:"suite"`
	Description string `json:"description"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	all := kernels.All()
	infos := make([]benchmarkInfo, len(all))
	for i, b := range all {
		infos[i] = benchmarkInfo{Name: b.Name, Suite: b.Suite, Description: b.Description}
	}
	writeJSON(w, http.StatusOK, struct {
		Benchmarks []benchmarkInfo `json:"benchmarks"`
		Scale      string          `json:"scale"`
	}{Benchmarks: infos, Scale: s.mgr.Scale().String()})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.info)
}

// ClusterInfo is the GET /v1/cluster/info payload: everything a cluster
// coordinator needs to identify and size up a worker. Instance is freshly
// drawn per process, so "same URL, different instance" means the worker
// restarted and its in-memory state (jobs, result cache) is gone.
type ClusterInfo struct {
	Instance      string       `json:"instance"`
	Version       version.Info `json:"version"`
	Scale         string       `json:"scale"`
	Workers       int          `json:"workers"`
	QueueCapacity int          `json:"queue_capacity"`
	CacheEntries  int          `json:"cache_entries"`
	Draining      bool         `json:"draining"`
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, ClusterInfo{
		Instance:      s.instance,
		Version:       s.info,
		Scale:         s.mgr.Scale().String(),
		Workers:       st.Workers,
		QueueCapacity: st.QueueCapacity,
		CacheEntries:  st.CacheEntries,
		Draining:      st.Draining,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, st, s.http, !st.Draining, s.info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports admission readiness: 200 while Submit would be
// accepted, 503 once a drain has begun so load balancers stop routing here
// before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.mgr.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

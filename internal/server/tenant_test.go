package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// postJobAuth submits with an Authorization-style header and asserts the
// expected status, returning the raw response.
func postJobAuth(t *testing.T, url, body string, header, value string, wantCode int) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if header != "" {
		req.Header.Set(header, value)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /v1/jobs (%s) = %d, want %d; body: %s", header, resp.StatusCode, wantCode, raw)
	}
	return resp, raw
}

// getAuth GETs path with an optional API key and asserts the status,
// returning the body.
func getAuth(t *testing.T, url, path, key string, wantCode int) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s (key %q) = %d, want %d; body: %s", path, key, resp.StatusCode, wantCode, raw)
	}
	return raw
}

// TestAPIKeyAuth: with a tenant roster, submissions need a valid key —
// missing and wrong keys get 401 with a WWW-Authenticate challenge, valid
// keys get in and the job view names the tenant. Both X-API-Key and
// Authorization: Bearer work. Reads are gated too: job data is tenant
// data, so listings are scoped to the caller and cross-tenant probes 404.
func TestAPIKeyAuth(t *testing.T) {
	_, ts := newServer(t, jobs.Config{
		Workers: 2, QueueDepth: 8, CacheSize: 8,
		Tenants: []jobs.Tenant{{Name: "alice", Key: "ka"}, {Name: "bob", Key: "kb"}},
	})

	resp, _ := postJobAuth(t, ts.URL, submitBody(""), "", "", http.StatusUnauthorized)
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Fatalf("401 without WWW-Authenticate challenge (got %q)", got)
	}
	postJobAuth(t, ts.URL, submitBody(""), "X-API-Key", "nope", http.StatusUnauthorized)

	va := postJobView(t, ts.URL, submitBody(""), "ka")
	if va.Tenant != "alice" {
		t.Fatalf("accepted view tenant = %q, want alice", va.Tenant)
	}
	_, raw := postJobAuth(t, ts.URL, submitBody(`"CompressLatency": 5`), "Authorization", "Bearer kb", http.StatusAccepted)
	var vb jobs.JobView
	if err := json.Unmarshal(raw, &vb); err != nil || vb.Tenant != "bob" {
		t.Fatalf("bearer-auth view tenant = %q (%v), want bob", vb.Tenant, err)
	}

	// Reads require a key: every tenant's configs, results and trace refs
	// would otherwise be world-readable.
	getAuth(t, ts.URL, "/v1/jobs", "", http.StatusUnauthorized)
	getAuth(t, ts.URL, "/v1/jobs/"+va.ID, "", http.StatusUnauthorized)
	getAuth(t, ts.URL, "/v1/jobs/"+va.ID+"/events", "nope", http.StatusUnauthorized)

	// Listings are scoped to the caller's tenant.
	var list struct {
		Jobs []jobs.JobView `json:"jobs"`
	}
	if err := json.Unmarshal(getAuth(t, ts.URL, "/v1/jobs", "ka", http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != va.ID {
		t.Fatalf("alice's listing = %+v, want exactly her job %s", list.Jobs, va.ID)
	}

	// Own job reads work; a cross-tenant probe gets the same 404 as a
	// never-issued ID, so job existence is not an oracle.
	getAuth(t, ts.URL, "/v1/jobs/"+va.ID, "ka", http.StatusOK)
	getAuth(t, ts.URL, "/v1/jobs/"+vb.ID, "ka", http.StatusNotFound)
	getAuth(t, ts.URL, "/v1/jobs/"+vb.ID+"/events", "kb", http.StatusOK)
}

// TestSingleTenantStaysOpen: without a roster the API is unauthenticated
// and job views omit the tenant field — the pre-tenancy wire format.
func TestSingleTenantStaysOpen(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	_, raw := postJobAuth(t, ts.URL, submitBody(""), "", "", http.StatusAccepted)
	if strings.Contains(string(raw), `"tenant"`) {
		t.Fatalf("single-tenant view leaks a tenant field: %s", raw)
	}
}

// TestTenantLimitsOverHTTP: quota and rate rejections surface as 429 with
// Retry-After, distinguishable from a plain queue-full by body text.
func TestTenantLimitsOverHTTP(t *testing.T) {
	release := gate(t)
	_, ts := newServer(t, jobs.Config{
		Workers: 1, QueueDepth: 16, CacheSize: 0,
		Tenants: []jobs.Tenant{
			{Name: "capped", Key: "kc", MaxQueued: 1},
			{Name: "slow", Key: "ksl", RatePerSec: 0.000001, Burst: 1},
		},
	})
	// Worker is held by the first job; the second fills capped's quota.
	v := postJobView(t, ts.URL, submitBody(""), "kc")
	waitJobStateAuth(t, ts.URL, v.ID, "kc", jobs.StateRunning)
	postJobView(t, ts.URL, submitBody(`"CompressLatency": 2`), "kc")
	resp, raw := postJobAuth(t, ts.URL, submitBody(`"CompressLatency": 3`), "X-API-Key", "kc", http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(raw), "quota") {
		t.Fatalf("quota rejection body does not say quota: %s", raw)
	}

	// slow's bucket holds one token: first compute submission passes,
	// second is rate-limited.
	postJobView(t, ts.URL, submitBody(`"CompressLatency": 4`), "ksl")
	resp, raw = postJobAuth(t, ts.URL, submitBody(`"CompressLatency": 5`), "X-API-Key", "ksl", http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate 429 without Retry-After")
	}
	if !strings.Contains(string(raw), "rate") {
		t.Fatalf("rate rejection body does not say rate: %s", raw)
	}

	// Per-tenant metrics are exported for both tenants.
	metrics := scrapeMetrics(t, ts)
	for _, want := range []string{
		`warpedd_tenant_queue_depth{tenant="capped"}`,
		`warpedd_tenant_rejected_total{tenant="capped",reason="quota"} 1`,
		`warpedd_tenant_rejected_total{tenant="slow",reason="rate"} 1`,
		`warpedd_queue_fill`,
		`warpedd_utilization`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	release()
}

// waitJobStateAuth polls an authenticated job read until the job reaches
// the wanted state.
func waitJobStateAuth(t *testing.T, url, id, key string, want jobs.State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v jobs.JobView
		if err := json.Unmarshal(getAuth(t, url, "/v1/jobs/"+id, key, http.StatusOK), &v); err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return
		}
		if want != jobs.StateFailed && v.State == jobs.StateFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// postJobView submits with an API key expecting 202 and returns the view.
func postJobView(t *testing.T, url, body, key string) jobs.JobView {
	t.Helper()
	_, raw := postJobAuth(t, url, body, "X-API-Key", key, http.StatusAccepted)
	var v jobs.JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad job JSON: %v; body: %s", err, raw)
	}
	return v
}

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/jobs"
)

// handleEvents streams a job's progress as Server-Sent Events. The full
// event history is replayed first (so late subscribers see the whole
// story), then live events follow until the job finishes or the client
// disconnects. Event names are the jobs.Event kinds: queued, running,
// sim-start, sim-retry, sim-done, coalesced, cache-hit, done, failed.
// A finished job's stream replays and ends immediately, which makes
//
//	curl -N .../v1/jobs/job-000001/events
//
// a blocking "wait for this job" primitive.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	replay, ch, cancel := job.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if ch == nil { // job already finished: replay was the whole stream
		return
	}
	for {
		select {
		case ev, open := <-ch:
			if !open { // closed after the terminal event: stream complete
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in text/event-stream framing. The JSON body
// never contains newlines (it is a compact single-object marshal), so one
// data: line suffices.
func writeSSE(w io.Writer, ev jobs.Event) {
	data, err := json.Marshal(ev)
	if err != nil { // unreachable: Event is plain data
		data = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

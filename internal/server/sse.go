package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
)

// defaultSSEKeepAlive is how often an idle event stream emits a comment
// line. SSE comments are invisible to EventSource consumers but keep
// middleboxes (load balancers, NAT tables) from reaping a connection that
// is quiet only because the simulation is long; the cluster coordinator's
// multiplexer also uses their absence to detect a dead worker early.
const defaultSSEKeepAlive = 15 * time.Second

// handleEvents streams a job's progress as Server-Sent Events. The full
// event history is replayed first (so late subscribers see the whole
// story), then live events follow until the job finishes or the client
// disconnects. Event names are the jobs.Event kinds: queued, running,
// sim-start, sim-retry, sim-done, coalesced, cache-hit, done, failed —
// plus the advisory "draining" kind emitted when the daemon begins a
// graceful shutdown with the job still in flight.
// A finished job's stream replays and ends immediately, which makes
//
//	curl -N .../v1/jobs/job-000001/events
//
// a blocking "wait for this job" primitive.
//
// Every recorded event carries an `id:` line (its sequence number in the
// job's history). A client that reconnects with a Last-Event-ID header
// (or ?last_event_id= query parameter) resumes after that event: nothing
// it has already seen is replayed, nothing in between is lost. Idle
// streams emit a `: keep-alive` comment periodically.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authorize(w, r)
	if !ok {
		return
	}
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok || !s.canView(job, tenant) {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	after := -1
	lei := r.Header.Get("Last-Event-ID")
	if lei == "" {
		lei = r.URL.Query().Get("last_event_id")
	}
	if lei != "" {
		n, err := strconv.Atoi(lei)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q: want a non-negative event sequence number", lei)
			return
		}
		after = n
	}
	replay, ch, cancel := job.SubscribeFrom(after)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if ch == nil { // job already finished: replay was the whole stream
		return
	}
	keepAlive := s.sseKeepAlive
	if keepAlive <= 0 {
		keepAlive = defaultSSEKeepAlive
	}
	ticker := time.NewTicker(keepAlive)
	defer ticker.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open { // closed after the terminal event: stream complete
				return
			}
			writeSSE(w, ev)
			fl.Flush()
			ticker.Reset(keepAlive)
		case <-ticker.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in text/event-stream framing. The JSON body
// never contains newlines (it is a compact single-object marshal), so one
// data: line suffices. Recorded events carry their history sequence number
// as the SSE event id; advisory events (Seq < 0) are unnumbered so they
// never disturb Last-Event-ID resumption.
func writeSSE(w io.Writer, ev jobs.Event) {
	data, err := json.Marshal(ev)
	if err != nil { // unreachable: Event is plain data
		data = []byte(`{}`)
	}
	if ev.Seq >= 0 {
		fmt.Fprintf(w, "id: %d\n", ev.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

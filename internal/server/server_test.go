package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/server"
)

// srvGate mirrors the jobs package's test gate: the zz-srv benchmark
// blocks in Build until the installed channel is closed, letting tests pin
// a job in the running state. The default channel is closed (no blocking).
var srvGate atomic.Value // of chan struct{}

func init() {
	closed := make(chan struct{})
	close(closed)
	srvGate.Store(closed)
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-srv",
		Suite:       "test",
		Description: "blocks in Build until the test releases it",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			<-srvGate.Load().(chan struct{})
			k, err := asm.Assemble("zz-srv", "\tmov r0, %tid.x\n\texit\n")
			if err != nil {
				return nil, err
			}
			return &kernels.Instance{
				Launch: isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}},
				Check:  func(*mem.Global) error { return nil },
			}, nil
		},
	})
}

func gate(t *testing.T) func() {
	t.Helper()
	ch := make(chan struct{})
	srvGate.Store(ch)
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	return release
}

// newServer starts a manager and an httptest server around it.
func newServer(t *testing.T, cfg jobs.Config) (*jobs.Manager, *httptest.Server) {
	t.Helper()
	mgr := jobs.NewManager(context.Background(), cfg)
	t.Cleanup(mgr.Close)
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(ts.Close)
	return mgr, ts
}

// submitBody builds the standard test submission: the gated benchmark on a
// small 2-SM machine, with optional extra config overrides.
func submitBody(extra string) string {
	cfg := `"NumSMs": 2`
	if extra != "" {
		cfg += ", " + extra
	}
	return fmt.Sprintf(`{"benchmark": "zz-srv", "config": {%s}}`, cfg)
}

// postJob submits and decodes the response, asserting the expected status.
func postJob(t *testing.T, ts *httptest.Server, body string, wantCode int) jobs.JobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /v1/jobs = %d, want %d; body: %s", resp.StatusCode, wantCode, raw)
	}
	if wantCode >= 400 {
		return jobs.JobView{}
	}
	var v jobs.JobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad job JSON: %v; body: %s", err, raw)
	}
	return v
}

// getJob polls GET /v1/jobs/{id} once.
func getJob(t *testing.T, ts *httptest.Server, id string) jobs.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s = %d", id, resp.StatusCode)
	}
	var v jobs.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitJobState polls the HTTP API until the job reaches the wanted state.
func waitJobState(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State == want {
			return v
		}
		if want != jobs.StateFailed && v.State == jobs.StateFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.JobView{}
}

func TestHealthVersionBenchmarks(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Binary string `json:"binary"`
		Go     string `json:"go"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Binary != "warpedd" || info.Go == "" {
		t.Fatalf("version = %+v", info)
	}

	resp, err = http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var bl struct {
		Benchmarks []struct {
			Name string `json:"name"`
		} `json:"benchmarks"`
		Scale string `json:"scale"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, b := range bl.Benchmarks {
		found = found || b.Name == "zz-srv"
	}
	if !found || bl.Scale == "" {
		t.Fatalf("benchmarks listing missing zz-srv or scale: %+v", bl)
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	v := postJob(t, ts, submitBody(""), http.StatusAccepted)
	if v.ID == "" || v.State != jobs.StateQueued && v.State != jobs.StateRunning && v.State != jobs.StateDone {
		t.Fatalf("unexpected submit view: %+v", v)
	}
	done := waitJobState(t, ts, v.ID, jobs.StateDone)
	if done.Result == nil || done.Result.Cycles == 0 {
		t.Fatalf("done without a result: %+v", done)
	}
	if done.Signature == "" || !strings.HasPrefix(done.Signature, "cfg/v1:") {
		t.Fatalf("unversioned signature: %q", done.Signature)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"benchmark": `},
		{"missing benchmark", `{}`},
		{"unknown benchmark", `{"benchmark": "no-such-kernel"}`},
		{"unknown preset", `{"benchmark": "zz-srv", "preset": "turbo"}`},
		{"unknown config field", `{"benchmark": "zz-srv", "config": {"NumSMz": 2}}`},
		{"invalid config", submitBody(`"MaxWarpsPerSM": -1`)},
		{"unknown top-level field", `{"benchmark": "zz-srv", "cfg": {}}`},
		{"negative sm_parallel", `{"benchmark": "zz-srv", "sm_parallel": -2}`},
		{"unknown compression scheme", `{"benchmark": "zz-srv", "compression_scheme": "zstd"}`},
	}
	for _, tc := range cases {
		postJob(t, ts, tc.body, http.StatusBadRequest)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestSubmitSMParallel: the additive sm_parallel field pins the shard
// count for one job; because shard count never changes results, the
// sharded job must share its signature (and thus cache identity) with an
// unsharded submission of the same config.
func TestSubmitSMParallel(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	body := `{"benchmark": "zz-srv", "config": {"NumSMs": 2}, "sm_parallel": 2}`
	v := postJob(t, ts, body, http.StatusAccepted)
	done := waitJobState(t, ts, v.ID, jobs.StateDone)
	if done.Result == nil || done.Result.Cycles == 0 {
		t.Fatalf("sharded job finished without a result: %+v", done)
	}
	plain := postJob(t, ts, submitBody(""), http.StatusOK) // cache hit
	if plain.Signature != done.Signature {
		t.Fatalf("sm_parallel changed the signature: %q vs %q", done.Signature, plain.Signature)
	}
	if plain.Result == nil || plain.Result.Cycles != done.Result.Cycles {
		t.Fatalf("sharded and unsharded submissions disagree: %+v vs %+v", plain.Result, done.Result)
	}
}

// TestSubmitCompressionScheme: the additive compression_scheme field
// picks a registered backend for one job. Unlike sm_parallel, the scheme
// changes what the simulation computes, so the job must NOT share its
// cfg/v1 signature (or cache entry) with a default-scheme submission.
func TestSubmitCompressionScheme(t *testing.T) {
	mgr := jobs.NewManager(context.Background(), jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	t.Cleanup(mgr.Close)
	srv := server.New(mgr)
	srv.SetDefaultCompression("static")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	fpc := postJob(t, ts, `{"benchmark": "zz-srv", "config": {"NumSMs": 2}, "compression_scheme": "fpc"}`, http.StatusAccepted)
	fpcDone := waitJobState(t, ts, fpc.ID, jobs.StateDone)
	if fpcDone.Result == nil || fpcDone.Result.Cycles == 0 {
		t.Fatalf("fpc job finished without a result: %+v", fpcDone)
	}
	if !strings.Contains(fpcDone.Signature, "csfpc") {
		t.Fatalf("signature does not carry the scheme: %q", fpcDone.Signature)
	}

	// A submission that names no scheme falls back to the server default
	// (-compression static here), landing in a distinct cache entry.
	plain := postJob(t, ts, submitBody(""), http.StatusAccepted)
	plainDone := waitJobState(t, ts, plain.ID, jobs.StateDone)
	if plainDone.Signature == fpcDone.Signature {
		t.Fatalf("scheme did not change the signature: %q", fpcDone.Signature)
	}
	if !strings.Contains(plainDone.Signature, "csstatic") {
		t.Fatalf("server default scheme not applied: %q", plainDone.Signature)
	}

	// Explicit config overrides beat the server default.
	over := postJob(t, ts, submitBody(`"Compression": "bdi"`), http.StatusAccepted)
	overDone := waitJobState(t, ts, over.ID, jobs.StateDone)
	if strings.Contains(overDone.Signature, "csstatic") {
		t.Fatalf("server default overrode explicit config: %q", overDone.Signature)
	}
}

// TestSingleFlightAndCache is the tentpole's e2e acceptance scenario over
// HTTP: two concurrent submissions of an identical config run ONE
// underlying simulation, and a third submission is a result-cache hit.
func TestSingleFlightAndCache(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 4, QueueDepth: 16, CacheSize: 16})
	release := gate(t)

	j1 := postJob(t, ts, submitBody(""), http.StatusAccepted)
	waitJobState(t, ts, j1.ID, jobs.StateRunning)
	j2 := postJob(t, ts, submitBody(""), http.StatusAccepted)
	waitJobState(t, ts, j2.ID, jobs.StateRunning)
	// Give the second worker time to reach the engine's single-flight
	// join; it blocks there on the first run's gated Build.
	time.Sleep(300 * time.Millisecond)
	release()

	d1 := waitJobState(t, ts, j1.ID, jobs.StateDone)
	d2 := waitJobState(t, ts, j2.ID, jobs.StateDone)
	if d1.Result.Cycles != d2.Result.Cycles {
		t.Fatalf("coalesced jobs disagree: %d vs %d cycles", d1.Result.Cycles, d2.Result.Cycles)
	}

	j3 := postJob(t, ts, submitBody(""), http.StatusOK) // cache hit: 200, not 202
	if j3.State != jobs.StateDone || !j3.Cached || j3.Result == nil {
		t.Fatalf("third submission not served from cache: %+v", j3)
	}
	if j3.Result.Cycles != d1.Result.Cycles {
		t.Fatalf("cached result diverged: %d vs %d", j3.Result.Cycles, d1.Result.Cycles)
	}

	metrics := scrapeMetrics(t, ts)
	for series, want := range map[string]string{
		"warpedd_jobs_coalesced_total": "1",
		"warpedd_cache_hits_total":     "1",
		"warpedd_jobs_completed_total": "2",
		"warpedd_jobs_failed_total":    "0",
	} {
		if got := metricValue(t, metrics, series); got != want {
			t.Errorf("%s = %s, want %s", series, got, want)
		}
	}
}

func TestQueueFullReturns429(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	release := gate(t)
	defer release()

	j1 := postJob(t, ts, submitBody(`"CompressLatency": 1`), http.StatusAccepted)
	waitJobState(t, ts, j1.ID, jobs.StateRunning)                           // occupies the only worker
	postJob(t, ts, submitBody(`"CompressLatency": 2`), http.StatusAccepted) // fills the queue

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(submitBody(`"CompressLatency": 3`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestGracefulDrain is the drain acceptance scenario: in-flight jobs
// finish, /readyz flips to 503, and new submissions are rejected while the
// drain is in progress.
func TestGracefulDrain(t *testing.T) {
	mgr, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	release := gate(t)

	j1 := postJob(t, ts, submitBody(""), http.StatusAccepted)
	waitJobState(t, ts, j1.ID, jobs.StateRunning)

	readyCode := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if readyCode() != http.StatusOK {
		t.Fatal("not ready before drain")
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- mgr.Drain(ctx)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for readyCode() != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503")
		}
		time.Sleep(2 * time.Millisecond)
	}
	postJob(t, ts, submitBody(""), http.StatusServiceUnavailable)

	release() // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := getJob(t, ts, j1.ID); v.State != jobs.StateDone {
		t.Fatalf("in-flight job did not finish during drain: %+v", v)
	}
	if readyCode() != http.StatusServiceUnavailable {
		t.Error("/readyz recovered after drain; it must stay 503")
	}
}

func TestSSEStream(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	release := gate(t)

	j := postJob(t, ts, submitBody(""), http.StatusAccepted)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Read events as they stream; release the gate once we've seen the job
	// running so the live half of the stream is exercised too.
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			kinds = append(kinds, name)
			if name == "running" {
				release()
			}
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev jobs.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"queued", "running", "sim-start", "sim-done", "done"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event stream = %v, want %v", kinds, want)
	}

	// A finished job's stream replays in full and ends immediately.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(replay), "event: "); got != len(want) {
		t.Fatalf("replay has %d events, want %d:\n%s", got, len(want), replay)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentClients hammers the API from 8 clients sharing 3 config
// signatures — the acceptance bar for race-clean serving. Every request
// must succeed and identical signatures must agree on cycles.
func TestConcurrentClients(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 4, QueueDepth: 128, CacheSize: 32})
	const clients, perClient = 8, 3

	var mu sync.Mutex
	cycles := make(map[string]uint64) // signature → cycles
	var wg sync.WaitGroup
	errc := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := submitBody(fmt.Sprintf(`"CompressLatency": %d`, 1+(c+i)%3))
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var v jobs.JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				// Wait for completion over the SSE endpoint: the stream
				// ends when the job does.
				ev, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, ev.Body) //nolint:errcheck
				ev.Body.Close()
				done := getJob(t, ts, v.ID)
				if done.State != jobs.StateDone || done.Result == nil {
					errc <- fmt.Errorf("job %s: %+v", v.ID, done)
					return
				}
				mu.Lock()
				if prev, ok := cycles[done.Signature]; ok && prev != done.Result.Cycles {
					errc <- fmt.Errorf("signature %q: %d vs %d cycles", done.Signature, prev, done.Result.Cycles)
				}
				cycles[done.Signature] = done.Result.Cycles
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if len(cycles) != 3 {
		t.Fatalf("saw %d signatures, want 3", len(cycles))
	}
}

// metricLine matches one Prometheus sample: name, optional labels, value.
// Label values are quoted strings that may themselves contain braces (the
// route "GET /v1/jobs/{id}"), so the label block is matched as a sequence
// of name="quoted" pairs rather than a brace-free span.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z0-9_]+="(\\.|[^"\\])*",?)*\})? [-+]?(Inf|[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue extracts the value of an unlabeled series.
func metricValue(t *testing.T, metrics, name string) string {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("series %s missing from /metrics", name)
	return ""
}

// TestMetricsExposition checks every sample line parses and the required
// families are present after real traffic.
func TestMetricsExposition(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	v := postJob(t, ts, submitBody(""), http.StatusAccepted)
	waitJobState(t, ts, v.ID, jobs.StateDone)
	postJob(t, ts, submitBody(""), http.StatusOK) // a cache hit

	metrics := scrapeMetrics(t, ts)
	for i, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("line %d does not parse as a Prometheus sample: %q", i+1, line)
		}
	}
	for _, family := range []string{
		"warpedd_jobs_submitted_total",
		"warpedd_jobs_rejected_total",
		"warpedd_jobs_completed_total",
		"warpedd_jobs_failed_total",
		"warpedd_jobs_coalesced_total",
		"warpedd_cache_hits_total",
		"warpedd_cache_misses_total",
		"warpedd_cache_entries",
		"warpedd_sim_cycles_total",
		"warpedd_queue_depth",
		"warpedd_queue_capacity",
		"warpedd_jobs_running",
		"warpedd_workers",
		"warpedd_ready",
		"warpedd_build_info",
		"warpedd_http_requests_total",
		"warpedd_http_request_seconds_bucket",
		"warpedd_http_request_seconds_sum",
		"warpedd_http_request_seconds_count",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	if simc := metricValue(t, metrics, "warpedd_sim_cycles_total"); simc == "0" {
		t.Error("warpedd_sim_cycles_total stayed 0 after a completed job")
	}
	if !strings.Contains(metrics, `warpedd_http_requests_total{route="POST /v1/jobs",code="200"}`) {
		t.Error("request counter not labeled by route and code")
	}
}

package server_test

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

// sseFrame is one parsed server-sent event as the satellite tests see it.
type sseFrame struct {
	id   int // -1 when the frame carried no id: line
	kind string
}

// readFrames consumes a stream until it ends or n frames arrived (n < 0
// reads to EOF), also counting keep-alive comments.
func readFrames(t *testing.T, r *bufio.Scanner, n int) (frames []sseFrame, keepAlives int) {
	t.Helper()
	cur := sseFrame{id: -1}
	sawData := false
	for r.Scan() {
		line := r.Text()
		switch {
		case line == "":
			if sawData {
				frames = append(frames, cur)
				if n >= 0 && len(frames) >= n {
					return frames, keepAlives
				}
			}
			cur = sseFrame{id: -1}
			sawData = false
		case strings.HasPrefix(line, ":"):
			keepAlives++
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			sawData = true
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return frames, keepAlives
}

func openStream(t *testing.T, ts *httptest.Server, id string, lastEventID int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events = %d, want 200", resp.StatusCode)
	}
	return resp
}

// TestSSEResume: a client that reconnects with Last-Event-ID must see
// exactly the events after that id — no gaps, no replays.
func TestSSEResume(t *testing.T) {
	_, ts := newServer(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	release := gate(t)

	j := postJob(t, ts, submitBody(""), http.StatusAccepted)

	// First connection: read queued + running, remember where we got to,
	// then drop the connection mid-job.
	resp := openStream(t, ts, j.ID, -1)
	frames, _ := readFrames(t, bufio.NewScanner(resp.Body), 2)
	resp.Body.Close()
	if len(frames) != 2 || frames[0].kind != "queued" || frames[1].kind != "running" {
		t.Fatalf("first half = %+v, want queued, running", frames)
	}
	if frames[0].id != 0 || frames[1].id != 1 {
		t.Fatalf("event ids = %+v, want 0 and 1", frames)
	}

	// Finish the job while no one is connected.
	release()
	waitJobState(t, ts, j.ID, jobs.StateDone)

	// Resume after id 1: only the missed tail may arrive.
	resp = openStream(t, ts, j.ID, frames[1].id)
	tail, _ := readFrames(t, bufio.NewScanner(resp.Body), -1)
	resp.Body.Close()
	kinds := make([]string, len(tail))
	for i, f := range tail {
		kinds[i] = f.kind
		if f.id <= frames[1].id {
			t.Fatalf("resumed stream replayed event id %d (already seen through %d)", f.id, frames[1].id)
		}
	}
	if want := "sim-start,sim-done,done"; strings.Join(kinds, ",") != want {
		t.Fatalf("resumed tail = %v, want %s", kinds, want)
	}

	// A malformed Last-Event-ID is a client error, not a silent restart.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	badResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID = %d, want 400", badResp.StatusCode)
	}
}

// TestSSEKeepAlive: an idle stream must carry periodic comment lines so
// proxies and clients can tell a quiet job from a dead connection.
func TestSSEKeepAlive(t *testing.T) {
	mgr := jobs.NewManager(context.Background(), jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	t.Cleanup(mgr.Close)
	api := server.New(mgr)
	api.SetSSEKeepAlive(20 * time.Millisecond)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	release := gate(t)
	j := postJob(t, ts, submitBody(""), http.StatusAccepted)

	resp := openStream(t, ts, j.ID, -1)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// The job is pinned in Build, so after the queued/running frames the
	// stream goes idle: keep-alive comments are all that flows. Count a
	// few, then let the job finish and require a clean terminal frame.
	// (If keep-alives never come, the scan blocks and the test times out.)
	keepAlives := 0
	for keepAlives < 3 && sc.Scan() {
		if strings.HasPrefix(sc.Text(), ":") {
			keepAlives++
		}
	}
	if keepAlives < 3 {
		t.Fatalf("stream ended after %d keep-alives, want 3 on an idle job", keepAlives)
	}
	release()
	tail, _ := readFrames(t, sc, -1)
	if len(tail) == 0 || tail[len(tail)-1].kind != "done" {
		t.Fatalf("stream after idle period = %+v, want to end with done", tail)
	}
}

// TestDrainAdvisoryEvent: Drain must tell connected subscribers the
// process is going away — an advisory, id-less "draining" frame — while
// their job keeps running to completion.
func TestDrainAdvisoryEvent(t *testing.T) {
	mgr, ts := newServer(t, jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	release := gate(t)

	j := postJob(t, ts, submitBody(""), http.StatusAccepted)
	resp := openStream(t, ts, j.ID, -1)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	// queued, running, then sim-start (the engine emits it before the
	// gated Build blocks).
	if frames, _ := readFrames(t, sc, 3); frames[2].kind != "sim-start" {
		t.Fatalf("prelude = %+v", frames)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- mgr.Drain(context.Background()) }()

	frames, _ := readFrames(t, sc, 1)
	if frames[0].kind != "draining" {
		t.Fatalf("got %+v, want the draining advisory", frames[0])
	}
	if frames[0].id != -1 {
		t.Fatalf("draining advisory carried id %d; advisories must not burn history ids", frames[0].id)
	}

	release()
	tail, _ := readFrames(t, sc, -1)
	if last := tail[len(tail)-1]; last.kind != "done" {
		t.Fatalf("stream after drain ended with %q, want done", last.kind)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestCloseTerminatesStreams is the shutdown bugfix's contract: Close
// must end open streams with an explicit terminal "failed" frame carrying
// the shutdown error — not leave them hanging until a TCP timeout.
func TestCloseTerminatesStreams(t *testing.T) {
	mgr, ts := newServer(t, jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	release := gate(t)

	j := postJob(t, ts, submitBody(""), http.StatusAccepted)
	resp := openStream(t, ts, j.ID, -1)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if frames, _ := readFrames(t, sc, 2); frames[1].kind != "running" {
		t.Fatalf("prelude = %+v", frames)
	}

	// Close blocks joining the pinned worker, so run it aside; the
	// terminal frame must arrive *before* the gate releases.
	closed := make(chan struct{})
	go func() { mgr.Close(); close(closed) }()

	streamEnded := make(chan []sseFrame, 1)
	go func() {
		frames, _ := readFrames(t, sc, -1)
		streamEnded <- frames
	}()
	select {
	case frames := <-streamEnded:
		if len(frames) == 0 || frames[len(frames)-1].kind != "failed" {
			t.Fatalf("stream ended with %+v, want a terminal failed frame", frames)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream still open after Close; subscribers left hanging")
	}

	v := getJob(t, ts, j.ID)
	if v.State != jobs.StateFailed || !strings.Contains(v.Error, "shut down") {
		t.Fatalf("job after Close = %+v, want failed with the shutdown error", v)
	}
	release()
	<-closed
}

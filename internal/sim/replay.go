package sim

import (
	"context"
	"math/bits"
	"sync/atomic"

	"repro/internal/exectrace"
	"repro/internal/isa"
)

// replayRun is the per-run state of a trace-driven simulation: the
// (immutable, possibly shared) trace launch plus the shadow memory that
// re-executes atomics in the replay's own issue order.
type replayRun struct {
	launch      *exectrace.Launch
	warpsPerCTA int
	// atoms shadows the atomically-updated memory cells, seeded from the
	// trace's launch-time table. Replay applies the recorded per-lane
	// addends in its own (deterministic) issue order, which is exactly how
	// execute mode orders them under the same configuration — so the
	// old-value vectors, and everything downstream of them, match.
	atoms map[uint32]uint32
}

func (rp *replayRun) stream(ctaID, warpInCTA int) *exectrace.WarpStream {
	return rp.launch.Warps[ctaID*rp.warpsPerCTA+warpInCTA]
}

// Replay drives the timing/compression/energy back-end from a recorded
// trace launch instead of the ISA interpreter. For any configuration this
// GPU was built with, the Result is byte-identical to executing the same
// launch — the determinism oracle in the test suite enforces it.
//
// The trace launch is read-only throughout: any number of concurrent
// replays (each with its own GPU) may share one trace.
func (g *GPU) Replay(lt *exectrace.Launch) (*Result, error) {
	return g.ReplayContextBeat(context.Background(), lt, nil)
}

// ReplayContextBeat is Replay with cancellation and a progress heartbeat
// (see RunContextBeat).
func (g *GPU) ReplayContextBeat(ctx context.Context, lt *exectrace.Launch, beat *atomic.Uint64) (*Result, error) {
	if err := g.traceConfigError(); err != nil {
		return nil, err
	}
	if err := lt.Validate(); err != nil {
		return nil, err
	}
	l := isa.Launch{Kernel: lt.Kernel, Grid: lt.Grid, Block: lt.Block, Params: lt.Params}
	rp := &replayRun{
		launch:      lt,
		warpsPerCTA: l.WarpsPerCTA(),
		atoms:       make(map[uint32]uint32, len(lt.AtomInit)),
	}
	for _, c := range lt.AtomInit {
		rp.atoms[c.Addr] = c.Val
	}
	g.rp = rp
	defer func() { g.rp = nil }()
	return g.run(ctx, l, beat)
}

// replayStep is the replay-mode counterpart of execute: it advances the
// warp's trace cursor and reconstructs the functional outcome the timing
// pipeline needs — register-write vectors from the value pool (or the
// warp's shadow registers for unchanged writes), memory-timing metadata
// from the record, and atomic old values from the shadow memory. Control
// flow needs no SIMT stack: the trace already is the resolved lane-exact
// instruction stream.
func (s *SM) replayStep(w *Warp, in *isa.Instr, f *inflight) {
	res := &f.res
	st := w.rpStream
	r := &st.Recs[w.rpRec]
	w.rpRec++
	eff := r.Eff

	switch in.Op {
	case isa.OpNop, isa.OpBra:
		// issue-slot occupancy only

	case isa.OpBar:
		s.arriveBarrier(w)

	case isa.OpExit:
		dying := r.Active
		if in.Pred != isa.PredNone {
			dying = eff
		}
		w.launchMask &^= dying

	case isa.OpSetP:
		// Predicate outcomes are folded into the trace's Eff masks; the
		// record exists for issue-slot and scoreboard timing only.

	case isa.OpAtomAdd:
		res.dstVals = w.regs[in.Dst]
		// Cursor advance happens at issue; the shadow-memory
		// read-modify-writes resolve at the epoch barrier
		// (SM.resolveReplayAtom) in SM-id order — the same global order
		// execute mode commits in, so the old-value vectors match. The
		// shared shadow map is never touched from shard workers.
		f.atomIdx = w.rpAtom
		w.rpAtom += bits.OnesCount32(eff)
		res.writes = eff != 0
		if eff == 0 {
			res.unchanged = true
		} else {
			s.memLog = append(s.memLog, memOp{atom: f})
		}
		s.replayMemAux(st, w, in, r, res)

	case isa.OpStG, isa.OpStS:
		s.replayMemAux(st, w, in, r, res)

	default:
		// Register-writing ops: loads, selp, ALU/SFU.
		if r.Flags&exectrace.FlagWrites != 0 {
			res.writes = true
			if r.Flags&exectrace.FlagVals != 0 {
				res.dstVals = st.Vals[w.rpVal]
				w.rpVal++
				w.regs[in.Dst] = res.dstVals
			} else {
				res.dstVals = w.regs[in.Dst]
				res.unchanged = true
			}
		}
		if in.Op == isa.OpLdG || in.Op == isa.OpLdS {
			s.replayMemAux(st, w, in, r, res)
		}
	}

	// A stream ends at the exit that retires the warp's last thread; in
	// execute mode that is the instant warpExited fires, so replay fires it
	// on stream exhaustion and the barrier quorum and CTA accounting evolve
	// identically.
	if w.rpRec == len(st.Recs) && w.state != warpFinished {
		w.state = warpFinished
		s.warpExited(w)
	}
}

// replayMemAux restores the memory-timing metadata of a record: the
// coalesced segment list for global ops, the conflict degree for shared
// ops and atomics.
func (s *SM) replayMemAux(st *exectrace.WarpStream, w *Warp, in *isa.Instr, r *exectrace.Rec, res *execResult) {
	switch in.Op {
	case isa.OpLdG, isa.OpStG, isa.OpAtomAdd:
		res.nsegs = int(r.NSegs)
		copy(res.segBuf[:res.nsegs], st.Segs[w.rpSeg:w.rpSeg+res.nsegs])
		w.rpSeg += res.nsegs
		if in.Op == isa.OpAtomAdd {
			res.atomDeg = int(r.Deg)
		}
	default:
		res.sharedDeg = int(r.Deg)
		// Older v1 traces carry no word count for shared ops (NSegs was
		// always 0 there); they replay with zero bank-level counters while
		// phases — the timing-relevant part — still come from Deg.
		res.sharedWds = int(r.NSegs)
		if res.sharedWds > 0 {
			res.sharedBc = bits.OnesCount32(r.Eff) - res.sharedWds
		}
	}
}

package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
	"repro/internal/stats"
	"repro/internal/valueprof"
)

// ErrMaxCycles marks a simulation aborted for exceeding Config.MaxCycles —
// a deadlock or runaway kernel (under fault injection, often a corrupted
// loop bound). Test with errors.Is.
var ErrMaxCycles = errors.New("sim: exceeded MaxCycles")

// GPU is the full device: NumSMs streaming multiprocessors sharing one
// global memory, plus the grid-level CTA dispatcher.
type GPU struct {
	cfg Config
	mem *mem.Global
	sms []*SM

	// comp is the compression backend selected by cfg.Compression; all SMs
	// share it (the scheme is stateless on the write path — the static
	// scheme's table is bound once per launch, before the SMs run).
	comp core.Compressor

	// Front-end selection for the current run. Both nil in execute mode;
	// rec tees the functional front-end into a trace (RecordContextBeat),
	// rp replaces it with a trace cursor (ReplayContextBeat).
	rec *recorder
	rp  *replayRun
}

// New builds a GPU from a validated configuration.
func New(config Config) (*GPU, error) {
	if err := config.Validate(); err != nil {
		return nil, err
	}
	comp, err := core.NewCompressor(config.Compression)
	if err != nil {
		return nil, err // unreachable after Validate; kept for refactors
	}
	g := &GPU{cfg: config, mem: mem.NewGlobal(config.GlobalMemBytes), comp: comp}
	for i := 0; i < config.NumSMs; i++ {
		g.sms = append(g.sms, newSM(i, g))
	}
	return g, nil
}

// Mem exposes device global memory for host data setup.
func (g *GPU) Mem() *mem.Global { return g.mem }

// Config returns the GPU's configuration.
func (g *GPU) Config() Config { return g.cfg }

// Result is the outcome of one kernel launch.
type Result struct {
	Cycles uint64
	Stats  stats.Stats
	Energy energy.Events
}

// cancelCheckInterval is how often (in simulated cycles) the cycle loop
// polls the context. 4096 cycles keeps the check off the hot path (one
// branch per ~4k cycles) while bounding cancellation latency to well under a
// millisecond of wall time.
const cancelCheckInterval = 4096

// Run simulates one kernel launch to completion and returns the aggregated
// statistics of all SMs. The same GPU may run several launches in sequence;
// global memory persists across launches (as on a real device).
func (g *GPU) Run(l isa.Launch) (*Result, error) {
	return g.RunContext(context.Background(), l)
}

// RunContext is Run with cancellation: the cycle loop polls ctx every
// cancelCheckInterval cycles and aborts the simulation with an error
// wrapping ctx.Err() (context.Canceled or context.DeadlineExceeded). The
// GPU's SM state is left mid-launch and must be considered dirty; device
// global memory remains readable.
func (g *GPU) RunContext(ctx context.Context, l isa.Launch) (*Result, error) {
	return g.RunContextBeat(ctx, l, nil)
}

// RunContextBeat is RunContext with a progress heartbeat: at every context
// poll (each cancelCheckInterval cycles) the total number of instructions
// issued so far is stored into beat. An external watchdog that sees the
// value stop advancing knows the simulation is making no forward progress —
// instructions, not cycles, so a deadlocked pipeline that still burns
// cycles reads as stalled. beat may be nil.
func (g *GPU) RunContextBeat(ctx context.Context, l isa.Launch, beat *atomic.Uint64) (*Result, error) {
	g.rec, g.rp = nil, nil
	return g.run(ctx, l, beat)
}

// run is the shared simulation engine behind execute, record and replay
// modes: CTA dispatch, the cycle loop, drain invariants and result
// assembly. The front-end flavor is selected by g.rec/g.rp.
func (g *GPU) run(ctx context.Context, l isa.Launch, beat *atomic.Uint64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: launch not started: %w", err)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	// Replay never consults the reconvergence table (the trace already is
	// the resolved control flow) and must not mutate the kernel, which may
	// be shared read-only with concurrent replays of the same trace.
	if g.rp == nil && l.Kernel.ReconvPC == nil {
		if err := cfg.ComputeReconvergence(l.Kernel); err != nil {
			return nil, err
		}
	}
	if l.WarpsPerCTA() > g.cfg.MaxWarpsPerSM {
		return nil, fmt.Errorf("sim: CTA of %d warps exceeds SM capacity %d", l.WarpsPerCTA(), g.cfg.MaxWarpsPerSM)
	}
	if l.WarpsPerCTA()*l.Kernel.NumRegs > regfile.Capacity {
		return nil, fmt.Errorf("sim: CTA register demand (%d warps x %d regs) exceeds register file capacity %d",
			l.WarpsPerCTA(), l.Kernel.NumRegs, regfile.Capacity)
	}

	// Table-driven schemes derive their per-kernel encoding table here,
	// before any SM runs. The table is a pure function of the kernel image
	// (valueprof.StaticTable), so execute, record, replay and every shard
	// count bind the same table.
	if b, ok := g.comp.(core.KernelTableBinder); ok {
		b.BindTable(valueprof.StaticTable(l.Kernel))
	}

	for _, sm := range g.sms {
		sm.reset(l)
	}
	// Back the allocator's high-water mark up front: during the parallel
	// phase global memory is read-only (stores commit at epoch barriers),
	// so the backing slice must not grow under a concurrent load.
	g.mem.Presize()

	epoch := uint64(g.cfg.SMEpoch)
	if epoch == 0 {
		epoch = 1
	}
	pool := newShardPool(g, g.shardCount())
	defer pool.stop()

	nextCTA := 0
	numCTAs := l.NumCTAs()
	c0 := uint64(1) // first cycle of the current epoch
	for {
		// Round-robin CTA dispatch (one attempt per SM per epoch keeps
		// the dispatcher simple and fair; at the default 1-cycle epoch
		// this is the sequential engine's per-cycle dispatch exactly).
		for _, sm := range g.sms {
			if nextCTA >= numCTAs {
				break
			}
			if sm.tryLaunchCTA(nextCTA) {
				nextCTA++
			}
		}
		for _, sm := range g.sms {
			if sm.err != nil && sm.errCycle == 0 {
				sm.errCycle = c0 // dispatch-phase failure (warp allocation)
			}
		}

		pool.runEpoch(c0, epoch)

		if err := g.epochErr(); err != nil {
			return nil, err // run abandoned; buffered effects stay uncommitted
		}
		g.commitEpoch()

		busy := nextCTA < numCTAs
		for _, sm := range g.sms {
			busy = busy || sm.busy()
		}
		if !busy {
			c0 += epoch - 1 // the launch drained within this epoch
			break
		}
		next := c0 + epoch
		// Poll once per epoch when a cancelCheckInterval boundary falls
		// inside it; the reported cycle is that boundary, matching the
		// sequential engine's per-cycle modulo check at 1-cycle epochs.
		if m := next / cancelCheckInterval * cancelCheckInterval; m > c0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: canceled at cycle %d: %w", m, err)
			}
			if beat != nil {
				beat.Store(pool.issuedTotal())
			}
		}
		if next > g.cfg.MaxCycles {
			return nil, fmt.Errorf("%w: %d cycles (deadlock or runaway kernel?)", ErrMaxCycles, g.cfg.MaxCycles)
		}
		c0 = next
	}
	cycle := c0

	// Drain invariants: a completed launch must leave no residue. A
	// violation is a simulator bug, never a workload property.
	for _, sm := range g.sms {
		if sm.liveWarps != 0 || len(sm.inflight) != 0 || sm.collectorsInUse != 0 {
			return nil, fmt.Errorf("sim: SM %d finished dirty: %d live warps, %d inflight, %d collectors",
				sm.id, sm.liveWarps, len(sm.inflight), sm.collectorsInUse)
		}
		for slot, w := range sm.warps {
			if w != nil {
				return nil, fmt.Errorf("sim: SM %d warp slot %d not released", sm.id, slot)
			}
		}
	}

	res := &Result{Cycles: cycle}
	// The baseline design has no compression hardware, so it carries no
	// compressor/decompressor leakage. The RFC comparator leaks for its
	// full capacity (entries x 128 B x resident warps).
	compUnits, decompUnits := 0, 0
	if g.cfg.Mode.Enabled() {
		compUnits, decompUnits = g.cfg.Compressors, g.cfg.Decompressors
	}
	rfcKB := 0
	if g.cfg.RFCEntries > 0 {
		rfcKB = g.cfg.RFCEntries * 128 * g.cfg.MaxWarpsPerSM / 1024
	}
	for _, sm := range g.sms {
		st := sm.finalize(cycle)
		res.Stats.Add(st)
		res.Energy.Add(energy.Events{
			BankAccesses:       st.RF.BankReads + st.RF.BankWrites,
			WireBeats:          st.RF.BankReads + st.RF.BankWrites,
			CompActs:           st.CompActs,
			DecompActs:         st.DecompActs,
			RFCAccesses:        st.RFCReads + st.RFCWrites,
			RFCKB:              rfcKB,
			SharedBankAccesses: st.SharedBankAccesses,
			PoweredBankCycles:  st.RF.PoweredBankCycles,
			DrowsyBankCycles:   st.RF.DrowsyBankCycles,
			Cycles:             cycle,
			CompUnits:          compUnits,
			DecompUnits:        decompUnits,
		})
	}
	return res, nil
}

package sim

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/regfile"
	"repro/internal/sched"
	"repro/internal/stats"
)

// ctaState tracks one resident thread block.
type ctaState struct {
	active    bool
	ctaID     int
	warpsLeft int // warps not yet finalized
	liveWarps int // warps with threads still running (barrier quorum)
	barrier   int // warps waiting at the barrier
	shared    []byte
	slots     []int
}

// SM is one streaming multiprocessor.
type SM struct {
	id     int
	cfg    *Config
	gpu    *GPU
	launch isa.Launch
	kernel *isa.Kernel

	warps   []*Warp // indexed by slot; nil = free
	ctas    []*ctaState
	policy  []sched.Policy // one per scheduler
	ageSeq  uint64
	rfFile  *regfile.File
	comp    *core.UnitPool
	decomp  *core.UnitPool
	memPipe *mem.Pipe
	l1      *mem.Cache // nil when disabled

	inflight []*inflight // issue order

	// Per-cycle bank port reservations: stamp == cycle means taken.
	readPort  [regfile.NumBanks]uint64
	writePort [regfile.NumBanks]uint64

	cycle           uint64
	liveWarps       int
	collectorsInUse int // inflight instructions still in stCollect

	inj *faults.Injector // nil unless fault injection is configured

	// Epoch-commit state (shard.go): global stores and deferred atomics
	// buffer in memLog during the parallel phase and apply at the epoch
	// barrier in SM-id order; memOverlay makes the SM's own buffered
	// stores visible to its own loads within the epoch. issuedCtr points
	// at the owning shard's instruction counter (the O(shards) heartbeat);
	// errCycle records when err was raised, for the coordinator's
	// deterministic first-error selection.
	memLog     []memOp
	memOverlay map[uint32]uint32
	issuedCtr  *uint64
	errCycle   uint64
	recv       *recView // this SM's recorder view; nil unless recording

	// Scratch arenas, owned exclusively by this SM (each SM is stepped by
	// exactly one shard worker per epoch, and the experiment engine gives
	// every job its own GPU, so no locking is needed; `go test -race`
	// guards the invariant). They make the steady-state cycle path
	// allocation-free:
	//   - inflightPool / warpPool recycle retired records and their
	//     backing arrays (register vectors, SIMT stacks, bank lists);
	//   - cands is the scheduler candidate buffer rebuilt every cycle;
	//   - slotScratch backs the free-slot scan of CTA launches.
	inflightPool []*inflight
	warpPool     []*Warp
	cands        []sched.Candidate
	slotScratch  []int

	st  stats.Stats
	err error
}

// allocInflight takes a zeroed inflight record from the SM's pool.
func (s *SM) allocInflight() *inflight {
	if n := len(s.inflightPool); n > 0 {
		f := s.inflightPool[n-1]
		s.inflightPool = s.inflightPool[:n-1]
		*f = inflight{}
		return f
	}
	return &inflight{}
}

// freeInflight returns a retired record to the pool for reuse.
func (s *SM) freeInflight(f *inflight) {
	s.inflightPool = append(s.inflightPool, f)
}

// allocWarpObj takes a recycled warp from the pool (or builds one) and
// re-initializes it for the given slot.
func (s *SM) allocWarpObj(slot, ctaSlot, ctaID, warpInCTA, liveThreads, numRegs int, age uint64) *Warp {
	if n := len(s.warpPool); n > 0 {
		w := s.warpPool[n-1]
		s.warpPool = s.warpPool[:n-1]
		w.reset(slot, ctaSlot, ctaID, warpInCTA, liveThreads, numRegs, age)
		return w
	}
	return newWarp(slot, ctaSlot, ctaID, warpInCTA, liveThreads, numRegs, age)
}

// regfileConfig derives the SM's register file configuration, including the
// fault topology realized for this SM (rebuilt per launch so every launch
// sees the identical, seed-determined pattern).
func (s *SM) regfileConfig() regfile.Config {
	cfg := s.cfg
	rc := regfile.Config{GatingEnabled: cfg.PowerGating, WakeupLatency: cfg.BankWakeupLatency, DrowsyAfter: cfg.DrowsyAfter, EncBanks: core.BankTable(s.gpu.comp)}
	if s.inj != nil {
		rc.FaultyBanks = s.inj.FaultyBanks()
		rc.RedirectCompressed = cfg.Faults.Redirect
	}
	return rc
}

func newSM(id int, gpu *GPU) *SM {
	cfg := &gpu.cfg
	s := &SM{
		id:      id,
		cfg:     cfg,
		gpu:     gpu,
		warps:   make([]*Warp, cfg.MaxWarpsPerSM),
		ctas:    make([]*ctaState, cfg.MaxCTAsPerSM),
		comp:    core.NewUnitPool(cfg.Compressors, cfg.CompressLatency),
		decomp:  core.NewUnitPool(cfg.Decompressors, cfg.DecompressLatency),
		memPipe: mem.NewPipe(cfg.GlobalLatency, cfg.GlobalMaxInflight),

		memOverlay: make(map[uint32]uint32),
		issuedCtr:  new(uint64), // run() retargets to the owning shard
	}
	if cfg.Faults.Enabled() {
		s.inj = faults.NewInjector(cfg.Faults, id, regfile.NumBanks)
	}
	s.rfFile = regfile.New(s.regfileConfig())
	if cfg.L1SizeKB > 0 {
		s.l1 = mem.NewCache(cfg.L1SizeKB<<10, cfg.L1Ways)
	}
	for i := range s.ctas {
		s.ctas[i] = &ctaState{}
	}
	for i := 0; i < cfg.SchedulersPerSM; i++ {
		s.policy = append(s.policy, sched.NewPolicy(cfg.Scheduler, cfg.MaxWarpsPerSM))
	}
	return s
}

// reset prepares the SM for a fresh kernel launch: new register file, unit
// pools, memory pipe and statistics (global memory persists at GPU level).
func (s *SM) reset(l isa.Launch) {
	cfg := s.cfg
	s.launch = l
	s.kernel = l.Kernel
	s.inflight = s.inflight[:0]
	s.st = stats.Stats{}
	// Rebuild the injector so each launch draws the same seed-determined
	// fault pattern and transient stream (per-launch determinism).
	if cfg.Faults.Enabled() {
		s.inj = faults.NewInjector(cfg.Faults, s.id, regfile.NumBanks)
	} else {
		s.inj = nil
	}
	s.rfFile = regfile.New(s.regfileConfig())
	s.comp = core.NewUnitPool(cfg.Compressors, cfg.CompressLatency)
	s.decomp = core.NewUnitPool(cfg.Decompressors, cfg.DecompressLatency)
	s.memPipe = mem.NewPipe(cfg.GlobalLatency, cfg.GlobalMaxInflight)
	if cfg.L1SizeKB > 0 {
		s.l1 = mem.NewCache(cfg.L1SizeKB<<10, cfg.L1Ways)
	} else {
		s.l1 = nil
	}
	for i := range s.warps {
		s.warps[i] = nil
	}
	for i := range s.ctas {
		s.ctas[i] = &ctaState{}
	}
	for _, p := range s.policy {
		p.Reset()
	}
	s.liveWarps = 0
	s.ageSeq = 0
	s.collectorsInUse = 0
	s.err = nil
	s.errCycle = 0
	s.memLog = s.memLog[:0]
	if len(s.memOverlay) > 0 {
		clear(s.memOverlay)
	}
	s.recv = nil
	if s.gpu.rec != nil {
		s.recv = s.gpu.rec.views[s.id]
	}
}

// busy reports whether the SM still has resident work.
func (s *SM) busy() bool { return s.liveWarps > 0 || len(s.inflight) > 0 }

// maxWarpSlots is the number of usable warp slots given the kernel's
// register demand (the register file occupancy limit).
func (s *SM) maxWarpSlots() int {
	n := s.cfg.MaxWarpsPerSM
	if s.kernel == nil || s.kernel.NumRegs == 0 {
		return n
	}
	byRegs := regfile.Capacity / s.kernel.NumRegs
	if byRegs < n {
		n = byRegs
	}
	return n
}

// tryLaunchCTA places grid CTA ctaID on this SM if resources allow.
func (s *SM) tryLaunchCTA(ctaID int) bool {
	warpsNeeded := s.launch.WarpsPerCTA()
	var ctaSlot = -1
	for i, c := range s.ctas {
		if !c.active {
			ctaSlot = i
			break
		}
	}
	if ctaSlot < 0 {
		return false
	}
	limit := s.maxWarpSlots()
	free := s.slotScratch[:0]
	for slot := 0; slot < limit && len(free) < warpsNeeded; slot++ {
		if s.warps[slot] == nil {
			free = append(free, slot)
		}
	}
	s.slotScratch = free[:0] // retain grown backing for the next launch
	if len(free) < warpsNeeded {
		return false
	}

	cta := s.ctas[ctaSlot]
	// Reuse the CTA slot's shared-memory slab and slot list across
	// launches; a fresh CTA must observe zeroed shared memory.
	shared := cta.shared
	if cap(shared) >= s.kernel.SharedBytes {
		shared = shared[:s.kernel.SharedBytes]
		clear(shared)
	} else {
		shared = make([]byte, s.kernel.SharedBytes)
	}
	*cta = ctaState{
		active:    true,
		ctaID:     ctaID,
		warpsLeft: warpsNeeded,
		liveWarps: warpsNeeded,
		shared:    shared,
		slots:     append(cta.slots[:0], free...),
	}
	threads := s.launch.ThreadsPerCTA()
	for wi, slot := range free {
		live := threads - wi*isa.WarpSize
		if live > isa.WarpSize {
			live = isa.WarpSize
		}
		s.ageSeq++
		w := s.allocWarpObj(slot, ctaSlot, ctaID, wi, live, s.kernel.NumRegs, s.ageSeq)
		if s.gpu.rp != nil {
			w.rpStream = s.gpu.rp.stream(ctaID, wi)
		}
		s.warps[slot] = w
		if err := s.rfFile.AllocWarp(slot, s.kernel.NumRegs); err != nil {
			s.err = err
			return false
		}
		s.liveWarps++
	}
	return true
}

// step advances the SM by one cycle.
func (s *SM) step(cycle uint64) {
	s.cycle = cycle
	s.advancePipeline()
	s.issueAll()
	s.rfFile.Tick(cycle)
}

// issueAll lets every scheduler issue at most one instruction.
func (s *SM) issueAll() {
	nsched := s.cfg.SchedulersPerSM
	cands := s.cands[:0]
	for si := 0; si < nsched && s.err == nil; si++ {
		cands = cands[:0]
		for slot := si; slot < len(s.warps); slot += nsched {
			w := s.warps[slot]
			if w == nil || w.state != warpRunning {
				continue
			}
			if s.canIssue(w) {
				cands = append(cands, sched.Candidate{Slot: slot, Age: w.age})
			}
		}
		if len(cands) == 0 {
			continue
		}
		slot := s.policy[si].Pick(cands)
		s.issue(s.warps[slot])
	}
	s.cands = cands[:0] // retain grown backing
}

// nextInstr returns the warp's next instruction: the SIMT stack top in
// execute/record mode, the trace cursor in replay mode. nil when the warp
// has nothing left to issue.
func (s *SM) nextInstr(w *Warp) *isa.Instr {
	if s.gpu.rp != nil {
		if w.rpRec >= len(w.rpStream.Recs) {
			return nil
		}
		return &s.kernel.Code[w.rpStream.Recs[w.rpRec].PC]
	}
	t := w.tos()
	if t == nil {
		return nil
	}
	return &s.kernel.Code[t.pc]
}

// canIssue checks every issue hazard for the warp's next instruction.
func (s *SM) canIssue(w *Warp) bool {
	in := s.nextInstr(w)
	if in == nil {
		return false
	}

	// Predicate scoreboard: guard, comparison destination, selp source.
	if in.Pred != isa.PredNone && w.predBusy&(1<<in.Pred) != 0 {
		s.st.StallScoreboard++
		return false
	}
	if in.PDst != isa.PredNone && w.predBusy&(1<<in.PDst) != 0 {
		s.st.StallScoreboard++
		return false
	}
	if in.PSrc != isa.PredNone && w.predBusy&(1<<in.PSrc) != 0 {
		s.st.StallScoreboard++
		return false
	}
	// Register scoreboard: RAW on sources, WAW on destination.
	for _, src := range in.Srcs {
		if src.Kind == isa.OperandReg && w.regBusy&(1<<src.Reg) != 0 {
			s.st.StallScoreboard++
			return false
		}
	}
	if in.HasDst() && w.regBusy&(1<<in.Dst) != 0 {
		s.st.StallScoreboard++
		return false
	}
	// Structural: non-control instructions (and dummy MOVs) need a
	// collector unit. A collector is held only while bank reads are
	// outstanding: once operands are collected they are handed to the
	// decompressor pipeline (paper Figure 1 places the decompressors
	// between collectors and execution units, with their own buffering).
	if in.Op.Class() != isa.ClassCtrl && s.collectorsInUse >= s.cfg.Collectors {
		s.st.StallCollector++
		return false
	}
	return true
}

// issue executes one instruction (or injects a dummy MOV) for warp w. The
// issue-side timing machinery — dummy MOV injection, collectors, bank
// reads, scoreboards — is identical across front-ends; only the source of
// (pc, active, eff) and the functional step differ between execute/record
// and replay.
func (s *SM) issue(w *Warp) {
	var pc int32
	var active, eff uint32
	replaying := s.gpu.rp != nil
	if replaying {
		r := &w.rpStream.Recs[w.rpRec]
		pc, active, eff = r.PC, r.Active, r.Eff
	} else {
		t := w.tos()
		pc = t.pc
		active = t.mask
	}
	in := &s.kernel.Code[pc]
	if !replaying {
		eff = active & w.guardMask(in)
	}

	// Dummy MOV injection (paper §5.2): a partial write to a register held
	// in compressed state must first be decompressed in place. The
	// "recompress" ablation policy instead merges through a buffer at
	// writeback, so it never injects MOVs.
	if in.HasDst() && eff != 0 && eff != w.launchMask && s.cfg.Mode.Enabled() &&
		s.cfg.DivergencePolicy != "recompress" {
		dstID := regfile.RegID(w.slot, int(in.Dst), s.kernel.NumRegs)
		if s.rfFile.Written(dstID) && s.rfFile.Encoding(dstID).IsCompressed() {
			s.issueDummyMov(w, in.Dst, dstID)
			return
		}
	}

	divergent := active != w.launchMask
	s.st.Instructions++
	*s.issuedCtr++ // shard heartbeat, aggregated O(shards) at beat points
	if divergent {
		s.st.DivergentInstrs++
	}

	// Take the inflight record up front and let the functional step fill
	// its result in place; control instructions (and errors) hand it
	// straight back.
	f := s.allocInflight()
	if replaying {
		s.replayStep(w, in, f)
	} else {
		if err := s.execute(w, in, pc, active, eff, f); err != nil {
			s.err = err
			s.freeInflight(f)
			return
		}
		if v := s.recv; v != nil {
			v.record(w, in, pc, active, eff, &f.res)
			if v.err != nil {
				s.err = v.err // untraceable launch: abort the recording run
			}
		}
	}
	if in.Op.Class() == isa.ClassCtrl {
		s.freeInflight(f)
		return // branches/exit/barrier/nop resolve entirely at issue
	}

	f.w = w
	f.in = in
	f.eff = eff
	f.partial = f.res.writes && eff != w.launchMask
	f.stage = stCollect
	// Operand collector bank reads for distinct register sources. Sources
	// resident in the register file cache comparator skip the banks.
	var seen uint64
	for _, src := range in.Srcs {
		if src.Kind != isa.OperandReg || seen&(1<<src.Reg) != 0 {
			continue
		}
		seen |= 1 << src.Reg
		if s.cfg.RFCEntries > 0 {
			if w.rfcLookup(src.Reg) {
				s.st.RFCReads++
				continue
			}
			s.st.RFCReadMisses++
		}
		id := regfile.RegID(w.slot, int(src.Reg), s.kernel.NumRegs)
		var buf [regfile.BanksPerCluster]int
		for _, b := range s.rfFile.ReadBanks(id, active, buf[:0]) {
			f.pendingBanks[f.nPending] = uint8(b)
			f.nPending++
		}
		if s.rfFile.Written(id) && s.rfFile.Encoding(id).IsCompressed() {
			f.compSrcs++
		}
	}
	if f.res.writes {
		f.dstID = regfile.RegID(w.slot, int(in.Dst), s.kernel.NumRegs)
		w.regBusy |= 1 << in.Dst
		// Recompress policy: a partial write re-reads the destination's
		// current banks so the merge buffer holds the full register.
		if f.partial && s.cfg.Mode.Enabled() && s.cfg.DivergencePolicy == "recompress" &&
			s.rfFile.Written(f.dstID) {
			f.mergedStore = true
			var buf [regfile.BanksPerCluster]int
			for _, b := range s.rfFile.ReadBanks(f.dstID, w.launchMask, buf[:0]) {
				f.pendingBanks[f.nPending] = uint8(b)
				f.nPending++
			}
			if s.rfFile.Encoding(f.dstID).IsCompressed() {
				f.compSrcs++
			}
		}
	}
	if in.Op == isa.OpSetP {
		w.predBusy |= 1 << in.PDst
	}
	w.inFlight++
	s.collectorsInUse++
	s.inflight = append(s.inflight, f)
}

// issueDummyMov injects the decompress-in-place MOV of paper §5.2.
func (s *SM) issueDummyMov(w *Warp, dst isa.Reg, dstID int) {
	s.st.DummyMovs++
	f := s.allocInflight()
	f.w = w
	f.eff = w.launchMask
	f.dummy = true
	f.stage = stCollect
	f.dstID = dstID
	f.res.writes = true
	f.res.unchanged = true
	f.res.dstVals = w.regs[dst] // value is unchanged; only the encoding changes
	var buf [regfile.BanksPerCluster]int
	for _, b := range s.rfFile.ReadBanks(dstID, w.launchMask, buf[:0]) {
		f.pendingBanks[f.nPending] = uint8(b)
		f.nPending++
	}
	f.compSrcs = 1
	w.regBusy |= 1 << dst
	f.dummyDst = dst
	w.inFlight++
	s.collectorsInUse++
	s.inflight = append(s.inflight, f)
}

// arriveBarrier handles bar.sync issue.
func (s *SM) arriveBarrier(w *Warp) {
	w.state = warpAtBarrier
	cta := s.ctas[w.ctaSlot]
	cta.barrier++
	s.checkBarrier(cta)
}

// checkBarrier releases the CTA barrier when every live warp arrived.
func (s *SM) checkBarrier(cta *ctaState) {
	if cta.barrier == 0 || cta.barrier < cta.liveWarps {
		return
	}
	cta.barrier = 0
	for _, slot := range cta.slots {
		if w := s.warps[slot]; w != nil && w.state == warpAtBarrier {
			w.state = warpRunning
		}
	}
}

// warpExited is called when the last thread of a warp leaves.
func (s *SM) warpExited(w *Warp) {
	cta := s.ctas[w.ctaSlot]
	cta.liveWarps--
	s.liveWarps--
	s.checkBarrier(cta) // remaining warps may now satisfy the barrier
	if w.inFlight == 0 {
		s.finalizeWarp(w)
	}
}

// finalizeWarp frees a fully drained, exited warp's resources.
func (s *SM) finalizeWarp(w *Warp) {
	if w.finalized {
		return
	}
	w.finalized = true
	// Flush the comparator's dirty entries back to the main banks (energy
	// accounting; the warp is done so timing is irrelevant).
	if s.cfg.RFCEntries > 0 {
		for _, e := range w.rfc {
			if e.dirty {
				s.rfcWriteback(w, e.reg)
			}
		}
		w.rfc = w.rfc[:0]
	}
	s.rfFile.FreeWarp(w.slot, s.kernel.NumRegs, s.cycle)
	s.warps[w.slot] = nil
	s.warpPool = append(s.warpPool, w)
	cta := s.ctas[w.ctaSlot]
	cta.warpsLeft--
	if cta.warpsLeft == 0 {
		// The shared slab stays attached to the slot for the next CTA
		// (tryLaunchCTA clears it on reuse).
		cta.active = false
	}
}

// chooseEnc classifies a register write's compression encoding, memoized per
// warp register: when the committed value is unchanged since the register's
// last classification (res.unchanged — stable because the WAW scoreboard
// admits no second writer before this commit), the cached encoding is
// returned without rescanning the 128-byte vector. Fault corruption
// invalidates entries (see applyFaults).
func (s *SM) chooseEnc(w *Warp, dst isa.Reg, res *execResult, mode core.Mode) core.Encoding {
	// The memo is namespaced by compression backend: encoding classes mean
	// different patterns under different schemes, so an entry written by
	// one compressor must never be served under another (a warp object can
	// outlive a scheme via the arena when engines are rebuilt in place).
	if w.encComp != s.gpu.comp {
		w.encValid = 0
		w.encComp = s.gpu.comp
	}
	if res.unchanged && w.encValid&(1<<dst) != 0 {
		return w.encCache[dst]
	}
	e := s.gpu.comp.Choose(int(dst), &res.dstVals, mode)
	w.encCache[dst] = e
	w.encValid |= 1 << dst
	return e
}

// finalize closes out per-SM statistics at end of simulation.
func (s *SM) finalize(cycles uint64) *stats.Stats {
	s.rfFile.Finish(cycles)
	s.st.Cycles = cycles
	s.st.RF = s.rfFile.Snapshot()
	s.st.CompActs = s.comp.Activations()
	s.st.DecompActs = s.decomp.Activations()
	s.st.GlobalTxns = s.memPipe.Transactions()
	if s.l1 != nil {
		s.st.L1Hits, s.st.L1Misses = s.l1.Stats()
	}
	return &s.st
}

package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/asm"
	"repro/internal/exectrace"
	"repro/internal/isa"
)

// FuzzRecordReplay is the end-to-end trace oracle as a fuzz target: any
// assemblable kernel that records successfully must replay — through a full
// wire-format round trip — to the byte-identical sim.Result. The corpus
// seeds it with the suite's representative control-flow shapes; the fuzzer
// then mutates the assembly, the geometry and the SM shard count (record
// and replay run at independent shard counts, which must be invisible).
func FuzzRecordReplay(f *testing.F) {
	f.Add(tidKernelSrc, uint8(3), uint8(1), uint8(0))
	f.Add(replayDivergentSrc, uint8(2), uint8(1), uint8(1))
	f.Add(replayAtomicSrc, uint8(1), uint8(0), uint8(2))
	f.Add(replayAtomicSrc, uint8(3), uint8(2), uint8(7))

	f.Fuzz(func(t *testing.T, src string, grid, block, shards uint8) {
		k, err := asm.Assemble("fuzz", src)
		if err != nil {
			t.Skip()
		}
		l := isa.Launch{
			Kernel: k,
			Grid:   isa.Dim3{X: 1 + int(grid)%4},
			Block:  isa.Dim3{X: 32 * (1 + int(block)%4)},
		}
		c := testConfig()
		c.MaxCycles = 200_000 // fuzzed kernels may loop forever
		// Record at one shard count, replay at another: byte-equality of the
		// two results proves sharding is invisible end to end.
		c.SMParallel = 1 + int(shards)%4
		cR := c
		cR.SMParallel = 1 + int(shards/4)%4

		gRec, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		recRes, lt, err := gRec.Record(l)
		if err != nil {
			t.Skip() // invalid program behavior (OOB access, runaway loop)
		}
		var buf bytes.Buffer
		if err := exectrace.Write(&buf, &exectrace.Trace{Launches: []*exectrace.Launch{lt}}); err != nil {
			t.Fatalf("recorded trace failed to serialize: %v", err)
		}
		decoded, err := exectrace.Read(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to decode: %v", err)
		}
		gR, err := New(cR)
		if err != nil {
			t.Fatal(err)
		}
		resR, err := gR.Replay(decoded.Launches[0])
		if err != nil {
			t.Fatalf("recorded trace failed to replay: %v", err)
		}
		be, _ := json.Marshal(recRes)
		br, _ := json.Marshal(resR)
		if !bytes.Equal(be, br) {
			t.Fatalf("replay diverged from record\nrecord: %s\nreplay: %s", be, br)
		}
	})
}

package sim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/exectrace"
	"repro/internal/isa"
)

// shardHammerSrc is the cross-SM atomic hammer: every thread of every CTA
// loops over a handful of globally contended bins, atomically bumping one
// and storing each observed old value. With one CTA per SM the bins are
// hit from every shard every cycle — the worst case for the epoch-barrier
// commit, and therefore the sharpest determinism probe.
const shardHammerSrc = `
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0
	and  r2, r1, 15
	shl  r3, r2, 2
	mov  r6, 0
Lloop:
	atom.add r4, [r3], 1
	shl  r5, r1, 2
	add  r5, r5, 256
	st.global [r5], r4
	add  r6, r6, 1
	setp.lt p0, r6, 8
@p0	bra Lloop
	exit
`

// shardConfig is testConfig at full SM count, so shard counts up to (and
// beyond) NumSMs are meaningful.
func shardConfig() Config {
	c := testConfig()
	c.NumSMs = 15
	return c
}

func shardHammerLaunch(t *testing.T) isa.Launch {
	t.Helper()
	k, err := asm.Assemble("shard-hammer", shardHammerSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return isa.Launch{Kernel: k, Grid: isa.Dim3{X: 30}, Block: isa.Dim3{X: 64}}
}

// shardCounts spans the interesting shapes: sequential, uneven partition
// (15 SMs over 2 and 4 shards), one SM per shard, and oversubscribed
// (clamped back to NumSMs).
var shardCounts = []int{1, 2, 4, 15, 32}

// TestShardCountInvariance is the tentpole oracle: the warped.sim.result/v1
// bytes AND the final global-memory image must be identical at every shard
// count, for single-cycle epochs and for multi-cycle ones.
func TestShardCountInvariance(t *testing.T) {
	for _, epoch := range []int{1, 4} {
		t.Run(fmt.Sprintf("epoch=%d", epoch), func(t *testing.T) {
			var wantRes []byte
			var wantMem []int32
			for _, shards := range shardCounts {
				c := shardConfig()
				c.SMEpoch = epoch
				c.SMParallel = shards
				g, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				res, err := g.Run(shardHammerLaunch(t))
				if err != nil {
					t.Fatalf("SMParallel=%d: %v", shards, err)
				}
				mem, err := g.Mem().ReadInt32(0, 64+4*30*64)
				if err != nil {
					t.Fatal(err)
				}
				rb := resultBytes(t, res)
				if wantRes == nil {
					wantRes, wantMem = rb, mem
					continue
				}
				if !bytes.Equal(rb, wantRes) {
					t.Errorf("SMParallel=%d: result diverged from SMParallel=%d\n got %s\nwant %s",
						shards, shardCounts[0], rb, wantRes)
				}
				for i := range mem {
					if mem[i] != wantMem[i] {
						t.Fatalf("SMParallel=%d: memory word %d = %d, want %d", shards, i, mem[i], wantMem[i])
					}
				}
			}
		})
	}
}

// TestShardCountInvarianceRecordReplay extends the oracle across trace
// modes: recording at any shard count must produce identical trace bytes
// and the execute-identical result, and that one trace must replay
// byte-identically at every shard count.
func TestShardCountInvarianceRecordReplay(t *testing.T) {
	var wantRes, wantTrace []byte
	var lt *exectrace.Launch
	for _, shards := range shardCounts {
		c := shardConfig()
		c.SMParallel = shards
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, rec, err := g.Record(shardHammerLaunch(t))
		if err != nil {
			t.Fatalf("Record SMParallel=%d: %v", shards, err)
		}
		rb, tb := resultBytes(t, res), traceBytes(t, rec)
		if wantRes == nil {
			wantRes, wantTrace, lt = rb, tb, rec
			continue
		}
		if !bytes.Equal(rb, wantRes) {
			t.Errorf("record SMParallel=%d: result diverged", shards)
		}
		if !bytes.Equal(tb, wantTrace) {
			t.Errorf("record SMParallel=%d: trace bytes diverged", shards)
		}
	}
	for _, shards := range shardCounts {
		c := shardConfig()
		c.SMParallel = shards
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Replay(lt)
		if err != nil {
			t.Fatalf("Replay SMParallel=%d: %v", shards, err)
		}
		if !bytes.Equal(resultBytes(t, res), wantRes) {
			t.Errorf("replay SMParallel=%d: result diverged from execute", shards)
		}
	}
}

// TestShardFaultInjectionInvariance: the fault machinery is all per-SM
// state (seeded PRNGs, bank maps), so injected campaigns must also be
// byte-identical at every shard count — including campaigns whose bit
// flips corrupt an address register and crash the kernel, where the
// (cycle, SM) of the reported fault is the thing that must not move.
func TestShardFaultInjectionInvariance(t *testing.T) {
	var want string
	for _, shards := range shardCounts {
		c := shardConfig()
		c.SMParallel = shards
		c.Faults.Seed = 42
		c.Faults.StuckAtBanks = 1
		c.Faults.TransientPerM = 500
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(shardHammerLaunch(t))
		var got string
		if err != nil {
			got = "error: " + err.Error()
		} else {
			got = string(resultBytes(t, res))
		}
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("SMParallel=%d: faulty run diverged\n got %s\nwant %s", shards, got, want)
		}
	}
}

// shardFaultSrc makes SMs fail at CTA-dependent cycles: each CTA spins
// proportionally to its id, then stores out of bounds. The reported error
// must be the same (lowest cycle, then lowest SM id) at every shard count.
const shardFaultSrc = `
	mov  r2, 0
	shl  r3, %ctaid.x, 3
Lspin:
	add  r2, r2, 1
	setp.lt p0, r2, r3
@p0	bra Lspin
	mov  r4, 1048576
	st.global [r4], r2
	exit
`

// TestShardErrorDeterminism: runtime faults pick one winner — the
// lowest-cycle, lowest-SM error — identically at every shard count.
func TestShardErrorDeterminism(t *testing.T) {
	k, err := asm.Assemble("shard-fault", shardFaultSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	var want string
	for _, shards := range shardCounts {
		c := shardConfig()
		c.SMParallel = shards
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		_, err = g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 30}, Block: isa.Dim3{X: 64}})
		if err == nil {
			t.Fatalf("SMParallel=%d: out-of-bounds store did not fail", shards)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("SMParallel=%d: error %q, want %q", shards, err, want)
		}
	}
	if want == "" {
		t.Fatal("no error observed")
	}
}

// TestShardEpochBound pins the Validate guard that keeps deferred atomics
// sound: an epoch longer than GlobalLatency must be rejected.
func TestShardEpochBound(t *testing.T) {
	c := DefaultConfig()
	c.SMEpoch = c.GlobalLatency + 1
	if _, err := New(c); err == nil {
		t.Fatal("SMEpoch > GlobalLatency accepted")
	}
	c.SMEpoch = c.GlobalLatency
	if _, err := New(c); err != nil {
		t.Fatalf("SMEpoch == GlobalLatency rejected: %v", err)
	}
	c.SMParallel = -1
	if _, err := New(c); err == nil {
		t.Fatal("negative SMParallel accepted")
	}
}

package sim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// TestSchemeShardInvariance extends the epoch-barrier determinism oracle
// across the compression backends: for every registered scheme the atomic
// hammer must produce byte-identical result documents at every SM shard
// count. (Per-scheme replay==execute is covered by TestReplayMatchesExecute
// via replayTestConfigs.)
func TestSchemeShardInvariance(t *testing.T) {
	for _, scheme := range core.Schemes() {
		t.Run(scheme, func(t *testing.T) {
			var want []byte
			for _, shards := range []int{1, 4} {
				c := shardConfig()
				c.Compression = scheme
				c.SMParallel = shards
				g, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				res, err := g.Run(shardHammerLaunch(t))
				if err != nil {
					t.Fatalf("SMParallel=%d: %v", shards, err)
				}
				rb := resultBytes(t, res)
				if want == nil {
					want = rb
					continue
				}
				if !bytes.Equal(rb, want) {
					t.Errorf("scheme %s: SMParallel=%d result diverged from SMParallel=1", scheme, shards)
				}
			}
		})
	}
}

// TestChooseEncMemoSchemeSwap is the cross-scheme memo regression: an
// encoding cached for a warp under one backend must never be served once
// the warp is classified by a different backend (encoding classes mean
// different patterns per scheme), and swapping back must rescan again.
func TestChooseEncMemoSchemeSwap(t *testing.T) {
	bdi, err := core.NewCompressor("bdi")
	if err != nil {
		t.Fatal(err)
	}
	fpc, err := core.NewCompressor("fpc")
	if err != nil {
		t.Fatal(err)
	}
	sBDI := &SM{gpu: &GPU{comp: bdi}}
	sFPC := &SM{gpu: &GPU{comp: fpc}}
	w := newWarp(0, 0, 0, 0, isa.WarpSize, 8, 1)
	const dst = isa.Reg(3)

	var res execResult
	for i := range res.dstVals {
		// Stride 1 from base 100: BDI packs it as a 1-byte-delta class,
		// but lanes 28..31 exceed int8 so FPC's narrow class rejects it —
		// the two schemes must classify this vector differently.
		res.dstVals[i] = uint32(100 + i)
	}
	res.unchanged = true

	wantB := bdi.Choose(int(dst), &res.dstVals, core.ModeWarped)
	wantF := fpc.Choose(int(dst), &res.dstVals, core.ModeWarped)
	if wantB == wantF {
		t.Fatalf("test vector does not distinguish schemes (both %v)", wantB)
	}

	if got := sBDI.chooseEnc(w, dst, &res, core.ModeWarped); got != wantB {
		t.Fatalf("bdi chooseEnc = %v, want %v", got, wantB)
	}
	// Same warp object handed to a different backend: the bdi entry is
	// valid and the value unchanged, but it must NOT be served.
	if got := sFPC.chooseEnc(w, dst, &res, core.ModeWarped); got != wantF {
		t.Fatalf("fpc served stale bdi memo: got %v, want %v", got, wantF)
	}
	// And back again: the fpc entry must not leak into bdi either.
	if got := sBDI.chooseEnc(w, dst, &res, core.ModeWarped); got != wantB {
		t.Fatalf("bdi served stale fpc memo: got %v, want %v", got, wantB)
	}
}

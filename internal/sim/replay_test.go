package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/exectrace"
	"repro/internal/faults"
	"repro/internal/isa"
)

// Divergent kernel exercising shared memory, a barrier, predication and
// reconvergence: each thread publishes its tid to shared memory, then
// reads its parity-neighbor's slot after the barrier.
const replayDivergentSrc = `
.shared 256
	mov  r0, %tid.x
	shl  r1, r0, 2
	st.shared [r1], r0
	bar.sync
	and  r2, r0, 1
	setp.eq p0, r2, 0
@p0	bra Leven
	sub  r3, r0, 1
	bra  Ljoin
Leven:
	add  r3, r0, 1
Ljoin:
	shl  r4, r3, 2
	ld.shared r5, [r4]
	shl  r6, r0, 2
	mad  r7, %ctaid.x, %ntid.x, 0
	shl  r7, r7, 2
	add  r6, r6, r7
	st.global [r6], r5
	exit
`

// Atomic kernel: every thread bumps one of 8 contended bins and stores the
// old value it observed — the schedule-dependent case the shadow-memory
// replay must reproduce exactly.
const replayAtomicSrc = `
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0
	and  r2, r1, 7
	shl  r3, r2, 2
	atom.add r4, [r3], 1
	shl  r5, r1, 2
	add  r5, r5, 64
	st.global [r5], r4
	exit
`

// replayTestConfigs is a small sweep across the timing/compression design
// space: every entry must replay byte-identically from one shared trace.
func replayTestConfigs() []Config {
	warped := testConfig()

	baseline := testConfig()
	baseline.Mode = core.ModeOff
	baseline.PowerGating = false

	recompress := testConfig()
	recompress.DivergencePolicy = "recompress"

	rfc := testConfig()
	rfc.Mode = core.ModeOff
	rfc.PowerGating = false
	rfc.RFCEntries = 6

	noL1 := testConfig()
	noL1.L1SizeKB = 0
	noL1.Scheduler = "lrr"
	noL1.DrowsyAfter = 100
	noL1.CharacterizeWrites = true

	// Every non-default compression backend (schemes/v1) joins the sweep,
	// so each scheme inherits all the trace-mode oracles below.
	cfgs := []Config{warped, baseline, recompress, rfc, noL1}
	for _, scheme := range core.Schemes() {
		if scheme == core.DefaultScheme {
			continue // warped already covers bdi
		}
		c := testConfig()
		c.Compression = scheme
		cfgs = append(cfgs, c)
	}
	return cfgs
}

func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func traceBytes(t *testing.T, lt *exectrace.Launch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := exectrace.Write(&buf, &exectrace.Trace{Launches: []*exectrace.Launch{lt}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayMatchesExecute is the sim-level determinism oracle: for each
// kernel, a trace recorded under one configuration must replay under every
// configuration to the byte-identical Result that execute mode produces.
func TestReplayMatchesExecute(t *testing.T) {
	kernels := []struct {
		name, src   string
		grid, block int
	}{
		{"tid", tidKernelSrc, 4, 64},
		{"divergent-shared", replayDivergentSrc, 3, 64},
		{"atomic-bins", replayAtomicSrc, 2, 64},
	}
	cfgs := replayTestConfigs()

	for _, kn := range kernels {
		t.Run(kn.name, func(t *testing.T) {
			k, err := asm.Assemble(kn.name, kn.src)
			if err != nil {
				t.Fatalf("Assemble: %v", err)
			}
			launch := func() isa.Launch {
				kc := *k // fresh ReconvPC per GPU, as benchmark loaders do
				return isa.Launch{Kernel: &kc, Grid: isa.Dim3{X: kn.grid}, Block: isa.Dim3{X: kn.block}}
			}

			// Record once, under the first configuration.
			gRec, err := New(cfgs[0])
			if err != nil {
				t.Fatal(err)
			}
			recRes, lt, err := gRec.Record(launch())
			if err != nil {
				t.Fatalf("Record: %v", err)
			}

			for ci, c := range cfgs {
				gE, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				resE, err := gE.Run(launch())
				if err != nil {
					t.Fatalf("cfg %d execute: %v", ci, err)
				}
				gR, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				resR, err := gR.Replay(lt)
				if err != nil {
					t.Fatalf("cfg %d replay: %v", ci, err)
				}
				be, br := resultBytes(t, resE), resultBytes(t, resR)
				if !bytes.Equal(be, br) {
					t.Errorf("cfg %d: replay diverged from execute\nexecute: %s\nreplay:  %s", ci, be, br)
				}
				if ci == 0 {
					// Recording must be pure observation.
					if !bytes.Equal(resultBytes(t, recRes), be) {
						t.Errorf("record-mode result differs from execute under the same config")
					}
				}
			}
		})
	}
}

// TestTraceIsRecordConfigIndependent pins the single-flight soundness
// property: the serialized trace bytes do not depend on which configuration
// happened to record first.
func TestTraceIsRecordConfigIndependent(t *testing.T) {
	k, err := asm.Assemble("atomic-bins", replayAtomicSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := replayTestConfigs()
	var first []byte
	for ci, c := range cfgs {
		kc := *k
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		_, lt, err := g.Record(isa.Launch{Kernel: &kc, Grid: isa.Dim3{X: 2}, Block: isa.Dim3{X: 64}})
		if err != nil {
			t.Fatalf("cfg %d record: %v", ci, err)
		}
		b := traceBytes(t, lt)
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("trace recorded under cfg %d differs from cfg 0 (%d vs %d bytes)", ci, len(b), len(first))
		}
	}
}

// TestReplaySurvivesWireRoundTrip replays from a decoded trace (not the
// recorder's in-memory object) to prove the wire format loses nothing the
// back-end consumes.
func TestReplaySurvivesWireRoundTrip(t *testing.T) {
	k, err := asm.Assemble("divergent-shared", replayDivergentSrc)
	if err != nil {
		t.Fatal(err)
	}
	kc := *k
	l := isa.Launch{Kernel: &kc, Grid: isa.Dim3{X: 3}, Block: isa.Dim3{X: 64}}
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	recRes, lt, err := g.Record(l)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exectrace.Write(&buf, &exectrace.Trace{Launches: []*exectrace.Launch{lt}}); err != nil {
		t.Fatal(err)
	}
	decoded, err := exectrace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gR, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	resR, err := gR.Replay(decoded.Launches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, recRes), resultBytes(t, resR)) {
		t.Fatalf("replay from decoded trace differs from record-mode result")
	}
}

// TestConcurrentReplaysShareTrace runs several replays of one trace in
// parallel; `go test -race` turns any mutation of the shared trace (or of
// its kernel) into a failure.
func TestConcurrentReplaysShareTrace(t *testing.T) {
	k, err := asm.Assemble("tid", tidKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	kc := *k
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, lt, err := g.Record(isa.Launch{Kernel: &kc, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := replayTestConfigs()
	errs := make(chan error, len(cfgs))
	for _, c := range cfgs {
		go func(c Config) {
			gR, err := New(c)
			if err == nil {
				_, err = gR.Replay(lt)
			}
			errs <- err
		}(c)
	}
	for range cfgs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceModesRejectFaultConfigs: fault injection mutates functional
// state at commit time, so both record and replay refuse it with a typed
// ConfigError.
func TestTraceModesRejectFaultConfigs(t *testing.T) {
	c := testConfig()
	c.Mode = core.ModeOff
	c.PowerGating = false
	c.Faults = faults.Config{StuckAtBanks: 1, Seed: 7}
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	var ce *ConfigError
	if _, _, err := g.Record(isa.Launch{}); !errors.As(err, &ce) || ce.Field != "Faults" {
		t.Fatalf("Record under faults: got %v, want *ConfigError{Field: Faults}", err)
	}
	if _, err := g.Replay(&exectrace.Launch{}); !errors.As(err, &ce) || ce.Field != "Faults" {
		t.Fatalf("Replay under faults: got %v, want *ConfigError{Field: Faults}", err)
	}
}

// TestRecordRejectsAtomicAliasing: a launch that loads or stores a cell
// that is also touched atomically has a schedule-dependent value stream —
// the replayer's shadow atomic memory cannot see the non-atomic traffic.
// Record must detect the mix and refuse with ErrUntraceable (callers fall
// back to execute mode) rather than capture a trace that replays wrong.
func TestRecordRejectsAtomicAliasing(t *testing.T) {
	const src = `
.kernel alias
	mov r0, %tid.x
	and r1, r0, 7
	shl r1, r1, 2
	atom.add r2, [r1], 1
	ld.global r3, [r1]
	st.global [r1], r3
	exit
`
	k, err := asm.Assemble("alias", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}}
	if _, _, err := g.Record(l); !errors.Is(err, ErrUntraceable) {
		t.Fatalf("Record of atomic/non-atomic aliasing kernel: got %v, want ErrUntraceable", err)
	}
	// The same launch still runs fine in plain execute mode.
	if _, err := g.Run(l); err != nil {
		t.Fatalf("execute mode of the same launch: %v", err)
	}
}

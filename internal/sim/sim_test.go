package sim

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
)

// testConfig shrinks the GPU for fast unit tests. WARPED_TEST_SM_PARALLEL
// overrides the shard count so the whole package can be re-run (notably
// under -race in CI) with the SM loop actually sharded; results must not
// change, which is the point of running it.
func testConfig() Config {
	c := DefaultConfig()
	c.NumSMs = 2
	c.GlobalMemBytes = 1 << 20
	c.MaxCycles = 5_000_000
	if v := os.Getenv("WARPED_TEST_SM_PARALLEL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.SMParallel = n
		}
	}
	return c
}

// runKernel launches src on a fresh GPU and returns the GPU and result.
func runKernel(t *testing.T, c Config, src string, grid, block int, setup func(g *GPU) uint32) (*GPU, *Result, uint32) {
	t.Helper()
	g, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var base uint32
	if setup != nil {
		base = setup(g)
	}
	k, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: grid}, Block: isa.Dim3{X: block}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return g, res, base
}

// The canonical first kernel: out[global_tid] = global_tid.
const tidKernelSrc = `
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mov  r2, %ntid.x
	mad  r3, r1, r2, r0     // global thread id
	shl  r4, r3, 2          // byte offset
	add  r5, r4, r6         // r6 holds the output base address (0 here)
	st.global [r5], r3
	exit
`

func TestTidKernelWritesIdentity(t *testing.T) {
	g, res, _ := runKernel(t, testConfig(), tidKernelSrc, 4, 64, nil)
	got, err := g.Mem().ReadInt32(0, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
	if res.Cycles == 0 || res.Stats.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Stats.DivergentInstrs != 0 {
		t.Fatalf("unexpected divergence: %d", res.Stats.DivergentInstrs)
	}
}

func TestCompressionDoesNotChangeResults(t *testing.T) {
	run := func(mode core.Mode) []int32 {
		c := testConfig()
		c.Mode = mode
		c.PowerGating = mode.Enabled()
		g, _, _ := runKernel(t, c, tidKernelSrc, 4, 64, nil)
		got, err := g.Mem().ReadInt32(0, 4*64)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	on := run(core.ModeWarped)
	off := run(core.ModeOff)
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("out[%d]: compressed %d != baseline %d", i, on[i], off[i])
		}
	}
}

// Divergent kernel: threads below 16 in each warp take a different path.
const divergeKernelSrc = `
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mad  r3, r1, %ntid.x, r0
	and  r2, r0, 31        // lane
	setp.lt p0, r2, 16
@p0	bra Lsmall
	mul  r4, r3, 3
	bra  Ljoin
Lsmall:
	add  r4, r3, 1000
Ljoin:
	shl  r5, r3, 2
	st.global [r5], r4
	exit
`

func TestDivergenceReconverges(t *testing.T) {
	g, res, _ := runKernel(t, testConfig(), divergeKernelSrc, 2, 64, nil)
	got, err := g.Mem().ReadInt32(0, 2*64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(i) * 3
		if i%32 < 16 {
			want = int32(i) + 1000
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if res.Stats.DivergentInstrs == 0 {
		t.Fatal("expected divergent instructions")
	}
	if res.Stats.NonDivergentRatio() >= 1 {
		t.Fatal("non-divergent ratio should drop below 1")
	}
}

// Loop kernel: r4 = sum 0..9 computed in a uniform loop.
const loopKernelSrc = `
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mad  r3, r1, %ntid.x, r0
	mov  r4, 0
	mov  r5, 0
Lloop:
	add  r4, r4, r5
	add  r5, r5, 1
	setp.lt p0, r5, 10
@p0	bra Lloop
	shl  r6, r3, 2
	st.global [r6], r4
	exit
`

func TestUniformLoop(t *testing.T) {
	g, _, _ := runKernel(t, testConfig(), loopKernelSrc, 2, 32, nil)
	got, err := g.Mem().ReadInt32(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 45 {
			t.Fatalf("out[%d] = %d, want 45", i, v)
		}
	}
}

// Divergent loop: each thread iterates (lane%4)+1 times; exercises
// loop-exit divergence and reconvergence via post-dominators.
const divergentLoopSrc = `
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mad  r3, r1, %ntid.x, r0
	and  r2, r0, 3
	add  r2, r2, 1        // trip count 1..4
	mov  r4, 0            // accumulator
	mov  r5, 0            // i
Lloop:
	add  r4, r4, 10
	add  r5, r5, 1
	setp.lt p0, r5, r2
@p0	bra Lloop
	shl  r6, r3, 2
	st.global [r6], r4
	exit
`

func TestDivergentLoop(t *testing.T) {
	g, res, _ := runKernel(t, testConfig(), divergentLoopSrc, 2, 64, nil)
	got, err := g.Mem().ReadInt32(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(i%4+1) * 10
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if res.Stats.DivergentInstrs == 0 {
		t.Fatal("divergent loop should produce divergent instructions")
	}
}

// Shared-memory kernel with a barrier: block-wide reverse through shared.
const sharedKernelSrc = `
.shared 256
	mov  r0, %tid.x
	shl  r1, r0, 2
	st.shared [r1], r0      // shared[tid] = tid
	bar.sync
	mov  r2, 63
	sub  r3, r2, r0         // reversed index
	shl  r4, r3, 2
	ld.shared r5, [r4]      // = 63 - tid
	mov  r6, %ctaid.x
	mad  r7, r6, %ntid.x, r0
	shl  r8, r7, 2
	st.global [r8], r5
	exit
`

func TestSharedMemoryBarrier(t *testing.T) {
	g, _, _ := runKernel(t, testConfig(), sharedKernelSrc, 2, 64, nil)
	got, err := g.Mem().ReadInt32(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(63 - i%64)
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestDummyMovInjection(t *testing.T) {
	// Write a compressible register non-divergently, then update it
	// divergently: the divergent write must trigger a dummy MOV.
	src := `
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mad  r3, r1, %ntid.x, r0
	mov  r4, r3           // r4 compressible (<4,1>: consecutive)
	and  r2, r0, 31
	setp.lt p0, r2, 8
@p0	bra Ldiv
	bra  Ljoin
Ldiv:
	add  r4, r4, 7        // divergent write to compressed r4
Ljoin:
	shl  r5, r3, 2
	st.global [r5], r4
	exit
`
	c := testConfig()
	g, res, _ := runKernel(t, c, src, 2, 64, nil)
	got, err := g.Mem().ReadInt32(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(i)
		if i%32 < 8 {
			want += 7
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if res.Stats.DummyMovs == 0 {
		t.Fatal("expected dummy MOV injection for divergent write to compressed register")
	}

	// Baseline never injects MOVs.
	c2 := BaselineConfig()
	c2.NumSMs = 2
	c2.GlobalMemBytes = 1 << 20
	_, res2, _ := runKernel(t, c2, src, 2, 64, nil)
	if res2.Stats.DummyMovs != 0 {
		t.Fatalf("baseline injected %d dummy MOVs", res2.Stats.DummyMovs)
	}
}

func TestCompressionReducesBankAccesses(t *testing.T) {
	run := func(mode core.Mode) *Result {
		c := testConfig()
		c.Mode = mode
		c.PowerGating = mode.Enabled()
		_, res, _ := runKernel(t, c, tidKernelSrc, 8, 256, nil)
		return res
	}
	on := run(core.ModeWarped)
	off := run(core.ModeOff)
	onAcc := on.Stats.RF.BankReads + on.Stats.RF.BankWrites
	offAcc := off.Stats.RF.BankReads + off.Stats.RF.BankWrites
	if onAcc >= offAcc {
		t.Fatalf("compression should reduce bank accesses: on=%d off=%d", onAcc, offAcc)
	}
	if on.Stats.CompActs == 0 || on.Stats.DecompActs == 0 {
		t.Fatalf("expected compressor/decompressor activity: %d/%d", on.Stats.CompActs, on.Stats.DecompActs)
	}
	if off.Stats.CompActs != 0 || off.Stats.DecompActs != 0 {
		t.Fatal("baseline must not activate compression units")
	}
	// Gating: warped-compression should power-gate some bank cycles.
	maxPowered := uint64(32) * on.Stats.RF.Cycles
	if on.Stats.RF.PoweredBankCycles >= maxPowered {
		t.Fatal("expected some power-gated bank cycles with compression on")
	}
	if off.Stats.RF.PoweredBankCycles != uint64(32)*off.Stats.RF.Cycles {
		t.Fatal("baseline must keep all banks powered")
	}
}

func TestGTOvsLRRSameResults(t *testing.T) {
	run := func(policy string) []int32 {
		c := testConfig()
		c.Scheduler = policy
		g, _, _ := runKernel(t, c, divergeKernelSrc, 2, 64, nil)
		got, err := g.Mem().ReadInt32(0, 128)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run("gto"), run("lrr")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("out[%d]: gto %d != lrr %d", i, a[i], b[i])
		}
	}
}

func TestPartialLastWarp(t *testing.T) {
	// 40 threads = one full warp + one half warp; the partial warp's
	// launch mask must confine execution to live threads.
	g, _, _ := runKernel(t, testConfig(), tidKernelSrc, 1, 40, nil)
	got, err := g.Mem().ReadInt32(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestManyCTAsMoreThanSMs(t *testing.T) {
	g, res, _ := runKernel(t, testConfig(), tidKernelSrc, 37, 64, nil)
	got, err := g.Mem().ReadInt32(0, 37*64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestGuardedExit(t *testing.T) {
	// Half the threads exit early; the rest still write results.
	src := `
	mov  r0, %tid.x
	and  r1, r0, 1
	setp.eq p0, r1, 1
@p0	exit
	shl  r2, r0, 2
	st.global [r2], r0
	exit
`
	g, _, _ := runKernel(t, testConfig(), src, 1, 64, nil)
	got, err := g.Mem().ReadInt32(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(0)
		if i%2 == 0 {
			want = int32(i)
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

// resultFixture returns a Result with every counter populated with a
// distinct value, so a round-trip that drops any field fails loudly.
func resultFixture(t *testing.T) *Result {
	t.Helper()
	g, l := spinLaunch(t, 500)
	res, err := g.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the counters the spin kernel cannot exercise.
	res.Stats.RFCReads = 11
	res.Stats.RFCReadMisses = 12
	res.Stats.RFCWrites = 13
	res.Stats.RFCEvictions = 14
	res.Stats.CensusCompressed[0] = 1.25
	res.Stats.CensusCompressed[1] = 2.5
	res.Energy.RFCAccesses = 15
	res.Energy.RFCKB = 36
	res.Stats.FaultStuckWrites = 16
	res.Stats.FaultCorruptedLanes = 17
	res.Stats.FaultTransientFlips = 18
	res.Stats.RF.RedirectedWrites = 19
	return res
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := resultFixture(t)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != res.Cycles {
		t.Fatalf("cycles %d != %d", back.Cycles, res.Cycles)
	}
	if back.Stats != res.Stats {
		t.Fatalf("stats round-trip mismatch:\n got %+v\nwant %+v", back.Stats, res.Stats)
	}
	if back.Energy != res.Energy {
		t.Fatalf("energy round-trip mismatch:\n got %+v\nwant %+v", back.Energy, res.Energy)
	}
	// Marshaling the round-tripped value must be byte-identical.
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-marshaled document differs")
	}
}

// TestResultJSONStableKeys pins the schema identifier and the top-level and
// headline key names: renaming any of these is a breaking change that
// requires a schema version bump.
func TestResultJSONStableKeys(t *testing.T) {
	data, err := json.Marshal(resultFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != "warped.sim.result/v1" {
		t.Fatalf("schema = %v", doc["schema"])
	}
	for _, key := range []string{"schema", "cycles", "stats", "energy_events"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("missing top-level key %q", key)
		}
	}
	stats, ok := doc["stats"].(map[string]any)
	if !ok {
		t.Fatal("stats is not an object")
	}
	for _, key := range []string{
		"instructions", "divergent_instructions", "dummy_movs",
		"write_bins", "bdi_choices", "reg_writes", "write_orig_banks",
		"write_comp_banks", "writes_by_encoding", "census_samples",
		"census_compressed", "register_file", "compressor_activations",
		"decompressor_activations", "rfc_reads", "rfc_read_misses",
		"rfc_writes", "rfc_evictions", "global_transactions",
		"shared_accesses", "l1_hits", "l1_misses", "stall_scoreboard",
		"stall_collector", "stall_compressor", "stall_wakeup",
	} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("missing stats key %q", key)
		}
	}
	ev, ok := doc["energy_events"].(map[string]any)
	if !ok {
		t.Fatal("energy_events is not an object")
	}
	for _, key := range []string{
		"bank_accesses", "wire_beats", "compressor_activations",
		"decompressor_activations", "rfc_accesses", "rfc_kb",
		"powered_bank_cycles", "drowsy_bank_cycles", "cycles",
		"compressor_units", "decompressor_units",
	} {
		if _, ok := ev[key]; !ok {
			t.Fatalf("missing energy_events key %q", key)
		}
	}
}

func TestResultJSONRejectsUnknownSchema(t *testing.T) {
	var r Result
	err := json.Unmarshal([]byte(`{"schema":"warped.sim.result/v0","cycles":1}`), &r)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("v0 schema accepted: %v", err)
	}
	if err := json.Unmarshal([]byte(`{"cycles":1}`), &r); err == nil {
		t.Fatal("schema-less document accepted")
	}
}

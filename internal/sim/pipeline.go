package sim

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/stats"
	"repro/internal/valueprof"
)

// pipeStage enumerates the timing states of an in-flight instruction.
// Stages only move forward; zero-time transitions happen within one cycle,
// waits span cycles.
type pipeStage uint8

const (
	stCollect      pipeStage = iota // gathering source operand bank reads
	stDecomp                        // waiting for decompressor unit grants
	stDecompWait                    // decompression in progress
	stExecStart                     // entering a functional unit / memory pipe
	stExecWait                      // FU or memory latency
	stCompress                      // waiting for a compressor unit
	stCompressWait                  // compression in progress
	stWrite                         // waiting for bank wakeup + write ports
)

// inflight is one issued instruction traversing the timing pipeline. The
// architectural work already happened at issue; this struct only tracks when
// hardware resources are occupied. Records are recycled through the SM's
// inflightPool, and all bank lists live in fixed-size inline arrays (at most
// 3 distinct sources plus a merged-destination read, 8 banks each), so the
// steady-state pipeline allocates nothing.
type inflight struct {
	w       *Warp
	in      *isa.Instr // nil for injected dummy MOVs
	eff     uint32     // execution mask
	partial bool       // register write covers a subset of live lanes
	dummy   bool       // injected decompress-MOV (paper §5.2)
	res     execResult

	stage        pipeStage
	pendingBanks [4 * regfile.BanksPerCluster]uint8 // operand bank reads not yet granted
	nPending     int
	compSrcs     int    // compressed sources awaiting a decompressor
	unitReady    uint64 // latest decompressor completion granted so far
	readyAt      uint64 // current stage's completion cycle

	// Deferred-atomic state (shard.go): addends captured at issue for the
	// epoch barrier to apply, and — in replay mode — the first trace AtomOp
	// index of this instruction.
	atomAdds [isa.WarpSize]uint32
	atomIdx  int

	dstID    int
	dummyDst isa.Reg
	enc      core.Encoding
	wbBanks  [regfile.BanksPerCluster]uint8 // writeback bank list (valid when wbReady)
	nWB      int
	wbReady  bool

	mergedStore bool // recompress-policy partial write: stored full-width

	l1Checked bool   // L1 lookup done (so retries don't re-access)
	missTxns  int    // segments that missed and need DRAM transactions
	hitReady  uint64 // completion cycle of the L1-hit portion
}

// advancePipeline moves every in-flight instruction forward one cycle, in
// issue order (which makes oldest-first bank arbitration implicit), and
// retires completed ones.
func (s *SM) advancePipeline() {
	out := s.inflight[:0]
	for _, f := range s.inflight {
		if s.advance(f) {
			s.retire(f)
			s.freeInflight(f)
		} else {
			out = append(out, f)
		}
	}
	s.inflight = out
}

// advance runs one cycle of an instruction's state machine; returns true
// when the instruction has fully retired. `continue` transitions consume no
// time; `return false` waits for the next cycle.
func (s *SM) advance(f *inflight) bool {
	for {
		switch f.stage {
		case stCollect:
			// Compact the still-blocked banks in place.
			rem := 0
			for i := 0; i < f.nPending; i++ {
				b := int(f.pendingBanks[i])
				if s.readPort[b] != s.cycle {
					s.readPort[b] = s.cycle
					s.rfFile.CountRead(b, s.cycle)
				} else {
					f.pendingBanks[rem] = f.pendingBanks[i]
					rem++
				}
			}
			f.nPending = rem
			if rem > 0 {
				return false
			}
			s.collectorsInUse--
			if f.compSrcs > 0 {
				f.stage = stDecomp
			} else {
				f.stage = stExecStart
			}
			return false // operand data arrives next cycle

		case stDecomp:
			for f.compSrcs > 0 {
				ready, ok := s.decomp.TryStart(s.cycle)
				if !ok {
					return false
				}
				if ready > f.unitReady {
					f.unitReady = ready
				}
				f.compSrcs--
			}
			f.readyAt = f.unitReady
			f.stage = stDecompWait
			continue

		case stDecompWait:
			if s.cycle < f.readyAt {
				return false
			}
			f.stage = stExecStart
			continue

		case stExecStart:
			if !s.startExec(f) {
				return false
			}
			f.stage = stExecWait
			continue

		case stExecWait:
			if s.cycle < f.readyAt {
				return false
			}
			// Release predicate results at execute completion.
			if f.in != nil && f.in.Op == isa.OpSetP {
				f.w.predBusy &^= 1 << f.in.PDst
			}
			if !f.res.writes {
				return true
			}
			if s.cfg.RFCEntries > 0 && !f.dummy {
				s.rfcCommit(f)
				return true
			}
			if s.needCompressor(f) {
				f.stage = stCompress
			} else {
				// Bypassing the compressor always stores uncompressed
				// (divergent writes, dummy MOVs, compression off).
				f.enc = core.EncUncompressed
				f.stage = stWrite
			}
			continue

		case stCompress:
			ready, ok := s.comp.TryStart(s.cycle)
			if !ok {
				s.st.StallCompressor++
				return false
			}
			f.readyAt = ready
			f.enc = s.chooseEnc(f.w, f.in.Dst, &f.res, s.cfg.Mode)
			f.stage = stCompressWait
			continue

		case stCompressWait:
			if s.cycle < f.readyAt {
				return false
			}
			f.stage = stWrite
			continue

		case stWrite:
			if !f.wbReady {
				var buf [regfile.BanksPerCluster]int
				full := !f.partial || f.mergedStore
				banks := s.rfFile.WriteBanks(f.dstID, f.enc, f.eff, full, buf[:0])
				for i, b := range banks {
					f.wbBanks[i] = uint8(b)
				}
				f.nWB = len(banks)
				f.wbReady = true
			}
			// Wake any gated banks; wait until every target bank is on.
			maxReady := s.cycle
			for _, b := range f.wbBanks[:f.nWB] {
				if r := s.rfFile.BankReady(int(b), s.cycle); r > maxReady {
					maxReady = r
				}
			}
			if maxReady > s.cycle {
				s.st.StallWakeup++
				return false
			}
			// All-or-nothing write port acquisition keeps the
			// multi-bank write atomic.
			for _, b := range f.wbBanks[:f.nWB] {
				if s.writePort[b] == s.cycle {
					return false
				}
			}
			for _, b := range f.wbBanks[:f.nWB] {
				s.writePort[b] = s.cycle
				s.rfFile.CountWrite(int(b), s.cycle)
			}
			s.commitWrite(f)
			return true
		}
	}
}

// startExec dispatches to the right functional unit / memory path; returns
// false when a structural hazard (memory pipe full) forces a retry.
func (s *SM) startExec(f *inflight) bool {
	if f.dummy {
		// The dummy MOV just passes data through the ALU path.
		f.readyAt = s.cycle + uint64(s.cfg.ALULatency)
		return true
	}
	switch f.in.Op.Class() {
	case isa.ClassMem:
		if f.eff == 0 {
			f.readyAt = s.cycle
			return true
		}
		if f.in.Op == isa.OpLdG || f.in.Op == isa.OpStG || f.in.Op == isa.OpAtomAdd {
			return s.startGlobal(f)
		}
		s.st.SharedAccess++
		s.st.SharedBankAccesses += uint64(f.res.sharedWds)
		s.st.SharedBroadcastHits += uint64(f.res.sharedBc)
		if f.res.sharedDeg > 1 {
			s.st.SharedConflicts++
			s.st.SharedSerializationCycles += uint64(f.res.sharedDeg - 1)
		}
		f.readyAt = s.cycle + uint64(s.cfg.SharedLatency+f.res.sharedDeg-1)
		return true
	case isa.ClassSFU:
		f.readyAt = s.cycle + uint64(s.cfg.SFULatency)
		return true
	default:
		f.readyAt = s.cycle + uint64(s.cfg.ALULatency)
		return true
	}
}

// startGlobal issues a coalesced global access: loads probe the L1 (stores
// are write-through, no-allocate), misses go to the DRAM pipe. Returns false
// while the pipe has no room for the miss transactions.
func (s *SM) startGlobal(f *inflight) bool {
	if !f.l1Checked {
		f.l1Checked = true
		f.hitReady = s.cycle
		if s.l1 != nil && f.in.Op == isa.OpLdG {
			for _, seg := range f.res.segs() {
				if s.l1.Access(seg) {
					f.hitReady = s.cycle + uint64(s.cfg.L1HitLatency)
				} else {
					f.missTxns++
				}
			}
		} else {
			// Stores are write-through no-allocate; atomics resolve on
			// the memory side, bypassing the L1.
			f.missTxns = f.res.nsegs
		}
	}
	f.readyAt = f.hitReady
	if f.missTxns > 0 {
		ready, ok := s.memPipe.TryIssue(s.cycle, f.missTxns)
		if !ok {
			return false
		}
		if ready > f.readyAt {
			f.readyAt = ready
		}
	}
	// Same-address atomic lanes serialize at the memory controller.
	if f.res.atomDeg > 1 {
		f.readyAt += uint64(f.res.atomDeg - 1)
	}
	return true
}

// needCompressor reports whether the write passes through a compressor unit:
// only full-warp writes under an enabled compression mode are compressed;
// divergent/partial writes and dummy MOVs store uncompressed directly
// (paper §5.2).
func (s *SM) needCompressor(f *inflight) bool {
	if !s.cfg.Mode.Enabled() || f.dummy {
		return false
	}
	return !f.partial || f.mergedStore
}

// commitWrite finishes a register write: register file metadata, fault
// corruption, scoreboard release and statistics.
func (s *SM) commitWrite(f *inflight) {
	full := !f.partial || f.mergedStore
	s.rfFile.CommitWrite(f.dstID, f.enc, full, s.cycle)

	var dst isa.Reg
	if f.dummy {
		dst = f.dummyDst
	} else {
		dst = f.in.Dst
	}
	// Classify the achievable compressed size (Fig 8/15 measure the written
	// data's compressibility independent of the divergence storage policy)
	// before fault corruption invalidates the memo. When the write went
	// through the compressor the same mode already classified this exact
	// vector, so its encoding is reused directly.
	var statsEnc core.Encoding
	if !f.dummy {
		if s.needCompressor(f) {
			statsEnc = f.enc
		} else {
			mode := s.cfg.Mode
			if !mode.Enabled() {
				mode = core.ModeWarped
			}
			statsEnc = s.chooseEnc(f.w, dst, &f.res, mode)
		}
	}
	// Corrupt before clearing the scoreboard bit: dependent readers cannot
	// have issued yet, so the corrupted value is exactly what they see.
	s.applyFaults(f, dst, full)
	f.w.regBusy &^= 1 << dst

	if f.dummy {
		return // mechanism artifact: excluded from write statistics
	}

	phase := stats.NonDivergent
	if f.partial {
		phase = stats.Divergent
	}
	s.st.RegWrites[phase]++
	s.st.WriteOrigBanks[phase] += core.WarpBanks
	s.st.WritesByEnc[phase][f.enc]++
	s.st.WriteCompBanks[phase] += uint64(s.gpu.comp.Banks(statsEnc))

	// Fig 12 census sample.
	written, compressed, _ := s.rfFile.Occupancy()
	if written > 0 {
		s.st.CensusSamples[phase]++
		s.st.CensusCompressed[phase] += float64(compressed) / float64(written)
	}

	if s.cfg.CharacterizeWrites {
		s.st.WriteBins[phase][valueprof.BinOf(&f.res.dstVals)]++
		s.st.BDIChoices[valueprof.ExplorerChoice(&f.res.dstVals)]++
	}
}

// applyFaults models register-file corruption on the write that just
// committed, mutating the warp's functional register state (scoreboarding
// guarantees no dependent instruction has read it yet).
//
// Stuck-at: every write whose data passed through a stuck bank reads back
// XORed with the bank's pattern. For an uncompressed write the bank holds 4
// specific lanes; a compressed slice fans out through the decompressor, so
// a stuck bank there corrupts every lane. Transient: at most one single-bit
// upset per register write, drawn from the injector's seeded stream.
func (s *SM) applyFaults(f *inflight, dst isa.Reg, full bool) {
	inj := s.inj
	if inj == nil {
		return
	}
	regs := &f.w.regs[dst]
	stuck := false
	for _, bb := range f.wbBanks[:f.nWB] {
		b := int(bb)
		if !inj.BankFaulty(b) {
			continue
		}
		stuck = true
		pat := inj.StuckPattern(b)
		if f.enc.IsCompressed() {
			for l := range regs {
				regs[l] ^= pat
			}
			s.st.FaultCorruptedLanes += uint64(len(regs))
		} else {
			base := (b % regfile.BanksPerCluster) * 4
			for l := base; l < base+4; l++ {
				if full || f.eff&(1<<l) != 0 {
					regs[l] ^= pat
					s.st.FaultCorruptedLanes++
				}
			}
		}
	}
	if stuck {
		s.st.FaultStuckWrites++
	}
	flipped := false
	if lane, bit, ok := inj.TransientFlip(); ok {
		regs[lane] ^= 1 << bit
		s.st.FaultTransientFlips++
		flipped = true
	}
	// Corruption desynchronizes the register value from its memoized
	// encoding classification; drop the memo entry.
	if stuck || flipped {
		f.w.encValid &^= 1 << dst
	}
}

// rfcCommit finishes a register write through the register file cache
// comparator: the result lands in the per-warp RFC (no bank access); a dirty
// LRU eviction writes the victim back to the main banks. Partial writes to
// registers absent from the RFC first fetch the register from the banks
// (write-allocate needs the untouched lanes).
func (s *SM) rfcCommit(f *inflight) {
	w := f.w
	s.st.RFCWrites++

	if f.partial && !w.rfcLookup(f.in.Dst) && s.rfFile.Written(f.dstID) {
		var buf [regfile.BanksPerCluster]int
		for _, b := range s.rfFile.ReadBanks(f.dstID, w.launchMask, buf[:0]) {
			s.rfFile.CountRead(b, s.cycle)
		}
	}
	if evicted, dirty, ok := w.rfcInsert(f.in.Dst, s.cfg.RFCEntries); ok && dirty {
		s.st.RFCEvictions++
		s.rfcWriteback(w, evicted)
	}
	w.regBusy &^= 1 << f.in.Dst

	phase := stats.NonDivergent
	if f.partial {
		phase = stats.Divergent
	}
	s.st.RegWrites[phase]++
	s.st.WriteOrigBanks[phase] += core.WarpBanks
	s.st.WriteCompBanks[phase] += core.WarpBanks // the RFC stores full width
	s.st.WritesByEnc[phase][core.EncUncompressed]++
}

// rfcWriteback spills one dirty RFC register to the main banks (uncompressed
// full-width write; the comparator has no compression hardware).
func (s *SM) rfcWriteback(w *Warp, reg isa.Reg) {
	id := regfile.RegID(w.slot, int(reg), s.kernel.NumRegs)
	var buf [regfile.BanksPerCluster]int
	for _, b := range s.rfFile.WriteBanks(id, core.EncUncompressed, w.launchMask, true, buf[:0]) {
		s.rfFile.CountWrite(b, s.cycle)
	}
	s.rfFile.CommitWrite(id, core.EncUncompressed, true, s.cycle)
}

// retire releases the instruction's warp bookkeeping.
func (s *SM) retire(f *inflight) {
	f.w.inFlight--
	if f.w.state == warpFinished && f.w.inFlight == 0 {
		s.finalizeWarp(f.w)
	}
}

package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestResultJSONGolden pins the exact bytes of a warped.sim.result/v1
// document. The fixture simulation is deterministic, so any diff against
// the checked-in golden file is a real wire-format change: either a bug or
// a deliberate schema evolution, which requires a version bump and
// `go test ./internal/sim -run Golden -update`.
func TestResultJSONGolden(t *testing.T) {
	res := resultFixture(t)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "result_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("result JSON drifted from %s (run with -update if intended)\n got: %s\nwant: %s",
			golden, data, want)
	}

	// The golden document must also survive a full unmarshal → marshal
	// round trip byte-identically: no field may be dropped or reordered by
	// a decode/encode cycle.
	var back Result
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	again = append(again, '\n')
	if !bytes.Equal(again, want) {
		t.Fatalf("golden document is not round-trip stable:\n got: %s\nwant: %s", again, want)
	}
}

package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// Deterministic intra-simulation parallelism (DESIGN.md §17).
//
// SMs interact only through global memory, so the per-cycle SM loop shards
// across a persistent worker pool: each worker owns a contiguous slice of
// SMs and steps them for an epoch (SMEpoch cycles, default 1). During the
// parallel phase global memory is read-only — stores and atomics buffer in
// per-SM commit logs, and each SM's own loads see its own buffered stores
// through an overlay map. At the epoch barrier the coordinator applies the
// logs serially in SM-id order, which is exactly the order the sequential
// engine interleaved them, so results are byte-identical at every shard
// count. Atomics are fully deferred: addresses and addends are captured at
// issue, and the barrier performs the read-modify-writes and fills the
// old-value vectors before the timing pipeline consumes them (guaranteed by
// Validate's SMEpoch <= GlobalLatency bound — an atomic's destination stays
// scoreboarded until its write commits, at least GlobalLatency cycles after
// issue).

// memOp is one entry of an SM's per-epoch commit log, in issue order. A
// plain global store carries (addr, val); a deferred atomic carries the
// inflight record whose lanes the barrier resolves against real memory.
type memOp struct {
	atom *inflight // non-nil marks a deferred atom.add; addr/val unused
	addr uint32
	val  uint32
}

// spinBudget is how many times a barrier spin-loop polls before yielding
// the processor. Epochs are microseconds long, so a short spin usually
// wins; Gosched keeps single-core machines (and oversubscribed runs) live.
const spinBudget = 64

// shard is one worker's contiguous slice of SMs plus its barrier state.
type shard struct {
	sms    []*SM
	issued uint64 // instructions issued by this shard's SMs (heartbeat sum)

	// Epoch parameters, written by the coordinator before each release.
	c0 uint64 // first cycle of the epoch
	n  uint64 // cycles in the epoch

	done     atomic.Uint64 // barrier generation the worker last completed
	panicked any           // recovered worker panic, re-raised by the coordinator
}

// runEpoch steps every SM of the shard through cycles [c0, c0+n). An SM
// that raised an error stops stepping; the cycle it failed at is kept for
// the coordinator's deterministic first-error selection.
func (sh *shard) runEpoch() {
	end := sh.c0 + sh.n
	for c := sh.c0; c < end; c++ {
		for _, sm := range sh.sms {
			if sm.err != nil {
				continue
			}
			sm.step(c)
			if sm.err != nil {
				sm.errCycle = c
			}
		}
	}
}

// shardPool is the persistent worker pool of one simulation run: shard 0
// runs inline on the coordinator goroutine, shards 1..P-1 each get a worker
// goroutine. Epochs are released and joined through a generation-counted
// spin barrier (atomic loads/stores establish the happens-before edges that
// make each worker the sole owner of its SMs during the parallel phase and
// hand the commit logs to the coordinator at the barrier).
type shardPool struct {
	shards []*shard
	phase  atomic.Uint64 // generation workers wait on; bumped to release an epoch
	quit   bool          // written before the final phase bump; workers exit on it
}

// newShardPool partitions the GPU's SMs into nshards contiguous shards and
// spawns the worker goroutines. Each worker is labeled sm-shard=N so CPU
// profiles attribute time per shard.
func newShardPool(g *GPU, nshards int) *shardPool {
	p := &shardPool{}
	numSMs := len(g.sms)
	base, rem := numSMs/nshards, numSMs%nshards
	lo := 0
	for i := 0; i < nshards; i++ {
		n := base
		if i < rem {
			n++
		}
		sh := &shard{sms: g.sms[lo : lo+n]}
		lo += n
		for _, sm := range sh.sms {
			sm.issuedCtr = &sh.issued
		}
		p.shards = append(p.shards, sh)
	}
	for i, sh := range p.shards[1:] {
		go func(label string, sh *shard) {
			pprof.Do(context.Background(), pprof.Labels("sm-shard", label), func(context.Context) {
				p.worker(sh)
			})
		}(strconv.Itoa(i+1), sh)
	}
	return p
}

// worker is the loop of one non-coordinator shard: wait for a release, run
// the epoch, report done. A panic is captured for the coordinator to
// re-raise on the job goroutine (where the engine's panic isolation lives);
// the worker still reaches the barrier so nothing deadlocks.
func (p *shardPool) worker(sh *shard) {
	gen := uint64(0)
	for {
		for spins := 0; p.phase.Load() == gen; spins++ {
			if spins >= spinBudget {
				runtime.Gosched()
			}
		}
		gen++
		if p.quit {
			sh.done.Store(gen)
			return
		}
		func() {
			defer func() {
				if v := recover(); v != nil {
					sh.panicked = v
				}
			}()
			sh.runEpoch()
		}()
		sh.done.Store(gen)
	}
}

// runEpoch releases every shard for cycles [c0, c0+n), runs shard 0 on the
// calling goroutine, and blocks until all shards reach the barrier. Worker
// panics are re-raised here, lowest shard first.
func (p *shardPool) runEpoch(c0, n uint64) {
	sh0 := p.shards[0]
	sh0.c0, sh0.n = c0, n
	if len(p.shards) == 1 {
		sh0.runEpoch()
		return
	}
	for _, sh := range p.shards[1:] {
		sh.c0, sh.n = c0, n
	}
	gen := p.phase.Load() + 1
	p.phase.Store(gen)
	sh0.runEpoch()
	p.waitDone(gen)
	for _, sh := range p.shards[1:] {
		if v := sh.panicked; v != nil {
			sh.panicked = nil
			panic(v)
		}
	}
}

// waitDone blocks until every worker shard has completed generation gen.
func (p *shardPool) waitDone(gen uint64) {
	for _, sh := range p.shards[1:] {
		for spins := 0; sh.done.Load() != gen; spins++ {
			if spins >= spinBudget {
				runtime.Gosched()
			}
		}
	}
}

// stop retires the worker goroutines. Safe to call while an epoch is in
// flight (e.g. unwinding past a shard-0 panic): it joins the open epoch
// first, then releases the workers one final time with quit set.
func (p *shardPool) stop() {
	if len(p.shards) == 1 {
		return
	}
	gen := p.phase.Load()
	p.waitDone(gen)
	p.quit = true
	gen++
	p.phase.Store(gen)
	p.waitDone(gen)
}

// issuedTotal sums the per-shard instruction counters — the O(shards)
// heartbeat the stall watchdog reads, replacing the former O(SMs) scan.
func (p *shardPool) issuedTotal() uint64 {
	var t uint64
	for _, sh := range p.shards {
		t += sh.issued
	}
	return t
}

// shardCount resolves the effective shard count of a run: an explicit
// SMParallel, or GOMAXPROCS when 0, clamped to the SM count.
func (g *GPU) shardCount() int {
	p := g.cfg.SMParallel
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(g.sms) {
		p = len(g.sms)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// epochErr selects the deterministic first error of an epoch: the lowest
// (cycle, SM id) failure — exactly the error the sequential engine would
// have returned, at every shard count.
func (g *GPU) epochErr() error {
	var bad *SM
	for _, sm := range g.sms {
		if sm.err == nil {
			continue
		}
		if bad == nil || sm.errCycle < bad.errCycle {
			bad = sm
		}
	}
	if bad == nil {
		return nil
	}
	return fmt.Errorf("sim: SM %d, cycle %d: %w", bad.id, bad.errCycle, bad.err)
}

// commitEpoch applies every SM's buffered global-memory effects in SM-id
// order — the serial phase that makes sharded results byte-identical to the
// sequential engine's.
func (g *GPU) commitEpoch() {
	for _, sm := range g.sms {
		sm.commitMemLog()
	}
}

// commitMemLog drains this SM's commit log in issue order: plain stores
// write through, deferred atomics resolve their read-modify-writes. Runs
// only on the coordinator goroutine, between epochs.
func (s *SM) commitMemLog() {
	if len(s.memLog) > 0 {
		gmem := s.gpu.mem
		for i := range s.memLog {
			op := &s.memLog[i]
			if op.atom == nil {
				// Checked at issue; a checked store cannot fail.
				_ = gmem.Store32(op.addr, op.val)
				continue
			}
			if s.gpu.rp != nil {
				s.resolveReplayAtom(op.atom)
			} else {
				s.resolveAtom(op.atom)
			}
		}
		s.memLog = s.memLog[:0]
	}
	if len(s.memOverlay) > 0 {
		clear(s.memOverlay)
	}
}

// resolveAtom performs a deferred atom.add against real global memory.
// Lanes apply in lane order; colliding addresses serialize, so each lane
// reads the running value (CUDA atomicAdd semantics for any one
// serialization order; SM-id x issue x lane order keeps it deterministic).
// The old-value vector and the unchanged bit land in the inflight's result
// before the pipeline consumes them (its destination register is still
// scoreboarded — nothing has read it since issue).
func (s *SM) resolveAtom(f *inflight) {
	gmem := s.gpu.mem
	rec := s.gpu.rec
	changed := false
	for lane := 0; lane < len(f.res.addrs); lane++ {
		if f.eff&(1<<lane) == 0 {
			continue
		}
		addr := f.res.addrs[lane]
		v, _ := gmem.Load32(addr) // checked at issue
		_ = gmem.Store32(addr, v+f.atomAdds[lane])
		if rec != nil {
			// First atomic touch observes the cell's launch-time value
			// (atomics are its only writers during a traceable launch).
			if _, ok := rec.atomSeen[addr]; !ok {
				rec.atomSeen[addr] = v
			}
		}
		if v != f.res.dstVals[lane] {
			f.res.dstVals[lane] = v
			changed = true
		}
	}
	f.res.unchanged = !changed
	f.w.regs[f.in.Dst] = f.res.dstVals
}

// resolveReplayAtom is resolveAtom for replay mode: the recorded per-lane
// addends apply to the shadow cells in the same global order execute mode
// commits in, so the old-value vectors — and everything downstream of them
// — match byte-for-byte.
func (s *SM) resolveReplayAtom(f *inflight) {
	rp := s.gpu.rp
	st := f.w.rpStream
	idx := f.atomIdx
	changed := false
	for lane := 0; lane < len(f.res.addrs); lane++ {
		if f.eff&(1<<lane) == 0 {
			continue
		}
		op := st.Atoms[idx]
		idx++
		v := rp.atoms[op.Addr]
		rp.atoms[op.Addr] = v + op.Add
		if v != f.res.dstVals[lane] {
			f.res.dstVals[lane] = v
			changed = true
		}
	}
	f.res.unchanged = !changed
	f.w.regs[f.in.Dst] = f.res.dstVals
}

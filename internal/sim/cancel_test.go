package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
)

// spinLaunch builds a counted-loop kernel (iters iterations per thread) so a
// launch takes a controllable number of cycles — long runs guarantee the
// cycle loop crosses many cancellation checkpoints.
func spinLaunch(t *testing.T, iters int) (*GPU, isa.Launch) {
	t.Helper()
	c := testConfig()
	c.MaxCycles = 2_000_000_000
	g, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := fmt.Sprintf(`
	mov  r0, 0
Lloop:
	add  r0, r0, 1
	setp.lt p0, r0, %d
@p0	bra Lloop
	exit
`, iters)
	k, err := asm.Assemble("spin", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return g, isa.Launch{Kernel: k, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}}
}

func TestRunContextPreCanceled(t *testing.T) {
	g, l := spinLaunch(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.RunContext(ctx, l); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RunContext err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	g, l := spinLaunch(t, 2_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := g.RunContext(ctx, l)
		done <- err
	}()
	// Let the simulation get going, then pull the plug.
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			// The kernel finished before the cancel landed; that is a
			// legitimate race on a fast machine, but the spin kernel is
			// sized to make it effectively impossible.
			t.Fatal("launch completed despite cancellation")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("cancellation not honored within 10s (started %v ago)", time.Since(start))
	}
}

func TestRunContextDeadline(t *testing.T) {
	g, l := spinLaunch(t, 2_000_000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := g.RunContext(ctx, l); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestRunContextBackgroundMatchesRun checks the cancellation plumbing does
// not perturb simulation results.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	g1, l1 := spinLaunch(t, 2000)
	r1, err := g1.Run(l1)
	if err != nil {
		t.Fatal(err)
	}
	g2, l2 := spinLaunch(t, 2000)
	r2, err := g2.RunContext(context.Background(), l2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("Run=%d cycles, RunContext=%d cycles", r1.Cycles, r2.Cycles)
	}
}

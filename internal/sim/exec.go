package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// execResult carries the functional outcome of an issued instruction into
// the timing pipeline. It lives inside an inflight record (never copied once
// issued) and owns fixed-size buffers for the coalesced segment list, so the
// per-instruction path performs no heap allocation.
type execResult struct {
	dstVals   core.WarpReg // merged destination vector (valid when writes)
	writes    bool         // instruction produces a register write
	unchanged bool         // dstVals equals the register's previous committed value
	addrs     [isa.WarpSize]uint32
	segBuf    [isa.WarpSize]uint32 // backing for the coalesced segment list
	nsegs     int                  // coalesced 128-byte segments (global memory ops)
	sharedDeg int                  // shared-memory conflict phases (shared ops)
	sharedWds int                  // distinct shared words fetched — bank row activations
	sharedBc  int                  // shared lane requests served by another lane's fetch
	atomDeg   int                  // same-address serialization phases (atomics)
}

// segs returns the coalesced segment list of a global memory access.
func (r *execResult) segs() []uint32 { return r.segBuf[:r.nsegs] }

// special evaluates a hardware special register for one lane of a warp.
func (s *SM) special(w *Warp, sp isa.Special, lane int) uint32 {
	bx := s.launch.Block.X
	if bx <= 0 {
		bx = 1
	}
	gx := s.launch.Grid.X
	if gx <= 0 {
		gx = 1
	}
	t := w.warpInCTA*isa.WarpSize + lane
	switch sp {
	case isa.SpecTidX:
		return uint32(t % bx)
	case isa.SpecTidY:
		return uint32(t / bx)
	case isa.SpecCtaIDX:
		return uint32(w.ctaID % gx)
	case isa.SpecCtaIDY:
		return uint32(w.ctaID / gx)
	case isa.SpecNTidX:
		return uint32(bx)
	case isa.SpecNTidY:
		y := s.launch.Block.Y
		if y <= 0 {
			y = 1
		}
		return uint32(y)
	case isa.SpecNCtaX:
		return uint32(gx)
	case isa.SpecNCtaY:
		y := s.launch.Grid.Y
		if y <= 0 {
			y = 1
		}
		return uint32(y)
	case isa.SpecLaneID:
		return uint32(lane)
	case isa.SpecWarpID:
		return uint32(w.warpInCTA)
	}
	if p, ok := sp.IsParam(); ok {
		return s.launch.Params[p]
	}
	return 0
}

// operand fetches one source operand value for a lane.
func (s *SM) operand(w *Warp, o isa.Operand, lane int) uint32 {
	switch o.Kind {
	case isa.OperandReg:
		return w.regs[o.Reg][lane]
	case isa.OperandImm:
		return uint32(o.Imm)
	case isa.OperandSpecial:
		return s.special(w, o.Spec, lane)
	}
	return 0
}

// execute performs the architectural effect of instruction `in` at `pc` for
// warp w: register/predicate/memory updates and SIMT control flow. `active`
// is the stack active mask, `eff` the guard-filtered execution mask. The
// outcome is written into f.res (caller-owned, pre-zeroed); no allocation
// happens on the steady-state success path.
//
// Control flow (PC advance, divergence, exit, barrier) is fully resolved
// here; res feeds the timing pipeline only. For register-writing ops,
// res.unchanged reports that every executed lane produced the value the
// register already held — the encoding memo key (see SM.chooseEnc).
//
// Global-memory effects are epoch-buffered (shard.go): loads read the
// epoch-start memory image overlaid with this SM's own buffered stores,
// stores append to the commit log, and atomics capture their addresses and
// addends for the barrier to resolve serially in SM-id order.
func (s *SM) execute(w *Warp, in *isa.Instr, pc int32, active, eff uint32, f *inflight) error {
	res := &f.res
	t := w.tos()
	changed := false

	switch in.Op {
	case isa.OpNop:
		t.pc++

	case isa.OpBar:
		t.pc++
		s.arriveBarrier(w)

	case isa.OpExit:
		dying := active
		if in.Pred != isa.PredNone {
			dying = eff
			t.pc++
		}
		if w.retireThreads(dying) {
			s.warpExited(w)
		}
		return nil

	case isa.OpBra:
		rpc := s.kernel.ReconvPC[pc]
		if in.Pred == isa.PredNone {
			t.pc = in.Target
		} else {
			w.diverge(eff, in.Target, pc+1, rpc)
		}

	case isa.OpSetP:
		var setMask uint32
		for lane := 0; lane < isa.WarpSize; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			a := s.operand(w, in.Srcs[0], lane)
			b := s.operand(w, in.Srcs[1], lane)
			if isa.EvalCmp(in.Cmp, a, b) {
				setMask |= 1 << lane
			}
		}
		w.preds[in.PDst] = (w.preds[in.PDst] &^ eff) | setMask
		t.pc++

	case isa.OpSelP:
		res.dstVals = w.regs[in.Dst]
		psel := w.preds[in.PSrc]
		for lane := 0; lane < isa.WarpSize; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			var v uint32
			if psel&(1<<lane) != 0 {
				v = s.operand(w, in.Srcs[0], lane)
			} else {
				v = s.operand(w, in.Srcs[1], lane)
			}
			if v != res.dstVals[lane] {
				res.dstVals[lane] = v
				changed = true
			}
		}
		w.regs[in.Dst] = res.dstVals
		res.writes = eff != 0
		res.unchanged = !changed
		t.pc++

	case isa.OpLdG, isa.OpLdS:
		res.dstVals = w.regs[in.Dst]
		for lane := 0; lane < isa.WarpSize; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			addr := s.operand(w, in.Srcs[0], lane) + uint32(in.Off)
			res.addrs[lane] = addr
			var v uint32
			var err error
			if in.Op == isa.OpLdG {
				v, err = s.loadGlobal(addr)
			} else {
				v, err = s.loadShared(w, addr)
			}
			if err != nil {
				return fmt.Errorf("%s at pc %d lane %d: %w", in.Op, pc, lane, err)
			}
			if rv := s.recv; rv != nil && in.Op == isa.OpLdG {
				rv.noteGlobal(addr, memLoad)
			}
			if v != res.dstVals[lane] {
				res.dstVals[lane] = v
				changed = true
			}
		}
		w.regs[in.Dst] = res.dstVals
		res.writes = eff != 0
		res.unchanged = !changed
		s.memTiming(res, in.Op == isa.OpLdG, eff)
		t.pc++

	case isa.OpAtomAdd:
		res.dstVals = w.regs[in.Dst]
		// Address computation, bounds checks and the trace note happen at
		// issue in lane order; the read-modify-writes are deferred to the
		// epoch barrier (SM.resolveAtom), which fills res.dstVals and
		// res.unchanged before the pipeline consumes them. The destination
		// register stays scoreboarded until the write commits, so nothing
		// observes the not-yet-resolved old values.
		for lane := 0; lane < isa.WarpSize; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			addr := s.operand(w, in.Srcs[0], lane) + uint32(in.Off)
			res.addrs[lane] = addr
			if err := s.gpu.mem.Check32(addr); err != nil {
				return fmt.Errorf("atom.add at pc %d lane %d: %w", pc, lane, err)
			}
			f.atomAdds[lane] = s.operand(w, in.Srcs[1], lane)
			if rv := s.recv; rv != nil {
				rv.noteAtom(addr, f.atomAdds[lane])
			}
		}
		res.writes = eff != 0
		if eff == 0 {
			res.unchanged = true
		} else {
			s.memLog = append(s.memLog, memOp{atom: f})
		}
		s.memTiming(res, true, eff)
		res.atomDeg = atomicConflictDegree(&res.addrs, eff)
		t.pc++

	case isa.OpStG, isa.OpStS:
		for lane := 0; lane < isa.WarpSize; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			addr := s.operand(w, in.Srcs[0], lane) + uint32(in.Off)
			res.addrs[lane] = addr
			v := s.operand(w, in.Srcs[1], lane)
			var err error
			if in.Op == isa.OpStG {
				// Validated now so the error surfaces at issue with the
				// sequential engine's exact attribution; the write itself
				// buffers until the epoch barrier.
				if err = s.gpu.mem.Check32(addr); err == nil {
					s.bufferStore(addr, v)
				}
			} else {
				err = s.storeShared(w, addr, v)
			}
			if err != nil {
				return fmt.Errorf("%s at pc %d lane %d: %w", in.Op, pc, lane, err)
			}
			if rv := s.recv; rv != nil && in.Op == isa.OpStG {
				rv.noteGlobal(addr, memStore)
			}
		}
		s.memTiming(res, in.Op == isa.OpStG, eff)
		t.pc++

	default: // plain ALU/SFU register ops
		res.dstVals = w.regs[in.Dst]
		for lane := 0; lane < isa.WarpSize; lane++ {
			if eff&(1<<lane) == 0 {
				continue
			}
			a := s.operand(w, in.Srcs[0], lane)
			b := s.operand(w, in.Srcs[1], lane)
			c := s.operand(w, in.Srcs[2], lane)
			if v := isa.EvalALU(in.Op, a, b, c); v != res.dstVals[lane] {
				res.dstVals[lane] = v
				changed = true
			}
		}
		w.regs[in.Dst] = res.dstVals
		res.writes = eff != 0
		res.unchanged = !changed
		t.pc++
	}

	w.popReconverged()
	if len(w.stack) == 0 && w.state != warpFinished {
		w.state = warpFinished
		s.warpExited(w)
	}
	return nil
}

// memTiming fills the coalescing/conflict fields of a memory access result,
// reusing the result's own segment buffer.
func (s *SM) memTiming(res *execResult, global bool, eff uint32) {
	if eff == 0 {
		return
	}
	if global {
		res.nsegs = len(mem.CoalesceSegmentList(&res.addrs, eff, res.segBuf[:0]))
	} else {
		sa := mem.AnalyzeShared(&res.addrs, eff, mem.SharedWordBytes)
		res.sharedDeg = sa.Phases
		res.sharedWds = sa.Words
		res.sharedBc = sa.BroadcastHits
	}
}

// atomicConflictDegree counts the worst-case number of active lanes hitting
// one address — the serialization factor of an atomic warp operation.
func atomicConflictDegree(addrs *[isa.WarpSize]uint32, mask uint32) int {
	deg := 0
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		n := 0
		for l2 := 0; l2 <= lane; l2++ {
			if mask&(1<<l2) != 0 && addrs[l2] == addrs[lane] {
				n++
			}
		}
		if n > deg {
			deg = n
		}
	}
	if deg == 0 {
		return 1
	}
	return deg
}

// loadGlobal reads device memory as this SM observes it mid-epoch: its own
// buffered stores (the overlay) over the epoch-start memory image. Other
// SMs' same-epoch stores become visible at the next barrier. The only
// divergence from the sequential engine is a load racing a *same-cycle*
// store from another SM — inherently schedule-dependent code that record
// mode already rejects as untraceable; every cross-cycle communication
// pattern is byte-identical.
func (s *SM) loadGlobal(addr uint32) (uint32, error) {
	if len(s.memOverlay) > 0 {
		if v, ok := s.memOverlay[addr]; ok {
			return v, nil
		}
	}
	return s.gpu.mem.Load32(addr)
}

// bufferStore logs a validated global store for the epoch barrier and makes
// it visible to this SM's own subsequent loads.
func (s *SM) bufferStore(addr, val uint32) {
	s.memLog = append(s.memLog, memOp{addr: addr, val: val})
	s.memOverlay[addr] = val
}

// loadShared reads the CTA's shared memory slab.
func (s *SM) loadShared(w *Warp, addr uint32) (uint32, error) {
	slab := s.ctas[w.ctaSlot].shared
	if addr%4 != 0 || int(addr)+4 > len(slab) {
		return 0, fmt.Errorf("shared load at 0x%x out of %d-byte slab", addr, len(slab))
	}
	return uint32(slab[addr]) | uint32(slab[addr+1])<<8 | uint32(slab[addr+2])<<16 | uint32(slab[addr+3])<<24, nil
}

// storeShared writes the CTA's shared memory slab.
func (s *SM) storeShared(w *Warp, addr uint32, v uint32) error {
	slab := s.ctas[w.ctaSlot].shared
	if addr%4 != 0 || int(addr)+4 > len(slab) {
		return fmt.Errorf("shared store at 0x%x out of %d-byte slab", addr, len(slab))
	}
	slab[addr] = byte(v)
	slab[addr+1] = byte(v >> 8)
	slab[addr+2] = byte(v >> 16)
	slab[addr+3] = byte(v >> 24)
	return nil
}

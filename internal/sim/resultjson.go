package sim

import (
	"encoding/json"
	"fmt"

	"repro/internal/energy"
	"repro/internal/regfile"
	"repro/internal/stats"
)

// ResultSchema is the identifier embedded in every marshaled Result. The
// suffix is the schema version: it changes only when a field is removed or
// its meaning changes; adding fields is backward compatible within a
// version. The field names below are the stable contract — consumers
// (cmd/warpedreport, BENCH_*.json tooling) must key on them, never on Go
// struct field names or ordering. The full schema is documented in
// DESIGN.md §"Result JSON schema".
const ResultSchema = "warped.sim.result/v1"

// phasePair serializes a per-phase counter pair under stable names.
type phasePair struct {
	NonDivergent uint64 `json:"non_divergent"`
	Divergent    uint64 `json:"divergent"`
}

func pair(a [stats.NumPhases]uint64) phasePair {
	return phasePair{NonDivergent: a[stats.NonDivergent], Divergent: a[stats.Divergent]}
}

func (p phasePair) array() [stats.NumPhases]uint64 {
	var a [stats.NumPhases]uint64
	a[stats.NonDivergent], a[stats.Divergent] = p.NonDivergent, p.Divergent
	return a
}

// phaseBins serializes per-phase count vectors (value bins, encodings).
type phaseBins struct {
	NonDivergent []uint64 `json:"non_divergent"`
	Divergent    []uint64 `json:"divergent"`
}

type regfileJSON struct {
	BankReads          uint64   `json:"bank_reads"`
	BankWrites         uint64   `json:"bank_writes"`
	PerBankReads       []uint64 `json:"per_bank_reads"`
	PerBankWrites      []uint64 `json:"per_bank_writes"`
	PerBankGatedCycles []uint64 `json:"per_bank_gated_cycles"`
	PoweredBankCycles  uint64   `json:"powered_bank_cycles"`
	DrowsyBankCycles   uint64   `json:"drowsy_bank_cycles"`
	Cycles             uint64   `json:"cycles"`
	ReadBeforeWrite    uint64   `json:"read_before_write"`
	// Added within v1 (fault-injection support); absent in older
	// documents, which decode as zero.
	RedirectedWrites uint64 `json:"redirected_writes,omitempty"`
}

type statsJSON struct {
	Cycles          uint64 `json:"cycles"`
	Instructions    uint64 `json:"instructions"`
	DivergentInstrs uint64 `json:"divergent_instructions"`
	DummyMovs       uint64 `json:"dummy_movs"`

	WriteBins  phaseBins `json:"write_bins"`
	BDIChoices []uint64  `json:"bdi_choices"`

	RegWrites      phasePair `json:"reg_writes"`
	WriteOrigBanks phasePair `json:"write_orig_banks"`
	WriteCompBanks phasePair `json:"write_comp_banks"`
	WritesByEnc    phaseBins `json:"writes_by_encoding"`

	CensusSamples    phasePair `json:"census_samples"`
	CensusCompressed struct {
		NonDivergent float64 `json:"non_divergent"`
		Divergent    float64 `json:"divergent"`
	} `json:"census_compressed"`

	RegFile    regfileJSON `json:"register_file"`
	CompActs   uint64      `json:"compressor_activations"`
	DecompActs uint64      `json:"decompressor_activations"`

	RFCReads      uint64 `json:"rfc_reads"`
	RFCReadMisses uint64 `json:"rfc_read_misses"`
	RFCWrites     uint64 `json:"rfc_writes"`
	RFCEvictions  uint64 `json:"rfc_evictions"`

	GlobalTxns   uint64 `json:"global_transactions"`
	SharedAccess uint64 `json:"shared_accesses"`
	L1Hits       uint64 `json:"l1_hits"`
	L1Misses     uint64 `json:"l1_misses"`

	// Shared-memory bank-model counters, added within v1; zero (and
	// omitted) for workloads that never touch shared memory, so such
	// documents are byte-identical to pre-bank-model writers.
	SharedBankAccesses        uint64 `json:"shared_bank_accesses,omitempty"`
	SharedConflicts           uint64 `json:"shared_conflicts,omitempty"`
	SharedSerializationCycles uint64 `json:"shared_serialization_cycles,omitempty"`
	SharedBroadcastHits       uint64 `json:"shared_broadcast_hits,omitempty"`

	StallScoreboard uint64 `json:"stall_scoreboard"`
	StallCollector  uint64 `json:"stall_collector"`
	StallCompressor uint64 `json:"stall_compressor"`
	StallWakeup     uint64 `json:"stall_wakeup"`

	// Fault-injection counters, added within v1; zero (and omitted) when
	// injection is off, so fault-free documents are byte-identical to
	// pre-fault writers.
	FaultStuckWrites    uint64 `json:"fault_stuck_writes,omitempty"`
	FaultCorruptedLanes uint64 `json:"fault_corrupted_lanes,omitempty"`
	FaultTransientFlips uint64 `json:"fault_transient_flips,omitempty"`
}

type energyEventsJSON struct {
	BankAccesses      uint64 `json:"bank_accesses"`
	WireBeats         uint64 `json:"wire_beats"`
	CompActs          uint64 `json:"compressor_activations"`
	DecompActs        uint64 `json:"decompressor_activations"`
	RFCAccesses       uint64 `json:"rfc_accesses"`
	RFCKB             int    `json:"rfc_kb"`
	PoweredBankCycles uint64 `json:"powered_bank_cycles"`
	DrowsyBankCycles  uint64 `json:"drowsy_bank_cycles"`
	Cycles            uint64 `json:"cycles"`
	CompUnits         int    `json:"compressor_units"`
	DecompUnits       int    `json:"decompressor_units"`
	// Added within v1 (shared-memory bank model); omitted when zero.
	SharedBankAccesses uint64 `json:"shared_bank_accesses,omitempty"`
}

type resultJSON struct {
	Schema       string           `json:"schema"`
	Cycles       uint64           `json:"cycles"`
	Stats        statsJSON        `json:"stats"`
	EnergyEvents energyEventsJSON `json:"energy_events"`
}

// MarshalJSON encodes the Result under the stable, versioned v1 schema
// (ResultSchema). Field names are part of the public contract and survive
// internal struct renames.
func (r *Result) MarshalJSON() ([]byte, error) {
	s := &r.Stats
	sj := statsJSON{
		Cycles:          s.Cycles,
		Instructions:    s.Instructions,
		DivergentInstrs: s.DivergentInstrs,
		DummyMovs:       s.DummyMovs,
		WriteBins: phaseBins{
			NonDivergent: append([]uint64(nil), s.WriteBins[stats.NonDivergent][:]...),
			Divergent:    append([]uint64(nil), s.WriteBins[stats.Divergent][:]...),
		},
		BDIChoices:     append([]uint64(nil), s.BDIChoices[:]...),
		RegWrites:      pair(s.RegWrites),
		WriteOrigBanks: pair(s.WriteOrigBanks),
		WriteCompBanks: pair(s.WriteCompBanks),
		WritesByEnc: phaseBins{
			NonDivergent: append([]uint64(nil), s.WritesByEnc[stats.NonDivergent][:]...),
			Divergent:    append([]uint64(nil), s.WritesByEnc[stats.Divergent][:]...),
		},
		CensusSamples: pair(s.CensusSamples),
		RegFile: regfileJSON{
			BankReads:          s.RF.BankReads,
			BankWrites:         s.RF.BankWrites,
			PerBankReads:       append([]uint64(nil), s.RF.PerBankReads[:]...),
			PerBankWrites:      append([]uint64(nil), s.RF.PerBankWrites[:]...),
			PerBankGatedCycles: append([]uint64(nil), s.RF.PerBankGatedCycles[:]...),
			PoweredBankCycles:  s.RF.PoweredBankCycles,
			DrowsyBankCycles:   s.RF.DrowsyBankCycles,
			Cycles:             s.RF.Cycles,
			ReadBeforeWrite:    s.RF.ReadBeforeWrite,
			RedirectedWrites:   s.RF.RedirectedWrites,
		},
		CompActs:      s.CompActs,
		DecompActs:    s.DecompActs,
		RFCReads:      s.RFCReads,
		RFCReadMisses: s.RFCReadMisses,
		RFCWrites:     s.RFCWrites,
		RFCEvictions:  s.RFCEvictions,
		GlobalTxns:    s.GlobalTxns,
		SharedAccess:  s.SharedAccess,
		L1Hits:        s.L1Hits,
		L1Misses:      s.L1Misses,

		SharedBankAccesses:        s.SharedBankAccesses,
		SharedConflicts:           s.SharedConflicts,
		SharedSerializationCycles: s.SharedSerializationCycles,
		SharedBroadcastHits:       s.SharedBroadcastHits,
		StallScoreboard:           s.StallScoreboard,
		StallCollector:            s.StallCollector,
		StallCompressor:           s.StallCompressor,
		StallWakeup:               s.StallWakeup,

		FaultStuckWrites:    s.FaultStuckWrites,
		FaultCorruptedLanes: s.FaultCorruptedLanes,
		FaultTransientFlips: s.FaultTransientFlips,
	}
	sj.CensusCompressed.NonDivergent = s.CensusCompressed[stats.NonDivergent]
	sj.CensusCompressed.Divergent = s.CensusCompressed[stats.Divergent]
	return json.Marshal(resultJSON{
		Schema: ResultSchema,
		Cycles: r.Cycles,
		Stats:  sj,
		EnergyEvents: energyEventsJSON{
			BankAccesses:       r.Energy.BankAccesses,
			WireBeats:          r.Energy.WireBeats,
			CompActs:           r.Energy.CompActs,
			DecompActs:         r.Energy.DecompActs,
			RFCAccesses:        r.Energy.RFCAccesses,
			RFCKB:              r.Energy.RFCKB,
			PoweredBankCycles:  r.Energy.PoweredBankCycles,
			DrowsyBankCycles:   r.Energy.DrowsyBankCycles,
			Cycles:             r.Energy.Cycles,
			CompUnits:          r.Energy.CompUnits,
			DecompUnits:        r.Energy.DecompUnits,
			SharedBankAccesses: r.Energy.SharedBankAccesses,
		},
	})
}

// UnmarshalJSON decodes any v1-schema document produced by MarshalJSON.
func (r *Result) UnmarshalJSON(data []byte) error {
	var doc resultJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Schema != ResultSchema {
		return fmt.Errorf("sim: unsupported result schema %q (want %q)", doc.Schema, ResultSchema)
	}
	*r = Result{Cycles: doc.Cycles}
	sj := &doc.Stats
	s := &r.Stats
	s.Cycles = sj.Cycles
	s.Instructions = sj.Instructions
	s.DivergentInstrs = sj.DivergentInstrs
	s.DummyMovs = sj.DummyMovs
	copyBins(s.WriteBins[stats.NonDivergent][:], sj.WriteBins.NonDivergent)
	copyBins(s.WriteBins[stats.Divergent][:], sj.WriteBins.Divergent)
	copyBins(s.BDIChoices[:], sj.BDIChoices)
	s.RegWrites = sj.RegWrites.array()
	s.WriteOrigBanks = sj.WriteOrigBanks.array()
	s.WriteCompBanks = sj.WriteCompBanks.array()
	copyBins(s.WritesByEnc[stats.NonDivergent][:], sj.WritesByEnc.NonDivergent)
	copyBins(s.WritesByEnc[stats.Divergent][:], sj.WritesByEnc.Divergent)
	s.CensusSamples = sj.CensusSamples.array()
	s.CensusCompressed[stats.NonDivergent] = sj.CensusCompressed.NonDivergent
	s.CensusCompressed[stats.Divergent] = sj.CensusCompressed.Divergent
	s.RF = regfile.Stats{
		BankReads:         sj.RegFile.BankReads,
		BankWrites:        sj.RegFile.BankWrites,
		PoweredBankCycles: sj.RegFile.PoweredBankCycles,
		DrowsyBankCycles:  sj.RegFile.DrowsyBankCycles,
		Cycles:            sj.RegFile.Cycles,
		ReadBeforeWrite:   sj.RegFile.ReadBeforeWrite,
		RedirectedWrites:  sj.RegFile.RedirectedWrites,
	}
	copyBins(s.RF.PerBankReads[:], sj.RegFile.PerBankReads)
	copyBins(s.RF.PerBankWrites[:], sj.RegFile.PerBankWrites)
	copyBins(s.RF.PerBankGatedCycles[:], sj.RegFile.PerBankGatedCycles)
	s.CompActs = sj.CompActs
	s.DecompActs = sj.DecompActs
	s.RFCReads = sj.RFCReads
	s.RFCReadMisses = sj.RFCReadMisses
	s.RFCWrites = sj.RFCWrites
	s.RFCEvictions = sj.RFCEvictions
	s.GlobalTxns = sj.GlobalTxns
	s.SharedAccess = sj.SharedAccess
	s.L1Hits = sj.L1Hits
	s.L1Misses = sj.L1Misses
	s.SharedBankAccesses = sj.SharedBankAccesses
	s.SharedConflicts = sj.SharedConflicts
	s.SharedSerializationCycles = sj.SharedSerializationCycles
	s.SharedBroadcastHits = sj.SharedBroadcastHits
	s.StallScoreboard = sj.StallScoreboard
	s.StallCollector = sj.StallCollector
	s.StallCompressor = sj.StallCompressor
	s.StallWakeup = sj.StallWakeup
	s.FaultStuckWrites = sj.FaultStuckWrites
	s.FaultCorruptedLanes = sj.FaultCorruptedLanes
	s.FaultTransientFlips = sj.FaultTransientFlips
	r.Energy = energy.Events{
		BankAccesses:       doc.EnergyEvents.BankAccesses,
		WireBeats:          doc.EnergyEvents.WireBeats,
		CompActs:           doc.EnergyEvents.CompActs,
		DecompActs:         doc.EnergyEvents.DecompActs,
		RFCAccesses:        doc.EnergyEvents.RFCAccesses,
		RFCKB:              doc.EnergyEvents.RFCKB,
		PoweredBankCycles:  doc.EnergyEvents.PoweredBankCycles,
		DrowsyBankCycles:   doc.EnergyEvents.DrowsyBankCycles,
		Cycles:             doc.EnergyEvents.Cycles,
		CompUnits:          doc.EnergyEvents.CompUnits,
		DecompUnits:        doc.EnergyEvents.DecompUnits,
		SharedBankAccesses: doc.EnergyEvents.SharedBankAccesses,
	}
	return nil
}

// copyBins copies src into dst, tolerating shorter documents (older v1
// writers) and ignoring surplus entries (newer v1 writers).
func copyBins(dst []uint64, src []uint64) {
	copy(dst, src)
}

package sim

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// TestAtomicAddHistogram: colliding atomic adds must serialize to exact
// counts, including full-warp collisions on one bin.
func TestAtomicAddHistogram(t *testing.T) {
	// Every thread increments bin (tid % 4): 4 bins x 32 increments for a
	// 128-thread CTA.
	src := `
	mov  r0, %tid.x
	and  r1, r0, 3
	shl  r1, r1, 2
	add  r1, r1, %param0
	atom.add r2, [r1], 1
	exit
`
	c := testConfig()
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	binAddr, err := g.Mem().Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	k, err := asm.Assemble("hist4", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(isa.Launch{
		Kernel: k, Grid: isa.Dim3{X: 2}, Block: isa.Dim3{X: 128},
		Params: [isa.NumParams]uint32{binAddr},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Mem().ReadInt32(binAddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 64 {
			t.Fatalf("bin[%d] = %d, want 64", i, v)
		}
	}
}

// TestAtomicReturnsOldValue: the destination register receives the
// pre-update value in lane-serialized order.
func TestAtomicReturnsOldValue(t *testing.T) {
	src := `
	mov  r0, %tid.x
	mov  r1, %param0
	atom.add r2, [r1], 1     // every lane bumps the same counter
	shl  r3, r0, 2
	add  r3, r3, %param1
	st.global [r3], r2       // record the observed old value
	exit
`
	c := testConfig()
	g, _ := New(c)
	ctr, _ := g.Mem().Alloc(4)
	out, _ := g.Mem().Alloc(4 * 32)
	k, err := asm.Assemble("ticket", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(isa.Launch{
		Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32},
		Params: [isa.NumParams]uint32{ctr, out},
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := g.Mem().ReadInt32(out, 32)
	for lane, v := range got {
		if v != int32(lane) {
			t.Fatalf("lane %d saw ticket %d, want %d (lane-order serialization)", lane, v, lane)
		}
	}
	final, _ := g.Mem().ReadInt32(ctr, 1)
	if final[0] != 32 {
		t.Fatalf("counter = %d, want 32", final[0])
	}
}

// TestAtomicConflictSerializes: a full-warp same-address atomic must take
// longer than a conflict-free one.
func TestAtomicConflictSerializes(t *testing.T) {
	run := func(src string) uint64 {
		c := testConfig()
		c.NumSMs = 1
		g, _ := New(c)
		if _, err := g.Mem().Alloc(4096); err != nil {
			t.Fatal(err)
		}
		k, err := asm.Assemble("a", src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	conflicting := run(`
	mov r0, 0
	atom.add r1, [r0], 1
	exit
`)
	conflictFree := run(`
	mov r0, %tid.x
	shl r0, r0, 2
	atom.add r1, [r0], 1
	exit
`)
	if conflicting <= conflictFree {
		t.Fatalf("same-address atomics should serialize: %d vs %d cycles", conflicting, conflictFree)
	}
}

// TestRFCCorrectnessAndFiltering: with the register file cache comparator,
// results stay identical to the baseline while most operand reads bypass
// the banks.
func TestRFCCorrectness(t *testing.T) {
	run := func(rfc int) ([]int32, *Result) {
		c := BaselineConfig()
		c.NumSMs = 2
		c.GlobalMemBytes = 1 << 20
		c.RFCEntries = rfc
		g, res, _ := runKernel(t, c, loopKernelSrc, 2, 64, nil)
		got, err := g.Mem().ReadInt32(0, 128)
		if err != nil {
			t.Fatal(err)
		}
		return got, res
	}
	base, bres := run(0)
	rfc, rres := run(6)
	for i := range base {
		if base[i] != rfc[i] {
			t.Fatalf("out[%d]: baseline %d != rfc %d", i, base[i], rfc[i])
		}
	}
	if rres.Stats.RFCReads == 0 || rres.Stats.RFCWrites == 0 {
		t.Fatalf("RFC recorded no activity: %+v", rres.Stats.RFCReads)
	}
	if bres.Stats.RFCReads != 0 {
		t.Fatal("baseline must not touch the RFC")
	}
	if rres.Stats.RF.BankReads >= bres.Stats.RF.BankReads {
		t.Fatalf("RFC should filter bank reads: %d vs %d", rres.Stats.RF.BankReads, bres.Stats.RF.BankReads)
	}
	if rres.Stats.RF.BankWrites >= bres.Stats.RF.BankWrites {
		t.Fatalf("RFC should filter bank writes: %d vs %d", rres.Stats.RF.BankWrites, bres.Stats.RF.BankWrites)
	}
}

// TestRFCDivergentWriteAllocate: divergent partial writes through the RFC
// must keep untouched lanes intact (write-allocate fetches them).
func TestRFCDivergentWrites(t *testing.T) {
	c := BaselineConfig()
	c.NumSMs = 2
	c.GlobalMemBytes = 1 << 20
	c.RFCEntries = 2 // tiny cache forces evictions and re-fetches
	g, res, _ := runKernel(t, c, divergentLoopSrc, 2, 64, nil)
	got, err := g.Mem().ReadInt32(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(i%4+1) * 10
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if res.Stats.RFCEvictions == 0 {
		t.Fatal("a 2-entry RFC on a loop kernel must evict")
	}
}

// TestRFCExclusiveWithCompression: configuration guard.
func TestRFCExclusiveWithCompression(t *testing.T) {
	c := DefaultConfig()
	c.RFCEntries = 6
	if err := c.Validate(); err == nil {
		t.Fatal("RFC + compression must be rejected")
	}
}

package sim

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/isa"
)

// TestSteadyStateStepAllocFree pins down the tentpole property of the
// scratch-arena work: once the pools are warm, an SM cycle (pipeline
// advance + issue + register-file tick) performs zero heap allocations.
func TestSteadyStateStepAllocFree(t *testing.T) {
	c := testConfig()
	c.NumSMs = 1
	g, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// A long uniform loop touching the ALU, the compressor path and global
	// memory in both directions, so the measured steps exercise the full
	// issue/execute/writeback machinery.
	src := `
	mov  r0, %tid.x
	shl  r1, r0, 2
	mov  r2, 0
Lloop:
	ld.global r3, [r1]
	add  r3, r3, 1
	st.global [r1], r3
	add  r2, r2, 1
	setp.lt p0, r2, 1000000
@p0	bra Lloop
	exit
`
	k, err := asm.Assemble("steady", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if err := cfg.ComputeReconvergence(k); err != nil {
		t.Fatalf("ComputeReconvergence: %v", err)
	}
	l := isa.Launch{Kernel: k, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	sm := g.sms[0]
	sm.reset(l)
	nextCTA := 0
	cycle := uint64(0)
	step := func() {
		cycle++
		if nextCTA < l.NumCTAs() && sm.tryLaunchCTA(nextCTA) {
			nextCTA++
		}
		sm.step(cycle)
		if sm.err != nil {
			t.Fatalf("cycle %d: %v", cycle, sm.err)
		}
		// The epoch barrier the GPU loop would run: drain the commit log
		// every cycle (SMEpoch=1) so its steady-state cost — append into a
		// warm slice, overlay clear, Store32 — is measured too.
		sm.commitMemLog()
	}
	// Warm-up: grow every pool and scratch buffer to steady-state size.
	for i := 0; i < 2000; i++ {
		step()
	}
	if !sm.busy() {
		t.Fatal("kernel drained during warm-up; steady-state window too short")
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("steady-state SM step allocates %.1f objects/cycle, want 0", allocs)
	}
	if !sm.busy() {
		t.Fatal("kernel drained during measurement; steady-state window too short")
	}
}

// TestChooseEncMemo proves the encoding memo actually short-circuits the
// scan: a deliberately poisoned cache entry is returned verbatim on the
// unchanged-value path, and repaired as soon as the value changes or the
// entry is invalidated.
func TestChooseEncMemo(t *testing.T) {
	comp, err := core.NewCompressor(core.DefaultScheme)
	if err != nil {
		t.Fatal(err)
	}
	s := &SM{gpu: &GPU{comp: comp}}
	w := newWarp(0, 0, 0, 0, isa.WarpSize, 8, 1)
	const dst = isa.Reg(3)

	var res execResult
	for i := range res.dstVals {
		res.dstVals[i] = uint32(100 + i) // stride 1: classifies as <4,1>
	}
	res.unchanged = true

	// First classification populates the cache even on the unchanged path.
	want := core.ModeWarped.Choose(&res.dstVals)
	if got := s.chooseEnc(w, dst, &res, core.ModeWarped); got != want {
		t.Fatalf("cold chooseEnc = %v, want %v", got, want)
	}
	if w.encValid&(1<<dst) == 0 {
		t.Fatal("cache entry not marked valid after classification")
	}

	// Poison the entry: an unchanged value must hit the memo, not rescan.
	w.encCache[dst] = core.EncUncompressed
	if got := s.chooseEnc(w, dst, &res, core.ModeWarped); got != core.EncUncompressed {
		t.Fatalf("unchanged value rescanned (got %v); memo not consulted", got)
	}

	// A changed value bypasses the memo and repairs the entry.
	res.unchanged = false
	if got := s.chooseEnc(w, dst, &res, core.ModeWarped); got != want {
		t.Fatalf("changed value chooseEnc = %v, want %v", got, want)
	}
	if w.encCache[dst] != want {
		t.Fatalf("cache not repaired: %v, want %v", w.encCache[dst], want)
	}

	// Invalidation (applyFaults clears the bit on corruption) forces a
	// rescan even when the value is unchanged.
	res.unchanged = true
	w.encValid &^= 1 << dst
	w.encCache[dst] = core.EncUncompressed
	if got := s.chooseEnc(w, dst, &res, core.ModeWarped); got != want {
		t.Fatalf("invalidated entry chooseEnc = %v, want %v", got, want)
	}
}

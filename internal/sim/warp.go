package sim

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/exectrace"
	"repro/internal/isa"
)

// stackEntry is one SIMT reconvergence stack record (GPGPU-Sim style):
// execute at PC with Mask active; pop when PC reaches RPC.
type stackEntry struct {
	pc   int32
	rpc  int32 // reconvergence PC; -1 = only reconverges at exit
	mask uint32
}

// warpState tracks a warp's lifecycle on an SM.
type warpState uint8

const (
	warpRunning warpState = iota
	warpAtBarrier
	warpFinished // all threads exited; may still have instructions in flight
)

// Warp is one resident warp: functional register state plus SIMT control.
type Warp struct {
	slot      int // hardware warp slot on the SM
	ctaSlot   int // CTA slot on the SM
	ctaID     int // global CTA index in the grid
	warpInCTA int // warp index within the CTA
	age       uint64

	launchMask uint32 // live (not yet exited) threads
	stack      []stackEntry

	regs  [][isa.WarpSize]uint32 // [reg][lane] functional values
	preds [isa.MaxPreds]uint32   // per-predicate lane bitmasks

	state     warpState
	inFlight  int  // issued but not retired instructions
	finalized bool // resources already released

	// Register file cache comparator state (abl4-rfc): a small per-warp
	// LRU of recently written warp registers.
	rfc      []rfcEntry
	rfcStamp uint64

	// Scoreboard: destination registers/predicates with writes in flight.
	regBusy  uint64
	predBusy uint8

	// Encoding memo (see SM.chooseEnc): encCache[r] holds the compression
	// encoding classified for register r's current committed value; the
	// encValid bit says the entry is live. A commit that changes the value
	// refreshes the entry; fault corruption invalidates it.
	encCache [isa.MaxRegs]core.Encoding
	encValid uint64
	// encComp stamps which compression backend filled encCache; chooseEnc
	// drops the whole memo when the stamp does not match the active
	// compressor, so a recycled warp can never serve another scheme's
	// classification.
	encComp core.Compressor

	// Replay front-end state: the warp's recorded stream and its cursors
	// into the record list and the value/segment/atomic side pools. Nil
	// and zero outside replay mode.
	rpStream *exectrace.WarpStream
	rpRec    int
	rpVal    int
	rpSeg    int
	rpAtom   int
}

// newWarp builds a fresh warp. The SM reuses retired warp objects through a
// pool and re-initializes them with Warp.reset; newWarp is the cold path.
func newWarp(slot, ctaSlot, ctaID, warpInCTA int, liveThreads int, numRegs int, age uint64) *Warp {
	w := &Warp{}
	w.reset(slot, ctaSlot, ctaID, warpInCTA, liveThreads, numRegs, age)
	return w
}

// reset re-initializes a (possibly recycled) warp for a new launch slot,
// reusing the register and SIMT stack backing arrays when they are large
// enough. Every architectural and bookkeeping field is restored to its
// launch state — a recycled warp is indistinguishable from a new one.
func (w *Warp) reset(slot, ctaSlot, ctaID, warpInCTA int, liveThreads int, numRegs int, age uint64) {
	mask := uint32(0xFFFFFFFF)
	if liveThreads < isa.WarpSize {
		mask = (uint32(1) << liveThreads) - 1
	}
	w.slot = slot
	w.ctaSlot = ctaSlot
	w.ctaID = ctaID
	w.warpInCTA = warpInCTA
	w.age = age
	w.launchMask = mask
	w.stack = append(w.stack[:0], stackEntry{pc: 0, rpc: -1, mask: mask})
	if cap(w.regs) >= numRegs {
		w.regs = w.regs[:numRegs]
		clear(w.regs)
	} else {
		w.regs = make([][isa.WarpSize]uint32, numRegs)
	}
	w.preds = [isa.MaxPreds]uint32{}
	w.state = warpRunning
	w.inFlight = 0
	w.finalized = false
	w.rfc = w.rfc[:0]
	w.rfcStamp = 0
	w.regBusy = 0
	w.predBusy = 0
	w.encValid = 0
	w.encComp = nil
	w.rpStream = nil
	w.rpRec, w.rpVal, w.rpSeg, w.rpAtom = 0, 0, 0, 0
}

// tos returns the top SIMT stack entry; nil when the warp has fully exited.
func (w *Warp) tos() *stackEntry {
	if len(w.stack) == 0 {
		return nil
	}
	return &w.stack[len(w.stack)-1]
}

// pc returns the warp's current program counter.
func (w *Warp) pc() int32 { return w.tos().pc }

// activeMask returns the current SIMT active mask.
func (w *Warp) activeMask() uint32 { return w.tos().mask }

// guardMask evaluates an instruction guard over the warp: the subset of
// lanes whose guard predicate holds (all lanes for unguarded instructions).
func (w *Warp) guardMask(in *isa.Instr) uint32 {
	if in.Pred == isa.PredNone {
		return 0xFFFFFFFF
	}
	m := w.preds[in.Pred]
	if in.PredNeg {
		m = ^m
	}
	return m
}

// popReconverged pops stack entries whose PC reached their reconvergence
// point, and drops dead (zero-mask) entries.
func (w *Warp) popReconverged() {
	for len(w.stack) > 0 {
		t := w.tos()
		if t.mask == 0 || (t.rpc >= 0 && t.pc == t.rpc) {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// retireThreads removes exiting lanes from the warp: they leave the launch
// mask and every stack entry. Returns true when the whole warp has exited.
func (w *Warp) retireThreads(dying uint32) bool {
	w.launchMask &^= dying
	for i := range w.stack {
		w.stack[i].mask &^= dying
	}
	w.popReconverged()
	if w.launchMask == 0 || len(w.stack) == 0 {
		w.stack = w.stack[:0]
		w.state = warpFinished
		return true
	}
	return false
}

// diverge applies a conditional branch outcome: takenMask lanes go to
// target, the rest fall through; rpc is the reconvergence PC from the CFG
// analysis. Implements the standard SIMT-stack transformation.
func (w *Warp) diverge(takenMask uint32, target, fallthrough_, rpc int32) {
	t := w.tos()
	active := t.mask
	notTaken := active &^ takenMask
	switch {
	case takenMask == 0:
		t.pc = fallthrough_
	case notTaken == 0:
		t.pc = target
	default:
		// True divergence: TOS becomes the reconvergence entry; push
		// fallthrough then taken so taken executes first.
		t.pc = rpc
		// When rpc is -1 control only reconverges at exit: the TOS
		// entry dies when both children have fully exited (mask
		// removal happens via retireThreads), so keep it with pc==rpc
		// sentinel; popReconverged skips rpc<0 entries until mask==0.
		w.stack = append(w.stack,
			stackEntry{pc: fallthrough_, rpc: rpc, mask: notTaken},
			stackEntry{pc: target, rpc: rpc, mask: takenMask},
		)
	}
}

// rfcEntry is one slot of the per-warp register file cache comparator.
type rfcEntry struct {
	reg   isa.Reg
	dirty bool
	lru   uint64
}

// rfcLookup finds reg in the warp's RFC, refreshing its LRU stamp.
func (w *Warp) rfcLookup(reg isa.Reg) bool {
	for i := range w.rfc {
		if w.rfc[i].reg == reg {
			w.rfcStamp++
			w.rfc[i].lru = w.rfcStamp
			return true
		}
	}
	return false
}

// rfcInsert places reg in the RFC as dirty, evicting the LRU entry when the
// cache is full. Returns the evicted register and whether it was dirty.
func (w *Warp) rfcInsert(reg isa.Reg, capacity int) (evicted isa.Reg, dirty bool, didEvict bool) {
	w.rfcStamp++
	for i := range w.rfc {
		if w.rfc[i].reg == reg {
			w.rfc[i].dirty = true
			w.rfc[i].lru = w.rfcStamp
			return 0, false, false
		}
	}
	if len(w.rfc) < capacity {
		w.rfc = append(w.rfc, rfcEntry{reg: reg, dirty: true, lru: w.rfcStamp})
		return 0, false, false
	}
	victim := 0
	for i := 1; i < len(w.rfc); i++ {
		if w.rfc[i].lru < w.rfc[victim].lru {
			victim = i
		}
	}
	evicted, dirty = w.rfc[victim].reg, w.rfc[victim].dirty
	w.rfc[victim] = rfcEntry{reg: reg, dirty: true, lru: w.rfcStamp}
	return evicted, dirty, true
}

// countBits is a readability helper for mask population counts.
func countBits(m uint32) int { return bits.OnesCount32(m) }

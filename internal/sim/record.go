package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/exectrace"
	"repro/internal/isa"
)

// ErrUntraceable marks a launch whose value stream is irreducibly
// schedule-dependent — some memory cell is accessed both atomically and
// non-atomically — so no warped.trace/v1 capture of it can replay
// correctly under other configurations. Callers fall back to execute mode.
// Test with errors.Is.
var ErrUntraceable = errors.New("sim: launch mixes atomic and non-atomic access to the same address; not traceable")

// recorder tees the functional front-end into an exectrace.Launch while an
// ordinary execute-mode simulation runs. It observes every issued
// instruction after its architectural effect resolves, so the captured
// stream is exactly what the timing back-end consumed — dummy MOVs and
// other timing artifacts are never recorded (replay re-derives them from
// its own configuration).
//
// Recording is shard-safe by construction: every mutable structure an SM
// touches at issue lives in that SM's own recView (a CTA — and therefore a
// warp stream — belongs to exactly one SM), and the shared atomSeen table
// is written only at the serial epoch barrier.
type recorder struct {
	launch      *exectrace.Launch
	streams     []*exectrace.WarpStream // indexed ctaID*warpsPerCTA + warpInCTA
	warpsPerCTA int

	// atomSeen maps each atomically-touched address to the value it held
	// the first time any atomic read it — its launch-time value, since
	// atomics are the only writers of those cells during the launch.
	// Written only from SM.resolveAtom at the epoch barrier.
	atomSeen map[uint32]uint32

	views []*recView // one per SM
}

// recView is one SM's private slice of the recorder: its aliasing-detection
// map, its pending-atomic buffer and its issue-time error. Cross-SM
// aliasing, which no single view can see, is caught by finish.
type recView struct {
	r *recorder

	// pend buffers the per-lane operations of the atomic currently inside
	// execute; record() flushes them into the issuing warp's stream.
	pend []exectrace.AtomOp

	// memUse tracks how each global address was touched by this SM, to
	// detect the one program shape a trace cannot represent: a cell
	// accessed both atomically and non-atomically in the same launch. Such
	// mixing makes the value stream schedule-dependent, so record refuses
	// it (see ErrUntraceable) rather than produce a trace that replays
	// wrong.
	memUse map[uint32]uint8
	err    error
}

const (
	memLoad  uint8 = 1 << iota // non-atomic ld.global
	memStore                   // non-atomic st.global
	memAtom                    // atom.add
)

func newRecorder(l isa.Launch, numSMs int) *recorder {
	// Snapshot the kernel without its reconvergence table: ReconvPC is an
	// execute-mode artifact the replayer never reads, and dropping it keeps
	// trace bytes independent of whether the CFG pass ran.
	k := *l.Kernel
	k.ReconvPC = nil
	r := &recorder{
		launch: &exectrace.Launch{
			Kernel: &k,
			Grid:   l.Grid,
			Block:  l.Block,
			Params: l.Params,
		},
		warpsPerCTA: l.WarpsPerCTA(),
		atomSeen:    make(map[uint32]uint32),
	}
	n := l.NumCTAs() * r.warpsPerCTA
	r.streams = make([]*exectrace.WarpStream, n)
	for i := range r.streams {
		r.streams[i] = &exectrace.WarpStream{CTAID: i / r.warpsPerCTA, WarpInCTA: i % r.warpsPerCTA}
	}
	r.launch.Warps = r.streams
	r.views = make([]*recView, numSMs)
	for i := range r.views {
		r.views[i] = &recView{r: r, memUse: make(map[uint32]uint8)}
	}
	return r
}

// noteAtom is called from inside execute's atomic loop for each executed
// lane: addr is the target cell, add the addend. The pre-value is not known
// yet — the epoch barrier registers it into atomSeen when the deferred
// atomic resolves.
func (v *recView) noteAtom(addr, add uint32) {
	if v.memUse[addr]&(memLoad|memStore) != 0 {
		v.fail(addr)
	}
	v.memUse[addr] |= memAtom
	v.pend = append(v.pend, exectrace.AtomOp{Addr: addr, Add: add})
}

// noteGlobal is called for each executed lane of a non-atomic global
// load/store.
func (v *recView) noteGlobal(addr uint32, kind uint8) {
	if v.memUse[addr]&memAtom != 0 {
		v.fail(addr)
	}
	v.memUse[addr] |= kind
}

func (v *recView) fail(addr uint32) {
	if v.err == nil {
		v.err = fmt.Errorf("%w (address 0x%x)", ErrUntraceable, addr)
	}
}

// record appends one issued instruction to its warp's stream. Safe to call
// from concurrent shard workers: the stream is keyed by CTA, and a CTA is
// resident on exactly one SM.
func (v *recView) record(w *Warp, in *isa.Instr, pc int32, active, eff uint32, res *execResult) {
	ws := v.r.streams[w.ctaID*v.r.warpsPerCTA+w.warpInCTA]
	rec := exectrace.Rec{PC: pc, Active: active, Eff: eff}
	if res.writes {
		rec.Flags |= exectrace.FlagWrites
	}
	if in.Op == isa.OpAtomAdd {
		// Atomic outcomes are schedule-dependent: the replayer recomputes
		// the old-value vector (and the unchanged bit) against its shadow
		// memory, so neither is stored — which also keeps trace bytes
		// independent of the recording configuration (and lets record()
		// run at issue, before the epoch barrier resolves the atomic).
		ws.Atoms = append(ws.Atoms, v.pend...)
	} else if res.writes {
		if res.unchanged {
			rec.Flags |= exectrace.FlagUnchanged
		} else {
			rec.Flags |= exectrace.FlagVals
			ws.Vals = append(ws.Vals, res.dstVals)
		}
	}
	switch in.Op {
	case isa.OpLdG, isa.OpStG, isa.OpAtomAdd:
		rec.NSegs = uint8(res.nsegs)
		ws.Segs = append(ws.Segs, res.segs()...)
		if in.Op == isa.OpAtomAdd {
			rec.Deg = uint16(res.atomDeg)
		}
	case isa.OpLdS, isa.OpStS:
		rec.Deg = uint16(res.sharedDeg)
		// Distinct-word count of the bank model; broadcast hits are
		// re-derived at replay as popcount(eff) - words, so the record
		// stays one byte. Both are pure functions of the lane addresses,
		// never of the recording configuration.
		rec.NSegs = uint8(res.sharedWds)
	}
	ws.Recs = append(ws.Recs, rec)
	v.pend = v.pend[:0]
}

// finish seals the launch: per-SM usage maps are merged to catch cross-SM
// atomic/non-atomic aliasing (invisible to any single view's issue-time
// check; the lowest conflicting address is reported so the error is
// deterministic at every shard count), and the atomic launch-time table is
// sorted by address so the serialized trace is canonical regardless of
// discovery order.
func (r *recorder) finish() (*exectrace.Launch, error) {
	merged := make(map[uint32]uint8)
	for _, v := range r.views {
		for addr, use := range v.memUse {
			merged[addr] |= use
		}
	}
	bad, found := uint32(0), false
	for addr, use := range merged {
		if use&memAtom != 0 && use&(memLoad|memStore) != 0 && (!found || addr < bad) {
			bad, found = addr, true
		}
	}
	if found {
		return nil, fmt.Errorf("%w (address 0x%x)", ErrUntraceable, bad)
	}
	cells := make([]exectrace.AtomCell, 0, len(r.atomSeen))
	for a, v := range r.atomSeen {
		cells = append(cells, exectrace.AtomCell{Addr: a, Val: v})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Addr < cells[j].Addr })
	r.launch.AtomInit = cells
	return r.launch, nil
}

// traceConfigError explains why a configuration cannot record or replay.
func (g *GPU) traceConfigError() error {
	if g.cfg.Faults.Enabled() {
		return &ConfigError{Field: "Faults", Reason: "fault injection corrupts functional state at commit time; record and replay require a fault-free functional front-end"}
	}
	return nil
}

// Record runs the launch in record mode: a normal execute-mode simulation
// whose functional front-end is teed into a trace launch. The returned
// Result is byte-identical to what RunContext would produce — recording is
// observation, never perturbation.
func (g *GPU) Record(l isa.Launch) (*Result, *exectrace.Launch, error) {
	return g.RecordContextBeat(context.Background(), l, nil)
}

// RecordContextBeat is Record with cancellation and a progress heartbeat
// (see RunContextBeat).
func (g *GPU) RecordContextBeat(ctx context.Context, l isa.Launch, beat *atomic.Uint64) (*Result, *exectrace.Launch, error) {
	if err := g.traceConfigError(); err != nil {
		return nil, nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, nil, err
	}
	g.rec = newRecorder(l, len(g.sms))
	defer func() { g.rec = nil }()
	res, err := g.run(ctx, l, beat)
	if err != nil {
		return nil, nil, err
	}
	lt, err := g.rec.finish()
	if err != nil {
		return nil, nil, err
	}
	if err := lt.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: recorded trace failed validation: %w", err)
	}
	return res, lt, nil
}

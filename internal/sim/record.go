package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/exectrace"
	"repro/internal/isa"
)

// ErrUntraceable marks a launch whose value stream is irreducibly
// schedule-dependent — some memory cell is accessed both atomically and
// non-atomically — so no warped.trace/v1 capture of it can replay
// correctly under other configurations. Callers fall back to execute mode.
// Test with errors.Is.
var ErrUntraceable = errors.New("sim: launch mixes atomic and non-atomic access to the same address; not traceable")

// recorder tees the functional front-end into an exectrace.Launch while an
// ordinary execute-mode simulation runs. It observes every issued
// instruction after its architectural effect resolves, so the captured
// stream is exactly what the timing back-end consumed — dummy MOVs and
// other timing artifacts are never recorded (replay re-derives them from
// its own configuration).
type recorder struct {
	launch      *exectrace.Launch
	streams     []*exectrace.WarpStream // indexed ctaID*warpsPerCTA + warpInCTA
	warpsPerCTA int

	// atomSeen maps each atomically-touched address to the value it held
	// the first time any atomic read it — its launch-time value, since
	// atomics are the only writers of those cells during the launch.
	atomSeen map[uint32]uint32
	// pend buffers the per-lane operations of the atomic currently inside
	// execute; record() flushes them into the issuing warp's stream.
	pend []exectrace.AtomOp

	// memUse tracks how each global address was touched, to detect the one
	// program shape a trace cannot represent: a cell accessed both
	// atomically and non-atomically in the same launch. Such mixing makes
	// the value stream schedule-dependent, so record refuses it (see
	// ErrUntraceable) rather than produce a trace that replays wrong.
	memUse map[uint32]uint8
	err    error
}

const (
	memLoad  uint8 = 1 << iota // non-atomic ld.global
	memStore                   // non-atomic st.global
	memAtom                    // atom.add
)

func newRecorder(l isa.Launch) *recorder {
	// Snapshot the kernel without its reconvergence table: ReconvPC is an
	// execute-mode artifact the replayer never reads, and dropping it keeps
	// trace bytes independent of whether the CFG pass ran.
	k := *l.Kernel
	k.ReconvPC = nil
	r := &recorder{
		launch: &exectrace.Launch{
			Kernel: &k,
			Grid:   l.Grid,
			Block:  l.Block,
			Params: l.Params,
		},
		warpsPerCTA: l.WarpsPerCTA(),
		atomSeen:    make(map[uint32]uint32),
		memUse:      make(map[uint32]uint8),
	}
	n := l.NumCTAs() * r.warpsPerCTA
	r.streams = make([]*exectrace.WarpStream, n)
	for i := range r.streams {
		r.streams[i] = &exectrace.WarpStream{CTAID: i / r.warpsPerCTA, WarpInCTA: i % r.warpsPerCTA}
	}
	r.launch.Warps = r.streams
	return r
}

// noteAtom is called from inside execute's atomic loop for each executed
// lane: addr is the target cell, pre the value read, add the addend.
func (r *recorder) noteAtom(addr, pre, add uint32) {
	if _, ok := r.atomSeen[addr]; !ok {
		r.atomSeen[addr] = pre
	}
	if r.memUse[addr]&(memLoad|memStore) != 0 {
		r.fail(addr)
	}
	r.memUse[addr] |= memAtom
	r.pend = append(r.pend, exectrace.AtomOp{Addr: addr, Add: add})
}

// noteGlobal is called for each executed lane of a non-atomic global
// load/store.
func (r *recorder) noteGlobal(addr uint32, kind uint8) {
	if r.memUse[addr]&memAtom != 0 {
		r.fail(addr)
	}
	r.memUse[addr] |= kind
}

func (r *recorder) fail(addr uint32) {
	if r.err == nil {
		r.err = fmt.Errorf("%w (address 0x%x)", ErrUntraceable, addr)
	}
}

// record appends one issued instruction to its warp's stream.
func (r *recorder) record(w *Warp, in *isa.Instr, pc int32, active, eff uint32, res *execResult) {
	ws := r.streams[w.ctaID*r.warpsPerCTA+w.warpInCTA]
	rec := exectrace.Rec{PC: pc, Active: active, Eff: eff}
	if res.writes {
		rec.Flags |= exectrace.FlagWrites
	}
	if in.Op == isa.OpAtomAdd {
		// Atomic outcomes are schedule-dependent: the replayer recomputes
		// the old-value vector (and the unchanged bit) against its shadow
		// memory, so neither is stored — which also keeps trace bytes
		// independent of the recording configuration.
		ws.Atoms = append(ws.Atoms, r.pend...)
	} else if res.writes {
		if res.unchanged {
			rec.Flags |= exectrace.FlagUnchanged
		} else {
			rec.Flags |= exectrace.FlagVals
			ws.Vals = append(ws.Vals, res.dstVals)
		}
	}
	switch in.Op {
	case isa.OpLdG, isa.OpStG, isa.OpAtomAdd:
		rec.NSegs = uint8(res.nsegs)
		ws.Segs = append(ws.Segs, res.segs()...)
		if in.Op == isa.OpAtomAdd {
			rec.Deg = uint16(res.atomDeg)
		}
	case isa.OpLdS, isa.OpStS:
		rec.Deg = uint16(res.sharedDeg)
	}
	ws.Recs = append(ws.Recs, rec)
	r.pend = r.pend[:0]
}

// finish seals the launch: the atomic launch-time table is sorted by
// address so the serialized trace is canonical regardless of discovery
// order.
func (r *recorder) finish() *exectrace.Launch {
	cells := make([]exectrace.AtomCell, 0, len(r.atomSeen))
	for a, v := range r.atomSeen {
		cells = append(cells, exectrace.AtomCell{Addr: a, Val: v})
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Addr < cells[j].Addr })
	r.launch.AtomInit = cells
	return r.launch
}

// traceConfigError explains why a configuration cannot record or replay.
func (g *GPU) traceConfigError() error {
	if g.cfg.Faults.Enabled() {
		return &ConfigError{Field: "Faults", Reason: "fault injection corrupts functional state at commit time; record and replay require a fault-free functional front-end"}
	}
	return nil
}

// Record runs the launch in record mode: a normal execute-mode simulation
// whose functional front-end is teed into a trace launch. The returned
// Result is byte-identical to what RunContext would produce — recording is
// observation, never perturbation.
func (g *GPU) Record(l isa.Launch) (*Result, *exectrace.Launch, error) {
	return g.RecordContextBeat(context.Background(), l, nil)
}

// RecordContextBeat is Record with cancellation and a progress heartbeat
// (see RunContextBeat).
func (g *GPU) RecordContextBeat(ctx context.Context, l isa.Launch, beat *atomic.Uint64) (*Result, *exectrace.Launch, error) {
	if err := g.traceConfigError(); err != nil {
		return nil, nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, nil, err
	}
	g.rec = newRecorder(l)
	defer func() { g.rec = nil }()
	res, err := g.run(ctx, l, beat)
	if err != nil {
		return nil, nil, err
	}
	lt := g.rec.finish()
	if err := lt.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: recorded trace failed validation: %w", err)
	}
	return res, lt, nil
}

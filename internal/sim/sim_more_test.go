package sim

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.MaxWarpsPerSM = 47 }, // not a multiple of 2 schedulers
		func(c *Config) { c.Collectors = 0 },
		func(c *Config) { c.Compressors = 0 },
		func(c *Config) { c.CompressLatency = -1 },
		func(c *Config) { c.ALULatency = 0 },
		func(c *Config) { c.GlobalMemBytes = 100 },
		func(c *Config) { c.Scheduler = "fifo" },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.L1SizeKB = 16; c.L1Ways = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestSequentialLaunchesOnOneGPU(t *testing.T) {
	// Two launches on the same GPU: memory persists, per-launch stats reset.
	c := testConfig()
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	k, err := asm.Assemble("inc", `
	mov r0, %tid.x
	shl r1, r0, 2
	ld.global r2, [r1]
	add r2, r2, 1
	st.global [r1], r2
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	l := isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 64}}
	r1, err := g.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Mem().ReadInt32(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2 {
			t.Fatalf("mem[%d] = %d after two launches, want 2", i, v)
		}
	}
	if r2.Stats.Instructions != r1.Stats.Instructions {
		t.Fatalf("second launch stats not reset: %d vs %d", r2.Stats.Instructions, r1.Stats.Instructions)
	}
}

func TestOutOfBoundsAccessFailsRun(t *testing.T) {
	c := testConfig()
	g, _ := New(c)
	k, _ := asm.Assemble("oob", `
	mov r0, 0x7ffffff0
	st.global [r0], 1
	exit
`)
	if _, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}}); err == nil {
		t.Fatal("out-of-bounds store must fail the run")
	}
}

func TestInfiniteLoopHitsMaxCycles(t *testing.T) {
	c := testConfig()
	c.MaxCycles = 2000
	g, _ := New(c)
	k, _ := asm.Assemble("spin", `
Lspin:
	bra Lspin
	exit
`)
	if _, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}}); err == nil {
		t.Fatal("runaway kernel must abort at MaxCycles")
	}
}

func TestPredicatedALUCountsAsPartialWrite(t *testing.T) {
	// A guarded non-branch write to a compressed register must also
	// trigger the dummy-MOV path (it is a partial register update).
	src := `
	mov  r0, %tid.x
	mov  r4, r0            // compressible
	and  r1, r0, 1
	setp.eq p0, r1, 0
@p0	add  r4, r4, 100       // predicated partial update
	shl  r2, r0, 2
	st.global [r2], r4
	exit
`
	c := testConfig()
	g, _ := New(c)
	k, _ := asm.Assemble("pred", src)
	res, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DummyMovs == 0 {
		t.Fatal("predicated partial write should inject a dummy MOV")
	}
	got, _ := g.Mem().ReadInt32(0, 64)
	for i, v := range got {
		want := int32(i)
		if i%2 == 0 {
			want += 100
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestSelpDataPredicate(t *testing.T) {
	src := `
	mov  r0, %tid.x
	and  r1, r0, 1
	setp.eq p1, r1, 0
	selp r2, 111, 222, p1
	shl  r3, r0, 2
	st.global [r3], r2
	exit
`
	g, _ := New(testConfig())
	k, _ := asm.Assemble("selp", src)
	if _, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 64}}); err != nil {
		t.Fatal(err)
	}
	got, _ := g.Mem().ReadInt32(0, 64)
	for i, v := range got {
		want := int32(222)
		if i%2 == 0 {
			want = 111
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestL1CacheReducesMemoryTime(t *testing.T) {
	// A kernel whose warps repeatedly load the same small table: with the
	// L1 enabled the run must be faster and record hits.
	src := `
	mov  r0, %tid.x
	mov  r5, 0
	mov  r6, 0
Lloop:
	and  r1, r5, 63
	shl  r1, r1, 2
	ld.global r2, [r1]
	add  r6, r6, r2
	add  r5, r5, 1
	setp.lt p0, r5, 32
@p0	bra Lloop
	mad  r3, %ctaid.x, %ntid.x, r0
	shl  r3, r3, 2
	add  r3, r3, 1024
	st.global [r3], r6
	exit
`
	run := func(l1 int) (*Result, *GPU) {
		c := testConfig()
		c.L1SizeKB = l1
		g, _ := New(c)
		k, _ := asm.Assemble("table", src)
		res, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}})
		if err != nil {
			t.Fatal(err)
		}
		return res, g
	}
	with, _ := run(16)
	without, _ := run(0)
	if with.Stats.L1Hits == 0 {
		t.Fatal("expected L1 hits")
	}
	if without.Stats.L1Hits != 0 {
		t.Fatal("disabled L1 must record no hits")
	}
	if with.Cycles >= without.Cycles {
		t.Fatalf("L1 should speed up table lookups: %d vs %d", with.Cycles, without.Cycles)
	}
}

func TestWakeupStallsRecorded(t *testing.T) {
	// With gating on, the very first writes hit gated banks and must pay
	// (and record) wakeup stalls.
	c := testConfig()
	_, res, _ := runKernel(t, c, tidKernelSrc, 2, 64, nil)
	if res.Stats.StallWakeup == 0 {
		t.Fatal("expected wakeup stalls on first writes to gated banks")
	}
	// Baseline (no gating) never stalls on wakeup.
	cb := BaselineConfig()
	cb.NumSMs = 2
	cb.GlobalMemBytes = 1 << 20
	_, res2, _ := runKernel(t, cb, tidKernelSrc, 2, 64, nil)
	if res2.Stats.StallWakeup != 0 {
		t.Fatal("baseline must not stall on wakeups")
	}
}

func TestCollectorLimitStalls(t *testing.T) {
	c := testConfig()
	c.Collectors = 1
	_, res, _ := runKernel(t, c, tidKernelSrc, 4, 256, nil)
	if res.Stats.StallCollector == 0 {
		t.Fatal("single collector should cause structural stalls")
	}
	c2 := testConfig()
	_, res2, _ := runKernel(t, c2, tidKernelSrc, 4, 256, nil)
	if res2.Cycles > res.Cycles {
		t.Fatalf("more collectors should not be slower: %d vs %d", res2.Cycles, res.Cycles)
	}
}

func TestRegisterPressureLimitsOccupancy(t *testing.T) {
	// A kernel using many registers must still run (occupancy shrinks).
	var src string
	src = "\tmov r0, %tid.x\n"
	for r := 1; r < 60; r++ {
		src += "\tadd r" + itoa(r) + ", r" + itoa(r-1) + ", 1\n"
	}
	src += "\tshl r60, r0, 2\n\tst.global [r60], r59\n\texit\n"
	g, res, _ := runKernel(t, testConfig(), src, 8, 256, nil)
	got, err := g.Mem().ReadInt32(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i)+59 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+59)
		}
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestEnergyEventsConsistent(t *testing.T) {
	c := testConfig()
	_, res, _ := runKernel(t, c, divergeKernelSrc, 4, 128, nil)
	ev := res.Energy
	if ev.BankAccesses != res.Stats.RF.BankReads+res.Stats.RF.BankWrites {
		t.Fatal("bank access events disagree with RF stats")
	}
	if ev.WireBeats != ev.BankAccesses {
		t.Fatal("each bank row access moves one 128-bit beat")
	}
	if ev.CompActs != res.Stats.CompActs || ev.DecompActs != res.Stats.DecompActs {
		t.Fatal("unit activation events disagree")
	}
	if ev.PoweredBankCycles > uint64(32)*res.Stats.RF.Cycles {
		t.Fatal("powered cycles exceed bank-cycles")
	}
	if ev.Cycles != res.Cycles {
		t.Fatal("cycle count mismatch")
	}
}

// TestCompressionRatioBounds: the bank-based ratio is always in [1, 8].
func TestCompressionRatioBounds(t *testing.T) {
	for _, src := range []string{tidKernelSrc, divergeKernelSrc, loopKernelSrc, divergentLoopSrc} {
		_, res, _ := runKernel(t, testConfig(), src, 2, 64, nil)
		for _, p := range []stats.Phase{stats.NonDivergent, stats.Divergent} {
			r := res.Stats.CompressionRatio(p)
			if r < 1-1e-12 || r > 8+1e-12 || math.IsNaN(r) {
				t.Fatalf("ratio %v out of [1,8]", r)
			}
		}
	}
}

// TestScalarizationSubset: a run restricted to <4,0> must never compress
// more registers than warped-compression on the same kernel.
func TestScalarizationSubset(t *testing.T) {
	run := func(m core.Mode) *Result {
		c := testConfig()
		c.Mode = m
		_, res, _ := runKernel(t, c, loopKernelSrc, 4, 128, nil)
		return res
	}
	only40 := run(core.ModeOnly40)
	wc := run(core.ModeWarped)
	c40 := only40.Stats.WritesByEnc[stats.NonDivergent][1] // Enc40 slot
	total40 := c40 + only40.Stats.WritesByEnc[stats.NonDivergent][2] + only40.Stats.WritesByEnc[stats.NonDivergent][3]
	if total40 != c40 {
		t.Fatal("ModeOnly40 stored a non-<4,0> compressed encoding")
	}
	var comprWC uint64
	for e := 1; e < stats.NumEncodings; e++ {
		comprWC += wc.Stats.WritesByEnc[stats.NonDivergent][e]
	}
	if c40 > comprWC {
		t.Fatalf("scalarization compressed more writes (%d) than warped (%d)", c40, comprWC)
	}
}

func TestAtomicConflictDegree(t *testing.T) {
	var addrs [32]uint32
	for i := range addrs {
		addrs[i] = uint32(4 * i)
	}
	if d := atomicConflictDegree(&addrs, 0xFFFFFFFF); d != 1 {
		t.Fatalf("distinct addresses: degree %d, want 1", d)
	}
	for i := range addrs {
		addrs[i] = 64
	}
	if d := atomicConflictDegree(&addrs, 0xFFFFFFFF); d != 32 {
		t.Fatalf("single address: degree %d, want 32", d)
	}
	if d := atomicConflictDegree(&addrs, 0x3); d != 2 {
		t.Fatalf("masked: degree %d, want 2", d)
	}
	if d := atomicConflictDegree(&addrs, 0); d != 1 {
		t.Fatalf("empty mask: degree %d, want 1", d)
	}
}

func TestSpecialRegisters(t *testing.T) {
	// Verify tid/ctaid/ntid/laneid/warpid geometry through a kernel that
	// stores every special.
	src := `
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0
	shl  r2, r1, 2
	mul  r3, r2, 4          // 4 words per thread
	mov  r4, %laneid
	mov  r5, %warpid
	mov  r6, %nctaid.x
	st.global [r3], r0
	st.global [r3+4], r4
	st.global [r3+8], r5
	st.global [r3+12], r6
	exit
`
	g, _, _ := runKernel(t, testConfig(), src, 3, 96, nil)
	for tid := 0; tid < 3*96; tid++ {
		vals, err := g.Mem().ReadInt32(uint32(16*tid), 4)
		if err != nil {
			t.Fatal(err)
		}
		local := tid % 96
		if vals[0] != int32(local) {
			t.Fatalf("thread %d: tid.x = %d, want %d", tid, vals[0], local)
		}
		if vals[1] != int32(local%32) {
			t.Fatalf("thread %d: laneid = %d, want %d", tid, vals[1], local%32)
		}
		if vals[2] != int32(local/32) {
			t.Fatalf("thread %d: warpid = %d, want %d", tid, vals[2], local/32)
		}
		if vals[3] != 3 {
			t.Fatalf("thread %d: nctaid = %d, want 3", tid, vals[3])
		}
	}
}

func TestRecompressPolicyCorrectness(t *testing.T) {
	// The recompress divergence policy must produce identical results and
	// keep divergent writes compressed (no dummy MOVs).
	c := testConfig()
	c.DivergencePolicy = "recompress"
	g, res, _ := runKernel(t, c, divergentLoopSrc, 2, 64, nil)
	got, err := g.Mem().ReadInt32(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := int32(i%4+1) * 10
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if res.Stats.DummyMovs != 0 {
		t.Fatalf("recompress policy must not inject MOVs, got %d", res.Stats.DummyMovs)
	}
	// Divergent-phase writes may carry compressed encodings under this
	// policy (the whole point of the ablation).
	var compressedDiv uint64
	for e := 1; e < stats.NumEncodings; e++ {
		compressedDiv += res.Stats.WritesByEnc[stats.Divergent][e]
	}
	if compressedDiv == 0 {
		t.Fatal("recompress policy produced no compressed divergent writes")
	}
}

package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func testWarp() *Warp {
	return newWarp(0, 0, 0, 0, 32, 8, 1)
}

func TestDivergeSplitsMask(t *testing.T) {
	w := testWarp()
	taken := uint32(0x0000FFFF)
	w.diverge(taken, 10, 3, 20)
	if len(w.stack) != 3 {
		t.Fatalf("stack depth %d, want 3", len(w.stack))
	}
	top := w.tos()
	if top.pc != 10 || top.mask != taken || top.rpc != 20 {
		t.Fatalf("taken entry wrong: %+v", top)
	}
	fall := w.stack[1]
	if fall.pc != 3 || fall.mask != ^taken || fall.rpc != 20 {
		t.Fatalf("fallthrough entry wrong: %+v", fall)
	}
	if w.stack[0].pc != 20 {
		t.Fatalf("reconvergence entry pc %d, want 20", w.stack[0].pc)
	}
}

func TestDivergeUniformTaken(t *testing.T) {
	w := testWarp()
	w.diverge(0xFFFFFFFF, 10, 3, 20)
	if len(w.stack) != 1 || w.pc() != 10 {
		t.Fatalf("uniform taken should just jump: depth %d pc %d", len(w.stack), w.pc())
	}
	w2 := testWarp()
	w2.diverge(0, 10, 3, 20)
	if len(w2.stack) != 1 || w2.pc() != 3 {
		t.Fatalf("uniform not-taken should fall through: depth %d pc %d", len(w2.stack), w2.pc())
	}
}

func TestReconvergencePops(t *testing.T) {
	w := testWarp()
	w.diverge(0x0000FFFF, 10, 3, 20)
	// Taken side reaches the reconvergence point.
	w.tos().pc = 20
	w.popReconverged()
	if w.pc() != 3 || w.activeMask() != 0xFFFF0000 {
		t.Fatalf("after taken pops: pc %d mask %#x", w.pc(), w.activeMask())
	}
	// Fallthrough side reaches it too: both pop, full mask resumes at 20.
	w.tos().pc = 20
	w.popReconverged()
	if w.pc() != 20 || w.activeMask() != 0xFFFFFFFF || len(w.stack) != 1 {
		t.Fatalf("after both pop: pc %d mask %#x depth %d", w.pc(), w.activeMask(), len(w.stack))
	}
}

func TestRetireThreads(t *testing.T) {
	w := testWarp()
	w.diverge(0x0000FFFF, 10, 3, 20)
	// Taken lanes exit.
	if done := w.retireThreads(0x0000FFFF); done {
		t.Fatal("warp should survive partial exit")
	}
	if w.launchMask != 0xFFFF0000 {
		t.Fatalf("launch mask %#x", w.launchMask)
	}
	// The dead taken entry must have been popped.
	if w.pc() != 3 || w.activeMask() != 0xFFFF0000 {
		t.Fatalf("pc %d mask %#x after exit", w.pc(), w.activeMask())
	}
	if done := w.retireThreads(0xFFFF0000); !done {
		t.Fatal("warp should finish when all lanes exit")
	}
	if w.state != warpFinished {
		t.Fatal("state not finished")
	}
}

func TestPartialWarpLaunchMask(t *testing.T) {
	w := newWarp(0, 0, 0, 0, 20, 4, 1)
	if w.launchMask != (1<<20)-1 {
		t.Fatalf("launch mask %#x for 20 threads", w.launchMask)
	}
	if w.activeMask() != w.launchMask {
		t.Fatal("initial active mask must equal launch mask")
	}
}

func TestGuardMask(t *testing.T) {
	w := testWarp()
	w.preds[2] = 0x0F0F0F0F
	in := testInstrGuard(2, false)
	if got := w.guardMask(&in); got != 0x0F0F0F0F {
		t.Fatalf("guard %#x", got)
	}
	inNeg := testInstrGuard(2, true)
	if got := w.guardMask(&inNeg); got != 0xF0F0F0F0 {
		t.Fatalf("negated guard %#x", got)
	}
	unguarded := testInstrGuard(0xFF, false) // PredNone
	if got := w.guardMask(&unguarded); got != 0xFFFFFFFF {
		t.Fatalf("unguarded %#x", got)
	}
}

// TestStackMaskInvariant: after any sequence of diverge/pop/retire
// operations, stack masks are properly nested (each entry's mask contains
// the masks of entries above it) and the TOS mask is within launchMask.
func TestStackMaskInvariant(t *testing.T) {
	type op struct {
		Taken  uint32
		Retire uint32
		Kind   uint8
	}
	f := func(ops []op) bool {
		w := testWarp()
		for _, o := range ops {
			if len(w.stack) == 0 {
				break
			}
			switch o.Kind % 3 {
			case 0: // diverge from current active mask
				taken := o.Taken & w.activeMask()
				w.diverge(taken, 5, 6, 7)
			case 1: // reach reconvergence
				w.tos().pc = w.tos().rpc
				w.popReconverged()
			case 2: // some active lanes exit
				w.retireThreads(o.Retire & w.activeMask())
			}
			// Invariants.
			if len(w.stack) == 0 {
				if w.state != warpFinished {
					return false
				}
				break
			}
			if w.activeMask() & ^w.launchMask != 0 {
				return false
			}
			if w.activeMask() == 0 {
				return false // popReconverged must drop dead entries
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func testInstrGuard(p uint8, neg bool) (in isa.Instr) {
	in.Pred = isa.PredReg(p)
	in.PredNeg = neg
	return in
}

func TestRFCInsertLRU(t *testing.T) {
	w := testWarp()
	if _, _, evicted := w.rfcInsert(1, 2); evicted {
		t.Fatal("insert into empty cache evicted")
	}
	if _, _, evicted := w.rfcInsert(2, 2); evicted {
		t.Fatal("insert into non-full cache evicted")
	}
	// Touch r1 so r2 becomes LRU.
	if !w.rfcLookup(1) {
		t.Fatal("r1 should be resident")
	}
	ev, dirty, evicted := w.rfcInsert(3, 2)
	if !evicted || ev != 2 || !dirty {
		t.Fatalf("expected dirty eviction of r2, got reg=%d dirty=%v evicted=%v", ev, dirty, evicted)
	}
	// Rewriting a resident register must not evict.
	if _, _, evicted := w.rfcInsert(1, 2); evicted {
		t.Fatal("rewrite of resident register evicted")
	}
}

func TestCountBits(t *testing.T) {
	if countBits(0) != 0 || countBits(0xFFFFFFFF) != 32 || countBits(0x0000FFFF) != 16 {
		t.Fatal("countBits")
	}
}

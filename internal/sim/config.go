// Package sim is the cycle-level SIMT GPU model: streaming multiprocessors
// with dual warp schedulers, a scoreboard, operand collectors over the
// banked register file, functional-unit pipelines, a coalescing global
// memory path, SIMT-stack divergence handling and the warped-compression
// write/read paths (compressor and decompressor units, dummy MOV injection,
// bank power gating).
//
// It plays the role GPGPU-Sim plays in the paper: the timing substrate whose
// event counts feed the energy model. Functional execution happens at issue
// (register values and memory are architecturally updated immediately, in
// issue order, which the scoreboard keeps dependence-correct); the timing
// pipeline then models when banks, compressors, functional units and the
// memory system are busy.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/regfile"
)

// Config carries every microarchitectural parameter of paper Table 2 plus
// the design-space knobs of §6.6-6.8.
type Config struct {
	// Core organization (Table 2).
	NumSMs          int // 15
	SchedulersPerSM int // 2
	MaxWarpsPerSM   int // 48
	MaxCTAsPerSM    int // CTAs resident per SM (8, Fermi-like)
	Collectors      int // operand collector units per SM

	// Scheduling policy: "gto" (default) or "lrr" (§6.5).
	Scheduler string

	// Warped-compression configuration.
	Mode core.Mode
	// Compression names the registered compression backend (schemes/v1:
	// "bdi", "static", "fpc"; see core.Schemes). The empty string is the
	// legacy spelling of core.DefaultScheme ("bdi"), so configurations
	// that predate the registry keep byte-identical results and signature
	// identity. The fixed-choice modes (ModeOnly40/41/42) are BDI
	// design-space points and only combine with the bdi scheme.
	Compression string
	// DivergencePolicy selects how divergent writes interact with
	// compressed registers (paper §5.2):
	//   "uncompressed" (default): store divergent writes uncompressed,
	//       injecting a dummy MOV to decompress the destination first;
	//   "recompress": read-merge-recompress through an intermediate buffer
	//       (the alternative the paper describes and rejects for its
	//       buffer cost; modeled here for the ablation study).
	DivergencePolicy  string
	Compressors       int // 2 per SM
	Decompressors     int // 4 per SM
	CompressLatency   int // 2 cycles default, swept in Fig 20
	DecompressLatency int // 1 cycle default, swept in Fig 21
	PowerGating       bool
	BankWakeupLatency int // 10 cycles
	// DrowsyAfter enables the drowsy-register-file comparator: idle
	// powered banks drop to a data-retentive low-leakage state after this
	// many cycles (0 disables; abl5-drowsy uses 100).
	DrowsyAfter int

	// RFCEntries enables the register file cache comparator (Gebhart et
	// al., the paper's §7 rival approach): a small per-warp, write-back,
	// write-allocate cache of recently written warp registers between the
	// main banks and the execution units. 0 disables it. Meant to be used
	// with compression off; see the abl4-rfc experiment.
	RFCEntries int

	// Functional unit pipeline depths.
	ALULatency int
	SFULatency int

	// Memory system.
	GlobalMemBytes    int // device memory capacity
	GlobalLatency     int // cycles to DRAM
	GlobalMaxInflight int // outstanding transactions per SM
	SharedLatency     int // shared memory access cycles
	L1SizeKB          int // per-SM L1 data cache size (0 disables)
	L1Ways            int // L1 associativity
	L1HitLatency      int // L1 hit latency in cycles

	// CharacterizeWrites enables the paper §3 value-similarity histograms
	// (Figs 2 and 5) on every register write.
	CharacterizeWrites bool

	// Faults configures deterministic register-file fault injection
	// (internal/faults): permanent stuck-at bank failures, transient
	// write-back bit flips and RRCD-style redirection of compressed
	// registers into healthy banks. The zero value disables injection.
	Faults faults.Config

	// MaxCycles aborts runaway simulations.
	MaxCycles uint64

	// SMParallel shards the per-cycle SM loop across worker goroutines: each
	// worker owns a contiguous slice of SMs and global-memory effects commit
	// at epoch barriers in SM-id order, so results are byte-identical at
	// every shard count. 0 (the default) means min(GOMAXPROCS, NumSMs); a
	// positive value is clamped to NumSMs. SMParallel never changes results,
	// so it is exempt from the configuration signature.
	SMParallel int

	// SMEpoch is the number of cycles each shard simulates between global
	// commit barriers. 0 (the default) means 1: commit every cycle, the
	// configuration whose results are byte-identical to the original
	// sequential engine. Larger epochs amortize barrier cost but change
	// timing (CTA dispatch and idle detection happen only at epoch
	// boundaries), so SMEpoch participates in the configuration signature.
	// Deferred atomics must resolve before the pipeline consumes their old
	// values, which bounds SMEpoch to at most GlobalLatency.
	SMEpoch int
}

// DefaultConfig returns paper Table 2 with warped-compression enabled.
func DefaultConfig() Config {
	return Config{
		NumSMs:          15,
		SchedulersPerSM: 2,
		MaxWarpsPerSM:   48,
		MaxCTAsPerSM:    8,
		Collectors:      8,

		Scheduler: "gto",

		Mode:              core.ModeWarped,
		DivergencePolicy:  "uncompressed",
		Compressors:       2,
		Decompressors:     4,
		CompressLatency:   2,
		DecompressLatency: 1,
		PowerGating:       true,
		BankWakeupLatency: 10,

		ALULatency: 4,
		SFULatency: 8,

		GlobalMemBytes:    64 << 20,
		GlobalLatency:     200,
		GlobalMaxInflight: 64,
		SharedLatency:     24,
		L1SizeKB:          16,
		L1Ways:            4,
		L1HitLatency:      30,

		MaxCycles: 200_000_000,
	}
}

// BaselineConfig is DefaultConfig with compression and gating off: the
// paper's no-compression baseline.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Mode = core.ModeOff
	c.PowerGating = false
	return c
}

// ConfigError is a typed Config validation failure: which field (or field
// combination) is impossible and why. All Validate errors are *ConfigError
// except fault-model failures, which surface as *faults.ConfigError.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid %s: %s", e.Field, e.Reason)
}

// Validate rejects nonsensical parameter combinations with typed errors.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs < 1:
		return &ConfigError{"NumSMs", "need at least one SM"}
	case c.SchedulersPerSM < 1:
		return &ConfigError{"SchedulersPerSM", "need at least one scheduler"}
	case c.MaxWarpsPerSM < 1 || c.MaxWarpsPerSM%c.SchedulersPerSM != 0:
		return &ConfigError{"MaxWarpsPerSM", fmt.Sprintf("%d is not a positive multiple of the %d schedulers", c.MaxWarpsPerSM, c.SchedulersPerSM)}
	case !regfile.FitsWarps(1, 1):
		// Unreachable with the compiled-in geometry; guards refactors.
		return &ConfigError{"MaxWarpsPerSM", "register file cannot hold a single warp register"}
	case c.MaxCTAsPerSM < 1:
		return &ConfigError{"MaxCTAsPerSM", "need at least one CTA slot"}
	case c.Collectors < 1:
		return &ConfigError{"Collectors", "need at least one operand collector"}
	case c.Compressors < 1:
		return &ConfigError{"Compressors", "need at least one compressor"}
	case c.Decompressors < 1:
		return &ConfigError{"Decompressors", "need at least one decompressor"}
	case c.CompressLatency < 0 || c.DecompressLatency < 0:
		return &ConfigError{"CompressLatency", "negative compression latency"}
	case c.ALULatency < 1 || c.SFULatency < 1:
		return &ConfigError{"ALULatency", "functional unit latencies must be >= 1"}
	case c.GlobalMemBytes < 4096:
		return &ConfigError{"GlobalMemBytes", "device memory too small (minimum 4096 bytes)"}
	case c.GlobalLatency < 1 || c.GlobalMaxInflight < 1 || c.SharedLatency < 1:
		return &ConfigError{"GlobalLatency", "memory timings must be >= 1"}
	case c.L1SizeKB < 0 || (c.L1SizeKB > 0 && (c.L1Ways < 1 || c.L1HitLatency < 1)):
		return &ConfigError{"L1SizeKB", "invalid L1 cache configuration"}
	case c.BankWakeupLatency < 0:
		return &ConfigError{"BankWakeupLatency", "negative wakeup latency"}
	case c.MaxCycles == 0:
		return &ConfigError{"MaxCycles", "must be positive"}
	case c.Scheduler != "gto" && c.Scheduler != "lrr":
		return &ConfigError{"Scheduler", fmt.Sprintf("unknown scheduler %q (have gto, lrr)", c.Scheduler)}
	case c.DivergencePolicy != "" && c.DivergencePolicy != "uncompressed" && c.DivergencePolicy != "recompress":
		return &ConfigError{"DivergencePolicy", fmt.Sprintf("unknown policy %q (have uncompressed, recompress)", c.DivergencePolicy)}
	case c.RFCEntries < 0:
		return &ConfigError{"RFCEntries", "negative RFC size"}
	case c.DrowsyAfter < 0:
		return &ConfigError{"DrowsyAfter", "negative drowsy threshold"}
	case c.RFCEntries > 0 && c.Mode.Enabled():
		return &ConfigError{"RFCEntries", "the RFC comparator and warped-compression are mutually exclusive"}
	case c.Faults.Redirect && !c.Mode.Enabled():
		return &ConfigError{"Faults.Redirect", "RRCD redirection needs compression (only compressed registers can move banks)"}
	case c.SMParallel < 0:
		return &ConfigError{"SMParallel", "negative shard count (0 selects GOMAXPROCS)"}
	case c.SMEpoch < 0:
		return &ConfigError{"SMEpoch", "negative epoch length (0 selects 1 cycle)"}
	case c.SMEpoch > c.GlobalLatency:
		return &ConfigError{"SMEpoch", fmt.Sprintf("epoch of %d cycles exceeds GlobalLatency %d (deferred atomics must commit before the pipeline consumes their old values)", c.SMEpoch, c.GlobalLatency)}
	case !core.SchemeRegistered(c.Compression):
		return &ConfigError{"Compression", fmt.Sprintf("unknown compression scheme %q (registered: %v)", c.Compression, core.Schemes())}
	case c.CompressionScheme() != core.DefaultScheme &&
		(c.Mode == core.ModeOnly40 || c.Mode == core.ModeOnly41 || c.Mode == core.ModeOnly42):
		return &ConfigError{"Compression", fmt.Sprintf("mode %s is a BDI design-space point; scheme %q only supports off/warped", c.Mode, c.CompressionScheme())}
	}
	return c.Faults.Validate(regfile.NumBanks)
}

// CompressionScheme returns the resolved compression backend name: the
// configured scheme, or core.DefaultScheme when the field is empty. Use
// this accessor — not the raw field — anywhere the name is compared,
// signed or displayed, so the legacy empty spelling can never alias.
func (c *Config) CompressionScheme() string {
	return core.ResolveScheme(c.Compression)
}

// ApplyCompression interprets a -compression flag value: a registered
// scheme name ("bdi", "static", "fpc"), the policy spellings "off" and
// "warped", or a BDI fixed-choice mode ("only40", "only41", "only42").
// Scheme names enable compression (ModeWarped) under that backend; "off"
// also disables bank power gating, matching the paper's baseline.
func (c *Config) ApplyCompression(v string) error {
	switch v {
	case "off":
		c.Mode = core.ModeOff
		c.PowerGating = false
	case "warped", "bdi":
		c.Mode = core.ModeWarped
		c.Compression = core.DefaultScheme
	case "only40":
		c.Mode = core.ModeOnly40
		c.Compression = core.DefaultScheme
	case "only41":
		c.Mode = core.ModeOnly41
		c.Compression = core.DefaultScheme
	case "only42":
		c.Mode = core.ModeOnly42
		c.Compression = core.DefaultScheme
	default:
		if !core.SchemeRegistered(v) {
			return &ConfigError{"Compression", fmt.Sprintf("unknown compression %q (have off, warped, only40, only41, only42, or a registered scheme: %v)", v, core.Schemes())}
		}
		c.Mode = core.ModeWarped
		c.Compression = v
	}
	return nil
}

package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"repro/internal/asm"
	"repro/internal/faults"
	"repro/internal/isa"
)

// arithKernelSrc computes without storing, so corrupted registers can never
// turn into wild memory addresses — ideal for determinism checks.
const arithKernelSrc = `
	mov  r0, %tid.x
	add  r1, r0, r0
	mad  r2, r1, r0, r1
	shl  r3, r2, 1
	exit
`

func runFaultKernel(t *testing.T, c Config, src string) (*GPU, *Result) {
	t.Helper()
	g, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k, err := asm.Assemble("flt", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, err := g.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return g, res
}

// TestFaultInjectionDeterministic: the whole contract — a fixed fault seed
// produces byte-identical result JSON on every run.
func TestFaultInjectionDeterministic(t *testing.T) {
	c := testConfig()
	c.Faults = faults.Config{Seed: 7, StuckAtBanks: 2, TransientPerM: 200_000}
	_, r1 := runFaultKernel(t, c, arithKernelSrc)
	_, r2 := runFaultKernel(t, c, arithKernelSrc)
	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("fault runs diverged:\n%s\nvs\n%s", j1, j2)
	}
	if r1.Stats.FaultTransientFlips == 0 {
		t.Fatal("20% transient rate produced no flips")
	}
	if r1.Stats.FaultStuckWrites == 0 || r1.Stats.FaultCorruptedLanes == 0 {
		t.Fatalf("2 stuck banks corrupted nothing: %+v", r1.Stats)
	}
}

// TestFaultFreeResultsUnchanged: with injection off, the fault counters stay
// zero and (being omitempty) the marshaled JSON carries no fault keys at
// all — old consumers see byte-compatible documents.
func TestFaultFreeResultsUnchanged(t *testing.T) {
	_, res := runFaultKernel(t, testConfig(), arithKernelSrc)
	if res.Stats.FaultStuckWrites != 0 || res.Stats.FaultTransientFlips != 0 || res.Stats.FaultCorruptedLanes != 0 {
		t.Fatalf("fault counters nonzero without injection: %+v", res.Stats)
	}
	j, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fault_stuck_writes", "fault_transient_flips", "fault_corrupted_lanes", "redirected_writes"} {
		if bytes.Contains(j, []byte(key)) {
			t.Fatalf("fault-free JSON contains %q", key)
		}
	}
}

// TestRedirectProtectsCompressed: the tid kernel's writes are all
// compressible, so with RRCD redirection on, a lightly-faulted register file
// (at most 2 stuck banks per 8-bank cluster, Enc needs <= 3) steers every
// write into healthy banks: the kernel output stays correct and no stuck
// write happens, while the same seed without redirection corrupts lanes.
func TestRedirectProtectsCompressed(t *testing.T) {
	faultCfg := faults.Config{Seed: 11, StuckAtBanks: 2}

	c := testConfig()
	c.Faults = faultCfg
	c.Faults.Redirect = true
	g, res := runFaultKernel(t, c, tidKernelSrc)
	got, err := g.Mem().ReadInt32(0, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("redirected run corrupted out[%d] = %d", i, v)
		}
	}
	if res.Stats.FaultStuckWrites != 0 {
		t.Fatalf("redirection left %d stuck writes", res.Stats.FaultStuckWrites)
	}
	if res.Stats.RF.RedirectedWrites == 0 {
		t.Fatal("no writes counted as redirected (pick a seed whose faults overlap the placement prefix)")
	}

	// Same faults without redirection: compressed writes route through the
	// stuck banks and the corruption propagates into the store addresses —
	// the launch either crashes on a wild access or completes with stuck
	// writes counted and wrong output. Seed 11 deterministically picks one.
	c = testConfig()
	c.Faults = faultCfg
	g2, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	k, err := asm.Assemble("flt", tidKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := g2.Run(isa.Launch{Kernel: k, Grid: isa.Dim3{X: 4}, Block: isa.Dim3{X: 64}})
	if err == nil {
		if res2.Stats.FaultStuckWrites == 0 {
			t.Fatal("unredirected run hit no stuck bank (seed must overlap used banks)")
		}
		if res2.Stats.RF.RedirectedWrites != 0 {
			t.Fatalf("redirect off but %d redirected writes", res2.Stats.RF.RedirectedWrites)
		}
		out, err := g2.Mem().ReadInt32(0, 4*64)
		if err != nil {
			t.Fatal(err)
		}
		clean := true
		for i, v := range out {
			if v != int32(i) {
				clean = false
				break
			}
		}
		if clean {
			t.Fatal("unredirected faulty run produced correct output")
		}
	}
}

// TestRunContextBeat: the heartbeat advances while a long kernel runs.
func TestRunContextBeat(t *testing.T) {
	g, l := spinLaunch(t, 20_000)
	var beat atomic.Uint64
	res, err := g.RunContextBeat(context.Background(), l, &beat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < cancelCheckInterval {
		t.Fatalf("spin kernel too short (%d cycles) to exercise the beat", res.Cycles)
	}
	if beat.Load() == 0 {
		t.Fatal("heartbeat never stored progress")
	}
	if beat.Load() > res.Stats.Instructions {
		t.Fatalf("beat %d exceeds issued instructions %d", beat.Load(), res.Stats.Instructions)
	}
}

package valueprof

import (
	"repro/internal/core"
	"repro/internal/isa"
)

// This file is the profiling/derivation half of the "static" compression
// scheme (Angerd et al., arXiv 2006.05693): a compile-time value-shape
// analysis over the kernel image that assigns every architectural
// destination register a fixed encoding class for the whole kernel. The
// runtime half (core's staticScheme) only verifies that each written value
// still fits its preassigned class and falls back to uncompressed when it
// does not, so the table is an optimization hint, never a correctness
// obligation — which is also why the coarse points of the analysis below
// (2-D thread blocks, shift overflow) are safe.

// shape abstracts the per-lane value vector of one register: every lane
// holds base + stride*lane for some warp-uniform base. Uniform values are
// stride 0; shapeUnknown means no affine description holds.
type shape struct {
	kind   uint8
	stride int64
}

const (
	shapeUnset   uint8 = iota // never written (lattice bottom)
	shapeAffine               // lane value = base + stride*lane
	shapeUnknown              // anything (lattice top)
)

func affineShape(stride int64) shape { return shape{kind: shapeAffine, stride: stride} }

var unknown = shape{kind: shapeUnknown}

// join widens toward shapeUnknown; affine shapes only survive a join with
// an identical stride.
func join(a, b shape) shape {
	switch {
	case a.kind == shapeUnset:
		return b
	case b.kind == shapeUnset:
		return a
	case a.kind == shapeAffine && b.kind == shapeAffine && a.stride == b.stride:
		return a
	}
	return unknown
}

// operandShape evaluates a source operand under the current register shapes.
func operandShape(o isa.Operand, regs []shape) shape {
	switch o.Kind {
	case isa.OperandImm:
		return affineShape(0)
	case isa.OperandReg:
		if int(o.Reg) < len(regs) {
			return regs[o.Reg]
		}
		return unknown
	case isa.OperandSpecial:
		switch o.Spec {
		case isa.SpecLaneID:
			// laneid is lane-affine by definition.
			return affineShape(1)
		case isa.SpecTidX:
			// Exact for 1-D thread blocks (the common case in the
			// suite); 2-D blocks can wrap tid.x inside a warp, which
			// the runtime fit check absorbs.
			return affineShape(1)
		default:
			// ctaid/ntid/nctaid/warpid/params are warp-uniform.
			return affineShape(0)
		}
	}
	return unknown
}

// transfer computes the shape an instruction writes to its destination.
func transfer(in *isa.Instr, regs []shape) shape {
	s0 := operandShape(in.Srcs[0], regs)
	s1 := operandShape(in.Srcs[1], regs)
	s2 := operandShape(in.Srcs[2], regs)
	mul := func(a, b shape) shape {
		switch {
		case a.kind != shapeAffine || b.kind != shapeAffine:
			return unknown
		case a.stride == 0 && b.stride == 0:
			return affineShape(0)
		// base*(c + s*lane) is lane-affine only when the varying side
		// is scaled by a compile-time constant; an immediate operand
		// is the one base the analysis can name.
		case a.stride == 0 && in.Srcs[0].Kind == isa.OperandImm:
			return affineShape(b.stride * int64(in.Srcs[0].Imm))
		case b.stride == 0 && in.Srcs[1].Kind == isa.OperandImm:
			return affineShape(a.stride * int64(in.Srcs[1].Imm))
		}
		return unknown
	}
	add := func(a, b shape) shape {
		if a.kind != shapeAffine || b.kind != shapeAffine {
			return unknown
		}
		return affineShape(a.stride + b.stride)
	}
	uniformOnly := func(ss ...shape) shape {
		for _, s := range ss {
			if s.kind != shapeAffine || s.stride != 0 {
				return unknown
			}
		}
		return affineShape(0)
	}
	switch in.Op {
	case isa.OpMov:
		return s0
	case isa.OpAdd:
		return add(s0, s1)
	case isa.OpSub:
		if s0.kind == shapeAffine && s1.kind == shapeAffine {
			return affineShape(s0.stride - s1.stride)
		}
		return unknown
	case isa.OpMul:
		return mul(s0, s1)
	case isa.OpMad:
		return add(mul(s0, s1), s2)
	case isa.OpShl:
		if in.Srcs[1].Kind == isa.OperandImm && s0.kind == shapeAffine {
			return affineShape(s0.stride << (uint32(in.Srcs[1].Imm) & 31))
		}
		return uniformOnly(s0, s1)
	case isa.OpFMA:
		return uniformOnly(s0, s1, s2)
	case isa.OpMin, isa.OpMax, isa.OpAbs, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpNot, isa.OpShr, isa.OpSra, isa.OpDiv, isa.OpRem,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFMin,
		isa.OpFMax, isa.OpFRcp, isa.OpFSqrt:
		// Uniform in, uniform out: identical lane inputs give identical
		// lane outputs. Affine inputs do not survive these bitwise /
		// non-linear ops in any shape the table could name.
		switch in.Op {
		case isa.OpAbs, isa.OpNot, isa.OpFRcp, isa.OpFSqrt:
			return uniformOnly(s0)
		default:
			return uniformOnly(s0, s1)
		}
	}
	// SelP (lane-divergent select), loads and atomics produce values the
	// kernel image cannot bound.
	return unknown
}

// StaticTable derives the per-register encoding table the "static"
// compression scheme binds for kernel k: a flow-insensitive fixpoint of the
// value-shape transfer over the whole code (guarded writes join with the
// previous shape implicitly, since the fixpoint only widens), then the
// narrowest BDI class whose worst lane delta the shape provably fits.
//
// The table is a pure function of the kernel image — no execution, no
// profile input — so record, replay and every SM-shard count derive the
// identical table.
func StaticTable(k *isa.Kernel) []core.Encoding {
	n := k.NumRegs
	if n <= 0 || n > isa.MaxRegs {
		n = isa.MaxRegs
	}
	regs := make([]shape, n)
	for changed := true; changed; {
		changed = false
		for i := range k.Code {
			in := &k.Code[i]
			if !in.HasDst() || int(in.Dst) >= n {
				continue
			}
			next := join(regs[in.Dst], transfer(in, regs))
			if next != regs[in.Dst] {
				regs[in.Dst] = next
				changed = true
			}
		}
	}
	table := make([]core.Encoding, n)
	for r, s := range regs {
		table[r] = encodingForShape(s)
	}
	return table
}

// encodingForShape picks the narrowest class whose per-lane delta range
// covers stride*31 (lane 0 is the base, lane 31 the worst case).
func encodingForShape(s shape) core.Encoding {
	if s.kind != shapeAffine {
		return core.EncUncompressed
	}
	d := s.stride * 31
	switch {
	case d == 0:
		return core.Enc40
	case d >= -128 && d < 128:
		return core.Enc41
	case d >= -32768 && d < 32768:
		return core.Enc42
	}
	return core.EncUncompressed
}

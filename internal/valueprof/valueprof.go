// Package valueprof characterizes register write values the way paper §3 does:
// successive-lane arithmetic distances binned into zero / 128 / 32K / random
// (Fig 2) and the full-BDI best-parameter breakdown (Fig 5).
package valueprof

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Distance returns the arithmetic distance |a - b| between two thread
// register values interpreted as 32-bit two's complement integers, as a
// non-negative 64-bit value (so -2^31 vs 2^31-1 does not overflow).
func Distance(a, b uint32) uint64 {
	d := int64(int32(a)) - int64(int32(b))
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// BinOf classifies one warp register write: the smallest Fig 2 bin that
// contains every successive-lane distance.
func BinOf(vals *core.WarpReg) stats.Bin {
	bin := stats.BinZero
	for i := 0; i+1 < len(vals); i++ {
		d := Distance(vals[i+1], vals[i])
		var b stats.Bin
		switch {
		case d == 0:
			b = stats.BinZero
		case d <= 128:
			b = stats.Bin128
		case d <= 1<<15:
			b = stats.Bin32K
		default:
			return stats.BinRandom
		}
		if b > bin {
			bin = b
		}
	}
	return bin
}

// ExplorerChoice returns the Fig 5 histogram slot for a write: the index
// into core.ExplorerParams of the best full-BDI parameter choice, or
// UncompressedChoice when nothing compresses.
func ExplorerChoice(vals *core.WarpReg) int {
	var buf [core.WarpBytes]byte
	best, ok := core.BestParams(vals.AppendBytes(buf[:0]))
	if !ok {
		return UncompressedChoice
	}
	for i, p := range core.ExplorerParams {
		if p == best {
			return i
		}
	}
	return UncompressedChoice
}

// UncompressedChoice is the histogram slot for writes no explorer parameter
// could compress; it follows the 7 core.ExplorerParams slots.
const UncompressedChoice = 7

// ChoiceName labels a Fig 5 histogram slot.
func ChoiceName(i int) string {
	if i >= 0 && i < len(core.ExplorerParams) {
		return core.ExplorerParams[i].String()
	}
	return "uncompressed"
}

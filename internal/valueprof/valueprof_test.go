package valueprof

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

func affine(base, stride int32) *core.WarpReg {
	var w core.WarpReg
	for i := range w {
		w[i] = uint32(base + int32(i)*stride)
	}
	return &w
}

func TestDistance(t *testing.T) {
	if Distance(5, 5) != 0 || Distance(5, 7) != 2 || Distance(7, 5) != 2 {
		t.Fatal("small distances")
	}
	if Distance(0, 0xFFFFFFFF) != 1 {
		t.Fatal("distance of 0 and -1 must be 1")
	}
	// INT_MIN vs INT_MAX: |(-2^31) - (2^31-1)| = 2^32-1, no overflow.
	if Distance(0x80000000, 0x7FFFFFFF) != (1<<32)-1 {
		t.Fatal("extreme distance overflowed")
	}
}

func TestBinOf(t *testing.T) {
	cases := []struct {
		name string
		vals *core.WarpReg
		want stats.Bin
	}{
		{"uniform", affine(42, 0), stats.BinZero},
		{"stride1", affine(0, 1), stats.Bin128},
		{"stride128", affine(0, 128), stats.Bin128},
		{"stride129", affine(0, 129), stats.Bin32K},
		{"stride32768", affine(0, 32768), stats.Bin32K},
		{"stride32769", affine(0, 32769), stats.BinRandom},
	}
	for _, c := range cases {
		if got := BinOf(c.vals); got != c.want {
			t.Errorf("%s: bin %v, want %v", c.name, got, c.want)
		}
	}
	// One bad pair dominates: the write is classified by its worst pair.
	w := affine(0, 1)
	w[17] = 1 << 30
	if got := BinOf(w); got != stats.BinRandom {
		t.Errorf("outlier pair: bin %v, want random", got)
	}
}

func TestExplorerChoice(t *testing.T) {
	if got := ExplorerChoice(affine(7, 0)); ChoiceName(got) != "<4,0>" {
		t.Errorf("uniform chose %s", ChoiceName(got))
	}
	if got := ExplorerChoice(affine(1000, 4)); ChoiceName(got) != "<4,1>" {
		t.Errorf("stride-4 chose %s", ChoiceName(got))
	}
	if got := ExplorerChoice(affine(0, 300)); ChoiceName(got) != "<4,2>" {
		t.Errorf("stride-300 chose %s", ChoiceName(got))
	}
	var random core.WarpReg
	for i := range random {
		random[i] = uint32(i) * 0x9E3779B9
	}
	if got := ExplorerChoice(&random); got != UncompressedChoice {
		t.Errorf("random data chose %s", ChoiceName(got))
	}
	if ChoiceName(UncompressedChoice) != "uncompressed" {
		t.Error("choice name for uncompressed slot")
	}
}

// TestChoiceInRange: the histogram slot is always valid.
func TestChoiceInRange(t *testing.T) {
	f := func(w core.WarpReg) bool {
		c := ExplorerChoice(&w)
		return c >= 0 && c < stats.NumExplorerChoices
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestBinConsistentWithCompressibility: a write in the zero bin is always
// <4,0>-compressible with the warp's first lane as base... only when all
// lanes are equal; check that BinZero implies Enc40.
func TestBinConsistentWithCompressibility(t *testing.T) {
	f := func(w core.WarpReg) bool {
		if BinOf(&w) == stats.BinZero {
			return core.ModeWarped.Choose(&w) == core.Enc40
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

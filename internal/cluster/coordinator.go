// Package cluster turns a fleet of warpedd workers into one logical
// simulation service: a coordinator that shards an experiment campaign
// (internal/sweep) across workers over the public /v1/jobs HTTP API.
//
// Placement is rendezvous hashing on the job key — benchmark name plus
// the versioned experiments.ConfigSignature — so a configuration always
// lands on the same worker while the fleet is stable. That single
// decision extends both single-node caching layers cluster-wide: repeat
// configurations hit their home worker's LRU result cache, and concurrent
// duplicates coalesce in its single-flight engine. Health is tracked by a
// registry (periodic /readyz probes, exponential-backoff quarantine);
// per-job progress is multiplexed from the workers' SSE feeds, resuming
// broken streams with Last-Event-ID; transient failures retry on the same
// worker and a dead worker's jobs fail over to the next rendezvous
// candidate. The merged campaign report is deterministic — byte-identical
// to a single-node run of the same spec. See DESIGN.md §14.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/sweep"
)

// Options tunes a Coordinator. The zero value is usable.
type Options struct {
	// Concurrency bounds in-flight jobs across the whole cluster;
	// <= 0 means 4 per worker — enough to keep every worker's pool and
	// queue warm without flooding admission control.
	Concurrency int
	// WorkerAttempts is how many times a transiently failing operation
	// (queue-full submit, broken event stream) is retried against the
	// same worker before it is declared down (default 3).
	WorkerAttempts int
	// RetryBackoff is the delay before the first same-worker retry,
	// doubling per attempt (default 200ms).
	RetryBackoff time.Duration
	// Client issues all job traffic. The default has no global timeout:
	// SSE streams are long-lived by design, and every request carries the
	// sweep's context anyway.
	Client *http.Client
	// APIKey, when set, is sent as X-API-Key on every job request, for
	// fleets running with a -tenants roster.
	APIKey string
	// Progress, when set, receives coordinator events (calls serialized).
	Progress func(Event)
}

// Event is one entry of the coordinator's progress stream: job lifecycle
// decisions (placement, failover) plus the multiplexed per-job worker
// events.
type Event struct {
	// Kind: "assign", "cache-hit", "worker-event", "worker-down",
	// "failover", "done", "failed".
	Kind string
	// Job is the spec job's identity, "config/benchmark".
	Job string
	// Worker is the base URL of the worker involved.
	Worker string
	// Detail is human-readable context: the worker event kind, the
	// failure, the failover reason.
	Detail string
}

// Coordinator shards campaigns across a worker registry. Build with New.
type Coordinator struct {
	reg  *Registry
	api  *apiClient
	opts Options

	progressMu sync.Mutex
}

// New builds a Coordinator over reg.
func New(reg *Registry, opts Options) *Coordinator {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4 * len(reg.All())
	}
	if opts.WorkerAttempts <= 0 {
		opts.WorkerAttempts = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 200 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	return &Coordinator{reg: reg, api: &apiClient{http: opts.Client, apiKey: opts.APIKey}, opts: opts}
}

// RunSweep executes every job of the spec across the cluster and merges
// the outcomes into the deterministic campaign report. Job-level failures
// do not abort the sweep — they become report entries (check
// Report.Failed) — but a canceled context does, returning its error.
func (c *Coordinator) RunSweep(ctx context.Context, spec *sweep.Spec) (*Report, error) {
	specJobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, len(specJobs))
	sem := make(chan struct{}, c.opts.Concurrency)
	var wg sync.WaitGroup
	for i, js := range specJobs {
		wg.Add(1)
		go func(i int, js sweep.Job) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				entries[i] = errorEntry(js, ctx.Err())
				return
			}
			entries[i] = c.runJob(ctx, js)
		}(i, js)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, fmt.Errorf("cluster: sweep %s aborted: %w", spec.Name, ctx.Err())
	}
	return &Report{Schema: ReportSchema, Name: spec.Name, Entries: entries}, nil
}

func errorEntry(js sweep.Job, err error) Entry {
	sig := experiments.ConfigSignature(&js.Config)
	return Entry{Config: js.Name, Benchmark: js.Benchmark, Signature: sig, Error: err.Error()}
}

// runJob places one job and sees it through to a result, failing over
// across workers as needed. Each worker is tried at most once per job: a
// worker that died mid-job may or may not have finished the simulation,
// so re-placing on a fresh candidate (whose engine dedups by signature
// anyway) is the at-most-once-per-worker discipline that keeps "every
// config simulated exactly once" true whenever the dead worker actually
// died.
func (c *Coordinator) runJob(ctx context.Context, js sweep.Job) Entry {
	sig := experiments.ConfigSignature(&js.Config)
	key := js.Benchmark + "|" + sig
	name := js.Name + "/" + js.Benchmark
	tried := make(map[string]bool)
	for {
		if ctx.Err() != nil {
			return errorEntry(js, ctx.Err())
		}
		worker := ""
		for _, cand := range c.reg.Candidates(key) {
			if !tried[cand] {
				worker = cand
				break
			}
		}
		if worker == "" {
			return errorEntry(js, fmt.Errorf("cluster: no workers left for %s after trying %d", name, len(tried)))
		}
		tried[worker] = true
		c.emit(Event{Kind: "assign", Job: name, Worker: worker})

		res, err := c.runOn(ctx, worker, js)
		switch {
		case err == nil:
			c.emit(Event{Kind: "done", Job: name, Worker: worker})
			return Entry{Config: js.Name, Benchmark: js.Benchmark, Signature: sig, Result: res.Result}
		case errors.Is(err, errWorkerDown):
			c.reg.MarkDown(worker, err)
			c.emit(Event{Kind: "worker-down", Job: name, Worker: worker, Detail: err.Error()})
			c.emit(Event{Kind: "failover", Job: name, Worker: worker})
			continue
		default:
			c.emit(Event{Kind: "failed", Job: name, Worker: worker, Detail: err.Error()})
			return errorEntry(js, err)
		}
	}
}

// runOn drives one job on one specific worker: submit (retrying
// queue-full rejections with backoff), then follow the event stream
// (resuming broken streams with Last-Event-ID), then fetch the
// authoritative final view. A nil error means the job reached a genuine
// result on this worker; errWorkerDown-wrapped errors tell runJob to fail
// over.
func (c *Coordinator) runOn(ctx context.Context, worker string, js sweep.Job) (jobs.JobView, error) {
	name := js.Name + "/" + js.Benchmark

	var view jobs.JobView
	var err error
	backoff := c.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		view, err = c.api.submit(ctx, worker, js.Benchmark, js.Config)
		if err == nil {
			break
		}
		if !errors.Is(err, errBusy) || attempt+1 >= c.opts.WorkerAttempts {
			if errors.Is(err, errBusy) {
				// Persistently full queue: treat as down so the job can
				// drain to a less loaded candidate.
				return view, workerDown(err)
			}
			return view, err
		}
		if !sleep(ctx, backoff) {
			return view, ctx.Err()
		}
		backoff *= 2
	}
	if view.Cached {
		c.emit(Event{Kind: "cache-hit", Job: name, Worker: worker})
	}
	if terminalState(view.State) {
		return finalView(view)
	}

	lastSeq := -1
	for attempt := 0; ; {
		_, last, err := c.api.stream(ctx, worker, view.ID, lastSeq, func(se sseEvent) {
			c.emit(Event{Kind: "worker-event", Job: name, Worker: worker, Detail: se.ev.Kind})
		})
		lastSeq = last
		if err == nil {
			// The stream saw a terminal event; the GET view is the
			// authoritative copy of the result.
			final, err := c.api.fetchJob(ctx, worker, view.ID)
			if err != nil {
				return final, err
			}
			return finalView(final)
		}
		if ctx.Err() != nil {
			return view, ctx.Err()
		}
		attempt++
		if attempt >= c.opts.WorkerAttempts {
			return view, err // workerDown-wrapped by stream
		}
		if !sleep(ctx, c.opts.RetryBackoff) {
			return view, ctx.Err()
		}
	}
}

// finalView classifies a terminal job view. Failures that are really the
// worker's lifecycle (shutdown, drain, canceled engine) come back as
// errWorkerDown so the coordinator fails over; genuine simulation
// failures are job errors and land in the report.
func finalView(view jobs.JobView) (jobs.JobView, error) {
	switch view.State {
	case jobs.StateDone:
		if view.Result == nil {
			return view, workerDown(fmt.Errorf("job %s done without a result", view.ID))
		}
		return view, nil
	case jobs.StateFailed:
		if isWorkerLifecycleError(view.Error) {
			return view, workerDown(fmt.Errorf("job %s: %s", view.ID, view.Error))
		}
		return view, fmt.Errorf("cluster: job %s failed: %s", view.ID, view.Error)
	default:
		return view, workerDown(fmt.Errorf("job %s stream ended in non-terminal state %s", view.ID, view.State))
	}
}

// isWorkerLifecycleError spots job failures caused by the worker process
// going away rather than by the simulation: jobs.ErrShutdown, drain
// rejections and engine-context cancellation. These jobs deserve a second
// chance on another worker.
func isWorkerLifecycleError(msg string) bool {
	for _, marker := range []string{
		"manager shut down",
		"draining",
		"context canceled",
	} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

func terminalState(s jobs.State) bool {
	return s == jobs.StateDone || s == jobs.StateFailed
}

// sleep waits d or until ctx cancels; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (c *Coordinator) emit(ev Event) {
	if c.opts.Progress == nil {
		return
	}
	c.progressMu.Lock()
	defer c.progressMu.Unlock()
	c.opts.Progress(ev)
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// RegistryConfig sizes the worker registry's health checking. Zero values
// get defaults (see NewRegistry).
type RegistryConfig struct {
	// ProbeInterval is how often the background loop started by Start
	// re-checks worker health (default 2s).
	ProbeInterval time.Duration
	// BackoffBase is the first quarantine period after a failure; each
	// consecutive failure doubles it (default 500ms).
	BackoffBase time.Duration
	// BackoffMax caps the quarantine period (default 30s).
	BackoffMax time.Duration
	// Client issues the probe requests. The default applies a 5s timeout.
	Client *http.Client
	// Log, when set, receives one line per health transition.
	Log func(format string, args ...any)
}

// WorkerInfo is a point-in-time view of one registered worker.
type WorkerInfo struct {
	URL                 string
	Instance            string // /v1/cluster/info identity, once probed
	Healthy             bool
	ConsecutiveFailures int
	RetryAt             time.Time // quarantine expiry; zero when healthy
}

// workerState is the registry's mutable record for one worker.
type workerState struct {
	url         string
	instance    string
	healthy     bool
	consecFails int
	retryAt     time.Time
}

// Registry is the coordinator's health-checked worker set. Workers start
// healthy (optimistic: the first real request finds out); the coordinator
// reports observed failures with MarkDown, which quarantines a worker
// under exponential backoff, and the probe loop started by Start re-admits
// it once /readyz answers 200 again.
//
// All methods are safe for concurrent use.
type Registry struct {
	cfg    RegistryConfig
	client *http.Client

	mu      sync.Mutex
	order   []string // registration order, for stable All()/Snapshot()
	workers map[string]*workerState
}

// NewRegistry builds a registry over the given worker base URLs
// (scheme://host:port, with or without a trailing slash).
func NewRegistry(urls []string, cfg RegistryConfig) (*Registry, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 500 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	r := &Registry{cfg: cfg, client: client, workers: make(map[string]*workerState)}
	for _, raw := range urls {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if _, dup := r.workers[u]; dup {
			return nil, fmt.Errorf("cluster: worker %s listed twice", u)
		}
		r.workers[u] = &workerState{url: u, healthy: true}
		r.order = append(r.order, u)
	}
	if len(r.order) == 0 {
		return nil, errors.New("cluster: no workers given")
	}
	return r, nil
}

// Start launches the background probe loop; it stops when ctx is
// canceled. Running without Start is fine for one-shot sweeps — MarkDown
// still quarantines, workers just never recover.
func (r *Registry) Start(ctx context.Context) {
	go func() {
		ticker := time.NewTicker(r.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				r.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce runs one health-check pass: every healthy worker is verified,
// and every quarantined worker whose backoff has expired gets a readmission
// probe. Exported so tests (and warpedctl, before a sweep) can force a
// synchronous pass.
func (r *Registry) ProbeOnce(ctx context.Context) {
	r.mu.Lock()
	due := make([]*workerState, 0, len(r.order))
	now := time.Now()
	for _, u := range r.order {
		w := r.workers[u]
		if w.healthy || !now.Before(w.retryAt) {
			due = append(due, w)
		}
	}
	r.mu.Unlock()

	for _, w := range due {
		instance, err := r.probe(ctx, w.url)
		r.mu.Lock()
		if err != nil {
			r.quarantineLocked(w, err)
		} else {
			if !w.healthy {
				r.logf("cluster: worker %s healthy again (instance %s)", w.url, instance)
			}
			if w.instance != "" && w.instance != instance {
				r.logf("cluster: worker %s restarted (instance %s -> %s); its caches are cold", w.url, w.instance, instance)
			}
			w.healthy = true
			w.consecFails = 0
			w.retryAt = time.Time{}
			w.instance = instance
		}
		r.mu.Unlock()
	}
}

// probe checks one worker: /readyz must answer 200 (a draining worker is
// deliberately unhealthy — it refuses new jobs), then /v1/cluster/info
// supplies the instance identity.
func (r *Registry) probe(ctx context.Context, url string) (instance string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return "", err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return "", err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("readyz: %s", resp.Status)
	}
	info, err := fetchInfo(ctx, r.client, url)
	if err != nil {
		// Identity is advisory: an old worker without the endpoint is
		// still usable.
		return "", nil //nolint:nilerr
	}
	return info.Instance, nil
}

// MarkDown quarantines a worker after an observed failure (connection
// refused, 5xx, mid-job death). Consecutive failures double the
// quarantine period up to BackoffMax; the probe loop re-admits the worker
// once it answers again.
func (r *Registry) MarkDown(url string, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[url]; ok {
		r.quarantineLocked(w, cause)
	}
}

func (r *Registry) quarantineLocked(w *workerState, cause error) {
	w.consecFails++
	backoff := r.cfg.BackoffBase << uint(min(w.consecFails-1, 16))
	if backoff > r.cfg.BackoffMax {
		backoff = r.cfg.BackoffMax
	}
	w.retryAt = time.Now().Add(backoff)
	if w.healthy {
		r.logf("cluster: worker %s down (%v); quarantined %s", w.url, cause, backoff)
	}
	w.healthy = false
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		r.cfg.Log(format, args...)
	}
}

// All returns every registered worker URL in registration order.
func (r *Registry) All() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Snapshot reports every worker's current health state.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, len(r.order))
	for i, u := range r.order {
		w := r.workers[u]
		out[i] = WorkerInfo{
			URL:                 w.url,
			Instance:            w.instance,
			Healthy:             w.healthy,
			ConsecutiveFailures: w.consecFails,
			RetryAt:             w.retryAt,
		}
	}
	return out
}

// Candidates orders workers for a placement key: healthy workers in
// rendezvous order, then quarantined ones in rendezvous order as a last
// resort (a sweep with every worker marked down should still try, not
// instantly fail).
func (r *Registry) Candidates(key string) []string {
	r.mu.Lock()
	healthy := make([]string, 0, len(r.order))
	down := make([]string, 0)
	for _, u := range r.order {
		if r.workers[u].healthy {
			healthy = append(healthy, u)
		} else {
			down = append(down, u)
		}
	}
	r.mu.Unlock()
	return append(Rank(healthy, key), Rank(down, key)...)
}

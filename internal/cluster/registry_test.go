package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// flakyWorker is a /readyz endpoint whose health the test flips.
func flakyWorker(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var up atomic.Bool
	up.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if up.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &up
}

// TestRegistryQuarantine walks one worker through the health lifecycle:
// optimistic start, quarantine with doubling backoff while it is down,
// probe skips inside the backoff window, and readmission once it answers
// again.
func TestRegistryQuarantine(t *testing.T) {
	ts, up := flakyWorker(t)
	ctx := context.Background()
	reg, err := cluster.NewRegistry([]string{ts.URL}, cluster.RegistryConfig{
		BackoffBase: 40 * time.Millisecond,
		BackoffMax:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	if w := reg.Snapshot()[0]; !w.Healthy {
		t.Fatal("workers must start healthy (optimistic)")
	}
	reg.ProbeOnce(ctx)
	if w := reg.Snapshot()[0]; !w.Healthy {
		t.Fatal("probe of a live worker must keep it healthy")
	}

	up.Store(false)
	reg.ProbeOnce(ctx)
	w := reg.Snapshot()[0]
	if w.Healthy || w.ConsecutiveFailures != 1 {
		t.Fatalf("after failed probe: %+v, want quarantined with 1 failure", w)
	}
	firstRetry := w.RetryAt
	if !firstRetry.After(time.Now().Add(-time.Millisecond)) {
		t.Fatalf("RetryAt %v not in the future", firstRetry)
	}

	// Inside the backoff window the worker must not be re-probed — the
	// failure count stays put.
	reg.ProbeOnce(ctx)
	if w := reg.Snapshot()[0]; w.ConsecutiveFailures != 1 {
		t.Fatalf("probe inside backoff window ran anyway: %+v", w)
	}

	// Past the window, a still-down worker doubles its quarantine.
	time.Sleep(time.Until(firstRetry) + 5*time.Millisecond)
	reg.ProbeOnce(ctx)
	w = reg.Snapshot()[0]
	if w.ConsecutiveFailures != 2 {
		t.Fatalf("after second failed probe: %+v, want 2 failures", w)
	}
	if got := time.Until(w.RetryAt); got < 60*time.Millisecond {
		t.Fatalf("backoff did not double: %v until retry, want >= ~80ms", got)
	}

	// Recovery: once the worker answers again it is readmitted and the
	// failure count resets.
	up.Store(true)
	time.Sleep(time.Until(w.RetryAt) + 5*time.Millisecond)
	reg.ProbeOnce(ctx)
	w = reg.Snapshot()[0]
	if !w.Healthy || w.ConsecutiveFailures != 0 || !w.RetryAt.IsZero() {
		t.Fatalf("after recovery: %+v, want healthy with counters reset", w)
	}
}

// TestCandidatesPreferHealthy: quarantined workers sort after every
// healthy one, but are still offered as a last resort.
func TestCandidatesPreferHealthy(t *testing.T) {
	urls := []string{"http://w1:1", "http://w2:1", "http://w3:1"}
	reg, err := cluster.NewRegistry(urls, cluster.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg.MarkDown("http://w2:1", context.DeadlineExceeded)

	cands := reg.Candidates("some|key")
	if len(cands) != 3 {
		t.Fatalf("Candidates returned %d workers, want all 3", len(cands))
	}
	if cands[2] != "http://w2:1" {
		t.Fatalf("quarantined worker not last: %v", cands)
	}
}

// TestRegistryRejectsBadFleets: duplicates and empty fleets are
// configuration errors, caught at construction.
func TestRegistryRejectsBadFleets(t *testing.T) {
	if _, err := cluster.NewRegistry([]string{"http://a", "http://a/"}, cluster.RegistryConfig{}); err == nil {
		t.Fatal("duplicate workers (modulo trailing slash) must be rejected")
	}
	if _, err := cluster.NewRegistry([]string{" ", ""}, cluster.RegistryConfig{}); err == nil {
		t.Fatal("an empty fleet must be rejected")
	}
	reg, err := cluster.NewRegistry([]string{"localhost:8077"}, cluster.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.All()[0]; got != "http://localhost:8077" {
		t.Fatalf("schemeless URL normalized to %q, want http:// prefix", got)
	}
}

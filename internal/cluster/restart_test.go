package cluster_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/store"
)

// openStore opens a disk-store handle on dir, as one warpedd process would.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func storeCfg(t *testing.T, dir string) jobs.Config {
	cfg := workerCfg()
	cfg.Store = openStore(t, dir)
	return cfg
}

// TestRollingRestartServesFromStore is the rolling-restart acceptance
// scenario: a fleet sharing one content-addressed store directory loses a
// worker mid-campaign, the campaign completes anyway, and a restarted
// worker — fresh process, empty memory caches, same store directory —
// serves the repeat sweep entirely from disk with a byte-identical merged
// report. Nothing is simulated twice across the whole exercise.
func TestRollingRestartServesFromStore(t *testing.T) {
	spec := testSpec(t)
	dir := t.TempDir()

	// Oracle: a clean single-node run with no store at all.
	oracle := startWorker(t, workerCfg())
	defer oracle.mgr.Close()
	_, soloCoord := newCoordinator(t, oracle)
	solo, err := soloCoord.RunSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := solo.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// First campaign: two workers over the shared store dir; one dies with
	// every job pinned in flight.
	release := gate(t)
	a, b := startWorker(t, storeCfg(t, dir)), startWorker(t, storeCfg(t, dir))
	defer b.mgr.Close()
	_, coord := newCoordinator(t, a, b)

	type outcome struct {
		report *cluster.Report
		err    error
	}
	sweepDone := make(chan outcome, 1)
	go func() {
		r, err := coord.RunSweep(context.Background(), spec)
		sweepDone <- outcome{r, err}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for a.mgr.Stats().Submitted+b.mgr.Stats().Submitted < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("jobs not admitted: a=%d b=%d", a.mgr.Stats().Submitted, b.mgr.Stats().Submitted)
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.kill()
	mgrClosed := make(chan struct{})
	go func() { a.mgr.Close(); close(mgrClosed) }()
	for {
		unfinished := 0
		for _, v := range a.mgr.Jobs() {
			if v.State != jobs.StateDone && v.State != jobs.StateFailed {
				unfinished++
			}
		}
		if unfinished == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim still has %d unfinished jobs after kill", unfinished)
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	<-mgrClosed

	out := <-sweepDone
	if out.err != nil {
		t.Fatalf("campaign failed after worker kill: %v", out.err)
	}
	if got := out.report.Failed(); got != 0 {
		t.Fatalf("%d job(s) failed despite failover: %+v", got, out.report.Entries)
	}
	gotBytes, err := out.report.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("failover report differs from single-node report:\n--- failover ---\n%s\n--- single ---\n%s", gotBytes, wantBytes)
	}

	// Flush the survivor's write-through persists so the store holds the
	// full campaign, exactly as a SIGTERM drain would before a re-deploy.
	if err := b.mgr.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bst := b.mgr.Stats(); bst.StoreWrites < 8 {
		t.Fatalf("survivor persisted %d results, want all 8", bst.StoreWrites)
	}

	// Rolling restart: the dead worker comes back as a fresh process on the
	// same store directory — new manager, empty LRU, new store handle.
	restarted := startWorker(t, storeCfg(t, dir))
	defer restarted.mgr.Close()
	_, coord2 := newCoordinator(t, restarted)
	rerun, err := coord2.RunSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rerun.Failed(); got != 0 {
		t.Fatalf("restarted sweep had %d failures: %+v", got, rerun.Entries)
	}
	rerunBytes, err := rerun.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rerunBytes, wantBytes) {
		t.Fatalf("restarted-worker report differs from single-node report:\n--- restarted ---\n%s\n--- single ---\n%s", rerunBytes, wantBytes)
	}

	// The acceptance bar is >= 90% of the repeat sweep served from the
	// store; this fleet does better — every job hits, nothing recomputes.
	st := restarted.mgr.Stats()
	if hitFrac := float64(st.StoreHits) / 8; hitFrac < 0.9 {
		t.Fatalf("store hit fraction = %.2f (%d/8), want >= 0.90", hitFrac, st.StoreHits)
	}
	if st.Completed != 0 {
		t.Fatalf("restarted worker recomputed %d jobs; the store should have served them", st.Completed)
	}
	if st.StoreQuarantined != 0 {
		t.Fatalf("restart quarantined %d entries on a healthy store", st.StoreQuarantined)
	}
}

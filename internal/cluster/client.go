package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/sim"
)

// The coordinator distinguishes three failure classes when talking to a
// worker, because each demands a different reaction:
//
//   - errBusy: the worker is up but its admission queue is full (429).
//     Back off and retry the same worker — moving elsewhere would defeat
//     cache-affinity placement for a transient condition.
//   - errWorkerDown: the worker is unreachable, erroring at the transport
//     level, answering 5xx, or draining. Quarantine it and fail the job
//     over to the next rendezvous candidate.
//   - anything else: the job itself is bad (unknown benchmark, invalid
//     config, simulation failure). Failover would just fail again
//     elsewhere; record the error in the report.
var (
	errBusy       = errors.New("cluster: worker queue full")
	errWorkerDown = errors.New("cluster: worker down")
)

// workerDown wraps err so it matches errWorkerDown via errors.Is.
func workerDown(err error) error {
	return fmt.Errorf("%w: %w", errWorkerDown, err)
}

// apiClient speaks the warpedd HTTP API (internal/server) to one or more
// workers. It holds no per-worker state; the registry does.
type apiClient struct {
	http   *http.Client
	apiKey string // sent as X-API-Key on every job request when non-empty
}

// do sends req with the tenant API key attached. Workers running with a
// tenant roster authenticate job reads and streams, not just submissions,
// so every job-scoped request must carry the key.
func (c *apiClient) do(req *http.Request) (*http.Response, error) {
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	return c.http.Do(req)
}

// submitRequest mirrors the server's POST /v1/jobs body.
type submitRequest struct {
	Benchmark string          `json:"benchmark"`
	Preset    string          `json:"preset"`
	Config    json.RawMessage `json:"config"`
}

// submit posts one job. The full sim.Config is serialized as overrides, so
// the worker reconstructs the coordinator's configuration exactly — and
// therefore computes the identical ConfigSignature, which is what keeps
// coordinator-side placement and worker-side caching keyed to one
// identity.
func (c *apiClient) submit(ctx context.Context, worker, benchmark string, cfg sim.Config) (jobs.JobView, error) {
	var view jobs.JobView
	full, err := json.Marshal(cfg)
	if err != nil {
		return view, fmt.Errorf("cluster: marshal config: %w", err)
	}
	body, err := json.Marshal(submitRequest{Benchmark: benchmark, Preset: "warped", Config: full})
	if err != nil {
		return view, fmt.Errorf("cluster: marshal submit: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return view, workerDown(err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return view, workerDown(fmt.Errorf("bad submit response: %w", err))
		}
		return view, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return view, errBusy
	case resp.StatusCode >= 500:
		return view, workerDown(fmt.Errorf("submit: %s: %s", resp.Status, apiErrorBody(resp.Body)))
	default:
		return view, fmt.Errorf("cluster: %s rejected job: %s: %s", worker, resp.Status, apiErrorBody(resp.Body))
	}
}

// fetchJob reads a job's current view.
func (c *apiClient) fetchJob(ctx context.Context, worker, id string) (jobs.JobView, error) {
	var view jobs.JobView
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+id, nil)
	if err != nil {
		return view, err
	}
	resp, err := c.do(req)
	if err != nil {
		return view, workerDown(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return view, workerDown(fmt.Errorf("job %s: %s: %s", id, resp.Status, apiErrorBody(resp.Body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, workerDown(fmt.Errorf("job %s: bad body: %w", id, err))
	}
	return view, nil
}

// fetchInfo reads a worker's cluster identity.
func fetchInfo(ctx context.Context, client *http.Client, worker string) (server.ClusterInfo, error) {
	var info server.ClusterInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/cluster/info", nil)
	if err != nil {
		return info, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("cluster info: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, err
	}
	return info, nil
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	seq int // SSE id, -1 when the event carried none
	ev  jobs.Event
}

// stream follows a job's SSE feed from the event after lastSeq (-1 for
// the beginning), invoking onEvent for every recorded event, until a
// terminal event ("done"/"failed") arrives — returned with a nil error —
// or the connection breaks, in which case the caller can resume by
// calling stream again with the updated lastSeq it got back.
func (c *apiClient) stream(ctx context.Context, worker, id string, lastSeq int, onEvent func(sseEvent)) (terminal *sseEvent, newLast int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, lastSeq, err
	}
	if lastSeq >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastSeq))
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, lastSeq, workerDown(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, lastSeq, workerDown(fmt.Errorf("events %s: %s: %s", id, resp.Status, apiErrorBody(resp.Body)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	cur := sseEvent{seq: -1}
	var data []byte
	flush := func() (*sseEvent, bool) {
		if len(data) == 0 {
			cur = sseEvent{seq: -1}
			return nil, false
		}
		if err := json.Unmarshal(data, &cur.ev); err != nil {
			cur = sseEvent{seq: -1}
			data = nil
			return nil, false // malformed frame: skip, the view fetch is authoritative
		}
		cur.ev.Seq = cur.seq
		out := cur
		cur = sseEvent{seq: -1}
		data = nil
		if out.seq >= 0 {
			lastSeq = out.seq
		}
		onEvent(out)
		if out.ev.Kind == "done" || out.ev.Kind == "failed" {
			return &out, true
		}
		return nil, false
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if term, done := flush(); done {
				return term, lastSeq, nil
			}
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.Atoi(line[len("id: "):]); err == nil {
				cur.seq = n
			}
		case strings.HasPrefix(line, "event: "):
			cur.ev.Kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, lastSeq, workerDown(fmt.Errorf("events %s: %w", id, err))
	}
	// EOF without a terminal event: the worker closed the stream mid-job
	// (drain, crash, or proxy timeout).
	return nil, lastSeq, workerDown(fmt.Errorf("events %s: stream ended before the job finished", id))
}

// apiErrorBody extracts the server's JSON error envelope, falling back to
// the raw body, truncated sanely.
func apiErrorBody(r io.Reader) string {
	body, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

package cluster_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("bench-%d|cfg/v1:%08x", i%7, i*2654435761)
	}
	return out
}

// TestRendezvousStability pins the two properties placement relies on:
// growing the fleet moves only ~1/(N+1) of the keys (all of them onto the
// new worker), and removing a worker moves only that worker's keys.
func TestRendezvousStability(t *testing.T) {
	workers := []string{
		"http://w1:8077", "http://w2:8077", "http://w3:8077", "http://w4:8077",
	}
	const n = 4000
	home := make(map[string]string, n)
	for _, k := range keys(n) {
		home[k] = cluster.Rank(workers, k)[0]
	}

	// Grow: every moved key must land on the newcomer, and the moved
	// fraction must sit near 1/5 (binomial around 800 of 4000; the bounds
	// are generous enough to never flake with a fixed hash).
	grown := append(append([]string(nil), workers...), "http://w5:8077")
	moved := 0
	for k, h := range home {
		nh := cluster.Rank(grown, k)[0]
		if nh != h {
			moved++
			if nh != "http://w5:8077" {
				t.Fatalf("key %s moved %s -> %s, not to the new worker", k, h, nh)
			}
		}
	}
	if moved < n/10 || moved > 3*n/10 {
		t.Fatalf("adding a 5th worker moved %d/%d keys, want ~%d (1/5)", moved, n, n/5)
	}

	// Shrink: keys homed elsewhere must not notice w3 leaving.
	shrunk := []string{"http://w1:8077", "http://w2:8077", "http://w4:8077"}
	for k, h := range home {
		if h == "http://w3:8077" {
			continue
		}
		if nh := cluster.Rank(shrunk, k)[0]; nh != h {
			t.Fatalf("key %s moved %s -> %s when an unrelated worker left", k, h, nh)
		}
	}
}

// TestRankIsDeterministicPermutation: Rank must return every worker
// exactly once, in an input-order-independent, repeatable order.
func TestRankIsDeterministicPermutation(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	reversed := []string{"http://c", "http://b", "http://a"}
	for _, k := range keys(100) {
		r1 := cluster.Rank(workers, k)
		r2 := cluster.Rank(reversed, k)
		if len(r1) != 3 {
			t.Fatalf("Rank returned %d workers, want 3", len(r1))
		}
		seen := map[string]bool{}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("key %s: rank depends on input order: %v vs %v", k, r1, r2)
			}
			seen[r1[i]] = true
		}
		if len(seen) != 3 {
			t.Fatalf("key %s: rank is not a permutation: %v", k, r1)
		}
	}
}

package cluster

import (
	"encoding/json"

	"repro/internal/sim"
)

// ReportSchema identifies the merged campaign report format. Like
// warped.sim.result/v1 it is versioned: the field set below is the stable
// contract, and adding fields is backward compatible within the version.
const ReportSchema = "warped.campaign/v1"

// Report is the merged outcome of one campaign: one entry per (config,
// benchmark) job, in the spec's deterministic expansion order. It contains
// no worker identities, timestamps or other placement-dependent data, so a
// campaign's report is byte-identical whether it ran on one worker or
// twenty, with or without mid-sweep failover — the determinism oracle
// `make cluster-smoke` asserts.
type Report struct {
	Schema  string  `json:"schema"`
	Name    string  `json:"name"`
	Entries []Entry `json:"entries"`
}

// Entry is one job's outcome. Exactly one of Result and Error is set.
type Entry struct {
	Config    string      `json:"config"`
	Benchmark string      `json:"benchmark"`
	Signature string      `json:"signature"`
	Result    *sim.Result `json:"result,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// Failed counts entries that ended in an error.
func (r *Report) Failed() int {
	n := 0
	for _, e := range r.Entries {
		if e.Error != "" {
			n++
		}
	}
	return n
}

// Marshal renders the canonical report document: indented JSON with a
// trailing newline. Result payloads serialize through the versioned
// warped.sim.result/v1 marshaler, so the bytes are stable across workers
// and runs.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/sweep"
)

// clGate mirrors the jobs/server test gates: the zz-cluster benchmark
// blocks in Build until the installed channel is closed, which lets the
// failover test pin every job of a sweep in flight before killing a
// worker. The default channel is closed, so ungated tests run through.
var clGate atomic.Value // of chan struct{}

func init() {
	closed := make(chan struct{})
	close(closed)
	clGate.Store(closed)
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-cluster",
		Suite:       "test",
		Description: "blocks in Build until the test releases it",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			<-clGate.Load().(chan struct{})
			k, err := asm.Assemble("zz-cluster", "\tmov r0, %tid.x\n\texit\n")
			if err != nil {
				return nil, err
			}
			return &kernels.Instance{
				Launch: isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}},
				Check:  func(*mem.Global) error { return nil },
			}, nil
		},
	})
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-broken",
		Suite:       "test",
		Description: "always fails to build",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			return nil, fmt.Errorf("zz-broken: deliberately broken benchmark")
		},
	})
}

func gate(t *testing.T) func() {
	t.Helper()
	ch := make(chan struct{})
	clGate.Store(ch)
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	return release
}

// testSpec is an 8-config campaign (4 compress × 2 decompress latencies)
// over the gated benchmark — the sweep both e2e tests shard.
func testSpec(t *testing.T) *sweep.Spec {
	t.Helper()
	spec, err := sweep.Parse([]byte(`{
		"name": "cluster-e2e",
		"benchmarks": ["zz-cluster"],
		"base": {"NumSMs": 2},
		"grid": {
			"CompressLatency": [1, 2, 4, 8],
			"DecompressLatency": [1, 2]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// testWorker is one in-process warpedd: a jobs.Manager behind the real
// HTTP handler.
type testWorker struct {
	mgr *jobs.Manager
	ts  *httptest.Server
}

func startWorker(t *testing.T, cfg jobs.Config) *testWorker {
	t.Helper()
	mgr := jobs.NewManager(context.Background(), cfg)
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(ts.Close)
	return &testWorker{mgr: mgr, ts: ts}
}

// kill takes the worker's HTTP front end down hard: the listener closes
// and every live connection (including SSE streams) is severed, exactly
// like a process crash as seen from the coordinator. httptest's Close
// waits for in-flight handlers, so stragglers that reconnect during
// shutdown are cut repeatedly until it returns.
func (w *testWorker) kill() {
	done := make(chan struct{})
	go func() { w.ts.Close(); close(done) }()
	for {
		w.ts.CloseClientConnections()
		select {
		case <-done:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func newCoordinator(t *testing.T, workers ...*testWorker) (*cluster.Registry, *cluster.Coordinator) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.ts.URL
	}
	reg, err := cluster.NewRegistry(urls, cluster.RegistryConfig{
		BackoffBase: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := cluster.New(reg, cluster.Options{
		WorkerAttempts: 2,
		RetryBackoff:   10 * time.Millisecond,
	})
	return reg, coord
}

func workerCfg() jobs.Config {
	return jobs.Config{Workers: 4, QueueDepth: 32, CacheSize: 32}
}

// TestShardedSweepMatchesSingleNode is the determinism oracle: the same
// campaign run against two workers and against one must produce
// byte-identical reports, and sharding must simulate every config exactly
// once across the fleet.
func TestShardedSweepMatchesSingleNode(t *testing.T) {
	spec := testSpec(t)

	a, b := startWorker(t, workerCfg()), startWorker(t, workerCfg())
	defer a.mgr.Close()
	defer b.mgr.Close()
	_, coord := newCoordinator(t, a, b)
	sharded, err := coord.RunSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := sharded.Failed(); got != 0 {
		t.Fatalf("sharded sweep had %d failures: %+v", got, sharded.Entries)
	}
	shardedBytes, err := sharded.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	single := startWorker(t, workerCfg())
	defer single.mgr.Close()
	_, soloCoord := newCoordinator(t, single)
	solo, err := soloCoord.RunSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	soloBytes, err := solo.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(shardedBytes, soloBytes) {
		t.Fatalf("sharded report differs from single-node report:\n--- sharded ---\n%s\n--- single ---\n%s", shardedBytes, soloBytes)
	}
	if got := a.mgr.Stats().Completed + b.mgr.Stats().Completed; got != 8 {
		t.Fatalf("cluster completed %d simulations, want exactly 8", got)
	}
	if got := len(sharded.Entries); got != 8 {
		t.Fatalf("report has %d entries, want 8", got)
	}
	for _, e := range sharded.Entries {
		if e.Result == nil || e.Signature == "" {
			t.Fatalf("entry %s/%s missing result or signature", e.Config, e.Benchmark)
		}
	}
}

// TestFailoverMidSweep kills a worker while every job of the sweep is
// pinned in flight, and requires the sweep to complete anyway — with each
// config simulated exactly once across the cluster and the merged report
// byte-identical to an untroubled single-node run.
func TestFailoverMidSweep(t *testing.T) {
	spec := testSpec(t)
	release := gate(t)

	a, b := startWorker(t, workerCfg()), startWorker(t, workerCfg())
	defer a.mgr.Close()
	defer b.mgr.Close()
	_, coord := newCoordinator(t, a, b)

	type outcome struct {
		report *cluster.Report
		err    error
	}
	sweepDone := make(chan outcome, 1)
	go func() {
		r, err := coord.RunSweep(context.Background(), spec)
		sweepDone <- outcome{r, err}
	}()

	// Wait for all 8 jobs to be admitted somewhere, every one of them
	// gated in Build, then pick a victim that actually holds jobs.
	deadline := time.Now().Add(30 * time.Second)
	for a.mgr.Stats().Submitted+b.mgr.Stats().Submitted < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("jobs not admitted: a=%d b=%d",
				a.mgr.Stats().Submitted, b.mgr.Stats().Submitted)
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim, survivor := a, b
	if victim.mgr.Stats().Submitted == 0 {
		victim, survivor = b, a
	}

	// The crash: sever the HTTP front end, then shut the manager down.
	// Close cancels the engine context *before* joining its workers, so
	// once the gate opens the victim's pinned builds abort instead of
	// completing — a killed worker must not contribute results.
	victim.kill()
	mgrClosed := make(chan struct{})
	go func() { victim.mgr.Close(); close(mgrClosed) }()

	// Canceling is observable: Close fails leftover jobs before joining
	// the worker pool. Only then is it safe to open the gate.
	for {
		unfinished := 0
		for _, v := range victim.mgr.Jobs() {
			if v.State != jobs.StateDone && v.State != jobs.StateFailed {
				unfinished++
			}
		}
		if unfinished == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim still has %d unfinished jobs after kill", unfinished)
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	<-mgrClosed

	out := <-sweepDone
	if out.err != nil {
		t.Fatalf("sweep failed after worker kill: %v", out.err)
	}
	if got := out.report.Failed(); got != 0 {
		var errs []string
		for _, e := range out.report.Entries {
			if e.Error != "" {
				errs = append(errs, fmt.Sprintf("%s/%s: %s", e.Config, e.Benchmark, e.Error))
			}
		}
		t.Fatalf("%d job(s) failed despite failover:\n%s", got, strings.Join(errs, "\n"))
	}

	// Exactly-once: the victim's aborted builds completed nothing, so the
	// survivor must account for all 8 simulations — no config twice.
	if got := victim.mgr.Stats().Completed; got != 0 {
		t.Fatalf("killed worker completed %d simulations, want 0", got)
	}
	if got := survivor.mgr.Stats().Completed; got != 8 {
		t.Fatalf("survivor completed %d simulations, want 8", got)
	}

	// Determinism survives failover: byte-compare against a clean
	// single-node run.
	single := startWorker(t, workerCfg())
	defer single.mgr.Close()
	_, soloCoord := newCoordinator(t, single)
	solo, err := soloCoord.RunSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := out.report.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := solo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("failover report differs from single-node report:\n--- failover ---\n%s\n--- single ---\n%s", gotBytes, wantBytes)
	}
}

// TestJobErrorDoesNotFailOver: a genuine job failure (the benchmark's
// Build errors out) must land in the report as that job's error — not
// quarantine the worker, not bounce the job around the fleet, and not
// poison the rest of the sweep.
func TestJobErrorDoesNotFailOver(t *testing.T) {
	a, b := startWorker(t, workerCfg()), startWorker(t, workerCfg())
	defer a.mgr.Close()
	defer b.mgr.Close()
	reg, coord := newCoordinator(t, a, b)

	spec, err := sweep.Parse([]byte(`{
		"name": "mixed",
		"benchmarks": ["zz-cluster", "zz-broken"],
		"base": {"NumSMs": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	report, err := coord.RunSweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Failed(); got != 1 {
		t.Fatalf("report has %d failures, want exactly the broken benchmark: %+v", got, report.Entries)
	}
	for _, e := range report.Entries {
		switch e.Benchmark {
		case "zz-broken":
			if e.Error == "" || !strings.Contains(e.Error, "deliberately broken") {
				t.Fatalf("broken benchmark entry = %+v, want its build error", e)
			}
		case "zz-cluster":
			if e.Result == nil || e.Error != "" {
				t.Fatalf("healthy benchmark entry = %+v, want a result", e)
			}
		}
	}
	for _, w := range reg.Snapshot() {
		if !w.Healthy {
			t.Fatalf("worker %s quarantined by a job-level failure", w.URL)
		}
	}
}

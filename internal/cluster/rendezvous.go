package cluster

import (
	"hash/fnv"
	"sort"
)

// Rank orders workers for a placement key by rendezvous (highest random
// weight) hashing: every (worker, key) pair gets an independent score and
// the workers are returned best score first. The first element is the
// key's home — where repeat submissions of the same configuration land, so
// the worker's result cache and single-flight dedup keep working
// cluster-wide — and the remainder is the deterministic failover order.
//
// Rendezvous hashing has the minimal-disruption property consistent
// hashing is usually reached for, with no virtual-node bookkeeping: adding
// a worker to a fleet of N reassigns only the ~1/(N+1) of keys whose new
// score beats their old home, and removing a worker reassigns only that
// worker's keys (everyone else's order is untouched).
// TestRendezvousStability pins both properties.
func Rank(workers []string, key string) []string {
	type scored struct {
		worker string
		score  uint64
	}
	ranked := make([]scored, len(workers))
	for i, w := range workers {
		ranked[i] = scored{w, score(w, key)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].worker < ranked[j].worker // total order even on hash ties
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.worker
	}
	return out
}

// score hashes one (worker, key) pair. FNV-1a is enough here: placement
// needs speed and spread, not adversarial collision resistance, and the
// NUL separator keeps ("ab","c") distinct from ("a","bc").
func score(worker, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(worker))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

package exectrace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/isa"
)

// Wire format, warped.trace/v1:
//
//	warped.trace/v1\n          ASCII magic line
//	{...}\n                    one-line canonical JSON Meta
//	<binary body>              varint-packed launches, Meta.Launches of them
//
// The body uses unsigned varints (binary.Uvarint) for counts and small
// fields, and zigzag varints for signed or delta-encoded quantities.
// Register-value vectors are inter-lane delta-encoded: lane 0 raw, each
// later lane as zigzag(lane[i] - lane[i-1]). Per the paper's value-locality
// observation most deltas are tiny, so the common vector costs a few bytes
// per lane instead of four. Segment lists and AtomInit addresses are
// likewise delta-encoded against their predecessor.
//
// The encoding is canonical — one Trace has exactly one byte serialization
// — which is what makes golden byte-stability tests and content-addressed
// trace caching possible.

// maxWireCount caps any single decoded element count so a forged header
// cannot make the reader allocate unbounded memory before validation. It
// comfortably exceeds any real trace dimension (the Medium suite's largest
// stream is under half a million records).
const maxWireCount = 1 << 27

type wireWriter struct {
	w   *bufio.Writer
	buf []byte
	err error
}

func (e *wireWriter) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	e.buf = binary.AppendUvarint(e.buf[:0], v)
	_, e.err = e.w.Write(e.buf)
}

func (e *wireWriter) svarint(v int64) { e.uvarint(zigzag(v)) }
func (e *wireWriter) u32(v uint32)    { e.uvarint(uint64(v)) }
func (e *wireWriter) byte(v byte)     { e.uvarint(uint64(v)) }
func (e *wireWriter) count(n int)     { e.uvarint(uint64(n)) }

func (e *wireWriter) boolean(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *wireWriter) str(s string) {
	e.count(len(s))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write serializes the trace in warped.trace/v1 format. The trace is
// validated first; a trace that does not validate is never written.
func Write(w io.Writer, t *Trace) error {
	t.Meta.Schema = Schema
	t.Meta.Launches = len(t.Launches)
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Schema + "\n"); err != nil {
		return err
	}
	meta, err := json.Marshal(t.Meta)
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(meta, '\n')); err != nil {
		return err
	}
	e := &wireWriter{w: bw}
	for _, l := range t.Launches {
		writeLaunch(e, l)
	}
	if e.err != nil {
		return fmt.Errorf("exectrace: write: %w", e.err)
	}
	return bw.Flush()
}

func writeLaunch(e *wireWriter, l *Launch) {
	k := l.Kernel
	e.str(k.Name)
	e.count(k.NumRegs)
	e.count(k.NumPreds)
	e.count(k.SharedBytes)
	e.count(len(k.Code))
	for i := range k.Code {
		writeInstr(e, &k.Code[i])
	}
	e.count(l.Grid.X)
	e.count(l.Grid.Y)
	e.count(l.Block.X)
	e.count(l.Block.Y)
	for _, p := range l.Params {
		e.u32(p)
	}
	e.count(len(l.AtomInit))
	prev := uint32(0)
	for i, c := range l.AtomInit {
		if i == 0 {
			e.u32(c.Addr)
		} else {
			e.u32(c.Addr - prev) // sorted ascending, so deltas are positive
		}
		prev = c.Addr
		e.u32(c.Val)
	}
	e.count(len(l.Warps))
	for _, ws := range l.Warps {
		writeStream(e, ws)
	}
}

func writeInstr(e *wireWriter, in *isa.Instr) {
	e.byte(byte(in.Op))
	e.byte(byte(in.Cmp))
	e.byte(byte(in.Dst))
	e.byte(byte(in.PDst))
	for _, s := range in.Srcs {
		e.byte(byte(s.Kind))
		e.byte(byte(s.Reg))
		e.svarint(int64(s.Imm))
		e.byte(byte(s.Spec))
	}
	e.byte(byte(in.Pred))
	e.boolean(in.PredNeg)
	e.byte(byte(in.PSrc))
	e.svarint(int64(in.Target))
	e.svarint(int64(in.Off))
}

func writeStream(e *wireWriter, ws *WarpStream) {
	e.count(ws.CTAID)
	e.count(ws.WarpInCTA)
	e.count(len(ws.Recs))
	prevPC := int64(0)
	for i := range ws.Recs {
		r := &ws.Recs[i]
		e.svarint(int64(r.PC) - prevPC) // streams mostly fall through: delta is usually 1
		prevPC = int64(r.PC)
		e.u32(r.Active)
		e.u32(r.Eff)
		e.byte(byte(r.Flags))
		e.byte(r.NSegs)
		e.uvarint(uint64(r.Deg))
	}
	e.count(len(ws.Vals))
	for i := range ws.Vals {
		v := &ws.Vals[i]
		e.u32(v[0])
		for lane := 1; lane < len(v); lane++ {
			e.svarint(int64(int32(v[lane])) - int64(int32(v[lane-1])))
		}
	}
	e.count(len(ws.Segs))
	prevSeg := int64(0)
	for _, s := range ws.Segs {
		e.svarint(int64(s) - prevSeg)
		prevSeg = int64(s)
	}
	e.count(len(ws.Atoms))
	prevAddr := int64(0)
	for _, a := range ws.Atoms {
		e.svarint(int64(a.Addr) - prevAddr)
		prevAddr = int64(a.Addr)
		e.u32(a.Add)
	}
}

type wireReader struct {
	r   *bufio.Reader
	err error
}

func (d *wireReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *wireReader) svarint() int64 { return unzigzag(d.uvarint()) }

func (d *wireReader) u32() uint32 {
	v := d.uvarint()
	if d.err == nil && v > (1<<32)-1 {
		d.err = fmt.Errorf("32-bit field overflows: %d", v)
	}
	return uint32(v)
}

func (d *wireReader) byte8() byte {
	v := d.uvarint()
	if d.err == nil && v > 0xFF {
		d.err = fmt.Errorf("byte field overflows: %d", v)
	}
	return byte(v)
}

func (d *wireReader) boolean() bool { return d.byte8() != 0 }

// count reads an element count and bounds it, so corrupt input cannot
// drive huge allocations.
func (d *wireReader) count() int {
	v := d.uvarint()
	if d.err == nil && v > maxWireCount {
		d.err = fmt.Errorf("count %d exceeds format limit %d", v, maxWireCount)
	}
	return int(v)
}

func (d *wireReader) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	if n > 1<<16 {
		d.err = fmt.Errorf("string length %d exceeds limit", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

// clampCap limits the initial capacity of count-prefixed slices: lengths
// still reach the decoded count via append, but a forged count cannot
// reserve gigabytes up front. Zero counts decode to nil slices so a
// write → read cycle reproduces the recorder's in-memory form exactly.
func clampCap(n int) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return n
}

func makeSlice[T any](n int) []T {
	if n <= 0 {
		return nil
	}
	return make([]T, 0, clampCap(n))
}

// Read decodes and validates a warped.trace/v1 stream. The returned trace
// has passed Trace.Validate, so it is safe to hand directly to the
// replayer.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("exectrace: reading magic: %w", err)
	}
	if magic != Schema+"\n" {
		return nil, fmt.Errorf("exectrace: bad magic %q, want %q", magic, Schema)
	}
	metaLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("exectrace: reading header: %w", err)
	}
	t := &Trace{}
	if err := json.Unmarshal(metaLine, &t.Meta); err != nil {
		return nil, fmt.Errorf("exectrace: header: %w", err)
	}
	if t.Meta.Schema != Schema {
		return nil, fmt.Errorf("exectrace: header schema %q, want %q", t.Meta.Schema, Schema)
	}
	if t.Meta.Launches < 0 || t.Meta.Launches > 1<<16 {
		return nil, fmt.Errorf("exectrace: header declares %d launches", t.Meta.Launches)
	}
	d := &wireReader{r: br}
	for i := 0; i < t.Meta.Launches && d.err == nil; i++ {
		t.Launches = append(t.Launches, readLaunch(d))
	}
	if d.err != nil {
		return nil, fmt.Errorf("exectrace: read: %w", d.err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func readLaunch(d *wireReader) *Launch {
	l := &Launch{Kernel: &isa.Kernel{}}
	k := l.Kernel
	k.Name = d.str()
	k.NumRegs = d.count()
	k.NumPreds = d.count()
	k.SharedBytes = d.count()
	nCode := d.count()
	k.Code = makeSlice[isa.Instr](nCode)
	for i := 0; i < nCode && d.err == nil; i++ {
		k.Code = append(k.Code, readInstr(d))
	}
	l.Grid.X = d.count()
	l.Grid.Y = d.count()
	l.Block.X = d.count()
	l.Block.Y = d.count()
	for i := range l.Params {
		l.Params[i] = d.u32()
	}
	nInit := d.count()
	l.AtomInit = makeSlice[AtomCell](nInit)
	addr := uint32(0)
	for i := 0; i < nInit && d.err == nil; i++ {
		addr += d.u32()
		l.AtomInit = append(l.AtomInit, AtomCell{Addr: addr, Val: d.u32()})
	}
	nWarps := d.count()
	l.Warps = makeSlice[*WarpStream](nWarps)
	for i := 0; i < nWarps && d.err == nil; i++ {
		l.Warps = append(l.Warps, readStream(d))
	}
	return l
}

func readInstr(d *wireReader) isa.Instr {
	var in isa.Instr
	in.Op = isa.Opcode(d.byte8())
	in.Cmp = isa.CmpOp(d.byte8())
	in.Dst = isa.Reg(d.byte8())
	in.PDst = isa.PredReg(d.byte8())
	for i := range in.Srcs {
		in.Srcs[i].Kind = isa.OperandKind(d.byte8())
		in.Srcs[i].Reg = isa.Reg(d.byte8())
		imm := d.svarint()
		if d.err == nil && (imm < -1<<31 || imm > 1<<31-1) {
			d.err = fmt.Errorf("immediate %d overflows int32", imm)
		}
		in.Srcs[i].Imm = int32(imm)
		in.Srcs[i].Spec = isa.Special(d.byte8())
	}
	in.Pred = isa.PredReg(d.byte8())
	in.PredNeg = d.boolean()
	in.PSrc = isa.PredReg(d.byte8())
	tgt := d.svarint()
	off := d.svarint()
	if d.err == nil && (tgt < -1<<31 || tgt > 1<<31-1 || off < -1<<31 || off > 1<<31-1) {
		d.err = fmt.Errorf("branch field overflows int32")
	}
	in.Target = int32(tgt)
	in.Off = int32(off)
	return in
}

func readStream(d *wireReader) *WarpStream {
	ws := &WarpStream{}
	ws.CTAID = d.count()
	ws.WarpInCTA = d.count()
	nRecs := d.count()
	ws.Recs = makeSlice[Rec](nRecs)
	pc := int64(0)
	for i := 0; i < nRecs && d.err == nil; i++ {
		var r Rec
		pc += d.svarint()
		if d.err == nil && (pc < 0 || pc > 1<<31-1) {
			d.err = fmt.Errorf("rec %d: pc %d out of range", i, pc)
			break
		}
		r.PC = int32(pc)
		r.Active = d.u32()
		r.Eff = d.u32()
		r.Flags = RecFlags(d.byte8())
		r.NSegs = d.byte8()
		deg := d.uvarint()
		if d.err == nil && deg > 0xFFFF {
			d.err = fmt.Errorf("rec %d: degree %d overflows uint16", i, deg)
			break
		}
		r.Deg = uint16(deg)
		ws.Recs = append(ws.Recs, r)
	}
	nVals := d.count()
	ws.Vals = makeSlice[core.WarpReg](nVals)
	for i := 0; i < nVals && d.err == nil; i++ {
		var v core.WarpReg
		v[0] = d.u32()
		for lane := 1; lane < len(v); lane++ {
			v[lane] = uint32(int32(v[lane-1]) + int32(d.svarint()))
		}
		ws.Vals = append(ws.Vals, v)
	}
	nSegs := d.count()
	ws.Segs = makeSlice[uint32](nSegs)
	seg := int64(0)
	for i := 0; i < nSegs && d.err == nil; i++ {
		seg += d.svarint()
		ws.Segs = append(ws.Segs, uint32(seg))
	}
	nAtoms := d.count()
	ws.Atoms = makeSlice[AtomOp](nAtoms)
	aaddr := int64(0)
	for i := 0; i < nAtoms && d.err == nil; i++ {
		aaddr += d.svarint()
		ws.Atoms = append(ws.Atoms, AtomOp{Addr: uint32(aaddr), Add: d.u32()})
	}
	return ws
}

package exectrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// fixtureTrace is a tiny hand-built but fully valid trace: one launch of a
// one-CTA, one-warp kernel with a register write whose value vector
// exercises the inter-lane delta encoding.
func fixtureTrace() *Trace {
	k := &isa.Kernel{
		Name: "fixture",
		Code: []isa.Instr{
			{Op: isa.OpMov, Dst: 0, PDst: isa.PredNone, Pred: isa.PredNone, PSrc: isa.PredNone,
				Srcs: [3]isa.Operand{{Kind: isa.OperandSpecial, Spec: isa.SpecTidX}}},
			{Op: isa.OpExit, Dst: isa.RegNone, PDst: isa.PredNone, Pred: isa.PredNone, PSrc: isa.PredNone},
		},
		NumRegs: 1,
	}
	var vals core.WarpReg
	for i := range vals {
		vals[i] = uint32(i)
	}
	full := uint32(0xFFFFFFFF)
	return &Trace{
		Meta: Meta{Benchmark: "fixture", Scale: "small"},
		Launches: []*Launch{{
			Kernel: k,
			Grid:   isa.Dim3{X: 1},
			Block:  isa.Dim3{X: 32},
			Warps: []*WarpStream{{
				Recs: []Rec{
					{PC: 0, Active: full, Eff: full, Flags: FlagWrites | FlagVals},
					{PC: 1, Active: full, Eff: full},
				},
				Vals: []core.WarpReg{vals},
			}},
		}},
	}
}

// TestTraceGolden pins the exact serialized bytes of a warped.trace/v1
// document — the magic line, the one-line JSON header and the varint body.
// Any diff is a wire-format change and requires a schema version bump plus
// `go test ./internal/exectrace -update`.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixtureTrace()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	golden := filepath.Join("testdata", "trace_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("trace bytes drifted from %s (run with -update if intended)\n got: %q\nwant: %q", golden, data, want)
	}

	// The header must open with the exact magic line followed by the JSON
	// meta line — the self-description contract external tools rely on.
	wantHeader := Schema + "\n" + `{"schema":"warped.trace/v1","benchmark":"fixture","scale":"small","launches":1}` + "\n"
	if !bytes.HasPrefix(data, []byte(wantHeader)) {
		t.Fatalf("header drifted:\n got: %q\nwant prefix: %q", data[:min(len(data), len(wantHeader)+8)], wantHeader)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := fixtureTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip changed the trace:\norig: %+v\ngot:  %+v", orig, got)
	}
	if got.Instructions() != 2 {
		t.Fatalf("Instructions() = %d, want 2", got.Instructions())
	}
	if got.MemBytes() <= 0 {
		t.Fatalf("MemBytes() = %d, want > 0", got.MemBytes())
	}
}

// TestReadRejectsCorruption: every truncation of a valid trace, and a few
// targeted corruptions, must fail with an error — never a panic, never a
// silently wrong trace.
func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixtureTrace()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for n := 0; n < len(valid); n++ {
		if _, err := Read(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	bad := append([]byte(nil), valid...)
	bad[3] ^= 0xFF // corrupt the magic
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte(Schema + "\n{\"schema\":\"warped.trace/v9\",\"launches\":1}\n"))); err == nil {
		t.Fatal("mismatched header schema accepted")
	}
}

// TestValidateCatchesStructuralLies covers the invariants the replayer
// trusts: pool-length agreement, stream geometry, PC bounds, exit
// termination.
func TestValidateCatchesStructuralLies(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Trace)
	}{
		{"missing value pool entry", func(tr *Trace) { tr.Launches[0].Warps[0].Vals = nil }},
		{"pc out of bounds", func(tr *Trace) { tr.Launches[0].Warps[0].Recs[0].PC = 99 }},
		{"stream not ending at exit", func(tr *Trace) {
			ws := tr.Launches[0].Warps[0]
			ws.Recs = ws.Recs[:1]
		}},
		{"wrong warp count", func(tr *Trace) { tr.Launches[0].Block.X = 64 }},
		{"empty stream", func(tr *Trace) {
			ws := tr.Launches[0].Warps[0]
			ws.Recs, ws.Vals = nil, nil
		}},
		{"segments on non-memory op", func(tr *Trace) { tr.Launches[0].Warps[0].Recs[0].NSegs = 2 }},
		{"unsorted atom init", func(tr *Trace) {
			tr.Launches[0].AtomInit = []AtomCell{{Addr: 8}, {Addr: 4}}
		}},
		{"value payload on unchanged write", func(tr *Trace) {
			tr.Launches[0].Warps[0].Recs[0].Flags |= FlagUnchanged
		}},
	}
	for _, m := range mutations {
		tr := fixtureTrace()
		m.mut(tr)
		tr.Meta.Schema = Schema
		tr.Meta.Launches = len(tr.Launches)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a structurally invalid trace", m.name)
		}
	}
}

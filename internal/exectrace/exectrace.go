// Package exectrace defines the versioned execution-trace format
// (warped.trace/v1) that connects the simulator's functional front-end to
// its timing/compression/energy back-end.
//
// A trace captures everything the timing model needs from functional
// execution and nothing it derives itself: per-warp instruction issue
// records (PC, active and guard-filtered masks), register-write outcomes
// (the 32-lane value vectors, inter-lane delta-encoded on the wire because
// warped-compression's §3 observation — neighboring lanes hold similar
// values — applies to the trace exactly as it does to the register file),
// coalesced global-memory segment lists, shared-memory and atomic conflict
// degrees, and the launch-time values of atomically-updated memory cells.
// Timing-dependent artifacts (dummy MOVs, bank schedules, stalls,
// compression encodings) are deliberately absent: they are the back-end's
// output, recomputed per configuration at replay.
//
// Traces are recorded once per (benchmark, scale) by sim record mode and
// replayed under any number of configurations; replayed results are
// byte-identical to execute-mode results for the same configuration. A
// decoded Trace is immutable by contract: any number of replays may share
// one Trace concurrently.
package exectrace

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/isa"
)

// Schema identifies the trace container format. It is the first header
// field of every serialized trace; readers reject anything else.
const Schema = "warped.trace/v1"

// Meta is the self-describing trace header, serialized as one canonical
// JSON line after the magic. It carries provenance only — nothing in Meta
// is needed to replay (the launches are self-contained), so unknown future
// fields can be ignored by old readers of later v1 revisions.
type Meta struct {
	Schema    string `json:"schema"`
	Benchmark string `json:"benchmark,omitempty"`
	Scale     string `json:"scale,omitempty"`
	Launches  int    `json:"launches"`
}

// RecFlags annotate one instruction record.
type RecFlags uint8

const (
	// FlagWrites marks an instruction that produced a register write.
	FlagWrites RecFlags = 1 << iota
	// FlagUnchanged marks a write whose merged destination vector equals
	// the value the register already held (the encoding-memo fast path).
	// The replayer reproduces the vector from its shadow register state,
	// so unchanged writes carry no value payload.
	FlagUnchanged
	// FlagVals marks a record with an entry in the stream's value pool: a
	// changed, non-atomic register write. Atomic writes never carry
	// values — their old-value vectors are schedule-dependent, so the
	// replayer recomputes them against the shadow memory in its own issue
	// order (see Launch.AtomInit).
	FlagVals
)

// Rec is one issued instruction of one warp, in program (issue) order.
// Fixed-size; variable payloads live in the stream's side pools (Vals,
// Segs, Atoms) and are consumed sequentially alongside the records.
type Rec struct {
	PC     int32  // static instruction index
	Active uint32 // SIMT stack active mask at issue
	Eff    uint32 // guard-filtered execution mask
	Flags  RecFlags
	// NSegs is the coalesced 128B segment count for global memory ops. For
	// shared ops it carries the bank model's distinct-word count instead
	// (added within v1; older writers left it 0 there, which newer readers
	// treat as "unknown" and replay with zero bank-level counters).
	NSegs uint8
	Deg   uint16 // shared-memory conflict phases or atomic serialization degree
}

// AtomOp is one lane of an atomic read-modify-write: the target address and
// the addend. Old values are not recorded — they are replayed against the
// shadow memory seeded by Launch.AtomInit.
type AtomOp struct {
	Addr uint32
	Add  uint32
}

// AtomCell is the launch-time value of one atomically-updated memory word.
type AtomCell struct {
	Addr uint32
	Val  uint32
}

// WarpStream is the functional execution of one warp, identified by its
// grid position (CTA index and warp index within the CTA) — never by SM or
// hardware slot, which are timing-dependent placements the replaying
// back-end decides for itself.
type WarpStream struct {
	CTAID     int
	WarpInCTA int

	Recs []Rec
	// Vals holds the merged destination vector of every FlagVals record,
	// in record order.
	Vals []core.WarpReg
	// Segs holds the concatenated coalesced-segment lists of global
	// memory records, in record order (NSegs entries each).
	Segs []uint32
	// Atoms holds the concatenated per-lane atomic operations, in record
	// order (popcount(Eff) entries per atomic record, lane order).
	Atoms []AtomOp
}

// Launch is the recorded functional execution of one kernel launch. It is
// self-contained: the kernel image, geometry and parameters travel with the
// streams, so replay needs neither the benchmark registry nor its input
// generators.
type Launch struct {
	Kernel *isa.Kernel
	Grid   isa.Dim3
	Block  isa.Dim3
	Params [isa.NumParams]uint32

	// AtomInit holds the launch-time value of every memory word touched by
	// an atomic during the launch, sorted by address. Replay seeds its
	// shadow memory from it and applies AtomOps in replay issue order,
	// which reproduces execute-mode atomic semantics under the replay
	// configuration's own schedule.
	AtomInit []AtomCell

	// Warps holds one stream per warp of the grid, sorted by
	// (CTAID, WarpInCTA).
	Warps []*WarpStream
}

// Trace is a full recorded run: one or more launches against one device
// memory image.
type Trace struct {
	Meta     Meta
	Launches []*Launch
}

// MemBytes estimates the in-memory footprint of the trace — the figure
// trace caches budget against.
func (t *Trace) MemBytes() int64 {
	var n int64
	for _, l := range t.Launches {
		n += l.MemBytes()
	}
	return n
}

// MemBytes estimates the in-memory footprint of one launch.
func (l *Launch) MemBytes() int64 {
	n := int64(len(l.Kernel.Code))*32 + int64(len(l.AtomInit))*8
	for _, w := range l.Warps {
		n += int64(len(w.Recs))*16 + int64(len(w.Vals))*int64(core.WarpBytes) +
			int64(len(w.Segs))*4 + int64(len(w.Atoms))*8 + 64
	}
	return n
}

// Instructions counts the recorded instruction issues across all launches.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, l := range t.Launches {
		for _, w := range l.Warps {
			n += uint64(len(w.Recs))
		}
	}
	return n
}

// Validate checks a launch for structural consistency: kernel validity,
// geometry, the warp-stream set implied by the grid, record field bounds
// and side-pool length agreement. The replayer trusts a validated launch,
// so every invariant it relies on is enforced here (a corrupt or
// adversarial trace must fail Validate, never panic the replayer).
func (l *Launch) Validate() error {
	if l.Kernel == nil {
		return fmt.Errorf("exectrace: launch without kernel")
	}
	if err := l.Kernel.Validate(); err != nil {
		return fmt.Errorf("exectrace: %w", err)
	}
	il := isa.Launch{Kernel: l.Kernel, Grid: l.Grid, Block: l.Block, Params: l.Params}
	if err := il.Validate(); err != nil {
		return fmt.Errorf("exectrace: %w", err)
	}
	numCTAs, warpsPerCTA := il.NumCTAs(), il.WarpsPerCTA()
	if len(l.Warps) != numCTAs*warpsPerCTA {
		return fmt.Errorf("exectrace: %d warp streams for a %d-CTA x %d-warp grid",
			len(l.Warps), numCTAs, warpsPerCTA)
	}
	for i, w := range l.Warps {
		if w == nil {
			return fmt.Errorf("exectrace: nil warp stream %d", i)
		}
		want := i / warpsPerCTA
		if w.CTAID != want || w.WarpInCTA != i%warpsPerCTA {
			return fmt.Errorf("exectrace: warp stream %d is (cta %d, warp %d), want (cta %d, warp %d) — streams must be sorted and complete",
				i, w.CTAID, w.WarpInCTA, want, i%warpsPerCTA)
		}
		if err := w.validate(l.Kernel); err != nil {
			return fmt.Errorf("exectrace: cta %d warp %d: %w", w.CTAID, w.WarpInCTA, err)
		}
	}
	for i := 1; i < len(l.AtomInit); i++ {
		if l.AtomInit[i].Addr <= l.AtomInit[i-1].Addr {
			return fmt.Errorf("exectrace: AtomInit not sorted by unique address")
		}
	}
	return nil
}

// validate checks one stream's records against the kernel and verifies the
// side pools are consumed exactly.
func (w *WarpStream) validate(k *isa.Kernel) error {
	if len(w.Recs) == 0 {
		return fmt.Errorf("empty stream (every warp issues at least exit)")
	}
	vals, segs, atoms := 0, 0, 0
	for i := range w.Recs {
		r := &w.Recs[i]
		if r.PC < 0 || int(r.PC) >= len(k.Code) {
			return fmt.Errorf("rec %d: pc %d outside code [0,%d)", i, r.PC, len(k.Code))
		}
		in := &k.Code[r.PC]
		if r.Flags&FlagWrites != 0 && !in.HasDst() {
			return fmt.Errorf("rec %d: write flag on %s, which has no destination", i, in)
		}
		if r.Flags&FlagVals != 0 {
			if r.Flags&(FlagWrites|FlagUnchanged) != FlagWrites || in.Op == isa.OpAtomAdd {
				return fmt.Errorf("rec %d: value payload on a non-writing, unchanged or atomic record", i)
			}
			vals++
		}
		switch in.Op {
		case isa.OpLdG, isa.OpStG, isa.OpAtomAdd:
			if int(r.NSegs) > isa.WarpSize {
				return fmt.Errorf("rec %d: %d segments for a 32-lane warp", i, r.NSegs)
			}
			segs += int(r.NSegs)
			if in.Op == isa.OpAtomAdd {
				atoms += bits.OnesCount32(r.Eff)
			}
		case isa.OpLdS, isa.OpStS:
			// NSegs holds the shared bank model's distinct-word count
			// here; it references no side pool, but can never exceed the
			// lanes that requested words.
			if int(r.NSegs) > bits.OnesCount32(r.Eff) {
				return fmt.Errorf("rec %d: %d shared words for %d active lanes", i, r.NSegs, bits.OnesCount32(r.Eff))
			}
		default:
			if r.NSegs != 0 {
				return fmt.Errorf("rec %d: segment list on non-global %s", i, in)
			}
		}
	}
	if vals != len(w.Vals) {
		return fmt.Errorf("value pool holds %d vectors, records reference %d", len(w.Vals), vals)
	}
	if segs != len(w.Segs) {
		return fmt.Errorf("segment pool holds %d entries, records reference %d", len(w.Segs), segs)
	}
	if atoms != len(w.Atoms) {
		return fmt.Errorf("atomic pool holds %d ops, records reference %d", len(w.Atoms), atoms)
	}
	last := &w.Recs[len(w.Recs)-1]
	if k.Code[last.PC].Op != isa.OpExit {
		return fmt.Errorf("stream does not end at an exit instruction")
	}
	return nil
}

// Validate checks the whole trace.
func (t *Trace) Validate() error {
	if t.Meta.Schema != Schema {
		return fmt.Errorf("exectrace: schema %q, want %q", t.Meta.Schema, Schema)
	}
	if len(t.Launches) == 0 {
		return fmt.Errorf("exectrace: trace has no launches")
	}
	for i, l := range t.Launches {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("launch %d: %w", i, err)
		}
	}
	return nil
}

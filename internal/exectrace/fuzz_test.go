package exectrace

import (
	"bytes"
	"testing"
)

// FuzzTraceRead hammers the warped.trace/v1 reader with arbitrary bytes:
// it must never panic or over-allocate, and anything it accepts must
// re-serialize canonically (write → read → write is a fixed point).
func FuzzTraceRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, fixtureTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(Schema + "\n{\"schema\":\"warped.trace/v1\",\"launches\":1}\n\xff\xff\xff\xff"))
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized trace failed to decode: %v", err)
		}
		var again bytes.Buffer
		if err := Write(&again, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatalf("serialization is not canonical: %d vs %d bytes", out.Len(), again.Len())
		}
	})
}

// Package isa defines the SIMT instruction set executed by the GPU model.
//
// The ISA is a small SASS/PTX-like register machine: 32-bit general purpose
// registers private to each thread, 1-bit predicate registers, guarded
// execution (@p / @!p prefixes), explicit branches with assembler-resolved
// targets, and global/shared memory accesses. It is deliberately close to the
// abstraction level GPGPU-Sim's PTX frontend presents to its timing model, so
// the register-file behaviour studied by warped-compression (ISCA'15) is
// exercised the same way: every executed instruction reads up to three warp
// registers and writes at most one.
package isa

import "fmt"

// WarpSize is the number of threads per warp (CUDA terminology, paper §2.1).
const WarpSize = 32

// Reg names a per-thread 32-bit general purpose register (r0, r1, ...).
type Reg uint8

// RegNone marks an absent register operand.
const RegNone Reg = 0xFF

// MaxRegs is the largest number of architectural registers a kernel may use
// per thread. The value is bounded by the register file capacity; with the
// paper's 128KB file a thread can never hold more registers than this.
const MaxRegs = 64

func (r Reg) String() string {
	if r == RegNone {
		return "r<none>"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// PredReg names a per-thread 1-bit predicate register (p0..p7).
type PredReg uint8

// PredNone marks an absent predicate.
const PredNone PredReg = 0xFF

// MaxPreds is the number of predicate registers per thread.
const MaxPreds = 8

func (p PredReg) String() string {
	if p == PredNone {
		return "p<none>"
	}
	return fmt.Sprintf("p%d", uint8(p))
}

// Special identifies a read-only special register supplied by the hardware
// rather than the register file (thread/block indices and dimensions).
type Special uint8

// Special register identifiers. Only the X dimension carries real geometry in
// this model; Y variants exist for kernels written 2-D style.
const (
	SpecTidX Special = iota // thread index within the CTA, x dimension
	SpecTidY
	SpecCtaIDX // CTA (thread block) index within the grid
	SpecCtaIDY
	SpecNTidX // CTA dimensions (threads per CTA)
	SpecNTidY
	SpecNCtaX // grid dimensions (CTAs per grid)
	SpecNCtaY
	SpecLaneID // thread index within the warp, 0..31
	SpecWarpID // warp index within the CTA
	// SpecParam0..7 read the launch parameters (kernel arguments such as
	// device array base addresses), the ISA's analogue of CUDA's constant
	// parameter space.
	SpecParam0
	SpecParam1
	SpecParam2
	SpecParam3
	SpecParam4
	SpecParam5
	SpecParam6
	SpecParam7
	numSpecials
)

// NumParams is the number of launch parameter slots.
const NumParams = 8

// IsParam reports whether the special is a launch parameter, and which.
func (s Special) IsParam() (int, bool) {
	if s >= SpecParam0 && s <= SpecParam7 {
		return int(s - SpecParam0), true
	}
	return 0, false
}

var specialNames = [...]string{
	SpecTidX:   "%tid.x",
	SpecTidY:   "%tid.y",
	SpecCtaIDX: "%ctaid.x",
	SpecCtaIDY: "%ctaid.y",
	SpecNTidX:  "%ntid.x",
	SpecNTidY:  "%ntid.y",
	SpecNCtaX:  "%nctaid.x",
	SpecNCtaY:  "%nctaid.y",
	SpecLaneID: "%laneid",
	SpecWarpID: "%warpid",
	SpecParam0: "%param0",
	SpecParam1: "%param1",
	SpecParam2: "%param2",
	SpecParam3: "%param3",
	SpecParam4: "%param4",
	SpecParam5: "%param5",
	SpecParam6: "%param6",
	SpecParam7: "%param7",
}

func (s Special) String() string {
	if int(s) < len(specialNames) {
		return specialNames[s]
	}
	return fmt.Sprintf("%%spec%d", uint8(s))
}

// SpecialByName resolves a %-prefixed special register name.
func SpecialByName(name string) (Special, bool) {
	for i, n := range specialNames {
		if n == name {
			return Special(i), true
		}
	}
	return 0, false
}

// OperandKind distinguishes the three source operand forms.
type OperandKind uint8

const (
	// OperandNone marks an unused source slot.
	OperandNone OperandKind = iota
	// OperandReg reads a general purpose register.
	OperandReg
	// OperandImm supplies a 32-bit immediate shared by all threads.
	OperandImm
	// OperandSpecial reads a hardware special register.
	OperandSpecial
)

// Operand is one source operand of an instruction.
type Operand struct {
	Kind OperandKind
	Reg  Reg     // valid when Kind == OperandReg
	Imm  int32   // valid when Kind == OperandImm
	Spec Special // valid when Kind == OperandSpecial
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm makes an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OperandImm, Imm: v} }

// Spec makes a special-register operand.
func Spec(s Special) Operand { return Operand{Kind: OperandSpecial, Spec: s} }

func (o Operand) String() string {
	switch o.Kind {
	case OperandNone:
		return "_"
	case OperandReg:
		return o.Reg.String()
	case OperandImm:
		return fmt.Sprintf("%d", o.Imm)
	case OperandSpecial:
		return o.Spec.String()
	}
	return "?"
}

// IsReg reports whether the operand reads a general purpose register.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

package isa

import "math"

// EvalALU computes the scalar result of a non-memory, non-control opcode for
// one thread. Register values are raw 32-bit patterns; float opcodes
// interpret them as IEEE-754 single precision, exactly as GPU lanes do.
func EvalALU(op Opcode, a, b, c uint32) uint32 {
	switch op {
	case OpMov:
		return a
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return uint32(int32(a) * int32(b))
	case OpMad:
		return uint32(int32(a)*int32(b) + int32(c))
	case OpMin:
		if int32(a) < int32(b) {
			return a
		}
		return b
	case OpMax:
		if int32(a) > int32(b) {
			return a
		}
		return b
	case OpAbs:
		if int32(a) < 0 {
			return uint32(-int32(a))
		}
		return a
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNot:
		return ^a
	case OpShl:
		return a << (b & 31)
	case OpShr:
		return a >> (b & 31)
	case OpSra:
		return uint32(int32(a) >> (b & 31))
	case OpDiv:
		if int32(b) == 0 {
			return 0
		}
		return uint32(int32(a) / int32(b))
	case OpRem:
		if int32(b) == 0 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case OpFAdd:
		return f32op(a, b, func(x, y float32) float32 { return x + y })
	case OpFSub:
		return f32op(a, b, func(x, y float32) float32 { return x - y })
	case OpFMul:
		return f32op(a, b, func(x, y float32) float32 { return x * y })
	case OpFMA:
		// Defined as multiply-then-add with intermediate rounding (the
		// explicit conversion forbids Go from fusing), so host reference
		// implementations can reproduce results bit-exactly.
		fa, fb, fc := math.Float32frombits(a), math.Float32frombits(b), math.Float32frombits(c)
		return math.Float32bits(float32(fa*fb) + fc)
	case OpFMin:
		return f32op(a, b, func(x, y float32) float32 {
			if x < y {
				return x
			}
			return y
		})
	case OpFMax:
		return f32op(a, b, func(x, y float32) float32 {
			if x > y {
				return x
			}
			return y
		})
	case OpFRcp:
		return math.Float32bits(1 / math.Float32frombits(a))
	case OpFSqrt:
		return math.Float32bits(float32(math.Sqrt(float64(math.Float32frombits(a)))))
	case OpI2F:
		return math.Float32bits(float32(int32(a)))
	case OpF2I:
		f := math.Float32frombits(a)
		if math.IsNaN(float64(f)) {
			return 0
		}
		return uint32(int32(f))
	}
	return 0
}

func f32op(a, b uint32, f func(x, y float32) float32) uint32 {
	return math.Float32bits(f(math.Float32frombits(a), math.Float32frombits(b)))
}

// EvalCmp evaluates a setp comparison for one thread.
func EvalCmp(cmp CmpOp, a, b uint32) bool {
	switch cmp {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return int32(a) < int32(b)
	case CmpLE:
		return int32(a) <= int32(b)
	case CmpGT:
		return int32(a) > int32(b)
	case CmpGE:
		return int32(a) >= int32(b)
	}
	fa, fb := math.Float32frombits(a), math.Float32frombits(b)
	switch cmp {
	case CmpFEQ:
		return fa == fb
	case CmpFNE:
		return fa != fb
	case CmpFLT:
		return fa < fb
	case CmpFLE:
		return fa <= fb
	case CmpFGT:
		return fa > fb
	case CmpFGE:
		return fa >= fb
	}
	return false
}

package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalALUIntegerOps(t *testing.T) {
	cases := []struct {
		op      Opcode
		a, b, c uint32
		want    uint32
	}{
		{OpMov, 7, 0, 0, 7},
		{OpAdd, 3, 4, 0, 7},
		{OpAdd, 0xFFFFFFFF, 1, 0, 0}, // wraparound
		{OpSub, 3, 5, 0, 0xFFFFFFFE},
		{OpMul, 6, 7, 0, 42},
		{OpMul, 0xFFFFFFFD, 5, 0, 0xFFFFFFF1},
		{OpMad, 2, 3, 4, 10},
		{OpMin, 0xFFFFFFFB, 3, 0, 0xFFFFFFFB},
		{OpMax, 0xFFFFFFFB, 3, 0, 3},
		{OpAbs, 0xFFFFFFF7, 0, 0, 9},
		{OpAnd, 0xF0, 0x3C, 0, 0x30},
		{OpOr, 0xF0, 0x0F, 0, 0xFF},
		{OpXor, 0xFF, 0x0F, 0, 0xF0},
		{OpNot, 0, 0, 0, 0xFFFFFFFF},
		{OpShl, 1, 4, 0, 16},
		{OpShl, 1, 36, 0, 16}, // shift amount masked to 5 bits
		{OpShr, 0x80000000, 31, 0, 1},
		{OpSra, 0x80000000, 31, 0, 0xFFFFFFFF},
		{OpDiv, 0xFFFFFFF9, 2, 0, 0xFFFFFFFD},
		{OpDiv, 5, 0, 0, 0}, // div by zero defined as 0
		{OpRem, 7, 3, 0, 1},
		{OpRem, 7, 0, 0, 0},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.c); got != c.want {
			t.Errorf("%s(%#x,%#x,%#x) = %#x, want %#x", c.op, c.a, c.b, c.c, got, c.want)
		}
	}
}

func f32(f float32) uint32 { return math.Float32bits(f) }

func TestEvalALUFloatOps(t *testing.T) {
	cases := []struct {
		op      Opcode
		a, b, c uint32
		want    float32
	}{
		{OpFAdd, f32(1.5), f32(2.25), 0, 3.75},
		{OpFSub, f32(1), f32(3), 0, -2},
		{OpFMul, f32(3), f32(-2), 0, -6},
		{OpFMA, f32(2), f32(3), f32(1), 7},
		{OpFMin, f32(2), f32(-3), 0, -3},
		{OpFMax, f32(2), f32(-3), 0, 2},
		{OpFRcp, f32(4), 0, 0, 0.25},
		{OpFSqrt, f32(9), 0, 0, 3},
		{OpI2F, 0xFFFFFFF8, 0, 0, -8}, // int32(-8)
	}
	for _, c := range cases {
		got := math.Float32frombits(EvalALU(c.op, c.a, c.b, c.c))
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.op, got, c.want)
		}
	}
	if int32(EvalALU(OpF2I, f32(-7.9), 0, 0)) != -7 {
		t.Error("f2i must truncate toward zero")
	}
	if EvalALU(OpF2I, f32(float32(math.NaN())), 0, 0) != 0 {
		t.Error("f2i of NaN defined as 0")
	}
}

// TestFMAIntermediateRounding: the ISA defines fma as mul-then-add with
// intermediate rounding so host references can match bit-exactly.
func TestFMAIntermediateRounding(t *testing.T) {
	f := func(a, b, c float32) bool {
		got := EvalALU(OpFMA, f32(a), f32(b), f32(c))
		want := math.Float32bits(float32(a*b) + c)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalCmp(t *testing.T) {
	neg1 := uint32(0xFFFFFFFF)
	cases := []struct {
		cmp  CmpOp
		a, b uint32
		want bool
	}{
		{CmpEQ, 5, 5, true},
		{CmpNE, 5, 5, false},
		{CmpLT, neg1, 0, true}, // signed
		{CmpLE, 5, 5, true},
		{CmpGT, 0, neg1, true},
		{CmpGE, 0, 0, true},
		{CmpFLT, f32(-0.5), f32(0.5), true},
		{CmpFGE, f32(2), f32(2), true},
		{CmpFEQ, f32(1), f32(1), true},
		{CmpFNE, f32(1), f32(2), true},
		{CmpFLE, f32(3), f32(2), false},
		{CmpFGT, f32(3), f32(2), true},
	}
	for _, c := range cases {
		if got := EvalCmp(c.cmp, c.a, c.b); got != c.want {
			t.Errorf("%s(%#x,%#x) = %v, want %v", c.cmp, c.a, c.b, got, c.want)
		}
	}
}

func TestOpcodeTables(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has no name", op)
		}
		back, ok := OpcodeByName(op.String())
		if op == OpBar {
			continue // "bar.sync" round-trips too
		}
		if !ok || back != op {
			t.Errorf("opcode %s does not round-trip by name", op)
		}
	}
	if OpLdG.Class() != ClassMem || OpBra.Class() != ClassCtrl || OpAdd.Class() != ClassALU || OpFMul.Class() != ClassSFU {
		t.Error("opcode class table wrong")
	}
	if !OpBra.IsBranch() || OpAdd.IsBranch() {
		t.Error("IsBranch")
	}
	if !OpLdG.IsLoad() || !OpLdS.IsLoad() || OpStG.IsLoad() {
		t.Error("IsLoad")
	}
	if !OpStG.IsStore() || !OpStS.IsStore() || OpLdG.IsStore() {
		t.Error("IsStore")
	}
}

func TestSpecialNames(t *testing.T) {
	for s := Special(0); s < numSpecials; s++ {
		name := s.String()
		back, ok := SpecialByName(name)
		if !ok || back != s {
			t.Errorf("special %s does not round-trip", name)
		}
	}
	if _, ok := SpecialByName("%nope"); ok {
		t.Error("bogus special resolved")
	}
	if p, ok := SpecParam3.IsParam(); !ok || p != 3 {
		t.Error("IsParam")
	}
	if _, ok := SpecTidX.IsParam(); ok {
		t.Error("tid is not a param")
	}
}

func TestInstrValidate(t *testing.T) {
	good := Instr{Op: OpAdd, Dst: 1, Srcs: [3]Operand{R(0), Imm(1), {}}, Pred: PredNone, PDst: PredNone, PSrc: PredNone}
	if err := good.Validate(0, 10); err != nil {
		t.Fatalf("valid instruction rejected: %v", err)
	}
	bad := []Instr{
		{Op: OpBra, Target: 99, Pred: PredNone, Dst: RegNone, PDst: PredNone, PSrc: PredNone},
		{Op: OpSetP, PDst: PredNone, Pred: PredNone, Dst: RegNone, PSrc: PredNone},
		{Op: OpAdd, Dst: RegNone, Pred: PredNone, PDst: PredNone, PSrc: PredNone},
		{Op: OpLdG, Dst: RegNone, Pred: PredNone, PDst: PredNone, PSrc: PredNone},
	}
	for i, in := range bad {
		if err := in.Validate(0, 10); err == nil {
			t.Errorf("bad instruction %d accepted", i)
		}
	}
}

func TestKernelValidate(t *testing.T) {
	k := &Kernel{Name: "k", Code: []Instr{{Op: OpExit, Dst: RegNone, Pred: PredNone, PDst: PredNone, PSrc: PredNone}}}
	k.ComputeRegUsage()
	if err := k.Validate(); err != nil {
		t.Fatalf("minimal kernel rejected: %v", err)
	}
	empty := &Kernel{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty kernel accepted")
	}
	noExit := &Kernel{Name: "n", Code: []Instr{{Op: OpNop, Dst: RegNone, Pred: PredNone, PDst: PredNone, PSrc: PredNone}}}
	if err := noExit.Validate(); err == nil {
		t.Error("kernel without exit accepted")
	}
}

func TestLaunchGeometry(t *testing.T) {
	k := &Kernel{Name: "k", Code: []Instr{{Op: OpExit, Dst: RegNone, Pred: PredNone, PDst: PredNone, PSrc: PredNone}}}
	k.ComputeRegUsage()
	l := Launch{Kernel: k, Grid: Dim3{X: 4, Y: 2}, Block: Dim3{X: 96}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumCTAs() != 8 || l.ThreadsPerCTA() != 96 || l.WarpsPerCTA() != 3 {
		t.Fatalf("geometry: %d CTAs, %d threads, %d warps", l.NumCTAs(), l.ThreadsPerCTA(), l.WarpsPerCTA())
	}
	if err := (Launch{Kernel: k, Grid: Dim3{X: 1}, Block: Dim3{X: 2048}}).Validate(); err == nil {
		t.Error("oversized CTA accepted")
	}
	if err := (Launch{Kernel: k, Grid: Dim3{}, Block: Dim3{X: 32}}).Validate(); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestNumSrcRegs(t *testing.T) {
	in := Instr{Op: OpMad, Dst: 4, Srcs: [3]Operand{R(1), R(1), R(2)}, Pred: PredNone, PDst: PredNone, PSrc: PredNone}
	if got := in.NumSrcRegs(); got != 2 {
		t.Fatalf("NumSrcRegs = %d, want 2 (r1 deduplicated)", got)
	}
}

package isa

import (
	"fmt"
	"strings"
)

// Instr is one static instruction of a kernel.
//
// Every instruction may be guarded: when Pred != PredNone only threads whose
// predicate (xor PredNeg) is true take effect. A guarded Bra is the source of
// SIMT branch divergence.
type Instr struct {
	Op   Opcode
	Cmp  CmpOp      // comparison for SetP
	Dst  Reg        // destination register, RegNone if none
	PDst PredReg    // destination predicate (SetP), PredNone if none
	Srcs [3]Operand // source operands; unused slots are OperandNone

	Pred    PredReg // guard predicate, PredNone when unguarded
	PredNeg bool    // guard on !Pred instead of Pred

	PSrc PredReg // data predicate read by SelP (not the guard)

	Target int32 // branch target PC (instruction index)
	Off    int32 // byte offset for memory operands
}

// HasDst reports whether the instruction writes a general purpose register.
func (in *Instr) HasDst() bool { return in.Dst != RegNone }

// SrcRegs appends the general purpose registers read by the instruction to
// buf and returns the extended slice. Memory stores read both the address
// register (Srcs[0]) and the data register (Srcs[1]).
func (in *Instr) SrcRegs(buf []Reg) []Reg {
	for _, s := range in.Srcs {
		if s.Kind == OperandReg {
			buf = append(buf, s.Reg)
		}
	}
	return buf
}

// NumSrcRegs counts distinct general purpose register source operands; this
// is the number of warp-register reads the operand collector must perform.
func (in *Instr) NumSrcRegs() int {
	var seen [MaxRegs]bool
	n := 0
	for _, s := range in.Srcs {
		if s.Kind == OperandReg && !seen[s.Reg] {
			seen[s.Reg] = true
			n++
		}
	}
	return n
}

func (in *Instr) String() string {
	var b strings.Builder
	if in.Pred != PredNone {
		if in.PredNeg {
			fmt.Fprintf(&b, "@!%s ", in.Pred)
		} else {
			fmt.Fprintf(&b, "@%s ", in.Pred)
		}
	}
	switch in.Op {
	case OpNop, OpExit, OpBar:
		b.WriteString(in.Op.String())
	case OpBra:
		fmt.Fprintf(&b, "bra %d", in.Target)
	case OpSetP:
		fmt.Fprintf(&b, "setp.%s %s, %s, %s", in.Cmp, in.PDst, in.Srcs[0], in.Srcs[1])
	case OpSelP:
		fmt.Fprintf(&b, "selp %s, %s, %s, %s", in.Dst, in.Srcs[0], in.Srcs[1], in.PSrc)
	case OpLdG, OpLdS:
		fmt.Fprintf(&b, "%s %s, [%s+%d]", in.Op, in.Dst, in.Srcs[0], in.Off)
	case OpAtomAdd:
		fmt.Fprintf(&b, "%s %s, [%s+%d], %s", in.Op, in.Dst, in.Srcs[0], in.Off, in.Srcs[1])
	case OpStG, OpStS:
		fmt.Fprintf(&b, "%s [%s+%d], %s", in.Op, in.Srcs[0], in.Off, in.Srcs[1])
	default:
		fmt.Fprintf(&b, "%s %s", in.Op, in.Dst)
		for _, s := range in.Srcs {
			if s.Kind != OperandNone {
				fmt.Fprintf(&b, ", %s", s)
			}
		}
	}
	return b.String()
}

// Validate checks structural well-formedness of a single instruction at
// position pc in a kernel of length codeLen.
func (in *Instr) Validate(pc, codeLen int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("pc %d (%s): %s", pc, in, fmt.Sprintf(format, args...))
	}
	if in.Op >= numOpcodes {
		return fail("invalid opcode %d", in.Op)
	}
	if in.Pred != PredNone && in.Pred >= MaxPreds {
		return fail("guard predicate out of range")
	}
	if in.Dst != RegNone && in.Dst >= MaxRegs {
		return fail("destination register out of range")
	}
	for i, s := range in.Srcs {
		if s.Kind == OperandReg && s.Reg >= MaxRegs {
			return fail("source %d register out of range", i)
		}
		if s.Kind == OperandSpecial && s.Spec >= numSpecials {
			return fail("source %d special register invalid", i)
		}
	}
	switch in.Op {
	case OpBra:
		if in.Target < 0 || int(in.Target) >= codeLen {
			return fail("branch target %d outside code [0,%d)", in.Target, codeLen)
		}
	case OpSetP:
		if in.PDst == PredNone || in.PDst >= MaxPreds {
			return fail("setp needs a predicate destination")
		}
		if in.Cmp >= numCmps {
			return fail("invalid comparison")
		}
	case OpSelP:
		if in.PSrc == PredNone || in.PSrc >= MaxPreds {
			return fail("selp needs a data predicate")
		}
		if !in.HasDst() {
			return fail("selp needs a destination")
		}
	case OpLdG, OpLdS:
		if !in.HasDst() {
			return fail("load needs a destination")
		}
		if in.Srcs[0].Kind != OperandReg && in.Srcs[0].Kind != OperandImm {
			return fail("load needs an address operand")
		}
	case OpStG, OpStS:
		if in.Srcs[0].Kind == OperandNone || in.Srcs[1].Kind == OperandNone {
			return fail("store needs address and data operands")
		}
	case OpAtomAdd:
		if !in.HasDst() {
			return fail("atomic needs a destination for the old value")
		}
		if in.Srcs[0].Kind == OperandNone || in.Srcs[1].Kind == OperandNone {
			return fail("atomic needs address and addend operands")
		}
	default:
		if in.Op != OpNop && in.Op != OpExit && in.Op != OpBar && !in.HasDst() {
			return fail("%s needs a destination", in.Op)
		}
	}
	return nil
}

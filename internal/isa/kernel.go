package isa

import "fmt"

// Kernel is a validated, assembled GPU kernel image.
type Kernel struct {
	Name string
	Code []Instr

	// NumRegs is the number of general purpose registers each thread of
	// this kernel uses (max register index + 1). The register file
	// allocator reserves this many warp registers per warp.
	NumRegs int
	// NumPreds is the number of predicate registers used.
	NumPreds int
	// SharedBytes is the per-CTA shared memory footprint.
	SharedBytes int

	// ReconvPC[pc] is the SIMT-stack reconvergence point (immediate
	// post-dominator) for the branch at pc; -1 for non-branches. It is
	// filled in by the cfg package when a kernel is loaded.
	ReconvPC []int32
}

// Validate checks the whole kernel image: every instruction individually,
// register bounds, and termination (at least one exit).
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel has no name")
	}
	if len(k.Code) == 0 {
		return fmt.Errorf("kernel %s: empty code", k.Name)
	}
	hasExit := false
	for pc := range k.Code {
		if err := k.Code[pc].Validate(pc, len(k.Code)); err != nil {
			return fmt.Errorf("kernel %s: %w", k.Name, err)
		}
		if k.Code[pc].Op == OpExit {
			hasExit = true
		}
	}
	if !hasExit {
		return fmt.Errorf("kernel %s: no exit instruction", k.Name)
	}
	if k.NumRegs < 0 || k.NumRegs > MaxRegs {
		return fmt.Errorf("kernel %s: NumRegs %d out of range (0..%d)", k.Name, k.NumRegs, MaxRegs)
	}
	if k.ReconvPC != nil && len(k.ReconvPC) != len(k.Code) {
		return fmt.Errorf("kernel %s: ReconvPC length %d != code length %d", k.Name, len(k.ReconvPC), len(k.Code))
	}
	return nil
}

// ComputeRegUsage scans the code and sets NumRegs / NumPreds from the highest
// register indices actually referenced.
func (k *Kernel) ComputeRegUsage() {
	maxReg, maxPred := -1, -1
	upd := func(r Reg) {
		if r != RegNone && int(r) > maxReg {
			maxReg = int(r)
		}
	}
	updP := func(p PredReg) {
		if p != PredNone && int(p) > maxPred {
			maxPred = int(p)
		}
	}
	for i := range k.Code {
		in := &k.Code[i]
		upd(in.Dst)
		for _, s := range in.Srcs {
			if s.Kind == OperandReg {
				upd(s.Reg)
			}
		}
		updP(in.PDst)
		updP(in.Pred)
		updP(in.PSrc)
	}
	k.NumRegs = maxReg + 1
	k.NumPreds = maxPred + 1
}

// Dim3 is a 1/2-dimensional launch geometry (z unused by this model).
type Dim3 struct {
	X, Y int
}

// Count returns the total element count of the geometry.
func (d Dim3) Count() int {
	y := d.Y
	if y <= 0 {
		y = 1
	}
	if d.X <= 0 {
		return 0
	}
	return d.X * y
}

// Launch describes one kernel invocation: the grid geometry, CTA shape and
// kernel arguments.
type Launch struct {
	Kernel *Kernel
	Grid   Dim3 // CTAs per grid
	Block  Dim3 // threads per CTA
	// Params are the kernel arguments, readable as %param0..%param7
	// (array base addresses, sizes, scalar inputs).
	Params [NumParams]uint32
}

// ThreadsPerCTA returns the CTA size in threads.
func (l Launch) ThreadsPerCTA() int { return l.Block.Count() }

// WarpsPerCTA returns the number of warps a CTA occupies (rounded up).
func (l Launch) WarpsPerCTA() int {
	return (l.ThreadsPerCTA() + WarpSize - 1) / WarpSize
}

// NumCTAs returns the grid size in CTAs.
func (l Launch) NumCTAs() int { return l.Grid.Count() }

// Validate checks launch geometry bounds.
func (l Launch) Validate() error {
	if l.Kernel == nil {
		return fmt.Errorf("launch without kernel")
	}
	if err := l.Kernel.Validate(); err != nil {
		return err
	}
	if l.NumCTAs() <= 0 {
		return fmt.Errorf("launch %s: empty grid", l.Kernel.Name)
	}
	t := l.ThreadsPerCTA()
	if t <= 0 || t > 1024 {
		return fmt.Errorf("launch %s: CTA size %d out of range (1..1024)", l.Kernel.Name, t)
	}
	return nil
}

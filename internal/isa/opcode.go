package isa

import "fmt"

// Opcode enumerates every operation in the ISA.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Data movement.
	OpMov // dst = src0 (register, immediate or special)

	// Integer arithmetic / logic. All operate on 32-bit two's complement.
	OpAdd // dst = src0 + src1
	OpSub // dst = src0 - src1
	OpMul // dst = src0 * src1 (low 32 bits)
	OpMad // dst = src0 * src1 + src2
	OpMin // dst = signed min(src0, src1)
	OpMax // dst = signed max(src0, src1)
	OpAbs // dst = |src0| (signed)
	OpAnd // dst = src0 & src1
	OpOr  // dst = src0 | src1
	OpXor // dst = src0 ^ src1
	OpNot // dst = ^src0
	OpShl // dst = src0 << (src1 & 31)
	OpShr // dst = logical src0 >> (src1 & 31)
	OpSra // dst = arithmetic src0 >> (src1 & 31)
	OpDiv // dst = src0 / src1 (signed; 0 when src1 == 0)
	OpRem // dst = src0 % src1 (signed; 0 when src1 == 0)

	// IEEE-754 single precision arithmetic (values are bit patterns in
	// the 32-bit registers, as on real hardware).
	OpFAdd  // dst = src0 + src1
	OpFSub  // dst = src0 - src1
	OpFMul  // dst = src0 * src1
	OpFMA   // dst = src0*src1 + src2
	OpFMin  // dst = min(src0, src1)
	OpFMax  // dst = max(src0, src1)
	OpFRcp  // dst = 1/src0 (SFU)
	OpFSqrt // dst = sqrt(src0) (SFU)
	OpI2F   // dst = float32(int32(src0))
	OpF2I   // dst = int32(float32(src0)), truncating

	// Predicate generation and selection.
	OpSetP // pdst = cmp(src0, src1); comparison in Instr.Cmp
	OpSelP // dst = guard-pred ? src0 : src1 (predicate in Instr.PSrc)

	// Control flow.
	OpBra  // branch to Instr.Target (guarded => potentially divergent)
	OpExit // thread exit
	OpBar  // CTA-wide barrier

	// Memory. Address = src0 + Instr.Off (bytes, 4-byte aligned).
	OpLdG     // dst = global[addr]
	OpStG     // global[addr] = src1
	OpLdS     // dst = shared[addr]
	OpStS     // shared[addr] = src1
	OpAtomAdd // dst = global[addr]; global[addr] += src1 (per lane, in lane order)

	numOpcodes
)

var opcodeNames = [...]string{
	OpNop: "nop", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpMad: "mad",
	OpMin: "min", OpMax: "max", OpAbs: "abs",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpSra: "sra", OpDiv: "div", OpRem: "rem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFMA: "fma",
	OpFMin: "fmin", OpFMax: "fmax", OpFRcp: "frcp", OpFSqrt: "fsqrt",
	OpI2F: "i2f", OpF2I: "f2i",
	OpSetP: "setp", OpSelP: "selp",
	OpBra: "bra", OpExit: "exit", OpBar: "bar.sync",
	OpLdG: "ld.global", OpStG: "st.global",
	OpLdS: "ld.shared", OpStS: "st.shared",
	OpAtomAdd: "atom.add",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// OpcodeByName resolves a mnemonic; used by the assembler.
func OpcodeByName(name string) (Opcode, bool) {
	for op, n := range opcodeNames {
		if n == name && n != "" {
			return Opcode(op), true
		}
	}
	return 0, false
}

// FuncClass is the functional-unit class an opcode dispatches to; the timing
// model assigns a pipeline latency per class.
type FuncClass uint8

const (
	ClassALU  FuncClass = iota // simple integer / logic / predicate ops
	ClassSFU                   // multiply, divide, float, special functions
	ClassMem                   // global/shared loads and stores
	ClassCtrl                  // branches, exit, barrier, nop
)

var opcodeClass = [numOpcodes]FuncClass{
	OpNop: ClassCtrl, OpMov: ClassALU,
	OpAdd: ClassALU, OpSub: ClassALU, OpMin: ClassALU, OpMax: ClassALU,
	OpAbs: ClassALU, OpAnd: ClassALU, OpOr: ClassALU, OpXor: ClassALU,
	OpNot: ClassALU, OpShl: ClassALU, OpShr: ClassALU, OpSra: ClassALU,
	OpMul: ClassSFU, OpMad: ClassSFU, OpDiv: ClassSFU, OpRem: ClassSFU,
	OpFAdd: ClassSFU, OpFSub: ClassSFU, OpFMul: ClassSFU, OpFMA: ClassSFU,
	OpFMin: ClassSFU, OpFMax: ClassSFU, OpFRcp: ClassSFU, OpFSqrt: ClassSFU,
	OpI2F: ClassSFU, OpF2I: ClassSFU,
	OpSetP: ClassALU, OpSelP: ClassALU,
	OpBra: ClassCtrl, OpExit: ClassCtrl, OpBar: ClassCtrl,
	OpLdG: ClassMem, OpStG: ClassMem, OpLdS: ClassMem, OpStS: ClassMem,
	OpAtomAdd: ClassMem,
}

// Class reports the functional-unit class of the opcode.
func (op Opcode) Class() FuncClass {
	if op < numOpcodes {
		return opcodeClass[op]
	}
	return ClassALU
}

// IsBranch reports whether the opcode redirects control flow.
func (op Opcode) IsBranch() bool { return op == OpBra }

// IsLoad reports whether the opcode reads memory into a register.
func (op Opcode) IsLoad() bool { return op == OpLdG || op == OpLdS }

// IsStore reports whether the opcode writes memory.
func (op Opcode) IsStore() bool { return op == OpStG || op == OpStS }

// CmpOp is the comparison used by setp.
type CmpOp uint8

const (
	CmpEQ CmpOp = iota // signed / bitwise equality
	CmpNE
	CmpLT // signed <
	CmpLE
	CmpGT
	CmpGE
	CmpFEQ // float32 comparisons
	CmpFNE
	CmpFLT
	CmpFLE
	CmpFGT
	CmpFGE
	numCmps
)

var cmpNames = [...]string{
	CmpEQ: "eq", CmpNE: "ne", CmpLT: "lt", CmpLE: "le", CmpGT: "gt", CmpGE: "ge",
	CmpFEQ: "feq", CmpFNE: "fne", CmpFLT: "flt", CmpFLE: "fle", CmpFGT: "fgt", CmpFGE: "fge",
}

func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp%d", uint8(c))
}

// CmpByName resolves a setp comparison suffix.
func CmpByName(name string) (CmpOp, bool) {
	for c, n := range cmpNames {
		if n == name {
			return CmpOp(c), true
		}
	}
	return 0, false
}

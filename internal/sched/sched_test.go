package sched

import "testing"

func cands(slots ...int) []Candidate {
	out := make([]Candidate, len(slots))
	for i, s := range slots {
		out[i] = Candidate{Slot: s, Age: uint64(100 + s)}
	}
	return out
}

func TestGTOGreedy(t *testing.T) {
	g := NewPolicy("gto", 48)
	// First pick: oldest (lowest age = lowest slot here).
	if got := g.Pick(cands(4, 2, 8)); got != 2 {
		t.Fatalf("first pick %d, want oldest (2)", got)
	}
	// Greedy: stick with 2 while it stays ready.
	if got := g.Pick(cands(8, 2)); got != 2 {
		t.Fatalf("greedy pick %d, want 2", got)
	}
	// 2 stalls: fall back to the oldest ready.
	if got := g.Pick(cands(8, 4)); got != 4 {
		t.Fatalf("fallback pick %d, want 4", got)
	}
	// And stick with the new warp.
	if got := g.Pick(cands(8, 4)); got != 4 {
		t.Fatalf("greedy-after-switch %d, want 4", got)
	}
}

func TestGTOOldestByAge(t *testing.T) {
	g := &GTO{}
	c := []Candidate{{Slot: 1, Age: 50}, {Slot: 0, Age: 60}}
	if got := g.Pick(c); got != 1 {
		t.Fatalf("pick %d, want the older warp (slot 1)", got)
	}
}

func TestGTOReset(t *testing.T) {
	g := &GTO{}
	g.Pick(cands(5))
	g.Reset()
	if got := g.Pick(cands(3, 5)); got != 3 {
		t.Fatalf("after reset pick %d, want oldest (3)", got)
	}
}

func TestLRRRotation(t *testing.T) {
	l := NewPolicy("lrr", 8)
	// Rotation pointer starts at 0.
	if got := l.Pick(cands(0, 2, 4)); got != 0 {
		t.Fatalf("pick %d, want 0", got)
	}
	// Pointer moved past 0: next ready in circular order is 2.
	if got := l.Pick(cands(0, 2, 4)); got != 2 {
		t.Fatalf("pick %d, want 2", got)
	}
	if got := l.Pick(cands(0, 2, 4)); got != 4 {
		t.Fatalf("pick %d, want 4", got)
	}
	// Wraps around.
	if got := l.Pick(cands(0, 2, 4)); got != 0 {
		t.Fatalf("pick %d, want 0 after wrap", got)
	}
}

func TestLRRSkipsStalled(t *testing.T) {
	l := &LRR{maxSlots: 8}
	l.Pick(cands(0)) // pointer -> 1
	if got := l.Pick(cands(0, 6)); got != 6 {
		t.Fatalf("pick %d, want 6 (nearest at-or-after pointer)", got)
	}
}

func TestLRRSwitchesEveryCycle(t *testing.T) {
	// The defining LRR property: with two ready warps it alternates.
	l := &LRR{maxSlots: 4}
	seq := []int{}
	for i := 0; i < 6; i++ {
		seq = append(seq, l.Pick(cands(1, 3)))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			t.Fatalf("LRR repeated warp %d consecutively: %v", seq[i], seq)
		}
	}
}

func TestNewPolicyDefault(t *testing.T) {
	if NewPolicy("bogus", 8).Name() != "gto" {
		t.Fatal("unknown policy should default to GTO")
	}
	if NewPolicy("lrr", 8).Name() != "lrr" {
		t.Fatal("lrr lookup")
	}
}

// Package sched implements the warp scheduling policies of the paper's
// evaluation: Greedy-Then-Oldest (GTO, the Table 2 default) and Loose
// Round-Robin (LRR, the §6.5 sensitivity study).
package sched

// Candidate is a warp that could issue this cycle.
type Candidate struct {
	Slot int    // hardware warp slot id
	Age  uint64 // launch order stamp; smaller = older
}

// Policy picks the next warp among ready candidates. One Policy instance
// serves one scheduler (an SM has two, each owning half the warp slots), so
// implementations may keep per-scheduler state.
type Policy interface {
	Name() string
	// Pick returns the slot to issue from cands (non-empty) this cycle.
	Pick(cands []Candidate) int
	// Reset clears scheduler state between kernel launches.
	Reset()
}

// NewPolicy builds a policy by name ("gto" or "lrr").
func NewPolicy(name string, maxSlots int) Policy {
	switch name {
	case "lrr":
		return &LRR{maxSlots: maxSlots}
	default:
		return &GTO{}
	}
}

// GTO is Greedy-Then-Oldest: keep issuing from the same warp until it
// stalls, then switch to the oldest ready warp (paper §6.5).
type GTO struct {
	last    int
	hasLast bool
}

func (g *GTO) Name() string { return "gto" }

func (g *GTO) Pick(cands []Candidate) int {
	if g.hasLast {
		for _, c := range cands {
			if c.Slot == g.last {
				return c.Slot
			}
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Age < best.Age || (c.Age == best.Age && c.Slot < best.Slot) {
			best = c
		}
	}
	g.last, g.hasLast = best.Slot, true
	return best.Slot
}

func (g *GTO) Reset() { g.hasLast = false }

// LRR is Loose Round-Robin: switch warps every scheduling cycle, in circular
// slot order, as long as another ready warp is waiting (paper §6.5).
type LRR struct {
	maxSlots int
	next     int // first slot to consider this cycle
}

func (l *LRR) Name() string { return "lrr" }

func (l *LRR) Pick(cands []Candidate) int {
	if l.maxSlots <= 0 {
		return cands[0].Slot
	}
	// Choose the ready slot closest at-or-after the rotation pointer.
	bestDist := l.maxSlots + 1
	best := cands[0].Slot
	for _, c := range cands {
		d := (c.Slot - l.next + l.maxSlots) % l.maxSlots
		if d < bestDist {
			bestDist, best = d, c.Slot
		}
	}
	l.next = (best + 1) % l.maxSlots
	return best
}

func (l *LRR) Reset() { l.next = 0 }

package mem

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func fullMask() uint32 { return 0xFFFFFFFF }

// TestSharedBroadcast: all 32 lanes reading one word is a single-phase,
// single-fetch broadcast — no serialization, 31 piggybacking lanes.
func TestSharedBroadcast(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	for i := range addrs {
		addrs[i] = 128
	}
	a := AnalyzeShared(&addrs, fullMask(), 4)
	if a.Phases != 1 || a.Words != 1 || a.BroadcastHits != 31 {
		t.Fatalf("broadcast = %+v, want {Phases:1 Words:1 BroadcastHits:31}", a)
	}
}

// TestSharedInactiveLanes: masked-off lanes contribute nothing, even when
// their (stale) addresses would conflict with active lanes.
func TestSharedInactiveLanes(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	for i := range addrs {
		addrs[i] = uint32(i) * SharedBanks * 4 // all map to bank 0: worst case
	}
	// Only lanes 0 and 1 active: two distinct words on bank 0.
	a := AnalyzeShared(&addrs, 0b11, 4)
	if a.Phases != 2 || a.Words != 2 || a.BroadcastHits != 0 {
		t.Fatalf("two active lanes = %+v, want {Phases:2 Words:2 BroadcastHits:0}", a)
	}
	// No lanes active: Phases stays 1 so (Phases-1) adds zero cycles.
	a = AnalyzeShared(&addrs, 0, 4)
	if a.Phases != 1 || a.Words != 0 || a.BroadcastHits != 0 {
		t.Fatalf("empty mask = %+v, want {Phases:1 Words:0 BroadcastHits:0}", a)
	}
}

// TestSharedWorstCase: 32 lanes, 32 distinct words, one bank — fully
// serialized.
func TestSharedWorstCase(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	for i := range addrs {
		addrs[i] = uint32(i) * SharedBanks * 4
	}
	a := AnalyzeShared(&addrs, fullMask(), 4)
	if a.Phases != 32 || a.Words != 32 || a.BroadcastHits != 0 {
		t.Fatalf("32-way conflict = %+v, want {Phases:32 Words:32 BroadcastHits:0}", a)
	}
}

// TestSharedUnitStride: the canonical conflict-free pattern — 32 consecutive
// words hit 32 distinct banks in one phase.
func TestSharedUnitStride(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	for i := range addrs {
		addrs[i] = uint32(i) * 4
	}
	a := AnalyzeShared(&addrs, fullMask(), 4)
	if a.Phases != 1 || a.Words != 32 || a.BroadcastHits != 0 {
		t.Fatalf("unit stride = %+v, want {Phases:1 Words:32 BroadcastHits:0}", a)
	}
}

// TestShared64Bit: a 64-bit lane access spans two consecutive banks. Unit
// stride-8 covers all 64 words of two full bank rows (two phases); a 64-bit
// broadcast costs exactly two fetches.
func TestShared64Bit(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	for i := range addrs {
		addrs[i] = uint32(i) * 8
	}
	a := AnalyzeShared(&addrs, fullMask(), 8)
	if a.Phases != 2 || a.Words != 64 || a.BroadcastHits != 0 {
		t.Fatalf("64-bit unit stride = %+v, want {Phases:2 Words:64 BroadcastHits:0}", a)
	}
	for i := range addrs {
		addrs[i] = 256
	}
	a = AnalyzeShared(&addrs, fullMask(), 8)
	if a.Phases != 1 || a.Words != 2 || a.BroadcastHits != 62 {
		t.Fatalf("64-bit broadcast = %+v, want {Phases:1 Words:2 BroadcastHits:62}", a)
	}
}

// TestSharedWidthGuard: the model accepts exactly the two widths the bank
// layout defines; anything else is a programming error at the API boundary.
func TestSharedWidthGuard(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	defer func() {
		if recover() == nil {
			t.Fatal("AnalyzeShared accepted a 16-byte access width")
		}
	}()
	AnalyzeShared(&addrs, fullMask(), 16)
}

// TestSharedConflictDegreeAgrees pins the historical entry point to the new
// model: for any address vector and mask, SharedConflictDegree is exactly
// AnalyzeShared's phase count at the native 4-byte width.
func TestSharedConflictDegreeAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var addrs [isa.WarpSize]uint32
		for i := range addrs {
			addrs[i] = uint32(r.Intn(256)) * 4
		}
		mask := r.Uint32()
		want := AnalyzeShared(&addrs, mask, 4).Phases
		if got := SharedConflictDegree(&addrs, mask); got != want {
			t.Fatalf("trial %d: SharedConflictDegree = %d, AnalyzeShared.Phases = %d", trial, got, want)
		}
	}
}

// TestSharedPhasesBoundWords: phases can never exceed distinct words, and
// bank accesses plus broadcasts always account for every active lane request.
func TestSharedPhasesBoundWords(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var addrs [isa.WarpSize]uint32
		for i := range addrs {
			addrs[i] = uint32(r.Intn(64)) * 4
		}
		mask := r.Uint32()
		a := AnalyzeShared(&addrs, mask, 4)
		active := 0
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<lane) != 0 {
				active++
			}
		}
		if a.Words+a.BroadcastHits != active {
			t.Fatalf("trial %d: %d words + %d broadcasts != %d active lanes", trial, a.Words, a.BroadcastHits, active)
		}
		if a.Words > 0 && a.Phases > a.Words {
			t.Fatalf("trial %d: %d phases exceed %d distinct words", trial, a.Phases, a.Words)
		}
	}
}

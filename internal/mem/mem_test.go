package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestGlobalLoadStore(t *testing.T) {
	g := NewGlobal(4096)
	if err := g.Store32(102, 0xDEADBEEF); err == nil {
		t.Fatal("unaligned store accepted")
	}
	if err := g.Store32(104, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := g.Load32(104)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("load %x %v", v, err)
	}
	if _, err := g.Load32(4096); err == nil {
		t.Fatal("out-of-bounds load accepted")
	}
	if _, err := g.Load32(4094); err == nil {
		t.Fatal("straddling load accepted")
	}
}

func TestAllocAlignment(t *testing.T) {
	g := NewGlobal(1 << 16)
	a1, err := g.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := g.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a1%SegmentBytes != 0 || a2%SegmentBytes != 0 {
		t.Fatalf("allocations not segment aligned: %d %d", a1, a2)
	}
	if a2 != a1+SegmentBytes {
		t.Fatalf("10-byte alloc should consume one segment, got %d -> %d", a1, a2)
	}
	if _, err := g.Alloc(1 << 20); err == nil {
		t.Fatal("oversized alloc accepted")
	}
	if _, err := g.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestHostTransfers(t *testing.T) {
	g := NewGlobal(4096)
	ints := []int32{1, -2, 3}
	if err := g.WriteInt32(0, ints); err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadInt32(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if got[i] != ints[i] {
			t.Fatalf("int roundtrip: %v", got)
		}
	}
	fl := []float32{1.5, -0.25, 3e9}
	if err := g.WriteFloat32(128, fl); err != nil {
		t.Fatal(err)
	}
	gf, err := g.ReadFloat32(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fl {
		if gf[i] != fl[i] {
			t.Fatalf("float roundtrip: %v", gf)
		}
	}
}

func TestCoalescing(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	// Perfectly coalesced: 32 consecutive words = one 128B segment.
	for i := range addrs {
		addrs[i] = uint32(4 * i)
	}
	if n := CoalesceSegments(&addrs, 0xFFFFFFFF); n != 1 {
		t.Fatalf("consecutive: %d segments, want 1", n)
	}
	// Stride-128: every lane its own segment.
	for i := range addrs {
		addrs[i] = uint32(128 * i)
	}
	if n := CoalesceSegments(&addrs, 0xFFFFFFFF); n != 32 {
		t.Fatalf("stride-128: %d segments, want 32", n)
	}
	// Mask limits the count.
	if n := CoalesceSegments(&addrs, 0x3); n != 2 {
		t.Fatalf("masked: %d segments, want 2", n)
	}
	// Broadcast: one segment.
	for i := range addrs {
		addrs[i] = 512
	}
	if n := CoalesceSegments(&addrs, 0xFFFFFFFF); n != 1 {
		t.Fatalf("broadcast: %d segments, want 1", n)
	}
	// Inactive warp: zero transactions.
	if n := CoalesceSegments(&addrs, 0); n != 0 {
		t.Fatalf("empty mask: %d segments, want 0", n)
	}
}

// TestCoalesceListAgreesWithCount: the segment list and the counter must
// agree for random address patterns.
func TestCoalesceListAgreesWithCount(t *testing.T) {
	f := func(addrs [isa.WarpSize]uint32, mask uint32) bool {
		n := CoalesceSegments(&addrs, mask)
		list := CoalesceSegmentList(&addrs, mask, nil)
		return n == len(list)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedConflicts(t *testing.T) {
	var addrs [isa.WarpSize]uint32
	// Consecutive words: conflict-free (degree 1).
	for i := range addrs {
		addrs[i] = uint32(4 * i)
	}
	if d := SharedConflictDegree(&addrs, 0xFFFFFFFF); d != 1 {
		t.Fatalf("consecutive: degree %d, want 1", d)
	}
	// Stride-32 words: all lanes hit bank 0 -> 32-way conflict.
	for i := range addrs {
		addrs[i] = uint32(4 * 32 * i)
	}
	if d := SharedConflictDegree(&addrs, 0xFFFFFFFF); d != 32 {
		t.Fatalf("stride-32: degree %d, want 32", d)
	}
	// Broadcast of one word: degree 1.
	for i := range addrs {
		addrs[i] = 64
	}
	if d := SharedConflictDegree(&addrs, 0xFFFFFFFF); d != 1 {
		t.Fatalf("broadcast: degree %d, want 1", d)
	}
	if d := SharedConflictDegree(&addrs, 0); d != 1 {
		t.Fatalf("empty mask: degree %d, want 1", d)
	}
}

func TestPipeLatencyAndBandwidth(t *testing.T) {
	p := NewPipe(100, 8)
	// One transaction at cycle 10: data at 110.
	r, ok := p.TryIssue(10, 1)
	if !ok || r != 110 {
		t.Fatalf("single txn ready at %d", r)
	}
	// Four more issue back to back (1/cycle): last at cycle 14 -> 114.
	r, ok = p.TryIssue(10, 4)
	if !ok || r != 114 {
		t.Fatalf("burst ready at %d, want 114", r)
	}
	// Capacity: 5 in flight, 4 more would exceed 8.
	if _, ok := p.TryIssue(10, 4); ok {
		t.Fatal("capacity exceeded but accepted")
	}
	// Three fit exactly.
	if _, ok := p.TryIssue(10, 3); !ok {
		t.Fatal("exact fit rejected")
	}
	// After completion the pipe drains.
	if _, ok := p.TryIssue(300, 8); !ok {
		t.Fatal("drained pipe rejected issue")
	}
	if p.Transactions() != 16 {
		t.Fatalf("transactions %d, want 16", p.Transactions())
	}
}

func TestPipeZeroTxns(t *testing.T) {
	p := NewPipe(100, 4)
	r, ok := p.TryIssue(42, 0)
	if !ok || r != 42 {
		t.Fatal("zero transactions should complete immediately")
	}
}

func TestCacheBasic(t *testing.T) {
	c := NewCache(2*SegmentBytes*2, 2) // 2 sets x 2 ways
	if c.Access(0) {
		t.Fatal("cold miss reported as hit")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	// Fill set 0 beyond associativity: segments 0, 2, 4 map to set 0.
	c.Access(2)
	c.Access(4) // evicts LRU (segment 0)
	if c.Access(0) {
		t.Fatal("evicted line reported as hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 4 {
		t.Fatalf("stats %d/%d, want 1/4", hits, misses)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(SegmentBytes*2, 2) // 1 set x 2 ways
	c.Access(10)
	c.Access(20)
	c.Access(10) // refresh 10; 20 becomes LRU
	c.Access(30) // evicts 20
	if !c.Access(10) {
		t.Fatal("recently used line evicted")
	}
	if c.Access(20) {
		t.Fatal("LRU line survived")
	}
}

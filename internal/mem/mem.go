// Package mem provides the GPU memory substrate: functional global memory
// with a bump allocator for host data, warp-level access coalescing, shared
// memory bank-conflict analysis, and a simple latency/bandwidth pipe for
// timing global transactions.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// SegmentBytes is the memory transaction granularity; a warp access is
// coalesced into 128-byte segments as on Fermi-class hardware.
const SegmentBytes = 128

// Global is the device global memory: a flat byte-addressable array plus a
// bump allocator so benchmarks can place their inputs.
//
// The backing store grows on demand: a fresh device is an empty slice, and
// the first store beyond the current backing doubles it (bounded by the
// configured capacity). Loads past the backing but within capacity read 0,
// exactly what an eagerly zeroed array would return, so the lazy growth is
// invisible to kernels — it only avoids zeroing (and committing) tens of
// megabytes per GPU when a workload touches a fraction of the device.
type Global struct {
	data []byte // backing store; len(data) <= size, grown on first store
	size int    // device capacity in bytes
	brk  uint32
}

// NewGlobal builds a device memory of `size` bytes (word aligned). No
// backing store is allocated until it is written.
func NewGlobal(size int) *Global {
	if size <= 0 || size%4 != 0 {
		panic("mem: global size must be a positive multiple of 4")
	}
	return &Global{size: size}
}

// Size returns the device memory capacity in bytes.
func (g *Global) Size() int { return g.size }

// Alloc reserves n bytes (rounded up to 128-byte alignment for clean
// coalescing) and returns the device address.
func (g *Global) Alloc(n int) (uint32, error) {
	if n < 0 {
		return 0, fmt.Errorf("mem: negative allocation")
	}
	aligned := (uint32(n) + SegmentBytes - 1) &^ (SegmentBytes - 1)
	if int(g.brk)+int(aligned) > g.size {
		return 0, fmt.Errorf("mem: out of device memory (%d requested, %d free)", n, g.size-int(g.brk))
	}
	addr := g.brk
	g.brk += aligned
	return addr, nil
}

// Load32 reads a 32-bit word; addr must be 4-byte aligned and in bounds.
// Words beyond the lazily grown backing store (but within capacity) read 0.
func (g *Global) Load32(addr uint32) (uint32, error) {
	if addr%4 == 0 && int(addr)+4 <= len(g.data) {
		return binary.LittleEndian.Uint32(g.data[addr:]), nil
	}
	if err := g.check(addr); err != nil {
		return 0, err
	}
	return 0, nil // untouched memory is zero
}

// Store32 writes a 32-bit word, growing the backing store when the address
// lies beyond it.
func (g *Global) Store32(addr, v uint32) error {
	if addr%4 == 0 && int(addr)+4 <= len(g.data) {
		binary.LittleEndian.PutUint32(g.data[addr:], v)
		return nil
	}
	if err := g.check(addr); err != nil {
		return err
	}
	g.grow(int(addr) + 4)
	binary.LittleEndian.PutUint32(g.data[addr:], v)
	return nil
}

// grow extends the backing store to hold at least need bytes, doubling to
// amortize the copy; total zeroing over a run stays O(bytes touched).
func (g *Global) grow(need int) {
	newLen := len(g.data) * 2
	if newLen < need {
		newLen = need
	}
	if newLen < 4096 {
		newLen = 4096
	}
	if newLen > g.size {
		newLen = g.size
	}
	data := make([]byte, newLen)
	copy(data, g.data)
	g.data = data
}

// Check32 validates a 32-bit access (alignment and capacity) without
// touching memory. Callers that buffer stores for deferred application use
// it to surface access errors at issue time; a checked Store32 can then
// never fail.
func (g *Global) Check32(addr uint32) error { return g.check(addr) }

// Presize grows the backing store to the allocator's high-water mark, so
// every address handed out by Alloc is backed without further growth.
// Stores beyond the allocator frontier may still grow the backing lazily;
// callers that share the Global across goroutines must serialize those
// (concurrent loads against a non-growing backing are safe).
func (g *Global) Presize() {
	if int(g.brk) > len(g.data) {
		g.grow(int(g.brk))
	}
}

func (g *Global) check(addr uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("mem: unaligned access at 0x%x", addr)
	}
	if int(addr)+4 > g.size {
		return fmt.Errorf("mem: access at 0x%x beyond device memory (%d bytes)", addr, g.size)
	}
	return nil
}

// WriteInt32 copies host int32 data to device address addr.
func (g *Global) WriteInt32(addr uint32, vals []int32) error {
	for i, v := range vals {
		if err := g.Store32(addr+uint32(4*i), uint32(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadInt32 copies n int32 words from device address addr to the host.
func (g *Global) ReadInt32(addr uint32, n int) ([]int32, error) {
	out := make([]int32, n)
	for i := range out {
		v, err := g.Load32(addr + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}

// WriteFloat32 copies host float32 data to device address addr.
func (g *Global) WriteFloat32(addr uint32, vals []float32) error {
	for i, v := range vals {
		if err := g.Store32(addr+uint32(4*i), math.Float32bits(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadFloat32 copies n float32 words from device address addr to the host.
func (g *Global) ReadFloat32(addr uint32, n int) ([]float32, error) {
	out := make([]float32, n)
	for i := range out {
		v, err := g.Load32(addr + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = math.Float32frombits(v)
	}
	return out, nil
}

// CoalesceSegments counts the distinct 128-byte segments the active lanes of
// a warp touch — the number of memory transactions the access generates.
func CoalesceSegments(addrs *[isa.WarpSize]uint32, mask uint32) int {
	var segs [isa.WarpSize]uint32
	n := 0
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		seg := addrs[lane] / SegmentBytes
		dup := false
		for _, s := range segs[:n] {
			if s == seg {
				dup = true
				break
			}
		}
		if !dup {
			segs[n] = seg
			n++
		}
	}
	return n
}

// Pipe is the global-memory timing model: transactions issue at one per
// cycle, each completes after Latency cycles, and at most MaxInflight may be
// outstanding.
type Pipe struct {
	Latency     int
	MaxInflight int

	inflight []uint64 // completion cycles of outstanding transactions
	nextFree uint64   // next cycle the issue port is free
	txns     uint64
}

// NewPipe builds a memory pipe.
func NewPipe(latency, maxInflight int) *Pipe {
	if latency < 1 || maxInflight < 1 {
		panic("mem: pipe needs latency >= 1 and capacity >= 1")
	}
	return &Pipe{Latency: latency, MaxInflight: maxInflight}
}

// TryIssue attempts to issue `txns` transactions at cycle now; on success it
// returns the cycle the last transaction's data is available.
func (p *Pipe) TryIssue(now uint64, txns int) (ready uint64, ok bool) {
	if txns <= 0 {
		return now, true
	}
	p.reap(now)
	if len(p.inflight)+txns > p.MaxInflight {
		return 0, false
	}
	start := now
	if p.nextFree > start {
		start = p.nextFree
	}
	last := start + uint64(txns-1)
	p.nextFree = last + 1
	ready = last + uint64(p.Latency)
	for i := 0; i < txns; i++ {
		p.inflight = append(p.inflight, start+uint64(i)+uint64(p.Latency))
	}
	p.txns += uint64(txns)
	return ready, true
}

// Transactions returns the total transactions issued.
func (p *Pipe) Transactions() uint64 { return p.txns }

// reap drops completed transactions.
func (p *Pipe) reap(now uint64) {
	out := p.inflight[:0]
	for _, c := range p.inflight {
		if c > now {
			out = append(out, c)
		}
	}
	p.inflight = out
}

package mem

// Cache is a per-SM L1 data cache model (tags only — data values are kept
// functionally in Global). Set-associative with LRU replacement and
// 128-byte lines matching the coalescing segment size, like the Fermi L1
// the paper's GPGPU-Sim baseline configures.
type Cache struct {
	sets  int
	ways  int
	tags  [][]uint32 // [set][way], tag = segment index / sets
	valid [][]bool
	lru   [][]uint64 // last-use stamps
	tick  uint64

	hits, misses uint64
}

// NewCache builds a cache of sizeBytes with the given associativity; line
// size is SegmentBytes. sizeBytes must be a positive multiple of
// ways*SegmentBytes.
func NewCache(sizeBytes, ways int) *Cache {
	if ways < 1 || sizeBytes < ways*SegmentBytes || sizeBytes%(ways*SegmentBytes) != 0 {
		panic("mem: invalid cache geometry")
	}
	sets := sizeBytes / (ways * SegmentBytes)
	c := &Cache{sets: sets, ways: ways}
	c.tags = make([][]uint32, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint32, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c
}

// Access looks up the 128-byte segment containing addr, fills it on a miss,
// and reports whether it hit.
func (c *Cache) Access(segment uint32) bool {
	c.tick++
	set := int(segment) % c.sets
	tag := segment / uint32(c.sets)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.tick
			c.hits++
			return true
		}
		if !c.valid[set][w] {
			victim, oldest = w, 0
		} else if c.lru[set][w] < oldest {
			victim, oldest = w, c.lru[set][w]
		}
	}
	c.misses++
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.lru[set][victim] = c.tick
	return false
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// CoalesceSegmentList writes the distinct 128-byte segment indices touched
// by the active lanes into buf (capacity 32 suffices) and returns the slice.
func CoalesceSegmentList(addrs *[32]uint32, mask uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		seg := addrs[lane] / SegmentBytes
		dup := false
		for _, s := range buf {
			if s == seg {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, seg)
		}
	}
	return buf
}

package mem

// Cache is a per-SM L1 data cache model (tags only — data values are kept
// functionally in Global). Set-associative with LRU replacement and
// 128-byte lines matching the coalescing segment size, like the Fermi L1
// the paper's GPGPU-Sim baseline configures.
type Cache struct {
	sets  int
	ways  int
	tags  []uint32 // flat [set*ways+way], tag = segment index / sets
	valid []bool
	lru   []uint64 // last-use stamps
	tick  uint64

	hits, misses uint64
}

// NewCache builds a cache of sizeBytes with the given associativity; line
// size is SegmentBytes. sizeBytes must be a positive multiple of
// ways*SegmentBytes.
func NewCache(sizeBytes, ways int) *Cache {
	if ways < 1 || sizeBytes < ways*SegmentBytes || sizeBytes%(ways*SegmentBytes) != 0 {
		panic("mem: invalid cache geometry")
	}
	sets := sizeBytes / (ways * SegmentBytes)
	return &Cache{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint32, sets*ways),
		valid: make([]bool, sets*ways),
		lru:   make([]uint64, sets*ways),
	}
}

// Access looks up the 128-byte segment containing addr, fills it on a miss,
// and reports whether it hit.
func (c *Cache) Access(segment uint32) bool {
	c.tick++
	set := int(segment) % c.sets
	tag := segment / uint32(c.sets)
	base := set * c.ways
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.tick
			c.hits++
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	c.misses++
	c.valid[victim] = true
	c.tags[victim] = tag
	c.lru[victim] = c.tick
	return false
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// CoalesceSegmentList writes the distinct 128-byte segment indices touched
// by the active lanes into buf (capacity 32 suffices) and returns the slice.
func CoalesceSegmentList(addrs *[32]uint32, mask uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		seg := addrs[lane] / SegmentBytes
		dup := false
		for _, s := range buf {
			if s == seg {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, seg)
		}
	}
	return buf
}

package mem

import (
	"fmt"

	"repro/internal/isa"
)

// Shared-memory bank model: Fermi-class shared memory is organized as 32
// banks with successive 4-byte words mapped to successive banks. A warp
// access that maps two or more distinct words onto one bank serializes into
// that many phases; lanes requesting the same word are served by a single
// fetch and broadcast (conflict-free, regardless of how many lanes share
// it).
const (
	// SharedBanks is the number of shared-memory banks.
	SharedBanks = 32
	// SharedWordBytes is the bank interleave granularity: one 4-byte word
	// per bank per phase.
	SharedWordBytes = 4
)

// SharedAccess summarizes the bank-level behaviour of one warp shared-memory
// access. All three counts are pure functions of the lane addresses and the
// active mask — independent of timing configuration, which is what lets
// record mode capture them and replay mode reproduce them exactly.
type SharedAccess struct {
	// Phases is the number of serialized access phases: the maximum number
	// of distinct words mapped onto one bank. 1 when the access is
	// conflict-free — and also when no lane is active, so callers can add
	// (Phases-1) serialization cycles unconditionally.
	Phases int
	// Words is the number of distinct words fetched — the bank row
	// activations the access costs across all its phases.
	Words int
	// BroadcastHits counts lane word-requests served by another lane's
	// fetch of the same word (total word-requests minus distinct words).
	BroadcastHits int
}

// AnalyzeShared models one warp shared-memory access against the 32-bank
// layout. accessBytes is the per-lane access width: 4 for the ISA's 32-bit
// ld.shared/st.shared, 8 for a 64-bit access, which occupies two consecutive
// banks (its two words are deduplicated and counted independently, so a
// 64-bit broadcast still costs exactly two bank rows). Other widths are a
// programming error. addrs must be word aligned for the lanes selected by
// mask; the implementation uses only fixed-size stack buffers, so the
// per-instruction hot path performs no heap allocation.
func AnalyzeShared(addrs *[isa.WarpSize]uint32, mask uint32, accessBytes int) SharedAccess {
	if accessBytes != 4 && accessBytes != 8 {
		panic(fmt.Sprintf("mem: shared access width %d bytes (want 4 or 8)", accessBytes))
	}
	wordsPerLane := accessBytes / SharedWordBytes
	// A word's value determines its bank, so deduplicating words globally
	// and counting occupancy per bank is equivalent to keeping per-bank
	// word lists — and needs only fixed-size stack arrays.
	var seen [2 * isa.WarpSize]uint32
	var count [SharedBanks]uint8
	var a SharedAccess
	n := 0
	requests := 0
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		w0 := addrs[lane] / SharedWordBytes
		for k := 0; k < wordsPerLane; k++ {
			word := w0 + uint32(k)
			requests++
			dup := false
			for _, w := range seen[:n] {
				if w == word {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[n] = word
			n++
			b := word % SharedBanks
			count[b]++
			if int(count[b]) > a.Phases {
				a.Phases = int(count[b])
			}
		}
	}
	a.Words = n
	a.BroadcastHits = requests - n
	if a.Phases == 0 {
		a.Phases = 1
	}
	return a
}

// SharedConflictDegree returns the number of serialized access phases of a
// 32-bit warp shared-memory access — AnalyzeShared's Phases for the ISA's
// native 4-byte width. Kept as the timing model's historical entry point;
// new callers that also need bank activations or broadcast counts should
// use AnalyzeShared directly.
func SharedConflictDegree(addrs *[isa.WarpSize]uint32, mask uint32) int {
	return AnalyzeShared(addrs, mask, SharedWordBytes).Phases
}

package sweep

import (
	"path/filepath"
	"testing"
)

// TestExampleSpecsLoad parses and expands every committed campaign preset
// under examples/sweeps — a preset that drifts from the spec format or
// names an unregistered benchmark/scheme should fail here, not on a
// cluster.
func TestExampleSpecsLoad(t *testing.T) {
	paths, err := filepath.Glob("../../examples/sweeps/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example sweep specs found")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			s, err := Load(p)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			jobs, err := s.Jobs()
			if err != nil {
				t.Fatalf("Jobs: %v", err)
			}
			if len(jobs) == 0 {
				t.Fatalf("%s expands to no jobs", p)
			}
		})
	}
}

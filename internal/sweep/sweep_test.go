package sweep_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
)

func mustParse(t *testing.T, doc string) *sweep.Spec {
	t.Helper()
	s, err := sweep.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func jobNames(jobs []sweep.Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.Name + "/" + j.Benchmark
	}
	return out
}

// TestGridExpansionOrder pins the deterministic expansion contract the
// cluster report's byte-stability builds on: explicit configs in spec
// order, then grid points with axes sorted and the rightmost varying
// fastest, each crossed config-major with the benchmarks.
func TestGridExpansionOrder(t *testing.T) {
	s := mustParse(t, `{
		"name": "order",
		"benchmarks": ["bfs", "pathfinder"],
		"base": {"NumSMs": 2},
		"configs": [{"name": "stock"}],
		"grid": {
			"DecompressLatency": [1, 2],
			"CompressLatency": [4, 8]
		}
	}`)
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"stock/bfs", "stock/pathfinder",
		"CompressLatency=4,DecompressLatency=1/bfs", "CompressLatency=4,DecompressLatency=1/pathfinder",
		"CompressLatency=4,DecompressLatency=2/bfs", "CompressLatency=4,DecompressLatency=2/pathfinder",
		"CompressLatency=8,DecompressLatency=1/bfs", "CompressLatency=8,DecompressLatency=1/pathfinder",
		"CompressLatency=8,DecompressLatency=2/bfs", "CompressLatency=8,DecompressLatency=2/pathfinder",
	}
	got := jobNames(jobs)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("expansion order:\n got %v\nwant %v", got, want)
	}
	// The overrides really landed.
	if jobs[2].Config.CompressLatency != 4 || jobs[2].Config.DecompressLatency != 1 {
		t.Fatalf("grid point config = %+v", jobs[2].Config)
	}
	if jobs[0].Config.NumSMs != 2 {
		t.Fatalf("base override lost: NumSMs = %d, want 2", jobs[0].Config.NumSMs)
	}
}

// TestPresets: "baseline" seeds from BaselineConfig, the default from the
// paper's warped configuration, and a spec with no configs or grid is the
// preset itself.
func TestPresets(t *testing.T) {
	s := mustParse(t, `{"name": "p", "benchmarks": ["bfs"], "preset": "baseline"}`)
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "baseline" {
		t.Fatalf("jobs = %v, want one job named baseline", jobNames(jobs))
	}
	if want := sim.BaselineConfig(); jobs[0].Config != want {
		t.Fatalf("baseline preset config differs from sim.BaselineConfig")
	}

	s = mustParse(t, `{"name": "p", "benchmarks": ["bfs"]}`)
	jobs, err = s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "warped" || jobs[0].Config != sim.DefaultConfig() {
		t.Fatalf("default preset = %v (%+v)", jobNames(jobs), jobs[0].Config)
	}
}

// TestSpecValidation enumerates the rejection paths: every bad spec must
// fail Parse with a SpecError naming the offending part.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		doc  string
		want string // substring of the error
	}{
		{`{"benchmarks": ["bfs"]}`, "name"},
		{`{"name": "x"}`, "benchmark"},
		{`{"name": "x", "benchmarks": ["no-such-kernel"]}`, "unknown benchmark"},
		{`{"name": "x", "benchmarks": ["bfs", "bfs"]}`, "twice"},
		{`{"name": "x", "benchmarks": ["bfs"], "preset": "turbo"}`, "preset"},
		{`{"name": "x", "benchmarks": ["bfs"], "configs": [{"overrides": {}}]}`, "no name"},
		{`{"name": "x", "benchmarks": ["bfs"], "configs": [{"name": "a"}, {"name": "a"}]}`, "used twice"},
		{`{"name": "x", "benchmarks": ["bfs"], "grid": {"CompressLatency": []}}`, "no values"},
		{`{"name": "x", "benchmarks": ["bfs"], "base": {"NoSuchField": 1}}`, "NoSuchField"},
		{`{"name": "x", "benchmarks": ["bfs"], "base": {"NumSMs": 0}}`, "NumSMs"},
		{`{"name": "x", "benchmarks": ["bfs"], "typo": true}`, "typo"},
		{`{"name": "x", "benchmarks": ["bfs"], "configs": [{"name": "CompressLatency=1"}], "grid": {"CompressLatency": [1]}}`, "collides"},
	}
	for _, tc := range cases {
		_, err := sweep.Parse([]byte(tc.doc))
		if err == nil {
			t.Errorf("Parse(%s) accepted a bad spec", tc.doc)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%s) error = %q, want mention of %q", tc.doc, err, tc.want)
		}
	}
}

// TestLoad round-trips a spec through a file, including the path context
// on errors.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"name": "f", "benchmarks": ["bfs"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := sweep.Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "f" {
		t.Fatalf("loaded name %q", s.Name)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"benchmarks": ["bfs"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Load(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("Load error %v, want the file named", err)
	}
	if _, err := sweep.Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load of a missing file must fail")
	}
}

// Package sweep loads experiment-campaign specifications: a named set of
// sim.Config variations crossed with a benchmark list. A spec is the unit
// of work the cluster coordinator shards across warpedd workers
// (cmd/warpedctl), but it is deliberately transport-agnostic — expansion
// produces plain (name, benchmark, sim.Config) jobs that any runner can
// execute.
//
// Spec JSON:
//
//	{
//	  "name": "fig20-latency",
//	  "benchmarks": ["bfs", "pathfinder"],
//	  "preset": "warped",                  // or "baseline"; default "warped"
//	  "base": {"NumSMs": 2},               // overrides applied to every config
//	  "configs": [                         // explicit named configurations
//	    {"name": "fast", "overrides": {"CompressLatency": 1}}
//	  ],
//	  "grid": {                            // cross-product axes (field → values)
//	    "CompressLatency": [2, 4, 8],
//	    "PowerGating": [true, false]
//	  }
//	}
//
// Overrides address sim.Config fields by their Go names; unknown fields
// are rejected, and every expanded configuration must pass
// sim.Config.Validate. Expansion order is deterministic: explicit configs
// in spec order first, then the grid with axes in sorted field order and
// the rightmost axis varying fastest — so two loads of the same spec
// always yield the identical job list, which the cluster report's
// byte-stability guarantee builds on.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// Spec is a parsed campaign specification. Build one with Load or Parse —
// both validate — and expand it with Jobs.
type Spec struct {
	// Name identifies the campaign; it is echoed into the merged report.
	Name string `json:"name"`
	// Benchmarks are the registered workload names every configuration
	// runs on.
	Benchmarks []string `json:"benchmarks"`
	// Preset seeds each configuration: "warped" (paper Table 2, default)
	// or "baseline" (compression and gating off).
	Preset string `json:"preset,omitempty"`
	// Base holds sim.Config field overrides applied to every
	// configuration before its own overrides.
	Base json.RawMessage `json:"base,omitempty"`
	// Configs are explicit named configurations.
	Configs []ConfigSpec `json:"configs,omitempty"`
	// Grid maps sim.Config field names to value lists; the cross product
	// of all axes is appended after Configs.
	Grid map[string][]json.RawMessage `json:"grid,omitempty"`
}

// ConfigSpec is one explicit configuration of a campaign.
type ConfigSpec struct {
	Name      string          `json:"name"`
	Overrides json.RawMessage `json:"overrides,omitempty"`
}

// Job is one expanded unit of work: a named configuration on a benchmark.
type Job struct {
	// Name is the configuration's name (explicit, or "Field=value,..."
	// for grid points).
	Name      string
	Benchmark string
	Config    sim.Config
}

// SpecError is a typed specification failure: which part of the spec is
// wrong and why.
type SpecError struct {
	Part   string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("sweep: invalid %s: %s", e.Part, e.Reason)
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Parse decodes and validates a spec document. The decode is strict:
// unknown top-level or config fields are errors, catching typos before a
// campaign burns cluster time.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: bad spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return &SpecError{"name", "missing campaign name"}
	}
	if len(s.Benchmarks) == 0 {
		return &SpecError{"benchmarks", "need at least one benchmark"}
	}
	seenB := map[string]bool{}
	for _, b := range s.Benchmarks {
		if _, ok := kernels.ByName(b); !ok {
			return &SpecError{"benchmarks", fmt.Sprintf("unknown benchmark %q", b)}
		}
		if seenB[b] {
			return &SpecError{"benchmarks", fmt.Sprintf("benchmark %q listed twice", b)}
		}
		seenB[b] = true
	}
	switch s.Preset {
	case "", "warped", "baseline":
	default:
		return &SpecError{"preset", fmt.Sprintf("unknown preset %q (have warped, baseline)", s.Preset)}
	}
	seenC := map[string]bool{}
	for i, c := range s.Configs {
		if c.Name == "" {
			return &SpecError{"configs", fmt.Sprintf("config #%d has no name", i)}
		}
		if seenC[c.Name] {
			return &SpecError{"configs", fmt.Sprintf("config name %q used twice", c.Name)}
		}
		seenC[c.Name] = true
	}
	for axis, vals := range s.Grid {
		if len(vals) == 0 {
			return &SpecError{"grid", fmt.Sprintf("axis %q has no values", axis)}
		}
	}
	// The expansion itself (unknown fields, invalid combinations) is
	// checked in Jobs, where the full config is in hand.
	_, err := s.Jobs()
	return err
}

// preset returns the spec's starting configuration.
func (s *Spec) preset() sim.Config {
	if s.Preset == "baseline" {
		return sim.BaselineConfig()
	}
	return sim.DefaultConfig()
}

// Jobs expands the spec into its deterministic job list: each named
// configuration (explicit first, then grid points) crossed with each
// benchmark, config-major. Every configuration is fully validated.
func (s *Spec) Jobs() ([]Job, error) {
	type named struct {
		name string
		cfg  sim.Config
	}
	base := s.preset()
	if len(s.Base) > 0 {
		if err := applyOverrides(&base, s.Base); err != nil {
			return nil, &SpecError{"base", err.Error()}
		}
	}

	var configs []named
	for _, cs := range s.Configs {
		cfg := base
		if len(cs.Overrides) > 0 {
			if err := applyOverrides(&cfg, cs.Overrides); err != nil {
				return nil, &SpecError{"configs", fmt.Sprintf("%s: %v", cs.Name, err)}
			}
		}
		configs = append(configs, named{cs.Name, cfg})
	}

	points, err := s.gridPoints(base)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		configs = append(configs, named(p))
	}

	if len(configs) == 0 {
		// No explicit configs and no grid: the campaign is the preset (+
		// base overrides) itself.
		name := s.Preset
		if name == "" {
			name = "warped"
		}
		configs = append(configs, named{name, base})
	}

	seen := map[string]bool{}
	jobs := make([]Job, 0, len(configs)*len(s.Benchmarks))
	for _, c := range configs {
		if seen[c.name] {
			return nil, &SpecError{"grid", fmt.Sprintf("config name %q used twice (explicit config collides with a grid point?)", c.name)}
		}
		seen[c.name] = true
		if err := c.cfg.Validate(); err != nil {
			return nil, &SpecError{"configs", fmt.Sprintf("%s: %v", c.name, err)}
		}
		for _, b := range s.Benchmarks {
			jobs = append(jobs, Job{Name: c.name, Benchmark: b, Config: c.cfg})
		}
	}
	return jobs, nil
}

// gridPoints expands the grid axes into named configurations: axes in
// sorted field order, rightmost varying fastest (odometer order).
func (s *Spec) gridPoints(base sim.Config) ([]struct {
	name string
	cfg  sim.Config
}, error) {
	if len(s.Grid) == 0 {
		return nil, nil
	}
	axes := make([]string, 0, len(s.Grid))
	for axis := range s.Grid {
		axes = append(axes, axis)
	}
	sort.Strings(axes)

	var out []struct {
		name string
		cfg  sim.Config
	}
	idx := make([]int, len(axes))
	for {
		cfg := base
		parts := make([]string, len(axes))
		for i, axis := range axes {
			val := s.Grid[axis][idx[i]]
			one := json.RawMessage(fmt.Sprintf(`{%q: %s}`, axis, val))
			if err := applyOverrides(&cfg, one); err != nil {
				return nil, &SpecError{"grid", fmt.Sprintf("%s = %s: %v", axis, compact(val), err)}
			}
			parts[i] = axis + "=" + compact(val)
		}
		out = append(out, struct {
			name string
			cfg  sim.Config
		}{strings.Join(parts, ","), cfg})

		// Advance the odometer, rightmost fastest.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Grid[axes[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// SetBaseCompression merges a {"Compression": scheme} override into the
// spec's Base overrides — the flag-level convenience behind warpedctl's
// -compression. Explicit per-config and grid overrides still win, since
// Base applies first. The spec is re-validated afterwards, so an unknown
// scheme fails here, before any cluster time is spent.
func (s *Spec) SetBaseCompression(scheme string) error {
	var base map[string]json.RawMessage
	if len(s.Base) > 0 {
		if err := json.Unmarshal(s.Base, &base); err != nil {
			return &SpecError{"base", err.Error()}
		}
	}
	if base == nil {
		base = map[string]json.RawMessage{}
	}
	enc, err := json.Marshal(scheme)
	if err != nil {
		return &SpecError{"base", err.Error()}
	}
	base["Compression"] = enc
	merged, err := json.Marshal(base)
	if err != nil {
		return &SpecError{"base", err.Error()}
	}
	s.Base = merged
	return s.validate()
}

// applyOverrides decodes raw onto cfg, rejecting unknown fields.
func applyOverrides(cfg *sim.Config, raw json.RawMessage) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(cfg)
}

// compact renders a raw JSON value for use in a grid point's name.
func compact(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return strings.TrimSpace(string(raw))
	}
	return strings.Trim(buf.String(), `"`)
}

package core

import (
	"testing"
	"testing/quick"
)

func affineReg(base, stride int32) *WarpReg {
	var w WarpReg
	for i := range w {
		w[i] = uint32(base + int32(i)*stride)
	}
	return &w
}

func TestEncodingBanks(t *testing.T) {
	cases := map[Encoding]int{
		EncUncompressed: 8,
		Enc40:           1,
		Enc41:           3,
		Enc42:           5,
	}
	for e, banks := range cases {
		if got := e.Banks(); got != banks {
			t.Errorf("%s: Banks = %d, want %d", e, got, banks)
		}
	}
	if Enc40.CompressedBytes() != 4 || Enc41.CompressedBytes() != 35 || Enc42.CompressedBytes() != 66 {
		t.Error("compressed byte sizes disagree with Table 1")
	}
	if EncUncompressed.CompressedBytes() != WarpBytes {
		t.Error("uncompressed size must be the full register")
	}
}

func TestModeWarpedChoice(t *testing.T) {
	cases := []struct {
		name string
		vals *WarpReg
		want Encoding
	}{
		{"uniform", affineReg(77, 0), Enc40},
		{"stride1", affineReg(1000, 1), Enc41},
		{"stride4", affineReg(-50, 4), Enc41},
		{"stride127", affineReg(0, -4), Enc41},
		{"stride300", affineReg(123, 300), Enc42},
		{"stride1000", affineReg(0, 1000), Enc42},
		{"random", func() *WarpReg {
			var w WarpReg
			for i := range w {
				w[i] = uint32(i) * 0x9E3779B9
			}
			return &w
		}(), EncUncompressed},
	}
	for _, c := range cases {
		if got := ModeWarped.Choose(c.vals); got != c.want {
			t.Errorf("%s: ModeWarped.Choose = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestModeOffNeverCompresses(t *testing.T) {
	if ModeOff.Choose(affineReg(0, 0)) != EncUncompressed {
		t.Fatal("ModeOff must store uncompressed")
	}
	if ModeOff.Enabled() {
		t.Fatal("ModeOff must not be enabled")
	}
}

// TestSingleChoiceModes: ModeOnly40 only accepts exactly-uniform registers;
// ModeOnly41 accepts <=1-byte deltas but stores them as <4,1>; ModeOnly42
// accepts anything up to 2-byte deltas.
func TestSingleChoiceModes(t *testing.T) {
	uniform, stride1, stride300 := affineReg(5, 0), affineReg(5, 1), affineReg(5, 300)
	random := affineReg(5, 1<<20)

	check := func(m Mode, vals *WarpReg, want Encoding) {
		t.Helper()
		if got := m.Choose(vals); got != want {
			t.Errorf("%s.Choose = %s, want %s", m, got, want)
		}
	}
	check(ModeOnly40, uniform, Enc40)
	check(ModeOnly40, stride1, EncUncompressed)
	check(ModeOnly41, uniform, Enc41) // stored with 1-byte deltas anyway
	check(ModeOnly41, stride1, Enc41)
	check(ModeOnly41, stride300, EncUncompressed)
	check(ModeOnly42, uniform, Enc42)
	check(ModeOnly42, stride300, Enc42)
	check(ModeOnly42, random, EncUncompressed)
}

// TestChooseAgreesWithBDI: the fast single-pass Choose must agree with the
// generic BDI Compressible predicate for each fixed parameter set.
func TestChooseAgreesWithBDI(t *testing.T) {
	f := func(w WarpReg) bool {
		data := w.Bytes()
		enc := ModeWarped.Choose(&w)
		switch enc {
		case Enc40:
			return Compressible(data, Params{4, 0})
		case Enc41:
			return Compressible(data, Params{4, 1}) && !Compressible(data, Params{4, 0})
		case Enc42:
			return Compressible(data, Params{4, 2}) && !Compressible(data, Params{4, 1})
		default:
			return !Compressible(data, Params{4, 2})
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestWarpRegBytesRoundTrip: Bytes/WarpRegFromBytes are inverses.
func TestWarpRegBytesRoundTrip(t *testing.T) {
	f := func(w WarpReg) bool {
		got, err := WarpRegFromBytes(w.Bytes())
		return err == nil && got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := WarpRegFromBytes(make([]byte, 100)); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestUnitPool(t *testing.T) {
	p := NewUnitPool(2, 3)
	// Two grants in cycle 10, third must fail.
	r1, ok1 := p.TryStart(10)
	r2, ok2 := p.TryStart(10)
	_, ok3 := p.TryStart(10)
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("grants: %v %v %v, want true true false", ok1, ok2, ok3)
	}
	if r1 != 13 || r2 != 13 {
		t.Fatalf("ready cycles %d %d, want 13 13", r1, r2)
	}
	// Pipelined: next cycle both units accept again.
	if _, ok := p.TryStart(11); !ok {
		t.Fatal("pipelined unit refused next cycle")
	}
	if p.Activations() != 3 {
		t.Fatalf("activations = %d, want 3", p.Activations())
	}
	if p.Size() != 2 || p.Latency() != 3 {
		t.Fatal("accessor mismatch")
	}
}

func TestUnitPoolZeroLatency(t *testing.T) {
	p := NewUnitPool(1, 0)
	r, ok := p.TryStart(5)
	if !ok || r != 5 {
		t.Fatalf("zero-latency result at %d, want 5", r)
	}
}

func TestIndicatorTable(t *testing.T) {
	tab := NewIndicatorTable(16)
	if tab.Len() != 16 {
		t.Fatal("length mismatch")
	}
	if tab.Get(3) != EncUncompressed {
		t.Fatal("default encoding must be uncompressed")
	}
	tab.Set(3, Enc41)
	if tab.Get(3) != Enc41 || tab.Get(4) != EncUncompressed {
		t.Fatal("set/get mismatch")
	}
}

package core

package core

// staticScheme is the static, profile-guided compressor after Angerd et al.
// (arXiv 2006.05693): instead of probing every write dynamically, a
// compile-time value-shape analysis (valueprof.StaticTable) assigns each
// architectural destination register a fixed encoding class for the whole
// kernel, and the hardware only has to verify at write time that the value
// still fits the preassigned class (falling back to uncompressed when it
// does not). The codec itself is the same BDI <4,δ> family, so the scheme
// isolates the cost of *choice* — the table read replaces BDI's
// priority-select over three candidate widths.
//
// The table is a pure function of the kernel image, which keeps record,
// replay and every SM-shard count byte-identical: the simulator derives and
// binds it at launch via the KernelTableBinder interface.
type staticScheme struct {
	table []Encoding
}

func (*staticScheme) Name() string    { return "static" }
func (*staticScheme) NumClasses() int { return NumEncodings }

func (*staticScheme) ClassName(e Encoding) string    { return e.String() }
func (*staticScheme) Banks(e Encoding) int           { return e.Banks() }
func (*staticScheme) CompressedBytes(e Encoding) int { return e.CompressedBytes() }

func (*staticScheme) Compressible(vals *WarpReg, e Encoding) bool {
	return bdiScheme{}.Compressible(vals, e)
}

// BindTable installs the per-register encoding table for the next kernel.
func (s *staticScheme) BindTable(table []Encoding) {
	s.table = append(s.table[:0], table...)
}

func (s *staticScheme) Choose(reg int, vals *WarpReg, m Mode) Encoding {
	if !m.Enabled() {
		return EncUncompressed
	}
	if reg < 0 || reg >= len(s.table) {
		return EncUncompressed
	}
	e := s.table[reg]
	if e == EncUncompressed || !s.Compressible(vals, e) {
		// The profile promised a shape the dynamic value broke; store
		// uncompressed rather than corrupt (Angerd's overflow path).
		return EncUncompressed
	}
	return e
}

func (*staticScheme) CompressInto(dst []byte, vals *WarpReg, e Encoding) ([]byte, bool) {
	return bdiScheme{}.CompressInto(dst, vals, e)
}

func (*staticScheme) Decompress(comp []byte, e Encoding, out *WarpReg) error {
	return bdiScheme{}.Decompress(comp, e, out)
}

// Package core implements warped-compression (ISCA 2015): base-delta-
// immediate register compression for warp-wide GPU registers, the fixed
// <4,0>/<4,1>/<4,2> encoding choice, the full BDI design-space explorer, the
// compressor/decompressor unit timing model and the 2-bit compression range
// indicator table.
//
// A warp register is 32 threads x 4 bytes = 128 bytes. BDI splits the data
// into fixed-size chunks, keeps the first chunk as the base, and stores every
// other chunk as a small signed delta from that base (paper §4, Figure 7: the
// hardware uses the first chunk as the only base candidate, which is what
// this package implements).
package core

import (
	"encoding/binary"
	"fmt"
)

// WarpBytes is the size of one uncompressed warp register in bytes.
const WarpBytes = 128

// BankBytes is the width of one register file bank entry (Table 2:
// 128-bit banks).
const BankBytes = 16

// WarpBanks is the number of banks an uncompressed warp register occupies.
const WarpBanks = WarpBytes / BankBytes

// Params is one <base,delta> BDI configuration in bytes (paper Table 1).
type Params struct {
	Base  int // chunk/base size: 1, 2, 4 or 8
	Delta int // delta size: 0 .. Base-1 (0 = all chunks equal the base)
}

func (p Params) String() string { return fmt.Sprintf("<%d,%d>", p.Base, p.Delta) }

// Valid reports whether the parameter pair is well-formed for 128-byte input.
func (p Params) Valid() bool {
	switch p.Base {
	case 1, 2, 4, 8:
	default:
		return false
	}
	if p.Delta < 0 || p.Delta >= p.Base {
		return false
	}
	switch p.Delta {
	case 0, 1, 2, 4:
		return true
	}
	return false
}

// CompressedSize returns L_comp = L_base + L_delta*(L_input/L_base - 1)
// (paper equation (1)) for a 128-byte warp register.
func (p Params) CompressedSize() int {
	chunks := WarpBytes / p.Base
	return p.Base + p.Delta*(chunks-1)
}

// Banks returns the number of 16-byte register banks the compressed form
// occupies (paper Table 1, "Required # Reg. Banks").
func (p Params) Banks() int {
	return (p.CompressedSize() + BankBytes - 1) / BankBytes
}

// AllParams lists every <base,delta> combination from paper Table 1, in
// table order.
var AllParams = []Params{
	{1, 0}, {2, 1},
	{4, 0}, {4, 1}, {4, 2},
	{8, 0}, {8, 1}, {8, 2}, {8, 4},
}

// chunk reads the i-th base-sized chunk of data as an unsigned little-endian
// value.
func chunk(data []byte, base, i int) uint64 {
	off := i * base
	switch base {
	case 1:
		return uint64(data[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[off:]))
	default:
		return binary.LittleEndian.Uint64(data[off:])
	}
}

func putChunk(data []byte, base, i int, v uint64) {
	off := i * base
	switch base {
	case 1:
		data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(data[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(data[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(data[off:], v)
	}
}

// deltaFits reports whether d (a base-byte wide two's complement difference)
// sign-extends from delta bytes, i.e. can be stored in delta bytes.
func deltaFits(d uint64, base, delta int) bool {
	if delta == 0 {
		return d == 0
	}
	// Interpret d as a signed base-byte value.
	shift := uint(64 - 8*base)
	sd := int64(d<<shift) >> shift
	limit := int64(1) << uint(8*delta-1)
	return sd >= -limit && sd < limit
}

// Compressible reports whether the 128-byte register data can be represented
// with parameters p using the first chunk as base.
func Compressible(data []byte, p Params) bool {
	if len(data) != WarpBytes || !p.Valid() {
		return false
	}
	mask := maskFor(p.Base)
	base := chunk(data, p.Base, 0)
	chunks := WarpBytes / p.Base
	for i := 1; i < chunks; i++ {
		d := (chunk(data, p.Base, i) - base) & mask
		if !deltaFits(d, p.Base, p.Delta) {
			return false
		}
	}
	return true
}

func maskFor(base int) uint64 {
	if base == 8 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(8*base)) - 1
}

// Compress encodes data with parameters p into the byte layout
// [base | delta_1 .. delta_{n-1}] (little-endian fields) and returns it, or
// ok=false when the data is not compressible with p. It allocates the result;
// hot paths should use CompressInto with a reusable buffer.
func Compress(data []byte, p Params) (comp []byte, ok bool) {
	if !Compressible(data, p) {
		return nil, false
	}
	return CompressInto(make([]byte, 0, p.CompressedSize()), data, p)
}

// CompressInto appends the compressed form of data under parameters p to dst
// and returns the extended slice, or ok=false (dst unchanged) when the data
// is not compressible with p. With a caller-owned dst of capacity
// p.CompressedSize() it performs no heap allocation.
func CompressInto(dst, data []byte, p Params) (comp []byte, ok bool) {
	if !Compressible(data, p) {
		return dst, false
	}
	mask := maskFor(p.Base)
	base := chunk(data, p.Base, 0)
	chunks := WarpBytes / p.Base
	var tmp [8]byte
	putLE(tmp[:], base, p.Base)
	dst = append(dst, tmp[:p.Base]...)
	for i := 1; i < chunks; i++ {
		d := (chunk(data, p.Base, i) - base) & mask
		putLE(tmp[:], d, p.Delta)
		dst = append(dst, tmp[:p.Delta]...)
	}
	return dst, true
}

func putLE(buf []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		buf[i] = byte(v >> uint(8*i))
	}
}

func getLE(buf []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(buf[i]) << uint(8*i)
	}
	return v
}

// Decompress reconstructs the original 128 bytes from a Compress result.
func Decompress(comp []byte, p Params, out []byte) error {
	if !p.Valid() {
		return fmt.Errorf("bdi: invalid params %s", p)
	}
	if len(comp) != p.CompressedSize() {
		return fmt.Errorf("bdi: compressed size %d, want %d for %s", len(comp), p.CompressedSize(), p)
	}
	if len(out) != WarpBytes {
		return fmt.Errorf("bdi: output size %d, want %d", len(out), WarpBytes)
	}
	mask := maskFor(p.Base)
	base := getLE(comp, p.Base)
	putChunk(out, p.Base, 0, base)
	chunks := WarpBytes / p.Base
	for i := 1; i < chunks; i++ {
		raw := getLE(comp[p.Base+(i-1)*p.Delta:], p.Delta)
		// Sign-extend the delta from p.Delta bytes.
		var d uint64
		if p.Delta > 0 {
			shift := uint(64 - 8*p.Delta)
			d = uint64(int64(raw<<shift) >> shift)
		}
		putChunk(out, p.Base, i, (base+d)&mask)
	}
	return nil
}

// ExplorerParams is the set the paper's full-BDI design-space explorer
// selects from on every register write (§4: "<4,0>, <4,1>, <4,2>, <8,0>,
// <8,1>, <8,2>, <8,4>").
var ExplorerParams = []Params{
	{4, 0}, {4, 1}, {4, 2},
	{8, 0}, {8, 1}, {8, 2}, {8, 4},
}

// BestParams runs the full-BDI design-space exploration of paper §4/Fig 5:
// it tries every ExplorerParams combination and returns the one with the
// smallest compressed size (ties broken toward smaller base, matching the
// paper's observation that 4-byte bases dominate). ok=false when no
// combination compresses the data below its original size.
func BestParams(data []byte) (best Params, ok bool) {
	bestSize := WarpBytes
	for _, p := range ExplorerParams {
		if p.CompressedSize() >= bestSize {
			continue // can't beat current best even if compressible
		}
		if Compressible(data, p) {
			best, bestSize, ok = p, p.CompressedSize(), true
		}
	}
	return best, ok
}

package core

import "fmt"

// bdiScheme is the paper's compressor: dynamic base-delta-immediate over the
// three fixed parameter choices <4,0>, <4,1>, <4,2> (Figure 7). It is the
// DefaultScheme; its Choose is exactly Mode.Choose, so configurations that
// predate the registry keep byte-identical results.
type bdiScheme struct{}

func (bdiScheme) Name() string    { return "bdi" }
func (bdiScheme) NumClasses() int { return NumEncodings }

func (bdiScheme) ClassName(e Encoding) string { return e.String() }
func (bdiScheme) Banks(e Encoding) int        { return e.Banks() }

func (bdiScheme) CompressedBytes(e Encoding) int { return e.CompressedBytes() }

func (bdiScheme) Compressible(vals *WarpReg, e Encoding) bool {
	if e == EncUncompressed {
		return true
	}
	return deltaWidth(vals) <= int(e.Params().Delta)
}

func (bdiScheme) Choose(reg int, vals *WarpReg, m Mode) Encoding {
	return m.Choose(vals)
}

func (bdiScheme) CompressInto(dst []byte, vals *WarpReg, e Encoding) ([]byte, bool) {
	if e == EncUncompressed {
		return vals.AppendBytes(dst), true
	}
	var buf [WarpBytes]byte
	data := vals.AppendBytes(buf[:0])
	return CompressInto(dst, data, e.Params())
}

func (bdiScheme) Decompress(comp []byte, e Encoding, out *WarpReg) error {
	if e == EncUncompressed {
		w, err := WarpRegFromBytes(comp)
		if err != nil {
			return err
		}
		*out = w
		return nil
	}
	var buf [WarpBytes]byte
	if err := Decompress(comp, e.Params(), buf[:]); err != nil {
		return err
	}
	w, err := WarpRegFromBytes(buf[:])
	if err != nil {
		return fmt.Errorf("core: bdi decompress: %w", err)
	}
	*out = w
	return nil
}

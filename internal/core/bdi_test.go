package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTable1Sizes checks CompressedSize and Banks against every row of the
// paper's Table 1.
func TestTable1Sizes(t *testing.T) {
	cases := []struct {
		p     Params
		size  int
		banks int
	}{
		{Params{1, 0}, 1, 1},
		{Params{2, 1}, 65, 5},
		{Params{4, 0}, 4, 1},
		{Params{4, 1}, 35, 3},
		{Params{4, 2}, 66, 5},
		{Params{8, 0}, 8, 1},
		{Params{8, 1}, 23, 2},
		{Params{8, 2}, 38, 3},
		{Params{8, 4}, 68, 5},
	}
	for _, c := range cases {
		if got := c.p.CompressedSize(); got != c.size {
			t.Errorf("%s: CompressedSize = %d, want %d", c.p, got, c.size)
		}
		if got := c.p.Banks(); got != c.banks {
			t.Errorf("%s: Banks = %d, want %d", c.p, got, c.banks)
		}
		if !c.p.Valid() {
			t.Errorf("%s: should be valid", c.p)
		}
	}
}

func TestInvalidParams(t *testing.T) {
	for _, p := range []Params{{3, 1}, {4, 4}, {4, -1}, {0, 0}, {16, 4}, {8, 3}} {
		if p.Valid() {
			t.Errorf("%s: should be invalid", p)
		}
	}
}

// affineData builds a warp register image with base value v and per-chunk
// stride d (4-byte chunks).
func affineData(v, d int32) []byte {
	var w WarpReg
	for i := range w {
		w[i] = uint32(v + int32(i)*d)
	}
	return w.Bytes()
}

func TestCompressibilityByStride(t *testing.T) {
	cases := []struct {
		name   string
		data   []byte
		expect map[Params]bool
	}{
		{"uniform", affineData(12345, 0), map[Params]bool{
			{4, 0}: true, {4, 1}: true, {4, 2}: true,
		}},
		{"stride1", affineData(1<<20, 1), map[Params]bool{
			{4, 0}: false, {4, 1}: true, {4, 2}: true,
		}},
		{"stride200", affineData(7, 200), map[Params]bool{
			{4, 0}: false, {4, 1}: false, {4, 2}: true,
		}},
		{"stride40000", affineData(0, 40000), map[Params]bool{
			{4, 0}: false, {4, 1}: false, {4, 2}: false,
		}},
	}
	for _, c := range cases {
		for p, want := range c.expect {
			if got := Compressible(c.data, p); got != want {
				t.Errorf("%s with %s: Compressible = %v, want %v", c.name, p, got, want)
			}
		}
	}
}

// TestRoundTripAllParams: decompress(compress(x)) == x for every Table 1
// parameter set, on data constructed to be compressible.
func TestRoundTripAllParams(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, p := range AllParams {
		for trial := 0; trial < 200; trial++ {
			data := compressibleData(r, p)
			comp, ok := Compress(data, p)
			if !ok {
				t.Fatalf("%s: constructed data not compressible", p)
			}
			if len(comp) != p.CompressedSize() {
				t.Fatalf("%s: compressed length %d, want %d", p, len(comp), p.CompressedSize())
			}
			out := make([]byte, WarpBytes)
			if err := Decompress(comp, p, out); err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("%s: round trip mismatch", p)
			}
		}
	}
}

// compressibleData builds random data guaranteed compressible with p: a
// random base plus random deltas within the delta range.
func compressibleData(r *rand.Rand, p Params) []byte {
	data := make([]byte, WarpBytes)
	base := r.Uint64()
	putChunk(data, p.Base, 0, base)
	chunks := WarpBytes / p.Base
	mask := maskFor(p.Base)
	for i := 1; i < chunks; i++ {
		var d int64
		if p.Delta > 0 {
			limit := int64(1) << uint(8*p.Delta-1)
			d = r.Int63n(2*limit) - limit
		}
		putChunk(data, p.Base, i, (base+uint64(d))&mask)
	}
	return data
}

// TestCompressibleAgreesWithCompress: quick property — Compress succeeds
// exactly when Compressible reports true, and on success the round trip is
// exact.
func TestCompressibleAgreesWithCompress(t *testing.T) {
	f := func(w WarpReg, pi uint8) bool {
		p := AllParams[int(pi)%len(AllParams)]
		data := w.Bytes()
		comp, ok := Compress(data, p)
		if ok != Compressible(data, p) {
			return false
		}
		if !ok {
			return true
		}
		out := make([]byte, WarpBytes)
		if err := Decompress(comp, p, out); err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestNesting: the paper's nesting property — anything <4,0>-compressible is
// <4,1>-compressible, anything <4,1> is <4,2>; same for the 8-byte family.
func TestNesting(t *testing.T) {
	chains := [][]Params{
		{{4, 0}, {4, 1}, {4, 2}},
		{{8, 0}, {8, 1}, {8, 2}, {8, 4}},
	}
	f := func(w WarpReg) bool {
		data := w.Bytes()
		for _, chain := range chains {
			prev := true
			for i, p := range chain {
				cur := Compressible(data, p)
				if i > 0 && prev && !cur {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBestParamsIsMinimal: BestParams returns a compressible parameter set
// and no explorer parameter achieves a strictly smaller size.
func TestBestParamsIsMinimal(t *testing.T) {
	f := func(w WarpReg) bool {
		data := w.Bytes()
		best, ok := BestParams(data)
		if !ok {
			// Nothing compressible: verify that's really the case.
			for _, p := range ExplorerParams {
				if Compressible(data, p) && p.CompressedSize() < WarpBytes {
					return false
				}
			}
			return true
		}
		if !Compressible(data, best) {
			return false
		}
		for _, p := range ExplorerParams {
			if Compressible(data, p) && p.CompressedSize() < best.CompressedSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressErrors(t *testing.T) {
	p := Params{4, 1}
	if err := Decompress(make([]byte, 10), p, make([]byte, WarpBytes)); err == nil {
		t.Error("wrong compressed size accepted")
	}
	if err := Decompress(make([]byte, p.CompressedSize()), p, make([]byte, 10)); err == nil {
		t.Error("wrong output size accepted")
	}
	if err := Decompress(nil, Params{3, 1}, make([]byte, WarpBytes)); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestCompressRejectsWrongLength(t *testing.T) {
	if Compressible(make([]byte, 64), Params{4, 0}) {
		t.Error("64-byte input accepted")
	}
	if _, ok := Compress(make([]byte, 256), Params{4, 1}); ok {
		t.Error("256-byte input accepted")
	}
}

// TestWrapAroundDeltas: modular arithmetic must handle base near the type
// boundary (e.g. base 0xFFFFFFFF with chunk 0x00000000 is delta +1).
func TestWrapAroundDeltas(t *testing.T) {
	var w WarpReg
	for i := range w {
		w[i] = 0xFFFFFFFF + uint32(i) // wraps to 0, 1, 2...
	}
	data := w.Bytes()
	if !Compressible(data, Params{4, 1}) {
		t.Fatal("wrap-around stride-1 data should compress with <4,1>")
	}
	comp, _ := Compress(data, Params{4, 1})
	out := make([]byte, WarpBytes)
	if err := Decompress(comp, Params{4, 1}, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("wrap-around round trip mismatch")
	}
}

package core

import (
	"fmt"
	"sort"
)

// SchemeRegistryVersion names the compression-backend registry contract.
// Scheme names registered under schemes/v1 are stable identifiers: they
// appear in the cfg/v1 configuration signature, in the jobs/server API
// (compression_scheme) and in exhibit column headers, so renaming or
// re-meaning a registered scheme requires a registry version bump.
const SchemeRegistryVersion = "schemes/v1"

// DefaultScheme is the compression backend used when a configuration does
// not name one: the paper's BDI variant.
const DefaultScheme = "bdi"

// Compressor is one pluggable register-compression backend.
//
// A compressor classifies each full-warp register write into one of at most
// NumEncodings pattern classes (class 0 is always "uncompressed", full
// WarpBytes across WarpBanks banks) and provides the codec for each class.
// All methods on the hot path (Choose, Compressible, CompressInto,
// Decompress) must be allocation-free given caller-owned buffers; the fuzz
// and AllocsPerRun tests in this package enforce that for every registered
// scheme.
//
// The reg argument of Choose is the destination register index; dynamic
// schemes ignore it, while table-driven schemes (static) use it to look up
// the per-kernel encoding table.
type Compressor interface {
	// Name returns the registered scheme name ("bdi", "static", "fpc").
	Name() string
	// NumClasses returns how many encoding classes the scheme uses,
	// 1 <= NumClasses <= NumEncodings. Class 0 is always uncompressed.
	NumClasses() int
	// ClassName names an encoding class for reports and exhibits.
	ClassName(e Encoding) string
	// Banks returns how many 16-byte register banks class e occupies.
	Banks(e Encoding) int
	// CompressedBytes returns the stored size of class e.
	CompressedBytes(e Encoding) int
	// Compressible reports whether vals can be stored under class e
	// losslessly. Class EncUncompressed is always compressible.
	Compressible(vals *WarpReg, e Encoding) bool
	// Choose returns the class the compressor stores for a full-warp
	// write of vals to register reg under policy mode m.
	Choose(reg int, vals *WarpReg, m Mode) Encoding
	// CompressInto appends the class-e image of vals to dst and returns
	// the extended slice, or ok=false when vals does not fit class e.
	// With a dst of sufficient capacity it performs no heap allocation.
	CompressInto(dst []byte, vals *WarpReg, e Encoding) ([]byte, bool)
	// Decompress parses a class-e image produced by CompressInto back
	// into lane values.
	Decompress(comp []byte, e Encoding, out *WarpReg) error
}

// KernelTableBinder is implemented by table-driven compressors (the static
// scheme) that derive a per-kernel, per-register encoding table at launch
// time. The simulator binds the table before each launch; dynamic schemes
// simply don't implement the interface.
type KernelTableBinder interface {
	// BindTable installs the per-register encoding table for the kernel
	// about to run. The table is copied; nil or empty unbinds.
	BindTable(table []Encoding)
}

// schemeEntry is one registered backend.
type schemeEntry struct {
	factory func() Compressor
	ordinal int
}

var schemes = map[string]schemeEntry{}

// RegisterScheme adds a compression backend under name. Registering a
// duplicate name panics: scheme names are part of the schemes/v1 contract.
func RegisterScheme(name string, factory func() Compressor) {
	if name == "" {
		panic("core: RegisterScheme with empty name")
	}
	if _, dup := schemes[name]; dup {
		panic(fmt.Sprintf("core: compression scheme %q registered twice", name))
	}
	schemes[name] = schemeEntry{factory: factory, ordinal: len(schemes) + 1}
}

// SchemeRegistered reports whether name is a registered backend. The empty
// string is the legacy spelling of DefaultScheme and is accepted.
func SchemeRegistered(name string) bool {
	if name == "" {
		return true
	}
	_, ok := schemes[name]
	return ok
}

// Schemes returns the registered backend names in sorted order.
func Schemes() []string {
	out := make([]string, 0, len(schemes))
	for name := range schemes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResolveScheme maps the empty legacy spelling to DefaultScheme and leaves
// every other name untouched.
func ResolveScheme(name string) string {
	if name == "" {
		return DefaultScheme
	}
	return name
}

// NewCompressor builds a fresh instance of the named backend. The empty
// name resolves to DefaultScheme. Unknown names are an error (the sim
// config validator surfaces it as a client error).
func NewCompressor(name string) (Compressor, error) {
	name = ResolveScheme(name)
	e, ok := schemes[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown compression scheme %q (registered: %v)", name, Schemes())
	}
	return e.factory(), nil
}

// BankTable returns the per-class bank occupancy of a compressor as a fixed
// array, the form the register file configuration consumes. Classes beyond
// NumClasses occupy the full WarpBanks so a stray tag can never under-count.
func BankTable(c Compressor) [NumEncodings]int {
	var t [NumEncodings]int
	for i := range t {
		if i < c.NumClasses() {
			t[i] = c.Banks(Encoding(i))
		} else {
			t[i] = WarpBanks
		}
	}
	return t
}

func init() {
	RegisterScheme("bdi", func() Compressor { return bdiScheme{} })
	RegisterScheme("static", func() Compressor { return &staticScheme{} })
	RegisterScheme("fpc", func() Compressor { return fpcScheme{} })
}

package core

import (
	"encoding/binary"
	"fmt"
)

// fpcScheme is a cheap frequent-pattern compressor in the spirit of FPC
// [Alameldeen & Wood]: instead of BDI's delta arithmetic it matches three
// fixed value patterns that dominate GPU register traffic — the all-zero
// register, the scalar (all lanes equal) register, and the narrow register
// whose every lane fits a sign-extended int8. Pattern detection is pure
// comparator logic, which is what makes the scheme's compression energy
// cheap relative to BDI (see energy.SchemeCost).
type fpcScheme struct{}

// FPC reuses the Encoding tag space with its own class meanings. Class 0
// stays uncompressed by the Compressor contract.
const (
	fpcZero   = Enc40 // all 32 lanes zero; 4 bytes, 1 bank
	fpcRepeat = Enc41 // all 32 lanes equal; 4 bytes, 1 bank
	fpcNarrow = Enc42 // every lane sign-extends from int8; 32 bytes, 2 banks
)

var fpcBanks = [NumEncodings]int{
	EncUncompressed: WarpBanks,
	fpcZero:         1,
	fpcRepeat:       1,
	fpcNarrow:       2,
}

var fpcBytes = [NumEncodings]int{
	EncUncompressed: WarpBytes,
	fpcZero:         4,
	fpcRepeat:       4,
	fpcNarrow:       32,
}

func (fpcScheme) Name() string    { return "fpc" }
func (fpcScheme) NumClasses() int { return NumEncodings }

func (fpcScheme) ClassName(e Encoding) string {
	switch e {
	case EncUncompressed:
		return "uncompressed"
	case fpcZero:
		return "zero"
	case fpcRepeat:
		return "repeat"
	case fpcNarrow:
		return "narrow8"
	}
	return fmt.Sprintf("fpc%d", uint8(e))
}

func (fpcScheme) Banks(e Encoding) int           { return fpcBanks[e] }
func (fpcScheme) CompressedBytes(e Encoding) int { return fpcBytes[e] }

func (fpcScheme) Compressible(vals *WarpReg, e Encoding) bool {
	switch e {
	case EncUncompressed:
		return true
	case fpcZero:
		for _, v := range vals {
			if v != 0 {
				return false
			}
		}
		return true
	case fpcRepeat:
		for _, v := range vals[1:] {
			if v != vals[0] {
				return false
			}
		}
		return true
	case fpcNarrow:
		for _, v := range vals {
			if d := int32(v); d < -128 || d >= 128 {
				return false
			}
		}
		return true
	}
	return false
}

func (s fpcScheme) Choose(reg int, vals *WarpReg, m Mode) Encoding {
	if !m.Enabled() {
		return EncUncompressed
	}
	// The patterns nest only partially (zero ⊂ repeat, zero ⊂ narrow), so
	// probe smallest-first: zero and repeat tie on size but zero needs no
	// base read on decompression.
	if s.Compressible(vals, fpcZero) {
		return fpcZero
	}
	if s.Compressible(vals, fpcRepeat) {
		return fpcRepeat
	}
	if s.Compressible(vals, fpcNarrow) {
		return fpcNarrow
	}
	return EncUncompressed
}

func (s fpcScheme) CompressInto(dst []byte, vals *WarpReg, e Encoding) ([]byte, bool) {
	if !s.Compressible(vals, e) {
		return dst, false
	}
	switch e {
	case EncUncompressed:
		return vals.AppendBytes(dst), true
	case fpcZero, fpcRepeat:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], vals[0])
		return append(dst, b[:]...), true
	case fpcNarrow:
		var b [32]byte
		for i, v := range vals {
			b[i] = byte(v)
		}
		return append(dst, b[:]...), true
	}
	return dst, false
}

func (fpcScheme) Decompress(comp []byte, e Encoding, out *WarpReg) error {
	if want := fpcBytes[e]; len(comp) != want {
		return fmt.Errorf("core: fpc class %d image must be %d bytes, got %d", uint8(e), want, len(comp))
	}
	switch e {
	case EncUncompressed:
		w, err := WarpRegFromBytes(comp)
		if err != nil {
			return err
		}
		*out = w
		return nil
	case fpcZero, fpcRepeat:
		v := binary.LittleEndian.Uint32(comp)
		for i := range out {
			out[i] = v
		}
		return nil
	case fpcNarrow:
		for i := range out {
			out[i] = uint32(int32(int8(comp[i])))
		}
		return nil
	}
	return fmt.Errorf("core: fpc decompress: invalid class %d", uint8(e))
}

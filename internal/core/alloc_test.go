package core

import "testing"

// TestCompressionHotPathAllocFree pins the allocation-free contract of the
// per-register-access primitives: serializing a warp register into a reused
// buffer, compressing into a reused buffer, decompressing into a caller
// buffer, and classifying an encoding must not touch the heap.
func TestCompressionHotPathAllocFree(t *testing.T) {
	var w WarpReg
	for i := range w {
		w[i] = uint32(100 + 3*i)
	}
	p := Params{Base: 4, Delta: 1}
	data := make([]byte, 0, WarpBytes)
	comp := make([]byte, 0, p.CompressedSize())
	out := make([]byte, WarpBytes)

	var failure string
	allocs := testing.AllocsPerRun(200, func() {
		data = w.AppendBytes(data[:0])
		var ok bool
		comp, ok = CompressInto(comp[:0], data, p)
		if !ok {
			failure = "data not compressible with <4,1>"
			return
		}
		if err := Decompress(comp, p, out); err != nil {
			failure = err.Error()
			return
		}
		if ModeWarped.Choose(&w) != Enc41 {
			failure = "unexpected encoding choice"
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
	if allocs != 0 {
		t.Fatalf("compress/decompress round trip allocates %.1f objects/op, want 0", allocs)
	}
	for i := 0; i < WarpBytes; i++ {
		if data[i] != out[i] {
			t.Fatalf("round trip mismatch at byte %d: %#x != %#x", i, data[i], out[i])
		}
	}
}

// TestSchemeHotPathAllocFree extends the allocation-free contract to every
// registered backend: Choose + CompressInto + Decompress with caller-owned
// buffers must not touch the heap, whichever scheme the simulator runs.
func TestSchemeHotPathAllocFree(t *testing.T) {
	for _, name := range Schemes() {
		t.Run(name, func(t *testing.T) {
			c, err := NewCompressor(name)
			if err != nil {
				t.Fatal(err)
			}
			if b, ok := c.(KernelTableBinder); ok {
				table := make([]Encoding, 8)
				for i := range table {
					table[i] = Enc40
				}
				b.BindTable(table)
			}
			var w WarpReg
			for i := range w {
				w[i] = 7 // uniform: every scheme has a compressed class for it
			}
			buf := make([]byte, 0, WarpBytes)
			var out WarpReg

			var failure string
			allocs := testing.AllocsPerRun(200, func() {
				e := c.Choose(3, &w, ModeWarped)
				if e == EncUncompressed {
					failure = "uniform vector left uncompressed"
					return
				}
				var ok bool
				buf, ok = c.CompressInto(buf[:0], &w, e)
				if !ok {
					failure = "CompressInto rejected the chosen class"
					return
				}
				if err := c.Decompress(buf, e, &out); err != nil {
					failure = err.Error()
					return
				}
				if out != w {
					failure = "round trip mismatch"
				}
			})
			if failure != "" {
				t.Fatal(failure)
			}
			if allocs != 0 {
				t.Fatalf("%s hot path allocates %.1f objects/op, want 0", name, allocs)
			}
		})
	}
}

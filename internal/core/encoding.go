package core

import (
	"encoding/binary"
	"fmt"
)

// WarpReg is the value vector of one warp register: one 32-bit value per
// SIMT lane.
type WarpReg [32]uint32

// Bytes returns the 128-byte little-endian image of the warp register, the
// form the BDI algorithm operates on. It allocates; hot paths should use
// AppendBytes with a reusable buffer instead.
func (w *WarpReg) Bytes() []byte {
	return w.AppendBytes(make([]byte, 0, WarpBytes))
}

// AppendBytes appends the 128-byte little-endian image of the warp register
// to buf and returns the extended slice. With a caller-owned buffer of
// capacity WarpBytes it performs no heap allocation.
func (w *WarpReg) AppendBytes(buf []byte) []byte {
	n := len(buf)
	buf = append(buf, make([]byte, WarpBytes)...)
	for i, v := range w {
		binary.LittleEndian.PutUint32(buf[n+i*4:], v)
	}
	return buf
}

// WarpRegFromBytes parses a 128-byte image back into lane values.
func WarpRegFromBytes(b []byte) (WarpReg, error) {
	var w WarpReg
	if len(b) != WarpBytes {
		return w, fmt.Errorf("core: warp register image must be %d bytes, got %d", WarpBytes, len(b))
	}
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return w, nil
}

// Encoding is the 2-bit compression range indicator stored per warp register
// beside the bank arbiter (paper §4). It names which of the three fixed
// compression choices holds the register, or that it is uncompressed.
type Encoding uint8

const (
	// EncUncompressed: full 128 bytes across 8 banks.
	EncUncompressed Encoding = iota
	// Enc40: <4,0> — all 32 lanes identical; 4 bytes, 1 bank. This is the
	// scalarization special case (paper §6.6).
	Enc40
	// Enc41: <4,1> — 1-byte deltas; 35 bytes, 3 banks.
	Enc41
	// Enc42: <4,2> — 2-byte deltas; 66 bytes, 5 banks.
	Enc42
	numEncodings
)

// NumEncodings is the number of encoding classes a register can be tagged
// with (the uncompressed class plus three compressed classes). Every
// registered Compressor maps its pattern classes onto this fixed class
// space so the per-register 2-bit tag, the stats histograms and the result
// document shape are scheme-independent.
const NumEncodings = int(numEncodings)

var encodingParams = [numEncodings]Params{
	EncUncompressed: {},
	Enc40:           {4, 0},
	Enc41:           {4, 1},
	Enc42:           {4, 2},
}

var encodingBanks = [numEncodings]int{
	EncUncompressed: WarpBanks,
	Enc40:           1,
	Enc41:           3,
	Enc42:           5,
}

func (e Encoding) String() string {
	switch e {
	case EncUncompressed:
		return "uncompressed"
	case Enc40:
		return "<4,0>"
	case Enc41:
		return "<4,1>"
	case Enc42:
		return "<4,2>"
	}
	return fmt.Sprintf("enc%d", uint8(e))
}

// Banks returns how many 16-byte register banks the encoding occupies.
func (e Encoding) Banks() int { return encodingBanks[e] }

// CompressedBytes returns the stored size of the encoding.
func (e Encoding) CompressedBytes() int {
	if e == EncUncompressed {
		return WarpBytes
	}
	return encodingParams[e].CompressedSize()
}

// Params returns the BDI parameters of a compressed encoding; calling it for
// EncUncompressed is a bug.
func (e Encoding) Params() Params {
	if e == EncUncompressed {
		panic("core: EncUncompressed has no BDI params")
	}
	return encodingParams[e]
}

// IsCompressed reports whether the encoding is one of the compressed forms.
func (e Encoding) IsCompressed() bool { return e != EncUncompressed }

// Mode selects which compression policy the compressor applies; the modes
// beyond ModeWarped exist for the paper's design-space exploration.
type Mode uint8

const (
	// ModeOff disables compression entirely (the paper's baseline).
	ModeOff Mode = iota
	// ModeWarped is warped-compression: dynamically pick the smallest of
	// <4,0>, <4,1>, <4,2>, else store uncompressed (paper default).
	ModeWarped
	// ModeOnly40 / ModeOnly41 / ModeOnly42 statically restrict the choice
	// to a single parameter set (paper §6.6, Figs 15/16). ModeOnly40 is
	// equivalent to scalarization [33].
	ModeOnly40
	ModeOnly41
	ModeOnly42
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeWarped:
		return "warped"
	case ModeOnly40:
		return "only<4,0>"
	case ModeOnly41:
		return "only<4,1>"
	case ModeOnly42:
		return "only<4,2>"
	}
	return fmt.Sprintf("mode%d", uint8(m))
}

// Enabled reports whether the mode performs any compression.
func (m Mode) Enabled() bool { return m != ModeOff }

// Choose returns the encoding the compressor stores for a full-warp write of
// vals under mode m. Lane similarity is evaluated with the first lane as the
// base, mirroring the single-base hardware compressor of paper Figure 7.
func (m Mode) Choose(vals *WarpReg) Encoding {
	if m == ModeOff {
		return EncUncompressed
	}
	width := deltaWidth(vals)
	if width > 2 {
		return EncUncompressed
	}
	best := [3]Encoding{Enc40, Enc41, Enc42}[width]
	switch m {
	case ModeWarped:
		return best
	case ModeOnly40:
		if best == Enc40 {
			return Enc40
		}
	case ModeOnly41:
		if best == Enc40 || best == Enc41 {
			return Enc41
		}
	case ModeOnly42:
		return Enc42 // any width 0..2 fits in 2-byte deltas
	}
	return EncUncompressed
}

// deltaWidth computes the narrowest per-lane delta width (in bytes) that can
// represent every lane of vals relative to lane 0. The three fixed BDI
// choices nest — anything <4,0>-compressible is <4,1>-compressible, etc. —
// so one pass suffices: 0, 1 or 2 bytes; 3 means no fixed choice fits.
func deltaWidth(vals *WarpReg) int {
	base := vals[0]
	width := 0
	for _, v := range vals[1:] {
		d := int32(v - base)
		switch {
		case d == 0:
		case d >= -128 && d < 128:
			if width < 1 {
				width = 1
			}
		case d >= -32768 && d < 32768:
			if width < 2 {
				width = 2
			}
		default:
			return 3
		}
	}
	return width
}

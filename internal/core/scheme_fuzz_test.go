package core

import (
	"encoding/binary"
	"testing"
)

// FuzzSchemeRoundTrip drives every registered backend (schemes/v1) with
// arbitrary warp images: Choose must pick a class the compressibility probe
// accepts, CompressInto must agree with Compressible and either fail
// cleanly (ok=false) or round-trip exactly at the advertised size, bank
// counts must stay physical, and truncated images must be rejected rather
// than crash.
func FuzzSchemeRoundTrip(f *testing.F) {
	f.Add(make([]byte, WarpBytes), uint8(0))
	affine := make([]byte, WarpBytes)
	for i := range affine {
		affine[i] = byte(i)
	}
	f.Add(affine, uint8(1))
	short := make([]byte, WarpBytes)
	f.Add(short[:17], uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, ti uint8) {
		if len(data) != WarpBytes {
			return
		}
		var vals WarpReg
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		for _, name := range Schemes() {
			comp, err := NewCompressor(name)
			if err != nil {
				t.Fatal(err)
			}
			if b, ok := comp.(KernelTableBinder); ok {
				// Bind a varied per-register table so the profile-guided
				// path runs, not just the unbound fallback.
				table := make([]Encoding, 8)
				for i := range table {
					table[i] = Encoding((int(ti) + i) % NumEncodings)
				}
				b.BindTable(table)
			}
			if n := comp.NumClasses(); n < 1 || n > NumEncodings {
				t.Fatalf("%s: NumClasses = %d", name, n)
			}
			for reg := 0; reg < 8; reg++ {
				e := comp.Choose(reg, &vals, ModeWarped)
				if !comp.Compressible(&vals, e) {
					t.Fatalf("%s: Choose(reg %d) = %v but the probe rejects it", name, reg, e)
				}
			}
			if e := comp.Choose(0, &vals, ModeOff); e != EncUncompressed {
				t.Fatalf("%s: ModeOff chose %v, want uncompressed", name, e)
			}
			buf := make([]byte, 0, WarpBytes)
			for ci := 0; ci < comp.NumClasses(); ci++ {
				e := Encoding(ci)
				var ok bool
				buf, ok = comp.CompressInto(buf[:0], &vals, e)
				if ok != comp.Compressible(&vals, e) {
					t.Fatalf("%s/%s: CompressInto ok=%v disagrees with Compressible", name, comp.ClassName(e), ok)
				}
				if !ok {
					continue
				}
				if len(buf) != comp.CompressedBytes(e) {
					t.Fatalf("%s/%s: compressed size %d, want %d", name, comp.ClassName(e), len(buf), comp.CompressedBytes(e))
				}
				if bk := comp.Banks(e); bk < 1 || bk > WarpBanks {
					t.Fatalf("%s/%s: %d banks", name, comp.ClassName(e), bk)
				}
				var out WarpReg
				if err := comp.Decompress(buf, e, &out); err != nil {
					t.Fatalf("%s/%s: decompress: %v", name, comp.ClassName(e), err)
				}
				if out != vals {
					t.Fatalf("%s/%s: round trip mismatch", name, comp.ClassName(e))
				}
				if len(buf) > 0 {
					if err := comp.Decompress(buf[:len(buf)-1], e, &out); err == nil {
						t.Fatalf("%s/%s: truncated image accepted", name, comp.ClassName(e))
					}
				}
			}
		}
	})
}

package core

import (
	"bytes"
	"testing"
)

// FuzzBDIRoundTrip: for arbitrary 128-byte register images and any Table 1
// parameter set, Compress either fails cleanly or round-trips exactly, and
// the mode chooser agrees with compressibility.
func FuzzBDIRoundTrip(f *testing.F) {
	f.Add(make([]byte, WarpBytes), uint8(2))
	affine := make([]byte, WarpBytes)
	for i := range affine {
		affine[i] = byte(i)
	}
	f.Add(affine, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, pi uint8) {
		if len(data) != WarpBytes {
			// Wrong-size input must be rejected, not crash.
			if Compressible(data, Params{4, 1}) {
				t.Fatal("wrong-size input accepted")
			}
			return
		}
		p := AllParams[int(pi)%len(AllParams)]
		comp, ok := Compress(data, p)
		if !ok {
			return
		}
		if len(comp) != p.CompressedSize() {
			t.Fatalf("%s: size %d != %d", p, len(comp), p.CompressedSize())
		}
		out := make([]byte, WarpBytes)
		if err := Decompress(comp, p, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%s: round trip mismatch", p)
		}
	})
}

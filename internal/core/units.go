package core

// UnitPool models a bank of pipelined compressor or decompressor units
// (paper §5.1: 2 compressors and 4 decompressors per SM, each a column of 32
// subtractors/adders plus sign-extension comparators).
//
// Units are fully pipelined with an initiation interval of one cycle: the
// pool accepts at most Size new operations per cycle and each finishes
// Latency cycles later. Every accepted operation is one "activation" for the
// energy model (23 pJ compress / 21 pJ decompress, Table 3).
type UnitPool struct {
	size    int
	latency int

	cycle uint64 // cycle the `used` counter refers to
	used  int    // operations started in `cycle`

	activations uint64
}

// NewUnitPool builds a pool of n pipelined units with the given latency in
// cycles. A latency of 0 means results are available in the same cycle.
func NewUnitPool(n, latency int) *UnitPool {
	if n <= 0 {
		panic("core: unit pool needs at least one unit")
	}
	if latency < 0 {
		panic("core: negative unit latency")
	}
	return &UnitPool{size: n, latency: latency}
}

// TryStart attempts to start an operation at cycle now. On success it
// returns the cycle at which the result is available. Calls must be made
// with non-decreasing now.
func (u *UnitPool) TryStart(now uint64) (ready uint64, ok bool) {
	if now != u.cycle {
		u.cycle, u.used = now, 0
	}
	if u.used >= u.size {
		return 0, false
	}
	u.used++
	u.activations++
	return now + uint64(u.latency), true
}

// Activations returns the total number of operations the pool has performed;
// the energy model multiplies this by the per-activation energy.
func (u *UnitPool) Activations() uint64 { return u.activations }

// Size returns the number of units in the pool (leakage is per unit).
func (u *UnitPool) Size() int { return u.size }

// Latency returns the pipeline depth in cycles.
func (u *UnitPool) Latency() int { return u.latency }

// IndicatorTable is the per-register 2-bit compression range indicator the
// bank arbiter consults before issuing bank reads (paper §4: "this vector is
// stored in the bank arbiter, and it is read when a register access is
// requested, in parallel to bank arbitration").
type IndicatorTable struct {
	enc []Encoding
}

// NewIndicatorTable sizes the table for n warp registers.
func NewIndicatorTable(n int) *IndicatorTable {
	return &IndicatorTable{enc: make([]Encoding, n)}
}

// Get returns the current encoding of warp register id.
func (t *IndicatorTable) Get(id int) Encoding { return t.enc[id] }

// Set records a new encoding for warp register id.
func (t *IndicatorTable) Set(id int, e Encoding) { t.enc[id] = e }

// Len returns the table capacity in registers.
func (t *IndicatorTable) Len() int { return len(t.enc) }

package faults

import "testing"

// FuzzInjector fuzzes the realized fault pattern over arbitrary seeds and
// (clamped) shape parameters: construction must never panic, the stuck set
// must be exact, in-range, duplicate-free and nonzero-patterned, and an
// identically-parameterized injector must reproduce it bit-for-bit — the
// determinism contract every fault experiment rests on.
func FuzzInjector(f *testing.F) {
	f.Add(int64(0), 0, 0, 0, uint8(32))
	f.Add(int64(42), 2, 100, 3, uint8(32))
	f.Add(int64(-1), 64, 1_000_000, 255, uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, stuck, perM, smID int, nb uint8) {
		numBanks := int(nb%64) + 1
		if stuck < 0 {
			stuck = -stuck
		}
		if perM < 0 {
			perM = -perM
		}
		cfg := Config{Seed: seed, StuckAtBanks: stuck % (numBanks + 1), TransientPerM: perM % 1_000_001}
		if err := cfg.Validate(numBanks); err != nil {
			t.Fatalf("clamped config invalid: %v", err)
		}
		a := NewInjector(cfg, smID, numBanks)
		b := NewInjector(cfg, smID, numBanks)
		banks := a.FaultyBanks()
		if len(banks) != cfg.StuckAtBanks {
			t.Fatalf("%d faulty banks, want %d", len(banks), cfg.StuckAtBanks)
		}
		for i, bank := range banks {
			if bank < 0 || bank >= numBanks {
				t.Fatalf("bank %d out of [0,%d)", bank, numBanks)
			}
			if i > 0 && banks[i-1] >= bank {
				t.Fatalf("bank list not strictly sorted: %v", banks)
			}
			if a.StuckPattern(bank) == 0 {
				t.Fatalf("zero stuck pattern on bank %d", bank)
			}
			if b.FaultyBanks()[i] != bank || b.StuckPattern(bank) != a.StuckPattern(bank) {
				t.Fatal("determinism violated: twin injector differs")
			}
		}
		for i := 0; i < 64; i++ {
			al, ab, aok := a.TransientFlip()
			bl, bb, bok := b.TransientFlip()
			if al != bl || ab != bb || aok != bok {
				t.Fatalf("transient streams diverge at draw %d", i)
			}
			if aok && (al < 0 || al > 31 || ab < 0 || ab > 31) {
				t.Fatalf("flip out of range: lane %d bit %d", al, ab)
			}
		}
	})
}

// FuzzParseSpec: the -inject grammar never panics, and accepted specs
// round-trip through Config.String.
func FuzzParseSpec(f *testing.F) {
	f.Add("seed=42,stuck=2,transient=100,redirect")
	f.Add("stuck=1")
	f.Add("")
	f.Add("redirect=false, seed=-3")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseSpec(spec)
		if err != nil {
			return
		}
		rt, err := ParseSpec(c.String())
		if err != nil {
			t.Fatalf("String() of accepted spec rejected: %v", err)
		}
		if rt != c {
			t.Fatalf("round trip changed config: %+v -> %+v", c, rt)
		}
	})
}

// Package faults is the deterministic, seeded fault-injection layer of the
// reliability axis: it models the two register-file failure modes the RRCD
// line of work studies on top of compression (see PAPERS.md) — permanent
// stuck-at failures of whole register banks and transient single-bit flips
// on register writes.
//
// Everything is derived from a single Seed: the same configuration produces
// the identical fault pattern on every run, at every engine parallelism
// level, which keeps fault experiments memoizable and their JSON results
// byte-reproducible. The package holds no global state and draws no entropy
// from the environment.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Config selects the fault model. The zero value disables injection.
type Config struct {
	// Seed drives every pseudo-random decision (which banks fail, which
	// writes flip a bit). Two runs with equal Config behave identically.
	Seed int64
	// StuckAtBanks is the number of register banks per SM with permanent
	// stuck-at failures. Data stored in a stuck bank reads back corrupted.
	StuckAtBanks int
	// TransientPerM is the expected number of transient single-bit flips
	// per million register writes (soft-error rate knob). 0 disables.
	TransientPerM int
	// Redirect enables RRCD-style redirection: compressed registers, which
	// need fewer than the full 8 banks of their cluster, are placed in the
	// cluster's healthy banks first, steering around stuck banks.
	Redirect bool
}

// Enabled reports whether any fault mechanism is active.
func (c Config) Enabled() bool { return c.StuckAtBanks > 0 || c.TransientPerM > 0 }

// ConfigError is a typed validation failure of a fault configuration.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("faults: invalid %s: %s", e.Field, e.Reason)
}

// Validate rejects impossible fault parameters. numBanks is the register
// file's bank count (the stuck-at ceiling).
func (c Config) Validate(numBanks int) error {
	if c.StuckAtBanks < 0 {
		return &ConfigError{"StuckAtBanks", "must be non-negative"}
	}
	if c.StuckAtBanks > numBanks {
		return &ConfigError{"StuckAtBanks", fmt.Sprintf("%d exceeds the %d register banks", c.StuckAtBanks, numBanks)}
	}
	if c.TransientPerM < 0 {
		return &ConfigError{"TransientPerM", "must be non-negative"}
	}
	if c.TransientPerM > 1_000_000 {
		return &ConfigError{"TransientPerM", "rate is per million writes; maximum 1000000"}
	}
	return nil
}

// String renders the configuration in ParseSpec syntax.
func (c Config) String() string {
	return fmt.Sprintf("seed=%d,stuck=%d,transient=%d,redirect=%t",
		c.Seed, c.StuckAtBanks, c.TransientPerM, c.Redirect)
}

// ParseSpec parses a warpedsim -inject specification: comma-separated
// key=value pairs. Keys: seed (int), stuck (bank count), transient (flips
// per million writes), redirect (bool; bare "redirect" means true).
//
//	seed=42,stuck=2,redirect
//	stuck=1,transient=100
func ParseSpec(spec string) (Config, error) {
	var c Config
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "seed", "stuck", "transient":
			if !hasVal {
				return Config{}, fmt.Errorf("faults: %q needs a value (key=value)", key)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad %s value %q: %v", key, val, err)
			}
			switch key {
			case "seed":
				c.Seed = n
			case "stuck":
				c.StuckAtBanks = int(n)
			case "transient":
				c.TransientPerM = int(n)
			}
		case "redirect":
			if !hasVal {
				c.Redirect = true
				break
			}
			b, err := strconv.ParseBool(val)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad redirect value %q: %v", val, err)
			}
			c.Redirect = b
		default:
			return Config{}, fmt.Errorf("faults: unknown key %q (have seed, stuck, transient, redirect)", key)
		}
	}
	return c, nil
}

// splitmix64 is the PRNG behind every injection decision: tiny, fast and
// fully specified here, so fault patterns never depend on the standard
// library's generator evolving between Go releases.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Injector holds one SM's realized fault pattern: the stuck bank set chosen
// at construction and the transient-flip stream consumed one draw per
// register write. Distinct SM ids under the same seed fail differently, as
// on real silicon.
//
// An Injector is not safe for concurrent use; the simulator drives each
// SM's injector from its single-threaded cycle loop.
type Injector struct {
	cfg     Config
	state   uint64 // transient-flip PRNG stream
	faulty  []bool // indexed by bank
	banks   []int  // sorted faulty bank indices
	pattern []uint32
}

// NewInjector realizes the fault pattern of one SM over numBanks register
// banks. The same (cfg, smID, numBanks) triple always yields the same
// pattern.
func NewInjector(cfg Config, smID, numBanks int) *Injector {
	in := &Injector{
		cfg:     cfg,
		faulty:  make([]bool, numBanks),
		pattern: make([]uint32, numBanks),
	}
	// Separate streams for topology (which banks fail, their stuck values)
	// and for the transient sequence, so enabling transients never reshuffles
	// the stuck bank placement.
	topo := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(smID)*0xD1B54A32D192ED03 + 1
	in.state = uint64(cfg.Seed)*0xBF58476D1CE4E5B9 + uint64(smID)*0x94D049BB133111EB + 2

	n := cfg.StuckAtBanks
	if n > numBanks {
		n = numBanks
	}
	// Partial Fisher-Yates over the bank indices picks n distinct victims.
	perm := make([]int, numBanks)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + int(splitmix64(&topo)%uint64(numBanks-i))
		perm[i], perm[j] = perm[j], perm[i]
		in.faulty[perm[i]] = true
	}
	in.banks = append(in.banks, perm[:n]...)
	sort.Ints(in.banks)
	for b := range in.pattern {
		// A stuck bank XORs stored data with a fixed nonzero pattern: the
		// simplest model in which every write through the bank is visibly
		// corrupted yet fully deterministic.
		in.pattern[b] = uint32(splitmix64(&topo)) | 1
	}
	return in
}

// FaultyBanks returns the stuck bank indices, sorted ascending. The slice
// is shared; callers must not mutate it.
func (in *Injector) FaultyBanks() []int { return in.banks }

// BankFaulty reports whether bank b has a permanent stuck-at failure.
func (in *Injector) BankFaulty(b int) bool { return in.faulty[b] }

// StuckPattern returns the nonzero XOR corruption pattern of a stuck bank.
func (in *Injector) StuckPattern(b int) uint32 { return in.pattern[b] }

// TransientFlip consumes one draw of the transient stream: called once per
// register write, it reports whether that write suffers a single-bit upset
// and, if so, which lane and bit flip.
func (in *Injector) TransientFlip() (lane, bit int, ok bool) {
	if in.cfg.TransientPerM <= 0 {
		return 0, 0, false
	}
	u := splitmix64(&in.state)
	if u%1_000_000 >= uint64(in.cfg.TransientPerM) {
		return 0, 0, false
	}
	v := splitmix64(&in.state)
	return int(v % 32), int((v >> 8) % 32), true
}

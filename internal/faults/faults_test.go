package faults

import (
	"errors"
	"testing"
)

// TestInjectorDeterminism: the whole point of the seeded design — identical
// (config, SM, bank-count) triples realize identical fault patterns and
// identical transient streams.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, StuckAtBanks: 3, TransientPerM: 5000}
	a := NewInjector(cfg, 2, 32)
	b := NewInjector(cfg, 2, 32)
	if len(a.FaultyBanks()) != 3 {
		t.Fatalf("faulty banks = %v, want 3 entries", a.FaultyBanks())
	}
	for i, bank := range a.FaultyBanks() {
		if b.FaultyBanks()[i] != bank {
			t.Fatalf("bank sets differ: %v vs %v", a.FaultyBanks(), b.FaultyBanks())
		}
		if a.StuckPattern(bank) != b.StuckPattern(bank) {
			t.Fatalf("stuck patterns differ on bank %d", bank)
		}
		if a.StuckPattern(bank) == 0 {
			t.Fatalf("stuck pattern of bank %d is zero (invisible corruption)", bank)
		}
	}
	for i := 0; i < 10_000; i++ {
		al, ab, aok := a.TransientFlip()
		bl, bb, bok := b.TransientFlip()
		if al != bl || ab != bb || aok != bok {
			t.Fatalf("transient streams diverge at draw %d", i)
		}
	}
}

// TestInjectorPerSM: different SMs under one seed fail in different places
// (at least for this seed — the property the per-SM stream split exists for).
func TestInjectorPerSM(t *testing.T) {
	cfg := Config{Seed: 1, StuckAtBanks: 4}
	a := NewInjector(cfg, 0, 32).FaultyBanks()
	b := NewInjector(cfg, 1, 32).FaultyBanks()
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("SM 0 and SM 1 realized the identical bank set %v", a)
	}
}

// TestInjectorBankSet: counts, bounds, clamping and the BankFaulty view.
func TestInjectorBankSet(t *testing.T) {
	in := NewInjector(Config{Seed: 9, StuckAtBanks: 5}, 3, 32)
	banks := in.FaultyBanks()
	if len(banks) != 5 {
		t.Fatalf("%d faulty banks, want 5", len(banks))
	}
	seen := map[int]bool{}
	for _, b := range banks {
		if b < 0 || b >= 32 {
			t.Fatalf("bank %d out of range", b)
		}
		if seen[b] {
			t.Fatalf("bank %d chosen twice", b)
		}
		seen[b] = true
		if !in.BankFaulty(b) {
			t.Fatalf("BankFaulty(%d) = false for a listed bank", b)
		}
	}
	healthy := 0
	for b := 0; b < 32; b++ {
		if !in.BankFaulty(b) {
			healthy++
		}
	}
	if healthy != 27 {
		t.Fatalf("%d healthy banks, want 27", healthy)
	}

	// Requesting more failures than banks exist clamps to all-faulty.
	all := NewInjector(Config{Seed: 9, StuckAtBanks: 99}, 0, 8)
	if len(all.FaultyBanks()) != 8 {
		t.Fatalf("clamp failed: %v", all.FaultyBanks())
	}
}

// TestTransientRateExtremes: rate 0 never flips, rate 1e6 always flips, and
// lane/bit stay in range.
func TestTransientRateExtremes(t *testing.T) {
	off := NewInjector(Config{Seed: 3, TransientPerM: 0}, 0, 32)
	for i := 0; i < 1000; i++ {
		if _, _, ok := off.TransientFlip(); ok {
			t.Fatal("rate 0 produced a flip")
		}
	}
	on := NewInjector(Config{Seed: 3, TransientPerM: 1_000_000}, 0, 32)
	for i := 0; i < 1000; i++ {
		lane, bit, ok := on.TransientFlip()
		if !ok {
			t.Fatal("rate 1e6 skipped a flip")
		}
		if lane < 0 || lane > 31 || bit < 0 || bit > 31 {
			t.Fatalf("flip out of range: lane %d bit %d", lane, bit)
		}
	}
}

// TestValidate: typed errors for impossible parameters.
func TestValidate(t *testing.T) {
	bad := []Config{
		{StuckAtBanks: -1},
		{StuckAtBanks: 33},
		{TransientPerM: -5},
		{TransientPerM: 1_000_001},
	}
	for i, c := range bad {
		err := c.Validate(32)
		if err == nil {
			t.Errorf("bad config %d accepted", i)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("bad config %d: error %v is not a *ConfigError", i, err)
		}
	}
	good := Config{Seed: 1, StuckAtBanks: 2, TransientPerM: 100, Redirect: true}
	if err := good.Validate(32); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if !good.Enabled() {
		t.Fatal("good config should report enabled")
	}
	if (Config{Seed: 5}).Enabled() {
		t.Fatal("seed alone must not enable injection")
	}
}

// TestParseSpec: syntax, defaults, bare redirect, round-trip via String.
func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("seed=42, stuck=2, transient=100, redirect")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, StuckAtBanks: 2, TransientPerM: 100, Redirect: true}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	if rt, err := ParseSpec(c.String()); err != nil || rt != c {
		t.Fatalf("round trip: %+v (%v), want %+v", rt, err, c)
	}
	if c, err := ParseSpec(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	if c, err := ParseSpec("redirect=false,stuck=1"); err != nil || c.Redirect {
		t.Fatalf("explicit redirect=false: %+v, %v", c, err)
	}
	for _, bad := range []string{"stuck", "stuck=x", "seed=9999999999999999999999", "redirect=maybe", "banks=3"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// Package version derives a build identity from the Go build info embedded
// in every binary (debug.ReadBuildInfo): module version, VCS revision and
// toolchain. All of the repo's binaries share it — the -version flag on the
// CLIs and warpedd's /v1/version endpoint render the same Info, so there is
// exactly one notion of "which build is this".
package version

import (
	"fmt"
	"runtime/debug"
)

// Info is the structured build identity.
type Info struct {
	// Binary is the command name the caller reports as (warpedsim,
	// warpedd, ...).
	Binary string `json:"binary"`
	// Version is the main module's version: a tag for released builds,
	// "(devel)" for source builds.
	Version string `json:"version"`
	// Revision is the VCS commit the binary was built from, when stamped.
	Revision string `json:"revision,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// Get reads the build identity for the named binary. It degrades
// gracefully: binaries built without build info (e.g. some test harnesses)
// still get the binary name back.
func Get(binary string) Info {
	info := Info{Binary: binary, Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Go = bi.GoVersion
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity as the one-line -version output.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s", i.Binary, i.Version)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Modified {
			rev += "+dirty"
		}
		s += " (" + rev + ")"
	}
	if i.Go != "" {
		s += " " + i.Go
	}
	return s
}

// String is the convenience used by every main: version.String("warpedsim").
func String(binary string) string { return Get(binary).String() }

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	payload := []byte(`{"schema":"warped.sim.result/v1","cycles":42}`)
	if err := s.Put(NSResult, "small|bfs|cfg/v1:abc", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(NSResult, "small|bfs|cfg/v1:abc")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	if _, ok := s.Get(NSResult, "small|bfs|cfg/v1:other"); ok {
		t.Fatal("Get of an unwritten key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 write, 1 entry", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Fatalf("stats bytes = %d, want > payload size %d (entry includes header)", st.Bytes, len(payload))
	}
}

func TestPutReplacesExistingEntry(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put(NSResult, "k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSResult, "k", []byte("newer-payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(NSResult, "k")
	if !ok || string(got) != "newer-payload" {
		t.Fatalf("Get = %q, %v; want the replacing payload", got, ok)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after overwrite, want 1", st.Entries)
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(NSResult, fmt.Sprintf("key-%d", i), []byte(strings.Repeat("x", 100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(NSTrace, "trace-000007", []byte("trace payload")); err != nil {
		t.Fatal(err)
	}

	re := open(t, dir, Options{})
	st := re.Stats()
	if st.Entries != 4 {
		t.Fatalf("reopened store indexes %d entries, want 4", st.Entries)
	}
	if got, ok := re.Get(NSResult, "key-1"); !ok || string(got) != strings.Repeat("x", 101) {
		t.Fatalf("reopened Get(key-1) = %q, %v", got, ok)
	}
	if keys := re.Keys(NSTrace); len(keys) != 1 || keys[0] != "trace-000007" {
		t.Fatalf("Keys(trace) = %v, want [trace-000007]", keys)
	}
	if keys := re.Keys(NSResult); len(keys) != 3 {
		t.Fatalf("Keys(result) = %v, want 3 keys", keys)
	}
}

// TestSharedDirectory: two Store handles over one directory (two workers on
// a shared filesystem). A write by one is readable by the other even though
// the reader's index has never seen the key — the disk probe is the
// fallback.
func TestSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{})
	if err := a.Put(NSResult, "shared-key", []byte("from a")); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(NSResult, "shared-key")
	if !ok || string(got) != "from a" {
		t.Fatalf("peer Get = %q, %v; want the other handle's write", got, ok)
	}
	// And an entry GC'd by a peer degrades to a plain miss, not an error.
	if err := os.Remove(a.entryPath(NSResult, "shared-key")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(NSResult, "shared-key"); ok {
		t.Fatal("Get reported a hit for a file a peer deleted")
	}
	if st := b.Stats(); st.Quarantined != 0 {
		t.Fatalf("peer deletion quarantined %d entries, want 0 (plain miss)", st.Quarantined)
	}
}

// corrupt writes a mutated copy of the entry file for key.
func corrupt(t *testing.T, s *Store, ns, key string, mutate func([]byte) []byte) {
	t.Helper()
	path := s.entryPath(ns, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(NSResult, "k", bytes.Repeat([]byte("payload"), 100)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, NSResult, "k", func(b []byte) []byte { return b[:len(b)-13] })

	if _, ok := s.Get(NSResult, "k"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 1 quarantined, 1 miss", st)
	}
	if _, err := os.Stat(s.entryPath(NSResult, "k")); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still present at its path: %v", err)
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir holds %d files (%v), want the condemned entry", len(q), err)
	}
	// Degrade-to-recompute is stable: the next Get is a plain miss.
	if _, ok := s.Get(NSResult, "k"); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

func TestBitFlipFailsCRCAndQuarantines(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put(NSResult, "k", bytes.Repeat([]byte{0xAB}, 256)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, NSResult, "k", func(b []byte) []byte {
		b[len(b)-1] ^= 0x01
		return b
	})
	if _, ok := s.Get(NSResult, "k"); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

// TestAliasedEntryQuarantined: an entry whose header names a different key
// (hash collision, or a file copied onto the wrong path) must never be
// served under the wrong identity.
func TestAliasedEntryQuarantined(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put(NSResult, "real-key", []byte("real payload")); err != nil {
		t.Fatal(err)
	}
	// Copy real-key's (internally consistent) entry onto other-key's path.
	data, err := os.ReadFile(s.entryPath(NSResult, "real-key"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.entryPath(NSResult, "other-key"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(NSResult, "other-key"); ok {
		t.Fatal("entry served under a key its header does not name")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	// The real entry is untouched.
	if got, ok := s.Get(NSResult, "real-key"); !ok || string(got) != "real payload" {
		t.Fatalf("real entry damaged by the aliasing quarantine: %q, %v", got, ok)
	}
}

// TestPartialTmpFileCleanedAtOpen: a crash mid-write leaves a tmp file;
// the next Open must delete it and must not index it.
func TestPartialTmpFileCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	open(t, dir, Options{}) // create layout
	leftover := filepath.Join(dir, tmpDir, "deadbeef.1234.1")
	if err := os.WriteFile(leftover, []byte(EntrySchema+"\npartial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatalf("partial tmp file survived Open: %v", err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("tmp leftover was indexed: %+v", st)
	}
}

// TestUnparseableFileQuarantinedAtOpen: junk dropped into a namespace
// directory is moved aside during the startup scan.
func TestUnparseableFileQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(NSResult, "good", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, NSResult, entryName("junk-key"))
	if err := os.WriteFile(junk, []byte("not a store entry at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := open(t, dir, Options{})
	if st := re.Stats(); st.Entries != 1 {
		t.Fatalf("reopened store indexes %d entries, want only the good one", st.Entries)
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatalf("junk file still in the namespace dir: %v", err)
	}
	if got, ok := re.Get(NSResult, "good"); !ok || string(got) != "fine" {
		t.Fatalf("good entry lost during junk quarantine: %q, %v", got, ok)
	}
}

func TestBudgetGCEvictsLRUFirst(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("v"), 1000)
	// Entries run ~1.1KB with header; budget fits two, not three.
	s := open(t, dir, Options{BudgetBytes: 2500})
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(NSResult, k, payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evicted != 1 || st.EvictedBytes == 0 {
		t.Fatalf("stats = %+v; want exactly 1 eviction with bytes accounted", st)
	}
	if _, ok := s.Get(NSResult, "a"); ok {
		t.Fatal("oldest entry 'a' survived budget pressure")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := s.Get(NSResult, k); !ok {
			t.Fatalf("entry %q evicted; want only the LRU victim gone", k)
		}
	}
	if st := s.Stats(); st.Bytes > 2500 {
		t.Fatalf("store holds %d bytes, over the 2500 budget", st.Bytes)
	}

	// A Get refreshes recency: touch b, add d — c (now LRU) is the victim.
	s.Get(NSResult, "b")
	if err := s.Put(NSResult, "d", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(NSResult, "c"); ok {
		t.Fatal("entry 'c' survived; LRU order ignored the refreshing Get")
	}
	if _, ok := s.Get(NSResult, "b"); !ok {
		t.Fatal("recently used entry 'b' evicted")
	}
}

// TestSingleOversizedEntryIsKept: an entry larger than the whole budget is
// still admitted (the store must be able to hold the result it just paid
// for); it is evicted when the next entry arrives.
func TestSingleOversizedEntryIsKept(t *testing.T) {
	s := open(t, t.TempDir(), Options{BudgetBytes: 100})
	big := bytes.Repeat([]byte("B"), 1000)
	if err := s.Put(NSResult, "big", big); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(NSResult, "big"); !ok {
		t.Fatal("oversized entry evicted at its own admission")
	}
	if err := s.Put(NSResult, "next", []byte("n")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(NSResult, "big"); ok {
		t.Fatal("oversized entry survived the next admission")
	}
}

// TestWriteFailureDegradesGracefully: when the disk goes away (ENOSPC,
// directory deleted), Put errors and counts it, and Get keeps answering
// misses — the caller computes instead.
func TestWriteFailureDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSResult, "k", []byte("p")); err == nil {
		t.Fatal("Put succeeded with the store directory gone")
	}
	if _, ok := s.Get(NSResult, "k"); ok {
		t.Fatal("Get reported a hit with the store directory gone")
	}
	st := s.Stats()
	if st.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", st.WriteErrors)
	}
}

// TestCallerQuarantine: the CRC can pass while the payload is semantically
// undecodable for the caller; Quarantine condemns such entries identically
// to CRC failures.
func TestCallerQuarantine(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put(NSResult, "k", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	s.Quarantine(NSResult, "k", fmt.Errorf("payload does not unmarshal"))
	if _, ok := s.Get(NSResult, "k"); ok {
		t.Fatal("caller-quarantined entry still served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestInvalidNamespaceRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, ns := range []string{"", ".", "..", "a/b", `a\b`, tmpDir, quarantineDir} {
		if err := s.Put(ns, "k", []byte("p")); err == nil {
			t.Fatalf("Put accepted invalid namespace %q", ns)
		}
		if _, ok := s.Get(ns, "k"); ok {
			t.Fatalf("Get accepted invalid namespace %q", ns)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), Options{BudgetBytes: 50_000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("key-%d", i%5)
				payload := bytes.Repeat([]byte{byte(i)}, 500)
				if err := s.Put(NSResult, key, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := s.Get(NSResult, key); ok && len(got) != 500 {
					t.Errorf("Get returned %d bytes, want 500", len(got))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestTrackerPolicy(t *testing.T) {
	tr := NewTracker(100)
	if ev := tr.Add("a", 40); len(ev) != 0 {
		t.Fatalf("eviction under budget: %v", ev)
	}
	tr.Add("b", 40)
	// Touch a so b becomes LRU.
	tr.Touch("a")
	ev := tr.Add("c", 40)
	if len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted %v, want [b] (LRU after touch)", ev)
	}
	if tr.Bytes() != 80 || tr.Len() != 2 {
		t.Fatalf("tracker at %d bytes / %d entries, want 80 / 2", tr.Bytes(), tr.Len())
	}
	// Replacing an entry re-accounts its size.
	tr.Add("a", 10)
	if tr.Bytes() != 50 {
		t.Fatalf("re-add accounting: %d bytes, want 50", tr.Bytes())
	}
	if got := tr.Remove("a"); got != 10 {
		t.Fatalf("Remove returned %d, want 10", got)
	}
	if tr.Remove("missing") != 0 {
		t.Fatal("Remove of unknown key returned non-zero")
	}
	// Unlimited tracker never evicts.
	un := NewTracker(0)
	for i := 0; i < 100; i++ {
		if ev := un.Add(fmt.Sprintf("k%d", i), 1<<20); len(ev) != 0 {
			t.Fatalf("unlimited tracker evicted %v", ev)
		}
	}
}

// TestReopenEvictionOrderIsWriteOrder: after a restart the rebuilt index
// must evict the stalest entries first, which requires mtime ordering at
// load.
func TestReopenEvictionOrderIsWriteOrder(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	payload := bytes.Repeat([]byte("p"), 1000)
	for _, k := range []string{"old", "mid", "new"} {
		if err := s.Put(NSResult, k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Make the write order unambiguous to the filesystem clock.
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"old", "mid", "new"} {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.entryPath(NSResult, k), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	re := open(t, dir, Options{BudgetBytes: 2500}) // fits two
	// Index load applies the budget on the next admission.
	if err := re.Put(NSResult, "newest", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get(NSResult, "old"); ok {
		t.Fatal("stalest entry survived the tightened budget")
	}
	if _, ok := re.Get(NSResult, "new"); !ok {
		t.Fatal("freshest pre-restart entry evicted before staler ones")
	}
}

// FuzzStoreRead hammers the entry decoder with arbitrary bytes: it must
// reject malformation with an error — never panic, never return a payload
// whose checksum does not match its header.
func FuzzStoreRead(f *testing.F) {
	valid, err := encodeEntry(NSResult, "small|bfs|cfg/v1:abc", []byte(`{"cycles":42}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(EntrySchema + "\n"))
	f.Add([]byte(EntrySchema + "\n{}\n"))
	f.Add([]byte(EntrySchema + `{"key":"k","namespace":"result","len":0,"crc32c":"00000000"}` + "\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, err := decodeEntry(data)
		if err != nil {
			return
		}
		if int64(len(payload)) != hdr.Len {
			t.Fatalf("accepted entry with %d payload bytes, header says %d", len(payload), hdr.Len)
		}
		// Anything the decoder accepts must survive a re-encode/re-decode
		// round trip unchanged. (Byte-canonicality of the input is not
		// required: encoding/json matches header field names
		// case-insensitively, and the store only reads entries it wrote.)
		re, err := encodeEntry(hdr.Namespace, hdr.Key, payload)
		if err != nil {
			// encodeEntry validates the namespace; decodeEntry does not
			// (layout safety is enforced at Put/Get). Skip those inputs.
			return
		}
		hdr2, payload2, err := decodeEntry(re)
		if err != nil {
			t.Fatalf("re-encoded entry does not decode: %v", err)
		}
		if hdr2.Key != hdr.Key || hdr2.Namespace != hdr.Namespace || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed the entry: %+v vs %+v", hdr, hdr2)
		}
	})
}

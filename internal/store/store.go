// Package store is a disk-backed, content-addressed blob store that makes
// expensive simulation artifacts survive process lifetimes: completed
// warped.sim.result/v1 documents keyed by the cfg/v1
// experiments.ConfigSignature job key, and warped.trace/v1 recordings
// keyed by their trace refs. The serving layer (internal/jobs) writes
// through to it under its in-memory LRU, so a restarted warpedd serves
// repeat sweeps from disk instead of re-simulating work the fleet already
// paid for.
//
// The durability contract:
//
//   - Writes are atomic: entries are staged in a tmp/ directory, fsynced,
//     and renamed into place; a crash mid-write leaves a tmp file that the
//     next Open deletes, never a half-visible entry.
//   - Reads are checked: every entry carries its full key and a CRC-32C of
//     the payload. A truncated, bit-rotten or aliased entry is moved to
//     quarantine/ and reported as a miss — the caller recomputes, and the
//     store never serves a wrong result.
//   - Capacity is a byte budget: least-recently-used entries are deleted
//     once the total exceeds it (the same Tracker policy the in-memory
//     trace store uses), and evicted bytes are surfaced in Stats.
//
// Multiple processes may share one directory (workers on a common
// filesystem): an index miss probes the disk before reporting a miss, and
// entries deleted by a peer's GC are handled as ordinary misses. See
// DESIGN.md §16.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// EntrySchema is the magic line opening every entry file; readers reject
// anything else.
const EntrySchema = "warped.store/v1"

// Namespaces used by the serving layer. Namespaces are directories, so
// they must be single clean path elements.
const (
	NSResult = "result" // warped.sim.result/v1 JSON, keyed by scale|benchmark|cfg-sig
	NSTrace  = "trace"  // warped.trace/v1 blobs, keyed by trace ref
)

// reserved directory names that can never be namespaces.
const (
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// entryHeader is the one-line JSON header following the magic. It carries
// the full key so Open can rebuild the index without trusting file names,
// and so a hash collision (or a file renamed onto the wrong path) can
// never alias one key's payload to another.
type entryHeader struct {
	Key       string `json:"key"`
	Namespace string `json:"namespace"`
	Len       int64  `json:"len"`
	CRC32C    string `json:"crc32c"`
}

// Options tunes a Store. The zero value is usable.
type Options struct {
	// BudgetBytes bounds the total payload+header bytes on disk; once
	// exceeded, least-recently-used entries are deleted. <= 0 means no
	// budget (never evict).
	BudgetBytes int64
	// Log, when set, receives one line per quarantine and eviction.
	Log func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries int   // entries currently indexed
	Bytes   int64 // bytes currently indexed
	Budget  int64 // configured byte budget (0 = unlimited)

	Hits         uint64 // Gets served from a verified entry
	Misses       uint64 // Gets that found no (usable) entry
	Writes       uint64 // entries durably written
	WriteErrors  uint64 // Puts that failed (disk full, directory gone, ...)
	Quarantined  uint64 // corrupt entries moved aside instead of served
	Evicted      uint64 // entries deleted by budget pressure
	EvictedBytes uint64 // bytes reclaimed by budget pressure
}

// Store is the handle to one store directory. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	// mu guards only the tracker index and the counters. File I/O (reads,
	// the write/fsync/rename dance, eviction unlinks, quarantine moves)
	// happens outside it, so a slow disk never serializes every caller
	// behind one fsync. The file operations themselves are safe unlocked:
	// tmp names are process-unique, renames are atomic, and concurrent
	// writers to one key are last-rename-wins.
	mu      sync.Mutex
	tracker *Tracker

	hits, misses, writes, writeErrors uint64
	quarantined, evicted              uint64
	evictedBytes                      uint64

	tmpSeq atomic.Uint64
}

// Open initializes dir (creating it if needed), deletes partial tmp files
// left by a crashed writer, and rebuilds the index from the entries on
// disk — oldest file first, so pre-existing entries are the first GC
// victims.
func Open(dir string, opts Options) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, tmpDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, opts: opts, tracker: NewTracker(opts.BudgetBytes)}

	// A tmp file is by definition an interrupted write: its entry was never
	// renamed into place, so the result it held was never promised to
	// anyone. Delete, don't salvage.
	tmps, err := os.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range tmps {
		if err := os.Remove(filepath.Join(dir, tmpDir, e.Name())); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: clearing tmp: %w", err)
		}
	}

	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadIndex scans every namespace directory and registers each entry whose
// header is structurally sound (full CRC verification is deferred to Get,
// so startup stays cheap). Files that are not even header-sound are
// quarantined immediately.
func (s *Store) loadIndex() error {
	root, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type found struct {
		ns, key string
		size    int64
		mtime   int64
	}
	var entries []found
	for _, d := range root {
		if !d.IsDir() || d.Name() == tmpDir || d.Name() == quarantineDir {
			continue
		}
		ns := d.Name()
		files, err := os.ReadDir(filepath.Join(s.dir, ns))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(s.dir, ns, f.Name())
			info, err := f.Info()
			if err != nil {
				continue // raced with a peer's GC
			}
			hdr, err := readHeader(path, info.Size())
			if err != nil || hdr.Namespace != ns || entryName(hdr.Key) != f.Name() {
				s.moveToQuarantine(path, fmt.Errorf("unindexable entry %s/%s: %v", ns, f.Name(), err))
				s.quarantined++
				continue
			}
			entries = append(entries, found{ns: ns, key: hdr.Key, size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	// Oldest first: the tracker's LRU order starts as write order, so a
	// budget tightened across a restart evicts the stalest entries first.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return entries[i].key < entries[j].key // deterministic tie-break
	})
	var victims []string
	s.mu.Lock()
	for _, e := range entries {
		victims = append(victims, s.tracker.Add(trackerKey(e.ns, e.key), e.size)...)
	}
	s.mu.Unlock()
	s.evict(victims)
	return nil
}

// readHeader reads and validates just the magic and header lines of an
// entry file, and checks that the declared payload length matches the file
// size — the cheap structural check used at startup.
func readHeader(path string, fileSize int64) (entryHeader, error) {
	var hdr entryHeader
	f, err := os.Open(path)
	if err != nil {
		return hdr, err
	}
	defer f.Close()
	// ReadFull, not a bare Read: a legal short read (interrupted syscall)
	// must not make a sound entry look header-truncated and get it
	// spuriously quarantined. EOF before the buffer fills just means the
	// file is smaller than headerLimit, which is the common case.
	head := make([]byte, headerLimit)
	n, err := io.ReadFull(f, head)
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return hdr, err
	}
	head = head[:n]
	hdr, headerLen, err := parseHeader(head)
	if err != nil {
		return hdr, err
	}
	if int64(headerLen)+hdr.Len != fileSize {
		return hdr, fmt.Errorf("declares %d payload bytes but file holds %d", hdr.Len, fileSize-int64(headerLen))
	}
	return hdr, nil
}

// headerLimit bounds the magic + header prefix of an entry. Keys are short
// (config signatures run a few hundred bytes); anything past this is not a
// store entry.
const headerLimit = 64 << 10

// parseHeader decodes the magic and header lines from the start of an
// entry, returning the header and the byte offset where the payload
// begins.
func parseHeader(data []byte) (entryHeader, int, error) {
	var hdr entryHeader
	magicEnd := bytes.IndexByte(data, '\n')
	if magicEnd < 0 || string(data[:magicEnd]) != EntrySchema {
		return hdr, 0, fmt.Errorf("bad magic")
	}
	rest := data[magicEnd+1:]
	hdrEnd := bytes.IndexByte(rest, '\n')
	if hdrEnd < 0 {
		return hdr, 0, fmt.Errorf("missing header line")
	}
	dec := json.NewDecoder(bytes.NewReader(rest[:hdrEnd]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hdr); err != nil {
		return hdr, 0, fmt.Errorf("header: %v", err)
	}
	if hdr.Key == "" || hdr.Namespace == "" || hdr.Len < 0 || len(hdr.CRC32C) != 8 {
		return hdr, 0, fmt.Errorf("header incomplete")
	}
	return hdr, magicEnd + 1 + hdrEnd + 1, nil
}

// decodeEntry parses and verifies a complete entry: magic, header, payload
// length and CRC. It is the read path's integrity core and the fuzz
// surface (FuzzStoreRead) — it must reject anything malformed with an
// error, never panic or return a payload that does not match its checksum.
func decodeEntry(data []byte) (entryHeader, []byte, error) {
	hdr, payloadOff, err := parseHeader(data)
	if err != nil {
		return hdr, nil, err
	}
	payload := data[payloadOff:]
	if int64(len(payload)) != hdr.Len {
		return hdr, nil, fmt.Errorf("payload is %d bytes, header declares %d", len(payload), hdr.Len)
	}
	sum := crc32.Checksum(payload, crcTable)
	if got := fmt.Sprintf("%08x", sum); got != hdr.CRC32C {
		return hdr, nil, fmt.Errorf("crc32c %s, header declares %s", got, hdr.CRC32C)
	}
	return hdr, payload, nil
}

// encodeEntry renders the canonical on-disk form of one entry.
func encodeEntry(ns, key string, payload []byte) ([]byte, error) {
	hdr, err := json.Marshal(entryHeader{
		Key:       key,
		Namespace: ns,
		Len:       int64(len(payload)),
		CRC32C:    fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable)),
	})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(EntrySchema)+1+len(hdr)+1+len(payload))
	buf = append(buf, EntrySchema...)
	buf = append(buf, '\n')
	buf = append(buf, hdr...)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	return buf, nil
}

// entryName is the content-addressed file name for a key: the hex SHA-256
// of the key. The full key is still stored in the entry header, so a
// (cryptographically implausible) hash collision is detected at read time
// rather than served.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) entryPath(ns, key string) string {
	return filepath.Join(s.dir, ns, entryName(key))
}

// trackerKey joins namespace and key into the Tracker's flat key space.
// \x00 cannot appear in either side, so the join is unambiguous.
func trackerKey(ns, key string) string { return ns + "\x00" + key }

func splitTrackerKey(tk string) (ns, key string) {
	i := strings.IndexByte(tk, 0)
	return tk[:i], tk[i+1:]
}

// validNamespace rejects namespaces that would escape the store directory
// or collide with its bookkeeping directories.
func validNamespace(ns string) error {
	if ns == "" || ns == tmpDir || ns == quarantineDir ||
		strings.ContainsAny(ns, "/\\") || ns == "." || ns == ".." {
		return fmt.Errorf("store: invalid namespace %q", ns)
	}
	return nil
}

// Get returns the verified payload stored under (ns, key). A missing entry
// is a plain miss. A present-but-corrupt entry (truncated, failed CRC,
// header naming a different key) is moved to quarantine/ and reported as a
// miss: degrading to recompute is always correct, serving a damaged result
// never is.
func (s *Store) Get(ns, key string) ([]byte, bool) {
	if err := validNamespace(ns); err != nil {
		return nil, false
	}
	data, err := os.ReadFile(s.entryPath(ns, key))
	if err != nil {
		// Not on disk (never written, GC'd here, or GC'd by a peer
		// process sharing the directory): a plain miss.
		s.mu.Lock()
		s.tracker.Remove(trackerKey(ns, key))
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	hdr, payload, derr := decodeEntry(data)
	if derr != nil || hdr.Key != key || hdr.Namespace != ns {
		if derr == nil {
			derr = fmt.Errorf("entry header names %s/%q, want %s/%q", hdr.Namespace, hdr.Key, ns, key)
		}
		s.quarantine(ns, key, derr)
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	// A hit may be the first sighting of an entry a peer process wrote;
	// admit it so the byte budget accounts for it.
	s.mu.Lock()
	victims := s.tracker.Add(trackerKey(ns, key), int64(len(data)))
	s.hits++
	s.mu.Unlock()
	s.evict(victims)
	return payload, true
}

// Put durably stores payload under (ns, key), replacing any previous
// entry, then applies the byte budget. The write is atomic: stage in tmp/,
// fsync, rename into place, fsync the namespace directory. On error the
// store is unchanged (callers degrade to memory-only operation) and the
// error is also counted in Stats.WriteErrors.
func (s *Store) Put(ns, key string, payload []byte) error {
	if err := validNamespace(ns); err != nil {
		return err
	}
	data, err := encodeEntry(ns, key, payload)
	if err != nil {
		s.mu.Lock()
		s.writeErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: encode %s/%s: %w", ns, key, err)
	}

	if err := s.writeEntry(ns, key, data); err != nil {
		s.mu.Lock()
		s.writeErrors++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.writes++
	victims := s.tracker.Add(trackerKey(ns, key), int64(len(data)))
	s.mu.Unlock()
	s.evict(victims)
	return nil
}

// writeEntry performs the atomic tmp → rename → dir-fsync dance. It runs
// without s.mu: the tmp name is process-unique (pid + atomic sequence), the
// rename is atomic, and two concurrent writers to one key resolve as
// last-rename-wins — so the slow part (fsync) never blocks readers.
func (s *Store) writeEntry(ns, key string, data []byte) error {
	nsDir := filepath.Join(s.dir, ns)
	if err := os.MkdirAll(nsDir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("%s.%d.%d", entryName(key), os.Getpid(), s.tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write %s/%s: %w", ns, key, err)
	}
	final := filepath.Join(nsDir, entryName(key))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish %s/%s: %w", ns, key, err)
	}
	// fsync the directory so the rename itself survives a power cut.
	if err := syncDir(nsDir); err != nil {
		return fmt.Errorf("store: sync %s: %w", ns, err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// evict deletes budget victims (tracker keys already removed from the
// index) from disk and accounts the reclaimed bytes. Called without s.mu —
// eviction is file I/O.
func (s *Store) evict(victims []string) {
	for _, victim := range victims {
		vns, vkey := splitTrackerKey(victim)
		vpath := s.entryPath(vns, vkey)
		var reclaimed int64
		if info, err := os.Stat(vpath); err == nil {
			reclaimed = info.Size()
		}
		if err := os.Remove(vpath); err != nil && !os.IsNotExist(err) {
			s.logf("store: evicting %s/%s: %v", vns, vkey, err)
			continue
		}
		s.mu.Lock()
		s.evicted++
		s.evictedBytes += uint64(reclaimed)
		s.mu.Unlock()
		s.logf("store: evicted %s/%s (%d bytes) under budget pressure", vns, vkey, reclaimed)
	}
}

// Quarantine condemns the entry under (ns, key): the store's own CRC
// passed but the caller found the payload undecodable (e.g. a result
// document that no longer unmarshals). The file is moved aside and the
// quarantine counter incremented, exactly as for a CRC failure.
func (s *Store) Quarantine(ns, key string, cause error) {
	if validNamespace(ns) != nil {
		return
	}
	s.quarantine(ns, key, cause)
}

// quarantine drops the entry from the index and counts it under s.mu, then
// moves the file aside outside the lock.
func (s *Store) quarantine(ns, key string, cause error) {
	s.mu.Lock()
	s.tracker.Remove(trackerKey(ns, key))
	s.quarantined++
	s.mu.Unlock()
	s.moveToQuarantine(s.entryPath(ns, key), cause)
}

// moveToQuarantine moves a damaged file into quarantine/ for post-mortem,
// falling back to deletion if even the rename fails — a corrupt entry must
// never stay where the read path can find it.
func (s *Store) moveToQuarantine(path string, cause error) {
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(filepath.Dir(path))+"-"+filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.logf("store: quarantined %s: %v", path, cause)
}

// Keys lists every indexed key in ns, sorted. It reflects this process's
// index (plus entries discovered via Get), which is what restart recovery
// needs: the trace refs this store held when the process came up.
func (s *Store) Keys(ns string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, tk := range s.tracker.Keys() {
		tns, key := splitTrackerKey(tk)
		if tns == ns {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      s.tracker.Len(),
		Bytes:        s.tracker.Bytes(),
		Budget:       s.tracker.Budget(),
		Hits:         s.hits,
		Misses:       s.misses,
		Writes:       s.writes,
		WriteErrors:  s.writeErrors,
		Quarantined:  s.quarantined,
		Evicted:      s.evicted,
		EvictedBytes: s.evictedBytes,
	}
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(format, args...)
	}
}

package store

import "container/list"

// Tracker is the byte-budget eviction policy shared by the disk store and
// the jobs layer's in-memory trace store: least-recently-used entries are
// evicted first once the running total exceeds the budget, and the entry
// being admitted is never its own victim — a store must be able to hold at
// least the result it just paid for, even when that single entry exceeds
// the whole budget.
//
// Tracker only decides; it never touches entry data. Callers apply the
// returned victim list to their own backing storage (delete files, drop
// map entries) and account the reclaimed bytes themselves. It is not safe
// for concurrent use; callers serialize access under their own mutex.
type Tracker struct {
	budget int64 // <= 0 means unlimited
	total  int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
}

type trackerItem struct {
	key  string
	size int64
}

// NewTracker builds a tracker enforcing budget bytes (<= 0 disables
// eviction; the tracker still accounts sizes).
func NewTracker(budget int64) *Tracker {
	return &Tracker{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// Add admits key at size (replacing any previous size for the same key),
// marks it most recently used, and returns the keys that must be evicted —
// least recently used first — to bring the total back within budget. The
// returned keys are already removed from the tracker; the freshly added key
// is never among them.
func (t *Tracker) Add(key string, size int64) (evicted []string) {
	if el, ok := t.items[key]; ok {
		it := el.Value.(*trackerItem)
		t.total += size - it.size
		it.size = size
		t.ll.MoveToFront(el)
	} else {
		t.items[key] = t.ll.PushFront(&trackerItem{key: key, size: size})
		t.total += size
	}
	if t.budget <= 0 {
		return nil
	}
	for t.total > t.budget && t.ll.Len() > 1 {
		oldest := t.ll.Back()
		it := oldest.Value.(*trackerItem)
		if it.key == key {
			break // never evict the entry being admitted
		}
		t.removeElement(oldest)
		evicted = append(evicted, it.key)
	}
	return evicted
}

// Touch marks key most recently used; unknown keys are ignored.
func (t *Tracker) Touch(key string) {
	if el, ok := t.items[key]; ok {
		t.ll.MoveToFront(el)
	}
}

// Remove forgets key and returns the bytes it accounted for (0 when
// unknown).
func (t *Tracker) Remove(key string) int64 {
	el, ok := t.items[key]
	if !ok {
		return 0
	}
	size := el.Value.(*trackerItem).size
	t.removeElement(el)
	return size
}

// Size reports the tracked size of key (0 when unknown).
func (t *Tracker) Size(key string) int64 {
	if el, ok := t.items[key]; ok {
		return el.Value.(*trackerItem).size
	}
	return 0
}

// Has reports whether key is tracked.
func (t *Tracker) Has(key string) bool {
	_, ok := t.items[key]
	return ok
}

// Keys returns every tracked key, least recently used first.
func (t *Tracker) Keys() []string {
	out := make([]string, 0, t.ll.Len())
	for el := t.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*trackerItem).key)
	}
	return out
}

// Len is the number of tracked entries.
func (t *Tracker) Len() int { return t.ll.Len() }

// Bytes is the running size total.
func (t *Tracker) Bytes() int64 { return t.total }

// Budget is the configured byte budget (<= 0 means unlimited).
func (t *Tracker) Budget() int64 { return t.budget }

func (t *Tracker) removeElement(el *list.Element) {
	it := el.Value.(*trackerItem)
	t.ll.Remove(el)
	delete(t.items, it.key)
	t.total -= it.size
}

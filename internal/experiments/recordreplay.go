package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exectrace"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// The record/replay job path. The functional behaviour of a benchmark is
// configuration-independent, so a sweep of N configurations over one
// benchmark only needs the functional front-end once: the first job records
// an exectrace launch while producing its own (byte-identical to execute)
// result, and the other N-1 jobs drive the timing back-end by replaying the
// trace — skipping instruction execution, memory traffic and the output
// check entirely.

// defaultTraceBudget bounds the resident decoded-trace cache; least
// recently used benchmarks are evicted past it. Entries currently being
// waited on stay reachable through their waiters regardless.
const defaultTraceBudget int64 = 1 << 30

// traceMirrorInterval is how often a joiner waiting for an in-flight
// recording copies the recorder's instruction heartbeat into its own, so
// the joiner's watchdog tracks the recorder's progress instead of firing
// on an apparently idle job.
const traceMirrorInterval = 50 * time.Millisecond

// traceEntry is one single-flight slot of the per-benchmark trace cache.
// The first requester of a benchmark records; concurrent requesters block
// on done and then replay (or fall back to execute if recording failed).
type traceEntry struct {
	done chan struct{}
	beat *atomic.Uint64 // the recording job's live heartbeat

	// Written once before done closes, read-only after.
	lt  *exectrace.Launch
	err error

	lastUse int64 // engine.traceClock at last touch (LRU)
}

// runSimRR is the engine's job function when record/replay is enabled: an
// execute-compatible drop-in whose results are byte-identical to runSim for
// every configuration (the replay determinism oracle in internal/sim is the
// proof). Configurations that cannot trace (fault injection) and launches
// that cannot trace (ErrUntraceable) fall back to plain execute.
func (e *engine) runSimRR(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error) {
	if c.Faults.Enabled() {
		return e.runSim(ctx, b, c, beat)
	}

	e.traceMu.Lock()
	e.traceClock++
	ent, ok := e.traces[b.Name]
	if ok {
		ent.lastUse = e.traceClock
	} else {
		ent = &traceEntry{done: make(chan struct{}), beat: beat, lastUse: e.traceClock}
		e.traces[b.Name] = ent
	}
	e.traceMu.Unlock()

	if !ok {
		return e.recordInto(ctx, ent, b, c, beat)
	}
	if err := e.waitTrace(ctx, ent, beat); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if ent.err != nil {
		// Recording failed; this configuration still owes a result.
		return e.runSim(ctx, b, c, beat)
	}
	return e.replaySim(ctx, b.Name, c, ent.lt, beat)
}

// recordInto runs the benchmark in record mode and publishes the outcome
// into the trace-cache entry. The record-mode result is byte-identical to
// an execute-mode run under the same configuration, so it is returned
// directly — the recording job pays only the tee overhead, never a second
// simulation.
func (e *engine) recordInto(ctx context.Context, ent *traceEntry, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error) {
	res, lt, err := e.recordSim(ctx, b, c, beat)
	ent.lt, ent.err = lt, err
	e.traceMu.Lock()
	if err != nil && !errors.Is(err, sim.ErrUntraceable) {
		// Transient or environmental failure: evict so a later requester
		// re-records. ErrUntraceable is a deterministic property of the
		// benchmark, so that entry stays as a cheap negative cache and
		// every future requester goes straight to execute mode.
		delete(e.traces, b.Name)
	}
	e.traceMu.Unlock()
	close(ent.done)
	if err == nil {
		e.evictTraces()
		return res, nil
	}
	if errors.Is(err, sim.ErrUntraceable) {
		// The aborted recording run produced no result; execute instead.
		return e.runSim(ctx, b, c, beat)
	}
	return res, err
}

// waitTrace blocks until the in-flight recording of ent completes,
// mirroring the recorder's instruction heartbeat into the waiting job's own
// so the stall watchdog sees recording progress (and still fires if the
// recorder itself wedges).
func (e *engine) waitTrace(ctx context.Context, ent *traceEntry, beat *atomic.Uint64) error {
	select {
	case <-ent.done:
		return nil
	default:
	}
	t := time.NewTicker(traceMirrorInterval)
	defer t.Stop()
	for {
		select {
		case <-ent.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			beat.Store(ent.beat.Load())
		}
	}
}

// evictTraces drops least-recently-used completed traces until the cache
// fits the budget. In-flight entries (done still open) are never dropped;
// jobs already holding an evicted entry keep using it — eviction only
// forgets the cache key.
func (e *engine) evictTraces() {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	var total int64
	for _, ent := range e.traces {
		select {
		case <-ent.done:
		default:
			continue // recording in flight; lt not published until done closes
		}
		if ent.lt != nil {
			total += ent.lt.MemBytes()
		}
	}
	for total > e.traceBudget {
		var name string
		var oldest *traceEntry
		for n, ent := range e.traces {
			select {
			case <-ent.done:
			default:
				continue // recording in flight
			}
			if ent.lt == nil {
				continue // negative cache, no memory to reclaim
			}
			if oldest == nil || ent.lastUse < oldest.lastUse {
				name, oldest = n, ent
			}
		}
		if oldest == nil {
			return
		}
		total -= oldest.lt.MemBytes()
		delete(e.traces, name)
	}
}

// recordSim is runSim in record mode: same build, same output check, plus
// the captured trace. A failed output check discards the trace — a
// miscomputing front-end must not be replayed into N configurations.
func (e *engine) recordSim(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, *exectrace.Launch, error) {
	e.tuneSMParallel(&c)
	g, err := sim.New(c)
	if err != nil {
		return nil, nil, err
	}
	inst, err := b.Build(g.Mem(), e.scale)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	res, lt, err := g.RecordContextBeat(ctx, inst.Launch, beat)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if err := inst.Check(g.Mem()); err != nil {
		return res, nil, fmt.Errorf("%s: %w: %w", b.Name, ErrOutputMismatch, err)
	}
	return res, lt, nil
}

// replaySim drives the timing back-end from a recorded trace. There is no
// benchmark build and no output check: replay never touches device memory,
// and functional correctness was already established when the trace was
// recorded.
func (e *engine) replaySim(ctx context.Context, name string, c sim.Config, lt *exectrace.Launch, beat *atomic.Uint64) (*sim.Result, error) {
	e.tuneSMParallel(&c)
	g, err := sim.New(c)
	if err != nil {
		return nil, err
	}
	res, err := g.ReplayContextBeat(ctx, lt, beat)
	if err != nil {
		return nil, fmt.Errorf("%s: replay: %w", name, err)
	}
	return res, nil
}

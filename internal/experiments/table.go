// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): one runner per exhibit, returning a Table of per-benchmark
// series that can be rendered as aligned text. Simulation results are
// memoized per (benchmark, configuration), so regenerating the full set runs
// each distinct configuration exactly once.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is one regenerated exhibit: named columns of per-row values.
type Table struct {
	ID      string
	Title   string
	Columns []string // value column names (the first, implicit column is the row label)
	Rows    []Row
	Notes   string // paper-vs-measured commentary
}

// Row is one labelled series of values; NaN renders as "n/a" (the paper's
// N/A bars, e.g. divergent statistics for never-divergent benchmarks).
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a labelled row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// AddAverage appends an "AVG" row with the arithmetic mean of every column,
// skipping NaN entries per column.
func (t *Table) AddAverage() {
	if len(t.Rows) == 0 {
		return
	}
	avg := make([]float64, len(t.Columns))
	for c := range t.Columns {
		sum, n := 0.0, 0
		for _, r := range t.Rows {
			if c < len(r.Values) && !math.IsNaN(r.Values[c]) {
				sum += r.Values[c]
				n++
			}
		}
		if n == 0 {
			avg[c] = math.NaN()
		} else {
			avg[c] = sum / float64(n)
		}
	}
	t.Rows = append(t.Rows, Row{Label: "AVG", Values: avg})
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)

	labelW := len("benchmark")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(t.Columns))
		for c := range t.Columns {
			s := "n/a"
			if c < len(r.Values) && !math.IsNaN(r.Values[c]) {
				s = formatValue(r.Values[c])
			}
			cells[i][c] = s
		}
	}
	for c, name := range t.Columns {
		colW[c] = len(name)
		for i := range cells {
			if len(cells[i][c]) > colW[c] {
				colW[c] = len(cells[i][c])
			}
		}
	}

	fmt.Fprintf(&b, "%-*s", labelW, "benchmark")
	for c, name := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[c], name)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.Label)
		for c := range t.Columns {
			fmt.Fprintf(&b, "  %*s", colW[c], cells[i][c])
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue picks a compact representation: integers plain, small ratios
// with three decimals.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// RenderCSV writes the table as RFC-4180 CSV: a header row of "benchmark"
// plus the column names, then one record per row. NaN cells are left empty.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"benchmark"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 1+len(t.Columns))
		rec[0] = r.Label
		for c := range t.Columns {
			if c < len(r.Values) && !math.IsNaN(r.Values[c]) {
				rec[c+1] = strconv.FormatFloat(r.Values[c], 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package experiments

// The gemm1-tiling exhibit family reads the compute-dense GEMM ladder
// (internal/kernels gemm_naive → gemm_block → gemm_warp → gemm_reg) through
// every registered compression scheme. The four variants compute the same
// C = A·B, so every difference between rows is a tiling effect: shared-
// memory bank-conflict serialization falls along the ladder while register
// count and live-accumulator pressure rise — shifting the register
// population the compression schemes see. Rows are in ladder order, not
// name order, because the monotone trends are the exhibit.

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// gemmLadder is the fixed row order of the family: each rung moves operand
// reuse one level closer to the execution units.
var gemmLadder = []string{"gemm_naive", "gemm_block", "gemm_warp", "gemm_reg"}

// gemmBenchmarks resolves the ladder from the registry, honoring the
// partial-mode failure filter the way benchmarks() does.
func (r *Runner) gemmBenchmarks() ([]*kernels.Benchmark, error) {
	var out []*kernels.Benchmark
	for _, name := range gemmLadder {
		b, ok := kernels.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: gemm family benchmark %q not registered", name)
		}
		out = append(out, b)
	}
	if r.failures != nil {
		out = r.failures.filter(out)
	}
	return out, nil
}

// gemmSchemeTable builds one ladder-rows x scheme-columns table where each
// cell is value(scheme result, baseline result for the same variant).
func (r *Runner) gemmSchemeTable(id, title, notes string,
	value func(scheme string, res, base *sim.Result) float64) (*Table, error) {
	schemes := schemeColumns()
	t := &Table{ID: id, Title: title, Columns: schemes, Notes: notes}
	benches, err := r.gemmBenchmarks()
	if err != nil {
		return nil, err
	}
	base := map[string]*sim.Result{}
	if err := r.forEachOf(benches, r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = res
		return nil
	}); err != nil {
		return nil, err
	}
	rows := map[string][]float64{}
	for i, scheme := range schemes {
		err := r.forEachOf(benches, r.cfgScheme(scheme), func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(schemes))
			}
			rows[b.Name][i] = value(scheme, res, base[b.Name])
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, name := range gemmLadder {
		if rows[name] != nil {
			t.AddRow(name, rows[name]...)
		}
	}
	t.AddAverage()
	return t, nil
}

// GemmTilingRatio (gemm1-tiling-ratio) is the write compression ratio each
// scheme achieves on each rung of the ladder. The interesting read is down
// a column: register tiling replaces value-similar address registers with
// live accumulators, so the ratio erodes as the ladder climbs.
func (r *Runner) GemmTilingRatio() (*Table, error) {
	return r.gemmSchemeTable("gemm1-tiling-ratio",
		"GEMM tiling ladder: compression ratio per scheme",
		"original / compressed write banks (both phases); rows in ladder order",
		func(_ string, res, _ *sim.Result) float64 {
			s := res.Stats
			orig := s.WriteOrigBanks[0] + s.WriteOrigBanks[1]
			comp := s.WriteCompBanks[0] + s.WriteCompBanks[1]
			if comp == 0 {
				return 1
			}
			return float64(orig) / float64(comp)
		})
}

// GemmTilingEnergy (gemm1-tiling-energy) is register file energy under each
// scheme, normalized per variant to that variant's no-compression baseline
// (so the column trend isolates the scheme, not the tiling's cycle count).
func (r *Runner) GemmTilingEnergy() (*Table, error) {
	return r.gemmSchemeTable("gemm1-tiling-energy",
		"GEMM tiling ladder: register file energy per scheme",
		"normalized to each variant's no-compression baseline; per-scheme unit energies",
		func(scheme string, res, base *sim.Result) float64 {
			params := energy.ParamsForScheme(scheme)
			b := energy.Compute(energy.DefaultParams(), base.Energy).TotalPJ()
			return energy.Compute(params, res.Energy).TotalPJ() / b
		})
}

// GemmTilingTime (gemm1-tiling-time) is execution time under each scheme,
// normalized per variant to its baseline cycles.
func (r *Runner) GemmTilingTime() (*Table, error) {
	return r.gemmSchemeTable("gemm1-tiling-time",
		"GEMM tiling ladder: execution time per scheme",
		"scheme cycles / same variant's baseline cycles at per-scheme codec latencies",
		func(_ string, res, base *sim.Result) float64 {
			return float64(res.Cycles) / float64(base.Cycles)
		})
}

// GemmTilingShared (gemm1-tiling-shared) is the bank model's view of the
// ladder, plus each variant's register footprint. Scheme-independent: the
// shared-memory columns are pure functions of the access streams, so one
// baseline run per variant suffices. The acceptance trends: serialization
// falls to zero and regs/thread rises monotonically from gemm_naive to
// gemm_reg.
func (r *Runner) GemmTilingShared() (*Table, error) {
	t := &Table{
		ID:      "gemm1-tiling-shared",
		Title:   "GEMM tiling ladder: shared-memory bank behavior and register pressure",
		Columns: []string{"regs/thread", "cycles", "accesses", "bank_rows", "conflicts", "serialize_cyc", "broadcast_hits"},
		Notes:   "32-bank x 4B model (mem.AnalyzeShared); counts are absolute, baseline config",
	}
	benches, err := r.gemmBenchmarks()
	if err != nil {
		return nil, err
	}
	rows := map[string][]float64{}
	if err := r.forEachOf(benches, r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		inst, err := b.Build(memForKernelInspect(r), kernels.Small)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		s := res.Stats
		rows[b.Name] = []float64{
			float64(inst.Launch.Kernel.NumRegs),
			float64(res.Cycles),
			float64(s.SharedAccess),
			float64(s.SharedBankAccesses),
			float64(s.SharedConflicts),
			float64(s.SharedSerializationCycles),
			float64(s.SharedBroadcastHits),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, name := range gemmLadder {
		if rows[name] != nil {
			t.AddRow(name, rows[name]...)
		}
	}
	return t, nil
}

// memForKernelInspect returns a scratch device memory for rebuilding a
// benchmark instance just to read its kernel metadata (register count).
func memForKernelInspect(r *Runner) *mem.Global {
	return mem.NewGlobal(r.baseConfig().GlobalMemBytes)
}

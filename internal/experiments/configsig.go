package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// ConfigSignatureVersion identifies the signature format ConfigSignature
// emits. Bump it whenever the format changes — when a field is added to or
// removed from the signature, or an existing field's rendering changes —
// so persisted caches keyed by old signatures can never alias new ones.
const ConfigSignatureVersion = "cfg/v1"

// ConfigSignature renders a sim.Config as a stable, versioned string that
// is equal exactly when two configurations produce identical simulations.
// It is the shared identity used by the engine's single-flight memo cache,
// the serving layer's result cache (internal/jobs) and every progress
// event and job error — one implementation, so the caches can never drift.
//
// Every field that can change a simulation's outcome must appear here: the
// fault-injection exhibit, for example, varies Faults and MaxCycles on top
// of otherwise identical configs, and omitting either would silently alias
// its cache entries with the clean runs. TestConfigSignatureCoversConfig
// enforces coverage field by field.
func ConfigSignature(c *sim.Config) string {
	return ConfigSignatureVersion + ":" +
		fmt.Sprintf("m%d g%t s%s cl%d dl%d ch%t sm%d w%d cta%d col%d c%d d%d wake%d dp%s",
			c.Mode, c.PowerGating, c.Scheduler, c.CompressLatency, c.DecompressLatency,
			c.CharacterizeWrites, c.NumSMs, c.MaxWarpsPerSM, c.MaxCTAsPerSM, c.Collectors,
			c.Compressors, c.Decompressors, c.BankWakeupLatency, c.DivergencePolicy) +
		fmt.Sprintf(" sch%d alu%d sfu%d gm%d gl%d gi%d sl%d l1%d/%d/%d rfc%d drw%d mc%d ep%d cs%s flt{%s}",
			c.SchedulersPerSM, c.ALULatency, c.SFULatency,
			c.GlobalMemBytes, c.GlobalLatency, c.GlobalMaxInflight, c.SharedLatency,
			c.L1SizeKB, c.L1Ways, c.L1HitLatency,
			c.RFCEntries, c.DrowsyAfter, c.MaxCycles, c.SMEpoch,
			c.CompressionScheme(), c.Faults.String())
}

// The compression scheme is signed through the CompressionScheme accessor,
// not the raw field, so the legacy empty spelling and "bdi" share one cache
// identity (they run the identical simulation). Inserting the cs token did
// not need a version bump: a cfg/v1 string with the token can never equal
// one without it, so old persisted keys miss instead of aliasing.

// SMParallel is deliberately absent: the epoch-barrier commit protocol makes
// results byte-identical at every shard count (the determinism oracle in
// internal/sim enforces it), so including it would only fragment the cache.

// sig is the engine-internal shorthand for ConfigSignature.
func sig(c *sim.Config) string { return ConfigSignature(c) }

package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/kernels"
)

// JobFailure identifies one failed (benchmark, configuration) job in a
// partial run.
type JobFailure struct {
	Benchmark string
	Config    string // memoization signature of the configuration
	Err       error
}

// ExhibitFailure records an exhibit that could not be assembled at all in a
// partial run (its assembly returned an error or panicked), as opposed to
// one that merely lost rows to failed jobs.
type ExhibitFailure struct {
	ID  string
	Err error
}

// Report is the outcome of RunPartial: every exhibit that could be
// assembled, plus a structured account of everything that could not.
type Report struct {
	// Tables holds the successfully assembled exhibits, in paper order.
	// Exhibits whose jobs partly failed appear with the failing rows
	// omitted; exhibits that failed outright are absent (see Exhibits).
	Tables []*Table
	// Exhibits lists exhibits that could not be assembled.
	Exhibits []ExhibitFailure
	// Jobs lists each failed (benchmark, configuration) job exactly once,
	// sorted by benchmark then configuration.
	Jobs []JobFailure
}

// Failed reports whether anything went wrong.
func (r *Report) Failed() bool { return len(r.Exhibits) > 0 || len(r.Jobs) > 0 }

// Render formats the failure report as text. It renders nothing when the
// run was clean.
func (r *Report) Render() string {
	if !r.Failed() {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("== failure report ==\n")
	for _, j := range r.Jobs {
		fmt.Fprintf(&sb, "job     %-14s [%s]: %v\n", j.Benchmark, j.Config, j.Err)
	}
	for _, e := range r.Exhibits {
		fmt.Fprintf(&sb, "exhibit %-14s: %v\n", e.ID, e.Err)
	}
	return sb.String()
}

// failureSink collects job failures during a partial run. A benchmark that
// fails under any configuration is skipped for the rest of the run: its
// rows would be incomparable across exhibits, and (more practically) a
// benchmark that panics or stalls under one config usually does so under
// the next twenty.
type failureSink struct {
	mu     sync.Mutex
	seen   map[string]bool // "bench|cfgSig" — dedupe across exhibits
	benchs map[string]bool // failed benchmark names
	jobs   []JobFailure
}

func newFailureSink() *failureSink {
	return &failureSink{seen: make(map[string]bool), benchs: make(map[string]bool)}
}

func (s *failureSink) record(bench, cfgSig string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.benchs[bench] = true
	key := bench + "|" + cfgSig
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.jobs = append(s.jobs, JobFailure{Benchmark: bench, Config: cfgSig, Err: err})
}

// filter drops benchmarks that already failed earlier in the run.
func (s *failureSink) filter(benches []*kernels.Benchmark) []*kernels.Benchmark {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.benchs) == 0 {
		return benches
	}
	out := benches[:0:0]
	for _, b := range benches {
		if !s.benchs[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

func (s *failureSink) failures() []JobFailure {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]JobFailure(nil), s.jobs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Config < out[j].Config
	})
	return out
}

// RunPartial regenerates the named exhibits (all of them when none are
// named) with graceful degradation: a failing job drops its benchmark from
// the remaining exhibits instead of aborting the run, and an exhibit whose
// assembly itself fails — including by panic — is reported and skipped.
// The returned Report always carries every table that could be assembled;
// err is reserved for structural problems (unknown exhibit id, invalid
// runner). The report is deterministic at every parallelism level.
func (r *Runner) RunPartial(ids ...string) (*Report, error) {
	run := exhibits
	if len(ids) > 0 {
		run = nil
		for _, id := range ids {
			found := false
			for _, e := range exhibits {
				if e.id == id {
					run = append(run, e)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: unknown exhibit %q (have %v)", id, IDs())
			}
		}
	}

	// Partial mode is a property of the whole pass, not of one exhibit:
	// the sink persists across exhibits so a failed benchmark stays gone.
	r.failures = newFailureSink()
	defer func() { r.failures = nil }()

	rep := &Report{}
	for _, e := range run {
		t, err := r.runExhibit(e)
		if err != nil {
			rep.Exhibits = append(rep.Exhibits, ExhibitFailure{ID: e.id, Err: err})
			continue
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Jobs = r.failures.failures()
	return rep, nil
}

// runExhibit assembles one exhibit with panic isolation: exhibit code
// indexing into rows for a benchmark the sink dropped must not take down
// the rest of the report.
func (r *Runner) runExhibit(e exhibit) (t *Table, err error) {
	defer func() {
		if v := recover(); v != nil {
			t, err = nil, &PanicError{Value: v}
		}
	}()
	return e.run(r)
}

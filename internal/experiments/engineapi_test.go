package experiments

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// engineTestConfig is a small, fast hardware config for engine API tests.
func engineTestConfig() sim.Config {
	c := sim.DefaultConfig()
	c.NumSMs = 4
	return c
}

// apiGate holds the zz-gate benchmark's Build hostage until the
// single-flight test has lined up its concurrent requesters. The test
// re-makes it on entry and closes it once per run (so -count=N works);
// Builds after the close pass straight through.
var apiGate = make(chan struct{})

func init() {
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-gate",
		Suite:       "test",
		Description: "blocks in Build until released, then runs a tiny kernel",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			<-apiGate
			k, err := asm.Assemble("zz-gate", "\tmov r0, %tid.x\n\texit\n")
			if err != nil {
				return nil, err
			}
			return &kernels.Instance{
				Launch: isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}},
				Check:  func(*mem.Global) error { return nil },
			}, nil
		},
	})
}

// TestEngineSingleFlightWithoutMemo: with memoization off, concurrent runs
// of one key must still coalesce into a single simulation (single-flight),
// but a later sequential run of the same key simulates again — the
// completed entry is evicted, retention is the caller's job.
func TestEngineSingleFlightWithoutMemo(t *testing.T) {
	apiGate = make(chan struct{})
	var starts, hits atomic.Int64
	firstStart := make(chan struct{})
	var once sync.Once
	e := NewEngine(context.Background(), EngineConfig{
		Parallelism: 4,
		Scale:       kernels.Small,
		Progress: func(ev Event) {
			switch ev.Kind {
			case EventJobStart:
				starts.Add(1)
				once.Do(func() { close(firstStart) })
			case EventCacheHit:
				hits.Add(1)
			}
		},
	})
	b, ok := kernels.ByName("zz-gate")
	if !ok {
		t.Fatal("benchmark zz-gate not registered")
	}
	cfg := engineTestConfig()

	var wg sync.WaitGroup
	results := make([]*sim.Result, 3)
	errs := make([]error, 3)
	run := func(i int) {
		defer wg.Done()
		results[i], errs[i] = e.Run(b, cfg)
	}
	wg.Add(1)
	go run(0)
	// Wait until the first job is in flight (blocked in Build on apiGate),
	// then aim two more requesters at the same key. The sleep gives them
	// time to reach the single-flight join before the gate opens; if they
	// were somehow still slower, the test would fail loudly, not hang.
	<-firstStart
	wg.Add(2)
	go run(1)
	go run(2)
	time.Sleep(200 * time.Millisecond)
	close(apiGate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if results[i].Cycles != results[0].Cycles {
			t.Fatalf("coalesced runs disagree: %d vs %d cycles", results[i].Cycles, results[0].Cycles)
		}
	}
	if n := starts.Load(); n != 1 {
		t.Fatalf("%d simulations started, want 1 (single-flight)", n)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("%d coalesced joins, want 2", n)
	}

	// Sequential re-run: the key was evicted, so it simulates again (the
	// gate is already open, so this completes immediately).
	if _, err := e.Run(b, cfg); err != nil {
		t.Fatal(err)
	}
	if n := starts.Load(); n != 2 {
		t.Fatalf("%d simulations after re-run, want 2 (no memoization)", n)
	}
}

// TestEngineMemoized: with Memoize on, a re-run is served from the memo
// cache without simulating again — the Runner's behaviour, now reachable
// through the exported API.
func TestEngineMemoized(t *testing.T) {
	starts, hits := 0, 0
	e := NewEngine(context.Background(), EngineConfig{
		Parallelism: 2,
		Scale:       kernels.Small,
		Memoize:     true,
		Progress: func(ev Event) {
			switch ev.Kind {
			case EventJobStart:
				starts++
			case EventCacheHit:
				hits++
			}
		},
	})
	b, _ := kernels.ByName("lib")
	cfg := engineTestConfig()
	if _, err := e.Run(b, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(b, cfg); err != nil {
		t.Fatal(err)
	}
	if starts != 1 || hits != 1 {
		t.Fatalf("starts=%d hits=%d, want 1/1 (memoized)", starts, hits)
	}
}

// TestEngineSignatureKeying: distinct configurations must not coalesce.
func TestEngineSignatureKeying(t *testing.T) {
	starts := 0
	e := NewEngine(context.Background(), EngineConfig{
		Parallelism: 2,
		Scale:       kernels.Small,
		Memoize:     true,
		Progress: func(ev Event) {
			if ev.Kind == EventJobStart {
				starts++
			}
		},
	})
	b, _ := kernels.ByName("lib")
	warped := engineTestConfig()
	baseline := engineTestConfig()
	baseline.Mode = sim.BaselineConfig().Mode
	baseline.PowerGating = false
	if ConfigSignature(&warped) == ConfigSignature(&baseline) {
		t.Fatal("distinct configs share a signature")
	}
	if _, err := e.Run(b, warped); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(b, baseline); err != nil {
		t.Fatal(err)
	}
	if starts != 2 {
		t.Fatalf("%d simulations, want 2 (distinct keys)", starts)
	}
}

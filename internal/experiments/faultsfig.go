package experiments

import (
	"errors"
	"math"

	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// faultSeed and faultStuckBanks define the exhibit's injected fault
// campaign: two permanently stuck-at banks per SM (at most two per 8-bank
// cluster, within RRCD's redirection headroom for the common encodings),
// deterministically placed from the seed.
const (
	faultSeed       = 42
	faultStuckBanks = 2
)

// faultMaxCycles bounds faulty runs: a corrupted loop counter or branch
// target can spin a kernel forever, and the exhibit classifies that as an
// incorrect outcome rather than waiting out the default 200M-cycle budget.
const faultMaxCycles = 20_000_000

// cfgFaulty layers the exhibit's fault campaign onto a base configuration.
// Redirect stays off for uncompressed configs: sim.Config.Validate rejects
// RRCD without compression, since only compressed registers can move banks.
func (r *Runner) cfgFaulty(c sim.Config, redirect bool) sim.Config {
	c.Faults = faults.Config{Seed: faultSeed, StuckAtBanks: faultStuckBanks, Redirect: redirect}
	c.MaxCycles = faultMaxCycles
	return c
}

// FaultInjection is the robustness exhibit: each benchmark runs against a
// register file with two stuck-at banks per SM, under the uncompressed
// baseline, warped-compression, and warped-compression with RRCD
// redirection. Columns report whether the kernel still computed correct
// output (1/0) and the faulty runs' register-file energy relative to the
// clean baseline (n/a when the run crashed before producing counters).
// Unlike every other exhibit this one treats job failures as data: a
// corrupted address register typically kills the launch (wild access) or
// wedges it (MaxCycles), and both simply score as incorrect.
func (r *Runner) FaultInjection() (*Table, error) {
	t := &Table{
		ID:    "flt1-faults",
		Title: "Kernel correctness and energy under injected register faults",
		Columns: []string{
			"ok base", "ok wc", "ok wc+rrcd", "redirected writes",
			"E wc/clean", "E rrcd/clean",
		},
		Notes: "2 stuck-at banks/SM, seed 42; ok=1 means output matched the host reference; " +
			"RRCD steers compressed writes into healthy banks",
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	params := energy.DefaultParams()
	clean := r.cfgBaseline()
	cfgBase := r.cfgFaulty(r.cfgBaseline(), false)
	cfgWC := r.cfgFaulty(r.cfgWarped(), false)
	cfgRRCD := r.cfgFaulty(r.cfgWarped(), true)
	r.prefetch(cfgBase, cfgWC, cfgRRCD)

	for _, b := range benches {
		cleanRes, err := r.run(b, clean)
		if err != nil {
			// The clean baseline failing is a simulator bug, not a fault
			// outcome — in strict mode that aborts the exhibit.
			if r.failures != nil {
				r.failures.record(b.Name, sig(&clean), err)
				continue
			}
			return nil, err
		}
		cleanPJ := energy.Compute(params, cleanRes.Energy).TotalPJ()

		okBase, _, _ := r.faultOutcome(b, cfgBase, params, math.NaN())
		okWC, ePJ, _ := r.faultOutcome(b, cfgWC, params, cleanPJ)
		okRRCD, eRRCD, redir := r.faultOutcome(b, cfgRRCD, params, cleanPJ)
		t.AddRow(b.Name, okBase, okWC, okRRCD, redir, ePJ, eRRCD)
	}
	t.AddAverage()
	return t, nil
}

// faultOutcome runs one faulty job tolerantly and scores it: ok is 1 when
// the kernel produced correct output, 0 on mismatch, crash or cycle-budget
// exhaustion. energyRatio is the run's energy over cleanPJ, NaN when the
// run died without counters (or cleanPJ is NaN). redirected is the RRCD
// redirected-write count (0 when redirection is off or the run crashed).
func (r *Runner) faultOutcome(b *kernels.Benchmark, c sim.Config, params energy.Params, cleanPJ float64) (ok, energyRatio, redirected float64) {
	res, err := r.run(b, c)
	ok = 1
	if err != nil {
		ok = 0
		// An output mismatch still carries the run's result; anything
		// else (wild access, ErrMaxCycles, internal fault) has none.
		if !errors.Is(err, ErrOutputMismatch) || res == nil {
			return ok, math.NaN(), 0
		}
	}
	energyRatio = math.NaN()
	if !math.IsNaN(cleanPJ) && cleanPJ > 0 {
		energyRatio = energy.Compute(params, res.Energy).TotalPJ() / cleanPJ
	}
	return ok, energyRatio, float64(res.Stats.RF.RedirectedWrites)
}

package experiments

import (
	"context"
	"time"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// EngineConfig configures a standalone Engine built with NewEngine. The
// zero value is usable: GOMAXPROCS workers, Small scale, no retries, no
// watchdog, no memoization.
type EngineConfig struct {
	// Parallelism bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Parallelism int
	// Scale is the workload size benchmarks are built at.
	Scale kernels.Scale
	// Retries grants every job this many extra attempts after a transient
	// failure (TransientError or a watchdog stall).
	Retries int
	// RetryBackoff is the delay before the first retry (default 100ms);
	// each subsequent retry doubles it.
	RetryBackoff time.Duration
	// Watchdog cancels a simulation that issues no new instructions for a
	// full window; <= 0 disables.
	Watchdog time.Duration
	// Progress receives the structured event stream (calls serialized).
	Progress ProgressFunc
	// Memoize keeps every completed result in the engine forever, so each
	// key simulates at most once per Engine lifetime. Leave it false for
	// long-lived processes: in-flight calls still coalesce (single-flight),
	// but completed results are dropped and retention becomes the caller's
	// policy (internal/jobs layers a bounded LRU on top).
	Memoize bool
}

// Engine is the exported simulation execution core the experiment Runner
// runs on, for callers that schedule their own jobs — the serving layer's
// worker pool (internal/jobs) above all. It provides exactly the Runner's
// job semantics: a bounded worker pool, single-flight dedup on the
// (benchmark, ConfigSignature) key, per-job panic isolation, bounded
// retries with exponential backoff for transient failures, and the
// instruction-heartbeat stall watchdog. Runner and Engine share one
// implementation, so CLI experiment runs and served jobs can never drift.
type Engine struct {
	eng *engine
}

// NewEngine builds an Engine. ctx governs every simulation it schedules:
// cancel it and in-flight and future runs abort promptly with an error
// wrapping ctx.Err().
func NewEngine(ctx context.Context, cfg EngineConfig) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	eng := newEngine(ctx, cfg.Parallelism, cfg.Scale, cfg.Progress)
	if cfg.Retries > 0 {
		eng.retries = cfg.Retries
	}
	if cfg.RetryBackoff > 0 {
		eng.backoff = cfg.RetryBackoff
	}
	if cfg.Watchdog > 0 {
		eng.watchdog = cfg.Watchdog
	}
	eng.memoize = cfg.Memoize
	return &Engine{eng: eng}
}

// Run simulates benchmark b under configuration c inside a worker slot,
// blocking until the result is available. Concurrent calls with the same
// (b.Name, ConfigSignature(&c)) key join the in-flight simulation instead
// of running it twice; the joiners observe an EventCacheHit. Failures are
// wrapped in *JobError; on ErrOutputMismatch the result is returned
// alongside the error (fault campaigns need the counters of wrong runs).
func (e *Engine) Run(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	return e.eng.run(b, c)
}

// Parallelism reports the engine's worker-slot count.
func (e *Engine) Parallelism() int { return e.eng.parallelism }

// Scale reports the workload size the engine builds benchmarks at.
func (e *Engine) Scale() kernels.Scale { return e.eng.scale }

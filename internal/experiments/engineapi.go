package experiments

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/exectrace"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// EngineConfig configures a standalone Engine built with NewEngine. The
// zero value is usable: GOMAXPROCS workers, Small scale, no retries, no
// watchdog, no memoization.
type EngineConfig struct {
	// Parallelism bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Parallelism int
	// SMParallel shards each simulation's per-cycle SM loop across this
	// many worker goroutines, for configurations that leave
	// sim.Config.SMParallel at 0. <= 0 means auto: GOMAXPROCS divided by
	// Parallelism, so the two parallelism levels never oversubscribe.
	// Results are byte-identical at every shard count.
	SMParallel int
	// Scale is the workload size benchmarks are built at.
	Scale kernels.Scale
	// Retries grants every job this many extra attempts after a transient
	// failure (TransientError or a watchdog stall).
	Retries int
	// RetryBackoff is the delay before the first retry (default 100ms);
	// each subsequent retry doubles it.
	RetryBackoff time.Duration
	// Watchdog cancels a simulation that issues no new instructions for a
	// full window; <= 0 disables.
	Watchdog time.Duration
	// Progress receives the structured event stream (calls serialized).
	Progress ProgressFunc
	// Memoize keeps every completed result in the engine forever, so each
	// key simulates at most once per Engine lifetime. Leave it false for
	// long-lived processes: in-flight calls still coalesce (single-flight),
	// but completed results are dropped and retention becomes the caller's
	// policy (internal/jobs layers a bounded LRU on top).
	Memoize bool
	// RecordReplay switches Run to the execute-once / replay-N strategy:
	// the first job per benchmark records its functional execution and
	// every other configuration replays the captured warped.trace/v1
	// launch. Results are byte-identical to execute mode. Off by default
	// for standalone engines — the serving layer drives record and replay
	// explicitly through the Record and Replay methods instead.
	RecordReplay bool
}

// Engine is the exported simulation execution core the experiment Runner
// runs on, for callers that schedule their own jobs — the serving layer's
// worker pool (internal/jobs) above all. It provides exactly the Runner's
// job semantics: a bounded worker pool, single-flight dedup on the
// (benchmark, ConfigSignature) key, per-job panic isolation, bounded
// retries with exponential backoff for transient failures, and the
// instruction-heartbeat stall watchdog. Runner and Engine share one
// implementation, so CLI experiment runs and served jobs can never drift.
type Engine struct {
	eng *engine
}

// NewEngine builds an Engine. ctx governs every simulation it schedules:
// cancel it and in-flight and future runs abort promptly with an error
// wrapping ctx.Err().
func NewEngine(ctx context.Context, cfg EngineConfig) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	eng := newEngine(ctx, cfg.Parallelism, cfg.Scale, cfg.Progress)
	if cfg.SMParallel > 0 {
		eng.smParallel = cfg.SMParallel
	}
	if cfg.Retries > 0 {
		eng.retries = cfg.Retries
	}
	if cfg.RetryBackoff > 0 {
		eng.backoff = cfg.RetryBackoff
	}
	if cfg.Watchdog > 0 {
		eng.watchdog = cfg.Watchdog
	}
	eng.memoize = cfg.Memoize
	if cfg.RecordReplay {
		eng.enableRecordReplay()
	}
	return &Engine{eng: eng}
}

// Run simulates benchmark b under configuration c inside a worker slot,
// blocking until the result is available. Concurrent calls with the same
// (b.Name, ConfigSignature(&c)) key join the in-flight simulation instead
// of running it twice; the joiners observe an EventCacheHit. Failures are
// wrapped in *JobError; on ErrOutputMismatch the result is returned
// alongside the error (fault campaigns need the counters of wrong runs).
func (e *Engine) Run(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	return e.eng.run(b, c)
}

// Record simulates benchmark b under configuration c in record mode inside
// a worker slot: a normal execute-mode run whose functional front-end is
// teed into a warped.trace/v1 launch. The Result is byte-identical to what
// Run would produce. Record bypasses the result memo cache (callers that
// record manage their own trace retention) but shares the engine's worker
// slots, retry budget, panic isolation and stall watchdog. A launch whose
// value stream is schedule-dependent fails with sim.ErrUntraceable.
func (e *Engine) Record(b *kernels.Benchmark, c sim.Config) (*sim.Result, *exectrace.Launch, error) {
	var lt *exectrace.Launch
	res, err := e.eng.simulate(b.Name, sig(&c), func(ctx context.Context, beat *atomic.Uint64) (*sim.Result, error) {
		r, l, err := e.eng.recordSim(ctx, b, c, beat)
		lt = l
		return r, err
	})
	return res, lt, err
}

// Replay drives the timing back-end under configuration c from a recorded
// launch, inside a worker slot with the engine's full job machinery. The
// benchmark name is used only for events and errors: the trace is
// self-contained, so no benchmark build (and no output check) happens. The
// Result is byte-identical to executing the same benchmark under c.
func (e *Engine) Replay(benchmark string, lt *exectrace.Launch, c sim.Config) (*sim.Result, error) {
	return e.eng.simulate(benchmark, sig(&c), func(ctx context.Context, beat *atomic.Uint64) (*sim.Result, error) {
		return e.eng.replaySim(ctx, benchmark, c, lt, beat)
	})
}

// Parallelism reports the engine's worker-slot count.
func (e *Engine) Parallelism() int { return e.eng.parallelism }

// Scale reports the workload size the engine builds benchmarks at.
func (e *Engine) Scale() kernels.Scale { return e.eng.scale }

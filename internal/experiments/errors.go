package experiments

import (
	"errors"
	"fmt"
	"time"
)

// ErrOutputMismatch marks a simulation that completed but produced output
// differing from the host reference. The job's *sim.Result is still
// returned alongside the error: fault-injection exhibits need the timing
// and energy counters of incorrect runs. Test with errors.Is.
var ErrOutputMismatch = errors.New("simulation produced wrong output")

// JobError is the typed failure of one (benchmark, configuration) job. The
// engine wraps every job failure in one, so suite-level errors always carry
// the identity of the job that died and how many attempts it was given.
type JobError struct {
	Benchmark string
	Config    string // memoization signature of the configuration
	Attempts  int    // total attempts made (1 = no retries fired)
	Err       error
}

func (e *JobError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("experiments: job %s [%s] failed after %d attempts: %v", e.Benchmark, e.Config, e.Attempts, e.Err)
	}
	return fmt.Sprintf("experiments: job %s [%s]: %v", e.Benchmark, e.Config, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a panic recovered from a simulation job (or an exhibit
// assembly), converted into an error so one broken benchmark cannot take
// down a whole suite run. Stack holds the panicking goroutine's trace; it
// is deliberately excluded from Error() so failure reports stay
// deterministic across runs.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// StallError reports a job canceled by the progress watchdog: the
// simulation issued no new instructions for a full deadline window.
type StallError struct {
	Deadline time.Duration
	LastBeat uint64 // instructions issued when progress last advanced
}

func (e *StallError) Error() string {
	return fmt.Sprintf("no forward progress within %v (stalled at %d instructions)", e.Deadline, e.LastBeat)
}

// TransientError marks a failure as worth retrying. Benchmark builders and
// test stubs wrap flaky failures in it; deterministic simulation errors
// must not be marked transient (retrying them only wastes time).
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether a job failure is retryable: explicitly
// marked transient, or a watchdog stall (wall-clock dependent, so a retry
// on a less loaded machine can succeed).
func IsTransient(err error) bool {
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var se *StallError
	return errors.As(err, &se)
}

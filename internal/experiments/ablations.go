package experiments

import (
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// The ablN exhibits are not paper figures: they isolate the design choices
// the paper makes (its §5.2 divergence policy, §5.3 gating, §5.1 unit
// sizing) by simulating the alternatives it discusses.

// AblDivergence compares the paper's store-uncompressed + dummy-MOV
// divergence policy against the read-merge-recompress alternative it
// rejects for its buffer cost (§5.2).
func (r *Runner) AblDivergence() (*Table, error) {
	t := &Table{
		ID:      "abl1-divergence",
		Title:   "Divergence policy: dummy-MOV (paper) vs read-merge-recompress",
		Columns: []string{"mov-energy", "mov-time", "mov-frac", "rec-energy", "rec-time"},
		Notes:   "energy and cycles normalized to no-compression baseline; recompress keeps registers compressed through divergence at the cost of a read-modify-write per divergent store",
	}
	params := energy.DefaultParams()
	baseE := map[string]float64{}
	baseC := map[string]uint64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		baseE[b.Name] = energy.Compute(params, res.Energy).TotalPJ()
		baseC[b.Name] = res.Cycles
		return nil
	}); err != nil {
		return nil, err
	}
	type row struct{ movE, movT, movF, recE, recT float64 }
	rows := map[string]*row{}
	if err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name] = &row{
			movE: energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name],
			movT: float64(res.Cycles) / float64(baseC[b.Name]),
			movF: res.Stats.DummyMovRatio(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rec := r.cfgWarped()
	rec.DivergencePolicy = "recompress"
	if err := r.forEach(rec, func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name].recE = energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name]
		rows[b.Name].recT = float64(res.Cycles) / float64(baseC[b.Name])
		return nil
	}); err != nil {
		return nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		v := rows[b.Name]
		t.AddRow(b.Name, v.movE, v.movT, v.movF, v.recE, v.recT)
	}
	t.AddAverage()
	return t, nil
}

// AblGating isolates the contribution of bank-level power gating (§5.3):
// warped-compression with and without gating.
func (r *Runner) AblGating() (*Table, error) {
	t := &Table{
		ID:      "abl2-gating",
		Title:   "Contribution of bank power gating to warped-compression",
		Columns: []string{"gated-energy", "ungated-energy", "gated-time", "ungated-time"},
		Notes:   "normalized to no-compression baseline; the energy gap is the leakage the gating mechanism recovers",
	}
	params := energy.DefaultParams()
	baseE := map[string]float64{}
	baseC := map[string]uint64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		baseE[b.Name] = energy.Compute(params, res.Energy).TotalPJ()
		baseC[b.Name] = res.Cycles
		return nil
	}); err != nil {
		return nil, err
	}
	type row struct{ gE, uE, gT, uT float64 }
	rows := map[string]*row{}
	if err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name] = &row{
			gE: energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name],
			gT: float64(res.Cycles) / float64(baseC[b.Name]),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	ungated := r.cfgWarped()
	ungated.PowerGating = false
	if err := r.forEach(ungated, func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name].uE = energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name]
		rows[b.Name].uT = float64(res.Cycles) / float64(baseC[b.Name])
		return nil
	}); err != nil {
		return nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		v := rows[b.Name]
		t.AddRow(b.Name, v.gE, v.uE, v.gT, v.uT)
	}
	t.AddAverage()
	return t, nil
}

// AblUnits sweeps the compressor/decompressor pool sizes around the paper's
// 2/4 choice (§5.1 sizes them for 2 instructions per cycle).
func (r *Runner) AblUnits() (*Table, error) {
	t := &Table{
		ID:      "abl3-units",
		Title:   "Compressor/decompressor pool sizing",
		Columns: []string{"1c/2d", "2c/4d", "4c/8d"},
		Notes:   "execution time normalized to no-compression baseline; the paper's 2 compressors + 4 decompressors match the dual-issue SM",
	}
	baseC := map[string]uint64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		baseC[b.Name] = res.Cycles
		return nil
	}); err != nil {
		return nil, err
	}
	sizes := []struct{ c, d int }{{1, 2}, {2, 4}, {4, 8}}
	rows := map[string][]float64{}
	for i, sz := range sizes {
		c := r.cfgWarped()
		c.Compressors, c.Decompressors = sz.c, sz.d
		if err := r.forEach(c, func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(sizes))
			}
			rows[b.Name][i] = float64(res.Cycles) / float64(baseC[b.Name])
			return nil
		}); err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

// AblRFC compares warped-compression against the register file cache, the
// rival register-power approach the paper's §7 cites (Gebhart et al., ISCA
// 2011): a 6-entry per-warp write-back cache that filters main-bank traffic
// without exploiting value similarity.
func (r *Runner) AblRFC() (*Table, error) {
	t := &Table{
		ID:      "abl4-rfc",
		Title:   "Warped-compression vs register file cache (6 entries/warp)",
		Columns: []string{"wc-energy", "rfc-energy", "rfc-hit", "wc-time", "rfc-time"},
		Notes:   "normalized to no-compression baseline; rfc-hit is the RFC read hit rate. The RFC filters bank accesses very effectively but pays leakage for its 36 KB of added storage (6 x 128 B x 48 warps, charged at the banks' per-KB rate) -- Gebhart's design needs a two-level scheduler to shrink it. Warped-compression reaches similar or better totals with a 0.3%-area compressor and also attacks bank leakage via gating",
	}
	params := energy.DefaultParams()
	baseE := map[string]float64{}
	baseC := map[string]uint64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		baseE[b.Name] = energy.Compute(params, res.Energy).TotalPJ()
		baseC[b.Name] = res.Cycles
		return nil
	}); err != nil {
		return nil, err
	}
	type row struct{ wcE, rfcE, hit, wcT, rfcT float64 }
	rows := map[string]*row{}
	if err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name] = &row{
			wcE: energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name],
			wcT: float64(res.Cycles) / float64(baseC[b.Name]),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rfc := r.cfgBaseline()
	rfc.RFCEntries = 6
	if err := r.forEach(rfc, func(b *kernels.Benchmark, res *sim.Result) error {
		v := rows[b.Name]
		v.rfcE = energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name]
		v.rfcT = float64(res.Cycles) / float64(baseC[b.Name])
		reads, missed := res.Stats.RFCReads, res.Stats.RFCReadMisses
		if reads+missed > 0 {
			v.hit = float64(reads) / float64(reads+missed)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		v := rows[b.Name]
		t.AddRow(b.Name, v.wcE, v.rfcE, v.hit, v.wcT, v.rfcT)
	}
	t.AddAverage()
	return t, nil
}

// AblDrowsy compares against the other rival the paper's introduction
// cites: a drowsy register file (Abdel-Majeed & Annavaram) that drops idle
// banks into a data-retentive low-leakage state. Drowsy mode attacks only
// leakage; warped-compression attacks both components — and the two
// mechanisms compose.
func (r *Runner) AblDrowsy() (*Table, error) {
	t := &Table{
		ID:      "abl5-drowsy",
		Title:   "Warped-compression vs drowsy register file (and both combined)",
		Columns: []string{"wc-energy", "drowsy-energy", "wc+drowsy", "drowsy-frac"},
		Notes:   "normalized to no-compression baseline; drowsy banks retain data at 10% leakage after 100 idle cycles. drowsy-frac is the fraction of bank-cycles spent drowsy in the drowsy-only run",
	}
	params := energy.DefaultParams()
	baseE := map[string]float64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		baseE[b.Name] = energy.Compute(params, res.Energy).TotalPJ()
		return nil
	}); err != nil {
		return nil, err
	}
	type row struct{ wc, dr, both, frac float64 }
	rows := map[string]*row{}
	if err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name] = &row{wc: energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name]}
		return nil
	}); err != nil {
		return nil, err
	}
	drowsy := r.cfgBaseline()
	drowsy.DrowsyAfter = 100
	if err := r.forEach(drowsy, func(b *kernels.Benchmark, res *sim.Result) error {
		v := rows[b.Name]
		v.dr = energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name]
		if res.Stats.RF.PoweredBankCycles > 0 {
			v.frac = float64(res.Stats.RF.DrowsyBankCycles) / float64(res.Stats.RF.PoweredBankCycles)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	both := r.cfgWarped()
	both.DrowsyAfter = 100
	if err := r.forEach(both, func(b *kernels.Benchmark, res *sim.Result) error {
		rows[b.Name].both = energy.Compute(params, res.Energy).TotalPJ() / baseE[b.Name]
		return nil
	}); err != nil {
		return nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		v := rows[b.Name]
		t.AddRow(b.Name, v.wc, v.dr, v.both, v.frac)
	}
	t.AddAverage()
	return t, nil
}

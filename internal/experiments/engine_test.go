package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernels"
)

// mustNew builds a Runner or fails the test (the valid-config happy path).
func mustNew(t *testing.T, ctx context.Context, opts ...Option) *Runner {
	t.Helper()
	r, err := New(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// fastNewOpts is fastOpts plus extras.
func fastNewOpts(extra ...Option) []Option {
	return append(fastOpts(), extra...)
}

// renderAll regenerates every exhibit and renders each to text,
// concatenated — the byte-level fingerprint of a whole run.
func renderAll(t *testing.T, r *Runner) string {
	t.Helper()
	tables, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tables {
		if err := tab.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// TestParallelMatchesSequential is the determinism contract: a parallel run
// must produce byte-identical figure/table output to a sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	seq := renderAll(t, mustNew(t, context.Background(), fastNewOpts(WithParallelism(1))...))
	par := renderAll(t, mustNew(t, context.Background(), fastNewOpts(WithParallelism(8))...))
	if seq != par {
		t.Fatalf("parallel output differs from sequential output:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("empty output")
	}
}

// TestRecordReplayMatchesExecute is the sweep-level replay oracle: the
// whole exhibit set rendered through the record/replay fast path (the
// default) must be byte-identical to a run forced through full execute
// mode — every benchmark, every configuration, at both parallelism
// extremes.
func TestRecordReplayMatchesExecute(t *testing.T) {
	exec := renderAll(t, mustNew(t, context.Background(), fastNewOpts(WithRecordReplay(false), WithParallelism(8))...))
	for _, par := range []int{1, 8} {
		rr := renderAll(t, mustNew(t, context.Background(), fastNewOpts(WithParallelism(par))...))
		if rr != exec {
			t.Fatalf("record/replay output at parallelism %d differs from execute mode:\n--- execute ---\n%s\n--- record/replay ---\n%s", par, exec, rr)
		}
	}
	if len(exec) == 0 {
		t.Fatal("empty output")
	}
}

// TestCancellationMidRun cancels the runner's context from the first
// job-start event and checks the run fails promptly with a wrapped
// context.Canceled.
func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	r := mustNew(t, ctx, fastNewOpts(
		WithParallelism(4),
		WithProgress(func(ev Event) {
			if ev.Kind == EventJobStart {
				once.Do(cancel)
			}
		}))...)
	start := time.Now()
	_, err := r.Run("fig9")
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestPreCanceledRunner never simulates at all.
func TestPreCanceledRunner(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	simulated := false
	r := mustNew(t, ctx, fastNewOpts(WithProgress(func(ev Event) {
		if ev.Kind == EventJobDone && ev.Err == nil {
			simulated = true
		}
	}))...)
	if _, err := r.Run("fig8"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if simulated {
		t.Fatal("simulation completed under a pre-canceled context")
	}
}

// TestSingleFlight hammers the memo cache from many goroutines: each
// (benchmark, config) key must simulate exactly once no matter how many
// concurrent requesters ask for it.
func TestSingleFlight(t *testing.T) {
	// The engine serializes progress callbacks, and all Run calls have
	// returned before the map is read, so no locking is needed.
	started := map[string]int{}
	r := mustNew(t, context.Background(), fastNewOpts(
		WithParallelism(4),
		WithProgress(func(ev Event) {
			if ev.Kind == EventJobStart {
				started[ev.Benchmark+"|"+ev.Config]++
			}
		}))...)

	// fig8 and fig11 both need the warped config on every benchmark;
	// requesting them concurrently exercises the in-flight join path.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i, id := range []string{"fig8", "fig11", "fig12", "fig8"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			_, errs[i] = r.Run(id)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for key, n := range started {
		if n != 1 {
			t.Fatalf("key %q simulated %d times, want exactly 1", key, n)
		}
	}
	if len(started) != 3 { // three benchmarks, one shared warped config
		t.Fatalf("%d keys simulated, want 3 (got %v)", len(started), started)
	}
}

// TestEventStream checks the structured progress contract: every
// simulation produces a start/done pair with cycles and wall time, and a
// re-request of a cached config produces cache-hit events.
func TestEventStream(t *testing.T) {
	var events []Event
	r := mustNew(t, context.Background(), fastNewOpts(
		WithParallelism(2),
		WithProgress(func(ev Event) { events = append(events, ev) }))...)
	if _, err := r.Run("fig8"); err != nil {
		t.Fatal(err)
	}
	starts, dones := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EventJobStart:
			starts++
			if ev.Benchmark == "" || ev.Config == "" {
				t.Fatalf("start event missing identity: %+v", ev)
			}
		case EventJobDone:
			dones++
			if ev.Err != nil {
				t.Fatalf("job failed: %v", ev.Err)
			}
			if ev.Cycles == 0 {
				t.Fatalf("done event missing cycles: %+v", ev)
			}
			if ev.Elapsed <= 0 {
				t.Fatalf("done event missing wall time: %+v", ev)
			}
		}
	}
	if starts != 3 || dones != 3 {
		t.Fatalf("starts=%d dones=%d, want 3/3", starts, dones)
	}

	before := len(events)
	if _, err := r.Run("fig11"); err != nil { // same warped config: all hits
		t.Fatal(err)
	}
	hits := 0
	for _, ev := range events[before:] {
		if ev.Kind != EventCacheHit {
			t.Fatalf("expected only cache hits after warm cache, got %v", ev.Kind)
		}
		if ev.Cycles == 0 {
			t.Fatalf("cache-hit event missing cycles: %+v", ev)
		}
		hits++
	}
	if hits != 3 {
		t.Fatalf("%d cache hits, want 3", hits)
	}
}

// TestEventKindString covers the debug names.
func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventJobStart:  "start",
		EventJobDone:   "done",
		EventCacheHit:  "cache-hit",
		EventKind(042): "EventKind(34)",
	} {
		if got := kind.String(); got != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

// TestWithBenchmarksReset checks the documented no-argument reset.
func TestWithBenchmarksReset(t *testing.T) {
	r := mustNew(t, context.Background(), WithBenchmarks("bfs"), WithBenchmarks())
	benches, err := r.benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != len(kernels.All()) {
		t.Fatalf("%d benchmarks after reset, want full suite (%d)", len(benches), len(kernels.All()))
	}
}

// TestDefaultParallelism: 0 and negative resolve to GOMAXPROCS.
func TestDefaultParallelism(t *testing.T) {
	if p := mustNew(t, context.Background()).Parallelism(); p < 1 {
		t.Fatalf("default parallelism %d", p)
	}
	if p := mustNew(t, context.Background(), WithParallelism(-3)).Parallelism(); p < 1 {
		t.Fatalf("negative parallelism resolved to %d", p)
	}
}

package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestConfigSignatureVersioned pins the version prefix: cache keys are
// persisted by the serving layer, so the format must announce itself.
func TestConfigSignatureVersioned(t *testing.T) {
	c := sim.DefaultConfig()
	s := ConfigSignature(&c)
	if !strings.HasPrefix(s, ConfigSignatureVersion+":") {
		t.Fatalf("signature %q missing version prefix %q", s, ConfigSignatureVersion)
	}
	if ConfigSignatureVersion != "cfg/v1" {
		t.Fatalf("ConfigSignatureVersion = %q; bumping it invalidates every persisted cache key — make sure that is intended, then update this test", ConfigSignatureVersion)
	}
}

// TestConfigSignatureDeterministic: equal configs produce equal signatures,
// and the signature is a pure function (no hidden state).
func TestConfigSignatureDeterministic(t *testing.T) {
	a, b := sim.DefaultConfig(), sim.DefaultConfig()
	if ConfigSignature(&a) != ConfigSignature(&b) {
		t.Fatal("equal configs produced different signatures")
	}
	if ConfigSignature(&a) != ConfigSignature(&a) {
		t.Fatal("signature not deterministic")
	}
}

// perturb changes one struct field to a value distinct from its current
// one, recursing into nested structs (faults.Config) by perturbing their
// first leaf field.
func perturb(v reflect.Value) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		if v.String() == "gto" {
			v.SetString("lrr") // keep Scheduler a real policy
		} else {
			v.SetString(v.String() + "x")
		}
	case reflect.Struct:
		perturb(v.Field(0))
	default:
		panic("perturb: unhandled kind " + v.Kind().String())
	}
}

// TestConfigSignatureCoversConfig enforces the signature's contract field
// by field: changing ANY sim.Config field must change the signature. A new
// field added to sim.Config fails here until it is added to
// ConfigSignature (or explicitly exempted), which is exactly the point —
// an uncovered field silently aliases cache entries.
func TestConfigSignatureCoversConfig(t *testing.T) {
	base := sim.DefaultConfig()
	want := ConfigSignature(&base)
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Name == "SMParallel" {
			// Exempt by design: shard count never changes results (the
			// epoch-barrier commit makes them byte-identical at every
			// SMParallel, enforced by internal/sim's determinism tests), so
			// covering it would fragment the memo cache for no gain.
			continue
		}
		mod := base
		perturb(reflect.ValueOf(&mod).Elem().Field(i))
		if got := ConfigSignature(&mod); got == want {
			t.Errorf("changing Config.%s did not change the signature (%q)", f.Name, got)
		}
	}
}

// TestConfigSignatureCompressionScheme pins the scheme-identity contract:
// the legacy empty spelling and the explicit default scheme run the same
// simulation and must share one cache identity, while every other
// registered scheme must get its own (result/store caches may never alias
// across schemes).
func TestConfigSignatureCompressionScheme(t *testing.T) {
	base := sim.DefaultConfig()
	want := ConfigSignature(&base)

	bdi := base
	bdi.Compression = "bdi"
	if got := ConfigSignature(&bdi); got != want {
		t.Errorf("empty Compression and %q must share a signature:\n  %q\n  %q", "bdi", want, got)
	}
	for _, scheme := range []string{"static", "fpc"} {
		mod := base
		mod.Compression = scheme
		if got := ConfigSignature(&mod); got == want {
			t.Errorf("scheme %q aliases the default scheme's signature %q", scheme, got)
		}
	}
}

// TestConfigSignatureFaultFields: every fault knob must alter the
// signature individually (the exhibit that varies them depends on it).
func TestConfigSignatureFaultFields(t *testing.T) {
	base := sim.DefaultConfig()
	want := ConfigSignature(&base)
	for _, mut := range []func(*sim.Config){
		func(c *sim.Config) { c.Faults.Seed = 42 },
		func(c *sim.Config) { c.Faults.StuckAtBanks = 2 },
		func(c *sim.Config) { c.Faults.TransientPerM = 100 },
		func(c *sim.Config) { c.Faults.Redirect = true },
	} {
		mod := base
		mut(&mod)
		if ConfigSignature(&mod) == want {
			t.Errorf("fault mutation did not change signature: %+v", mod.Faults)
		}
	}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// stallRelease unblocks the zz-stall benchmark at package-test teardown, so
// goroutines the watchdog abandoned exit cleanly instead of leaking into
// the race detector's shutdown checks.
var stallRelease = make(chan struct{})

func TestMain(m *testing.M) {
	code := m.Run()
	close(stallRelease)
	// A tiny grace lets released goroutines finish their sends into
	// buffered channels before the process dies.
	time.Sleep(10 * time.Millisecond)
	os.Exit(code)
}

func init() {
	// Synthetic misbehaving workloads for the robustness tests. The zz-
	// prefix keeps them last in sorted order, so healthy benchmarks always
	// come first in deterministic error selection.
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-panic",
		Suite:       "test",
		Description: "panics during Build",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			panic("zz-panic: deliberate test panic")
		},
	})
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-stall",
		Suite:       "test",
		Description: "blocks in Build until package teardown",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			<-stallRelease
			return nil, errors.New("zz-stall: released at teardown")
		},
	})
}

// TestPanicIsolation: a benchmark that panics must fail as a typed error
// carrying the job's identity — and must not take down the process or the
// other jobs.
func TestPanicIsolation(t *testing.T) {
	ran := map[string]bool{}
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs", "zz-panic"),
		WithParallelism(2),
		WithProgress(func(ev Event) {
			if ev.Kind == EventJobDone && ev.Err == nil {
				ran[ev.Benchmark] = true
			}
		}))...)
	_, err := r.Run("fig8")
	if err == nil {
		t.Fatal("panicking benchmark did not fail the exhibit")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %T %v, want *JobError", err, err)
	}
	if je.Benchmark != "zz-panic" || je.Config == "" || je.Attempts != 1 {
		t.Fatalf("JobError identity = %+v", je)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered panic lost its stack")
	}
	if !strings.Contains(err.Error(), "deliberate test panic") {
		t.Fatalf("panic value lost: %v", err)
	}
	if strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("Error() must not embed the stack (reports stay deterministic): %v", err)
	}
	if !ran["bfs"] {
		t.Fatal("healthy benchmark did not complete alongside the panic")
	}
}

// flakyJob fails with a TransientError until the given attempt succeeds.
func flakyJob(failures int) (*atomic.Int64, func(context.Context, *kernels.Benchmark, sim.Config, *atomic.Uint64) (*sim.Result, error)) {
	var attempts atomic.Int64
	return &attempts, func(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error) {
		n := attempts.Add(1)
		if int(n) <= failures {
			return nil, &TransientError{Err: fmt.Errorf("flaky failure %d", n)}
		}
		return &sim.Result{Cycles: 1}, nil
	}
}

// TestRetryExactCount: a job that fails transiently N-1 times succeeds on
// the Nth attempt, emitting exactly N-1 retry events; a job that keeps
// failing stops after the retry budget with the attempt count recorded.
func TestRetryExactCount(t *testing.T) {
	var retries, starts atomic.Int64
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs"),
		WithParallelism(1),
		WithRetries(3),
		WithRetryBackoff(time.Millisecond),
		WithProgress(func(ev Event) {
			switch ev.Kind {
			case EventJobRetry:
				retries.Add(1)
			case EventJobStart:
				starts.Add(1)
			}
		}))...)
	attempts, job := flakyJob(2)
	r.eng.runJob = job
	b, _ := kernels.ByName("bfs")
	res, err := r.eng.run(b, r.cfgWarped())
	if err != nil {
		t.Fatalf("flaky job did not recover: %v", err)
	}
	if res == nil || res.Cycles != 1 {
		t.Fatalf("recovered job lost its result: %+v", res)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("job ran %d times, want 3 (2 failures + 1 success)", got)
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("%d retry events, want 2", got)
	}
	if got := starts.Load(); got != 3 {
		t.Fatalf("%d start events, want 3", got)
	}

	// Exhausted budget: 1 + retries attempts, then a JobError with the count.
	r2 := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs"),
		WithRetries(2),
		WithRetryBackoff(time.Millisecond))...)
	attempts2, job2 := flakyJob(1 << 30)
	r2.eng.runJob = job2
	_, err = r2.eng.run(b, r2.cfgWarped())
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want *JobError", err)
	}
	if je.Attempts != 3 || attempts2.Load() != 3 {
		t.Fatalf("attempts = %d (job ran %d), want 3", je.Attempts, attempts2.Load())
	}
	if !IsTransient(errors.Unwrap(je)) {
		t.Fatalf("exhausted error lost its transient cause: %v", je)
	}
}

// TestNoRetryOnDeterministicFailure: panics and other non-transient errors
// must not burn retry attempts.
func TestNoRetryOnDeterministicFailure(t *testing.T) {
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("zz-panic"),
		WithRetries(5),
		WithRetryBackoff(time.Millisecond))...)
	b, _ := kernels.ByName("zz-panic")
	_, err := r.eng.run(b, r.cfgWarped())
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want *JobError", err)
	}
	if je.Attempts != 1 {
		t.Fatalf("panic was retried: %d attempts", je.Attempts)
	}
}

// TestWatchdogCancelsStalledLoop: a job whose cycle loop stops advancing
// the instruction heartbeat is canceled by the watchdog and fails with a
// typed StallError.
func TestWatchdogCancelsStalledLoop(t *testing.T) {
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs"),
		WithWatchdog(50*time.Millisecond))...)
	// A deliberately stalled cycle loop: burns wall time, polls the
	// context like the real simulator, never issues an instruction.
	r.eng.runJob = func(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error) {
		for {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Millisecond):
			}
		}
	}
	b, _ := kernels.ByName("bfs")
	start := time.Now()
	_, err := r.eng.run(b, r.cfgWarped())
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want wrapped *StallError", err)
	}
	if se.Deadline != 50*time.Millisecond {
		t.Fatalf("StallError deadline = %v", se.Deadline)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	if !IsTransient(se) {
		t.Fatal("stalls must be transient (a retry can succeed)")
	}
}

// TestWatchdogSparesProgressingJobs: a slow job that keeps advancing the
// heartbeat must not be killed.
func TestWatchdogSparesProgressingJobs(t *testing.T) {
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs"),
		WithWatchdog(100*time.Millisecond))...)
	r.eng.runJob = func(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error) {
		for i := 0; i < 30; i++ { // ~300ms total, several watchdog windows
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
			beat.Add(1)
		}
		return &sim.Result{Cycles: 2}, nil
	}
	b, _ := kernels.ByName("bfs")
	res, err := r.eng.run(b, r.cfgWarped())
	if err != nil {
		t.Fatalf("progressing job was killed: %v", err)
	}
	if res.Cycles != 2 {
		t.Fatalf("result lost: %+v", res)
	}
}

// partialFingerprint runs a two-exhibit partial suite containing one
// panicking and one stalling benchmark and returns the full rendered
// output: tables plus failure report.
func partialFingerprint(t *testing.T, parallelism int) string {
	t.Helper()
	// The watchdog window must comfortably exceed a healthy job's longest
	// no-heartbeat stretch (sim construction + input build), or loaded CI
	// machines kill legitimate work.
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs", "lib", "zz-panic", "zz-stall"),
		WithParallelism(parallelism),
		WithWatchdog(2*time.Second))...)
	rep, err := r.RunPartial("fig8", "fig9")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range rep.Tables {
		if err := tab.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	sb.WriteString(rep.Render())
	return sb.String()
}

// TestPartialResultsDeterministic: a suite containing a panicking and a
// stalled job still emits tables for the healthy jobs plus a structured
// failure report — byte-identical at every parallelism level.
func TestPartialResultsDeterministic(t *testing.T) {
	seq := partialFingerprint(t, 1)
	par := partialFingerprint(t, 8)
	if seq != par {
		t.Fatalf("partial output differs across parallelism:\n--- p1 ---\n%s\n--- p8 ---\n%s", seq, par)
	}
	for _, want := range []string{"bfs", "lib", "zz-panic", "zz-stall", "failure report", "panic:", "no forward progress"} {
		if !strings.Contains(seq, want) {
			t.Fatalf("partial output missing %q:\n%s", want, seq)
		}
	}
	if strings.Contains(seq, "goroutine") {
		t.Fatalf("failure report embeds a stack trace (nondeterministic):\n%s", seq)
	}
}

// TestPartialReportStructure digs into the Report fields: failed jobs carry
// identity, healthy benchmarks still have rows, and the report round-trips
// the Failed() predicate.
func TestPartialReportStructure(t *testing.T) {
	r := mustNew(t, context.Background(), fastNewOpts(
		WithBenchmarks("bfs", "zz-panic"),
		WithParallelism(2))...)
	rep, err := r.RunPartial("fig8", "fig11")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("report with a panicking job claims success")
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("%d tables, want 2 (both exhibits recover)", len(rep.Tables))
	}
	for _, tab := range rep.Tables {
		found := false
		for _, row := range tab.Rows {
			if row.Label == "zz-panic" {
				t.Fatalf("%s still has a row for the failed benchmark", tab.ID)
			}
			if row.Label == "bfs" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s lost its healthy rows", tab.ID)
		}
	}
	if len(rep.Jobs) == 0 {
		t.Fatal("no job failures recorded")
	}
	for _, j := range rep.Jobs {
		if j.Benchmark != "zz-panic" {
			t.Fatalf("unexpected failed job %+v", j)
		}
		if j.Config == "" || j.Err == nil {
			t.Fatalf("job failure missing identity: %+v", j)
		}
	}
	// A clean runner reports success and renders nothing.
	clean := mustNew(t, context.Background(), fastNewOpts(WithBenchmarks("bfs"))...)
	crep, err := clean.RunPartial("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if crep.Failed() || crep.Render() != "" {
		t.Fatalf("clean run reported failures: %+v", crep)
	}
}

// TestFirstErrorDeterministicAcrossParallelism: strict mode must surface
// the same (first by benchmark name) failure at every parallelism level,
// not whichever worker loses the race.
func TestFirstErrorDeterministicAcrossParallelism(t *testing.T) {
	errAt := func(p int) string {
		r := mustNew(t, context.Background(), fastNewOpts(
			WithBenchmarks("bfs", "zz-panic", "zz-stall"),
			WithParallelism(p),
			WithWatchdog(2*time.Second))...)
		_, err := r.Run("fig8")
		if err == nil {
			t.Fatal("run with broken benchmarks succeeded")
		}
		return err.Error()
	}
	e1 := errAt(1)
	e8 := errAt(8)
	if e1 != e8 {
		t.Fatalf("first error differs across parallelism:\np1: %s\np8: %s", e1, e8)
	}
	if !strings.Contains(e1, "zz-panic") {
		t.Fatalf("first error should be zz-panic (name order), got: %s", e1)
	}
}

// TestNewValidatesBaseConfig: satellite contract — the constructor rejects
// an invalid base configuration with a typed *sim.ConfigError.
func TestNewValidatesBaseConfig(t *testing.T) {
	bad := sim.DefaultConfig()
	bad.NumSMs = -1
	_, err := New(context.Background(), WithBaseConfig(bad))
	if err == nil {
		t.Fatal("New accepted NumSMs = -1")
	}
	var ce *sim.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want wrapped *sim.ConfigError", err, err)
	}
	if ce.Field != "NumSMs" {
		t.Fatalf("ConfigError.Field = %q", ce.Field)
	}
}

package experiments

// The cmp1-schemes exhibit family compares the registered compression
// backends (schemes/v1: bdi, fpc, static) head to head on the full suite —
// the repo's first beyond-the-paper results. Each exhibit runs one
// simulation per scheme per benchmark through the engine's record-once /
// replay-N path and the single-flight memo cache; the cs token in cfg/v1
// keeps the per-scheme results from ever aliasing.

import (
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// schemeColumns lists every registered scheme in registry (sorted) order —
// the column order of all cmp1-schemes tables. Registering a new scheme
// extends the family automatically.
func schemeColumns() []string { return core.Schemes() }

// SchemesRatio (cmp1-schemes-ratio) is the overall write compression ratio
// each scheme achieves: original write banks / compressed write banks,
// both phases. Higher is better; 1.0 means nothing compressed.
func (r *Runner) SchemesRatio() (*Table, error) {
	schemes := schemeColumns()
	t := &Table{
		ID:      "cmp1-schemes-ratio",
		Title:   "Compression ratio across registered schemes",
		Columns: schemes,
		Notes:   "original / compressed write banks (both phases); schemes/v1 registry order",
	}
	rows := map[string][]float64{}
	for i, scheme := range schemes {
		err := r.forEach(r.cfgScheme(scheme), func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(schemes))
			}
			s := res.Stats
			orig := s.WriteOrigBanks[0] + s.WriteOrigBanks[1]
			comp := s.WriteCompBanks[0] + s.WriteCompBanks[1]
			ratio := 1.0
			if comp > 0 {
				ratio = float64(orig) / float64(comp)
			}
			rows[b.Name][i] = ratio
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

// SchemesEnergy (cmp1-schemes-energy) is register file energy under each
// scheme, normalized to the no-compression baseline. Each scheme is costed
// with its own compression/decompression unit parameters
// (energy.ParamsForScheme), so a cheap codec with a worse ratio can still
// win here — that trade-off is the point of the exhibit.
func (r *Runner) SchemesEnergy() (*Table, error) {
	schemes := schemeColumns()
	t := &Table{
		ID:      "cmp1-schemes-energy",
		Title:   "Register file energy across registered schemes",
		Columns: schemes,
		Notes:   "normalized to no-compression baseline; per-scheme unit energies (estimates for non-bdi)",
	}
	base := map[string]float64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = energy.Compute(energy.DefaultParams(), res.Energy).TotalPJ()
		return nil
	}); err != nil {
		return nil, err
	}
	rows := map[string][]float64{}
	for i, scheme := range schemes {
		params := energy.ParamsForScheme(scheme)
		err := r.forEach(r.cfgScheme(scheme), func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(schemes))
			}
			rows[b.Name][i] = energy.Compute(params, res.Energy).TotalPJ() / base[b.Name]
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

// SchemesOverhead (cmp1-schemes-overhead) is the execution-time cost of
// each scheme: cycles normalized to the no-compression baseline, with each
// scheme running at its own codec latency (energy.CostOfScheme).
func (r *Runner) SchemesOverhead() (*Table, error) {
	schemes := schemeColumns()
	t := &Table{
		ID:      "cmp1-schemes-overhead",
		Title:   "Execution time across registered schemes",
		Columns: schemes,
		Notes:   "scheme cycles / baseline cycles at per-scheme codec latencies",
	}
	base := map[string]uint64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = res.Cycles
		return nil
	}); err != nil {
		return nil, err
	}
	rows := map[string][]float64{}
	for i, scheme := range schemes {
		err := r.forEach(r.cfgScheme(scheme), func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(schemes))
			}
			rows[b.Name][i] = float64(res.Cycles) / float64(base[b.Name])
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// EventKind classifies one entry of the engine's progress stream.
type EventKind int

const (
	// EventJobStart fires when a (benchmark, configuration) simulation is
	// dispatched to a worker slot.
	EventJobStart EventKind = iota
	// EventJobDone fires when that simulation finishes; Err is set on
	// failure, Cycles and Elapsed on success.
	EventJobDone
	// EventCacheHit fires when a request is served from the memo cache
	// (including requests that joined an in-flight simulation of the same
	// key and waited for it).
	EventCacheHit
)

func (k EventKind) String() string {
	switch k {
	case EventJobStart:
		return "start"
	case EventJobDone:
		return "done"
	case EventCacheHit:
		return "cache-hit"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one structured progress record. It replaces the former
// io.Writer progress lines: consumers get per-job start/finish, simulated
// cycle counts, wall time and cache hits, keyed by benchmark name and the
// configuration's memo signature.
type Event struct {
	Kind      EventKind
	Benchmark string
	Config    string        // memoization signature of the configuration
	Cycles    uint64        // simulated cycles (EventJobDone, EventCacheHit)
	Elapsed   time.Duration // simulation wall time (EventJobDone)
	Err       error         // failure, if any (EventJobDone)
}

// ProgressFunc receives progress events. The engine serializes calls: a
// ProgressFunc never runs concurrently with itself, so implementations need
// no locking of their own. It must not call back into the Runner.
type ProgressFunc func(Event)

// call is one single-flight memo entry: the first requester of a key
// simulates; concurrent requesters block on done and share the outcome.
type call struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// engine is the parallel simulation scheduler: it fans (configuration ×
// benchmark) jobs across a bounded pool of worker slots, memoizes results
// with single-flight semantics (a key in flight is never simulated twice,
// even when requested concurrently), and publishes the progress stream.
type engine struct {
	ctx         context.Context
	scale       kernels.Scale
	parallelism int
	slots       chan struct{} // worker-slot semaphore, cap == parallelism

	mu    sync.Mutex
	calls map[string]*call

	progressMu sync.Mutex
	progress   ProgressFunc
}

func newEngine(ctx context.Context, parallelism int, scale kernels.Scale, progress ProgressFunc) *engine {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &engine{
		ctx:         ctx,
		scale:       scale,
		parallelism: parallelism,
		slots:       make(chan struct{}, parallelism),
		calls:       make(map[string]*call),
		progress:    progress,
	}
}

func (e *engine) emit(ev Event) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.progress(ev)
}

// run returns the result for (b, c), simulating at most once per key for
// the engine's lifetime. Concurrent requests for the same key join the
// in-flight simulation. The output check always runs inside the job: an
// experiment on a miscomputing simulator would be meaningless.
func (e *engine) run(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	cfgSig := sig(&c)
	key := b.Name + "|" + cfgSig

	e.mu.Lock()
	if cl, ok := e.calls[key]; ok {
		e.mu.Unlock()
		select {
		case <-cl.done:
		case <-e.ctx.Done():
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, e.ctx.Err())
		}
		if cl.err == nil {
			e.emit(Event{Kind: EventCacheHit, Benchmark: b.Name, Config: cfgSig, Cycles: cl.res.Cycles})
		}
		return cl.res, cl.err
	}
	cl := &call{done: make(chan struct{})}
	e.calls[key] = cl
	e.mu.Unlock()

	cl.res, cl.err = e.simulate(b, c, cfgSig)
	close(cl.done)
	return cl.res, cl.err
}

// simulate executes one job inside a worker slot.
func (e *engine) simulate(b *kernels.Benchmark, c sim.Config, cfgSig string) (*sim.Result, error) {
	select {
	case e.slots <- struct{}{}:
	case <-e.ctx.Done():
		return nil, fmt.Errorf("experiments: %s: %w", b.Name, e.ctx.Err())
	}
	defer func() { <-e.slots }()

	e.emit(Event{Kind: EventJobStart, Benchmark: b.Name, Config: cfgSig})
	start := time.Now()
	res, err := e.runSim(b, c)
	e.emit(Event{
		Kind:      EventJobDone,
		Benchmark: b.Name,
		Config:    cfgSig,
		Cycles:    cycles(res),
		Elapsed:   time.Since(start),
		Err:       err,
	})
	return res, err
}

// runSim builds and runs one benchmark under one configuration, validating
// the simulated output against the host reference.
func (e *engine) runSim(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	g, err := sim.New(c)
	if err != nil {
		return nil, err
	}
	inst, err := b.Build(g.Mem(), e.scale)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	res, err := g.RunContext(e.ctx, inst.Launch)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if err := inst.Check(g.Mem()); err != nil {
		return nil, fmt.Errorf("%s: simulation produced wrong output: %w", b.Name, err)
	}
	return res, nil
}

func cycles(res *sim.Result) uint64 {
	if res == nil {
		return 0
	}
	return res.Cycles
}

// runAll fans one job per benchmark across the worker pool and returns the
// results in benchmark order — the ordering contract that keeps parallel
// runs byte-identical to sequential ones. With parallelism 1 the jobs are
// dispatched inline in order, preserving the legacy sequential runner's
// progress-line ordering exactly.
func (e *engine) runAll(benches []*kernels.Benchmark, c sim.Config) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(benches))
	if e.parallelism == 1 {
		for i, b := range benches {
			res, err := e.run(b, c)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b *kernels.Benchmark) {
			defer wg.Done()
			results[i], errs[i] = e.run(b, c)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

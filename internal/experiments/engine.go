package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// EventKind classifies one entry of the engine's progress stream.
type EventKind int

const (
	// EventJobStart fires when a (benchmark, configuration) simulation is
	// dispatched to a worker slot (once per attempt).
	EventJobStart EventKind = iota
	// EventJobDone fires when that simulation attempt finishes; Err is set
	// on failure, Cycles and Elapsed on success.
	EventJobDone
	// EventCacheHit fires when a request is served from the memo cache
	// (including requests that joined an in-flight simulation of the same
	// key and waited for it).
	EventCacheHit
	// EventJobRetry fires between a transient failure and the next attempt,
	// after the backoff delay has been decided; Attempt is the attempt that
	// just failed (0-based), Err its failure.
	EventJobRetry
)

func (k EventKind) String() string {
	switch k {
	case EventJobStart:
		return "start"
	case EventJobDone:
		return "done"
	case EventCacheHit:
		return "cache-hit"
	case EventJobRetry:
		return "retry"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one structured progress record. It replaces the former
// io.Writer progress lines: consumers get per-job start/finish, simulated
// cycle counts, wall time, retries and cache hits, keyed by benchmark name
// and the configuration's memo signature.
type Event struct {
	Kind      EventKind
	Benchmark string
	Config    string        // memoization signature of the configuration
	Attempt   int           // 0-based attempt number (nonzero only with retries)
	Cycles    uint64        // simulated cycles (EventJobDone, EventCacheHit)
	Elapsed   time.Duration // simulation wall time (EventJobDone)
	Err       error         // failure, if any (EventJobDone, EventJobRetry)
}

// ProgressFunc receives progress events. The engine serializes calls: a
// ProgressFunc never runs concurrently with itself, so implementations need
// no locking of their own. It must not call back into the Runner.
type ProgressFunc func(Event)

// call is one single-flight memo entry: the first requester of a key
// simulates; concurrent requesters block on done and share the outcome.
type call struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// outcome is what one job attempt delivers over its result channel.
type outcome struct {
	res *sim.Result
	err error
}

// stallGrace is how long the watchdog waits, after canceling a stalled
// job's context, for the job goroutine to acknowledge before abandoning
// it. A stalled simulation observes cancellation within one checkpoint
// interval; only a job wedged outside the cycle loop (e.g. a hung Build)
// outlives this and is left to finish into its buffered channel.
const stallGrace = 250 * time.Millisecond

// engine is the parallel simulation scheduler: it fans (configuration ×
// benchmark) jobs across a bounded pool of worker slots, memoizes results
// with single-flight semantics (a key in flight is never simulated twice,
// even when requested concurrently), isolates per-job panics, retries
// transient failures with exponential backoff, cancels jobs that stop
// making forward progress, and publishes the progress stream.
type engine struct {
	ctx         context.Context
	scale       kernels.Scale
	parallelism int
	slots       chan struct{} // worker-slot semaphore, cap == parallelism

	retries  int           // extra attempts after the first, transient failures only
	backoff  time.Duration // first retry delay; doubles per attempt
	watchdog time.Duration // progress deadline; 0 disables the watchdog

	// smParallel is the engine-wide SM shard count applied to configurations
	// that leave sim.Config.SMParallel at 0. 0 means auto: divide the
	// machine's cores across the engine's worker slots (see tuneSMParallel),
	// so job-level and intra-simulation parallelism never oversubscribe.
	smParallel int

	// memoize keeps completed calls in the single-flight map forever, so a
	// key simulates at most once per engine lifetime (the Runner's mode:
	// exhibits share configurations heavily and a suite run is bounded).
	// When false only in-flight calls dedup; completed entries are evicted,
	// and result retention becomes the caller's policy — the serving layer
	// (internal/jobs) layers a bounded LRU on top instead, so a long-lived
	// process does not grow a map per distinct configuration ever seen.
	memoize bool

	// runJob executes one attempt. It is a field (not a method call) purely
	// as a test seam: robustness tests substitute stalling or flaky jobs
	// without touching the benchmark registry.
	runJob func(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error)

	mu    sync.Mutex
	calls map[string]*call

	// Record/replay split (see recordreplay.go): when enabled, the first job
	// per benchmark runs the functional front-end once in record mode and
	// every other configuration replays the captured trace. traces is the
	// per-benchmark single-flight cache, bounded by traceBudget bytes (LRU).
	recordReplay bool
	traceBudget  int64
	traceMu      sync.Mutex
	traces       map[string]*traceEntry
	traceClock   int64

	progressMu sync.Mutex
	progress   ProgressFunc
}

func newEngine(ctx context.Context, parallelism int, scale kernels.Scale, progress ProgressFunc) *engine {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	e := &engine{
		ctx:         ctx,
		scale:       scale,
		parallelism: parallelism,
		slots:       make(chan struct{}, parallelism),
		backoff:     100 * time.Millisecond,
		memoize:     true,
		calls:       make(map[string]*call),
		traceBudget: defaultTraceBudget,
		traces:      make(map[string]*traceEntry),
		progress:    progress,
	}
	e.runJob = e.runSim
	return e
}

// enableRecordReplay switches the engine's job path to the execute-once /
// replay-N strategy. Must be called before any job is scheduled.
func (e *engine) enableRecordReplay() {
	e.recordReplay = true
	e.runJob = e.runSimRR
}

func (e *engine) emit(ev Event) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.progress(ev)
}

// run returns the result for (b, c), simulating at most once per key for
// the engine's lifetime. Concurrent requests for the same key join the
// in-flight simulation. On ErrOutputMismatch the result is returned
// alongside the error. The output check always runs inside the job: an
// experiment on a miscomputing simulator would be meaningless.
func (e *engine) run(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	cfgSig := sig(&c)
	key := b.Name + "|" + cfgSig

	e.mu.Lock()
	if cl, ok := e.calls[key]; ok {
		e.mu.Unlock()
		select {
		case <-cl.done:
		case <-e.ctx.Done():
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, e.ctx.Err())
		}
		if cl.err == nil {
			e.emit(Event{Kind: EventCacheHit, Benchmark: b.Name, Config: cfgSig, Cycles: cycles(cl.res)})
		}
		return cl.res, cl.err
	}
	cl := &call{done: make(chan struct{})}
	e.calls[key] = cl
	e.mu.Unlock()

	cl.res, cl.err = e.simulate(b.Name, cfgSig, func(ctx context.Context, beat *atomic.Uint64) (*sim.Result, error) {
		return e.runJob(ctx, b, c, beat)
	})
	if !e.memoize {
		// Evict before closing done: once waiters are released the key is
		// already gone, so a late requester starts a fresh simulation
		// instead of joining a finished call.
		e.mu.Lock()
		delete(e.calls, key)
		e.mu.Unlock()
	}
	close(cl.done)
	return cl.res, cl.err
}

// jobFunc is one schedulable unit of simulation work: execute, record or
// replay. The engine's slot/retry/watchdog machinery is agnostic to which.
type jobFunc func(ctx context.Context, beat *atomic.Uint64) (*sim.Result, error)

// simulate executes one job inside a worker slot, retrying transient
// failures up to the engine's retry budget with exponential backoff. Any
// failure is wrapped in a *JobError carrying the job's identity.
func (e *engine) simulate(name, cfgSig string, job jobFunc) (*sim.Result, error) {
	select {
	case e.slots <- struct{}{}:
	case <-e.ctx.Done():
		return nil, fmt.Errorf("experiments: %s: %w", name, e.ctx.Err())
	}
	defer func() { <-e.slots }()

	var res *sim.Result
	var err error
	attempt := 0
	for ; ; attempt++ {
		e.emit(Event{Kind: EventJobStart, Benchmark: name, Config: cfgSig, Attempt: attempt})
		start := time.Now()
		res, err = e.attempt(job)
		e.emit(Event{
			Kind:      EventJobDone,
			Benchmark: name,
			Config:    cfgSig,
			Attempt:   attempt,
			Cycles:    cycles(res),
			Elapsed:   time.Since(start),
			Err:       err,
		})
		if err == nil || attempt >= e.retries || !IsTransient(err) || e.ctx.Err() != nil {
			break
		}
		e.emit(Event{Kind: EventJobRetry, Benchmark: name, Config: cfgSig, Attempt: attempt, Err: err})
		delay := e.backoff << attempt
		select {
		case <-time.After(delay):
		case <-e.ctx.Done():
			return nil, fmt.Errorf("experiments: %s: %w", name, e.ctx.Err())
		}
	}
	if err != nil {
		err = &JobError{Benchmark: name, Config: cfgSig, Attempts: attempt + 1, Err: err}
	}
	return res, err
}

// attempt runs one isolated job attempt: the job executes in its own
// goroutine so a panic is recovered into a *PanicError, and — when the
// watchdog is armed — a monitor cancels the attempt if the simulation's
// instruction heartbeat stops advancing for a full deadline window.
func (e *engine) attempt(job jobFunc) (*sim.Result, error) {
	ctx := e.ctx
	cancel := context.CancelFunc(func() {})
	if e.watchdog > 0 {
		ctx, cancel = context.WithCancel(e.ctx)
	}
	defer cancel()

	beat := new(atomic.Uint64)
	// Buffered so an abandoned (wedged, uncancelable) job can still
	// deliver its eventual outcome without leaking a blocked goroutine.
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				done <- outcome{nil, &PanicError{Value: v, Stack: debug.Stack()}}
			}
		}()
		res, err := job(ctx, beat)
		done <- outcome{res, err}
	}()

	if e.watchdog <= 0 {
		o := <-done
		return o.res, o.err
	}

	ticker := time.NewTicker(e.watchdog)
	defer ticker.Stop()
	last := beat.Load()
	for {
		select {
		case o := <-done:
			return o.res, o.err
		case <-ticker.C:
			cur := beat.Load()
			if cur != last {
				last = cur
				continue
			}
			// No instruction issued for a full window: the simulation is
			// deadlocked (cycles may still be burning). Cancel and give
			// the goroutine a short grace to acknowledge.
			cancel()
			select {
			case <-done:
			case <-time.After(stallGrace):
			}
			return nil, &StallError{Deadline: e.watchdog, LastBeat: cur}
		}
	}
}

// tuneSMParallel decides the intra-simulation shard count for one job,
// after the memo signature has been taken (SMParallel is signature-exempt,
// so tuning never fragments the cache). Precedence: an explicit per-config
// value wins; then the engine-wide setting; otherwise auto — spread the
// machine's cores across the engine's worker slots so a fully loaded
// engine never oversubscribes (at the default parallelism of GOMAXPROCS
// the auto budget is 1 shard per job; an interactive -parallel 1 run gets
// every core for its single simulation).
func (e *engine) tuneSMParallel(c *sim.Config) {
	if c.SMParallel != 0 {
		return
	}
	if e.smParallel != 0 {
		c.SMParallel = e.smParallel
		return
	}
	if n := runtime.GOMAXPROCS(0) / e.parallelism; n > 1 {
		c.SMParallel = n
	} else {
		c.SMParallel = 1
	}
}

// runSim builds and runs one benchmark under one configuration, validating
// the simulated output against the host reference. A mismatch returns the
// result *and* an error wrapping ErrOutputMismatch, so fault experiments
// can still read the run's counters.
func (e *engine) runSim(ctx context.Context, b *kernels.Benchmark, c sim.Config, beat *atomic.Uint64) (*sim.Result, error) {
	e.tuneSMParallel(&c)
	g, err := sim.New(c)
	if err != nil {
		return nil, err
	}
	inst, err := b.Build(g.Mem(), e.scale)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	res, err := g.RunContextBeat(ctx, inst.Launch, beat)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if err := inst.Check(g.Mem()); err != nil {
		return res, fmt.Errorf("%s: %w: %w", b.Name, ErrOutputMismatch, err)
	}
	return res, nil
}

func cycles(res *sim.Result) uint64 {
	if res == nil {
		return 0
	}
	return res.Cycles
}

// runAll fans one job per benchmark across the worker pool and returns the
// results and errors in benchmark order — the ordering contract that keeps
// parallel runs byte-identical to sequential ones. Every benchmark runs
// even when an earlier one fails (also at parallelism 1), so the memo
// cache and the error set end up identical at every parallelism level.
func (e *engine) runAll(benches []*kernels.Benchmark, c sim.Config) ([]*sim.Result, []error) {
	results := make([]*sim.Result, len(benches))
	errs := make([]error, len(benches))
	if e.parallelism == 1 {
		for i, b := range benches {
			results[i], errs[i] = e.run(b, c)
		}
		return results, errs
	}
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b *kernels.Benchmark) {
			defer wg.Done()
			results[i], errs[i] = e.run(b, c)
		}(i, b)
	}
	wg.Wait()
	return results, errs
}

// firstError returns the error of the lowest-ordered failed job (benches
// are sorted by name, so this is the first error by job key) — the
// deterministic choice that keeps failure output stable across
// parallelism levels, instead of whichever worker loses the race.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

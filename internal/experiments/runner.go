package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// Options selects what the runner simulates.
type Options struct {
	// Scale is the workload size (default Medium, the figure-quality size).
	Scale kernels.Scale
	// Benchmarks restricts the suite; nil means all 20.
	Benchmarks []string
	// Progress, when non-nil, receives one line per simulation run.
	Progress io.Writer
	// Base overrides the hardware configuration the experiment configs are
	// derived from (zero value means sim.DefaultConfig). Compression mode,
	// gating, scheduler, latencies and characterization are overridden per
	// experiment on top of this.
	Base *sim.Config
}

// Runner executes benchmarks under experiment configurations, memoizing
// results so shared configurations (e.g. the default warped-compression run
// used by Figs 8-13) simulate only once.
type Runner struct {
	opts  Options
	cache map[string]*sim.Result
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts, cache: make(map[string]*sim.Result)}
}

// benchmarks resolves the benchmark list.
func (r *Runner) benchmarks() ([]*kernels.Benchmark, error) {
	if r.opts.Benchmarks == nil {
		return kernels.All(), nil
	}
	var out []*kernels.Benchmark
	for _, name := range r.opts.Benchmarks {
		b, ok := kernels.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q (have %v)", name, kernels.Names())
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// baseConfig returns the hardware configuration experiments start from.
func (r *Runner) baseConfig() sim.Config {
	if r.opts.Base != nil {
		return *r.opts.Base
	}
	return sim.DefaultConfig()
}

// Experiment configurations (derived from Table 2 defaults).

func (r *Runner) cfgWarped() sim.Config { return r.baseConfig() }

func (r *Runner) cfgBaseline() sim.Config {
	c := r.baseConfig()
	c.Mode = core.ModeOff
	c.PowerGating = false
	return c
}

// cfgCharacterize is the paper §3 measurement setup: an uncompressed
// register file instrumented to classify every register write.
func (r *Runner) cfgCharacterize() sim.Config {
	c := r.cfgBaseline()
	c.CharacterizeWrites = true
	return c
}

func (r *Runner) cfgScheduler(policy string, compressed bool) sim.Config {
	var c sim.Config
	if compressed {
		c = r.cfgWarped()
	} else {
		c = r.cfgBaseline()
	}
	c.Scheduler = policy
	return c
}

func (r *Runner) cfgMode(m core.Mode) sim.Config {
	c := r.cfgWarped()
	c.Mode = m
	return c
}

func (r *Runner) cfgCompLatency(lat int) sim.Config {
	c := r.cfgWarped()
	c.CompressLatency = lat
	return c
}

func (r *Runner) cfgDecompLatency(lat int) sim.Config {
	c := r.cfgWarped()
	c.DecompressLatency = lat
	return c
}

// sig produces the memoization key of a configuration.
func sig(c *sim.Config) string {
	return fmt.Sprintf("m%d g%t s%s cl%d dl%d ch%t sm%d w%d cta%d col%d c%d d%d wake%d dp%s",
		c.Mode, c.PowerGating, c.Scheduler, c.CompressLatency, c.DecompressLatency,
		c.CharacterizeWrites, c.NumSMs, c.MaxWarpsPerSM, c.MaxCTAsPerSM, c.Collectors,
		c.Compressors, c.Decompressors, c.BankWakeupLatency, c.DivergencePolicy) +
		fmt.Sprintf(" rfc%d drw%d", c.RFCEntries, c.DrowsyAfter)
}

// run simulates one benchmark under one configuration (memoized). The
// output check always runs: an experiment on a miscomputing simulator would
// be meaningless.
func (r *Runner) run(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	key := b.Name + "|" + sig(&c)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	g, err := sim.New(c)
	if err != nil {
		return nil, err
	}
	inst, err := b.Build(g.Mem(), r.opts.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	res, err := g.Run(inst.Launch)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if err := inst.Check(g.Mem()); err != nil {
		return nil, fmt.Errorf("%s: simulation produced wrong output: %w", b.Name, err)
	}
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "ran %-12s [%s] cycles=%d\n", b.Name, sig(&c), res.Cycles)
	}
	r.cache[key] = res
	return res, nil
}

// forEach runs every selected benchmark under config c and calls fn.
func (r *Runner) forEach(c sim.Config, fn func(b *kernels.Benchmark, res *sim.Result) error) error {
	benches, err := r.benchmarks()
	if err != nil {
		return err
	}
	for _, b := range benches {
		res, err := r.run(b, c)
		if err != nil {
			return err
		}
		if err := fn(b, res); err != nil {
			return err
		}
	}
	return nil
}

// exhibit describes one regenerable table/figure.
type exhibit struct {
	id    string
	title string
	run   func(*Runner) (*Table, error)
}

var exhibits = []exhibit{
	{"table1", "Possible combinations of chunk size", (*Runner).Table1},
	{"table2", "GPU microarchitectural parameters", (*Runner).Table2},
	{"table3", "Estimated energy and power values (@45nm)", (*Runner).Table3},
	{"fig2", "Characterization of register values", (*Runner).Fig2},
	{"fig3", "Ratio of non-diverged warp instructions", (*Runner).Fig3},
	{"fig5", "Breakdown of <base,delta> values for best compression", (*Runner).Fig5},
	{"fig8", "Compression ratio (non-divergent vs divergent)", (*Runner).Fig8},
	{"fig9", "Register file energy consumption", (*Runner).Fig9},
	{"fig10", "Portion of power-gated cycles for each bank", (*Runner).Fig10},
	{"fig11", "Portion of dummy MOV instructions", (*Runner).Fig11},
	{"fig12", "Portion of compressed registers", (*Runner).Fig12},
	{"fig13", "Impact on execution time", (*Runner).Fig13},
	{"fig14", "Energy reduction: GTO and LRR warp schedulers", (*Runner).Fig14},
	{"fig15", "Compression ratio for various compression parameters", (*Runner).Fig15},
	{"fig16", "Energy consumption for various compression parameters", (*Runner).Fig16},
	{"fig17", "Energy vs compression/decompression unit activation energy", (*Runner).Fig17},
	{"fig18", "Energy vs per-bank access energy", (*Runner).Fig18},
	{"fig19", "Impact of wire activity", (*Runner).Fig19},
	{"fig20", "Execution time vs compression latency", (*Runner).Fig20},
	{"fig21", "Execution time vs decompression latency", (*Runner).Fig21},
	// Ablations beyond the paper's figures (design choices of §5.1-5.3).
	{"abl1-divergence", "Divergence policy: dummy-MOV vs recompress", (*Runner).AblDivergence},
	{"abl2-gating", "Contribution of bank power gating", (*Runner).AblGating},
	{"abl3-units", "Compressor/decompressor pool sizing", (*Runner).AblUnits},
	{"abl4-rfc", "Warped-compression vs register file cache", (*Runner).AblRFC},
	{"abl5-drowsy", "Warped-compression vs drowsy register file", (*Runner).AblDrowsy},
}

// IDs lists every regenerable exhibit in paper order.
func IDs() []string {
	out := make([]string, len(exhibits))
	for i, e := range exhibits {
		out[i] = e.id
	}
	return out
}

// Title returns the exhibit's paper caption.
func Title(id string) (string, bool) {
	for _, e := range exhibits {
		if e.id == id {
			return e.title, true
		}
	}
	return "", false
}

// Run regenerates one exhibit by id ("fig9", "table1", ...).
func (r *Runner) Run(id string) (*Table, error) {
	for _, e := range exhibits {
		if e.id == id {
			return e.run(r)
		}
	}
	return nil, fmt.Errorf("experiments: unknown exhibit %q (have %v)", id, IDs())
}

// RunAll regenerates every exhibit in paper order.
func (r *Runner) RunAll() ([]*Table, error) {
	var out []*Table
	for _, e := range exhibits {
		t, err := e.run(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

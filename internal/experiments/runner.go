package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// Runner executes benchmarks under experiment configurations on the
// parallel engine, memoizing results so shared configurations (e.g. the
// default warped-compression run used by Figs 8-13) simulate only once —
// even when several exhibits request them concurrently. Build one with New.
type Runner struct {
	cfg config
	eng *engine

	// failures, when non-nil, switches forEach into partial mode: job
	// failures are recorded here and the failing benchmarks skipped,
	// instead of aborting the exhibit. Only RunPartial sets it.
	failures *failureSink
}

// Parallelism reports how many simulations the runner may execute
// concurrently.
func (r *Runner) Parallelism() int { return r.eng.parallelism }

// benchmarks resolves the benchmark list. In partial mode it also drops
// benchmarks that already failed: exhibits assemble their final rows from a
// fresh benchmarks() call, so filtering here keeps their row loops — and
// the maps those loops index — consistent with what forEach actually ran.
func (r *Runner) benchmarks() ([]*kernels.Benchmark, error) {
	var out []*kernels.Benchmark
	if r.cfg.benchmarks == nil {
		out = kernels.All()
	} else {
		for _, name := range r.cfg.benchmarks {
			b, ok := kernels.ByName(name)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown benchmark %q (have %v)", name, kernels.Names())
			}
			out = append(out, b)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	}
	if r.failures != nil {
		out = r.failures.filter(out)
	}
	return out, nil
}

// baseConfig returns the hardware configuration experiments start from.
func (r *Runner) baseConfig() sim.Config {
	if r.cfg.base != nil {
		return *r.cfg.base
	}
	return sim.DefaultConfig()
}

// Experiment configurations (derived from Table 2 defaults).

func (r *Runner) cfgWarped() sim.Config { return r.baseConfig() }

func (r *Runner) cfgBaseline() sim.Config {
	c := r.baseConfig()
	c.Mode = core.ModeOff
	c.PowerGating = false
	return c
}

// cfgCharacterize is the paper §3 measurement setup: an uncompressed
// register file instrumented to classify every register write.
func (r *Runner) cfgCharacterize() sim.Config {
	c := r.cfgBaseline()
	c.CharacterizeWrites = true
	return c
}

func (r *Runner) cfgScheduler(policy string, compressed bool) sim.Config {
	var c sim.Config
	if compressed {
		c = r.cfgWarped()
	} else {
		c = r.cfgBaseline()
	}
	c.Scheduler = policy
	return c
}

func (r *Runner) cfgMode(m core.Mode) sim.Config {
	c := r.cfgWarped()
	c.Mode = m
	return c
}

// cfgScheme is warped-compression running a specific registered backend at
// that backend's own codec latencies (energy.CostOfScheme). Mode is pinned
// to warped so the cmp1-schemes family compares schemes, not modes, even
// when the runner's base config disables compression.
func (r *Runner) cfgScheme(scheme string) sim.Config {
	c := r.cfgWarped()
	c.Mode = core.ModeWarped
	c.Compression = scheme
	cost := energy.CostOfScheme(scheme)
	c.CompressLatency = cost.CompressLatency
	c.DecompressLatency = cost.DecompressLatency
	return c
}

func (r *Runner) cfgCompLatency(lat int) sim.Config {
	c := r.cfgWarped()
	c.CompressLatency = lat
	return c
}

func (r *Runner) cfgDecompLatency(lat int) sim.Config {
	c := r.cfgWarped()
	c.DecompressLatency = lat
	return c
}

// run simulates one benchmark under one configuration through the engine's
// single-flight memo cache.
func (r *Runner) run(b *kernels.Benchmark, c sim.Config) (*sim.Result, error) {
	return r.eng.run(b, c)
}

// forEach runs every selected benchmark under config c in parallel across
// the engine's worker pool, then calls fn once per benchmark in name order.
// The sequential fn pass is the determinism contract: exhibit tables are
// assembled in the same order at every parallelism level.
//
// In strict mode (Run/RunAll) the first failure — first by benchmark name,
// not by wall clock — aborts the exhibit. In partial mode (RunPartial) a
// failing benchmark is recorded in the failure sink and skipped here and in
// every later exhibit, so one broken job costs one row, not the suite.
func (r *Runner) forEach(c sim.Config, fn func(b *kernels.Benchmark, res *sim.Result) error) error {
	benches, err := r.benchmarks()
	if err != nil {
		return err
	}
	return r.forEachOf(benches, c, fn)
}

// forEachOf is forEach over an explicit benchmark list — the family
// exhibits (gemm1-tiling) run a fixed workload set regardless of the
// runner's benchmark selection.
func (r *Runner) forEachOf(benches []*kernels.Benchmark, c sim.Config, fn func(b *kernels.Benchmark, res *sim.Result) error) error {
	results, errs := r.eng.runAll(benches, c)
	if r.failures == nil {
		if err := firstError(errs); err != nil {
			return err
		}
	}
	for i, b := range benches {
		if errs[i] != nil {
			r.failures.record(b.Name, sig(&c), errs[i])
			continue
		}
		if err := fn(b, results[i]); err != nil {
			return err
		}
	}
	return nil
}

// prefetch schedules every selected benchmark under each config without
// waiting for results, warming the memo cache so subsequent forEach passes
// over the same configs run fully parallel instead of config-by-config.
// Errors are deliberately ignored here: the forEach that consumes a result
// reports them. No-op at parallelism 1.
func (r *Runner) prefetch(cfgs ...sim.Config) {
	if r.eng.parallelism == 1 {
		return
	}
	benches, err := r.benchmarks()
	if err != nil {
		return
	}
	for _, c := range cfgs {
		go func(c sim.Config) { _, _ = r.eng.runAll(benches, c) }(c)
	}
}

// exhibit describes one regenerable table/figure.
type exhibit struct {
	id    string
	title string
	run   func(*Runner) (*Table, error)
}

var exhibits = []exhibit{
	{"table1", "Possible combinations of chunk size", (*Runner).Table1},
	{"table2", "GPU microarchitectural parameters", (*Runner).Table2},
	{"table3", "Estimated energy and power values (@45nm)", (*Runner).Table3},
	{"fig2", "Characterization of register values", (*Runner).Fig2},
	{"fig3", "Ratio of non-diverged warp instructions", (*Runner).Fig3},
	{"fig5", "Breakdown of <base,delta> values for best compression", (*Runner).Fig5},
	{"fig8", "Compression ratio (non-divergent vs divergent)", (*Runner).Fig8},
	{"fig9", "Register file energy consumption", (*Runner).Fig9},
	{"fig10", "Portion of power-gated cycles for each bank", (*Runner).Fig10},
	{"fig11", "Portion of dummy MOV instructions", (*Runner).Fig11},
	{"fig12", "Portion of compressed registers", (*Runner).Fig12},
	{"fig13", "Impact on execution time", (*Runner).Fig13},
	{"fig14", "Energy reduction: GTO and LRR warp schedulers", (*Runner).Fig14},
	{"fig15", "Compression ratio for various compression parameters", (*Runner).Fig15},
	{"fig16", "Energy consumption for various compression parameters", (*Runner).Fig16},
	{"fig17", "Energy vs compression/decompression unit activation energy", (*Runner).Fig17},
	{"fig18", "Energy vs per-bank access energy", (*Runner).Fig18},
	{"fig19", "Impact of wire activity", (*Runner).Fig19},
	{"fig20", "Execution time vs compression latency", (*Runner).Fig20},
	{"fig21", "Execution time vs decompression latency", (*Runner).Fig21},
	// Ablations beyond the paper's figures (design choices of §5.1-5.3).
	{"abl1-divergence", "Divergence policy: dummy-MOV vs recompress", (*Runner).AblDivergence},
	{"abl2-gating", "Contribution of bank power gating", (*Runner).AblGating},
	{"abl3-units", "Compressor/decompressor pool sizing", (*Runner).AblUnits},
	{"abl4-rfc", "Warped-compression vs register file cache", (*Runner).AblRFC},
	{"abl5-drowsy", "Warped-compression vs drowsy register file", (*Runner).AblDrowsy},
	// Robustness exhibit: behaviour under injected register-file faults.
	{"flt1-faults", "Kernel correctness and energy under injected register faults", (*Runner).FaultInjection},
	// Cross-scheme design space: the registered compression backends
	// (schemes/v1) compared on ratio, energy and execution time.
	{"cmp1-schemes-ratio", "Compression ratio across registered schemes", (*Runner).SchemesRatio},
	{"cmp1-schemes-energy", "Register file energy across registered schemes", (*Runner).SchemesEnergy},
	{"cmp1-schemes-overhead", "Execution time across registered schemes", (*Runner).SchemesOverhead},
	// GEMM tiling ladder: the compute-dense workload family (gemm_naive →
	// gemm_reg) under every registered scheme, plus the shared-memory bank
	// model's view of the same ladder.
	{"gemm1-tiling-ratio", "GEMM tiling ladder: compression ratio per scheme", (*Runner).GemmTilingRatio},
	{"gemm1-tiling-energy", "GEMM tiling ladder: register file energy per scheme", (*Runner).GemmTilingEnergy},
	{"gemm1-tiling-time", "GEMM tiling ladder: execution time per scheme", (*Runner).GemmTilingTime},
	{"gemm1-tiling-shared", "GEMM tiling ladder: shared-memory bank behavior and register pressure", (*Runner).GemmTilingShared},
}

// IDs lists every regenerable exhibit in paper order.
func IDs() []string {
	out := make([]string, len(exhibits))
	for i, e := range exhibits {
		out[i] = e.id
	}
	return out
}

// Title returns the exhibit's paper caption.
func Title(id string) (string, bool) {
	for _, e := range exhibits {
		if e.id == id {
			return e.title, true
		}
	}
	return "", false
}

// Run regenerates one exhibit by id ("fig9", "table1", ...).
func (r *Runner) Run(id string) (*Table, error) {
	for _, e := range exhibits {
		if e.id == id {
			return e.run(r)
		}
	}
	return nil, fmt.Errorf("experiments: unknown exhibit %q (have %v)", id, IDs())
}

// RunAll regenerates every exhibit in paper order. The memo cache is shared
// across exhibits, so each distinct (benchmark, configuration) pair
// simulates exactly once for the whole set. The first job failure (by
// benchmark name, deterministic across parallelism levels) aborts the run;
// use RunPartial to keep going and collect what succeeded.
func (r *Runner) RunAll() ([]*Table, error) {
	// Warm the cache with the two configurations nearly every exhibit
	// shares, so the first exhibits already run at full width.
	r.prefetch(r.cfgBaseline(), r.cfgWarped())
	var out []*Table
	for _, e := range exhibits {
		t, err := e.run(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestGemmTilingExhibits runs the gemm1-tiling family and checks the
// properties the family exists to demonstrate: ladder row order, one column
// per registered scheme, shared-memory serialization falling to zero along
// the ladder and register pressure rising monotonically.
func TestGemmTilingExhibits(t *testing.T) {
	r := fastRunner(t) // benchmark selection is ignored: the family is fixed
	schemes := core.Schemes()

	shared, err := r.Run("gemm1-tiling-shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(shared.Rows) != len(gemmLadder) {
		t.Fatalf("%d rows, want %d", len(shared.Rows), len(gemmLadder))
	}
	col := map[string]int{}
	for i, c := range shared.Columns {
		col[c] = i
	}
	get := func(row int, name string) float64 { return shared.Rows[row].Values[col[name]] }
	for i, name := range gemmLadder {
		if shared.Rows[i].Label != name {
			t.Fatalf("row %d = %s, want ladder order %v", i, shared.Rows[i].Label, gemmLadder)
		}
	}
	// Serialization: block (8-way) > warp (4-way) > reg = naive = 0.
	if v := get(0, "serialize_cyc"); v != 0 {
		t.Errorf("gemm_naive serialization %v, want 0 (no shared memory)", v)
	}
	if v := get(3, "serialize_cyc"); v != 0 {
		t.Errorf("gemm_reg serialization %v, want 0 (padded layout)", v)
	}
	if b, w := get(1, "serialize_cyc"), get(2, "serialize_cyc"); !(b > w && w > 0) {
		t.Errorf("serialization not falling along ladder: block=%v warp=%v", b, w)
	}
	// Register pressure rises monotonically.
	for i := 1; i < len(gemmLadder); i++ {
		if get(i, "regs/thread") <= get(i-1, "regs/thread") {
			t.Errorf("regs/thread not rising: %s=%v, %s=%v",
				shared.Rows[i-1].Label, get(i-1, "regs/thread"),
				shared.Rows[i].Label, get(i, "regs/thread"))
		}
	}
	// gemm_naive touches shared memory not at all.
	if v := get(0, "accesses"); v != 0 {
		t.Errorf("gemm_naive shared accesses %v, want 0", v)
	}

	ratio, err := r.Run("gemm1-tiling-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if len(ratio.Columns) != len(schemes) {
		t.Fatalf("ratio columns %v, want one per scheme %v", ratio.Columns, schemes)
	}
	for _, row := range ratio.Rows {
		for i, v := range row.Values {
			if v < 1-1e-9 || v > 16 {
				t.Errorf("%s/%s: compression ratio %v out of range", row.Label, schemes[i], v)
			}
		}
	}

	en, err := r.Run("gemm1-tiling-energy")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range en.Rows {
		for i, v := range row.Values {
			if v <= 0 || v > 1.5 {
				t.Errorf("%s/%s: normalized energy %v out of range", row.Label, schemes[i], v)
			}
		}
	}

	tm, err := r.Run("gemm1-tiling-time")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tm.Rows {
		for i, v := range row.Values {
			if v < 0.9 || v > 2.0 {
				t.Errorf("%s/%s: normalized time %v out of range", row.Label, schemes[i], v)
			}
		}
	}
}

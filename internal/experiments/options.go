package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// config is the resolved runner configuration functional options build up.
type config struct {
	scale       kernels.Scale
	benchmarks  []string
	parallelism int // 0 means GOMAXPROCS
	progress    ProgressFunc
	base        *sim.Config
	retries     int
	backoff     time.Duration
	watchdog    time.Duration
}

// Option configures a Runner built with New.
type Option func(*config)

// WithScale selects the workload size (default Medium, the figure-quality
// size).
func WithScale(s kernels.Scale) Option {
	return func(c *config) { c.scale = s }
}

// WithBenchmarks restricts the suite to the named benchmarks. Calling it
// with no arguments restores the full suite.
func WithBenchmarks(names ...string) Option {
	return func(c *config) {
		if len(names) == 0 {
			c.benchmarks = nil
			return
		}
		c.benchmarks = append([]string(nil), names...)
	}
}

// WithParallelism bounds how many simulations run concurrently. n <= 0 (and
// the default) means GOMAXPROCS. Results are deterministic at every
// parallelism level: tables come out byte-identical to a sequential run.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithProgress installs a structured progress callback. Events are
// serialized by the engine, so fn needs no locking. See Event.
func WithProgress(fn ProgressFunc) Option {
	return func(c *config) { c.progress = fn }
}

// WithProgressWriter adapts the structured event stream to the legacy
// line-per-simulation text format on w ("ran <bench> [<config>]
// cycles=<n>"). Cache hits are not logged, matching the old behaviour.
func WithProgressWriter(w io.Writer) Option {
	return WithProgress(func(ev Event) {
		if ev.Kind == EventJobDone && ev.Err == nil {
			fmt.Fprintf(w, "ran %-12s [%s] cycles=%d\n", ev.Benchmark, ev.Config, ev.Cycles)
		}
	})
}

// WithRetries grants every job n extra attempts (default 0) after a
// transient failure — one wrapped in TransientError, or a watchdog stall.
// Deterministic failures (panics, wrong output, invalid configs) are never
// retried.
func WithRetries(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.retries = n
	}
}

// WithRetryBackoff sets the delay before the first retry (default 100ms);
// each subsequent retry doubles it.
func WithRetryBackoff(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// WithWatchdog arms the per-job progress watchdog: a simulation that issues
// no new instructions for a full window d is canceled and fails with a
// *StallError (which is transient, so retries apply). d <= 0 (the default)
// disables the watchdog. Note the trigger is issued instructions, not
// cycles: a deadlocked kernel spinning at a barrier burns cycles but issues
// nothing, which is exactly what the watchdog exists to catch.
func WithWatchdog(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			d = 0
		}
		c.watchdog = d
	}
}

// WithBaseConfig overrides the hardware configuration the experiment
// configurations are derived from (default sim.DefaultConfig). Compression
// mode, gating, scheduler, latencies and characterization are overridden
// per experiment on top of this base.
func WithBaseConfig(base sim.Config) Option {
	return func(c *config) {
		b := base
		c.base = &b
	}
}

// New builds an experiment Runner, validating the base hardware
// configuration up front (a *sim.ConfigError describes the first invalid
// field). ctx governs every simulation the runner schedules: canceling it
// makes in-flight and future runs return an error wrapping ctx.Err()
// promptly (the simulator polls the context inside its cycle loop). A nil
// ctx means context.Background().
//
//	r, err := experiments.New(ctx,
//	    experiments.WithScale(kernels.Medium),
//	    experiments.WithParallelism(runtime.GOMAXPROCS(0)),
//	    experiments.WithProgress(func(ev experiments.Event) { ... }))
//	tables, err := r.RunAll()
func New(ctx context.Context, opts ...Option) (*Runner, error) {
	r := build(ctx, opts...)
	if r.initErr != nil {
		return nil, r.initErr
	}
	return r, nil
}

// build assembles a Runner without rejecting an invalid base configuration:
// New surfaces the validation error immediately, while the deprecated
// NewRunner (whose signature cannot return one) stores it and lets every
// public method report it.
func build(ctx context.Context, opts ...Option) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	var c config
	for _, o := range opts {
		o(&c)
	}
	eng := newEngine(ctx, c.parallelism, c.scale, c.progress)
	eng.retries = c.retries
	if c.backoff > 0 {
		eng.backoff = c.backoff
	}
	eng.watchdog = c.watchdog
	r := &Runner{cfg: c, eng: eng}
	base := r.baseConfig()
	if err := base.Validate(); err != nil {
		r.initErr = fmt.Errorf("experiments: invalid base config: %w", err)
	}
	return r
}

// Options selects what the legacy runner simulates.
//
// Deprecated: Options exists only so pre-engine callers keep compiling.
// Use New with functional options instead.
type Options struct {
	// Scale is the workload size (default Medium, the figure-quality size).
	Scale kernels.Scale
	// Benchmarks restricts the suite; nil means all.
	Benchmarks []string
	// Progress, when non-nil, receives one line per simulation run.
	Progress io.Writer
	// Base overrides the hardware configuration the experiment configs are
	// derived from (zero value means sim.DefaultConfig).
	Base *sim.Config
}

// NewRunner builds a Runner from legacy Options. It preserves the old
// sequential behaviour exactly (parallelism 1, deterministic progress-line
// order) and never cancels. An invalid Base config is reported by the first
// method call instead of here (the old signature has no error to return).
//
// Deprecated: use New with functional options.
func NewRunner(opts Options) *Runner {
	o := []Option{WithScale(opts.Scale), WithParallelism(1)}
	if opts.Benchmarks != nil {
		o = append(o, WithBenchmarks(opts.Benchmarks...))
	}
	if opts.Progress != nil {
		o = append(o, WithProgressWriter(opts.Progress))
	}
	if opts.Base != nil {
		o = append(o, WithBaseConfig(*opts.Base))
	}
	return build(context.Background(), o...)
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// config is the resolved runner configuration functional options build up.
type config struct {
	scale       kernels.Scale
	benchmarks  []string
	parallelism int // 0 means GOMAXPROCS
	progress    ProgressFunc
	base        *sim.Config
}

// Option configures a Runner built with New.
type Option func(*config)

// WithScale selects the workload size (default Medium, the figure-quality
// size).
func WithScale(s kernels.Scale) Option {
	return func(c *config) { c.scale = s }
}

// WithBenchmarks restricts the suite to the named benchmarks. Calling it
// with no arguments restores the full suite.
func WithBenchmarks(names ...string) Option {
	return func(c *config) {
		if len(names) == 0 {
			c.benchmarks = nil
			return
		}
		c.benchmarks = append([]string(nil), names...)
	}
}

// WithParallelism bounds how many simulations run concurrently. n <= 0 (and
// the default) means GOMAXPROCS. Results are deterministic at every
// parallelism level: tables come out byte-identical to a sequential run.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithProgress installs a structured progress callback. Events are
// serialized by the engine, so fn needs no locking. See Event.
func WithProgress(fn ProgressFunc) Option {
	return func(c *config) { c.progress = fn }
}

// WithProgressWriter adapts the structured event stream to the legacy
// line-per-simulation text format on w ("ran <bench> [<config>]
// cycles=<n>"). Cache hits are not logged, matching the old behaviour.
func WithProgressWriter(w io.Writer) Option {
	return WithProgress(func(ev Event) {
		if ev.Kind == EventJobDone && ev.Err == nil {
			fmt.Fprintf(w, "ran %-12s [%s] cycles=%d\n", ev.Benchmark, ev.Config, ev.Cycles)
		}
	})
}

// WithBaseConfig overrides the hardware configuration the experiment
// configurations are derived from (default sim.DefaultConfig). Compression
// mode, gating, scheduler, latencies and characterization are overridden
// per experiment on top of this base.
func WithBaseConfig(base sim.Config) Option {
	return func(c *config) {
		b := base
		c.base = &b
	}
}

// New builds an experiment Runner. ctx governs every simulation the runner
// schedules: canceling it makes in-flight and future runs return an error
// wrapping ctx.Err() promptly (the simulator polls the context inside its
// cycle loop). A nil ctx means context.Background().
//
//	r := experiments.New(ctx,
//	    experiments.WithScale(kernels.Medium),
//	    experiments.WithParallelism(runtime.GOMAXPROCS(0)),
//	    experiments.WithProgress(func(ev experiments.Event) { ... }))
//	tables, err := r.RunAll()
func New(ctx context.Context, opts ...Option) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	var c config
	for _, o := range opts {
		o(&c)
	}
	return &Runner{
		cfg: c,
		eng: newEngine(ctx, c.parallelism, c.scale, c.progress),
	}
}

// Options selects what the legacy runner simulates.
//
// Deprecated: Options exists only so pre-engine callers keep compiling.
// Use New with functional options instead.
type Options struct {
	// Scale is the workload size (default Medium, the figure-quality size).
	Scale kernels.Scale
	// Benchmarks restricts the suite; nil means all.
	Benchmarks []string
	// Progress, when non-nil, receives one line per simulation run.
	Progress io.Writer
	// Base overrides the hardware configuration the experiment configs are
	// derived from (zero value means sim.DefaultConfig).
	Base *sim.Config
}

// NewRunner builds a Runner from legacy Options. It preserves the old
// sequential behaviour exactly (parallelism 1, deterministic progress-line
// order) and never cancels.
//
// Deprecated: use New with functional options.
func NewRunner(opts Options) *Runner {
	o := []Option{WithScale(opts.Scale), WithParallelism(1)}
	if opts.Benchmarks != nil {
		o = append(o, WithBenchmarks(opts.Benchmarks...))
	}
	if opts.Progress != nil {
		o = append(o, WithProgressWriter(opts.Progress))
	}
	if opts.Base != nil {
		o = append(o, WithBaseConfig(*opts.Base))
	}
	return New(context.Background(), o...)
}

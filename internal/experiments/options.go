package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// config is the resolved runner configuration functional options build up.
type config struct {
	scale       kernels.Scale
	benchmarks  []string
	parallelism int // 0 means GOMAXPROCS
	smParallel  int // 0 means auto: GOMAXPROCS / parallelism
	progress    ProgressFunc
	base        *sim.Config
	retries     int
	backoff     time.Duration
	watchdog    time.Duration
	executeOnly bool // disable the record/replay fast path
}

// Option configures a Runner built with New.
type Option func(*config)

// WithScale selects the workload size (default Medium, the figure-quality
// size).
func WithScale(s kernels.Scale) Option {
	return func(c *config) { c.scale = s }
}

// WithBenchmarks restricts the suite to the named benchmarks. Calling it
// with no arguments restores the full suite.
func WithBenchmarks(names ...string) Option {
	return func(c *config) {
		if len(names) == 0 {
			c.benchmarks = nil
			return
		}
		c.benchmarks = append([]string(nil), names...)
	}
}

// WithParallelism bounds how many simulations run concurrently. n <= 0 (and
// the default) means GOMAXPROCS. Results are deterministic at every
// parallelism level: tables come out byte-identical to a sequential run.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithSMParallel shards every simulation's per-cycle SM loop across n
// worker goroutines (sim.Config.SMParallel), for configurations that do
// not pin a shard count themselves. n <= 0 (the default) means auto:
// divide the machine's cores across the runner's worker slots, so
// job-level and intra-simulation parallelism never oversubscribe. Results
// are byte-identical at every shard count.
func WithSMParallel(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.smParallel = n
	}
}

// WithProgress installs a structured progress callback. Events are
// serialized by the engine, so fn needs no locking. See Event.
func WithProgress(fn ProgressFunc) Option {
	return func(c *config) { c.progress = fn }
}

// WithProgressWriter adapts the structured event stream to the legacy
// line-per-simulation text format on w ("ran <bench> [<config>]
// cycles=<n>"). Cache hits are not logged, matching the old behaviour.
func WithProgressWriter(w io.Writer) Option {
	return WithProgress(func(ev Event) {
		if ev.Kind == EventJobDone && ev.Err == nil {
			fmt.Fprintf(w, "ran %-12s [%s] cycles=%d\n", ev.Benchmark, ev.Config, ev.Cycles)
		}
	})
}

// WithRetries grants every job n extra attempts (default 0) after a
// transient failure — one wrapped in TransientError, or a watchdog stall.
// Deterministic failures (panics, wrong output, invalid configs) are never
// retried.
func WithRetries(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.retries = n
	}
}

// WithRetryBackoff sets the delay before the first retry (default 100ms);
// each subsequent retry doubles it.
func WithRetryBackoff(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// WithWatchdog arms the per-job progress watchdog: a simulation that issues
// no new instructions for a full window d is canceled and fails with a
// *StallError (which is transient, so retries apply). d <= 0 (the default)
// disables the watchdog. Note the trigger is issued instructions, not
// cycles: a deadlocked kernel spinning at a barrier burns cycles but issues
// nothing, which is exactly what the watchdog exists to catch.
func WithWatchdog(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			d = 0
		}
		c.watchdog = d
	}
}

// WithRecordReplay toggles the execute-once / replay-N strategy (default
// on): the first simulation of each benchmark records its functional
// execution as a warped.trace/v1 launch, and every other configuration
// replays that trace into the timing back-end — byte-identical results at a
// fraction of the cost. Disabling it forces every job through full execute
// mode; fault-injection configurations and untraceable launches fall back
// to execute automatically either way.
func WithRecordReplay(on bool) Option {
	return func(c *config) { c.executeOnly = !on }
}

// WithBaseConfig overrides the hardware configuration the experiment
// configurations are derived from (default sim.DefaultConfig). Compression
// mode, gating, scheduler, latencies and characterization are overridden
// per experiment on top of this base.
func WithBaseConfig(base sim.Config) Option {
	return func(c *config) {
		b := base
		c.base = &b
	}
}

// New builds an experiment Runner, validating the base hardware
// configuration up front (a *sim.ConfigError describes the first invalid
// field). ctx governs every simulation the runner schedules: canceling it
// makes in-flight and future runs return an error wrapping ctx.Err()
// promptly (the simulator polls the context inside its cycle loop). A nil
// ctx means context.Background().
//
//	r, err := experiments.New(ctx,
//	    experiments.WithScale(kernels.Medium),
//	    experiments.WithParallelism(runtime.GOMAXPROCS(0)),
//	    experiments.WithProgress(func(ev experiments.Event) { ... }))
//	tables, err := r.RunAll()
func New(ctx context.Context, opts ...Option) (*Runner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var c config
	for _, o := range opts {
		o(&c)
	}
	eng := newEngine(ctx, c.parallelism, c.scale, c.progress)
	eng.smParallel = c.smParallel
	eng.retries = c.retries
	if c.backoff > 0 {
		eng.backoff = c.backoff
	}
	eng.watchdog = c.watchdog
	if !c.executeOnly {
		eng.enableRecordReplay()
	}
	r := &Runner{cfg: c, eng: eng}
	base := r.baseConfig()
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: invalid base config: %w", err)
	}
	return r, nil
}

package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// TestSchemesExhibits runs the cmp1-schemes family on the fast suite and
// checks shape and sanity: one column per registered scheme, every ratio
// >= 1 (no scheme can expand writes — every class uses at most the
// uncompressed bank count), and normalized energy/cycles in plausible
// ranges.
func TestSchemesExhibits(t *testing.T) {
	r := fastRunner(t)
	schemes := core.Schemes()

	ratio, err := r.Run("cmp1-schemes-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if len(ratio.Columns) != len(schemes) {
		t.Fatalf("ratio columns = %v, want one per scheme %v", ratio.Columns, schemes)
	}
	for i, s := range schemes {
		if ratio.Columns[i] != s {
			t.Fatalf("ratio column %d = %q, want %q", i, ratio.Columns[i], s)
		}
	}
	for _, row := range ratio.Rows {
		for i, v := range row.Values {
			if v < 1-1e-9 || v > 16 {
				t.Errorf("%s/%s: compression ratio %v out of range", row.Label, schemes[i], v)
			}
		}
	}

	en, err := r.Run("cmp1-schemes-energy")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range en.Rows {
		for i, v := range row.Values {
			if v <= 0 || v > 1.5 {
				t.Errorf("%s/%s: normalized energy %v out of range", row.Label, schemes[i], v)
			}
		}
	}

	ov, err := r.Run("cmp1-schemes-overhead")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ov.Rows {
		for i, v := range row.Values {
			if v < 0.9 || v > 2.0 {
				t.Errorf("%s/%s: normalized cycles %v out of range", row.Label, schemes[i], v)
			}
		}
	}
}

// schemeResults simulates the fast suite under one scheme and returns the
// per-benchmark warped.sim.result/v1 bytes.
func schemeResults(t *testing.T, r *Runner, scheme string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	if err := r.forEach(r.cfgScheme(scheme), func(b *kernels.Benchmark, res *sim.Result) error {
		bts, err := json.Marshal(res)
		if err != nil {
			return err
		}
		out[b.Name] = bts
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSchemesBackToBack runs two schemes through one engine in both orders:
// each scheme's results must be byte-identical regardless of which scheme
// ran (and recorded the shared trace) first. This is the regression guard
// for cross-scheme contamination through the record/replay trace cache, the
// memo cache and the per-warp encoding memo.
func TestSchemesBackToBack(t *testing.T) {
	r1 := fastRunner(t)
	bdi1 := schemeResults(t, r1, "bdi")
	fpc1 := schemeResults(t, r1, "fpc")

	r2 := fastRunner(t)
	fpc2 := schemeResults(t, r2, "fpc")
	bdi2 := schemeResults(t, r2, "bdi")

	for name, want := range bdi1 {
		if !bytes.Equal(want, bdi2[name]) {
			t.Errorf("%s: bdi result depends on scheme run order", name)
		}
	}
	for name, want := range fpc1 {
		if !bytes.Equal(want, fpc2[name]) {
			t.Errorf("%s: fpc result depends on scheme run order", name)
		}
	}
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/regfile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/valueprof"
)

// Table1 regenerates paper Table 1: the compressed size and register bank
// cost of every <base,delta> combination, and whether warped-compression
// uses it.
func (r *Runner) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Possible combinations of chunk size",
		Columns: []string{"base(B)", "delta(B)", "comp(B)", "banks", "used"},
		Notes:   "comp(B) = L_base + L_delta*(L_input/L_base - 1) for a 128-byte warp register (paper eq. 1)",
	}
	used := map[core.Params]bool{{Base: 4, Delta: 0}: true, {Base: 4, Delta: 1}: true, {Base: 4, Delta: 2}: true}
	for _, p := range core.AllParams {
		u := 0.0
		if used[p] {
			u = 1
		}
		t.AddRow(p.String(), float64(p.Base), float64(p.Delta), float64(p.CompressedSize()), float64(p.Banks()), u)
	}
	return t, nil
}

// Table2 prints the simulated microarchitecture (paper Table 2).
func (r *Runner) Table2() (*Table, error) {
	c := r.baseConfig()
	t := &Table{
		ID:      "table2",
		Title:   "GPU microarchitectural parameters",
		Columns: []string{"value"},
		Notes:   fmt.Sprintf("clock 1.4 GHz; warp scheduling policy: %s (Greedy-Then-Oldest default)", c.Scheduler),
	}
	t.AddRow("SMs / GPU", float64(c.NumSMs))
	t.AddRow("Warp Schedulers / SM", float64(c.SchedulersPerSM))
	t.AddRow("SIMT lane width", 32)
	t.AddRow("Max # Warps / SM", float64(c.MaxWarpsPerSM))
	t.AddRow("Max # Threads / SM", float64(c.MaxWarpsPerSM*32))
	t.AddRow("Register File Size (KB)", 128)
	t.AddRow("Max Registers / SM", float64(regfile.Capacity*32))
	t.AddRow("# Register Banks", regfile.NumBanks)
	t.AddRow("Bit Width / Bank", 128)
	t.AddRow("# Entries / Bank", regfile.EntriesPerBank)
	t.AddRow("# Compressors", float64(c.Compressors))
	t.AddRow("# Decompressors", float64(c.Decompressors))
	t.AddRow("Compression Latency (cycles)", float64(c.CompressLatency))
	t.AddRow("Decompression Latency (cycles)", float64(c.DecompressLatency))
	t.AddRow("Bank Wakeup Latency (cycles)", float64(c.BankWakeupLatency))
	return t, nil
}

// Table3 prints the energy model constants (paper Table 3).
func (r *Runner) Table3() (*Table, error) {
	p := energy.DefaultParams()
	t := &Table{
		ID:      "table3",
		Title:   "Estimated energy and power values (@45nm)",
		Columns: []string{"value"},
		Notes:   fmt.Sprintf("derived wire energy per 128-bit beat at 50%% activity: %.1f pJ/mm (paper: 9.6)", p.WireBeatPJ()),
	}
	t.AddRow("Operating Voltage (V)", p.VoltageV)
	t.AddRow("Wire Capacitance (fF/mm)", p.WireCapFFPerMM)
	t.AddRow("Access energy/bank (pJ)", p.BankAccessPJ)
	t.AddRow("Leakage power/bank (mW)", p.BankLeakMW)
	t.AddRow("Compression unit energy/activation (pJ)", p.CompActPJ)
	t.AddRow("Compression unit leakage power (mW)", p.CompLeakMW)
	t.AddRow("Decompression unit energy/activation (pJ)", p.DecompActPJ)
	t.AddRow("Decompression unit leakage power (mW)", p.DecompLeakMW)
	return t, nil
}

// Fig2 characterizes register writes into the four value-similarity bins,
// split by divergence phase (paper Fig 2).
func (r *Runner) Fig2() (*Table, error) {
	t := &Table{
		ID:    "fig2",
		Title: "Characterization of register values",
		Columns: []string{
			"nd-zero", "nd-128", "nd-32K", "nd-random",
			"dv-zero", "dv-128", "dv-32K", "dv-random",
		},
		Notes: "fraction of register writes per bin; paper: ~79% of non-divergent writes are not random",
	}
	err := r.forEach(r.cfgCharacterize(), func(b *kernels.Benchmark, res *sim.Result) error {
		nd := res.Stats.WriteBinFractions(stats.NonDivergent)
		dv := res.Stats.WriteBinFractions(stats.Divergent)
		vals := []float64{nd[0], nd[1], nd[2], nd[3], dv[0], dv[1], dv[2], dv[3]}
		if res.Stats.RegWrites[stats.Divergent] == 0 {
			for i := 4; i < 8; i++ {
				vals[i] = math.NaN()
			}
		}
		t.AddRow(b.Name, vals...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig3 is the fraction of warp instructions executed without divergence.
func (r *Runner) Fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Ratio of non-diverged warp instructions",
		Columns: []string{"non-divergent"},
		Notes:   "paper average: 0.79",
	}
	err := r.forEach(r.cfgCharacterize(), func(b *kernels.Benchmark, res *sim.Result) error {
		t.AddRow(b.Name, res.Stats.NonDivergentRatio())
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig5 shows which <base,delta> pair the full-BDI explorer picks per write.
func (r *Runner) Fig5() (*Table, error) {
	cols := make([]string, stats.NumExplorerChoices)
	for i := range cols {
		cols[i] = valueprof.ChoiceName(i)
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Breakdown of <base,delta> values to achieve best compression ratio",
		Columns: cols,
		Notes:   "fraction of register writes; paper: 8-byte bases are rarely selected, motivating the <4,*> fixed choices",
	}
	err := r.forEach(r.cfgCharacterize(), func(b *kernels.Benchmark, res *sim.Result) error {
		var total uint64
		for _, c := range res.Stats.BDIChoices {
			total += c
		}
		vals := make([]float64, len(cols))
		for i, c := range res.Stats.BDIChoices {
			if total > 0 {
				vals[i] = float64(c) / float64(total)
			}
		}
		t.AddRow(b.Name, vals...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig8 is the achievable compression ratio by divergence phase.
func (r *Runner) Fig8() (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Compression ratio",
		Columns: []string{"non-divergent", "divergent"},
		Notes:   "original banks / compressed banks per write; paper averages: 2.5 non-divergent, 1.3 divergent",
	}
	err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		dv := res.Stats.CompressionRatio(stats.Divergent)
		if res.Stats.RegWrites[stats.Divergent] == 0 {
			dv = math.NaN()
		}
		t.AddRow(b.Name, res.Stats.CompressionRatio(stats.NonDivergent), dv)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig9 is the headline result: register file energy with and without
// warped-compression, broken down the way the paper stacks it. All values
// are normalized to the baseline total.
func (r *Runner) Fig9() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Register file energy consumption",
		Columns: []string{"base-leak", "base-dyn", "wc-leak", "wc-dyn", "wc-comp", "wc-decomp", "wc-total"},
		Notes:   "normalized to baseline total; paper: 25% average total reduction (35% dynamic, 10% leakage)",
	}
	params := energy.DefaultParams()
	base := map[string]energy.Breakdown{}
	err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = energy.Compute(params, res.Energy)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		wc := energy.Compute(params, res.Energy)
		bl := base[b.Name]
		n := bl.TotalPJ()
		t.AddRow(b.Name,
			bl.LeakagePJ/n, bl.DynamicPJ/n,
			wc.LeakagePJ/n, wc.DynamicPJ/n, wc.CompressPJ/n, wc.DecompressPJ/n,
			wc.TotalPJ()/n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig10 is the fraction of cycles each register bank spends power-gated,
// averaged over the benchmark suite (rows are banks, as in the paper).
func (r *Runner) Fig10() (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Portion of power-gated cycles for each bank",
		Columns: []string{"gated-fraction"},
		Notes:   "suite average per bank; banks are 4 clusters of 8 — gating grows toward higher banks within a cluster (compressed data packs into the lowest banks)",
	}
	var gated [regfile.NumBanks]float64
	n := 0
	err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		for i := 0; i < regfile.NumBanks; i++ {
			if res.Stats.RF.Cycles > 0 {
				gated[i] += float64(res.Stats.RF.PerBankGatedCycles[i]) / float64(res.Stats.RF.Cycles)
			}
		}
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < regfile.NumBanks; i++ {
		t.AddRow(fmt.Sprintf("bank%02d", i), gated[i]/float64(n))
	}
	return t, nil
}

// Fig11 is the dummy MOV instruction overhead.
func (r *Runner) Fig11() (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Portion of dummy MOV instructions",
		Columns: []string{"mov-fraction"},
		Notes:   "injected decompress-MOVs / all instructions; paper: below 2% everywhere",
	}
	err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		t.AddRow(b.Name, res.Stats.DummyMovRatio())
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig12 is the compressed-register census by phase.
func (r *Runner) Fig12() (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "Portion of compressed registers",
		Columns: []string{"non-divergent", "divergent"},
		Notes:   "average fraction of written registers held compressed, sampled at writes; divergent column is n/a for never-diverging benchmarks (paper marks them N/A)",
	}
	err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		nd, ok1 := res.Stats.CompressedRegFraction(stats.NonDivergent)
		dv, ok2 := res.Stats.CompressedRegFraction(stats.Divergent)
		if !ok1 {
			nd = math.NaN()
		}
		if !ok2 {
			dv = math.NaN()
		}
		t.AddRow(b.Name, nd, dv)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig13 is the execution time of warped-compression relative to baseline.
func (r *Runner) Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Impact on execution time",
		Columns: []string{"normalized-cycles"},
		Notes:   "warped-compression cycles / baseline cycles; paper average: 1.001",
	}
	base := map[string]uint64{}
	err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = res.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		t.AddRow(b.Name, float64(res.Cycles)/float64(base[b.Name]))
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddAverage()
	return t, nil
}

// Fig14 compares the energy reduction under GTO and LRR scheduling.
func (r *Runner) Fig14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Energy reduction: GTO and LRR warp schedulers",
		Columns: []string{"gto", "lrr"},
		Notes:   "warped-compression energy / same-scheduler baseline energy; paper: 25% (GTO) vs 26% (LRR) savings",
	}
	params := energy.DefaultParams()
	ratio := func(policy string) (map[string]float64, error) {
		base := map[string]float64{}
		if err := r.forEach(r.cfgScheduler(policy, false), func(b *kernels.Benchmark, res *sim.Result) error {
			base[b.Name] = energy.Compute(params, res.Energy).TotalPJ()
			return nil
		}); err != nil {
			return nil, err
		}
		out := map[string]float64{}
		if err := r.forEach(r.cfgScheduler(policy, true), func(b *kernels.Benchmark, res *sim.Result) error {
			out[b.Name] = energy.Compute(params, res.Energy).TotalPJ() / base[b.Name]
			return nil
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	gto, err := ratio("gto")
	if err != nil {
		return nil, err
	}
	lrr, err := ratio("lrr")
	if err != nil {
		return nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, gto[b.Name], lrr[b.Name])
	}
	t.AddAverage()
	return t, nil
}

// compressionModes are the Fig 15/16 design-space policies in paper order.
var compressionModes = []struct {
	col  string
	mode core.Mode
}{
	{"<4,0>", core.ModeOnly40},
	{"<4,1>", core.ModeOnly41},
	{"<4,2>", core.ModeOnly42},
	{"warped", core.ModeWarped},
}

// Fig15 is the compression ratio achieved when restricting the compressor
// to a single parameter choice.
func (r *Runner) Fig15() (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Compression ratio for various compression parameters",
		Columns: []string{"<4,0>", "<4,1>", "<4,2>", "warped"},
		Notes:   "overall (both phases); paper: <4,0>-only (scalarization) is ~30% below warped-compression",
	}
	rows := map[string][]float64{}
	for i, mc := range compressionModes {
		err := r.forEach(r.cfgMode(mc.mode), func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(compressionModes))
			}
			s := res.Stats
			orig := s.WriteOrigBanks[0] + s.WriteOrigBanks[1]
			comp := s.WriteCompBanks[0] + s.WriteCompBanks[1]
			ratio := 1.0
			if comp > 0 {
				ratio = float64(orig) / float64(comp)
			}
			rows[b.Name][i] = ratio
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

// Fig16 is the register file energy under each single-choice policy.
func (r *Runner) Fig16() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Energy consumption for various compression parameters",
		Columns: []string{"<4,0>", "<4,1>", "<4,2>", "warped"},
		Notes:   "normalized to no-compression baseline",
	}
	params := energy.DefaultParams()
	base := map[string]float64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = energy.Compute(params, res.Energy).TotalPJ()
		return nil
	}); err != nil {
		return nil, err
	}
	rows := map[string][]float64{}
	for i, mc := range compressionModes {
		err := r.forEach(r.cfgMode(mc.mode), func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(compressionModes))
			}
			rows[b.Name][i] = energy.Compute(params, res.Energy).TotalPJ() / base[b.Name]
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

// energySweep renders one design-space energy figure: warped-compression
// energy normalized to baseline while varying one energy.Params knob in both.
func (r *Runner) energySweep(id, title, notes string, cols []string, variants []energy.Params) (*Table, error) {
	t := &Table{ID: id, Title: title, Columns: cols, Notes: notes}
	type pair struct{ base, wc energy.Events }
	ev := map[string]*pair{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		ev[b.Name] = &pair{base: res.Energy}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := r.forEach(r.cfgWarped(), func(b *kernels.Benchmark, res *sim.Result) error {
		ev[b.Name].wc = res.Energy
		return nil
	}); err != nil {
		return nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		p := ev[b.Name]
		vals := make([]float64, len(variants))
		for i, params := range variants {
			vals[i] = energy.Compute(params, p.wc).TotalPJ() / energy.Compute(params, p.base).TotalPJ()
		}
		t.AddRow(b.Name, vals...)
	}
	t.AddAverage()
	return t, nil
}

// Fig17 scales compressor/decompressor activation energy (pessimistic view).
func (r *Runner) Fig17() (*Table, error) {
	var variants []energy.Params
	cols := []string{"1.0x", "1.5x", "2.0x", "2.5x"}
	for _, k := range []float64{1, 1.5, 2, 2.5} {
		p := energy.DefaultParams()
		p.UnitEnergyScale = k
		variants = append(variants, p)
	}
	return r.energySweep("fig17",
		"Energy consumption for various compression/decompression unit activation energy",
		"normalized to baseline; paper: still 14% savings at 2.5x", cols, variants)
}

// Fig18 scales register bank access energy (optimistic view).
func (r *Runner) Fig18() (*Table, error) {
	var variants []energy.Params
	cols := []string{"1.0x", "1.5x", "2.0x", "2.5x"}
	for _, k := range []float64{1, 1.5, 2, 2.5} {
		p := energy.DefaultParams()
		p.BankAccessScale = k
		variants = append(variants, p)
	}
	return r.energySweep("fig18",
		"Energy consumption for various per-bank access energy",
		"normalized to baseline; paper: 35% savings at 2.5x", cols, variants)
}

// Fig19 sweeps the wire activity factor.
func (r *Runner) Fig19() (*Table, error) {
	var variants []energy.Params
	cols := []string{"0%", "25%", "50%", "75%", "100%"}
	for _, k := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := energy.DefaultParams()
		p.WireActivity = k
		variants = append(variants, p)
	}
	return r.energySweep("fig19",
		"Impact of wire activity",
		"normalized to baseline at the same activity; paper: 31% savings at 100% activity", cols, variants)
}

// latencySweep renders Fig 20/21: execution time normalized to baseline for
// several compression or decompression latencies.
func (r *Runner) latencySweep(id, title string, cols []string, cfgs []sim.Config) (*Table, error) {
	t := &Table{
		ID: id, Title: title, Columns: cols,
		Notes: "cycles / no-compression baseline; paper: worst case +14% at 8-cycle latency",
	}
	base := map[string]uint64{}
	if err := r.forEach(r.cfgBaseline(), func(b *kernels.Benchmark, res *sim.Result) error {
		base[b.Name] = res.Cycles
		return nil
	}); err != nil {
		return nil, err
	}
	rows := map[string][]float64{}
	for i, c := range cfgs {
		err := r.forEach(c, func(b *kernels.Benchmark, res *sim.Result) error {
			if rows[b.Name] == nil {
				rows[b.Name] = make([]float64, len(cfgs))
			}
			rows[b.Name][i] = float64(res.Cycles) / float64(base[b.Name])
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		t.AddRow(b.Name, rows[b.Name]...)
	}
	t.AddAverage()
	return t, nil
}

// Fig20 sweeps compression latency.
func (r *Runner) Fig20() (*Table, error) {
	return r.latencySweep("fig20", "Execution time variation with increased compression latency",
		[]string{"2cy", "4cy", "8cy"},
		[]sim.Config{r.cfgCompLatency(2), r.cfgCompLatency(4), r.cfgCompLatency(8)})
}

// Fig21 sweeps decompression latency.
func (r *Runner) Fig21() (*Table, error) {
	return r.latencySweep("fig21", "Execution time variation with increased decompression latency",
		[]string{"2cy", "4cy", "8cy"},
		[]sim.Config{r.cfgDecompLatency(2), r.cfgDecompLatency(4), r.cfgDecompLatency(8)})
}

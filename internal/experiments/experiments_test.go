package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// fastOpts runs three representative benchmarks (uniform, divergent,
// best-case) at small scale on a shrunken GPU.
func fastOpts() []Option {
	base := sim.DefaultConfig()
	base.NumSMs = 4
	return []Option{
		WithScale(kernels.Small),
		WithBenchmarks("bfs", "lib", "pathfinder"),
		WithBaseConfig(base),
	}
}

// fastRunner builds a Runner from fastOpts plus any extras.
func fastRunner(t *testing.T, extra ...Option) *Runner {
	t.Helper()
	return mustNew(t, context.Background(), append(fastOpts(), extra...)...)
}

func TestIDsCoverEveryPaperExhibit(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "table3",
		"fig2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"abl1-divergence", "abl2-gating", "abl3-units", "abl4-rfc", "abl5-drowsy",
		"flt1-faults",
		"cmp1-schemes-ratio", "cmp1-schemes-energy", "cmp1-schemes-overhead",
		"gemm1-tiling-ratio", "gemm1-tiling-energy", "gemm1-tiling-time", "gemm1-tiling-shared"}
	if len(ids) != len(want) {
		t.Fatalf("%d exhibits, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("exhibit %d = %s, want %s", i, ids[i], id)
		}
		if _, ok := Title(id); !ok {
			t.Fatalf("no title for %s", id)
		}
	}
	if _, ok := Title("fig99"); ok {
		t.Fatal("bogus exhibit has a title")
	}
}

func TestStaticTables(t *testing.T) {
	r := fastRunner(t)
	t1, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 9 {
		t.Fatalf("table1 rows %d, want 9 (Table 1)", len(t1.Rows))
	}
	// Spot-check the <4,1> row: 35 bytes, 3 banks, used.
	for _, row := range t1.Rows {
		if row.Label == "<4,1>" {
			if row.Values[2] != 35 || row.Values[3] != 3 || row.Values[4] != 1 {
				t.Fatalf("<4,1> row: %v", row.Values)
			}
		}
	}
	for _, id := range []string{"table2", "table3"} {
		tab, err := r.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s empty", id)
		}
	}
}

func TestCharacterizationFigures(t *testing.T) {
	r := fastRunner(t)
	f2, err := r.Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	// Bin fractions of each phase must sum to ~1 where present.
	for _, row := range f2.Rows {
		sum := 0.0
		for _, v := range row.Values[:4] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: non-divergent bins sum to %v", row.Label, sum)
		}
	}
	f3, err := r.Run("fig3")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f3.Rows {
		if row.Values[0] < 0 || row.Values[0] > 1 {
			t.Fatalf("%s: non-divergent ratio %v out of range", row.Label, row.Values[0])
		}
	}
	// lib must be fully convergent; bfs must diverge.
	for _, row := range f3.Rows {
		switch row.Label {
		case "lib":
			if row.Values[0] != 1 {
				t.Fatalf("lib diverged: %v", row.Values[0])
			}
		case "bfs":
			if row.Values[0] >= 1 {
				t.Fatal("bfs did not diverge")
			}
		}
	}
	f5, err := r.Run("fig5")
	if err != nil {
		t.Fatal(err)
	}
	// lib is constant-input: the explorer must overwhelmingly pick <4,0>.
	for _, row := range f5.Rows {
		if row.Label == "lib" && row.Values[0] < 0.5 {
			t.Fatalf("lib <4,0> share %v, want > 0.5", row.Values[0])
		}
	}
}

func TestHeadlineFigures(t *testing.T) {
	r := fastRunner(t)
	f8, err := r.Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f8.Rows {
		if row.Values[0] < 1 {
			t.Fatalf("%s: compression ratio %v below 1", row.Label, row.Values[0])
		}
		if row.Label == "lib" && row.Values[0] < 4 {
			t.Fatalf("lib ratio %v, want near 8", row.Values[0])
		}
	}
	f9, err := r.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f9.Rows {
		total := row.Values[6]
		if total <= 0 || total >= 1.05 {
			t.Fatalf("%s: normalized WC energy %v", row.Label, total)
		}
		if row.Label == "AVG" && total > 0.95 {
			t.Fatalf("average energy saving too small: %v", total)
		}
	}
	f13, err := r.Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f13.Rows {
		if row.Values[0] < 0.9 || row.Values[0] > 1.5 {
			t.Fatalf("%s: normalized cycles %v unreasonable", row.Label, row.Values[0])
		}
	}
}

func TestDesignSpaceFigures(t *testing.T) {
	r := fastRunner(t)
	f15, err := r.Run("fig15")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f15.Rows {
		only40, warped := row.Values[0], row.Values[3]
		if only40 > warped+1e-9 {
			t.Fatalf("%s: <4,0>-only ratio %v beats warped %v", row.Label, only40, warped)
		}
	}
	f19, err := r.Run("fig19")
	if err != nil {
		t.Fatal(err)
	}
	// Higher wire activity favours compression: the normalized energy at
	// 100% activity must be <= the value at 0% activity (more savings).
	for _, row := range f19.Rows {
		if row.Label != "AVG" {
			continue
		}
		if row.Values[4] > row.Values[0]+1e-9 {
			t.Fatalf("wire sweep not monotone: %v", row.Values)
		}
	}
	f20, err := r.Run("fig20")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f20.Rows {
		if row.Label != "AVG" {
			continue
		}
		if row.Values[2] < row.Values[0]-1e-9 {
			t.Fatalf("8-cycle compression latency should not be faster: %v", row.Values)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	r := fastRunner(t)
	if _, err := r.Run("fig99"); err == nil {
		t.Fatal("unknown exhibit accepted")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	r := fastRunner(t, WithBenchmarks("nope"))
	if _, err := r.Run("fig3"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMemoization(t *testing.T) {
	var log strings.Builder
	r := fastRunner(t, WithProgressWriter(&log))
	if _, err := r.Run("fig8"); err != nil {
		t.Fatal(err)
	}
	runs1 := strings.Count(log.String(), "ran ")
	if _, err := r.Run("fig11"); err != nil { // same warped config
		t.Fatal(err)
	}
	if runs2 := strings.Count(log.String(), "ran "); runs2 != runs1 {
		t.Fatalf("fig11 re-simulated despite cache: %d -> %d runs", runs1, runs2)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("row1", 1.5, math.NaN())
	tab.AddRow("row2", 2, 4)
	tab.AddAverage()
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "row1", "n/a", "AVG"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// The AVG of column b must ignore the NaN: only row2 counts.
	if !strings.Contains(out, "4") {
		t.Fatalf("average wrong:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("row1", 1.5, math.NaN())
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "benchmark,a,b\nrow1,1.5,\n"
	if sb.String() != want {
		t.Fatalf("csv output %q, want %q", sb.String(), want)
	}
}

// TestAllExhibitsRunAndRender regenerates every exhibit (paper figures,
// tables and ablations) on a two-benchmark small-scale suite and renders
// each to text and CSV. This is the whole-harness smoke test.
func TestAllExhibitsRunAndRender(t *testing.T) {
	base := sim.DefaultConfig()
	base.NumSMs = 4
	r := mustNew(t, context.Background(),
		WithScale(kernels.Small),
		WithBenchmarks("bfs", "lib"),
		WithBaseConfig(base))
	tables, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("%d tables, want %d", len(tables), len(IDs()))
	}
	for _, tab := range tables {
		if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", tab.ID)
		}
		var text, csv strings.Builder
		if err := tab.Render(&text); err != nil {
			t.Fatalf("%s: render: %v", tab.ID, err)
		}
		if err := tab.RenderCSV(&csv); err != nil {
			t.Fatalf("%s: csv: %v", tab.ID, err)
		}
		if !strings.Contains(text.String(), tab.ID) {
			t.Fatalf("%s: text output missing id", tab.ID)
		}
	}
}

// TestAblationSanity checks the ablation stories hold even at small scale:
// gating-off energy is never lower than gating-on, and the 1-compressor
// configuration is never faster than the default.
func TestAblationSanity(t *testing.T) {
	r := fastRunner(t)
	g, err := r.Run("abl2-gating")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range g.Rows {
		if row.Values[1] < row.Values[0]-1e-9 {
			t.Fatalf("%s: ungated energy %v below gated %v", row.Label, row.Values[1], row.Values[0])
		}
	}
	u, err := r.Run("abl3-units")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range u.Rows {
		if row.Label == "AVG" && row.Values[0] < row.Values[1]-1e-9 {
			t.Fatalf("halved unit pools should not be faster: %v", row.Values)
		}
	}
	rfc, err := r.Run("abl4-rfc")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rfc.Rows {
		if row.Values[2] < 0 || row.Values[2] > 1 {
			t.Fatalf("%s: RFC hit rate %v out of range", row.Label, row.Values[2])
		}
	}
}

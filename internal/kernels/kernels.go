// Package kernels provides the 26 benchmark workloads the evaluation runs:
// hand-written ISA ports of the Rodinia / Parboil / GPGPU-Sim benchmarks the
// paper uses plus the gemm tiling family, each with an input generator
// reproducing the original's register-value character (thread-index-derived
// values, narrow-dynamic-range inputs, and its divergence pattern) and a
// host-side reference implementation that validates the simulated output.
package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Scale selects the problem size: Small keeps unit tests fast, Medium is the
// default for figure regeneration, Large stresses occupancy.
type Scale int

const (
	Small Scale = iota
	Medium
	Large
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// pick returns the size for the given scale from a (small, medium, large)
// triple.
func (s Scale) pick(small, medium, large int) int {
	switch s {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return large
	}
}

// Instance is one ready-to-run launch: the kernel, geometry, parameters and
// an output validator.
type Instance struct {
	Launch isa.Launch
	// Check validates device memory against the host reference after the
	// launch completes.
	Check func(m *mem.Global) error
}

// Benchmark is one registered workload.
type Benchmark struct {
	Name        string
	Suite       string // "rodinia", "parboil", "gpgpu-sim" or "tiling"
	Description string
	// Build generates inputs in device memory and returns the launch.
	Build func(m *mem.Global, s Scale) (*Instance, error)
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// Register adds a benchmark to the global registry. The built-in suite
// registers itself at init; this export exists for tests and experiment
// harnesses that need synthetic workloads (e.g. deliberately panicking or
// stalling stubs for engine-robustness tests). Duplicate names panic: every
// result table and memo key is keyed by name.
func Register(b *Benchmark) {
	if b == nil || b.Name == "" || b.Build == nil {
		panic("kernels: Register needs a named benchmark with a Build func")
	}
	if _, ok := ByName(b.Name); ok {
		panic(fmt.Sprintf("kernels: benchmark %q already registered", b.Name))
	}
	register(b)
}

// All returns every benchmark, sorted by name (the order figures use).
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds one benchmark.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// Names lists every benchmark name in sorted order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// mustKernel assembles a built-in kernel; sources are static so failure is a
// programming error.
func mustKernel(name, src string) *isa.Kernel {
	return asm.MustAssemble(name, src)
}

// rng returns the deterministic generator all input builders share, so runs
// are exactly reproducible.
func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// checkInt32 compares device int32 output against a host reference.
func checkInt32(m *mem.Global, addr uint32, want []int32, label string) error {
	got, err := m.ReadInt32(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s[%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
	return nil
}

// checkFloat32 compares device float32 output bit-exactly (the host
// references mirror the ISA's float semantics operation for operation).
func checkFloat32(m *mem.Global, addr uint32, want []float32, label string) error {
	got, err := m.ReadFloat32(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
	return nil
}

// allocInt32 allocates and fills a device int32 array.
func allocInt32(m *mem.Global, vals []int32) (uint32, error) {
	addr, err := m.Alloc(4 * len(vals))
	if err != nil {
		return 0, err
	}
	return addr, m.WriteInt32(addr, vals)
}

// allocFloat32 allocates and fills a device float32 array.
func allocFloat32(m *mem.Global, vals []float32) (uint32, error) {
	addr, err := m.Alloc(4 * len(vals))
	if err != nil {
		return 0, err
	}
	return addr, m.WriteFloat32(addr, vals)
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// bfs is one level-expansion wave of breadth-first search over a CSR graph
// (Rodinia bfs). Frontier membership and per-node degree are data-dependent,
// which makes this the most divergent benchmark in the suite — the paper
// singles BFS out as one of the few workloads whose compressed-register
// share drops markedly during divergence.
//
// Params: %param0=rowptr %param1=colidx %param2=level %param3=numNodes
// %param4=currentLevel.
const bfsSrc = `
.kernel bfs
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // node id
	setp.ge p0, r1, %param3
@p0	bra Lend                         // tail threads: no node
	shl  r2, r1, 2
	add  r3, r2, %param2
	ld.global r4, [r3]               // level[node]
	setp.ne p1, r4, %param4
@p1	bra Lend                         // not in frontier
	add  r5, r2, %param0
	ld.global r6, [r5]               // rowptr[node]
	ld.global r7, [r5+4]             // rowptr[node+1]
	setp.ge p2, r6, r7
@p2	bra Lend                         // isolated node
Ledge:
	shl  r8, r6, 2
	add  r8, r8, %param1
	ld.global r9, [r8]               // neighbour
	shl  r10, r9, 2
	add  r10, r10, %param2
	ld.global r11, [r10]             // level[neighbour]
	setp.ne p3, r11, -1
@p3	bra Lnext
	add  r12, %param4, 1
	st.global [r10], r12             // claim neighbour for next level
Lnext:
	add  r6, r6, 1
	setp.lt p4, r6, r7
@p4	bra Ledge
Lend:
	exit
`

func init() {
	register(&Benchmark{
		Name:        "bfs",
		Suite:       "rodinia",
		Description: "one BFS frontier expansion over CSR graph; heavy data-dependent divergence",
		Build:       buildBFS,
	})
}

func buildBFS(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 144, 288)
	nodes := ctas * block

	r := rng(0xbf5)
	rowptr := make([]int32, nodes+1)
	var colidx []int32
	for n := 0; n < nodes; n++ {
		rowptr[n] = int32(len(colidx))
		deg := r.Intn(7) // 0..6 edges, some isolated nodes
		for e := 0; e < deg; e++ {
			colidx = append(colidx, int32(r.Intn(nodes)))
		}
	}
	rowptr[nodes] = int32(len(colidx))

	// Host BFS from node 0 to seed the level array at the current wave.
	const curLevel = 2
	level := make([]int32, nodes)
	for i := range level {
		level[i] = -1
	}
	frontier := []int32{0}
	level[0] = 0
	for d := int32(1); d <= curLevel && len(frontier) > 0; d++ {
		var next []int32
		for _, n := range frontier {
			for e := rowptr[n]; e < rowptr[n+1]; e++ {
				nb := colidx[e]
				if level[nb] == -1 {
					level[nb] = d
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	// Anything deeper than the current level stays undiscovered.
	for i := range level {
		if level[i] > curLevel {
			level[i] = -1
		}
	}

	// Reference: expand the curLevel frontier one wave.
	want := append([]int32(nil), level...)
	for n := 0; n < nodes; n++ {
		if level[n] != curLevel {
			continue
		}
		for e := rowptr[n]; e < rowptr[n+1]; e++ {
			if nb := colidx[e]; want[nb] == -1 {
				want[nb] = curLevel + 1
			}
		}
	}

	rowAddr, err := allocInt32(m, rowptr)
	if err != nil {
		return nil, err
	}
	if len(colidx) == 0 {
		colidx = []int32{0} // keep the allocation non-empty
	}
	colAddr, err := allocInt32(m, colidx)
	if err != nil {
		return nil, err
	}
	lvlAddr, err := allocInt32(m, level)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("bfs", bfsSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{rowAddr, colAddr, lvlAddr, uint32(nodes), uint32(curLevel)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, lvlAddr, want, "bfs.level")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// sad is Parboil's motion-estimation kernel: each thread accumulates the sum
// of absolute differences between a 16-pixel current block and the reference
// block at its candidate offset. Uniform 16-iteration loops over 8-bit pixel
// data — abs-difference results live in a very narrow range, prime <4,1>
// material.
//
// Params: %param0=cur %param1=ref %param2=out %param3=offset(words).
const sadSrc = `
.kernel sad
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // block index
	shl  r2, r1, 4                   // first pixel of the current block
	mov  r3, 0                       // acc
	mov  r4, 0                       // i
Lpix:
	add  r5, r2, r4                  // cur pixel index
	shl  r6, r5, 2
	add  r6, r6, %param0
	ld.global r7, [r6]               // cur pixel
	add  r8, r5, %param3             // ref pixel index (shifted block)
	shl  r9, r8, 2
	add  r9, r9, %param1
	ld.global r10, [r9]              // ref pixel
	sub  r11, r7, r10
	abs  r11, r11                    // |cur - ref|
	add  r3, r3, r11
	add  r4, r4, 1
	setp.lt p0, r4, 16
@p0	bra Lpix
	shl  r12, r1, 2
	add  r12, r12, %param2
	st.global [r12], r3
	exit
`

func init() {
	register(&Benchmark{
		Name:        "sad",
		Suite:       "parboil",
		Description: "sum of absolute differences over 16-pixel blocks; uniform loops, narrow 8-bit data",
		Build:       buildSAD,
	})
}

func buildSAD(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	const blockPixels = 16
	ctas := s.pick(4, 64, 128)
	blocks := ctas * block
	offset := 7 // candidate motion vector, in pixels

	r := rng(0x5ad)
	pixels := blocks*blockPixels + offset
	cur := make([]int32, pixels)
	ref := make([]int32, pixels)
	for i := range cur {
		cur[i] = int32(r.Intn(256))
		// The reference frame is the current frame plus small noise, as
		// between consecutive video frames.
		ref[i] = cur[i] + int32(r.Intn(17)-8)
		if ref[i] < 0 {
			ref[i] = 0
		}
		if ref[i] > 255 {
			ref[i] = 255
		}
	}

	want := make([]int32, blocks)
	for b := 0; b < blocks; b++ {
		var acc int32
		for i := 0; i < blockPixels; i++ {
			d := cur[b*blockPixels+i] - ref[b*blockPixels+i+offset]
			if d < 0 {
				d = -d
			}
			acc += d
		}
		want[b] = acc
	}

	curAddr, err := allocInt32(m, cur)
	if err != nil {
		return nil, err
	}
	refAddr, err := allocInt32(m, ref)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * blocks)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("sad", sadSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{curAddr, refAddr, outAddr, uint32(offset)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "sad.out")
		},
	}, nil
}

package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// runAndCheck builds a benchmark at Small scale, runs it under cfg and
// validates the output against the host reference.
func runAndCheck(t *testing.T, name string, cfg sim.Config) *sim.Result {
	t.Helper()
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	inst, err := b.Build(g.Mem(), Small)
	if err != nil {
		t.Fatalf("%s.Build: %v", name, err)
	}
	res, err := g.Run(inst.Launch)
	if err != nil {
		t.Fatalf("%s.Run: %v", name, err)
	}
	if err := inst.Check(g.Mem()); err != nil {
		t.Fatalf("%s output wrong: %v", name, err)
	}
	return res
}

func testCfg(mode core.Mode) sim.Config {
	c := sim.DefaultConfig()
	c.NumSMs = 4
	c.Mode = mode
	c.PowerGating = mode.Enabled()
	c.MaxCycles = 20_000_000
	return c
}

// TestAllBenchmarksCorrect runs every registered benchmark with compression
// on and off, both schedulers — the architectural results must always match
// the host reference.
func TestAllBenchmarksCorrect(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name+"/warped", func(t *testing.T) {
			runAndCheck(t, b.Name, testCfg(core.ModeWarped))
		})
		t.Run(b.Name+"/baseline", func(t *testing.T) {
			runAndCheck(t, b.Name, testCfg(core.ModeOff))
		})
		t.Run(b.Name+"/lrr", func(t *testing.T) {
			c := testCfg(core.ModeWarped)
			c.Scheduler = "lrr"
			runAndCheck(t, b.Name, c)
		})
		t.Run(b.Name+"/recompress", func(t *testing.T) {
			c := testCfg(core.ModeWarped)
			c.DivergencePolicy = "recompress"
			runAndCheck(t, b.Name, c)
		})
		t.Run(b.Name+"/rfc", func(t *testing.T) {
			c := testCfg(core.ModeOff)
			c.RFCEntries = 6
			runAndCheck(t, b.Name, c)
		})
	}
}

// TestBenchmarkRegistry sanity-checks registration metadata.
func TestBenchmarkRegistry(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Fatalf("expected at least 14 benchmarks, have %d", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if b.Name == "" || b.Suite == "" || b.Description == "" || b.Build == nil {
			t.Fatalf("incomplete benchmark registration: %+v", b)
		}
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
	for _, want := range []string{"pathfinder", "bfs", "aes", "lib", "spmv"} {
		if !seen[want] {
			t.Fatalf("paper benchmark %q missing", want)
		}
	}
}

// TestDeterminism: two runs of the same benchmark under the same
// configuration must produce byte-identical statistics — the experiment
// harness depends on exact reproducibility.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"bfs", "pathfinder", "histo"} {
		a := runAndCheck(t, name, testCfg(core.ModeWarped))
		b := runAndCheck(t, name, testCfg(core.ModeWarped))
		if a.Cycles != b.Cycles {
			t.Fatalf("%s: cycles differ across runs: %d vs %d", name, a.Cycles, b.Cycles)
		}
		if a.Stats != b.Stats {
			t.Fatalf("%s: statistics differ across identical runs", name)
		}
	}
}

package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

// nn is Rodinia's nearest-neighbor kernel: every thread computes the
// Euclidean distance of one (latitude, longitude) record to the query
// point. Completely uniform control flow over a narrow coordinate range.
//
// Params: %param0=records %param1=out %param2=targetLat %param3=targetLng
// (the targets are float bit patterns).
const nnSrc = `
.kernel nn
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // record index
	shl  r2, r1, 3                   // 2 floats per record
	add  r2, r2, %param0
	ld.global r3, [r2]               // lat
	ld.global r4, [r2+4]             // lng
	fsub r3, r3, %param2
	fsub r4, r4, %param3
	fmul r5, r3, r3
	fma  r5, r4, r4, r5
	fsqrt r5, r5                     // distance
	shl  r6, r1, 2
	add  r6, r6, %param1
	st.global [r6], r5
	exit
`

func init() {
	register(&Benchmark{
		Name:        "nn",
		Suite:       "rodinia",
		Description: "nearest-neighbor distances to a query point; uniform, narrow coordinates",
		Build:       buildNN,
	})
}

func buildNN(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 96, 192)
	n := ctas * block

	r := rng(0x4e4e)
	records := make([]float32, 2*n)
	for i := range records {
		records[i] = 20 + float32(r.Intn(200))*0.1 // 20.0 .. 40.0 degrees
	}
	const targetLat, targetLng = float32(30.0), float32(31.5)

	want := make([]float32, n)
	for i := 0; i < n; i++ {
		dlat := records[2*i] - targetLat
		dlng := records[2*i+1] - targetLng
		d := float32(dlat * dlat)
		d = float32(dlng*dlng) + d
		want[i] = float32(math.Sqrt(float64(d)))
	}

	recAddr, err := allocFloat32(m, records)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * n)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("nn", nnSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{
				recAddr, outAddr,
				math.Float32bits(targetLat), math.Float32bits(targetLng),
			},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "nn.dist")
		},
	}, nil
}

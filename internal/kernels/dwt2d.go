package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// dwt2d is Rodinia's discrete wavelet transform, reduced to one integer Haar
// lifting pass along rows: each thread transforms one sample pair into a
// (low, high) pair. The last pair of every row handles the odd boundary
// differently, and 8-bit pixel inputs keep register values in a narrow band.
//
// Params: %param0=in %param1=low %param2=high %param3=pairsPerRow.
const dwt2dSrc = `
.kernel dwt2d
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // pair index
	shl  r2, r1, 3                   // byte offset of sample pair (2 words)
	add  r3, r2, %param0
	ld.global r4, [r3]               // a = even sample
	ld.global r5, [r3+4]             // b = odd sample
	rem  r6, r1, %param3             // pair position within the row
	add  r7, r6, 1
	setp.eq p0, r7, %param3          // last pair of the row?
@!p0	bra Linterior
	// Boundary: symmetric extension, high band folds to zero offset.
	add  r8, r4, r4
	sra  r8, r8, 1                   // low = (a+a)>>1 = a
	sub  r9, r4, r5                  // high = a-b
	bra  Lstore
Linterior:
	add  r8, r4, r5
	sra  r8, r8, 1                   // low = (a+b)>>1
	sub  r9, r4, r5                  // high = a-b
Lstore:
	shl  r10, r1, 2
	add  r11, r10, %param1
	st.global [r11], r8
	add  r12, r10, %param2
	st.global [r12], r9
	exit
`

func init() {
	register(&Benchmark{
		Name:        "dwt2d",
		Suite:       "rodinia",
		Description: "integer Haar wavelet lifting; narrow pixel range, row-boundary divergence",
		Build:       buildDWT2D,
	})
}

func buildDWT2D(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	pairsPerRow := 32
	rows := s.pick(16, 1024, 2048)
	pairs := pairsPerRow * rows
	ctas := pairs / block

	r := rng(0xd72d)
	in := make([]int32, pairs*2)
	for i := range in {
		in[i] = int32(r.Intn(256)) // 8-bit pixels
	}

	low := make([]int32, pairs)
	high := make([]int32, pairs)
	for p := 0; p < pairs; p++ {
		a, b := in[2*p], in[2*p+1]
		if p%pairsPerRow == pairsPerRow-1 {
			low[p] = (a + a) >> 1
			high[p] = a - b
		} else {
			low[p] = (a + b) >> 1
			high[p] = a - b
		}
	}

	inAddr, err := allocInt32(m, in)
	if err != nil {
		return nil, err
	}
	lowAddr, err := m.Alloc(4 * pairs)
	if err != nil {
		return nil, err
	}
	highAddr, err := m.Alloc(4 * pairs)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("dwt2d", dwt2dSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{inAddr, lowAddr, highAddr, uint32(pairsPerRow)},
		},
		Check: func(m *mem.Global) error {
			if err := checkInt32(m, lowAddr, low, "dwt2d.low"); err != nil {
				return err
			}
			return checkInt32(m, highAddr, high, "dwt2d.high")
		},
	}, nil
}

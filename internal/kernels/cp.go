package kernels

import (
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

// cp is GPGPU-Sim's coulombic-potential kernel: every thread owns one grid
// point and accumulates q_i / dist_i over all atoms. The atom array is read
// warp-uniformly each iteration (classic <4,0> traffic) while per-thread
// coordinates are index-affine.
//
// Params: %param0=atoms (x,y,q triplets) %param1=out %param2=numAtoms
// %param3=gridWidth.
const cpSrc = `
.kernel cp
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // grid point index
	rem  r2, r1, %param3             // gx
	div  r3, r1, %param3             // gy
	i2f  r2, r2
	i2f  r3, r3
	fmul r2, r2, 0.5                 // point coordinates (spacing 0.5)
	fmul r3, r3, 0.5
	mov  r4, 0                       // potential = 0.0f
	mov  r5, 0                       // atom index
Latom:
	mul  r6, r5, 12                  // 3 floats per atom
	add  r6, r6, %param0
	ld.global r7, [r6]               // ax (uniform)
	ld.global r8, [r6+4]             // ay
	ld.global r9, [r6+8]             // q
	fsub r7, r7, r2                  // dx
	fsub r8, r8, r3                  // dy
	fmul r10, r7, r7
	fma  r10, r8, r8, r10
	fadd r10, r10, 0.01              // softening avoids 1/0
	fsqrt r10, r10
	frcp r10, r10
	fma  r4, r9, r10, r4             // pot += q / dist
	add  r5, r5, 1
	setp.lt p0, r5, %param2
@p0	bra Latom
	shl  r11, r1, 2
	add  r11, r11, %param1
	st.global [r11], r4
	exit
`

func init() {
	register(&Benchmark{
		Name:        "cp",
		Suite:       "gpgpu-sim",
		Description: "coulombic potential grid; uniform atom reads, no divergence",
		Build:       buildCP,
	})
}

func buildCP(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	const gridWidth = 64
	ctas := s.pick(4, 64, 128)
	atoms := s.pick(8, 24, 40)
	points := ctas * block

	r := rng(0xc9)
	atomData := make([]float32, 3*atoms)
	for a := 0; a < atoms; a++ {
		atomData[3*a] = float32(r.Intn(128)) * 0.25   // x
		atomData[3*a+1] = float32(r.Intn(128)) * 0.25 // y
		atomData[3*a+2] = float32(r.Intn(8)+1) * 0.5  // charge
	}

	want := make([]float32, points)
	for p := 0; p < points; p++ {
		px := float32(float32(int32(p%gridWidth)) * 0.5)
		py := float32(float32(int32(p/gridWidth)) * 0.5)
		var pot float32
		for a := 0; a < atoms; a++ {
			dx := atomData[3*a] - px
			dy := atomData[3*a+1] - py
			d := float32(dx * dx)
			d = float32(dy*dy) + d
			d = d + 0.01
			d = float32(math.Sqrt(float64(d)))
			d = 1 / d
			pot = float32(atomData[3*a+2]*d) + pot
		}
		want[p] = pot
	}

	atomAddr, err := allocFloat32(m, atomData)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * points)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("cp", cpSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{atomAddr, outAddr, uint32(atoms), gridWidth},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "cp.pot")
		},
	}, nil
}

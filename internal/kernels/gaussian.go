package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// gaussian is Rodinia's Gaussian elimination update for one pivot column k:
// every thread owns one matrix element (i,j) and applies
// a[i][j] -= (a[i][k]/a[k][k]) * a[k][j] when i>k and j>=k. The triangular
// guard makes warps covering pivot-adjacent rows diverge; pivot-row loads
// are warp-uniform.
//
// Params: %param0=a %param1=out %param2=n %param3=k.
const gaussianSrc = `
.kernel gaussian
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // element index
	div  r2, r1, %param2             // i
	rem  r3, r1, %param2             // j
	shl  r4, r1, 2
	add  r5, r4, %param0
	ld.global r6, [r5]               // a[i][j]
	setp.le p0, r2, %param3          // i <= k: passthrough
@p0	bra Lcopy
	setp.lt p1, r3, %param3          // j < k: passthrough
@p1	bra Lcopy
	mad  r7, r2, %param2, %param3    // index of a[i][k]
	shl  r7, r7, 2
	add  r7, r7, %param0
	ld.global r8, [r7]               // a[i][k]
	mad  r9, %param3, %param2, %param3 // index of a[k][k]
	shl  r9, r9, 2
	add  r9, r9, %param0
	ld.global r10, [r9]              // a[k][k] (uniform)
	frcp r10, r10
	fmul r11, r8, r10                // multiplier m_i
	mad  r12, %param3, %param2, r3   // index of a[k][j]
	shl  r12, r12, 2
	add  r12, r12, %param0
	ld.global r13, [r12]             // a[k][j]
	fmul r14, r11, r13
	fsub r6, r6, r14
Lcopy:
	add  r15, r4, %param1
	st.global [r15], r6
	exit
`

func init() {
	register(&Benchmark{
		Name:        "gaussian",
		Suite:       "rodinia",
		Description: "Gaussian elimination column update; triangular-guard divergence, uniform pivot row",
		Build:       buildGaussian,
	})
}

func buildGaussian(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	n := s.pick(32, 160, 224) // n*n divides by block for all scales
	k := n / 3

	r := rng(0x9055)
	a := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float32(r.Intn(9)-4) * 0.5
		}
		a[i*n+i] = float32(n) // diagonal dominance keeps 1/a[k][k] tame
	}

	want := make([]float32, n*n)
	copy(want, a)
	pivotRcp := 1 / a[k*n+k]
	for i := k + 1; i < n; i++ {
		mlt := float32(a[i*n+k] * pivotRcp)
		for j := k; j < n; j++ {
			want[i*n+j] = a[i*n+j] - float32(mlt*a[k*n+j])
		}
	}

	aAddr, err := allocFloat32(m, a)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * n * n)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("gaussian", gaussianSrc),
			Grid:   isa.Dim3{X: n * n / block},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{aAddr, outAddr, uint32(n), uint32(k)},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "gaussian.out")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// srad is Rodinia's speckle-reducing anisotropic diffusion coefficient
// kernel: per-pixel neighbour gradients (clamped at image borders), a
// normalized gradient magnitude and a rational diffusion coefficient.
// Border threads diverge on four clamp predicates; interior register values
// track smooth image statistics.
//
// Params: %param0=image %param1=coeff %param2=width %param3=height.
const sradSrc = `
.kernel srad
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // pixel
	div  r2, r1, %param2             // y
	rem  r3, r1, %param2             // x
	shl  r4, r1, 2
	add  r5, r4, %param0
	ld.global r6, [r5]               // J = image[p]

	mov  r7, r6                      // N
	setp.eq p0, r2, 0
@p0	bra Ls
	sub  r8, r1, %param2
	shl  r8, r8, 2
	add  r8, r8, %param0
	ld.global r7, [r8]
Ls:
	mov  r9, r6                      // S
	add  r10, r2, 1
	setp.ge p1, r10, %param3
@p1	bra Lw
	add  r11, r1, %param2
	shl  r11, r11, 2
	add  r11, r11, %param0
	ld.global r9, [r11]
Lw:
	mov  r12, r6                     // W
	setp.eq p2, r3, 0
@p2	bra Le
	ld.global r12, [r5-4]
Le:
	mov  r13, r6                     // E
	add  r14, r3, 1
	setp.ge p3, r14, %param2
@p3	bra Lmath
	ld.global r13, [r5+4]
Lmath:
	fsub r7, r7, r6                  // dN
	fsub r9, r9, r6                  // dS
	fsub r12, r12, r6                // dW
	fsub r13, r13, r6                // dE
	fmul r15, r7, r7
	fma  r15, r9, r9, r15
	fma  r15, r12, r12, r15
	fma  r15, r13, r13, r15          // G2 = sum of squared gradients
	fmul r16, r6, r6
	fadd r16, r16, 0.001             // J^2 + eps
	frcp r16, r16
	fmul r17, r15, r16               // normalized gradient magnitude
	fadd r18, r17, 1.0
	frcp r18, r18                    // c = 1 / (1 + q)
	add  r19, r4, %param1
	st.global [r19], r18
	exit
`

func init() {
	register(&Benchmark{
		Name:        "srad",
		Suite:       "rodinia",
		Description: "speckle-reducing diffusion coefficients; border-clamp divergence, smooth image values",
		Build:       buildSRAD,
	})
}

func buildSRAD(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	width := s.pick(64, 128, 256)
	height := s.pick(8, 320, 512)
	cells := width * height
	ctas := cells / block

	r := rng(0x52ad)
	img := make([]float32, cells)
	for i := range img {
		img[i] = 0.5 + float32(r.Intn(100))*0.005 // 0.5 .. 1.0: smooth speckle
	}

	want := make([]float32, cells)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := y*width + x
			j := img[i]
			n, sv, w, e := j, j, j, j
			if y > 0 {
				n = img[i-width]
			}
			if y+1 < height {
				sv = img[i+width]
			}
			if x > 0 {
				w = img[i-1]
			}
			if x+1 < width {
				e = img[i+1]
			}
			dn, ds, dw, de := n-j, sv-j, w-j, e-j
			g2 := float32(dn * dn)
			g2 = float32(ds*ds) + g2
			g2 = float32(dw*dw) + g2
			g2 = float32(de*de) + g2
			den := float32(j * j)
			den = den + 0.001
			den = 1 / den
			q := float32(g2 * den)
			c := q + 1.0
			want[i] = 1 / c
		}
	}

	imgAddr, err := allocFloat32(m, img)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * cells)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("srad", sradSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{imgAddr, outAddr, uint32(width), uint32(height)},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "srad.coeff")
		},
	}, nil
}

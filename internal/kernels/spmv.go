package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// spmv is Parboil's CSR sparse matrix-vector product: one thread per row,
// each looping over that row's nonzeros. Row lengths vary, so warps diverge
// on loop trip count — the paper lists spmv among the benchmarks that lose
// some compression opportunity during divergence.
//
// Params: %param0=rowptr %param1=colidx %param2=values %param3=x %param4=y.
const spmvSrc = `
.kernel spmv
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // row
	shl  r2, r1, 2
	add  r3, r2, %param0
	ld.global r4, [r3]               // rowptr[row]
	ld.global r5, [r3+4]             // rowptr[row+1]
	mov  r6, 0                       // acc = 0.0f
	setp.ge p0, r4, r5
@p0	bra Lstore
Lnz:
	shl  r7, r4, 2
	add  r8, r7, %param1
	ld.global r9, [r8]               // col
	add  r10, r7, %param2
	ld.global r11, [r10]             // A value
	shl  r12, r9, 2
	add  r12, r12, %param3
	ld.global r13, [r12]             // x[col]
	fma  r6, r11, r13, r6            // acc += A*x
	add  r4, r4, 1
	setp.lt p1, r4, r5
@p1	bra Lnz
Lstore:
	add  r14, r2, %param4
	st.global [r14], r6
	exit
`

func init() {
	register(&Benchmark{
		Name:        "spmv",
		Suite:       "parboil",
		Description: "CSR sparse matrix-vector product; row-length divergence",
		Build:       buildSpMV,
	})
}

func buildSpMV(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 64, 128)
	rows := ctas * block

	r := rng(0x59e7)
	rowptr := make([]int32, rows+1)
	var colidx []int32
	var values []float32
	for row := 0; row < rows; row++ {
		rowptr[row] = int32(len(colidx))
		nnz := 6 + r.Intn(7) // 6..12 nonzeros: divergent loop tails
		for k := 0; k < nnz; k++ {
			colidx = append(colidx, int32(r.Intn(rows)))
			values = append(values, float32(r.Intn(16))*0.125) // narrow range
		}
	}
	rowptr[rows] = int32(len(colidx))

	x := make([]float32, rows)
	for i := range x {
		x[i] = float32(r.Intn(8)) * 0.25
	}

	want := make([]float32, rows)
	for row := 0; row < rows; row++ {
		var acc float32
		for e := rowptr[row]; e < rowptr[row+1]; e++ {
			acc = float32(values[e]*x[colidx[e]]) + acc
		}
		want[row] = acc
	}

	rowAddr, err := allocInt32(m, rowptr)
	if err != nil {
		return nil, err
	}
	if len(colidx) == 0 {
		colidx, values = []int32{0}, []float32{0}
	}
	colAddr, err := allocInt32(m, colidx)
	if err != nil {
		return nil, err
	}
	valAddr, err := allocFloat32(m, values)
	if err != nil {
		return nil, err
	}
	xAddr, err := allocFloat32(m, x)
	if err != nil {
		return nil, err
	}
	yAddr, err := m.Alloc(4 * rows)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("spmv", spmvSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{rowAddr, colAddr, valAddr, xAddr, yAddr},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, yAddr, want, "spmv.y")
		},
	}, nil
}

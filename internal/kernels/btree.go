package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// btree is Rodinia's b+tree lookup kernel: each thread walks a perfect
// 4-ary search tree (heap layout, children of n at 4n+1..4n+4) from root to
// leaf for its own query key. The inner separator scan breaks at a
// data-dependent position and the per-level node ids diverge, producing the
// gathering, branch-heavy access pattern of the original.
//
// Params: %param0=separators (4 per internal node) %param1=leafValues
// %param2=queries %param3=out %param4=depth %param5=firstLeaf.
const btreeSrc = `
.kernel btree
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // query index
	shl  r2, r1, 2
	add  r3, r2, %param2
	ld.global r4, [r3]               // key
	mov  r5, 0                       // node = root
	mov  r6, 0                       // level
Llevel:
	mov  r7, 0                       // child slot i
Lscan:
	shl  r8, r5, 2
	add  r8, r8, r7                  // separator index = node*4 + i
	shl  r9, r8, 2
	add  r9, r9, %param0
	ld.global r10, [r9]              // separator (max key of child i)
	setp.le p0, r4, r10
@p0	bra Lfound                       // data-dependent break
	add  r7, r7, 1
	setp.lt p1, r7, 3                // slots 0..2 tested; slot 3 is default
@p1	bra Lscan
Lfound:
	mad  r5, r5, 4, r7
	add  r5, r5, 1                   // node = 4*node + 1 + i
	add  r6, r6, 1
	setp.lt p2, r6, %param4
@p2	bra Llevel
	sub  r11, r5, %param5            // leaf number
	shl  r11, r11, 2
	add  r11, r11, %param1
	ld.global r12, [r11]             // stored value
	add  r13, r2, %param3
	st.global [r13], r12
	exit
`

func init() {
	register(&Benchmark{
		Name:        "btree",
		Suite:       "rodinia",
		Description: "b+tree key lookups; data-dependent separator scans and gathering node loads",
		Build:       buildBTree,
	})
}

func buildBTree(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	const fanout = 4
	ctas := s.pick(4, 64, 128)
	depth := s.pick(4, 5, 6) // 4^5 = 1024 leaves at medium
	queries := ctas * block

	leaves := 1
	for i := 0; i < depth; i++ {
		leaves *= fanout
	}
	internal := (leaves - 1) / (fanout - 1) // perfect tree internal nodes
	firstLeaf := internal

	// Leaf l covers keys [l*keysPerLeaf, (l+1)*keysPerLeaf).
	const keysPerLeaf = 8
	maxKey := leaves * keysPerLeaf

	// leafMax[l] = largest key in leaf l; separators for internal node n,
	// slot i = max key of the subtree under child i.
	subtreeMax := func(node int) int32 {
		// Descend to the right-most leaf of the subtree.
		for node < firstLeaf {
			node = fanout*node + fanout
		}
		leaf := node - firstLeaf
		return int32((leaf+1)*keysPerLeaf - 1)
	}
	seps := make([]int32, internal*fanout)
	for n := 0; n < internal; n++ {
		for i := 0; i < fanout; i++ {
			seps[n*fanout+i] = subtreeMax(fanout*n + 1 + i)
		}
	}
	leafVals := make([]int32, leaves)
	for l := range leafVals {
		leafVals[l] = int32(l*7 + 3)
	}

	r := rng(0xb7e)
	q := make([]int32, queries)
	want := make([]int32, queries)
	for i := range q {
		q[i] = int32(r.Intn(maxKey))
		want[i] = leafVals[int(q[i])/keysPerLeaf]
	}

	sepAddr, err := allocInt32(m, seps)
	if err != nil {
		return nil, err
	}
	leafAddr, err := allocInt32(m, leafVals)
	if err != nil {
		return nil, err
	}
	qAddr, err := allocInt32(m, q)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * queries)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("btree", btreeSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{sepAddr, leafAddr, qAddr, outAddr, uint32(depth), uint32(firstLeaf)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "btree.value")
		},
	}, nil
}

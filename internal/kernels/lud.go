package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// lud is Rodinia's LU decomposition diagonal-block kernel: each CTA
// factorizes one 16x16 block in shared memory (Doolittle, in place). The
// i>k / j>k triangular guards shrink the active set every pivot step, the
// paper's canonical structured-divergence pattern.
//
// Params: %param0=in blocks %param1=out blocks (16x16 floats per CTA).
const ludSrc = `
.kernel lud
.shared 1024
	mov  r0, %tid.x
	shr  r1, r0, 4               // i
	and  r2, r0, 15              // j
	mov  r3, %ctaid.x
	shl  r4, r0, 2               // shared offset of a[i][j]
	mul  r5, r3, 1024            // this CTA's block base
	add  r5, r5, %param0
	add  r6, r4, r5
	ld.global r7, [r6]
	st.shared [r4], r7
	bar.sync
	mov  r8, 0                   // pivot k
Lk:
	setp.le p0, r1, r8           // column-normalize: i>k && j==k
@p0	bra Lst2
	setp.ne p1, r2, r8
@p1	bra Lst2
	mul  r9, r8, 68              // &a[k][k] = (k*16+k)*4
	ld.shared r10, [r9]
	frcp r10, r10
	ld.shared r11, [r4]
	fmul r11, r11, r10
	st.shared [r4], r11
Lst2:
	bar.sync
	setp.le p2, r1, r8           // trailing update: i>k && j>k
@p2	bra Lnext
	setp.le p3, r2, r8
@p3	bra Lnext
	shl  r12, r1, 4
	add  r12, r12, r8
	shl  r12, r12, 2
	ld.shared r13, [r12]         // a[i][k]
	shl  r14, r8, 4
	add  r14, r14, r2
	shl  r14, r14, 2
	ld.shared r15, [r14]         // a[k][j]
	fmul r16, r13, r15
	ld.shared r17, [r4]
	fsub r17, r17, r16
	st.shared [r4], r17
Lnext:
	bar.sync
	add  r8, r8, 1
	setp.lt p4, r8, 15
@p4	bra Lk
	ld.shared r18, [r4]
	mul  r19, r3, 1024
	add  r19, r19, %param1
	add  r19, r19, r4
	st.global [r19], r18
	exit
`

func init() {
	register(&Benchmark{
		Name:        "lud",
		Suite:       "rodinia",
		Description: "16x16 shared-memory LU factorization; triangular divergence per pivot step",
		Build:       buildLUD,
	})
}

func buildLUD(m *mem.Global, s Scale) (*Instance, error) {
	const bs = 16
	ctas := s.pick(8, 96, 192)

	r := rng(0x10d)
	in := make([]float32, ctas*bs*bs)
	for c := 0; c < ctas; c++ {
		blk := in[c*bs*bs : (c+1)*bs*bs]
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				blk[i*bs+j] = float32(r.Intn(9)-4) * 0.25
			}
			blk[i*bs+i] = 16 + float32(r.Intn(4)) // diagonal dominance
		}
	}

	want := make([]float32, len(in))
	copy(want, in)
	for c := 0; c < ctas; c++ {
		a := want[c*bs*bs : (c+1)*bs*bs]
		for k := 0; k < bs-1; k++ {
			rcp := 1 / a[k*bs+k]
			for i := k + 1; i < bs; i++ {
				a[i*bs+k] = float32(a[i*bs+k] * rcp)
			}
			for i := k + 1; i < bs; i++ {
				for j := k + 1; j < bs; j++ {
					a[i*bs+j] = a[i*bs+j] - float32(a[i*bs+k]*a[k*bs+j])
				}
			}
		}
	}

	inAddr, err := allocFloat32(m, in)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * len(in))
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("lud", ludSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: bs * bs},
			Params: [isa.NumParams]uint32{inAddr, outAddr},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "lud.block")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// hotspot is Rodinia's thermal simulation: a 2-D five-point stencil where
// boundary cells clamp to themselves. Temperatures live in a narrow band
// (value similarity) and border threads diverge on the clamp predicates.
//
// Layout: one CTA row of 128 threads handles 128 consecutive cells of a
// width x height grid (row-major). Params: %param0=temp %param1=power
// %param2=out %param3=width %param4=height.
const hotspotSrc = `
.kernel hotspot
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // cell index
	div  r2, r1, %param3             // y
	rem  r3, r1, %param3             // x
	shl  r4, r1, 2
	add  r5, r4, %param0
	ld.global r6, [r5]               // center temperature

	// North neighbour (clamped at y == 0).
	mov  r7, r6
	setp.eq p0, r2, 0
@p0	bra Lsouth
	sub  r8, r1, %param3
	shl  r8, r8, 2
	add  r8, r8, %param0
	ld.global r7, [r8]
Lsouth:
	mov  r9, r6
	add  r10, r2, 1
	setp.ge p1, r10, %param4
@p1	bra Lwest
	add  r11, r1, %param3
	shl  r11, r11, 2
	add  r11, r11, %param0
	ld.global r9, [r11]
Lwest:
	mov  r12, r6
	setp.eq p2, r3, 0
@p2	bra Least
	sub  r13, r4, 4
	add  r13, r13, %param0
	ld.global r12, [r13]
Least:
	mov  r14, r6
	add  r15, r3, 1
	setp.ge p3, r15, %param3
@p3	bra Lcalc
	add  r16, r4, 4
	add  r16, r16, %param0
	ld.global r14, [r16]
Lcalc:
	fadd r17, r7, r9                 // N + S
	fadd r17, r17, r12               // + W
	fadd r17, r17, r14               // + E
	fmul r18, r6, 4.0
	fsub r17, r17, r18               // laplacian
	fmul r17, r17, 0.125             // diffusion constant
	add  r19, r4, %param1
	ld.global r20, [r19]             // power[cell]
	fadd r17, r17, r20
	fadd r21, r6, r17                // new temperature
	add  r22, r4, %param2
	st.global [r22], r21
	exit
`

func init() {
	register(&Benchmark{
		Name:        "hotspot",
		Suite:       "rodinia",
		Description: "2-D thermal stencil with boundary-clamp divergence; narrow temperature band",
		Build:       buildHotspot,
	})
}

func buildHotspot(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	width := s.pick(64, 128, 256)
	height := s.pick(8, 320, 512)
	cells := width * height
	ctas := cells / block

	r := rng(0x407)
	temp := make([]float32, cells)
	for i := range temp {
		temp[i] = 324 + float32(r.Intn(160))*0.1 // 324.0 .. 340.0 K
	}
	power := make([]float32, cells)
	for i := range power {
		power[i] = float32(r.Intn(10)) * 0.001
	}

	want := make([]float32, cells)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := y*width + x
			c := temp[i]
			n, sv, w, e := c, c, c, c
			if y > 0 {
				n = temp[i-width]
			}
			if y+1 < height {
				sv = temp[i+width]
			}
			if x > 0 {
				w = temp[i-1]
			}
			if x+1 < width {
				e = temp[i+1]
			}
			lap := float32(n + sv)
			lap = lap + w
			lap = lap + e
			lap = lap - float32(c*4.0)
			lap = float32(lap * 0.125)
			lap = lap + power[i]
			want[i] = c + lap
		}
	}

	tempAddr, err := allocFloat32(m, temp)
	if err != nil {
		return nil, err
	}
	powerAddr, err := allocFloat32(m, power)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * cells)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("hotspot", hotspotSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{tempAddr, powerAddr, outAddr, uint32(width), uint32(height)},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "hotspot.out")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// stencil is Parboil's Jacobi stencil, reduced from 7-point/3-D to
// 5-point/2-D: interior threads combine four neighbours and the centre with
// fixed coefficients; edge threads just copy through (one guarded branch).
// Addresses are thread-index affine — the textbook compressible pattern.
//
// Params: %param0=in %param1=out %param2=width %param3=height.
const stencilSrc = `
.kernel stencil
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // cell
	div  r2, r1, %param2             // y
	rem  r3, r1, %param2             // x
	shl  r4, r1, 2
	add  r5, r4, %param0
	ld.global r6, [r5]               // centre

	// Interior test: 0 < x < w-1 && 0 < y < h-1.
	setp.eq p0, r3, 0
@p0	bra Lcopy
	add  r7, r3, 1
	setp.ge p1, r7, %param2
@p1	bra Lcopy
	setp.eq p2, r2, 0
@p2	bra Lcopy
	add  r8, r2, 1
	setp.ge p3, r8, %param3
@p3	bra Lcopy

	sub  r9, r1, %param2
	shl  r9, r9, 2
	add  r9, r9, %param0
	ld.global r10, [r9]              // north
	add  r11, r1, %param2
	shl  r11, r11, 2
	add  r11, r11, %param0
	ld.global r12, [r11]             // south
	ld.global r13, [r5-4]            // west
	ld.global r14, [r5+4]            // east
	fadd r15, r10, r12
	fadd r15, r15, r13
	fadd r15, r15, r14
	fmul r15, r15, 0.2               // c1 * neighbours
	fma  r15, r6, 0.2, r15           // + c0 * centre
	mov  r6, r15
Lcopy:
	add  r16, r4, %param1
	st.global [r16], r6
	exit
`

func init() {
	register(&Benchmark{
		Name:        "stencil",
		Suite:       "parboil",
		Description: "5-point Jacobi stencil; affine addressing, edge-only divergence",
		Build:       buildStencil,
	})
}

func buildStencil(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	width := s.pick(64, 128, 256)
	height := s.pick(8, 320, 512)
	cells := width * height
	ctas := cells / block

	r := rng(0x57e)
	in := make([]float32, cells)
	for i := range in {
		in[i] = float32(r.Intn(100)) * 0.01
	}

	want := make([]float32, cells)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := y*width + x
			if x == 0 || x == width-1 || y == 0 || y == height-1 {
				want[i] = in[i]
				continue
			}
			sum := float32(in[i-width] + in[i+width])
			sum = sum + in[i-1]
			sum = sum + in[i+1]
			sum = float32(sum * 0.2)
			sum = float32(in[i]*0.2) + sum
			want[i] = sum
		}
	}

	inAddr, err := allocFloat32(m, in)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * cells)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("stencil", stencilSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{inAddr, outAddr, uint32(width), uint32(height)},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "stencil.out")
		},
	}, nil
}

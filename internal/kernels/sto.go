package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// sto distills GPGPU-Sim's StoreGPU hashing kernel: every thread whitens its
// input word through a fixed number of xorshift-multiply rounds with
// warp-uniform round constants. Zero divergence; register contents mix
// uniform constants with near-random hash state (like aes, but pure ALU —
// no table lookups).
//
// Params: %param0=in %param1=out %param2=constants %param3=rounds.
const stoSrc = `
.kernel sto
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // word index
	shl  r2, r1, 2
	add  r3, r2, %param0
	ld.global r4, [r3]               // h = in[i]
	mov  r5, 0                       // round
Lround:
	shl  r6, r5, 2
	add  r6, r6, %param2
	ld.global r7, [r6]               // round constant (uniform)
	shr  r8, r4, 13
	xor  r4, r4, r8                  // h ^= h >> 13
	mul  r4, r4, r7                  // h *= k
	shl  r9, r4, 7
	xor  r4, r4, r9                  // h ^= h << 7
	add  r5, r5, 1
	setp.lt p0, r5, %param3
@p0	bra Lround
	add  r10, r2, %param1
	st.global [r10], r4
	exit
`

func init() {
	register(&Benchmark{
		Name:        "sto",
		Suite:       "gpgpu-sim",
		Description: "StoreGPU-style hashing rounds; uniform constants over random state, no divergence",
		Build:       buildSTO,
	})
}

func buildSTO(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 64, 128)
	rounds := s.pick(6, 20, 32)
	n := ctas * block

	r := rng(0x570)
	in := make([]int32, n)
	for i := range in {
		in[i] = int32(r.Uint32())
	}
	consts := make([]int32, rounds)
	for i := range consts {
		consts[i] = int32(r.Uint32() | 1) // odd multipliers
	}

	want := make([]int32, n)
	for i, v := range in {
		h := uint32(v)
		for rd := 0; rd < rounds; rd++ {
			h ^= h >> 13
			h *= uint32(consts[rd])
			h ^= h << 7
		}
		want[i] = int32(h)
	}

	inAddr, err := allocInt32(m, in)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * n)
	if err != nil {
		return nil, err
	}
	kAddr, err := allocInt32(m, consts)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("sto", stoSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{inAddr, outAddr, kAddr, uint32(rounds)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "sto.hash")
		},
	}, nil
}

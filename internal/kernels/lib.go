package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// lib models the GPGPU-Sim LIBOR Monte Carlo kernel. The paper highlights it
// as the best case for warped-compression: "the input data is initialized to
// constant values, therefore it has zero dynamic range. As a result, most of
// warp registers can be perfectly compressed" — every thread computes on the
// same constant forward-rate curve, so nearly all warp registers hit the
// <4,0> (all-lanes-identical) encoding.
//
// Params: %param0=rates %param1=out %param2=maturities.
const libSrc = `
.kernel lib
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // path index
	mov  r2, 0                       // i
	mov  r3, 0x3f800000              // v = 1.0
Lmat:
	shl  r4, r2, 2
	add  r4, r4, %param0
	ld.global r5, [r4]               // L[i]: constant-initialized (0.05)
	fmul r6, r5, 0.25                // delta * L
	fadd r6, r6, 1.0                 // 1 + delta*L
	frcp r6, r6                      // discount factor
	fmul r3, r3, r6                  // v *= discount
	add  r2, r2, 1
	setp.lt p0, r2, %param2
@p0	bra Lmat
	shl  r7, r1, 2
	add  r7, r7, %param1
	st.global [r7], r3
	exit
`

func init() {
	register(&Benchmark{
		Name:        "lib",
		Suite:       "gpgpu-sim",
		Description: "LIBOR Monte Carlo discounting; constant inputs => zero dynamic range (best case)",
		Build:       buildLIB,
	})
}

func buildLIB(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 96, 192)
	maturities := s.pick(8, 40, 60)
	n := ctas * block

	// The defining property: every input element is the same constant.
	rates := make([]float32, maturities)
	for i := range rates {
		rates[i] = 0.05
	}

	var v float32 = 1.0
	for i := 0; i < maturities; i++ {
		d := float32(rates[i] * 0.25)
		d = d + 1.0
		d = 1 / d
		v = float32(v * d)
	}
	want := make([]float32, n)
	for i := range want {
		want[i] = v
	}

	ratesAddr, err := allocFloat32(m, rates)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * n)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("lib", libSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{ratesAddr, outAddr, uint32(maturities)},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "lib.out")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// histo is Parboil's histogramming kernel: every thread walks a grid-stride
// slice of the input and bumps its bin with an atomic add. Bin indices come
// from 8-bit image data (narrow range), and colliding atomics serialize at
// the memory side.
//
// Params: %param0=in %param1=hist %param2=n %param3=stride %param4=items.
const histoSrc = `
.kernel histo
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // gid
	mov  r2, 0                       // item counter
Litem:
	mad  r3, r2, %param3, r1         // index = i*stride + gid
	setp.ge p0, r3, %param2
@p0	bra Lnext
	shl  r4, r3, 2
	add  r4, r4, %param0
	ld.global r5, [r4]               // 0..255 pixel value
	shl  r6, r5, 2
	add  r6, r6, %param1
	atom.add r7, [r6], 1             // hist[value]++
Lnext:
	add  r2, r2, 1
	setp.lt p1, r2, %param4
@p1	bra Litem
	exit
`

func init() {
	register(&Benchmark{
		Name:        "histo",
		Suite:       "parboil",
		Description: "atomic histogramming of 8-bit data; same-bin atomics serialize",
		Build:       buildHisto,
	})
}

func buildHisto(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	const bins = 256
	ctas := s.pick(4, 64, 128)
	items := s.pick(2, 6, 8)
	threads := ctas * block
	n := threads * items

	r := rng(0x815)
	in := make([]int32, n)
	for i := range in {
		in[i] = int32(r.Intn(bins))
	}

	want := make([]int32, bins)
	for _, v := range in {
		want[v]++
	}

	inAddr, err := allocInt32(m, in)
	if err != nil {
		return nil, err
	}
	histAddr, err := m.Alloc(4 * bins)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("histo", histoSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{inAddr, histAddr, uint32(n), uint32(threads), uint32(items)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, histAddr, want, "histo.bins")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// mum distills GPGPU-Sim's MUMmer DNA matching: every thread aligns the
// query at its own reference offset and extends the match until the first
// mismatch. Match lengths are data-dependent, so loop trip counts diverge
// hard within warps — together with bfs this is the divergence stress case.
// Symbols are 2-bit DNA codes stored one per word (narrow value range).
//
// Params: %param0=ref %param1=query %param2=out %param3=queryLen
// %param4=refLen.
const mumSrc = `
.kernel mum
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // reference start position
	mov  r2, 0                       // matched length
Lmatch:
	setp.ge p0, r2, %param3          // whole query matched?
@p0	bra Ldone
	add  r3, r1, r2                  // ref index
	setp.ge p1, r3, %param4          // ran off the reference?
@p1	bra Ldone
	shl  r4, r3, 2
	add  r4, r4, %param0
	ld.global r5, [r4]               // ref symbol
	shl  r6, r2, 2
	add  r6, r6, %param1
	ld.global r7, [r6]               // query symbol (uniform)
	setp.ne p2, r5, r7
@p2	bra Ldone
	add  r2, r2, 1
	bra  Lmatch
Ldone:
	shl  r8, r1, 2
	add  r8, r8, %param2
	st.global [r8], r2
	exit
`

func init() {
	register(&Benchmark{
		Name:        "mum",
		Suite:       "gpgpu-sim",
		Description: "DNA match extension per reference offset; data-dependent loop divergence",
		Build:       buildMUM,
	})
}

func buildMUM(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 64, 128)
	queryLen := s.pick(8, 16, 24)
	threads := ctas * block
	refLen := threads + queryLen

	r := rng(0x3a3)
	ref := make([]int32, refLen)
	for i := range ref {
		ref[i] = int32(r.Intn(4)) // A/C/G/T
	}
	query := make([]int32, queryLen)
	for i := range query {
		query[i] = int32(r.Intn(4))
	}
	// Plant full matches at some offsets so long extensions occur.
	for k := 0; k < threads; k += 97 {
		copy(ref[k:k+queryLen], query)
	}

	want := make([]int32, threads)
	for t := 0; t < threads; t++ {
		n := int32(0)
		for int(n) < queryLen && t+int(n) < refLen && ref[t+int(n)] == query[n] {
			n++
		}
		want[t] = n
	}

	refAddr, err := allocInt32(m, ref)
	if err != nil {
		return nil, err
	}
	qAddr, err := allocInt32(m, query)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * threads)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("mum", mumSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{refAddr, qAddr, outAddr, uint32(queryLen), uint32(refLen)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "mum.len")
		},
	}, nil
}

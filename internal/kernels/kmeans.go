package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// kmeans is Rodinia's cluster-assignment kernel: one thread per point,
// looping over K centroids x D features to find the nearest centroid.
// Control flow is uniform (fixed K and D) and every thread reads the same
// centroid values each iteration, so centroid registers are warp-uniform.
//
// Params: %param0=points %param1=centroids %param2=membership %param3=K.
// D is fixed at 4 features.
const kmeansSrc = `
.kernel kmeans
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // point index
	shl  r2, r1, 4                   // point base: 4 features * 4 bytes
	add  r2, r2, %param0
	ld.global r3, [r2]               // f0
	ld.global r4, [r2+4]             // f1
	ld.global r5, [r2+8]             // f2
	ld.global r6, [r2+12]            // f3
	mov  r7, 0x7f7fffff              // best distance = +FLT_MAX
	mov  r8, 0                       // best index
	mov  r9, 0                       // k
Lcent:
	shl  r10, r9, 4
	add  r10, r10, %param1
	ld.global r11, [r10]             // c0 (uniform)
	ld.global r12, [r10+4]
	ld.global r13, [r10+8]
	ld.global r14, [r10+12]
	fsub r11, r3, r11
	fsub r12, r4, r12
	fsub r13, r5, r13
	fsub r14, r6, r14
	fmul r15, r11, r11
	fma  r15, r12, r12, r15
	fma  r15, r13, r13, r15
	fma  r15, r14, r14, r15          // squared distance
	setp.flt p0, r15, r7
	selp r7, r15, r7, p0             // best distance
	selp r8, r9, r8, p0              // best index
	add  r9, r9, 1
	setp.lt p1, r9, %param3
@p1	bra Lcent
	shl  r16, r1, 2
	add  r16, r16, %param2
	st.global [r16], r8
	exit
`

func init() {
	register(&Benchmark{
		Name:        "kmeans",
		Suite:       "rodinia",
		Description: "nearest-centroid assignment; uniform loops, warp-uniform centroid reads",
		Build:       buildKMeans,
	})
}

func buildKMeans(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	const dim = 4
	ctas := s.pick(4, 96, 192)
	k := s.pick(4, 10, 12)
	n := ctas * block

	r := rng(0x4a3a)
	points := make([]float32, n*dim)
	for i := range points {
		points[i] = float32(r.Intn(64)) * 0.25
	}
	cents := make([]float32, k*dim)
	for i := range cents {
		cents[i] = float32(r.Intn(64)) * 0.25
	}

	want := make([]int32, n)
	for p := 0; p < n; p++ {
		bestD := float32(3.4028234663852886e+38) // +FLT_MAX
		best := int32(0)
		for c := 0; c < k; c++ {
			var d float32
			d0 := points[p*dim] - cents[c*dim]
			d1 := points[p*dim+1] - cents[c*dim+1]
			d2 := points[p*dim+2] - cents[c*dim+2]
			d3 := points[p*dim+3] - cents[c*dim+3]
			d = float32(d0 * d0)
			d = float32(d1*d1) + d
			d = float32(d2*d2) + d
			d = float32(d3*d3) + d
			if d < bestD {
				bestD, best = d, int32(c)
			}
		}
		want[p] = best
	}

	ptsAddr, err := allocFloat32(m, points)
	if err != nil {
		return nil, err
	}
	cenAddr, err := allocFloat32(m, cents)
	if err != nil {
		return nil, err
	}
	memAddr, err := m.Alloc(4 * n)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("kmeans", kmeansSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{ptsAddr, cenAddr, memAddr, uint32(k)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, memAddr, want, "kmeans.membership")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// backprop is Rodinia's neural-network forward layer: each thread computes
// one output unit's weighted sum over the (warp-uniform) input activations,
// then a rational squashing function. Weight magnitudes are small and inputs
// are shared across the warp, giving moderate value similarity with no
// divergence.
//
// Params: %param0=weights %param1=inputs %param2=out %param3=numInputs.
const backpropSrc = `
.kernel backprop
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // output unit
	mul  r2, r1, %param3
	shl  r2, r2, 2
	add  r2, r2, %param0             // weight row base
	mov  r3, 0                       // acc
	mov  r4, 0                       // k
Lsum:
	shl  r5, r4, 2
	add  r6, r5, r2
	ld.global r7, [r6]               // w[unit][k]
	add  r8, r5, %param1
	ld.global r9, [r8]               // in[k] (uniform)
	fma  r3, r7, r9, r3
	add  r4, r4, 1
	setp.lt p0, r4, %param3
@p0	bra Lsum
	// squash(x) = x / (1 + |x|): a divergence-free sigmoid stand-in.
	and  r10, r3, 0x7fffffff         // float |x|: clear the sign bit
	fadd r10, r10, 1.0
	frcp r10, r10
	fmul r11, r3, r10
	shl  r12, r1, 2
	add  r12, r12, %param2
	st.global [r12], r11
	exit
`

func init() {
	register(&Benchmark{
		Name:        "backprop",
		Suite:       "rodinia",
		Description: "neural net forward layer; uniform input reads, small-range weights",
		Build:       buildBackprop,
	})
}

func buildBackprop(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 64, 128)
	numIn := s.pick(8, 48, 64)
	units := ctas * block

	r := rng(0xbac0)
	weights := make([]float32, units*numIn)
	for i := range weights {
		weights[i] = float32(r.Intn(21)-10) * 0.05 // -0.5 .. 0.5
	}
	inputs := make([]float32, numIn)
	for i := range inputs {
		inputs[i] = float32(r.Intn(100)) * 0.01
	}

	want := make([]float32, units)
	for u := 0; u < units; u++ {
		var acc float32
		for k := 0; k < numIn; k++ {
			acc = float32(weights[u*numIn+k]*inputs[k]) + acc
		}
		a := acc
		if a < 0 {
			a = -a
		}
		a = a + 1.0
		a = 1 / a
		want[u] = float32(acc * a)
	}

	wAddr, err := allocFloat32(m, weights)
	if err != nil {
		return nil, err
	}
	inAddr, err := allocFloat32(m, inputs)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * units)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("backprop", backpropSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{wAddr, inAddr, outAddr, uint32(numIn)},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "backprop.out")
		},
	}, nil
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// lps is GPGPU-Sim's Laplace solver reduced to 2-D: each CTA relaxes one
// 16x16 tile in shared memory (load, barrier, weighted Jacobi step). The
// four tile-edge clamps produce the same border divergence as the original's
// halo handling.
//
// Params: %param0=in tiles %param1=out tiles (16x16 floats per CTA).
const lpsSrc = `
.kernel lps
.shared 1024
	mov  r0, %tid.x
	and  r1, r0, 15              // lx
	shr  r2, r0, 4               // ly
	mov  r3, %ctaid.x
	shl  r4, r0, 2               // shared offset
	mul  r5, r3, 1024            // tile base
	add  r5, r5, %param0
	add  r6, r4, r5
	ld.global r7, [r6]           // u
	st.shared [r4], r7
	bar.sync
	mov  r8, r7                  // north (clamped)
	setp.eq p0, r2, 0
@p0	bra Ls
	sub  r9, r4, 64
	ld.shared r8, [r9]
Ls:
	mov  r10, r7                 // south
	setp.eq p1, r2, 15
@p1	bra Lw
	add  r11, r4, 64
	ld.shared r10, [r11]
Lw:
	mov  r12, r7                 // west
	setp.eq p2, r1, 0
@p2	bra Le
	sub  r13, r4, 4
	ld.shared r12, [r13]
Le:
	mov  r14, r7                 // east
	setp.eq p3, r1, 15
@p3	bra Lcalc
	add  r15, r4, 4
	ld.shared r14, [r15]
Lcalc:
	fadd r16, r8, r10
	fadd r16, r16, r12
	fadd r16, r16, r14
	fmul r16, r16, 0.25          // neighbour average
	fsub r16, r16, r7
	fmul r16, r16, 0.8           // relaxation factor
	fadd r16, r16, r7
	mul  r17, r3, 1024
	add  r17, r17, %param1
	add  r17, r17, r4
	st.global [r17], r16
	exit
`

func init() {
	register(&Benchmark{
		Name:        "lps",
		Suite:       "gpgpu-sim",
		Description: "shared-memory Laplace relaxation per 16x16 tile; tile-edge divergence",
		Build:       buildLPS,
	})
}

func buildLPS(m *mem.Global, s Scale) (*Instance, error) {
	const tile = 16
	ctas := s.pick(8, 96, 192)

	r := rng(0x195)
	in := make([]float32, ctas*tile*tile)
	for i := range in {
		in[i] = float32(r.Intn(100)) * 0.02
	}

	want := make([]float32, len(in))
	for c := 0; c < ctas; c++ {
		u := in[c*tile*tile : (c+1)*tile*tile]
		out := want[c*tile*tile : (c+1)*tile*tile]
		for y := 0; y < tile; y++ {
			for x := 0; x < tile; x++ {
				i := y*tile + x
				n, sv, w, e := u[i], u[i], u[i], u[i]
				if y > 0 {
					n = u[i-tile]
				}
				if y < tile-1 {
					sv = u[i+tile]
				}
				if x > 0 {
					w = u[i-1]
				}
				if x < tile-1 {
					e = u[i+1]
				}
				avg := float32(n + sv)
				avg = avg + w
				avg = avg + e
				avg = float32(avg * 0.25)
				avg = avg - u[i]
				avg = float32(avg * 0.8)
				out[i] = avg + u[i]
			}
		}
	}

	inAddr, err := allocFloat32(m, in)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * len(in))
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("lps", lpsSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: tile * tile},
			Params: [isa.NumParams]uint32{inAddr, outAddr},
		},
		Check: func(m *mem.Global) error {
			return checkFloat32(m, outAddr, want, "lps.u")
		},
	}, nil
}

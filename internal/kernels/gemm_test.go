package kernels

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// runGEMMShape runs one gemm variant at an explicit shape and validates it
// against the host reference.
func runGEMMShape(t *testing.T, variant string, M, N, K int) *sim.Result {
	t.Helper()
	g, err := sim.New(testCfg(core.ModeWarped))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	inst, err := BuildGEMMInstance(g.Mem(), variant, M, N, K)
	if err != nil {
		t.Fatalf("BuildGEMMInstance(%s, %dx%dx%d): %v", variant, M, N, K, err)
	}
	res, err := g.Run(inst.Launch)
	if err != nil {
		t.Fatalf("%s %dx%dx%d: %v", variant, M, N, K, err)
	}
	if err := inst.Check(g.Mem()); err != nil {
		t.Fatalf("%s %dx%dx%d output wrong: %v", variant, M, N, K, err)
	}
	return res
}

// TestGEMMShapes cross-checks every variant against the host reference over
// shapes that exercise the ragged-edge guards: dimensions below, at, and
// straddling the 16- and 32-wide tile boundaries.
func TestGEMMShapes(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{8, 8, 8},    // smaller than every tile
		{16, 16, 16}, // exact 16 tile, half a 32 tile
		{32, 32, 32}, // exact 32 tile
		{20, 28, 12}, // ragged in all three dimensions
		{33, 17, 40}, // one past a tile edge, K spanning 3 tiles
		{1, 64, 5},   // degenerate row vector
		{48, 1, 33},  // degenerate column vector, ragged K
	}
	for variant := range gemmVariants {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			for _, s := range shapes {
				t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.n, s.k), func(t *testing.T) {
					runGEMMShape(t, variant, s.m, s.n, s.k)
				})
			}
		})
	}
}

// TestGEMMVariantsAgree verifies all four variants leave byte-identical C
// for the same shape — they share inputs, so any divergence is a tiling
// bug, not a tolerance question.
func TestGEMMVariantsAgree(t *testing.T) {
	const M, N, K = 33, 17, 40
	var ref []int32
	for _, variant := range []string{"gemm_naive", "gemm_block", "gemm_warp", "gemm_reg"} {
		g, err := sim.New(testCfg(core.ModeOff))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		inst, err := BuildGEMMInstance(g.Mem(), variant, M, N, K)
		if err != nil {
			t.Fatalf("BuildGEMMInstance(%s): %v", variant, err)
		}
		if _, err := g.Run(inst.Launch); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		c, err := g.Mem().ReadInt32(inst.Launch.Params[2], M*N)
		if err != nil {
			t.Fatalf("%s: read C: %v", variant, err)
		}
		if ref == nil {
			ref = c
			continue
		}
		for i := range ref {
			if c[i] != ref[i] {
				t.Fatalf("%s: C[%d] = %d, gemm_naive computed %d", variant, i, c[i], ref[i])
			}
		}
	}
}

// TestGEMMConflictLadder checks the family produces the shared-memory
// behavior it exists to demonstrate: serialization falls monotonically from
// gemm_block (8-way transposed staging) through gemm_warp (4-way A reads)
// to gemm_reg (padded, conflict-free), and gemm_naive touches shared memory
// not at all.
func TestGEMMConflictLadder(t *testing.T) {
	ser := map[string]uint64{}
	for variant := range gemmVariants {
		res := runGEMMShape(t, variant, 32, 32, 32)
		ser[variant] = res.Stats.SharedSerializationCycles
		t.Logf("%s: accesses=%d conflicts=%d serialization=%d broadcasts=%d",
			variant, res.Stats.SharedAccess, res.Stats.SharedConflicts,
			res.Stats.SharedSerializationCycles, res.Stats.SharedBroadcastHits)
	}
	if ser["gemm_naive"] != 0 {
		t.Errorf("gemm_naive has %d shared serialization cycles, want 0", ser["gemm_naive"])
	}
	if ser["gemm_reg"] != 0 {
		t.Errorf("gemm_reg has %d shared serialization cycles, want 0 (padded layout)", ser["gemm_reg"])
	}
	if ser["gemm_warp"] == 0 {
		t.Errorf("gemm_warp has no shared serialization, want 4-way A-read conflicts")
	}
	if ser["gemm_block"] <= ser["gemm_warp"] {
		t.Errorf("gemm_block serialization %d not above gemm_warp %d", ser["gemm_block"], ser["gemm_warp"])
	}
}

// TestGEMMRegisterLadder checks register pressure rises along the ladder —
// the property that makes the family interesting to register compression.
func TestGEMMRegisterLadder(t *testing.T) {
	regs := map[string]int{}
	for variant := range gemmVariants {
		g, err := sim.New(testCfg(core.ModeOff))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		inst, err := BuildGEMMInstance(g.Mem(), variant, 32, 32, 32)
		if err != nil {
			t.Fatalf("BuildGEMMInstance(%s): %v", variant, err)
		}
		regs[variant] = inst.Launch.Kernel.NumRegs
	}
	if !(regs["gemm_naive"] < regs["gemm_block"] && regs["gemm_block"] < regs["gemm_warp"] && regs["gemm_warp"] < regs["gemm_reg"]) {
		t.Errorf("register pressure not monotonic along the ladder: %v", regs)
	}
}

func TestGEMMBadShape(t *testing.T) {
	g, err := sim.New(testCfg(core.ModeOff))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	if _, err := BuildGEMMInstance(g.Mem(), "gemm_naive", 0, 4, 4); err == nil {
		t.Errorf("zero M accepted")
	}
	if _, err := BuildGEMMInstance(g.Mem(), "gemm_fast", 4, 4, 4); err == nil {
		t.Errorf("unknown variant accepted")
	}
}

package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// characterRun executes one benchmark at Small scale under the default
// warped configuration and returns the run statistics.
func characterRun(t *testing.T, name string) *stats.Stats {
	t.Helper()
	res := runAndCheck(t, name, testCfg(core.ModeWarped))
	return &res.Stats
}

// TestWorkloadCharacter pins the register-value and divergence character
// each benchmark was built to reproduce (paper §3 and Figs 2/3/8). If a
// kernel or input generator changes in a way that erases its character, the
// suite stops being a faithful stand-in for the paper's workloads and these
// tests fail.
func TestWorkloadCharacter(t *testing.T) {
	t.Run("lib is the zero-dynamic-range best case", func(t *testing.T) {
		s := characterRun(t, "lib")
		if nd := s.NonDivergentRatio(); nd != 1 {
			t.Fatalf("lib diverged: %v", nd)
		}
		if cr := s.CompressionRatio(stats.NonDivergent); cr < 6 {
			t.Fatalf("lib compression ratio %.2f, want near the bank cap of 8", cr)
		}
	})

	t.Run("aes never diverges", func(t *testing.T) {
		s := characterRun(t, "aes")
		if s.DivergentInstrs != 0 {
			t.Fatalf("aes diverged %d times; the paper marks its divergent bars N/A", s.DivergentInstrs)
		}
	})

	t.Run("bfs and mum diverge heavily", func(t *testing.T) {
		for _, name := range []string{"bfs", "mum"} {
			s := characterRun(t, name)
			if nd := s.NonDivergentRatio(); nd > 0.98 {
				t.Fatalf("%s barely diverged (%.3f non-divergent)", name, nd)
			}
		}
	})

	t.Run("pathfinder injects dummy MOVs", func(t *testing.T) {
		s := characterRun(t, "pathfinder")
		if s.DummyMovs == 0 {
			t.Fatal("pathfinder's divergent DP updates should hit compressed registers")
		}
		if r := s.DummyMovRatio(); r > 0.05 {
			t.Fatalf("dummy MOV ratio %.3f implausibly high", r)
		}
	})

	t.Run("histo exercises atomics", func(t *testing.T) {
		s := characterRun(t, "histo")
		if s.GlobalTxns == 0 {
			t.Fatal("histo issued no global transactions")
		}
	})

	t.Run("shared-memory kernels use shared memory", func(t *testing.T) {
		for _, name := range []string{"nw", "lud", "lps", "pathfinder"} {
			s := characterRun(t, name)
			if s.SharedAccess == 0 {
				t.Fatalf("%s recorded no shared-memory accesses", name)
			}
		}
	})

	t.Run("every benchmark compresses something", func(t *testing.T) {
		for _, b := range All() {
			s := characterRun(t, b.Name)
			var compressed uint64
			for e := 1; e < stats.NumEncodings; e++ {
				compressed += s.WritesByEnc[stats.NonDivergent][e]
			}
			if compressed == 0 {
				t.Fatalf("%s: no compressed register writes at all", b.Name)
			}
		}
	})

	t.Run("divergent compression ratio never beats non-divergent by much", func(t *testing.T) {
		for _, b := range All() {
			s := characterRun(t, b.Name)
			if s.RegWrites[stats.Divergent] == 0 {
				continue
			}
			nd := s.CompressionRatio(stats.NonDivergent)
			dv := s.CompressionRatio(stats.Divergent)
			if dv > nd*1.5 {
				t.Fatalf("%s: divergent ratio %.2f far above non-divergent %.2f (paper Fig 8 shows the opposite)", b.Name, dv, nd)
			}
		}
	})
}

// TestSuiteAverageShape checks the suite-level aggregates stay in the
// paper's neighbourhood even at Small scale: non-divergent share around
// 0.79, non-divergent compression ratio around 2.5.
func TestSuiteAverageShape(t *testing.T) {
	var ndSum, crSum float64
	n := 0
	for _, b := range All() {
		s := characterRun(t, b.Name)
		ndSum += s.NonDivergentRatio()
		crSum += s.CompressionRatio(stats.NonDivergent)
		n++
	}
	nd, cr := ndSum/float64(n), crSum/float64(n)
	if nd < 0.6 || nd > 0.98 {
		t.Fatalf("suite non-divergent share %.2f outside the paper's neighbourhood (0.79)", nd)
	}
	if cr < 1.5 || cr > 5 {
		t.Fatalf("suite compression ratio %.2f outside the paper's neighbourhood (2.5)", cr)
	}
}

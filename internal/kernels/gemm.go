package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// The gemm family is a compute-dense workload ladder: four kernels that
// compute the same row-major int32 C = A·B but move the operand reuse one
// level closer to the execution units at each step — global memory only
// (gemm_naive), a CTA-wide shared-memory tile (gemm_block), warp-private
// sub-tiles of a shared tile (gemm_warp), and per-thread register
// accumulator sub-tiles (gemm_reg). Along the ladder shared-memory
// bank-conflict serialization falls (gemm_block's transposed B staging is
// deliberately 8-way conflicted, gemm_warp's A fragment reads 4-way,
// gemm_reg's padded layouts are conflict-free) while per-thread register
// count and accumulator pressure rise — which is exactly the operand
// population the register-compression schemes see shift from value-similar
// addresses toward live accumulators.
//
// All four share one parameter block: %param0=A %param1=B %param2=C
// %param3=M %param4=N %param5=K. Inputs are narrow (-8..7) so int32
// accumulation never saturates the similarity the paper's §3 observation
// relies on. Ragged shapes (dimensions not multiples of the tile) are
// handled with clamped staging loads and guarded stores; every thread stays
// alive through all barriers.

// gemmNaiveSrc: one thread per C element, K-loop over global memory.
// Block 16x16, no shared memory, ~12 registers.
const gemmNaiveSrc = `
.kernel gemm_naive
	mov  r0, %tid.x
	mov  r1, %tid.y
	mad  r2, %ctaid.x, 16, r0        // col
	mad  r3, %ctaid.y, 16, r1        // row
	setp.lt p0, r3, %param3
@!p0	exit
	setp.lt p1, r2, %param4
@!p1	exit
	mul  r4, r3, %param5
	shl  r4, r4, 2
	add  r4, r4, %param0             // &A[row][0]
	shl  r5, r2, 2
	add  r5, r5, %param1             // &B[0][col]
	shl  r6, %param4, 2              // B row stride
	mov  r7, 0                       // acc
	mov  r8, 0                       // k
Lk:
	ld.global r9, [r4]
	ld.global r10, [r5]
	mad  r7, r9, r10, r7
	add  r4, r4, 4
	add  r5, r5, r6
	add  r8, r8, 1
	setp.lt p2, r8, %param5
@p2	bra Lk
	mul  r11, r3, %param4
	add  r11, r11, r2
	shl  r11, r11, 2
	add  r11, r11, %param2
	st.global [r11], r7
	exit
`

// gemmBlockSrc: classic CTA tiling. A 16x16 A tile (As, words 0..255) and a
// transposed, unpadded 16x16 B tile (BsT[tx][ty], words 256..511). The
// transposed layout is the textbook mistake kept on purpose: BsT staging
// stores and the inner-loop B reads both land 16 words on 2 banks — an
// 8-way conflict the bank model must surface. Block 16x16, ~18 registers.
const gemmBlockSrc = `
.kernel gemm_block
.shared 2048
	mov  r0, %tid.x
	mov  r1, %tid.y
	mad  r2, %ctaid.x, 16, r0        // col
	mad  r3, %ctaid.y, 16, r1        // row
	mov  r4, 0                       // acc
	mov  r5, 0                       // k0: K base of the current tile
	shl  r6, r1, 6
	mad  r6, r0, 4, r6               // &As[ty][tx]
	shl  r7, r0, 6
	mad  r7, r1, 4, r7
	add  r7, r7, 1024                // &BsT[tx][ty]
	shl  r8, r1, 6                   // A scan base = &As[ty][0]
	shl  r9, r0, 6
	add  r9, r9, 1024                // B scan base = &BsT[tx][0]
Ltile:
	add  r10, r5, r0                 // ka = k0 + tx
	setp.lt p0, r3, %param3
	setp.lt p1, r10, %param5
	mul  r11, r3, %param5
	add  r11, r11, r10
	selp r11, r11, 0, p0
	selp r11, r11, 0, p1
	shl  r11, r11, 2
	add  r11, r11, %param0
	ld.global r12, [r11]             // A[row][ka], index clamped if ragged
	selp r12, r12, 0, p0
	selp r12, r12, 0, p1
	st.shared [r6], r12
	add  r10, r5, r1                 // kb = k0 + ty
	setp.lt p0, r10, %param5
	setp.lt p2, r2, %param4
	mul  r11, r10, %param4
	add  r11, r11, r2
	selp r11, r11, 0, p0
	selp r11, r11, 0, p2
	shl  r11, r11, 2
	add  r11, r11, %param1
	ld.global r12, [r11]             // B[kb][col]
	selp r12, r12, 0, p0
	selp r12, r12, 0, p2
	st.shared [r7], r12
	bar.sync
	mov  r13, 0                      // kk
	mov  r14, r8
	mov  r15, r9
Lkk:
	ld.shared r16, [r14]             // As[ty][kk]: 16-lane broadcast
	ld.shared r17, [r15]             // BsT[tx][kk]: 8-way bank conflict
	mad  r4, r16, r17, r4
	add  r14, r14, 4
	add  r15, r15, 4
	add  r13, r13, 1
	setp.lt p3, r13, 16
@p3	bra Lkk
	bar.sync
	add  r5, r5, 16
	setp.lt p3, r5, %param5
@p3	bra Ltile
	setp.lt p0, r3, %param3
@!p0	bra Ldone
	setp.lt p1, r2, %param4
	mul  r11, r3, %param4
	add  r11, r11, r2
	shl  r11, r11, 2
	add  r11, r11, %param2
@p1	st.global [r11], r4
Ldone:
	exit
`

// gemmWarpSrc: a 32x32 CTA tile computed by 4 warps, each owning a 16x16
// sub-tile; every lane accumulates a 4x2 register fragment. The A tile
// (words 0..511, stride 16) is left unpadded so the four A-fragment reads
// of a warp hit one bank (4-way conflict, 8-lane broadcast); the B tile
// (words 512..1039) is padded to stride 33, making its reads conflict-free.
// Block 128x1, ~33 registers.
const gemmWarpSrc = `
.kernel gemm_warp
.shared 4160
	mov  r0, %tid.x
	shr  r1, %warpid, 1              // warp tile row
	and  r2, %warpid, 1              // warp tile col
	shr  r3, %laneid, 3              // lane row group
	and  r4, %laneid, 7              // lane col group
	shl  r5, r1, 4
	mad  r5, r3, 4, r5               // lrow0 = wr*16 + ly*4
	shl  r6, r2, 4
	mad  r6, r4, 2, r6               // lcol0 = wc*16 + lx*2
	mad  r7, %ctaid.y, 32, r5        // grow0
	mad  r8, %ctaid.x, 32, r6        // gcol0
	shl  r31, r5, 6                  // A scan base = &As[lrow0][0]
	shl  r32, r6, 2
	add  r32, r32, 2048              // B scan base = &Bs[0][lcol0]
	mov  r16, 0
	mov  r17, 0
	mov  r18, 0
	mov  r19, 0
	mov  r20, 0
	mov  r21, 0
	mov  r22, 0
	mov  r23, 0
	mov  r9, 0                       // k0
Ltile:
	mov  r10, r0                     // stage As: elements t, t+128, ...
LsA:
	shr  r11, r10, 4                 // tile row
	and  r12, r10, 15                // tile k
	mad  r13, %ctaid.y, 32, r11      // global row
	add  r14, r9, r12                // global k
	setp.lt p0, r13, %param3
	setp.lt p1, r14, %param5
	mul  r15, r13, %param5
	add  r15, r15, r14
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	shl  r15, r15, 2
	add  r15, r15, %param0
	ld.global r15, [r15]
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	shl  r11, r10, 2                 // As word = row*16 + k = e
	st.shared [r11], r15
	add  r10, r10, 128
	setp.lt p2, r10, 512
@p2	bra LsA
	mov  r10, r0                     // stage Bs
LsB:
	shr  r11, r10, 5                 // tile k
	and  r12, r10, 31                // tile col
	add  r13, r9, r11                // global k
	mad  r14, %ctaid.x, 32, r12      // global col
	setp.lt p0, r13, %param5
	setp.lt p1, r14, %param4
	mul  r15, r13, %param4
	add  r15, r15, r14
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	shl  r15, r15, 2
	add  r15, r15, %param1
	ld.global r15, [r15]
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	mul  r11, r11, 33                // Bs word = 512 + k*33 + col
	add  r11, r11, r12
	shl  r11, r11, 2
	add  r11, r11, 2048
	st.shared [r11], r15
	add  r10, r10, 128
	setp.lt p2, r10, 512
@p2	bra LsB
	bar.sync
	mov  r30, 0                      // kk
	mov  r14, r31
	mov  r15, r32
Lkk:
	ld.shared r24, [r14]             // A fragment: 4 rows, one bank (4-way)
	ld.shared r25, [r14+64]
	ld.shared r26, [r14+128]
	ld.shared r27, [r14+192]
	ld.shared r28, [r15]             // B fragment: padded, conflict-free
	ld.shared r29, [r15+4]
	mad  r16, r24, r28, r16
	mad  r17, r24, r29, r17
	mad  r18, r25, r28, r18
	mad  r19, r25, r29, r19
	mad  r20, r26, r28, r20
	mad  r21, r26, r29, r21
	mad  r22, r27, r28, r22
	mad  r23, r27, r29, r23
	add  r14, r14, 4
	add  r15, r15, 132
	add  r30, r30, 1
	setp.lt p2, r30, 16
@p2	bra Lkk
	bar.sync
	add  r9, r9, 16
	setp.lt p2, r9, %param5
@p2	bra Ltile
	setp.lt p0, r7, %param3          // row grow0+0
@!p0	bra Lc1
	mul  r11, r7, %param4
	add  r11, r11, r8
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r8, %param4
@p1	st.global [r11], r16
	add  r12, r8, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r17
Lc1:
	add  r10, r7, 1
	setp.lt p0, r10, %param3
@!p0	bra Lc2
	mul  r11, r10, %param4
	add  r11, r11, r8
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r8, %param4
@p1	st.global [r11], r18
	add  r12, r8, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r19
Lc2:
	add  r10, r7, 2
	setp.lt p0, r10, %param3
@!p0	bra Lc3
	mul  r11, r10, %param4
	add  r11, r11, r8
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r8, %param4
@p1	st.global [r11], r20
	add  r12, r8, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r21
Lc3:
	add  r10, r7, 3
	setp.lt p0, r10, %param3
@!p0	bra Ldone
	mul  r11, r10, %param4
	add  r11, r11, r8
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r8, %param4
@p1	st.global [r11], r22
	add  r12, r8, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r23
Ldone:
	exit
`

// gemmRegSrc: the register-tiled ceiling of the ladder. A 32x32 CTA tile
// computed by 64 threads, each owning a 4x4 register accumulator fragment
// (16 live accumulators, ~41 registers/thread — the family's register-
// pressure maximum). Both shared tiles are padded (A to stride 17, B to
// stride 33) so every inner-loop read is conflict-free; per kk iteration a
// thread performs 8 shared reads and 16 MADs. Block 64x1.
const gemmRegSrc = `
.kernel gemm_reg
.shared 4288
	mov  r0, %tid.x
	shr  r1, r0, 3                   // thread tile row
	and  r2, r0, 7                   // thread tile col
	shl  r3, r1, 2                   // lrow0
	shl  r4, r2, 2                   // lcol0
	mad  r5, %ctaid.y, 32, r3        // grow0
	mad  r6, %ctaid.x, 32, r4        // gcol0
	mul  r7, r3, 68                  // A scan base = &As[lrow0][0], stride 17
	shl  r8, r2, 4
	add  r8, r8, 2176                // B scan base = &Bs[0][lcol0]
	mov  r16, 0
	mov  r17, 0
	mov  r18, 0
	mov  r19, 0
	mov  r20, 0
	mov  r21, 0
	mov  r22, 0
	mov  r23, 0
	mov  r24, 0
	mov  r25, 0
	mov  r26, 0
	mov  r27, 0
	mov  r28, 0
	mov  r29, 0
	mov  r30, 0
	mov  r31, 0
	mov  r9, 0                       // k0
	and  r41, r0, 31                 // As staging row (one lane per row:
	shr  r42, r0, 5                  // 17*row mod 32 is a bijection, so the
	shl  r42, r42, 3                 // 32 stores of a warp hit 32 banks)
	mad  r43, %ctaid.y, 32, r41      // global staging row
	mul  r44, r41, 17                // As staging row word base
Ltile:
	mov  r10, 0                      // stage As: k slots colbase+0..7
LsA:
	add  r12, r42, r10               // tile k
	add  r13, r9, r12                // global k
	setp.lt p0, r43, %param3
	setp.lt p1, r13, %param5
	mul  r15, r43, %param5
	add  r15, r15, r13
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	shl  r15, r15, 2
	add  r15, r15, %param0
	ld.global r15, [r15]
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	add  r11, r44, r12               // As word = row*17 + k (padded)
	shl  r11, r11, 2
	st.shared [r11], r15
	add  r10, r10, 1
	setp.lt p2, r10, 8
@p2	bra LsA
	mov  r10, r0                     // stage Bs
LsB:
	shr  r11, r10, 5                 // tile k
	and  r12, r10, 31                // tile col
	add  r13, r9, r11                // global k
	mad  r14, %ctaid.x, 32, r12      // global col
	setp.lt p0, r13, %param5
	setp.lt p1, r14, %param4
	mul  r15, r13, %param4
	add  r15, r15, r14
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	shl  r15, r15, 2
	add  r15, r15, %param1
	ld.global r15, [r15]
	selp r15, r15, 0, p0
	selp r15, r15, 0, p1
	mul  r11, r11, 33                // Bs word = 544 + k*33 + col (padded)
	add  r11, r11, r12
	add  r11, r11, 544
	shl  r11, r11, 2
	st.shared [r11], r15
	add  r10, r10, 64
	setp.lt p2, r10, 512
@p2	bra LsB
	bar.sync
	mov  r40, 0                      // kk
	mov  r14, r7
	mov  r15, r8
Lkk:
	ld.shared r32, [r14]             // A fragment: padded, conflict-free
	ld.shared r33, [r14+68]
	ld.shared r34, [r14+136]
	ld.shared r35, [r14+204]
	ld.shared r36, [r15]             // B fragment: padded, conflict-free
	ld.shared r37, [r15+4]
	ld.shared r38, [r15+8]
	ld.shared r39, [r15+12]
	mad  r16, r32, r36, r16
	mad  r17, r32, r37, r17
	mad  r18, r32, r38, r18
	mad  r19, r32, r39, r19
	mad  r20, r33, r36, r20
	mad  r21, r33, r37, r21
	mad  r22, r33, r38, r22
	mad  r23, r33, r39, r23
	mad  r24, r34, r36, r24
	mad  r25, r34, r37, r25
	mad  r26, r34, r38, r26
	mad  r27, r34, r39, r27
	mad  r28, r35, r36, r28
	mad  r29, r35, r37, r29
	mad  r30, r35, r38, r30
	mad  r31, r35, r39, r31
	add  r14, r14, 4
	add  r15, r15, 132
	add  r40, r40, 1
	setp.lt p2, r40, 16
@p2	bra Lkk
	bar.sync
	add  r9, r9, 16
	setp.lt p2, r9, %param5
@p2	bra Ltile
	setp.lt p0, r5, %param3          // row grow0+0
@!p0	bra Lc1
	mul  r11, r5, %param4
	add  r11, r11, r6
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r6, %param4
@p1	st.global [r11], r16
	add  r12, r6, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r17
	add  r12, r6, 2
	setp.lt p1, r12, %param4
@p1	st.global [r11+8], r18
	add  r12, r6, 3
	setp.lt p1, r12, %param4
@p1	st.global [r11+12], r19
Lc1:
	add  r10, r5, 1
	setp.lt p0, r10, %param3
@!p0	bra Lc2
	mul  r11, r10, %param4
	add  r11, r11, r6
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r6, %param4
@p1	st.global [r11], r20
	add  r12, r6, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r21
	add  r12, r6, 2
	setp.lt p1, r12, %param4
@p1	st.global [r11+8], r22
	add  r12, r6, 3
	setp.lt p1, r12, %param4
@p1	st.global [r11+12], r23
Lc2:
	add  r10, r5, 2
	setp.lt p0, r10, %param3
@!p0	bra Lc3
	mul  r11, r10, %param4
	add  r11, r11, r6
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r6, %param4
@p1	st.global [r11], r24
	add  r12, r6, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r25
	add  r12, r6, 2
	setp.lt p1, r12, %param4
@p1	st.global [r11+8], r26
	add  r12, r6, 3
	setp.lt p1, r12, %param4
@p1	st.global [r11+12], r27
Lc3:
	add  r10, r5, 3
	setp.lt p0, r10, %param3
@!p0	bra Ldone
	mul  r11, r10, %param4
	add  r11, r11, r6
	shl  r11, r11, 2
	add  r11, r11, %param2
	setp.lt p1, r6, %param4
@p1	st.global [r11], r28
	add  r12, r6, 1
	setp.lt p1, r12, %param4
@p1	st.global [r11+4], r29
	add  r12, r6, 2
	setp.lt p1, r12, %param4
@p1	st.global [r11+8], r30
	add  r12, r6, 3
	setp.lt p1, r12, %param4
@p1	st.global [r11+12], r31
Ldone:
	exit
`

// gemmVariant describes one rung of the tiling ladder.
type gemmVariant struct {
	src   string
	block isa.Dim3
	tile  int // C tile edge covered by one CTA
}

var gemmVariants = map[string]gemmVariant{
	"gemm_naive": {gemmNaiveSrc, isa.Dim3{X: 16, Y: 16}, 16},
	"gemm_block": {gemmBlockSrc, isa.Dim3{X: 16, Y: 16}, 16},
	"gemm_warp":  {gemmWarpSrc, isa.Dim3{X: 128}, 32},
	"gemm_reg":   {gemmRegSrc, isa.Dim3{X: 64}, 32},
}

func init() {
	register(&Benchmark{
		Name:        "gemm_naive",
		Suite:       "tiling",
		Description: "dense int32 GEMM, one thread per element, no data reuse",
		Build:       buildGEMMScale("gemm_naive"),
	})
	register(&Benchmark{
		Name:        "gemm_block",
		Suite:       "tiling",
		Description: "dense int32 GEMM, 16x16 CTA tiles; transposed B staging is 8-way bank-conflicted",
		Build:       buildGEMMScale("gemm_block"),
	})
	register(&Benchmark{
		Name:        "gemm_warp",
		Suite:       "tiling",
		Description: "dense int32 GEMM, warp-level 16x16 sub-tiles with 4x2 lane fragments; 4-way A-read conflicts",
		Build:       buildGEMMScale("gemm_warp"),
	})
	register(&Benchmark{
		Name:        "gemm_reg",
		Suite:       "tiling",
		Description: "dense int32 GEMM, per-thread 4x4 register accumulator tiles; padded conflict-free shared layout",
		Build:       buildGEMMScale("gemm_reg"),
	})
}

// buildGEMMScale adapts the shape-explicit builder to the registry's
// scale-based signature. All variants share the per-shape input generator,
// so every rung of the ladder computes the identical C for a given scale —
// what lets the tiling exhibits compare them element for element.
func buildGEMMScale(variant string) func(m *mem.Global, s Scale) (*Instance, error) {
	return func(m *mem.Global, s Scale) (*Instance, error) {
		n := s.pick(32, 96, 192)
		return BuildGEMMInstance(m, variant, n, n, n)
	}
}

// BuildGEMMInstance builds one gemm-family launch for an arbitrary MxNxK
// shape (C is MxN, A is MxK, B is KxN; all row-major int32). Inputs depend
// only on the shape, never on the variant. Exported for the cross-variant
// correctness tests, which exercise ragged shapes the registry scales never
// hit.
func BuildGEMMInstance(m *mem.Global, variant string, M, N, K int) (*Instance, error) {
	v, ok := gemmVariants[variant]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown gemm variant %q", variant)
	}
	if M < 1 || N < 1 || K < 1 {
		return nil, fmt.Errorf("kernels: gemm shape %dx%dx%d must be positive", M, N, K)
	}

	r := rng(0x9e3d ^ int64(M)<<20 ^ int64(N)<<10 ^ int64(K))
	a := make([]int32, M*K)
	for i := range a {
		a[i] = int32(r.Intn(16) - 8)
	}
	b := make([]int32, K*N)
	for i := range b {
		b[i] = int32(r.Intn(16) - 8)
	}

	aAddr, err := allocInt32(m, a)
	if err != nil {
		return nil, err
	}
	bAddr, err := allocInt32(m, b)
	if err != nil {
		return nil, err
	}
	cAddr, err := m.Alloc(4 * M * N)
	if err != nil {
		return nil, err
	}

	want := hostGEMM(a, b, M, N, K)
	grid := isa.Dim3{X: (N + v.tile - 1) / v.tile, Y: (M + v.tile - 1) / v.tile}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel(variant, v.src),
			Grid:   grid,
			Block:  v.block,
			Params: [isa.NumParams]uint32{aAddr, bAddr, cAddr, uint32(M), uint32(N), uint32(K)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, cAddr, want, variant+".C")
		},
	}, nil
}

// hostGEMM is the shared reference: a plain triple loop whose int32
// wrap-around semantics match the ISA's mul/add exactly.
func hostGEMM(a, b []int32, M, N, K int) []int32 {
	c := make([]int32, M*N)
	for i := 0; i < M; i++ {
		for k := 0; k < K; k++ {
			av := a[i*K+k]
			for j := 0; j < N; j++ {
				c[i*N+j] += av * b[k*N+j]
			}
		}
	}
	return c
}

package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// aes is an AES-like counter-mode round function (GPGPU-Sim's AES): every
// thread whitens its state through S-box lookups and round-key XORs. Control
// flow is completely uniform — the paper marks AES's divergent bars "N/A" —
// while register contents mix uniform round keys (perfectly compressible)
// with near-random cipher state.
//
// Params: %param0=sbox %param1=roundkeys %param2=input %param3=output
// %param4=rounds.
const aesSrc = `
.kernel aes
	mov  r0, %tid.x
	mad  r1, %ctaid.x, %ntid.x, r0   // block index
	shl  r2, r1, 2
	add  r3, r2, %param2
	ld.global r4, [r3]               // state = input[tid]
	mov  r5, 0                       // round counter
Lround:
	shl  r6, r5, 2
	add  r6, r6, %param1
	ld.global r7, [r6]               // round key (uniform across warp)
	and  r8, r4, 255                 // low byte indexes the S-box
	shl  r8, r8, 2
	add  r8, r8, %param0
	ld.global r9, [r8]               // sbox[state & 0xff]
	shr  r10, r4, 8
	xor  r4, r9, r10
	xor  r4, r4, r7                  // mix in round key
	add  r5, r5, 1
	setp.lt p0, r5, %param4
@p0	bra Lround
	add  r11, r2, %param3
	st.global [r11], r4
	exit
`

func init() {
	register(&Benchmark{
		Name:        "aes",
		Suite:       "gpgpu-sim",
		Description: "AES-like S-box round function; zero divergence, uniform round keys",
		Build:       buildAES,
	})
}

func buildAES(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 128, 256)
	rounds := s.pick(6, 32, 48)
	n := ctas * block

	r := rng(0xae5)
	sbox := make([]int32, 256)
	for i := range sbox {
		sbox[i] = int32(r.Uint32())
	}
	keys := make([]int32, rounds)
	for i := range keys {
		keys[i] = int32(r.Uint32())
	}
	input := make([]int32, n)
	for i := range input {
		input[i] = int32(r.Uint32())
	}

	want := make([]int32, n)
	for i, v := range input {
		state := uint32(v)
		for rd := 0; rd < rounds; rd++ {
			state = uint32(sbox[state&255]) ^ (state >> 8) ^ uint32(keys[rd])
		}
		want[i] = int32(state)
	}

	sboxAddr, err := allocInt32(m, sbox)
	if err != nil {
		return nil, err
	}
	keyAddr, err := allocInt32(m, keys)
	if err != nil {
		return nil, err
	}
	inAddr, err := allocInt32(m, input)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * n)
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("aes", aesSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{sboxAddr, keyAddr, inAddr, outAddr, uint32(rounds)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "aes.out")
		},
	}, nil
}

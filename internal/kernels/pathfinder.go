package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// pathfinder is the paper's Figure 4 motivating example: a dynamic-
// programming shortest-path sweep. Each CTA owns a tile of columns; every
// iteration each interior thread takes the min of its three upper neighbours
// (shared memory) and adds the wall cost. The wall/prev inputs have the
// original's 0..9 dynamic range, which is what gives the kernel its strong
// register-value similarity; the IN_RANGE boundary test shaves two more
// threads per iteration, producing mild but persistent divergence.
//
// Params: %param0=wall %param1=prevRow %param2=out %param3=iterations
// %param4=cols. Block: 256 threads, 1KB shared (prev tile).
const pathfinderSrc = `
.kernel pathfinder
.shared 1024
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mov  r2, %ntid.x
	mad  r3, r1, r2, r0        // xidx = bx*B + tx
	shl  r4, r0, 2             // shared offset of prev[tx]
	shl  r7, r3, 2
	add  r7, r7, %param1
	ld.global r8, [r7]         // prevRow[xidx]
	st.shared [r4], r8
	mov  r5, 0                 // i = 0
	mov  r19, 0                // computed flag
	bar.sync
Lit:
	add  r9, r5, 1
	setp.ge p0, r0, r9         // tx >= i+1
@!p0	bra Lskip
	sub  r10, r2, r5
	sub  r10, r10, 2
	setp.le p1, r0, r10        // tx <= B-i-2
@!p1	bra Lskip
	sub  r11, r4, 4
	ld.shared r12, [r11]       // left
	ld.shared r13, [r4]        // up
	add  r14, r4, 4
	ld.shared r15, [r14]       // right
	min  r12, r12, r13
	min  r12, r12, r15         // shortest
	mad  r16, r5, %param4, r3  // wall index = cols*i + xidx
	shl  r16, r16, 2
	add  r16, r16, %param0
	ld.global r17, [r16]
	add  r18, r12, r17         // new value
	mov  r19, 1
Lskip:
	bar.sync
	setp.eq p2, r19, 1
@p2	st.shared [r4], r18
	bar.sync
	mov  r19, 0
	add  r5, r5, 1
	setp.lt p3, r5, %param3
@p3	bra Lit
	ld.shared r20, [r4]
	shl  r21, r3, 2
	add  r21, r21, %param2
	st.global [r21], r20
	exit
`

func init() {
	register(&Benchmark{
		Name:        "pathfinder",
		Suite:       "rodinia",
		Description: "grid DP shortest path (paper Fig 4); 0..9 input range, tile-boundary divergence",
		Build:       buildPathfinder,
	})
}

func buildPathfinder(m *mem.Global, s Scale) (*Instance, error) {
	const block = 256
	ctas := s.pick(4, 60, 120)
	iters := s.pick(4, 16, 24)
	cols := ctas * block

	r := rng(0x9a7f)
	wall := make([]int32, cols*iters)
	for i := range wall {
		wall[i] = int32(r.Intn(10)) // the original's 0..9 range
	}
	prev := make([]int32, cols)
	for i := range prev {
		prev[i] = int32(r.Intn(10))
	}

	wallAddr, err := allocInt32(m, wall)
	if err != nil {
		return nil, err
	}
	prevAddr, err := allocInt32(m, prev)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * cols)
	if err != nil {
		return nil, err
	}

	// Host reference: mirror the kernel's per-tile DP exactly.
	want := make([]int32, cols)
	copy(want, prev)
	for bx := 0; bx < ctas; bx++ {
		tile := want[bx*block : (bx+1)*block]
		cur := make([]int32, block)
		for i := 0; i < iters; i++ {
			copy(cur, tile)
			for tx := i + 1; tx <= block-i-2; tx++ {
				shortest := min3(tile[tx-1], tile[tx], tile[tx+1])
				cur[tx] = shortest + wall[cols*i+bx*block+tx]
			}
			copy(tile, cur)
		}
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("pathfinder", pathfinderSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: block},
			Params: [isa.NumParams]uint32{wallAddr, prevAddr, outAddr, uint32(iters), uint32(cols)},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "pathfinder.out")
		},
	}, nil
}

func min3(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

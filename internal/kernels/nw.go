package kernels

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// nw is Rodinia's Needleman-Wunsch sequence alignment: each CTA fills a
// 32x32 score tile in shared memory by anti-diagonal waves, with a barrier
// per wave and the characteristic triangular divergence (thread tx is active
// only while tx <= wave). Scores are small integers (narrow dynamic range).
//
// Params: %param0=ref tiles (32x32 per CTA) %param1=out tiles.
const nwSrc = `
.kernel nw
.shared 4356
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	add  r2, r0, 1               // tx+1
	mul  r3, r2, -1              // boundary score -(tx+1)
	shl  r4, r2, 2               // S[0][tx+1]
	st.shared [r4], r3
	mul  r5, r2, 132             // S[tx+1][0] (row stride 33 words)
	st.shared [r5], r3
	setp.eq p0, r0, 0
@p0	st.shared [0], 0             // S[0][0] = 0
	bar.sync
	mul  r6, r1, 4096            // this CTA's ref tile base offset
	add  r6, r6, %param0

	mov  r7, 0                   // wave m = 0..31 (upper-left triangle)
Lw1:
	setp.gt p1, r0, r7
@p1	bra Lb1
	add  r8, r0, 1               // x = tx+1
	sub  r9, r7, r0
	add  r9, r9, 1               // y = m-tx+1
	mul  r10, r9, 33
	add  r10, r10, r8
	shl  r10, r10, 2             // &S[y][x]
	sub  r11, r10, 136
	ld.shared r12, [r11]         // S[y-1][x-1]
	sub  r13, r9, 1
	shl  r14, r13, 5
	add  r14, r14, r0            // (y-1)*32 + (x-1)
	shl  r14, r14, 2
	add  r14, r14, r6
	ld.global r15, [r14]         // ref[y-1][x-1]
	add  r12, r12, r15
	sub  r16, r10, 4
	ld.shared r17, [r16]         // S[y][x-1]
	sub  r17, r17, 1             // gap penalty
	sub  r18, r10, 132
	ld.shared r19, [r18]         // S[y-1][x]
	sub  r19, r19, 1
	max  r12, r12, r17
	max  r12, r12, r19
	st.shared [r10], r12
Lb1:
	bar.sync
	add  r7, r7, 1
	setp.lt p2, r7, 32
@p2	bra Lw1

	mov  r7, 30                  // wave m = 30..0 (lower-right triangle)
Lw2:
	setp.gt p1, r0, r7
@p1	bra Lb2
	sub  r8, r0, r7
	add  r8, r8, 32              // x = tx + 32 - m
	mov  r9, 32
	sub  r9, r9, r0              // y = 32 - tx
	mul  r10, r9, 33
	add  r10, r10, r8
	shl  r10, r10, 2
	sub  r11, r10, 136
	ld.shared r12, [r11]
	sub  r13, r9, 1
	shl  r14, r13, 5
	add  r14, r14, r8
	sub  r14, r14, 1             // (y-1)*32 + (x-1)
	shl  r14, r14, 2
	add  r14, r14, r6
	ld.global r15, [r14]
	add  r12, r12, r15
	sub  r16, r10, 4
	ld.shared r17, [r16]
	sub  r17, r17, 1
	sub  r18, r10, 132
	ld.shared r19, [r18]
	sub  r19, r19, 1
	max  r12, r12, r17
	max  r12, r12, r19
	st.shared [r10], r12
Lb2:
	bar.sync
	sub  r7, r7, 1
	setp.ge p3, r7, 0
@p3	bra Lw2

	mov  r9, 1                   // write back column tx+1, rows 1..32
Lout:
	mul  r10, r9, 33
	add  r10, r10, r2
	shl  r10, r10, 2
	ld.shared r12, [r10]
	sub  r13, r9, 1
	shl  r13, r13, 5
	add  r13, r13, r0
	shl  r13, r13, 2
	mul  r14, r1, 4096
	add  r13, r13, r14
	add  r13, r13, %param1
	st.global [r13], r12
	add  r9, r9, 1
	setp.le p4, r9, 32
@p4	bra Lout
	exit
`

func init() {
	register(&Benchmark{
		Name:        "nw",
		Suite:       "rodinia",
		Description: "Needleman-Wunsch tile alignment; wavefront barriers, triangular divergence, small scores",
		Build:       buildNW,
	})
}

func buildNW(m *mem.Global, s Scale) (*Instance, error) {
	const tile = 32
	ctas := s.pick(8, 96, 192)

	r := rng(0x0e77)
	ref := make([]int32, ctas*tile*tile)
	for i := range ref {
		ref[i] = int32(r.Intn(7) - 3) // similarity scores -3..3
	}

	want := make([]int32, ctas*tile*tile)
	for c := 0; c < ctas; c++ {
		var score [tile + 1][tile + 1]int32
		for x := 0; x <= tile; x++ {
			score[0][x] = int32(-x)
		}
		for y := 1; y <= tile; y++ {
			score[y][0] = int32(-y)
		}
		for y := 1; y <= tile; y++ {
			for x := 1; x <= tile; x++ {
				diag := score[y-1][x-1] + ref[c*tile*tile+(y-1)*tile+(x-1)]
				west := score[y][x-1] - 1
				north := score[y-1][x] - 1
				best := diag
				if west > best {
					best = west
				}
				if north > best {
					best = north
				}
				score[y][x] = best
				want[c*tile*tile+(y-1)*tile+(x-1)] = best
			}
		}
	}

	refAddr, err := allocInt32(m, ref)
	if err != nil {
		return nil, err
	}
	outAddr, err := m.Alloc(4 * len(want))
	if err != nil {
		return nil, err
	}

	return &Instance{
		Launch: isa.Launch{
			Kernel: mustKernel("nw", nwSrc),
			Grid:   isa.Dim3{X: ctas},
			Block:  isa.Dim3{X: tile},
			Params: [isa.NumParams]uint32{refAddr, outAddr},
		},
		Check: func(m *mem.Global) error {
			return checkInt32(m, outAddr, want, "nw.score")
		},
	}, nil
}

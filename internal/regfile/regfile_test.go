package regfile

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func gatedFile() *File {
	return New(Config{GatingEnabled: true, WakeupLatency: 10})
}

func plainFile() *File {
	return New(Config{})
}

func TestRegIDMapping(t *testing.T) {
	// Registers of one warp are consecutive ids; clusters interleave.
	if RegID(0, 0, 20) != 0 || RegID(0, 19, 20) != 19 || RegID(1, 0, 20) != 20 {
		t.Fatal("RegID mapping")
	}
	if !FitsWarps(48, 21) {
		t.Fatal("48 warps x 21 regs = 1008 must fit in 1024")
	}
	if FitsWarps(48, 22) {
		t.Fatal("48 warps x 22 regs = 1056 must not fit")
	}
}

// TestClusterAssignment: a register's banks all live in one 8-bank cluster,
// and the cluster cycles with the register id.
func TestClusterAssignment(t *testing.T) {
	f := plainFile()
	var buf [BanksPerCluster]int
	for id := 0; id < 16; id++ {
		f.CommitWrite(id, core.EncUncompressed, true, 1)
		banks := f.ReadBanks(id, 0xFFFFFFFF, buf[:0])
		if len(banks) != 8 {
			t.Fatalf("id %d: %d banks", id, len(banks))
		}
		wantCluster := id % NumClusters
		for _, b := range banks {
			if b/BanksPerCluster != wantCluster {
				t.Fatalf("id %d: bank %d outside cluster %d", id, b, wantCluster)
			}
		}
	}
}

func TestCompressedReadBanks(t *testing.T) {
	f := plainFile()
	var buf [BanksPerCluster]int
	cases := map[core.Encoding]int{core.Enc40: 1, core.Enc41: 3, core.Enc42: 5, core.EncUncompressed: 8}
	id := 4 // cluster 0
	for enc, want := range cases {
		f.CommitWrite(id, enc, true, 1)
		banks := f.ReadBanks(id, 0xFFFFFFFF, buf[:0])
		if len(banks) != want {
			t.Fatalf("%s: %d banks, want %d", enc, len(banks), want)
		}
		// Compressed data packs into the lowest banks of the cluster.
		for i, b := range banks {
			if b != i {
				t.Fatalf("%s: bank[%d] = %d, want %d (lowest-first)", enc, i, b, i)
			}
		}
	}
}

func TestPartialLaneBanks(t *testing.T) {
	f := plainFile()
	var buf [BanksPerCluster]int
	id := 0
	f.CommitWrite(id, core.EncUncompressed, true, 1)
	// Only lanes 0-3 active: one bank read.
	if banks := f.ReadBanks(id, 0x0000000F, buf[:0]); len(banks) != 1 {
		t.Fatalf("lanes 0-3: %d banks, want 1", len(banks))
	}
	// Lanes 0 and 31: banks 0 and 7.
	banks := f.ReadBanks(id, 0x80000001, buf[:0])
	if len(banks) != 2 || banks[0] != 0 || banks[1] != 7 {
		t.Fatalf("lanes 0,31: %v", banks)
	}
	// Divergent write to an uncompressed register: active-lane banks only.
	wb := f.WriteBanks(id, core.EncUncompressed, 0x000000F0, false, buf[:0])
	if len(wb) != 1 || wb[0] != 1 {
		t.Fatalf("divergent write banks: %v", wb)
	}
}

func TestReadBeforeWriteCounted(t *testing.T) {
	f := plainFile()
	var buf [BanksPerCluster]int
	if banks := f.ReadBanks(7, 0xFFFFFFFF, buf[:0]); len(banks) != 0 {
		t.Fatal("unwritten register read should access no banks")
	}
	if s := f.Snapshot(); s.ReadBeforeWrite != 1 {
		t.Fatalf("ReadBeforeWrite = %d", s.ReadBeforeWrite)
	}
}

func TestGatingLifecycle(t *testing.T) {
	f := gatedFile()
	// All banks start gated.
	if got := f.BankReady(0, 100); got != 110 {
		t.Fatalf("gated bank ready at %d, want 110 (10-cycle wakeup)", got)
	}
	// Waking bank reports the same deadline.
	if got := f.BankReady(0, 105); got != 110 {
		t.Fatalf("waking bank ready at %d, want 110", got)
	}
	// After Tick past the deadline the bank is on.
	f.Tick(110)
	if got := f.BankReady(0, 111); got != 111 {
		t.Fatalf("woken bank ready at %d, want 111", got)
	}
}

func TestGatingOnLastInvalid(t *testing.T) {
	f := gatedFile()
	id := 0 // cluster 0, entry 0
	// Wake and fill as <4,2> (banks 0-4 valid), then shrink to <4,0>:
	// banks 1-4 lose their only entry and must gate again.
	for b := 0; b < 5; b++ {
		f.BankReady(b, 0)
		f.Tick(10)
	}
	f.CommitWrite(id, core.Enc42, true, 11)
	f.CommitWrite(id, core.Enc40, true, 20)
	// Bank 1 should now be gated: an access needs a wakeup.
	if got := f.BankReady(1, 30); got != 40 {
		t.Fatalf("shrunk bank ready at %d, want 40", got)
	}
	// Bank 0 still holds the entry: immediately ready.
	if got := f.BankReady(0, 30); got != 30 {
		t.Fatalf("live bank ready at %d, want 30", got)
	}
}

func TestNoGatingWhenDisabled(t *testing.T) {
	f := plainFile()
	id := 0
	f.CommitWrite(id, core.EncUncompressed, true, 1)
	f.FreeWarp(0, 1, 2)
	// Without gating every bank keeps running: ready immediately.
	if got := f.BankReady(0, 5); got != 5 {
		t.Fatalf("ungated bank ready at %d, want 5", got)
	}
	f.Tick(3)
	if s := f.Snapshot(); s.PoweredBankCycles != NumBanks {
		t.Fatalf("powered cycles %d, want %d", s.PoweredBankCycles, NumBanks)
	}
}

func TestGatedCycleAccounting(t *testing.T) {
	f := gatedFile()
	// Wake bank 0 at cycle 50: 50 gated cycles accumulate.
	f.BankReady(0, 50)
	f.Finish(100)
	s := f.Snapshot()
	if s.PerBankGatedCycles[0] != 50 {
		t.Fatalf("bank0 gated cycles %d, want 50", s.PerBankGatedCycles[0])
	}
	// Bank 1 stayed gated the whole time.
	if s.PerBankGatedCycles[1] != 100 {
		t.Fatalf("bank1 gated cycles %d, want 100", s.PerBankGatedCycles[1])
	}
}

func TestOccupancyCensus(t *testing.T) {
	f := plainFile()
	if err := f.AllocWarp(0, 10); err != nil {
		t.Fatal(err)
	}
	f.CommitWrite(RegID(0, 0, 10), core.Enc41, true, 1)
	f.CommitWrite(RegID(0, 1, 10), core.EncUncompressed, true, 1)
	written, compressed, allocated := f.Occupancy()
	if written != 2 || compressed != 1 || allocated != 10 {
		t.Fatalf("census %d/%d/%d, want 2/1/10", written, compressed, allocated)
	}
	// Recompressing the uncompressed register updates the census.
	f.CommitWrite(RegID(0, 1, 10), core.Enc40, true, 2)
	if _, compressed, _ = f.Occupancy(); compressed != 2 {
		t.Fatalf("compressed %d after recompress, want 2", compressed)
	}
	f.FreeWarp(0, 10, 3)
	written, compressed, allocated = f.Occupancy()
	if written != 0 || compressed != 0 || allocated != 0 {
		t.Fatalf("census after free %d/%d/%d", written, compressed, allocated)
	}
}

func TestDivergentWritePanicsWhenCompressed(t *testing.T) {
	f := plainFile()
	defer func() {
		if recover() == nil {
			t.Fatal("partial compressed write must panic")
		}
	}()
	f.CommitWrite(0, core.Enc41, false, 1)
}

func TestAllocOverflow(t *testing.T) {
	f := plainFile()
	if err := f.AllocWarp(60, 20); err == nil {
		t.Fatal("slot 60 x 20 regs exceeds capacity; must fail")
	}
}

// TestValidBitInvariant: per bank, validCount always equals the number of
// set valid bits, across random commit/free sequences.
func TestValidBitInvariant(t *testing.T) {
	f := gatedFile()
	type op struct {
		ID   uint16
		Enc  uint8
		Free bool
	}
	now := uint64(1)
	run := func(ops []op) bool {
		for _, o := range ops {
			id := int(o.ID) % Capacity
			now++
			if o.Free {
				slot := id % 64
				f.FreeWarp(slot, 16, now)
				continue
			}
			enc := core.Encoding(o.Enc % 4)
			// Wake target banks first, as the pipeline does.
			var buf [BanksPerCluster]int
			for _, b := range f.WriteBanks(id, enc, 0xFFFFFFFF, true, buf[:0]) {
				f.BankReady(b, now)
			}
			f.Tick(now + 20)
			now += 21
			f.CommitWrite(id, enc, true, now)
		}
		// Check the invariant via Snapshot side effects: recount valid bits.
		for b := 0; b < NumBanks; b++ {
			count := 0
			for e := 0; e < EntriesPerBank; e++ {
				if f.banks[b].valid[e] {
					count++
				}
			}
			if count != f.banks[b].validCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRedirectPlacement: with RRCD redirection, a compressed register's
// slices land in the cluster's healthy banks first; without it, placement
// stays physical even when a bank is stuck.
func TestRedirectPlacement(t *testing.T) {
	id := 0 // cluster 0: banks 0..7; banks 1 and 2 are stuck
	var buf [BanksPerCluster]int

	r := New(Config{FaultyBanks: []int{1, 2}, RedirectCompressed: true})
	r.CommitWrite(id, core.Enc41, true, 1) // needs 3 banks
	banks := r.ReadBanks(id, 0xFFFFFFFF, buf[:0])
	want := []int{0, 3, 4} // healthy-first order skips 1 and 2
	if len(banks) != len(want) {
		t.Fatalf("redirected banks %v, want %v", banks, want)
	}
	for i := range want {
		if banks[i] != want[i] {
			t.Fatalf("redirected banks %v, want %v", banks, want)
		}
	}

	n := New(Config{FaultyBanks: []int{1, 2}})
	n.CommitWrite(id, core.Enc41, true, 1)
	banks = n.ReadBanks(id, 0xFFFFFFFF, buf[:0])
	for i, b := range []int{0, 1, 2} {
		if banks[i] != b {
			t.Fatalf("unredirected banks %v, want [0 1 2]", banks)
		}
	}
}

// TestRedirectSpill: when a cluster has fewer healthy banks than the
// encoding needs, the overflow spills into faulty banks (last in order)
// rather than panicking or leaving slices unplaced.
func TestRedirectSpill(t *testing.T) {
	// 6 of cluster 0's 8 banks are stuck; Enc42 needs 5.
	f := New(Config{FaultyBanks: []int{0, 1, 2, 3, 4, 5}, RedirectCompressed: true})
	var buf [BanksPerCluster]int
	f.CommitWrite(0, core.Enc42, true, 1)
	banks := f.ReadBanks(0, 0xFFFFFFFF, buf[:0])
	want := []int{6, 7, 0, 1, 2} // two healthy first, then faulty in order
	for i := range want {
		if banks[i] != want[i] {
			t.Fatalf("spill banks %v, want %v", banks, want)
		}
	}
}

// TestRedirectedWriteCount: only compressed writes whose default striping
// would have hit a faulty bank count as redirected.
func TestRedirectedWriteCount(t *testing.T) {
	f := New(Config{FaultyBanks: []int{6}, RedirectCompressed: true}) // cluster 0, local bank 6
	f.CommitWrite(0, core.Enc40, true, 1)                             // 1 bank: never reaches 6
	f.CommitWrite(0, core.Enc42, true, 2)                             // 5 banks: still short of 6
	if got := f.Snapshot().RedirectedWrites; got != 0 {
		t.Fatalf("RedirectedWrites = %d before any placement change", got)
	}
	g := New(Config{FaultyBanks: []int{1}, RedirectCompressed: true})
	g.CommitWrite(0, core.Enc41, true, 1) // 3 banks: default would hit bank 1
	g.CommitWrite(0, core.EncUncompressed, true, 2)
	if got := g.Snapshot().RedirectedWrites; got != 1 {
		t.Fatalf("RedirectedWrites = %d, want 1 (uncompressed writes never redirect)", got)
	}
}

// TestRedirectEncodingTransition: shrinking and growing a register across
// encodings under redirection keeps valid bits consistent — FreeWarp must
// leave the file completely empty afterwards.
func TestRedirectEncodingTransition(t *testing.T) {
	f := New(Config{GatingEnabled: true, FaultyBanks: []int{0, 9}, RedirectCompressed: true})
	if err := f.AllocWarp(0, 4); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		id := RegID(0, r, 4)
		f.CommitWrite(id, core.EncUncompressed, true, 1)
		f.CommitWrite(id, core.Enc42, true, 2)
		f.CommitWrite(id, core.Enc40, true, 3)
		f.CommitWrite(id, core.Enc41, true, 4)
	}
	f.FreeWarp(0, 4, 5)
	for i := range f.banks {
		if f.banks[i].validCount != 0 {
			t.Fatalf("bank %d holds %d valid entries after FreeWarp", i, f.banks[i].validCount)
		}
	}
	if f.numGated != NumBanks {
		t.Fatalf("%d banks gated after FreeWarp, want all %d", f.numGated, NumBanks)
	}
}

// Package regfile models the banked GPU register file of paper §2.1 /
// Figure 1: 32 SRAM banks of 256 x 128-bit entries (128 KB per SM), one read
// and one write port per bank, with per-entry valid bits and bank-level
// power gating (paper §5.3).
//
// A warp register (32 lanes x 4 B) is striped across the 8 consecutive banks
// of one cluster at a single entry index; compressed registers occupy only
// the lowest 1, 3 or 5 banks of their cluster (paper Figure 6 / §6.2).
package regfile

import (
	"fmt"

	"repro/internal/core"
)

// Geometry constants from paper Table 2.
const (
	NumBanks        = 32
	EntriesPerBank  = 256
	BanksPerCluster = core.WarpBanks // 8
	NumClusters     = NumBanks / BanksPerCluster
	// Capacity is the number of warp registers the file can hold
	// (4 clusters x 256 entries = 1024 warp registers = 32K thread regs).
	Capacity = NumClusters * EntriesPerBank
)

// Config selects the power-management behaviour of the file.
type Config struct {
	// GatingEnabled turns on bank-level power gating. The paper's
	// baseline has it off ("baseline register file does not have any
	// bank-level power-gating opportunity"); warped-compression enables it.
	GatingEnabled bool
	// WakeupLatency is the cycles to wake a gated bank (Table 2: 10).
	WakeupLatency int
	// DrowsyAfter puts a powered bank into a data-retentive drowsy state
	// after this many idle cycles (the paper's §1 rival leakage approach,
	// Abdel-Majeed & Annavaram's warped register file). 0 disables. Drowsy
	// cycles leak at a reduced rate; the 1-cycle wake is below this model's
	// granularity and is folded into the access.
	DrowsyAfter int
	// FaultyBanks lists global bank indices with permanent stuck-at
	// failures (internal/faults). The file keeps using them — data routed
	// there is corrupted, which the simulator models — unless
	// RedirectCompressed steers compressed registers away.
	FaultyBanks []int
	// RedirectCompressed enables RRCD-style redirection: a compressed
	// register, needing fewer than all 8 banks of its cluster, is placed in
	// the cluster's healthy banks first. Uncompressed registers keep the
	// fixed lane-to-bank striping (every bank, faulty or not), as the
	// hardware wiring dictates.
	RedirectCompressed bool
	// EncBanks maps each compression encoding class to the number of
	// cluster banks it occupies, threaded from the active compression
	// backend (core.BankTable). The zero value selects BDI's bank table,
	// so files built from a zero Config keep the paper's geometry.
	EncBanks [core.NumEncodings]int
}

type powerState uint8

const (
	stateOn powerState = iota
	stateGated
	stateWaking
)

// bank is one 16-byte-wide SRAM bank.
type bank struct {
	valid      [EntriesPerBank]bool
	validCount int

	state      powerState
	wakeReady  uint64 // cycle the bank finishes waking (stateWaking)
	gatedSince uint64 // cycle gating began (stateGated)

	reads, writes uint64
	gatedCycles   uint64
	lastTouch     uint64 // last access cycle (drowsy tracking)
	drowsyCycles  uint64
}

// File is the per-SM register file model. It tracks no data values — the
// functional register state lives in the simulator — only the compression
// encodings, valid bits, bank power states and access counts that the
// timing and energy models need.
type File struct {
	cfg      Config
	encBanks [core.NumEncodings]int // resolved per-class bank occupancy
	banks    [NumBanks]bank

	indicators *core.IndicatorTable
	written    []bool // per register id: has it ever been written?

	// Fault topology: per-bank stuck flags and, per cluster, the bank
	// placement order compressed registers use (healthy banks first when
	// redirection is on, identity otherwise) plus the lowest physical
	// in-cluster index of a faulty bank (BanksPerCluster when clean) —
	// a compressed write of k banks is steered away from a fault exactly
	// when firstFaulty < k.
	faulty      [NumBanks]bool
	order       [NumClusters][BanksPerCluster]uint8
	firstFaulty [NumClusters]uint8

	numGated  int
	numWaking int

	// Aggregate statistics.
	poweredBankCycles uint64
	drowsyBankCycles  uint64
	cycles            uint64
	allocatedRegs     int
	compressedRegs    int
	writtenRegs       int
	readBeforeWrite   uint64
	redirectedWrites  uint64
}

// New builds an empty register file.
func New(cfg Config) *File {
	if cfg.WakeupLatency < 0 {
		panic("regfile: negative wakeup latency")
	}
	f := &File{
		cfg:        cfg,
		encBanks:   cfg.EncBanks,
		indicators: core.NewIndicatorTable(Capacity),
		written:    make([]bool, Capacity),
	}
	if f.encBanks == ([core.NumEncodings]int{}) {
		// Zero Config: BDI's bank table (the paper's geometry).
		for i := range f.encBanks {
			f.encBanks[i] = core.Encoding(i).Banks()
		}
	}
	for i, n := range f.encBanks {
		if n < 1 || n > BanksPerCluster {
			panic(fmt.Sprintf("regfile: encoding class %d occupies %d banks (want 1..%d)", i, n, BanksPerCluster))
		}
	}
	for _, b := range cfg.FaultyBanks {
		if b < 0 || b >= NumBanks {
			panic("regfile: faulty bank index out of range")
		}
		f.faulty[b] = true
	}
	for c := 0; c < NumClusters; c++ {
		f.firstFaulty[c] = BanksPerCluster
		for i := BanksPerCluster - 1; i >= 0; i-- {
			if f.faulty[c*BanksPerCluster+i] {
				f.firstFaulty[c] = uint8(i)
			}
		}
		n := 0
		for i := 0; i < BanksPerCluster; i++ {
			if !(cfg.RedirectCompressed && f.faulty[c*BanksPerCluster+i]) {
				f.order[c][n] = uint8(i)
				n++
			}
		}
		// With redirection on, faulty banks sort last so a compressed
		// register only spills into them when the cluster has too few
		// healthy banks for its encoding.
		for i := 0; n < BanksPerCluster; i++ {
			if f.faulty[c*BanksPerCluster+i] {
				f.order[c][n] = uint8(i)
				n++
			}
		}
	}
	if cfg.GatingEnabled {
		// Empty banks hold no live registers, so they start gated
		// (paper §5.3: a bank is off whenever no entry is valid).
		for i := range f.banks {
			f.banks[i].state = stateGated
		}
		f.numGated = NumBanks
	}
	return f
}

// RegID maps (warp slot, architectural register) to a linear warp-register
// id given the kernel's per-thread register count.
func RegID(slot, reg, regsPerThread int) int {
	return slot*regsPerThread + reg
}

// FitsWarps reports whether `warps` warp slots of `regsPerThread` registers
// each fit in the file; the CTA scheduler uses this as the register
// occupancy limit.
func FitsWarps(warps, regsPerThread int) bool {
	return warps*regsPerThread <= Capacity
}

// cluster returns the cluster index and entry of a warp register id.
func cluster(id int) (c, entry int) {
	return id % NumClusters, id / NumClusters
}

// bankIndex returns the global bank index of the i-th bank of register id's
// cluster.
func bankIndex(id, i int) int {
	c, _ := cluster(id)
	return c*BanksPerCluster + i
}

// compBank returns the global bank index holding the i-th compressed slice
// of register id. Without faults (or without redirection) this is the
// cluster's i-th bank; with RRCD-style redirection the cluster's healthy
// banks are used first. The order is static per file, so a register that
// transitions between encodings always reuses a prefix or extension of the
// same bank sequence.
func (f *File) compBank(id, i int) int {
	c, _ := cluster(id)
	return c*BanksPerCluster + int(f.order[c][i])
}

// Encoding returns the current compression range indicator of register id.
func (f *File) Encoding(id int) core.Encoding { return f.indicators.Get(id) }

// Written reports whether register id holds a value.
func (f *File) Written(id int) bool { return f.written[id] }

// ReadBanks returns the global bank indices a read of register id must
// access: the compressed banks for a compressed register, or the banks
// covering the active lanes for an uncompressed one (4 lanes per bank).
// A read of a never-written register returns nil and is counted; well-formed
// kernels do not do this.
func (f *File) ReadBanks(id int, activeMask uint32, buf []int) []int {
	if !f.written[id] {
		f.readBeforeWrite++
		return buf[:0]
	}
	enc := f.indicators.Get(id)
	if enc.IsCompressed() {
		buf = buf[:0]
		for i := 0; i < f.encBanks[enc]; i++ {
			buf = append(buf, f.compBank(id, i))
		}
		return buf
	}
	return f.laneBanks(id, activeMask, buf)
}

// WriteBanks returns the banks a write of register id with encoding enc
// touches. Divergent (partial) writes are always uncompressed and touch only
// the banks covering active lanes.
func (f *File) WriteBanks(id int, enc core.Encoding, activeMask uint32, full bool, buf []int) []int {
	if enc.IsCompressed() {
		buf = buf[:0]
		for i := 0; i < f.encBanks[enc]; i++ {
			buf = append(buf, f.compBank(id, i))
		}
		return buf
	}
	if full {
		buf = buf[:0]
		for i := 0; i < BanksPerCluster; i++ {
			buf = append(buf, bankIndex(id, i))
		}
		return buf
	}
	return f.laneBanks(id, activeMask, buf)
}

// laneBanks lists the banks holding the lanes set in activeMask.
func (f *File) laneBanks(id int, activeMask uint32, buf []int) []int {
	buf = buf[:0]
	for i := 0; i < BanksPerCluster; i++ {
		if activeMask&(0xF<<(4*i)) != 0 {
			buf = append(buf, bankIndex(id, i))
		}
	}
	return buf
}

// BankReady returns the cycle at which `bankIdx` can service an access
// requested at `now`, starting a wakeup if the bank is gated. For powered
// banks this is now itself.
func (f *File) BankReady(bankIdx int, now uint64) uint64 {
	b := &f.banks[bankIdx]
	switch b.state {
	case stateOn:
		return now
	case stateWaking:
		return b.wakeReady
	default: // gated: begin wakeup
		b.gatedCycles += now - b.gatedSince
		b.state = stateWaking
		b.wakeReady = now + uint64(f.cfg.WakeupLatency)
		f.numGated--
		f.numWaking++
		return b.wakeReady
	}
}

// CountRead records a read access on a bank at cycle now.
func (f *File) CountRead(bankIdx int, now uint64) {
	b := &f.banks[bankIdx]
	b.reads++
	b.lastTouch = now
}

// CountWrite records a write access on a bank at cycle now.
func (f *File) CountWrite(bankIdx int, now uint64) {
	b := &f.banks[bankIdx]
	b.writes++
	b.lastTouch = now
}

// CommitWrite finalizes a write of register id with encoding enc at cycle
// now: it updates the valid bits of the register's cluster banks, the range
// indicator, and power-gates banks that lost their last valid entry.
//
// For a partial (divergent) write `full` is false and enc must be
// EncUncompressed; the register keeps all 8 banks valid because the dummy
// MOV mechanism guarantees the other lanes were decompressed beforehand.
func (f *File) CommitWrite(id int, enc core.Encoding, full bool, now uint64) {
	if !full && enc.IsCompressed() {
		panic("regfile: divergent write must be uncompressed")
	}
	c, entry := cluster(id)
	keep := f.encBanks[enc]
	// Walk the cluster's placement order: positions below keep hold the
	// register, the rest must be invalid. The order is static, so encoding
	// transitions (e.g. Enc42 -> Enc40) shrink or grow the same sequence.
	for i := 0; i < BanksPerCluster; i++ {
		bi := f.compBank(id, i)
		if i < keep {
			f.setValid(bi, entry, true, now)
		} else {
			f.setValid(bi, entry, false, now)
		}
	}
	if enc.IsCompressed() && f.cfg.RedirectCompressed && int(f.firstFaulty[c]) < keep {
		// Default striping would have placed a slice in a faulty bank;
		// the healthy-first order steered it away.
		f.redirectedWrites++
	}
	prev := f.indicators.Get(id)
	if !f.written[id] {
		f.written[id] = true
		f.writtenRegs++
		if enc.IsCompressed() {
			f.compressedRegs++
		}
	} else if prev.IsCompressed() != enc.IsCompressed() {
		if enc.IsCompressed() {
			f.compressedRegs++
		} else {
			f.compressedRegs--
		}
	}
	f.indicators.Set(id, enc)
}

// setValid updates one valid bit, maintaining the bank's count and power
// state.
func (f *File) setValid(bankIdx, entry int, v bool, now uint64) {
	b := &f.banks[bankIdx]
	if b.valid[entry] == v {
		return
	}
	b.valid[entry] = v
	if v {
		b.validCount++
		if b.state == stateGated {
			// Writing into a gated bank requires it awake; callers
			// stall on BankReady first, so by commit time the bank
			// is waking or on. Defensive wake here keeps state sane.
			b.gatedCycles += now - b.gatedSince
			b.state = stateOn
			f.numGated--
		}
	} else {
		b.validCount--
		if b.validCount == 0 && f.cfg.GatingEnabled && b.state == stateOn {
			b.state = stateGated
			b.gatedSince = now
			f.numGated++
		}
	}
}

// AllocWarp reserves the register ids of one warp slot (occupancy
// book-keeping only; banks stay invalid until first write).
func (f *File) AllocWarp(slot, regsPerThread int) error {
	hi := RegID(slot, regsPerThread-1, regsPerThread)
	if hi >= Capacity {
		return fmt.Errorf("regfile: warp slot %d with %d regs/thread exceeds capacity", slot, regsPerThread)
	}
	f.allocatedRegs += regsPerThread
	return nil
}

// FreeWarp releases a warp slot's registers when its CTA completes, clearing
// valid bits (which may gate banks) and indicators.
func (f *File) FreeWarp(slot, regsPerThread int, now uint64) {
	for r := 0; r < regsPerThread; r++ {
		id := RegID(slot, r, regsPerThread)
		_, entry := cluster(id)
		for i := 0; i < BanksPerCluster; i++ {
			f.setValid(bankIndex(id, i), entry, false, now)
		}
		if f.written[id] {
			f.written[id] = false
			f.writtenRegs--
			if f.indicators.Get(id).IsCompressed() {
				f.compressedRegs--
			}
		}
		f.indicators.Set(id, core.EncUncompressed)
	}
	f.allocatedRegs -= regsPerThread
}

// Tick advances power accounting by one cycle; `now` is the cycle that just
// executed. Waking banks flip to On when their delay elapses; idle powered
// banks accumulate drowsy cycles when the drowsy mode is enabled.
func (f *File) Tick(now uint64) {
	f.cycles++
	f.poweredBankCycles += uint64(NumBanks - f.numGated)
	// Fast path: with no bank mid-wakeup and drowsy tracking off, the
	// per-bank scan observes nothing — the accounting above is complete.
	if f.numWaking == 0 && f.cfg.DrowsyAfter <= 0 {
		return
	}
	for i := range f.banks {
		b := &f.banks[i]
		if b.state == stateWaking && now >= b.wakeReady {
			b.state = stateOn
			f.numWaking--
		}
		if f.cfg.DrowsyAfter > 0 && b.state == stateOn && now-b.lastTouch > uint64(f.cfg.DrowsyAfter) {
			b.drowsyCycles++
			f.drowsyBankCycles++
		}
	}
}

// Finish flushes per-bank gated intervals at end of simulation (cycle now).
func (f *File) Finish(now uint64) {
	for i := range f.banks {
		b := &f.banks[i]
		if b.state == stateGated {
			b.gatedCycles += now - b.gatedSince
			b.gatedSince = now
		}
	}
}

// Stats is a snapshot of the file's counters.
type Stats struct {
	BankReads, BankWrites uint64
	PerBankReads          [NumBanks]uint64
	PerBankWrites         [NumBanks]uint64
	PerBankGatedCycles    [NumBanks]uint64
	PoweredBankCycles     uint64
	DrowsyBankCycles      uint64
	Cycles                uint64
	ReadBeforeWrite       uint64
	// RedirectedWrites counts compressed register writes whose bank
	// placement was steered away from a faulty bank (RRCD redirection).
	RedirectedWrites uint64
}

// Snapshot returns the current statistics.
func (f *File) Snapshot() Stats {
	var s Stats
	for i := range f.banks {
		b := &f.banks[i]
		s.PerBankReads[i] = b.reads
		s.PerBankWrites[i] = b.writes
		s.PerBankGatedCycles[i] = b.gatedCycles
		s.BankReads += b.reads
		s.BankWrites += b.writes
	}
	s.PoweredBankCycles = f.poweredBankCycles
	s.DrowsyBankCycles = f.drowsyBankCycles
	s.Cycles = f.cycles
	s.ReadBeforeWrite = f.readBeforeWrite
	s.RedirectedWrites = f.redirectedWrites
	return s
}

// Occupancy returns (written, compressed, allocated) register counts for the
// Fig 12 compressed-register census.
func (f *File) Occupancy() (written, compressed, allocated int) {
	return f.writtenRegs, f.compressedRegs, f.allocatedRegs
}

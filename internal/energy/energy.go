// Package energy computes register-file energy from simulation event counts
// using the paper's Table 3 constants (CACTI + 45nm RTL synthesis values).
//
// Dynamic energy sums bank accesses times the per-access energy, 128-bit
// wire beats times the capacitance-derived wire energy, and compressor /
// decompressor activations times their activation energies. Leakage energy
// integrates powered-bank-cycles times the per-cycle bank leakage plus the
// compression units' leakage over the run.
package energy

// Params holds the technology constants of paper Table 3 plus the scaling
// knobs used by the design-space exploration figures (17, 18, 19).
type Params struct {
	VoltageV       float64 // operating voltage (1.0 V)
	ClockHz        float64 // 1.4 GHz
	WireCapFFPerMM float64 // wire capacitance, 300 fF/mm
	WireLengthMM   float64 // bank-to-collector distance, 1 mm
	WireActivity   float64 // fraction of wires toggling per beat (0.5 default)

	BankAccessPJ float64 // energy per 16-byte bank row access (7 pJ)
	BankLeakMW   float64 // leakage power per bank (5.8 mW)

	// SharedAccessPJ is the energy of one shared-memory bank row (4 B)
	// activation. CACTI-style estimate for a 48 KB 32-bank SRAM at 45nm;
	// feeds only the Breakdown's informational SharedPJ component — the
	// paper's Fig 9/14/16-19 totals are register-file energy and exclude
	// it.
	SharedAccessPJ float64

	CompActPJ    float64 // compressor activation energy (23 pJ)
	DecompActPJ  float64 // decompressor activation energy (21 pJ)
	CompLeakMW   float64 // compressor unit leakage (0.12 mW)
	DecompLeakMW float64 // decompressor unit leakage (0.08 mW)

	// RFCAccessPJ is the energy of one access to the register file cache
	// comparator (a small per-warp flip-flop array next to the execution
	// units, so no long-wire component); used only by abl4-rfc.
	RFCAccessPJ float64
	// RFCLeakMWPerKB charges the comparator's storage for leakage at the
	// same per-KB rate as the SRAM banks (5.8 mW / 4 KB) — conservative,
	// since flip-flop arrays typically leak more per bit. Caching every
	// resident warp (48 x 6 x 128 B = 36 KB/SM) is not free; Gebhart's
	// design pairs the RFC with a two-level scheduler precisely to shrink
	// this structure.
	RFCLeakMWPerKB float64
	// DrowsyLeakFactor is the fraction of normal leakage a drowsy bank
	// burns (the drowsy literature reports ~90% leakage reduction with
	// data retention); used by abl5-drowsy.
	DrowsyLeakFactor float64

	// Sweep multipliers (all 1.0 by default).
	BankAccessScale float64 // Fig 18: x1.5 / x2 / x2.5
	UnitEnergyScale float64 // Fig 17: x1.5 / x2 / x2.5
}

// DefaultParams returns Table 3 exactly.
func DefaultParams() Params {
	return Params{
		VoltageV:         1.0,
		ClockHz:          1.4e9,
		WireCapFFPerMM:   300,
		WireLengthMM:     1.0,
		WireActivity:     0.5,
		BankAccessPJ:     7,
		BankLeakMW:       5.8,
		SharedAccessPJ:   2.1,
		CompActPJ:        23,
		DecompActPJ:      21,
		CompLeakMW:       0.12,
		DecompLeakMW:     0.08,
		RFCAccessPJ:      1.2,
		RFCLeakMWPerKB:   5.8 / 4,
		DrowsyLeakFactor: 0.1,
		BankAccessScale:  1,
		UnitEnergyScale:  1,
	}
}

// WireBeatPJ is the energy to move one 128-bit bank row across the wires:
// 128 wires x 1/2 C V^2 per toggling wire x activity x length. With Table 3
// values and 50% activity this is the paper's 9.6 pJ/mm figure.
func (p Params) WireBeatPJ() float64 {
	perWirePJ := 0.5 * p.WireCapFFPerMM * 1e-3 * p.VoltageV * p.VoltageV // fF -> pF gives pJ
	return 128 * perWirePJ * p.WireActivity * p.WireLengthMM
}

// BankLeakPJPerCycle converts bank leakage power to energy per clock cycle.
func (p Params) BankLeakPJPerCycle() float64 {
	return p.BankLeakMW * 1e-3 / p.ClockHz * 1e12
}

// Events are the energy-relevant counts a simulation produces.
type Events struct {
	BankAccesses uint64 // 16-byte bank row reads + writes
	WireBeats    uint64 // 128-bit transfers between banks and collectors
	CompActs     uint64 // compressor activations
	DecompActs   uint64 // decompressor activations
	RFCAccesses  uint64 // register file cache accesses (abl4-rfc comparator)
	RFCKB        int    // total RFC capacity (leakage), summed over SMs
	// SharedBankAccesses counts shared-memory bank row activations (the
	// bank model's distinct-word fetches, mem.AnalyzeShared).
	SharedBankAccesses uint64

	PoweredBankCycles uint64 // sum over cycles of non-gated bank count
	DrowsyBankCycles  uint64 // powered cycles spent in the drowsy state
	Cycles            uint64 // total SM cycles
	CompUnits         int    // compressor units present (leakage)
	DecompUnits       int    // decompressor units present
}

// Add accumulates ev into e (for summing across SMs). Cycles takes the max:
// SMs run concurrently, so leakage time is the longest SM's, while unit
// counts sum.
func (e *Events) Add(ev Events) {
	e.BankAccesses += ev.BankAccesses
	e.WireBeats += ev.WireBeats
	e.CompActs += ev.CompActs
	e.DecompActs += ev.DecompActs
	e.RFCAccesses += ev.RFCAccesses
	e.RFCKB += ev.RFCKB
	e.SharedBankAccesses += ev.SharedBankAccesses
	e.PoweredBankCycles += ev.PoweredBankCycles
	e.DrowsyBankCycles += ev.DrowsyBankCycles
	if ev.Cycles > e.Cycles {
		e.Cycles = ev.Cycles
	}
	e.CompUnits += ev.CompUnits
	e.DecompUnits += ev.DecompUnits
}

// Breakdown is register-file energy split the way paper Fig 9 stacks it.
type Breakdown struct {
	DynamicPJ    float64 // bank access + wire movement
	LeakagePJ    float64 // bank leakage (powered cycles only)
	CompressPJ   float64 // compressor activations + leakage
	DecompressPJ float64 // decompressor activations + leakage

	// SharedPJ is shared-memory bank access energy, reported alongside the
	// register-file components for the tiling exhibits (gemm1-tiling). It
	// is deliberately excluded from TotalPJ: the paper's energy figures are
	// register-file energy, and folding a memory-side term in would shift
	// every normalized exhibit.
	SharedPJ float64
}

// TotalPJ returns the register-file total — the sum of all components
// except the informational SharedPJ (see its doc).
func (b Breakdown) TotalPJ() float64 {
	return b.DynamicPJ + b.LeakagePJ + b.CompressPJ + b.DecompressPJ
}

// Compute applies the parameters to the event counts.
func Compute(p Params, ev Events) Breakdown {
	var b Breakdown
	b.DynamicPJ = float64(ev.BankAccesses)*p.BankAccessPJ*p.BankAccessScale +
		float64(ev.WireBeats)*p.WireBeatPJ() +
		float64(ev.RFCAccesses)*p.RFCAccessPJ
	awake := float64(ev.PoweredBankCycles - ev.DrowsyBankCycles)
	b.LeakagePJ = awake*p.BankLeakPJPerCycle() +
		float64(ev.DrowsyBankCycles)*p.BankLeakPJPerCycle()*p.DrowsyLeakFactor +
		float64(ev.RFCKB)*p.RFCLeakMWPerKB*1e-3/p.ClockHz*1e12*float64(ev.Cycles)

	cyc := float64(ev.Cycles)
	perCycle := 1e-3 / p.ClockHz * 1e12 // mW -> pJ/cycle
	b.CompressPJ = float64(ev.CompActs)*p.CompActPJ*p.UnitEnergyScale +
		float64(ev.CompUnits)*cyc*p.CompLeakMW*perCycle
	b.DecompressPJ = float64(ev.DecompActs)*p.DecompActPJ*p.UnitEnergyScale +
		float64(ev.DecompUnits)*cyc*p.DecompLeakMW*perCycle
	b.SharedPJ = float64(ev.SharedBankAccesses) * p.SharedAccessPJ
	return b
}

package energy

// SchemeCost describes the compression-hardware costs of one registered
// compression backend (core schemes/v1): the per-activation energies and
// leakage of its compressor/decompressor units, and the pipeline latencies
// the timing model should charge. The bdi entry is paper Table 3 verbatim;
// the static and fpc entries are estimates derived from the relative logic
// each scheme needs (DESIGN.md §18 states the derivation and its honesty
// caveats — they are not synthesis results).
type SchemeCost struct {
	CompActPJ    float64
	DecompActPJ  float64
	CompLeakMW   float64
	DecompLeakMW float64

	CompressLatency   int // cycles per compression
	DecompressLatency int // cycles per decompression
}

// schemeCosts is keyed by registered scheme name.
var schemeCosts = map[string]SchemeCost{
	// The paper's BDI compressor: a 31-way parallel subtractor tree plus a
	// priority select over three candidate widths (Table 3, Fig 20/21
	// default latencies).
	"bdi": {
		CompActPJ:         23,
		DecompActPJ:       21,
		CompLeakMW:        0.12,
		DecompLeakMW:      0.08,
		CompressLatency:   2,
		DecompressLatency: 1,
	},
	// Static/profile-guided (Angerd): the encoding choice is a table read,
	// so only the fit-check subtractors remain on the compress path and one
	// pipeline stage disappears; the BDI decompressor is unchanged.
	"static": {
		CompActPJ:         14,
		DecompActPJ:       21,
		CompLeakMW:        0.07,
		DecompLeakMW:      0.08,
		CompressLatency:   1,
		DecompressLatency: 1,
	},
	// FPC-style frequent-pattern: pattern match and expansion are pure
	// comparator / replication logic, no delta arithmetic on either path.
	"fpc": {
		CompActPJ:         8,
		DecompActPJ:       6,
		CompLeakMW:        0.04,
		DecompLeakMW:      0.03,
		CompressLatency:   1,
		DecompressLatency: 1,
	},
}

// CostOfScheme returns the unit costs for a registered scheme name ("" means
// the default bdi scheme). Unknown names fall back to the bdi entry: the
// sim config validator rejects them long before energy accounting runs, so
// the fallback only defends exhibits against future scheme additions that
// lack a cost entry.
func CostOfScheme(name string) SchemeCost {
	if name == "" {
		name = "bdi"
	}
	if c, ok := schemeCosts[name]; ok {
		return c
	}
	return schemeCosts["bdi"]
}

// ParamsForScheme returns DefaultParams with the compression-unit constants
// replaced by the named scheme's costs; bank, wire and RFC constants are
// scheme-independent.
func ParamsForScheme(name string) Params {
	p := DefaultParams()
	c := CostOfScheme(name)
	p.CompActPJ = c.CompActPJ
	p.DecompActPJ = c.DecompActPJ
	p.CompLeakMW = c.CompLeakMW
	p.DecompLeakMW = c.DecompLeakMW
	return p
}

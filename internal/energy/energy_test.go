package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(b))
}

// TestWireEnergyMatchesPaper: Table 3 derives 9.6 pJ per 128-bit beat over
// 1mm at 50% activity from 300 fF/mm and 1V.
func TestWireEnergyMatchesPaper(t *testing.T) {
	p := DefaultParams()
	if !almost(p.WireBeatPJ(), 9.6) {
		t.Fatalf("wire beat %.3f pJ, want 9.6", p.WireBeatPJ())
	}
	p.WireActivity = 1.0
	if !almost(p.WireBeatPJ(), 19.2) {
		t.Fatalf("full-activity wire beat %.3f pJ, want 19.2", p.WireBeatPJ())
	}
	p.WireActivity = 0
	if p.WireBeatPJ() != 0 {
		t.Fatal("zero activity must cost nothing")
	}
}

// TestBankLeakagePerCycle: 5.8 mW at 1.4 GHz is ~4.143 pJ per cycle.
func TestBankLeakagePerCycle(t *testing.T) {
	p := DefaultParams()
	want := 5.8e-3 / 1.4e9 * 1e12
	if !almost(p.BankLeakPJPerCycle(), want) {
		t.Fatalf("bank leak %.4f pJ/cycle, want %.4f", p.BankLeakPJPerCycle(), want)
	}
}

func TestComputeComponents(t *testing.T) {
	p := DefaultParams()
	ev := Events{
		BankAccesses:      1000,
		WireBeats:         1000,
		CompActs:          10,
		DecompActs:        20,
		PoweredBankCycles: 3200,
		Cycles:            100,
		CompUnits:         2,
		DecompUnits:       4,
	}
	b := Compute(p, ev)
	wantDyn := 1000*7.0 + 1000*9.6
	if !almost(b.DynamicPJ, wantDyn) {
		t.Fatalf("dynamic %.1f, want %.1f", b.DynamicPJ, wantDyn)
	}
	wantLeak := 3200 * p.BankLeakPJPerCycle()
	if !almost(b.LeakagePJ, wantLeak) {
		t.Fatalf("leakage %.1f, want %.1f", b.LeakagePJ, wantLeak)
	}
	perCycle := 1e-3 / p.ClockHz * 1e12
	wantComp := 10*23.0 + 2*100*0.12*perCycle
	if !almost(b.CompressPJ, wantComp) {
		t.Fatalf("compress %.3f, want %.3f", b.CompressPJ, wantComp)
	}
	wantDecomp := 20*21.0 + 4*100*0.08*perCycle
	if !almost(b.DecompressPJ, wantDecomp) {
		t.Fatalf("decompress %.3f, want %.3f", b.DecompressPJ, wantDecomp)
	}
	if !almost(b.TotalPJ(), wantDyn+wantLeak+wantComp+wantDecomp) {
		t.Fatal("total mismatch")
	}
}

func TestScalingKnobs(t *testing.T) {
	ev := Events{BankAccesses: 100, CompActs: 10, DecompActs: 10}
	p := DefaultParams()
	base := Compute(p, ev)
	p.BankAccessScale = 2
	if got := Compute(p, ev); !almost(got.DynamicPJ-base.DynamicPJ, 100*7.0) {
		t.Fatal("bank access scaling wrong")
	}
	p = DefaultParams()
	p.UnitEnergyScale = 2
	got := Compute(p, ev)
	if !almost(got.CompressPJ, 2*base.CompressPJ) || !almost(got.DecompressPJ, 2*base.DecompressPJ) {
		t.Fatal("unit energy scaling wrong")
	}
}

// TestNonNegativeAndMonotone: energy is non-negative and monotone in every
// event count.
func TestNonNegativeAndMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b, c, d, e uint32) bool {
		ev := Events{
			BankAccesses:      uint64(a),
			WireBeats:         uint64(b),
			CompActs:          uint64(c),
			DecompActs:        uint64(d),
			PoweredBankCycles: uint64(e),
		}
		t1 := Compute(p, ev).TotalPJ()
		if t1 < 0 {
			return false
		}
		ev.BankAccesses++
		ev.WireBeats++
		ev.PoweredBankCycles++
		return Compute(p, ev).TotalPJ() >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsAdd(t *testing.T) {
	a := Events{BankAccesses: 10, Cycles: 100, CompUnits: 2, PoweredBankCycles: 50}
	b := Events{BankAccesses: 5, Cycles: 80, CompUnits: 2, PoweredBankCycles: 60}
	a.Add(b)
	if a.BankAccesses != 15 || a.CompUnits != 4 || a.PoweredBankCycles != 110 {
		t.Fatalf("sum fields wrong: %+v", a)
	}
	if a.Cycles != 100 {
		t.Fatalf("cycles should take max, got %d", a.Cycles)
	}
}

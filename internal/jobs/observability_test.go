package jobs_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/jobs"
)

// TestCacheEvictionCounter: filling the result cache past capacity must
// evict LRU entries and count every eviction.
func TestCacheEvictionCounter(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 8, CacheSize: 2})
	for latency := 1; latency <= 3; latency++ {
		cfg := testConfig()
		cfg.CompressLatency = latency
		j, err := m.Submit("zz-hold", cfg)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	st := m.Stats()
	if st.CacheEvictions != 1 {
		t.Fatalf("CacheEvictions = %d after 3 results in a 2-entry cache, want 1", st.CacheEvictions)
	}
	if st.CacheEntries != 2 {
		t.Fatalf("CacheEntries = %d, want the cache full at 2", st.CacheEntries)
	}
}

// TestRejectReasonCounters: backpressure (queue full) and lifecycle
// (draining) rejections are distinguishable, and their sum is the legacy
// Rejected counter.
func TestRejectReasonCounters(t *testing.T) {
	release := gate(t)
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 1, CacheSize: 4})

	// Distinct configs so single-flight cannot coalesce them: one runs
	// (pinned in Build), one waits in the depth-1 queue, the third is
	// backpressure.
	for i := 0; i < 3; i++ {
		cfg := testConfig()
		cfg.CompressLatency = i + 1
		_, err := m.Submit("zz-hold", cfg)
		switch i {
		case 0, 1:
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			if i == 0 {
				// Make sure the first job occupies the worker before the
				// second takes the only queue slot.
				waitQueueEmpty(t, m)
			}
		case 2:
			if !errors.Is(err, jobs.ErrQueueFull) {
				t.Fatalf("submit %d error = %v, want ErrQueueFull", i, err)
			}
		}
	}

	// Flip to draining without waiting for the drain to finish.
	drainCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Drain(drainCtx); err == nil {
		t.Fatal("drain with work in flight and a dead context must error")
	}
	cfg := testConfig()
	cfg.CompressLatency = 9
	if _, err := m.Submit("zz-hold", cfg); !errors.Is(err, jobs.ErrDraining) {
		t.Fatalf("submit while draining error = %v, want ErrDraining", err)
	}

	st := m.Stats()
	if st.RejectedFull != 1 || st.RejectedDraining != 1 {
		t.Fatalf("reject split = full %d / draining %d, want 1 / 1", st.RejectedFull, st.RejectedDraining)
	}
	if st.Rejected != st.RejectedFull+st.RejectedDraining {
		t.Fatalf("Rejected = %d, want the sum of its reasons (%d)", st.Rejected, st.RejectedFull+st.RejectedDraining)
	}
	release()
}

// waitQueueEmpty polls until the FIFO is drained into the worker pool.
func waitQueueEmpty(t *testing.T, m *jobs.Manager) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := m.Stats(); st.Queued == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queue never drained into the worker pool")
}

// TestCloseFailsUnfinishedJobs: Close must terminate queued and running
// jobs with ErrShutdown — an explicit terminal state, queryable after the
// fact — rather than leaving them dangling.
func TestCloseFailsUnfinishedJobs(t *testing.T) {
	release := gate(t)
	m := jobs.NewManager(context.Background(), jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})

	running, err := m.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, jobs.StateRunning)
	queuedCfg := testConfig()
	queuedCfg.CompressLatency = 7
	queued, err := m.Submit("zz-hold", queuedCfg)
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() { m.Close(); close(closed) }()

	for _, j := range []*jobs.Job{running, queued} {
		waitState(t, j, jobs.StateFailed)
		if _, err := j.Result(); !errors.Is(err, jobs.ErrShutdown) {
			t.Fatalf("job %s error = %v, want ErrShutdown", j.ID, err)
		}
	}
	release()
	<-closed
}

// TestSubscribeFrom: resuming a subscription after event N replays only
// the events that came later, with contiguous sequence numbers.
func TestSubscribeFrom(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	j, err := m.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	full, ch, cancel := j.Subscribe()
	cancel()
	if ch != nil {
		t.Fatal("subscription on a finished job must replay only")
	}
	if len(full) < 3 {
		t.Fatalf("history too short: %+v", full)
	}
	for i, ev := range full {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d; history ids must be contiguous", i, ev.Seq)
		}
	}

	after := full[1].Seq
	tail, ch, cancel := j.SubscribeFrom(after)
	cancel()
	if ch != nil {
		t.Fatal("resumed subscription on a finished job must replay only")
	}
	if len(tail) != len(full)-2 {
		t.Fatalf("SubscribeFrom(%d) replayed %d events, want %d", after, len(tail), len(full)-2)
	}
	if len(tail) > 0 && tail[0].Seq != after+1 {
		t.Fatalf("resume starts at Seq %d, want %d", tail[0].Seq, after+1)
	}
}

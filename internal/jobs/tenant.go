package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Per-tenant admission errors. The server maps ErrTenantQueueFull and
// ErrRateLimited to 429 (the tenant hit its own limits, the fleet is fine)
// and ErrUnknownTenant to 401.
var (
	ErrTenantQueueFull = errors.New("jobs: tenant queue quota exceeded")
	ErrRateLimited     = errors.New("jobs: tenant rate limit exceeded")
	ErrUnknownTenant   = errors.New("jobs: unknown tenant or API key")
)

// DefaultTenant is the implicit tenant every submission belongs to when no
// explicit tenants are configured: one queue, weight 1, no key, no limits —
// exactly the pre-tenancy behavior.
const DefaultTenant = "default"

// Tenant declares one API tenant: its identity (Name, API Key), its
// fair-share Weight in the admission queue, and its limits. The zero limits
// mean unlimited; Weight <= 0 means 1.
type Tenant struct {
	// Name labels the tenant in job views, stats and metrics.
	Name string `json:"name"`
	// Key is the API key presented via X-API-Key or Authorization: Bearer.
	// At most one tenant may have an empty key; it receives every
	// unauthenticated request (remove it to require keys on every call).
	Key string `json:"key"`
	// Weight is the tenant's share of worker time when queues contend:
	// a weight-3 tenant is dispatched 3× as often as a weight-1 tenant.
	Weight int `json:"weight"`
	// MaxQueued caps this tenant's queued (not running) jobs; beyond it
	// submissions fail with ErrTenantQueueFull. <= 0 means only the global
	// queue depth applies.
	MaxQueued int `json:"max_queued"`
	// RatePerSec token-bucket-limits compute admissions per second.
	// Submissions served from the result cache or the disk store are free:
	// the limit protects simulation capacity, not lookups. <= 0 disables.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the token bucket depth (default: RatePerSec rounded up, at
	// least 1).
	Burst int `json:"burst"`
}

// ParseTenants decodes and validates a JSON tenant roster (the -tenants
// file): a non-empty array of Tenant objects with unique names and unique
// keys, at most one of them anonymous (empty key).
func ParseTenants(r io.Reader) ([]Tenant, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tenants []Tenant
	if err := dec.Decode(&tenants); err != nil {
		return nil, fmt.Errorf("jobs: tenants: %w", err)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("jobs: tenants: roster is empty")
	}
	names := make(map[string]bool)
	keys := make(map[string]bool)
	anonymous := false
	for i, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("jobs: tenants[%d]: missing name", i)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("jobs: tenants: duplicate name %q", t.Name)
		}
		names[t.Name] = true
		if t.Key == "" {
			if anonymous {
				return nil, fmt.Errorf("jobs: tenants: more than one anonymous tenant (empty key)")
			}
			anonymous = true
		} else {
			if keys[t.Key] {
				return nil, fmt.Errorf("jobs: tenants: duplicate key (tenant %q)", t.Name)
			}
			keys[t.Key] = true
		}
		if t.Weight < 0 || t.MaxQueued < 0 || t.RatePerSec < 0 || t.Burst < 0 {
			return nil, fmt.Errorf("jobs: tenants[%d] (%q): negative limit", i, t.Name)
		}
	}
	return tenants, nil
}

// TenantStat is one tenant's slice of Stats.
type TenantStat struct {
	Name          string
	Weight        int
	Queued        int
	Submitted     uint64 // jobs this tenant pushed into the queue
	RejectedQuota uint64 // submissions refused by MaxQueued
	RejectedRate  uint64 // submissions refused by RatePerSec
}

// tenantState is one tenant's runtime side: its FIFO queue, its smooth-WRR
// credit, and its token bucket. All fields are guarded by fairQueue.mu.
type tenantState struct {
	spec     Tenant
	viewName string // stamped on jobs; empty in single-tenant mode (byte-compat)

	queue   []task
	current int // smooth weighted-round-robin credit

	tokens   float64
	lastFill time.Time

	submitted, rejectedQuota, rejectedRate uint64
}

// fairQueue is the multi-tenant admission queue that replaces the plain
// FIFO channel: each tenant has its own FIFO, and workers dispatch across
// the non-empty ones by smooth weighted round-robin, so one tenant's
// campaign can delay but never starve another's. It enforces the global
// depth, each tenant's queue quota, and each tenant's token-bucket rate.
//
// Lock ordering: fairQueue.mu nests strictly inside Manager.mu (the submit
// path calls in with m.mu held; workers call next without it).
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int // global queue capacity
	size   int // total queued across tenants
	closed bool

	multi  bool // explicit tenants configured
	order  []*tenantState
	byName map[string]*tenantState
	byKey  map[string]*tenantState // non-empty keys only
	anon   *tenantState            // tenant for unauthenticated requests, nil if keys required
}

func newFairQueue(depth int, tenants []Tenant) *fairQueue {
	fq := &fairQueue{
		depth:  depth,
		multi:  len(tenants) > 0,
		byName: make(map[string]*tenantState),
		byKey:  make(map[string]*tenantState),
	}
	fq.cond = sync.NewCond(&fq.mu)
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: DefaultTenant}}
	}
	now := time.Now()
	for _, t := range tenants {
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.RatePerSec > 0 && t.Burst <= 0 {
			t.Burst = int(t.RatePerSec)
			if float64(t.Burst) < t.RatePerSec {
				t.Burst++
			}
			if t.Burst < 1 {
				t.Burst = 1
			}
		}
		ts := &tenantState{spec: t, tokens: float64(t.Burst), lastFill: now}
		if fq.multi {
			ts.viewName = t.Name
		}
		fq.order = append(fq.order, ts)
		fq.byName[t.Name] = ts
		if t.Key != "" {
			fq.byKey[t.Key] = ts
		} else {
			fq.anon = ts
		}
	}
	return fq
}

// resolveKey maps a client-presented API key to its tenant name. In
// single-tenant mode every key (including none) is the default tenant; in
// multi-tenant mode an unknown key — or a missing key with no anonymous
// tenant — is ErrUnknownTenant.
func (fq *fairQueue) resolveKey(key string) (string, error) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if !fq.multi {
		return DefaultTenant, nil
	}
	if key == "" {
		if fq.anon == nil {
			return "", ErrUnknownTenant
		}
		return fq.anon.spec.Name, nil
	}
	if ts, ok := fq.byKey[key]; ok {
		return ts.spec.Name, nil
	}
	return "", ErrUnknownTenant
}

// tenantByName resolves a submission's tenant. The empty name means "the
// anonymous tenant": the implicit default in single-tenant mode, the
// keyless tenant otherwise.
func (fq *fairQueue) tenantByName(name string) (*tenantState, bool) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if name == "" {
		return fq.anon, fq.anon != nil
	}
	ts, ok := fq.byName[name]
	return ts, ok
}

// allowRateLocked spends one token from the tenant's bucket, refilling it
// from wall time first. Caller holds fq.mu. It is invoked only for
// submissions that will consume a worker — cache and store hits are never
// charged.
func (fq *fairQueue) allowRateLocked(ts *tenantState) bool {
	if ts.spec.RatePerSec <= 0 {
		return true
	}
	now := time.Now()
	ts.tokens += now.Sub(ts.lastFill).Seconds() * ts.spec.RatePerSec
	ts.lastFill = now
	if max := float64(ts.spec.Burst); ts.tokens > max {
		ts.tokens = max
	}
	if ts.tokens < 1 {
		ts.rejectedRate++
		return false
	}
	ts.tokens--
	return true
}

// admit performs every admission check and the enqueue in one critical
// section: global depth first (the fleet is full: ErrQueueFull), tenant
// quota second (only this tenant is over: ErrTenantQueueFull), the
// tenant's rate last — so a submission refused for congestion never
// spends a rate token it got nothing for.
func (fq *fairQueue) admit(ts *tenantState, t task) error {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.closed {
		return ErrDraining
	}
	if fq.size >= fq.depth {
		return ErrQueueFull
	}
	if ts.spec.MaxQueued > 0 && len(ts.queue) >= ts.spec.MaxQueued {
		ts.rejectedQuota++
		return fmt.Errorf("tenant %q: %w", ts.spec.Name, ErrTenantQueueFull)
	}
	if !fq.allowRateLocked(ts) {
		return fmt.Errorf("tenant %q: %w", ts.spec.Name, ErrRateLimited)
	}
	fq.pushLocked(ts, t)
	return nil
}

// push enqueues one task for ts, enforcing the global depth first (the
// fleet is full: ErrQueueFull) and the tenant quota second (only this
// tenant is over: ErrTenantQueueFull). It is admit without the rate
// charge; tests drive the queue through it.
func (fq *fairQueue) push(ts *tenantState, t task) error {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.closed {
		return ErrDraining
	}
	if fq.size >= fq.depth {
		return ErrQueueFull
	}
	if ts.spec.MaxQueued > 0 && len(ts.queue) >= ts.spec.MaxQueued {
		ts.rejectedQuota++
		return fmt.Errorf("tenant %q: %w", ts.spec.Name, ErrTenantQueueFull)
	}
	fq.pushLocked(ts, t)
	return nil
}

// pushLocked appends the task and wakes a worker. Caller holds fq.mu and
// has already passed the admission checks.
func (fq *fairQueue) pushLocked(ts *tenantState, t task) {
	ts.queue = append(ts.queue, t)
	ts.submitted++
	fq.size++
	fq.cond.Signal()
}

// next blocks until a task is available and returns it, choosing among
// tenants with queued work by smooth weighted round-robin. After close it
// keeps returning queued tasks until every queue is empty, then reports
// false — exactly the drain semantics of a closed channel.
func (fq *fairQueue) next() (task, bool) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		if fq.size > 0 {
			return fq.pickLocked(), true
		}
		if fq.closed {
			return task{}, false
		}
		fq.cond.Wait()
	}
}

// pickLocked runs one round of smooth WRR over the tenants that have work:
// every contender gains its weight, the richest is dispatched and pays the
// round's total back. Over time each backlogged tenant is served in
// proportion to its weight, with no bursts (the "smooth" property).
func (fq *fairQueue) pickLocked() task {
	var total int
	var winner *tenantState
	for _, ts := range fq.order {
		if len(ts.queue) == 0 {
			continue
		}
		total += ts.spec.Weight
		ts.current += ts.spec.Weight
		if winner == nil || ts.current > winner.current {
			winner = ts
		}
	}
	winner.current -= total
	t := winner.queue[0]
	winner.queue[0] = task{} // release references
	winner.queue = winner.queue[1:]
	if len(winner.queue) == 0 {
		winner.queue = nil // don't pin a grown backing array
		winner.current = 0 // a drained tenant re-contends from scratch
	}
	fq.size--
	return t
}

// close stops admission and wakes every blocked worker. Queued tasks are
// still handed out; see next.
func (fq *fairQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.mu.Unlock()
	fq.cond.Broadcast()
}

// snapshot returns per-tenant stats in configuration order.
func (fq *fairQueue) snapshot() []TenantStat {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	out := make([]TenantStat, len(fq.order))
	for i, ts := range fq.order {
		out[i] = TenantStat{
			Name:          ts.spec.Name,
			Weight:        ts.spec.Weight,
			Queued:        len(ts.queue),
			Submitted:     ts.submitted,
			RejectedQuota: ts.rejectedQuota,
			RejectedRate:  ts.rejectedRate,
		}
	}
	return out
}

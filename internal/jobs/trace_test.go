package jobs_test

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/jobs"
	"repro/internal/sim"
)

// TestRecordReplayRoundTrip is the serving-layer replay oracle: a record
// job captures a trace, a replay job under a different configuration
// re-times it, and the replayed result is byte-identical to executing that
// configuration from scratch.
func TestRecordReplayRoundTrip(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})

	rec, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: jobs.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, rec)
	ref := rec.TraceRef()
	if ref == "" {
		t.Fatal("record job finished without a trace ref")
	}
	v := rec.View()
	if v.Mode != jobs.ModeRecord || v.TraceRef != ref {
		t.Fatalf("record view = %+v, want mode=record trace_ref=%s", v, ref)
	}
	events, _, _ := rec.Subscribe()
	last := events[len(events)-1]
	if last.Kind != "done" || last.TraceRef != ref {
		t.Fatalf("terminal event = %+v, want done carrying %s", last, ref)
	}
	if st := m.Stats(); st.TracesRecorded != 1 || st.TraceEntries != 1 {
		t.Fatalf("trace stats = %+v, want 1 recorded, 1 resident", st)
	}

	// Replay the trace under a different timing configuration; the
	// benchmark is optional (the recording remembers it).
	cfg2 := testConfig()
	cfg2.CompressLatency = 4
	rep, err := m.SubmitRequest(jobs.Request{Config: cfg2, Mode: jobs.ModeReplay, TraceRef: ref})
	if err != nil {
		t.Fatal(err)
	}
	repRes := waitDone(t, rep)
	if rep.Benchmark != "zz-hold" {
		t.Fatalf("replay job benchmark %q, want zz-hold (from the trace)", rep.Benchmark)
	}
	if v := rep.View(); v.Mode != jobs.ModeReplay || v.TraceRef != ref {
		t.Fatalf("replay view = %+v", v)
	}

	// Execute the same configuration on a fresh manager (no shared cache)
	// and compare serialized results byte for byte.
	m2 := newManager(t, jobs.Config{Workers: 1, QueueDepth: 8, CacheSize: 8})
	exe, err := m2.Submit("zz-hold", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	exeRes := waitDone(t, exe)
	rj, _ := json.Marshal(repRes)
	ej, _ := json.Marshal(exeRes)
	if string(rj) != string(ej) {
		t.Fatalf("replayed result differs from executed result:\nreplay:  %s\nexecute: %s", rj, ej)
	}
}

// TestTraceModeValidation covers every strict rejection of the trace-mode
// request surface: unknown modes, dangling or missing refs, refs on
// non-replay modes, benchmark mismatches and fault configurations.
func TestTraceModeValidation(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 8, CacheSize: 8})

	var badMode *jobs.UnknownModeError
	if _, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: "turbo"}); !errors.As(err, &badMode) {
		t.Fatalf("unknown mode: err = %v, want *UnknownModeError", err)
	}

	var badTrace *jobs.UnknownTraceError
	if _, err := m.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: "trace-999999"}); !errors.As(err, &badTrace) {
		t.Fatalf("dangling ref: err = %v, want *UnknownTraceError", err)
	}

	if _, err := m.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay}); err == nil {
		t.Fatal("replay without a trace_ref accepted")
	}
	if _, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), TraceRef: "trace-000001"}); err == nil {
		t.Fatal("trace_ref on an execute job accepted")
	}

	faulty := testConfig()
	faulty.Faults.StuckAtBanks = 1
	faulty.Faults.Seed = 7
	var cfgErr *sim.ConfigError
	if _, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: faulty, Mode: jobs.ModeRecord}); !errors.As(err, &cfgErr) || cfgErr.Field != "Faults" {
		t.Fatalf("record with faults: err = %v, want *sim.ConfigError on Faults", err)
	}

	rec, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: jobs.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, rec)
	if _, err := m.SubmitRequest(jobs.Request{Benchmark: "bfs", Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: rec.TraceRef()}); err == nil {
		t.Fatal("replay under the wrong benchmark accepted")
	}
}

// TestTraceStoreEviction: the bounded store drops the oldest recording,
// whose ref then fails replay submission strictly.
func TestTraceStoreEviction(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 8, CacheSize: 8, TraceStore: 2})
	refs := make([]string, 3)
	for i := range refs {
		rec, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: jobs.ModeRecord})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, rec)
		refs[i] = rec.TraceRef()
	}
	st := m.Stats()
	if st.TracesRecorded != 3 || st.TraceEntries != 2 || st.TraceEvictions != 1 {
		t.Fatalf("trace stats = %+v, want 3 recorded / 2 resident / 1 evicted", st)
	}
	var badTrace *jobs.UnknownTraceError
	if _, err := m.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: refs[0]}); !errors.As(err, &badTrace) {
		t.Fatalf("evicted ref: err = %v, want *UnknownTraceError", err)
	}
	if _, err := m.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: refs[2]}); err != nil {
		t.Fatalf("latest ref rejected: %v", err)
	}
}

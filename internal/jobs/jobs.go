// Package jobs is the serving layer's execution subsystem: a bounded FIFO
// job queue with admission control, a worker pool that runs simulations on
// the exported experiments engine (single-flight dedup, retries, panic
// isolation, stall watchdog), and a bounded LRU result cache keyed by the
// same config signature as the engine — one identity, so the two caches
// can never drift. Jobs run in one of three modes: execute (the classic
// full simulation), record (execute plus capture of the functional
// front-end as a warped.trace/v1 launch, retained in a bounded trace store
// under a ref), and replay (drive the timing back-end from a stored
// recording — byte-identical results without re-executing the front-end).
// internal/server exposes it over HTTP; see DESIGN.md §13 for the
// backpressure policy and §15 for the record/replay split.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bytes"
	"encoding/json"

	"repro/internal/exectrace"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/store"
)

// Admission errors. The server maps them to HTTP statuses: ErrQueueFull →
// 429 (back off and retry), ErrDraining → 503 (the process is going away).
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrDraining  = errors.New("jobs: draining, not accepting new jobs")
)

// ErrShutdown terminates jobs that were still queued or running when the
// Manager was closed. Their subscribers receive an explicit terminal
// "failed" event carrying this error instead of hanging on a stream that
// will never produce another byte.
var ErrShutdown = errors.New("jobs: manager shut down before the job finished")

// UnknownBenchmarkError rejects a submission naming no registered workload.
type UnknownBenchmarkError struct{ Name string }

func (e *UnknownBenchmarkError) Error() string {
	return fmt.Sprintf("jobs: unknown benchmark %q", e.Name)
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Event is one entry of a job's progress stream, served over SSE by the
// server. Lifecycle events (queued, running, done, failed, cache-hit) come
// from the Manager; sim-* and coalesced events are the engine's progress
// stream scoped to this job's (benchmark, signature) key.
type Event struct {
	// Seq is the event's position in the job's history, assigned at append
	// time. It is the SSE event id (`id:` line), which lets a disconnected
	// client resume with Last-Event-ID without replaying what it has seen.
	// Advisory events that are fanned out live but not recorded in the
	// history (e.g. "draining") carry Seq -1.
	Seq       int    `json:"-"`
	Kind      string `json:"kind"`
	Attempt   int    `json:"attempt,omitempty"`
	Cycles    uint64 `json:"cycles,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
	// TraceRef names the stored trace on a record job's terminal "done"
	// event, so a streaming client learns the ref without re-fetching the
	// job view.
	TraceRef string `json:"trace_ref,omitempty"`
}

// Job is one submitted simulation. All mutable state is behind mu; the
// identity fields are immutable after creation.
type Job struct {
	ID        string
	Benchmark string
	Signature string // experiments.ConfigSignature of the submitted config
	Config    sim.Config
	Mode      Mode
	// Tenant is the owning tenant's name when explicit tenants are
	// configured, and empty in single-tenant mode — so single-tenant job
	// views stay byte-identical to every previous release.
	Tenant string

	mu       sync.Mutex
	state    State
	cached   bool
	traceRef string // replay: the input ref; record: set once the trace is stored
	result   *sim.Result
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	events   []Event
	subs     map[chan Event]struct{}
}

// JobView is the JSON representation of a job's current state. Mode and
// TraceRef are additive (omitted when empty), so pre-trace clients see the
// exact payload they always did.
type JobView struct {
	ID        string      `json:"id"`
	Benchmark string      `json:"benchmark"`
	Signature string      `json:"signature"`
	State     State       `json:"state"`
	Mode      Mode        `json:"mode,omitempty"`
	Tenant    string      `json:"tenant,omitempty"`
	TraceRef  string      `json:"trace_ref,omitempty"`
	Cached    bool        `json:"cached,omitempty"`
	Created   time.Time   `json:"created"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Benchmark: j.Benchmark,
		Signature: j.Signature,
		State:     j.state,
		Tenant:    j.Tenant,
		TraceRef:  j.traceRef,
		Cached:    j.cached,
		Created:   j.created,
		Result:    j.result,
	}
	if j.Mode != ModeExecute {
		// Execute is the default; omitting it keeps the payload identical
		// to what pre-trace clients have always received.
		v.Mode = j.Mode
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result and error once finished (nil, nil while
// the job is still queued or running). On an output-mismatch failure both
// are non-nil: fault campaigns need the counters of wrong runs.
func (j *Job) Result() (*sim.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// TraceRef returns the job's trace reference: the input ref of a replay
// job, or — once the job is done — the ref a record job's trace was stored
// under ("" otherwise).
func (j *Job) TraceRef() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceRef
}

// setTraceRef publishes a record job's stored-trace ref; it must be set
// before finish so the terminal event and every later view carry it.
func (j *Job) setTraceRef(ref string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.traceRef = ref
}

// Subscribe returns the job's event history so far and, when the job is
// still live, a channel delivering subsequent events (closed when the job
// finishes). A finished job returns a nil channel. cancel releases the
// subscription; it is safe to call multiple times and after the close.
// Slow subscribers do not block the engine: each channel is buffered and
// events beyond the buffer are dropped for that subscriber (the full
// history remains available via a fresh Subscribe or the job view).
func (j *Job) Subscribe() (replay []Event, ch <-chan Event, cancel func()) {
	return j.SubscribeFrom(-1)
}

// SubscribeFrom is Subscribe resuming after a known event: the replay
// holds only events with Seq > after (pass -1 for the full history). It is
// the Last-Event-ID primitive: a client that saw event N reconnects with
// after=N and misses nothing, duplicates nothing.
func (j *Job) SubscribeFrom(after int) (replay []Event, ch <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	from := after + 1
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	replay = append([]Event(nil), j.events[from:]...)
	if j.state == StateDone || j.state == StateFailed {
		return replay, nil, func() {}
	}
	c := make(chan Event, 64)
	j.subs[c] = struct{}{}
	return replay, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[c]; ok {
			delete(j.subs, c)
			close(c)
		}
	}
}

// append records an event and fans it out to live subscribers.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(ev)
}

func (j *Job) appendLocked(ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for c := range j.subs {
		select {
		case c <- ev:
		default: // slow subscriber: drop rather than stall the pipeline
		}
	}
}

// notify fans an advisory event out to live subscribers without recording
// it in the replayable history (its Seq is forced to -1, so it never
// claims an SSE event id).
func (j *Job) notify(ev Event) {
	ev.Seq = -1
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := range j.subs {
		select {
		case c <- ev:
		default:
		}
	}
}

// setRunning transitions queued → running. A job already forced to a
// terminal state (shutdown) stays there.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.appendLocked(Event{Kind: "running"})
}

// finish completes the job, emits the terminal event and closes every
// subscriber channel. It is idempotent: a job can reach a terminal state
// only once, so a worker completing a job the shutdown path already failed
// (or vice versa) is a no-op.
func (j *Job) finish(res *sim.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.result, j.err = res, err
	j.finished = time.Now()
	ev := Event{Kind: "done"}
	if err != nil {
		j.state = StateFailed
		ev = Event{Kind: "failed", Error: err.Error()}
	} else {
		j.state = StateDone
	}
	if res != nil {
		ev.Cycles = res.Cycles
	}
	if j.state == StateDone && j.Mode == ModeRecord {
		ev.TraceRef = j.traceRef
	}
	j.appendLocked(ev)
	for c := range j.subs {
		delete(j.subs, c)
		close(c)
	}
}

// Config sizes the Manager. Zero values get sensible defaults (see
// NewManager).
type Config struct {
	// Workers is the worker-pool width and the engine's parallelism;
	// <= 0 means GOMAXPROCS.
	Workers int
	// SMParallel shards each simulation's per-cycle SM loop across this
	// many goroutines, for submissions that do not pin
	// sim.Config.SMParallel themselves. <= 0 means auto (GOMAXPROCS
	// divided by Workers). Results are byte-identical at every shard
	// count, so this is invisible to the cache and the trace store.
	SMParallel int
	// QueueDepth bounds the FIFO admission queue; submissions beyond it
	// are rejected with ErrQueueFull. <= 0 means 64.
	QueueDepth int
	// CacheSize bounds the LRU result cache in entries; 0 disables
	// caching, < 0 means the 1024-entry default.
	CacheSize int
	// RetainJobs bounds how many finished jobs stay queryable; the oldest
	// finished jobs are forgotten beyond it. <= 0 means 1024.
	RetainJobs int
	// TraceStore bounds how many recorded warped.trace/v1 launches stay
	// resident for replay; the least recently used recording is evicted
	// beyond it. Replays referencing an evicted ref fall back to the disk
	// store when one is configured, and fail at submission with
	// *UnknownTraceError otherwise. <= 0 means 16.
	TraceStore int
	// TraceStoreBytes additionally bounds the resident recorded traces by
	// their in-memory size (Launch.MemBytes); <= 0 means no byte budget.
	// Whichever of the two trace bounds is hit first evicts.
	TraceStoreBytes int64
	// Store, when non-nil, is the disk-backed write-through store:
	// completed results and recorded traces are persisted to it
	// asynchronously, and submissions that miss the in-memory LRU are
	// served from it — so a restarted process answers repeat sweeps
	// without re-simulating. The Manager does not close it.
	Store *store.Store
	// Scale is the workload size benchmarks are built at (default Small).
	Scale kernels.Scale
	// Retries, RetryBackoff and Watchdog configure the engine's
	// per-job robustness exactly as in the experiment runner.
	Retries      int
	RetryBackoff time.Duration
	Watchdog     time.Duration
	// Tenants declares the API tenants (see Tenant). Empty means
	// single-tenant: no authentication, one implicit "default" tenant with
	// no limits — the pre-tenancy behavior, byte-for-byte.
	Tenants []Tenant
}

// Stats is a point-in-time snapshot of the Manager's counters, rendered by
// the server's /metrics endpoint.
type Stats struct {
	Submitted uint64 // admitted jobs (queued at least once)
	Rejected  uint64 // refused: queue full or draining
	Completed uint64 // finished successfully
	Failed    uint64 // finished with an error
	Coalesced uint64 // joined an in-flight identical simulation

	// Reject reasons, split so operators can tell backpressure (queue
	// full, client should retry) from lifecycle (draining, client should
	// go elsewhere). RejectedFull + RejectedDraining == Rejected.
	RejectedFull     uint64
	RejectedDraining uint64

	CacheHits      uint64 // served entirely from the LRU result cache
	CacheMisses    uint64
	CacheEvictions uint64 // results dropped by LRU capacity pressure
	CacheEntries   int

	TracesRecorded    uint64 // traces captured by record jobs over the process lifetime
	TraceEvictions    uint64 // recordings dropped by trace-store capacity pressure
	TraceEntries      int    // recordings currently resident and replayable
	TraceBytes        int64  // resident recorded-trace bytes (Launch.MemBytes)
	TraceEvictedBytes uint64 // recorded-trace bytes reclaimed by capacity pressure

	// Disk store counters (all zero when no store is configured).
	StoreEnabled      bool
	StoreHits         uint64 // submissions served from the disk store
	StoreEntries      int
	StoreBytes        int64
	StoreBudget       int64
	StoreWrites       uint64
	StoreWriteErrors  uint64
	StoreQuarantined  uint64
	StoreEvicted      uint64
	StoreEvictedBytes uint64

	SimCycles uint64 // total simulated cycles across completed runs

	Queued        int // jobs waiting in the FIFO
	Running       int // jobs occupying a worker
	QueueCapacity int
	Workers       int
	Draining      bool

	// MultiTenant is true when explicit tenants are configured; Tenants
	// then holds one entry per tenant in configuration order. In
	// single-tenant mode it holds the implicit default tenant.
	MultiTenant bool
	Tenants     []TenantStat
}

// task is one queue entry: the job plus everything a worker needs to run
// it. launch is the resolved trace of a replay job (resolution happens at
// submission, so a worker never discovers a dangling ref).
type task struct {
	job    *Job
	bench  *kernels.Benchmark
	cfg    sim.Config
	launch *exectrace.Launch
}

// Manager owns the queue, the worker pool, the engine and the result
// cache. Build one with NewManager; shut it down with Drain (graceful)
// and/or Close.
type Manager struct {
	cfg    Config
	eng    *experiments.Engine
	cancel context.CancelFunc

	fq *fairQueue
	wg sync.WaitGroup // workers

	// pending counts admitted-but-unfinished tasks; Drain waits on it.
	pending sync.WaitGroup

	// storeWG counts in-flight write-through persists. Drain and Close wait
	// on it after pending, so a SIGTERM during a sweep never loses a
	// completed result that was still on its way to disk.
	storeWG sync.WaitGroup
	store   *store.Store // nil when no disk store is configured

	// testWriteDelay stalls every write-through persist; only the
	// drain-flush test sets it (before any submission), to prove Drain
	// waits for persists that are still in flight.
	testWriteDelay time.Duration

	mu       sync.Mutex
	closed   bool
	draining bool
	jobs     map[string]*Job
	finished []string          // finished job IDs, oldest first (retention ring)
	byKey    map[string][]*Job // running jobs by sim key, for event fanout
	cache    *lru
	traces   *traceStore
	nextID   uint64

	submitted, completed, failed      uint64
	rejectedFull, rejectedDraining    uint64
	coalesced, cacheHits, cacheMisses uint64
	storeHits                         uint64
	simCycles                         uint64
	queued, running                   int
}

// NewManager builds and starts a Manager. ctx bounds every simulation it
// will ever run; canceling it aborts in-flight work (Close does this too).
func NewManager(ctx context.Context, cfg Config) *Manager {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 1024
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.TraceStore <= 0 {
		cfg.TraceStore = 16
	}
	ctx, cancel := context.WithCancel(ctx)
	m := &Manager{
		cfg:    cfg,
		cancel: cancel,
		fq:     newFairQueue(cfg.QueueDepth, cfg.Tenants),
		jobs:   make(map[string]*Job),
		byKey:  make(map[string][]*Job),
		cache:  newLRU(cfg.CacheSize),
		traces: newTraceStore(cfg.TraceStore, cfg.TraceStoreBytes),
		store:  cfg.Store,
	}
	// Trace refs carry a per-process nonce, so recordings persisted by a
	// previous process (or a live peer sharing the store directory) can
	// never collide with refs this process mints — no startup scan needed;
	// replays of old refs resolve through the disk store on demand.
	m.eng = experiments.NewEngine(ctx, experiments.EngineConfig{
		Parallelism:  cfg.Workers,
		SMParallel:   cfg.SMParallel,
		Scale:        cfg.Scale,
		Retries:      cfg.Retries,
		RetryBackoff: cfg.RetryBackoff,
		Watchdog:     cfg.Watchdog,
		Progress:     m.onEngineEvent,
		// No engine memoization: the bounded LRU above is the retention
		// policy; the engine contributes single-flight dedup only.
		Memoize: false,
	})
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// key is the shared cache/single-flight identity of a submission.
func key(benchmark, signature string) string { return benchmark + "|" + signature }

// storeKey is the disk store's result identity. It prefixes the in-memory
// key with the workload scale because ConfigSignature covers only the sim
// configuration — the same config at a different scale is a different
// simulation, and the disk store outlives any single process's -scale flag.
func (m *Manager) storeKey(benchmark, signature string) string {
	return m.cfg.Scale.String() + "|" + key(benchmark, signature)
}

// loadStoredResult probes the disk store for a completed result. A payload
// that passes the store's CRC but no longer unmarshals is quarantined and
// reported as a miss — degrade to recompute, never serve a wrong result.
// Called WITHOUT m.mu held: this is disk I/O, and a submission that misses
// the memory cache must not stall every other manager operation behind it.
func (m *Manager) loadStoredResult(benchmark, signature string) (*sim.Result, bool) {
	data, ok := m.store.Get(store.NSResult, m.storeKey(benchmark, signature))
	if !ok {
		return nil, false
	}
	res := new(sim.Result)
	if err := json.Unmarshal(data, res); err != nil {
		m.store.Quarantine(store.NSResult, m.storeKey(benchmark, signature), err)
		return nil, false
	}
	return res, true
}

// loadStoredTrace probes the disk store for a recorded trace, returning
// the launch and the benchmark it was recorded from. Undecodable blobs are
// quarantined. Called WITHOUT m.mu held; the caller re-admits the trace to
// the in-memory store under the lock.
func (m *Manager) loadStoredTrace(ref string) (*exectrace.Launch, string, bool) {
	data, ok := m.store.Get(store.NSTrace, ref)
	if !ok {
		return nil, "", false
	}
	tr, err := exectrace.Read(bytes.NewReader(data))
	if err == nil && len(tr.Launches) != 1 {
		err = fmt.Errorf("trace blob holds %d launches, want 1", len(tr.Launches))
	}
	if err != nil {
		m.store.Quarantine(store.NSTrace, ref, err)
		return nil, "", false
	}
	return tr.Launches[0], tr.Meta.Benchmark, true
}

// persistResult writes one completed result through to the disk store.
// Runs on its own goroutine under storeWG; errors are absorbed (and counted
// by the store) — persistence is an optimization, never a job failure.
func (m *Manager) persistResult(benchmark, signature string, res *sim.Result) {
	defer m.storeWG.Done()
	if m.testWriteDelay > 0 {
		time.Sleep(m.testWriteDelay)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	_ = m.store.Put(store.NSResult, m.storeKey(benchmark, signature), data)
}

// persistTrace writes one recorded launch through to the disk store as a
// single-launch warped.trace/v1 container, so a future process can replay
// the ref. Runs on its own goroutine under storeWG.
func (m *Manager) persistTrace(ref, benchmark string, lt *exectrace.Launch) {
	defer m.storeWG.Done()
	var buf bytes.Buffer
	t := &exectrace.Trace{
		Meta:     exectrace.Meta{Benchmark: benchmark, Scale: m.cfg.Scale.String()},
		Launches: []*exectrace.Launch{lt},
	}
	if err := exectrace.Write(&buf, t); err != nil {
		return
	}
	_ = m.store.Put(store.NSTrace, ref, buf.Bytes())
}

// Request is one job submission: a benchmark and configuration, plus the
// optional trace-mode fields. Mode "" (and "execute") is the classic full
// simulation; "record" additionally captures the functional execution as a
// warped.trace/v1 launch and stores it under a ref; "replay" drives the
// timing back-end from a previously recorded ref — byte-identical results
// without re-executing the front-end. Replay may leave Benchmark empty
// (the trace is self-contained and remembers it); a non-empty Benchmark
// must match the recording.
type Request struct {
	Benchmark string
	Config    sim.Config
	Mode      Mode
	TraceRef  string // replay input ref; must be empty in every other mode
	// Tenant is the submitting tenant's name, resolved from the API key by
	// the server (ResolveAPIKey). Empty means the anonymous tenant: the
	// implicit default in single-tenant mode, the keyless tenant otherwise.
	Tenant string
}

// Submit validates and admits one execute-mode simulation job. It is
// SubmitRequest with the classic two-argument signature.
func (m *Manager) Submit(benchmark string, cfg sim.Config) (*Job, error) {
	return m.SubmitRequest(Request{Benchmark: benchmark, Config: cfg})
}

// SubmitRequest validates and admits one job. It returns the job
// immediately: completed (cache hit), or queued for the worker pool.
// Admission failures: ErrDraining once a drain has begun, ErrQueueFull
// when the FIFO is at capacity, *UnknownBenchmarkError / *UnknownModeError
// / *UnknownTraceError / config validation errors for bad requests.
func (m *Manager) SubmitRequest(req Request) (*Job, error) {
	mode, err := parseMode(string(req.Mode))
	if err != nil {
		return nil, err
	}
	if req.TraceRef != "" && mode != ModeReplay {
		return nil, fmt.Errorf("jobs: trace_ref is only valid with mode \"replay\" (got mode %q)", mode)
	}
	if mode == ModeReplay && req.TraceRef == "" {
		return nil, fmt.Errorf("jobs: mode \"replay\" requires a trace_ref (record one first)")
	}
	if mode != ModeExecute && req.Config.Faults.Enabled() {
		return nil, &sim.ConfigError{Field: "Faults", Reason: "fault injection corrupts functional state at commit time; record and replay require a fault-free functional front-end"}
	}
	var b *kernels.Benchmark
	benchmark := req.Benchmark
	if mode != ModeReplay {
		var ok bool
		if b, ok = kernels.ByName(benchmark); !ok {
			return nil, &UnknownBenchmarkError{Name: benchmark}
		}
	}
	cfg := req.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.draining {
		m.rejectedDraining++
		m.mu.Unlock()
		return nil, ErrDraining
	}
	tenant, ok := m.fq.tenantByName(req.Tenant)
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("tenant %q: %w", req.Tenant, ErrUnknownTenant)
	}
	var launch *exectrace.Launch
	if mode == ModeReplay {
		st, ok := m.traces.get(req.TraceRef)
		if !ok && m.store != nil {
			// The ref may have been recorded by a previous process (or
			// evicted from memory): fall back to the disk store. The probe
			// is disk I/O, so m.mu is dropped around it; the draining check
			// is repeated after re-locking (see below).
			m.mu.Unlock()
			lt, bench, loaded := m.loadStoredTrace(req.TraceRef)
			m.mu.Lock()
			if m.draining {
				m.rejectedDraining++
				m.mu.Unlock()
				return nil, ErrDraining
			}
			if loaded {
				m.traces.insert(req.TraceRef, bench, lt)
			}
			st, ok = m.traces.get(req.TraceRef)
		}
		if !ok {
			m.mu.Unlock()
			return nil, &UnknownTraceError{Ref: req.TraceRef}
		}
		if benchmark != "" && benchmark != st.benchmark {
			m.mu.Unlock()
			return nil, fmt.Errorf("jobs: trace %s records benchmark %q, not %q", req.TraceRef, st.benchmark, benchmark)
		}
		benchmark = st.benchmark
		launch = st.launch
	}
	signature := experiments.ConfigSignature(&cfg)
	k := key(benchmark, signature)
	// Record jobs exist to capture a trace, so a cached result must not
	// short-circuit them; execute and replay jobs produce byte-identical
	// results by contract and share the cache freely.
	if mode != ModeRecord {
		if res, hit := m.cache.get(k); hit {
			m.cacheHits++
			job := m.servedJobLocked(benchmark, signature, cfg, mode, req.TraceRef, tenant.viewName, "cache-hit", res)
			m.mu.Unlock()
			return job, nil
		}
		m.cacheMisses++
		if m.store != nil {
			// Disk probe outside m.mu: a store read (or a quarantine rename
			// on a corrupt entry) must not stall submissions, job completion
			// and stats behind disk latency.
			m.mu.Unlock()
			res, ok := m.loadStoredResult(benchmark, signature)
			m.mu.Lock()
			if m.draining {
				m.rejectedDraining++
				m.mu.Unlock()
				return nil, ErrDraining
			}
			if cres, hit := m.cache.get(k); hit {
				// An identical submission finished while we probed the disk.
				m.cacheHits++
				job := m.servedJobLocked(benchmark, signature, cfg, mode, req.TraceRef, tenant.viewName, "cache-hit", cres)
				m.mu.Unlock()
				return job, nil
			}
			if ok {
				m.storeHits++
				m.cache.add(k, res) // promote: the next identical submit is a memory hit
				job := m.servedJobLocked(benchmark, signature, cfg, mode, req.TraceRef, tenant.viewName, "store-hit", res)
				m.mu.Unlock()
				return job, nil
			}
		}
	}
	// From here the submission will consume a worker. Admission is one
	// atomic check: global depth, tenant quota, then the tenant's rate —
	// in that order, so a submission into a full queue is never charged a
	// rate token for work that was not admitted. Cache and store hits
	// above are free: re-reading a result the fleet already paid for is
	// not load.
	job := m.newJobLocked(benchmark, signature, cfg, mode, req.TraceRef)
	job.Tenant = tenant.viewName
	job.state = StateQueued
	job.events = []Event{{Kind: "queued"}}
	m.pending.Add(1)
	if err := m.fq.admit(tenant, task{job: job, bench: b, cfg: cfg, launch: launch}); err != nil {
		m.pending.Done()
		if !errors.Is(err, ErrRateLimited) {
			m.rejectedFull++
		}
		m.mu.Unlock()
		return nil, err
	}
	m.submitted++
	m.queued++
	m.jobs[job.ID] = job
	m.mu.Unlock()
	return job, nil
}

// servedJobLocked registers a job that is already complete at submission —
// a cache or store hit — with the event kind naming which layer served it.
// Caller holds m.mu.
func (m *Manager) servedJobLocked(benchmark, signature string, cfg sim.Config, mode Mode, traceRef, tenantView, kind string, res *sim.Result) *Job {
	job := m.newJobLocked(benchmark, signature, cfg, mode, traceRef)
	job.Tenant = tenantView
	job.state = StateDone
	job.cached = true
	job.result = res
	job.finished = job.created
	job.events = []Event{{Kind: kind, Cycles: res.Cycles}}
	m.jobs[job.ID] = job
	m.retainLocked(job)
	return job
}

// newJobLocked allocates a job (caller holds m.mu for the ID counter).
// The caller finishes initializing it and registers it in m.jobs — in that
// order, so a concurrently held m.mu snapshot never sees a half-built job.
func (m *Manager) newJobLocked(benchmark, signature string, cfg sim.Config, mode Mode, traceRef string) *Job {
	m.nextID++
	return &Job{
		ID:        fmt.Sprintf("job-%06d", m.nextID),
		Benchmark: benchmark,
		Signature: signature,
		Config:    cfg,
		Mode:      mode,
		traceRef:  traceRef,
		created:   time.Now(),
		subs:      make(map[chan Event]struct{}),
	}
}

// retainLocked records a finished job in the retention ring, forgetting
// the oldest finished job beyond the cap. Caller holds m.mu.
func (m *Manager) retainLocked(j *Job) {
	m.finished = append(m.finished, j.ID)
	for len(m.finished) > m.cfg.RetainJobs {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every retained job, oldest submission first.
func (m *Manager) Jobs() []JobView {
	m.mu.Lock()
	all := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	m.mu.Unlock()
	views := make([]JobView, len(all))
	for i, j := range all {
		views[i] = j.View()
	}
	// IDs are zero-padded monotonic counters, so a lexical sort is
	// submission order.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k-1].ID > views[k].ID; k-- {
			views[k-1], views[k] = views[k], views[k-1]
		}
	}
	return views
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		t, ok := m.fq.next()
		if !ok {
			return
		}
		m.runJob(t)
		m.pending.Done()
	}
}

// ResolveAPIKey maps a client-presented API key to its tenant name for
// Request.Tenant. In single-tenant mode every key (including none)
// resolves to the default tenant; otherwise an unknown key — or a missing
// key when no keyless tenant is configured — fails with ErrUnknownTenant,
// which the server maps to 401.
func (m *Manager) ResolveAPIKey(key string) (string, error) {
	return m.fq.resolveKey(key)
}

// MultiTenant reports whether explicit tenants are configured.
func (m *Manager) MultiTenant() bool { return m.fq.multi }

// runJob executes one admitted task on the engine and completes its job.
func (m *Manager) runJob(t task) {
	k := key(t.job.Benchmark, t.job.Signature)
	m.mu.Lock()
	m.queued--
	m.running++
	m.byKey[k] = append(m.byKey[k], t.job)
	m.mu.Unlock()
	t.job.setRunning()

	var (
		res *sim.Result
		lt  *exectrace.Launch
		err error
	)
	switch t.job.Mode {
	case ModeRecord:
		res, lt, err = m.eng.Record(t.bench, t.cfg)
	case ModeReplay:
		res, err = m.eng.Replay(t.job.Benchmark, t.launch, t.cfg)
	default:
		res, err = m.eng.Run(t.bench, t.cfg)
	}

	m.mu.Lock()
	if err == nil && lt != nil {
		ref := m.traces.add(t.job.Benchmark, lt)
		t.job.setTraceRef(ref)
		if m.store != nil {
			m.storeWG.Add(1)
			go m.persistTrace(ref, t.job.Benchmark, lt)
		}
	}
	m.running--
	peers := m.byKey[k]
	for i, j := range peers {
		if j == t.job {
			m.byKey[k] = append(peers[:i], peers[i+1:]...)
			break
		}
	}
	if len(m.byKey[k]) == 0 {
		delete(m.byKey, k)
	}
	if err == nil && res != nil {
		m.cache.add(k, res)
		if m.store != nil {
			m.storeWG.Add(1)
			go m.persistResult(t.job.Benchmark, t.job.Signature, res)
		}
	}
	if res != nil {
		m.simCycles += res.Cycles
	}
	if err != nil {
		m.failed++
	} else {
		m.completed++
	}
	m.retainLocked(t.job)
	m.mu.Unlock()
	t.job.finish(res, err)
}

// onEngineEvent scopes the engine's progress stream to the jobs currently
// running under the event's (benchmark, signature) key.
func (m *Manager) onEngineEvent(ev experiments.Event) {
	k := key(ev.Benchmark, ev.Config)
	m.mu.Lock()
	if ev.Kind == experiments.EventCacheHit {
		m.coalesced++
	}
	targets := append([]*Job(nil), m.byKey[k]...)
	m.mu.Unlock()
	je := Event{Attempt: ev.Attempt, Cycles: ev.Cycles}
	switch ev.Kind {
	case experiments.EventJobStart:
		je.Kind = "sim-start"
	case experiments.EventJobDone:
		je.Kind = "sim-done"
		je.ElapsedMS = ev.Elapsed.Milliseconds()
		if ev.Err != nil {
			je.Error = ev.Err.Error()
		}
	case experiments.EventJobRetry:
		je.Kind = "sim-retry"
		if ev.Err != nil {
			je.Error = ev.Err.Error()
		}
	case experiments.EventCacheHit:
		je.Kind = "coalesced"
	default:
		je.Kind = ev.Kind.String()
	}
	for _, j := range targets {
		j.append(je)
	}
}

// Draining reports whether a drain has begun (readiness probes key off it).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops admission (subsequent Submits fail with ErrDraining) and
// waits for every admitted job — queued and running — to finish, or for
// ctx to expire, whichever comes first. It does not stop the workers; call
// Close afterwards. Drain is idempotent.
//
// Every open event subscription receives an advisory "draining" event
// immediately, so streaming clients (the cluster coordinator above all)
// learn the process is going away while their job is still in flight and
// can arrange failover instead of discovering it via a TCP timeout.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	live := m.unfinishedLocked()
	m.mu.Unlock()
	for _, j := range live {
		j.notify(Event{Kind: "draining"})
	}
	done := make(chan struct{})
	go func() {
		m.pending.Wait()
		// Jobs are finished; now flush the write-through persists they
		// spawned. A SIGTERM during a sweep must never lose a completed
		// result that was still on its way to the disk store.
		m.storeWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain aborted with work in flight: %w", ctx.Err())
	}
}

// Close shuts the Manager down: admission stops, the engine's context is
// canceled (aborting any in-flight simulations — Drain first for a
// graceful exit), and the workers are joined. Jobs that were still queued
// or running are failed with ErrShutdown, which delivers an explicit
// terminal "failed" event to their subscribers and closes the streams —
// no SSE client is left hanging on a job that will never finish.
func (m *Manager) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.draining = true
		m.fq.close()
	}
	live := m.unfinishedLocked()
	m.mu.Unlock()
	m.cancel()
	for _, j := range live {
		j.finish(nil, ErrShutdown)
	}
	m.wg.Wait()
	m.storeWG.Wait()
}

// unfinishedLocked snapshots every job not yet in a terminal state.
// Caller holds m.mu.
func (m *Manager) unfinishedLocked() []*Job {
	var live []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateFailed
		j.mu.Unlock()
		if !terminal {
			live = append(live, j)
		}
	}
	return live
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	// Snapshot the disk store before taking m.mu: its counters live behind
	// the store's own lock, and the two are never held together.
	var ss store.Stats
	enabled := m.store != nil
	if enabled {
		ss = m.store.Stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Submitted:         m.submitted,
		Rejected:          m.rejectedFull + m.rejectedDraining,
		RejectedFull:      m.rejectedFull,
		RejectedDraining:  m.rejectedDraining,
		Completed:         m.completed,
		Failed:            m.failed,
		Coalesced:         m.coalesced,
		CacheHits:         m.cacheHits,
		CacheMisses:       m.cacheMisses,
		CacheEvictions:    m.cache.evictions,
		CacheEntries:      m.cache.len(),
		TracesRecorded:    m.traces.stored,
		TraceEvictions:    m.traces.evictions,
		TraceEntries:      m.traces.len(),
		TraceBytes:        m.traces.bytes(),
		TraceEvictedBytes: m.traces.evictedBytes,
		StoreEnabled:      enabled,
		StoreHits:         m.storeHits,
		StoreEntries:      ss.Entries,
		StoreBytes:        ss.Bytes,
		StoreBudget:       ss.Budget,
		StoreWrites:       ss.Writes,
		StoreWriteErrors:  ss.WriteErrors,
		StoreQuarantined:  ss.Quarantined,
		StoreEvicted:      ss.Evicted,
		StoreEvictedBytes: ss.EvictedBytes,
		SimCycles:         m.simCycles,
		Queued:            m.queued,
		Running:           m.running,
		QueueCapacity:     m.cfg.QueueDepth,
		Workers:           m.cfg.Workers,
		Draining:          m.draining,
		MultiTenant:       m.fq.multi,
		Tenants:           m.fq.snapshot(),
	}
}

// Scale reports the workload size served jobs are built at.
func (m *Manager) Scale() kernels.Scale { return m.cfg.Scale }

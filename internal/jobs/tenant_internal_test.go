package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/store"
)

// fqTask tags a task with its tenant for dispatch-order assertions.
func fqTask(id string) task {
	return task{job: &Job{ID: id}}
}

// TestFairQueueSmoothWRR: with weights a=2, b=1 and both tenants
// backlogged, dispatch follows the smooth weighted-round-robin sequence —
// a's turns are spread out, not bursted.
func TestFairQueueSmoothWRR(t *testing.T) {
	fq := newFairQueue(100, []Tenant{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}})
	a, _ := fq.tenantByName("a")
	b, _ := fq.tenantByName("b")
	for i := 0; i < 4; i++ {
		if err := fq.push(a, fqTask("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := fq.push(b, fqTask("b")); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a", "b", "a", "a", "b", "a"}
	for i, w := range want {
		tk, ok := fq.next()
		if !ok {
			t.Fatalf("queue dried up at dispatch %d", i)
		}
		if tk.job.ID != w {
			t.Fatalf("dispatch %d went to %q, want %q (smooth WRR order %v)", i, tk.job.ID, w, want)
		}
	}
	if fq.size != 0 {
		t.Fatalf("%d tasks left after draining", fq.size)
	}
}

// TestFairQueueNoStarvation: a heavy tenant flooding the queue cannot
// starve a light one — the light tenant's single job is dispatched within
// a bounded number of rounds.
func TestFairQueueNoStarvation(t *testing.T) {
	fq := newFairQueue(1000, []Tenant{{Name: "heavy", Weight: 10}, {Name: "light", Weight: 1}})
	heavy, _ := fq.tenantByName("heavy")
	light, _ := fq.tenantByName("light")
	for i := 0; i < 100; i++ {
		if err := fq.push(heavy, fqTask("heavy")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fq.push(light, fqTask("light")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		tk, _ := fq.next()
		if tk.job.ID == "light" {
			return // dispatched within one weight cycle
		}
	}
	t.Fatal("light tenant not dispatched within 12 rounds against weight-10 competition")
}

// TestFairQueueCloseDrains: close stops admission but queued tasks are
// still handed out, then next reports exhaustion — the drain semantics
// Close relies on.
func TestFairQueueCloseDrains(t *testing.T) {
	fq := newFairQueue(10, nil)
	def, _ := fq.tenantByName("")
	fq.push(def, fqTask("one")) //nolint:errcheck
	fq.push(def, fqTask("two")) //nolint:errcheck
	fq.close()
	if err := fq.push(def, fqTask("three")); err == nil {
		t.Fatal("push accepted after close")
	}
	for _, want := range []string{"one", "two"} {
		tk, ok := fq.next()
		if !ok {
			t.Fatalf("post-close drain ended before %q", want)
		}
		if tk.job.ID != want {
			t.Fatalf("post-close drain returned %q, want %q", tk.job.ID, want)
		}
	}
	if _, ok := fq.next(); ok {
		t.Fatal("next returned a task from an empty closed queue")
	}
}

// TestAdmitDoesNotChargeRateOnCongestion: a submission refused for queue
// depth or tenant quota must not spend a rate token — otherwise a tenant
// pushing into a congested queue drains its rate budget on work that was
// never admitted, and its 429s compound.
func TestAdmitDoesNotChargeRateOnCongestion(t *testing.T) {
	fq := newFairQueue(1, []Tenant{
		{Name: "filler"},
		// A refill rate of ~0 makes the single burst token the entire
		// budget for the test's lifetime.
		{Name: "limited", RatePerSec: 1e-9, Burst: 1},
	})
	filler, _ := fq.tenantByName("filler")
	limited, _ := fq.tenantByName("limited")

	if err := fq.admit(filler, fqTask("fill")); err != nil {
		t.Fatal(err)
	}
	if err := fq.admit(limited, fqTask("x")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admit into a full queue: err = %v, want ErrQueueFull", err)
	}
	if _, ok := fq.next(); !ok {
		t.Fatal("queue did not hand back the filler task")
	}
	// The rejected submission must not have cost the token.
	if err := fq.admit(limited, fqTask("x2")); err != nil {
		t.Fatalf("post-congestion admit: %v (rate token was charged for rejected work)", err)
	}
	if _, ok := fq.next(); !ok {
		t.Fatal("queue did not hand back the admitted task")
	}
	// The token is now genuinely spent; with the queue drained again, this
	// failure is the rate limiter's.
	if err := fq.admit(limited, fqTask("x3")); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("exhausted bucket: err = %v, want ErrRateLimited", err)
	}
}

// TestAdmitQuotaBeforeRate: the tenant queue quota is enforced before the
// rate charge, so hitting MaxQueued leaves the bucket untouched.
func TestAdmitQuotaBeforeRate(t *testing.T) {
	fq := newFairQueue(10, []Tenant{
		{Name: "a", MaxQueued: 1, RatePerSec: 1e-9, Burst: 2},
	})
	a, _ := fq.tenantByName("a")
	if err := fq.admit(a, fqTask("one")); err != nil {
		t.Fatal(err)
	}
	if err := fq.admit(a, fqTask("two")); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("over-quota admit: err = %v, want ErrTenantQueueFull", err)
	}
	if a.tokens != 1 {
		t.Fatalf("tokens = %v after a quota rejection, want 1 (untouched)", a.tokens)
	}
}

// TestDrainFlushesInflightPersists: the write-through persist of a
// completed result is deliberately stalled; Drain must not return until it
// lands on disk. This is the SIGTERM-during-a-sweep guarantee.
func TestDrainFlushesInflightPersists(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(context.Background(), Config{Workers: 1, QueueDepth: 4, CacheSize: 4, Store: st})
	defer m.Close()
	const delay = 300 * time.Millisecond
	m.testWriteDelay = delay

	cfg := sim.DefaultConfig()
	cfg.NumSMs = 2
	j, err := m.Submit("zz-hold", cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for j.State() != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", j.State())
		}
		time.Sleep(2 * time.Millisecond)
	}

	start := time.Now()
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The persist was still sleeping when the job finished; a Drain that
	// returns almost immediately did not wait for it.
	if waited := time.Since(start); waited < delay/2 {
		t.Fatalf("Drain returned after %v; it did not wait for the stalled persist (%v)", waited, delay)
	}
	if _, ok := st.Get(store.NSResult, m.storeKey(j.Benchmark, j.Signature)); !ok {
		t.Fatal("result not on disk after Drain returned")
	}
}

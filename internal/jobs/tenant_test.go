package jobs_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/sim"
)

// twoTenants is a minimal roster: alice (keyed) and a keyless guest.
func twoTenants() []jobs.Tenant {
	return []jobs.Tenant{
		{Name: "alice", Key: "key-alice", Weight: 2},
		{Name: "guest", Weight: 1},
	}
}

// TestResolveAPIKey covers the auth matrix for both tenancy modes.
func TestResolveAPIKey(t *testing.T) {
	single := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4})
	if single.MultiTenant() {
		t.Fatal("manager with no roster reports multi-tenant")
	}
	for _, key := range []string{"", "anything"} {
		name, err := single.ResolveAPIKey(key)
		if err != nil || name != jobs.DefaultTenant {
			t.Fatalf("single-tenant ResolveAPIKey(%q) = %q, %v; want default tenant", key, name, err)
		}
	}

	multi := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4, Tenants: twoTenants()})
	if !multi.MultiTenant() {
		t.Fatal("manager with a roster reports single-tenant")
	}
	if name, err := multi.ResolveAPIKey("key-alice"); err != nil || name != "alice" {
		t.Fatalf("ResolveAPIKey(key-alice) = %q, %v", name, err)
	}
	if name, err := multi.ResolveAPIKey(""); err != nil || name != "guest" {
		t.Fatalf("keyless request = %q, %v; want the keyless tenant", name, err)
	}
	if _, err := multi.ResolveAPIKey("wrong"); !errors.Is(err, jobs.ErrUnknownTenant) {
		t.Fatalf("bad key err = %v, want ErrUnknownTenant", err)
	}
}

// TestTenantQuotaRejection: a tenant at its MaxQueued cap is rejected
// with ErrTenantQueueFull while other tenants keep submitting.
func TestTenantQuotaRejection(t *testing.T) {
	release := gate(t)
	m := newManager(t, jobs.Config{
		Workers: 1, QueueDepth: 16, CacheSize: 0,
		Tenants: []jobs.Tenant{
			{Name: "capped", Key: "kc", MaxQueued: 1},
			{Name: "free", Key: "kf"},
		},
	})
	cfgAt := func(lat int) sim.Config {
		c := testConfig()
		c.CompressLatency = lat
		return c
	}
	submit := func(tenant string, lat int) error {
		_, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: cfgAt(lat), Tenant: tenant})
		return err
	}

	j, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: cfgAt(1), Tenant: "capped"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, jobs.StateRunning) // occupies the only worker
	if err := submit("capped", 2); err != nil {
		t.Fatalf("submit within quota: %v", err)
	}
	err = submit("capped", 3)
	if !errors.Is(err, jobs.ErrTenantQueueFull) {
		t.Fatalf("over-quota err = %v, want ErrTenantQueueFull", err)
	}
	if !strings.Contains(err.Error(), "capped") {
		t.Fatalf("quota error %q does not name the tenant", err)
	}
	// The shared queue has room: another tenant is unaffected.
	if err := submit("free", 4); err != nil {
		t.Fatalf("other tenant blocked by capped tenant's quota: %v", err)
	}

	var capped jobs.TenantStat
	for _, ts := range m.Stats().Tenants {
		if ts.Name == "capped" {
			capped = ts
		}
	}
	if capped.RejectedQuota != 1 {
		t.Fatalf("tenant stats = %+v, want capped.RejectedQuota == 1", m.Stats().Tenants)
	}
	release()
}

// TestTenantRateLimit: the token bucket only charges submissions that
// reach compute — cache hits are free, so repeat sweeps never rate-limit.
func TestTenantRateLimit(t *testing.T) {
	m := newManager(t, jobs.Config{
		Workers: 2, QueueDepth: 8, CacheSize: 8,
		Tenants: []jobs.Tenant{{Name: "slow", Key: "ks", RatePerSec: 0.000001, Burst: 1}},
	})
	j, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Tenant: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	// Same config again: a cache hit, admitted without spending a token.
	j2, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Tenant: "slow"})
	if err != nil {
		t.Fatalf("cache hit was rate-limited: %v", err)
	}
	if j2.State() != jobs.StateDone {
		t.Fatalf("repeat submission state = %s, want cached StateDone", j2.State())
	}

	// A new configuration needs compute and the bucket is empty.
	cfg := testConfig()
	cfg.CompressLatency = 9
	_, err = m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: cfg, Tenant: "slow"})
	if !errors.Is(err, jobs.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if ts := m.Stats().Tenants; len(ts) != 1 || ts[0].RejectedRate != 1 {
		t.Fatalf("tenant stats = %+v, want RejectedRate == 1", ts)
	}
}

// TestUnknownTenantRejected: a submission naming no configured tenant
// fails closed.
func TestUnknownTenantRejected(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4, Tenants: []jobs.Tenant{{Name: "only", Key: "k"}}})
	_, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Tenant: "nobody"})
	if !errors.Is(err, jobs.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	// No keyless tenant configured → anonymous submissions are rejected too.
	_, err = m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig()})
	if !errors.Is(err, jobs.ErrUnknownTenant) {
		t.Fatalf("anonymous err = %v, want ErrUnknownTenant", err)
	}
}

// TestJobViewTenantField: multi-tenant jobs carry their tenant in the
// view; single-tenant views stay byte-compatible (field omitted).
func TestJobViewTenantField(t *testing.T) {
	multi := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4, Tenants: twoTenants()})
	j, err := multi.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.View().Tenant; got != "alice" {
		t.Fatalf("view tenant = %q, want alice", got)
	}

	single := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4})
	js, err := single.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := js.View().Tenant; got != "" {
		t.Fatalf("single-tenant view tenant = %q, want empty for wire compatibility", got)
	}
}

// TestParseTenants exercises the roster validation matrix.
func TestParseTenants(t *testing.T) {
	good := `[{"name":"a","key":"ka","weight":2},{"name":"b","rate_per_sec":1.5}]`
	roster, err := jobs.ParseTenants(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(roster) != 2 || roster[0].Name != "a" || roster[1].RatePerSec != 1.5 {
		t.Fatalf("roster = %+v", roster)
	}

	bad := map[string]string{
		"empty roster":     `[]`,
		"missing name":     `[{"key":"k"}]`,
		"duplicate name":   `[{"name":"a"},{"name":"a","key":"k"}]`,
		"duplicate key":    `[{"name":"a","key":"k"},{"name":"b","key":"k"}]`,
		"two keyless":      `[{"name":"a"},{"name":"b"}]`,
		"negative weight":  `[{"name":"a","weight":-1}]`,
		"negative rate":    `[{"name":"a","rate_per_sec":-2}]`,
		"unknown field":    `[{"name":"a","color":"red"}]`,
		"not a json array": `{"name":"a"}`,
	}
	for what, input := range bad {
		if _, err := jobs.ParseTenants(strings.NewReader(input)); err == nil {
			t.Errorf("ParseTenants accepted %s: %s", what, input)
		}
	}
}

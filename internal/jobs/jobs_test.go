package jobs_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// holdGate lets tests hold the zz-hold benchmark in flight: Build blocks
// until the currently installed channel is closed. The default channel is
// closed, so tests that don't gate pass straight through.
var holdGate atomic.Value // of chan struct{}

func init() {
	closed := make(chan struct{})
	close(closed)
	holdGate.Store(closed)
	kernels.Register(&kernels.Benchmark{
		Name:        "zz-hold",
		Suite:       "test",
		Description: "blocks in Build until the test releases it",
		Build: func(m *mem.Global, s kernels.Scale) (*kernels.Instance, error) {
			<-holdGate.Load().(chan struct{})
			k, err := asm.Assemble("zz-hold", "\tmov r0, %tid.x\n\texit\n")
			if err != nil {
				return nil, err
			}
			return &kernels.Instance{
				Launch: isa.Launch{Kernel: k, Grid: isa.Dim3{X: 1}, Block: isa.Dim3{X: 32}},
				Check:  func(*mem.Global) error { return nil },
			}, nil
		},
	})
}

// gate installs a fresh open gate and returns its release function, which
// is safe to call more than once.
func gate(t *testing.T) func() {
	t.Helper()
	ch := make(chan struct{})
	holdGate.Store(ch)
	var once sync.Once
	release := func() { once.Do(func() { close(ch) }) }
	t.Cleanup(release)
	return release
}

// testConfig is a small, fast hardware configuration.
func testConfig() sim.Config {
	c := sim.DefaultConfig()
	c.NumSMs = 2
	return c
}

// waitDone blocks until the job finishes, via its event stream.
func waitDone(t *testing.T, j *jobs.Job) *sim.Result {
	t.Helper()
	_, ch, cancel := j.Subscribe()
	defer cancel()
	if ch != nil {
		timeout := time.After(60 * time.Second)
		for {
			select {
			case _, ok := <-ch:
				if !ok {
					goto finished
				}
			case <-timeout:
				t.Fatalf("job %s did not finish: state %s", j.ID, j.State())
			}
		}
	}
finished:
	res, err := j.Result()
	if err != nil {
		t.Fatalf("job %s failed: %v", j.ID, err)
	}
	return res
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, j *jobs.Job, want jobs.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

func newManager(t *testing.T, cfg jobs.Config) *jobs.Manager {
	t.Helper()
	m := jobs.NewManager(context.Background(), cfg)
	t.Cleanup(m.Close)
	return m
}

// TestSubmitRoundTrip: submit → run → done, with the lifecycle event
// stream in order and a well-formed view.
func TestSubmitRoundTrip(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	j, err := m.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := waitDone(t, j)
	if res == nil || res.Cycles == 0 {
		t.Fatalf("no result: %+v", res)
	}
	v := j.View()
	if v.State != jobs.StateDone || v.Result == nil || v.Error != "" {
		t.Fatalf("view = %+v", v)
	}
	if v.Started == nil || v.Finished == nil {
		t.Fatalf("missing timestamps: %+v", v)
	}
	replay, ch, _ := j.Subscribe()
	if ch != nil {
		t.Fatal("finished job returned a live channel")
	}
	kinds := make([]string, len(replay))
	for i, ev := range replay {
		kinds[i] = ev.Kind
	}
	want := []string{"queued", "running", "sim-start", "sim-done", "done"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("event stream %v, want %v", kinds, want)
	}
}

// TestSingleFlightAndCacheHit is the end-to-end acceptance scenario: two
// concurrent submissions of the identical config produce ONE underlying
// simulation, and a third submission afterwards is served from the LRU
// cache without touching the queue.
func TestSingleFlightAndCacheHit(t *testing.T) {
	release := gate(t)
	m := newManager(t, jobs.Config{Workers: 4, QueueDepth: 8, CacheSize: 8})
	cfg := testConfig()

	j1, err := m.Submit("zz-hold", cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, jobs.StateRunning) // in flight, held at the gate
	j2, err := m.Submit("zz-hold", cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, jobs.StateRunning)
	// j2's worker needs a moment to reach the engine and join j1's
	// in-flight call before the gate opens.
	time.Sleep(300 * time.Millisecond)
	release()

	r1, r2 := waitDone(t, j1), waitDone(t, j2)
	if r1.Cycles != r2.Cycles {
		t.Fatalf("coalesced jobs disagree: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
	st := m.Stats()
	if st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (single-flight dedup)", st.Coalesced)
	}
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}

	// Third submission: identical signature, served from the result cache.
	j3, err := m.Submit("zz-hold", cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := j3.View()
	if v.State != jobs.StateDone || !v.Cached {
		t.Fatalf("third submission not a cache hit: %+v", v)
	}
	if v.Result.Cycles != r1.Cycles {
		t.Fatalf("cached result differs: %d vs %d", v.Result.Cycles, r1.Cycles)
	}
	if st := m.Stats(); st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}
	if len(j3.View().Result.Stats.BDIChoices) == 0 && j3.View().Result.Cycles == 0 {
		t.Fatal("cached job lost its result")
	}
}

// TestQueueFullRejection: admission control — a full FIFO rejects with
// ErrQueueFull instead of blocking the caller.
func TestQueueFullRejection(t *testing.T) {
	release := gate(t)
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 1, CacheSize: 0})
	// Distinct configs so nothing coalesces or cache-hits.
	cfgAt := func(lat int) sim.Config {
		c := testConfig()
		c.CompressLatency = lat
		return c
	}
	j1, err := m.Submit("zz-hold", cfgAt(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, jobs.StateRunning) // occupies the only worker
	if _, err := m.Submit("zz-hold", cfgAt(2)); err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	_, err = m.Submit("zz-hold", cfgAt(3))
	if !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	release()
}

// TestGracefulDrain is the drain acceptance scenario: in-flight jobs
// finish, the manager reports draining (readyz flips 503 upstream), and
// new submissions are rejected with ErrDraining.
func TestGracefulDrain(t *testing.T) {
	release := gate(t)
	m := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	j, err := m.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, jobs.StateRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- m.Drain(ctx)
	}()
	// Drain must flip the draining flag promptly, while the job holds.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never flipped Draining()")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit("zz-hold", testConfig()); !errors.Is(err, jobs.ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	release() // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res := waitDone(t, j); res == nil {
		t.Fatal("in-flight job lost during drain")
	}
	if j.State() != jobs.StateDone {
		t.Fatalf("job state after drain = %s, want done", j.State())
	}
}

// TestDrainDeadline: a drain whose context expires reports the in-flight
// work instead of hanging forever.
func TestDrainDeadline(t *testing.T) {
	release := gate(t)
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 4})
	j, err := m.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, jobs.StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want DeadlineExceeded", err)
	}
	release()
}

// TestBadSubmissions: typed admission errors for unknown benchmarks and
// invalid configurations.
func TestBadSubmissions(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 1})
	var ube *jobs.UnknownBenchmarkError
	if _, err := m.Submit("no-such-kernel", testConfig()); !errors.As(err, &ube) {
		t.Fatalf("err = %v, want *UnknownBenchmarkError", err)
	}
	bad := testConfig()
	bad.NumSMs = -1
	var ce *sim.ConfigError
	if _, err := m.Submit("zz-hold", bad); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *sim.ConfigError", err)
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Fatalf("bad submissions were admitted: %+v", st)
	}
}

// TestJobRetention: finished jobs beyond the retention cap are forgotten;
// live jobs are never evicted.
func TestJobRetention(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 2, QueueDepth: 16, CacheSize: 0, RetainJobs: 3})
	var ids []string
	for lat := 1; lat <= 5; lat++ {
		c := testConfig()
		c.CompressLatency = lat
		j, err := m.Submit("zz-hold", c)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest finished job survived past the retention cap")
	}
	if _, ok := m.Get(ids[4]); !ok {
		t.Fatal("newest job was evicted")
	}
	if got := len(m.Jobs()); got != 3 {
		t.Fatalf("%d retained jobs, want 3", got)
	}
}

// TestConcurrentClients hammers one manager from 12 clients × 5 jobs over
// three distinct configurations — the race-detector workout the ROADMAP
// demands, plus determinism: every result for one signature is identical.
func TestConcurrentClients(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 8, QueueDepth: 256, CacheSize: 64})
	const clients, perClient = 12, 5
	cycles := make([]map[string]uint64, clients) // per-client: signature → cycles
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cycles[i] = make(map[string]uint64)
			for n := 0; n < perClient; n++ {
				c := testConfig()
				c.CompressLatency = 1 + (i+n)%3
				j, err := m.Submit("zz-hold", c)
				if err != nil {
					errs[i] = err
					return
				}
				_, ch, cancel := j.Subscribe()
				if ch != nil {
					for range ch {
					}
				}
				cancel()
				res, err := j.Result()
				if err != nil {
					errs[i] = err
					return
				}
				if prev, ok := cycles[i][j.Signature]; ok && prev != res.Cycles {
					errs[i] = fmt.Errorf("signature %s: cycles %d then %d", j.Signature, prev, res.Cycles)
					return
				}
				cycles[i][j.Signature] = res.Cycles
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// Cross-client determinism.
	all := make(map[string]uint64)
	for i := range cycles {
		for sig, cyc := range cycles[i] {
			if prev, ok := all[sig]; ok && prev != cyc {
				t.Fatalf("signature %s: %d vs %d cycles across clients", sig, prev, cyc)
			}
			all[sig] = cyc
		}
	}
	if len(all) != 3 {
		t.Fatalf("%d distinct signatures, want 3", len(all))
	}
	st := m.Stats()
	if got := st.Submitted + st.CacheHits; got != clients*perClient {
		t.Fatalf("submitted(%d) + cacheHits(%d) = %d, want %d", st.Submitted, st.CacheHits, got, clients*perClient)
	}
	if st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("failures under load: %+v", st)
	}
}

package jobs

import (
	"container/list"

	"repro/internal/sim"
)

// lru is a bounded least-recently-used result cache keyed by the job key
// (benchmark name + experiments.ConfigSignature). It is not safe for
// concurrent use; the Manager serializes access under its mutex.
//
// Entries hold *sim.Result pointers shared with completed jobs; results
// are treated as immutable once a simulation finishes, so sharing is safe.
type lru struct {
	max   int // <= 0 disables caching entirely
	ll    *list.List
	items map[string]*list.Element

	hits, misses uint64
	evictions    uint64
}

type lruEntry struct {
	key string
	res *sim.Result
}

func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, marking it most recently used.
func (c *lru) get(key string) (*sim.Result, bool) {
	if c.max <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// when the cache is over capacity.
func (c *lru) add(key string, res *sim.Result) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

func (c *lru) len() int { return c.ll.Len() }

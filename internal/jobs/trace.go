package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"repro/internal/exectrace"
	"repro/internal/store"
)

// Mode selects how a submitted job drives the simulator: full execution
// (the default), execute-plus-trace-capture, or timing replay of a
// previously captured trace. The zero value means execute; anything else
// is rejected at submission with *UnknownModeError — unknown modes never
// silently degrade to execution.
type Mode string

const (
	ModeExecute Mode = "execute"
	ModeRecord  Mode = "record"
	ModeReplay  Mode = "replay"
)

// parseMode maps the wire-level mode string onto a Mode, treating the
// empty string as execute for backward compatibility with pre-trace
// clients.
func parseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeExecute:
		return ModeExecute, nil
	case ModeRecord:
		return ModeRecord, nil
	case ModeReplay:
		return ModeReplay, nil
	}
	return "", &UnknownModeError{Mode: s}
}

// UnknownModeError rejects a submission naming a mode this server does not
// implement. The server maps it to HTTP 400.
type UnknownModeError struct{ Mode string }

func (e *UnknownModeError) Error() string {
	return fmt.Sprintf("jobs: unknown mode %q (have execute, record, replay)", e.Mode)
}

// UnknownTraceError rejects a replay submission referencing a trace the
// store does not hold — never recorded, or already evicted by capacity
// pressure. Resolution is strict and happens at submission, so a client
// learns immediately (HTTP 400) rather than after queueing.
type UnknownTraceError struct{ Ref string }

func (e *UnknownTraceError) Error() string {
	return fmt.Sprintf("jobs: unknown trace %q (recorded refs expire oldest-first; re-record)", e.Ref)
}

// storedTrace is one retained recording: the launch trace plus the
// benchmark it was recorded from, checked at replay submission so a trace
// can never be replayed under the wrong benchmark's label.
type storedTrace struct {
	ref       string
	benchmark string
	launch    *exectrace.Launch
}

// traceStore retains recorded traces under refs of the form
// "trace-<nonce>-000001": a per-process random nonce plus a monotonic
// counter. The nonce is what makes refs collision-free across processes —
// many workers may write through to one shared disk store directory with
// no coordination, and two of them minting the same ref would silently
// overwrite each other's recordings (and later replay the wrong one).
// Entries are bounded two ways: an entry-count cap and a byte budget over
// the traces' resident memory (Launch.MemBytes), both enforced
// least-recently-used first via the same store.Tracker policy the disk
// store uses. It is not safe for concurrent use; the Manager serializes
// access under its mutex.
type traceStore struct {
	maxEntries int
	tracker    *store.Tracker
	entries    map[string]*storedTrace
	nonce      string
	nextRef    uint64

	stored, evictions uint64
	evictedBytes      uint64
}

func newTraceStore(maxEntries int, budgetBytes int64) *traceStore {
	return &traceStore{
		maxEntries: maxEntries,
		tracker:    store.NewTracker(budgetBytes),
		entries:    make(map[string]*storedTrace),
		nonce:      refNonce(),
	}
}

// refNonce draws the per-process random component of minted trace refs.
// crypto/rand failing is about as plausible as the 64-bit collision the
// pid+time fallback would reintroduce, but never mint predictable refs
// silently.
func refNonce() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%x-%x", os.Getpid(), time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// add retains a freshly recorded trace under the next ref and returns it.
func (s *traceStore) add(benchmark string, lt *exectrace.Launch) string {
	s.nextRef++
	ref := fmt.Sprintf("trace-%s-%06d", s.nonce, s.nextRef)
	s.stored++
	s.insert(ref, benchmark, lt)
	return ref
}

// insert retains a trace under an explicit ref — add's tail, and the path
// by which a ref recovered from the disk store re-enters memory. Both the
// byte budget and the entry cap are applied; the just-inserted ref is never
// its own victim.
func (s *traceStore) insert(ref, benchmark string, lt *exectrace.Launch) {
	if _, ok := s.entries[ref]; ok {
		s.tracker.Touch(ref)
		return
	}
	s.entries[ref] = &storedTrace{ref: ref, benchmark: benchmark, launch: lt}
	victims := s.tracker.Add(ref, lt.MemBytes())
	for s.tracker.Len() > s.maxEntries {
		lru := s.tracker.Keys()[0]
		if lru == ref {
			break
		}
		s.tracker.Remove(lru)
		victims = append(victims, lru)
	}
	for _, v := range victims {
		if st, ok := s.entries[v]; ok {
			s.evictedBytes += uint64(st.launch.MemBytes())
			delete(s.entries, v)
			s.evictions++
		}
	}
}

// get resolves a ref to its retained trace, refreshing its recency.
func (s *traceStore) get(ref string) (*storedTrace, bool) {
	st, ok := s.entries[ref]
	if ok {
		s.tracker.Touch(ref)
	}
	return st, ok
}

func (s *traceStore) len() int     { return len(s.entries) }
func (s *traceStore) bytes() int64 { return s.tracker.Bytes() }

package jobs

import (
	"fmt"

	"repro/internal/exectrace"
)

// Mode selects how a submitted job drives the simulator: full execution
// (the default), execute-plus-trace-capture, or timing replay of a
// previously captured trace. The zero value means execute; anything else
// is rejected at submission with *UnknownModeError — unknown modes never
// silently degrade to execution.
type Mode string

const (
	ModeExecute Mode = "execute"
	ModeRecord  Mode = "record"
	ModeReplay  Mode = "replay"
)

// parseMode maps the wire-level mode string onto a Mode, treating the
// empty string as execute for backward compatibility with pre-trace
// clients.
func parseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeExecute:
		return ModeExecute, nil
	case ModeRecord:
		return ModeRecord, nil
	case ModeReplay:
		return ModeReplay, nil
	}
	return "", &UnknownModeError{Mode: s}
}

// UnknownModeError rejects a submission naming a mode this server does not
// implement. The server maps it to HTTP 400.
type UnknownModeError struct{ Mode string }

func (e *UnknownModeError) Error() string {
	return fmt.Sprintf("jobs: unknown mode %q (have execute, record, replay)", e.Mode)
}

// UnknownTraceError rejects a replay submission referencing a trace the
// store does not hold — never recorded, or already evicted by capacity
// pressure. Resolution is strict and happens at submission, so a client
// learns immediately (HTTP 400) rather than after queueing.
type UnknownTraceError struct{ Ref string }

func (e *UnknownTraceError) Error() string {
	return fmt.Sprintf("jobs: unknown trace %q (recorded refs expire oldest-first; re-record)", e.Ref)
}

// storedTrace is one retained recording: the launch trace plus the
// benchmark it was recorded from, checked at replay submission so a trace
// can never be replayed under the wrong benchmark's label.
type storedTrace struct {
	ref       string
	benchmark string
	launch    *exectrace.Launch
}

// traceStore retains recorded traces under monotonic refs ("trace-000001"),
// bounded by entry count with oldest-first eviction. It is not safe for
// concurrent use; the Manager serializes access under its mutex.
type traceStore struct {
	max     int
	order   []string // insertion order, oldest first
	entries map[string]*storedTrace
	nextRef uint64

	stored, evictions uint64
}

func newTraceStore(max int) *traceStore {
	return &traceStore{max: max, entries: make(map[string]*storedTrace)}
}

// add retains a freshly recorded trace and returns its ref, evicting the
// oldest retained trace beyond capacity.
func (s *traceStore) add(benchmark string, lt *exectrace.Launch) string {
	s.nextRef++
	ref := fmt.Sprintf("trace-%06d", s.nextRef)
	s.entries[ref] = &storedTrace{ref: ref, benchmark: benchmark, launch: lt}
	s.order = append(s.order, ref)
	s.stored++
	for len(s.order) > s.max {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
		s.evictions++
	}
	return ref
}

// get resolves a ref to its retained trace.
func (s *traceStore) get(ref string) (*storedTrace, bool) {
	st, ok := s.entries[ref]
	return st, ok
}

func (s *traceStore) len() int { return len(s.entries) }

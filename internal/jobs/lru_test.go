package jobs

import (
	"testing"

	"repro/internal/sim"
)

func res(cycles uint64) *sim.Result { return &sim.Result{Cycles: cycles} }

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.add("a", res(1))
	c.add("b", res(2))
	c.add("c", res(3)) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived past capacity")
	}
	if r, ok := c.get("b"); !ok || r.Cycles != 2 {
		t.Fatalf("b lost: %v %v", r, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRU(2)
	c.add("a", res(1))
	c.add("b", res(2))
	c.get("a")         // a is now most recent
	c.add("c", res(3)) // evicts b, not a
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestLRUAddRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	c.add("a", res(1))
	c.add("a", res(9))
	if r, _ := c.get("a"); r.Cycles != 9 {
		t.Fatalf("refresh lost: %d", r.Cycles)
	}
	if c.len() != 1 {
		t.Fatalf("duplicate entry: len = %d", c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0)
	c.add("a", res(1))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

package jobs_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jobs"
	"repro/internal/store"
)

// openStore opens a disk store rooted at dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// resultFiles returns every persisted result entry under the store dir.
func resultFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "result", "*"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestStoreRestartServesFromDisk is the single-node restart scenario: a
// manager computes a result, the process "restarts" (new store handle on
// the same directory, new manager), and the repeat submission is served
// from disk — done on return, no recomputation, counted as a store hit.
func TestStoreRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	m1 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	j1, err := m1.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, j1)
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if len(resultFiles(t, dir)) != 1 {
		t.Fatalf("store holds %d result entries after drain, want 1", len(resultFiles(t, dir)))
	}

	m2 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	j2, err := m2.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if j2.State() != jobs.StateDone {
		t.Fatalf("restarted manager state = %s, want immediate StateDone from the store", j2.State())
	}
	replay, _, cancel := j2.Subscribe()
	cancel()
	if len(replay) != 1 || replay[0].Kind != "store-hit" {
		t.Fatalf("event replay = %+v, want a single store-hit", replay)
	}
	got, err := j2.Result()
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("store round-trip changed the result:\n  disk: %s\n  live: %s", gb, wb)
	}
	st := m2.Stats()
	if st.StoreHits != 1 || !st.StoreEnabled {
		t.Fatalf("StoreHits = %d (enabled %v), want 1 hit", st.StoreHits, st.StoreEnabled)
	}
	if !j2.View().Cached {
		t.Fatal("store-served job not marked cached in its view")
	}
}

// TestStoreCorruptionRecomputes: a truncated entry must never surface as a
// result. The restarted manager quarantines it and recomputes, producing
// the same answer as the original run.
func TestStoreCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	m1 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	j1, err := m1.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, j1)
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	files := resultFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("result entries = %d, want 1", len(files))
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	j2, err := m2.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, j2) // recomputed, not served corrupt
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("recomputed result differs from original:\n  %s\n  %s", wb, gb)
	}
	st := m2.Stats()
	if st.StoreHits != 0 {
		t.Fatalf("StoreHits = %d, want 0 (entry was corrupt)", st.StoreHits)
	}
	if st.StoreQuarantined == 0 {
		t.Fatal("corrupt entry was not quarantined")
	}
}

// TestStoreUndecodableResultQuarantined: an entry that passes the CRC but
// does not decode as a sim.Result (wrong payload written under a result
// key) is quarantined by the manager, not served.
func TestStoreUndecodableResultQuarantined(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	m1 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st1})
	j1, err := m1.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Overwrite the entry with a checksummed-but-wrong payload under the
	// same key, via the store API itself (so the CRC is valid).
	st2 := openStore(t, dir)
	keys := st2.Keys(store.NSResult)
	if len(keys) != 1 {
		t.Fatalf("result keys = %v, want exactly one", keys)
	}
	if err := st2.Put(store.NSResult, keys[0], []byte("not json at all")); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st2})
	j2, err := m2.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	st := m2.Stats()
	if st.StoreHits != 0 {
		t.Fatalf("StoreHits = %d, want 0", st.StoreHits)
	}
	if st.StoreQuarantined == 0 {
		t.Fatal("undecodable result entry was not quarantined")
	}
}

// TestStoreWriteFailureDegrades: when the disk goes away mid-flight
// (directory deleted — the ENOSPC stand-in), jobs still complete from
// compute and the failure is only a counter, never an error to the client.
func TestStoreWriteFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	m := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: st})
	j, err := m.Submit("zz-hold", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (write failure must not fail the job)", stats.Completed)
	}
	if stats.StoreWriteErrors == 0 {
		t.Fatal("write to a missing directory was not counted as a store write error")
	}
}

// TestTraceRefSurvivesRestart: a recorded trace is persisted; after a
// restart the same ref replays from disk, and new recordings continue the
// ref sequence instead of colliding with persisted ones.
func TestTraceRefSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	rec, err := m1.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: jobs.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, rec)
	ref := rec.TraceRef()
	if ref == "" {
		t.Fatal("record job produced no trace ref")
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	rep, err := m2.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: ref})
	if err != nil {
		t.Fatalf("replay of persisted ref %s: %v", ref, err)
	}
	got := waitDone(t, rep)
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("replay-from-disk result differs from the recording:\n  %s\n  %s", wb, gb)
	}

	cfg2 := testConfig()
	cfg2.CompressLatency = 7 // distinct config so nothing coalesces
	rec2, err := m2.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: cfg2, Mode: jobs.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, rec2)
	if rec2.TraceRef() == ref {
		t.Fatalf("restarted manager reissued ref %s for a new recording", ref)
	}
}

// TestTraceRefsUniqueAcrossProcesses: two live managers writing through to
// one shared store directory (the multi-worker deployment) must never mint
// the same trace ref — a collision would let one worker's recording
// silently overwrite the other's, and a later replay would run the wrong
// trace. Refs carry a per-process nonce precisely to rule this out.
func TestTraceRefsUniqueAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	m1 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	m2 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})

	// The identical submission on both managers: under a shared counter
	// scheme both would mint the first ref.
	j1, err := m1.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: jobs.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m2.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: testConfig(), Mode: jobs.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	waitDone(t, j2)
	ref1, ref2 := j1.TraceRef(), j2.TraceRef()
	if ref1 == "" || ref2 == "" {
		t.Fatalf("missing refs: %q, %q", ref1, ref2)
	}
	if ref1 == ref2 {
		t.Fatalf("both processes minted ref %s; recordings overwrite each other in the shared store", ref1)
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	m2.Close()

	// Both recordings survived side by side: a third process replays each.
	m3 := newManager(t, jobs.Config{Workers: 2, QueueDepth: 8, CacheSize: 8, Store: openStore(t, dir)})
	for _, ref := range []string{ref1, ref2} {
		rep, err := m3.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: ref})
		if err != nil {
			t.Fatalf("replay of %s from shared store: %v", ref, err)
		}
		waitDone(t, rep)
	}
}

// TestTraceStoreByteBudget: the in-memory trace store enforces the byte
// budget with the same LRU policy as the disk store — older recordings are
// evicted and counted, and replaying an evicted ref without a disk store
// fails cleanly.
func TestTraceStoreByteBudget(t *testing.T) {
	m := newManager(t, jobs.Config{Workers: 1, QueueDepth: 8, CacheSize: 0, TraceStore: 16, TraceStoreBytes: 1})
	refs := make([]string, 2)
	for i := range refs {
		cfg := testConfig()
		cfg.CompressLatency = i + 1
		j, err := m.SubmitRequest(jobs.Request{Benchmark: "zz-hold", Config: cfg, Mode: jobs.ModeRecord})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		refs[i] = j.TraceRef()
	}
	st := m.Stats()
	if st.TraceEntries != 1 {
		t.Fatalf("trace entries = %d, want 1 under a 1-byte budget", st.TraceEntries)
	}
	if st.TraceEvictions == 0 || st.TraceEvictedBytes == 0 {
		t.Fatalf("evictions = %d, evicted bytes = %d; want both > 0", st.TraceEvictions, st.TraceEvictedBytes)
	}
	var unknown *jobs.UnknownTraceError
	if _, err := m.SubmitRequest(jobs.Request{Config: testConfig(), Mode: jobs.ModeReplay, TraceRef: refs[0]}); !errors.As(err, &unknown) {
		t.Fatalf("replay of evicted ref: err = %v, want UnknownTraceError", err)
	}
}

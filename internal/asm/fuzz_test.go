package asm

import "testing"

// FuzzAssemble: the assembler must reject arbitrary input with an error,
// never a panic (MustAssemble is the only sanctioned panic path).
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"exit",
		"\tmov r0, %tid.x\n\texit\n",
		".kernel k\n.shared 64\nL: add r1, r1, 1\n@p0 bra L\nexit\n",
		"\tld.global r1, [r2+4]\n\tst.shared [r3], r1\n\texit",
		"\tsetp.flt p1, r0, 1.5\n\tselp r2, r3, r4, p1\n\texit",
		"\tatom.add r1, [r2], r3\n\texit",
		"@!p7 exit\nexit",
		"\tmov r0, 0x7fffffff\n\tmov r1, -2.5e10\n\texit",
		"L1: L2: L3: exit",
		"\tbra nowhere",
		"\tadd r0, [r1], %bogus",
		"\t@p0",
		".shared -5\nexit",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		k, err := Assemble("fuzz", src)
		if err == nil && k == nil {
			t.Fatal("nil kernel without error")
		}
		if k != nil {
			if err := k.Validate(); err != nil {
				t.Fatalf("assembler returned invalid kernel: %v", err)
			}
		}
	})
}
